// Package tcast implements the singlehop collaborative threshold-querying
// primitive from "Singlehop Collaborative Feedback Primitives for Threshold
// Querying in Wireless Sensor Networks" (Demirbas, Tasci, Gunes, Rudra,
// IPDPS/IPPS 2011).
//
// An initiator node asks: do at least t of my n neighbors satisfy
// predicate P? Receiver-side collision detection (RCD) answers one group
// poll in constant time — all positive group members reply simultaneously
// and the initiator senses silence or activity — and the tcast algorithms
// turn a handful of such polls into an exact threshold answer:
//
//	net, _ := tcast.NewNetwork(128, positives, tcast.WithSeed(1))
//	res, _ := net.Query(16, tcast.TwoTBins())
//	fmt.Println(res.Decision, res.Queries)
//
// The package fronts the full reproduction in internal/: the 2tBins,
// Exponential Increase, ABNS and probabilistic-ABNS algorithms, the
// bimodal O(1) detector, CSMA and sequential baselines, a packet-level
// radio with pollcast/backcast, and an emulated mote testbed. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the measured
// reproduction of every figure.
package tcast

import (
	"fmt"
	"sync"

	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/count"
	"tcast/internal/dist"
	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// Result reports a completed threshold query. It mirrors the paper's cost
// accounting: Queries counts RCD group polls.
type Result = core.Result

// Algorithm is a threshold-querying strategy; obtain one from TwoTBins,
// ExpIncrease, ABNS, ProbABNS or Oracle.
type Algorithm = core.Algorithm

// TwoTBins returns Algorithm 1: fixed 2t random bins per round.
func TwoTBins() Algorithm { return core.TwoTBins{} }

// ExpIncrease returns Algorithm 2: bin count starts at two and doubles
// each round.
func ExpIncrease() Algorithm { return core.ExpIncrease{} }

// ABNS returns Algorithm 3 with initial estimate p0 = p0Mult × t; the
// paper evaluates p0Mult of 1 and 2.
func ABNS(p0Mult float64) Algorithm { return core.ABNS{P0: p0Mult} }

// ProbABNS returns the Section V-D algorithm: one sampling probe picks
// between ABNS(t/4) and 2tBins.
func ProbABNS() Algorithm { return core.ProbABNS{} }

// Network is a simulated singlehop neighborhood with known ground truth —
// the substrate for experimentation with the algorithms. For packet-level
// simulation or the mote testbed, use the internal pollcast and motelab
// packages directly.
//
// A Network is safe for concurrent use: each query runs on its own
// session stream, so goroutines can fire queries in parallel (their
// interleaving decides which stream each one gets).
type Network struct {
	n         int
	positives *bitset.Set
	cfg       fastsim.Config

	mu       sync.Mutex
	root     *rng.Source
	sessions uint64
}

// Option configures a Network.
type Option func(*Network) error

// WithSeed fixes the network's random seed; identical seeds reproduce
// identical query traces.
func WithSeed(seed uint64) Option {
	return func(nw *Network) error {
		nw.root = rng.New(seed)
		return nil
	}
}

// WithTwoPlus upgrades the initiator's radio to the 2+ collision model
// with the default capture-effect strength (beta = 0.5).
func WithTwoPlus() Option {
	return func(nw *Network) error {
		two := fastsim.TwoPlusConfig()
		nw.cfg.Model = two.Model
		nw.cfg.Capture = two.Capture
		nw.cfg.CaptureEffectPresent = two.CaptureEffectPresent
		return nil
	}
}

// WithCaptureBeta sets the 2+ capture-effect strength: the probability of
// decoding one of k simultaneous replies is beta^(k-1). Implies the 2+
// model.
func WithCaptureBeta(beta float64) Option {
	return func(nw *Network) error {
		if beta < 0 || beta > 1 {
			return fmt.Errorf("tcast: capture beta %v outside [0,1]", beta)
		}
		nw.cfg.Model = query.TwoPlus
		nw.cfg.Capture = fastsim.GeometricCapture(beta)
		nw.cfg.CaptureEffectPresent = true
		return nil
	}
}

// WithMissProb sets the per-reply loss probability (radio irregularity);
// whole-bin misses become false negatives, as on the paper's testbed.
func WithMissProb(p float64) Option {
	return func(nw *Network) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("tcast: miss probability %v outside [0,1)", p)
		}
		nw.cfg.MissProb = p
		return nil
	}
}

// NewNetwork creates a simulated neighborhood of nodes 0..n-1 in which
// exactly the listed nodes are predicate-positive.
func NewNetwork(n int, positives []int, opts ...Option) (*Network, error) {
	if n < 0 {
		return nil, fmt.Errorf("tcast: negative network size %d", n)
	}
	nw := &Network{n: n, positives: bitset.New(n), cfg: fastsim.DefaultConfig(), root: rng.New(0)}
	for _, id := range positives {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("tcast: positive node %d outside [0,%d)", id, n)
		}
		nw.positives.Add(id)
	}
	for _, opt := range opts {
		if err := opt(nw); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

// N returns the number of participant nodes.
func (nw *Network) N() int { return nw.n }

// Positives returns the ground-truth positive count (what the initiator
// does not know).
func (nw *Network) Positives() int { return nw.positives.Len() }

// session builds a fresh fastsim channel for one query run.
func (nw *Network) session() (*fastsim.Channel, *rng.Source) {
	nw.mu.Lock()
	nw.sessions++
	r := nw.root.Split(nw.sessions)
	nw.mu.Unlock()
	ch := fastsim.NewFromSet(nw.positives.Clone(), nw.cfg, r.Split(1))
	return ch, r.Split(2)
}

// Query runs one threshold-query session with the given algorithm and
// reports the initiator's decision and its query cost.
func (nw *Network) Query(threshold int, alg Algorithm) (Result, error) {
	ch, r := nw.session()
	return alg.Run(ch, nw.n, threshold, r)
}

// QueryOracle runs the Section V-C oracle — bin counts computed from the
// true x — giving the lower-bound cost the adaptive algorithms chase.
func (nw *Network) QueryOracle(threshold int) (Result, error) {
	ch, r := nw.session()
	return core.Oracle{Truth: ch}.Run(ch, nw.n, threshold, r)
}

// Detector answers bimodal activity queries in O(1) polls (Section VI).
type Detector struct {
	det     core.BimodalDetector
	members []int
}

// NewDetector builds a probabilistic detector for a deployment whose
// positive count is bimodal: roughly mu1 positives when quiet (sigma1
// spread) and mu2 when an event is underway. delta is the acceptable
// failure probability; the number of probes is sized by the paper's
// equation (10).
func NewDetector(n int, mu1, sigma1, mu2, sigma2, delta float64) (*Detector, error) {
	tl, tr := mu1+2*sigma1, mu2-2*sigma2
	if tl >= tr {
		return nil, fmt.Errorf("tcast: modes not separated (t_l=%v >= t_r=%v); the probabilistic model needs a bimodal workload", tl, tr)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("tcast: delta %v outside (0,1)", delta)
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return &Detector{det: core.NewBimodalDetectorDelta(tl, tr, delta), members: members}, nil
}

// Repeats returns the number of probes per detection, fixed at
// construction — independent of n, x and t.
func (d *Detector) Repeats() int { return d.det.R }

// Detect runs the probes against the network and reports whether activity
// (the high mode) is present, plus the number of polls spent.
func (d *Detector) Detect(nw *Network) (activity bool, queries int) {
	ch, r := nw.session()
	return d.det.Detect(ch, d.members, r)
}

// QueryAtMost answers "are at most t nodes positive?" — the complement
// threshold, per the k+ decision-tree reduction.
func (nw *Network) QueryAtMost(t int, alg Algorithm) (Result, error) {
	ch, r := nw.session()
	return core.AtMost(alg, ch, nw.n, t, r)
}

// QueryBetween answers "is the positive count within [lo, hi]?" with at
// most two threshold sessions.
func (nw *Network) QueryBetween(lo, hi int, alg Algorithm) (Result, error) {
	ch, r := nw.session()
	return core.Between(alg, ch, nw.n, lo, hi, r)
}

// QueryMonotone answers an arbitrary monotone predicate of the positive
// count (false below some flip point, true at and above it) with a single
// threshold session at the flip point.
func (nw *Network) QueryMonotone(f func(count int) bool, alg Algorithm) (Result, error) {
	ch, r := nw.session()
	return core.EvaluateMonotone(alg, ch, nw.n, f, r)
}

// Identify returns the exact set of positive nodes using adaptive group
// testing over the same RCD polls (O(x log(n/x)) queries), plus the query
// cost — the follow-up question once a threshold fires ("which neighbors
// detected it?").
func (nw *Network) Identify() (positives []int, queries int, err error) {
	ch, _ := nw.session()
	return count.Identify(ch, nw.n)
}

// EstimateCount approximates the number of positive nodes with a
// geometric sampling cascade costing O(repeats·log n) polls. repeats <= 0
// selects the default (32).
func (nw *Network) EstimateCount(repeats int) (estimate float64, queries int) {
	ch, r := nw.session()
	members := make([]int, nw.n)
	for i := range members {
		members[i] = i
	}
	return count.Estimate(ch, members, count.EstimateOptions{Repeats: repeats}, r)
}

// Bimodal re-exports the Section VI workload model for building
// simulations of event-driven deployments.
type Bimodal = dist.Bimodal

// SymmetricBimodal builds the Figure 9/11 workload: modes at n/2 ± d.
func SymmetricBimodal(n int, d, sigma float64) Bimodal {
	return dist.SymmetricBimodal(n, d, sigma)
}
