package tcast_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun builds and executes every example binary, asserting a
// clean exit — the examples are living documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least three examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var runErr error
				out, runErr = cmd.CombinedOutput()
				done <- runErr
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run failed: %v\n%s", err, out)
				}
				if len(out) == 0 {
					t.Fatal("example produced no output")
				}
			case <-time.After(2 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatal("example timed out")
			}
		})
	}
}
