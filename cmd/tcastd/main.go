// Command tcastd serves threshold queries over HTTP: a long-running
// daemon multiplexing many concurrent initiators over a pool of shared
// simulated fields, with deterministic virtual-slot contention pricing,
// per-client admission control and graceful overload shedding.
//
// Usage:
//
//	tcastd                              # serve on :8080, one field
//	tcastd -addr :9000 -fields 4        # four independent media
//	tcastd -addr 127.0.0.1:0 -addr-file tcastd.addr   # CI: ephemeral port
//
// Wire API (see README "Serving threshold queries"):
//
//	POST /query             submit a session ({"n":128,"t":16,"x":20,
//	                        "alg":"2tbins","seed":7}); 202 + session id,
//	                        or add ?wait=1 to block for the verdict;
//	                        429 + Retry-After when shed, 503 draining
//	GET  /query/{id}        session status + result
//	GET  /query/{id}/events SSE: status now, verdict at completion
//	GET  /fields            per-field slot clock and occupancy
//	/metrics /healthz /slo /events   the obs plane (shared bus)
//
// Admission knobs: -max-active sessions are scheduled per field,
// -max-queue more wait, beyond that submissions are shed with 429;
// -max-per-client bounds one client's in-flight sessions. SIGINT or
// SIGTERM drains: no new admissions, in-flight sessions finish (up to
// -drain-timeout), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address (host:0 picks an ephemeral port; see -addr-file)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for :0 in scripts)")
		fields       = flag.Int("fields", 1, "shared-medium fields in the pool; sessions contend only within their field")
		maxActive    = flag.Int("max-active", 64, "sessions concurrently scheduled per field")
		maxQueue     = flag.Int("max-queue", 128, "sessions queued per field beyond -max-active before shedding with 429")
		maxPerClient = flag.Int("max-per-client", 32, "one client's in-flight session bound")
		maxHistory   = flag.Int("max-history", 4096, "finished sessions kept for GET /query/{id}")
		maxN         = flag.Int("max-n", 1<<20, "largest field size a request may ask for")
		n            = flag.Int("n", 128, "default field size when the request omits n")
		t            = flag.Int("t", 16, "default threshold when the request omits t")
		x            = flag.Int("x", 16, "default positive count when the request omits x")
		alg          = flag.String("alg", "2tbins", "default algorithm: 2tbins | exp | abns-t | abns-2t | probabns | oracle")
		model        = flag.String("model", "1+", "default channel model: 1+ | 2+")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on waiting for in-flight sessions at shutdown")
	)
	var obsCfg obs.Config
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*addr, *addrFile, serve.Config{
		Fields:       *fields,
		MaxActive:    *maxActive,
		MaxQueue:     *maxQueue,
		MaxPerClient: *maxPerClient,
		MaxHistory:   *maxHistory,
		MaxN:         *maxN,
		Defaults:     serve.Spec{N: *n, T: *t, X: *x, Alg: *alg, Model: *model},
	}, obsCfg, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "tcastd:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, cfg serve.Config, obsCfg obs.Config, drainTimeout time.Duration) error {
	reg := metrics.New()
	// force: the daemon always carries a bus so /events, /slo and the
	// session verdict stream work without any -log/-slo flag.
	plane, err := obsCfg.Build(os.Stderr, reg, true)
	if err != nil {
		return err
	}
	cfg.Registry = reg
	cfg.Bus = plane.Bus()
	pool := serve.NewPool(cfg)

	mux := obs.NewMux(reg, plane)
	serve.Register(mux, pool)
	srv, err := metrics.StartServer(addr, mux)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			srv.Shutdown(context.Background())
			return err
		}
	}
	fmt.Printf("tcastd: listening on %s (%d field(s), %d active + %d queued per field)\n",
		srv.Addr(), cfg.Fields, cfg.MaxActive, cfg.MaxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("tcastd: %s, draining (%d in flight)\n", s, pool.InFlight())
	case err := <-srv.Err():
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := pool.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tcastd:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tcastd: shutdown:", err)
	}
	if sum := plane.Summary(); sum != "" {
		fmt.Print(sum)
	}
	if err := plane.Close(); err != nil {
		return err
	}
	fmt.Printf("tcastd: drained, served %d session(s)\n", served(pool))
	return nil
}

// served totals completed sessions across the pool's fields.
func served(p *serve.Pool) int64 {
	var total int64
	for _, f := range p.Fields() {
		total += f.Served()
	}
	return total
}
