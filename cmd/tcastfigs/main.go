// Command tcastfigs regenerates the paper's tables and figures.
//
// Usage:
//
//	tcastfigs -fig all                  # every experiment, paper-scale runs
//	tcastfigs -fig fig1 -runs 200       # one figure, quicker
//	tcastfigs -fig fig9 -csv            # emit CSV instead of a text table
//	tcastfigs -fig all -out results/    # write one file per experiment
//
// Experiment IDs match DESIGN.md's per-experiment index (fig1..fig11,
// tab-err, abl-capture, abl-variants).
//
// Observability:
//
//	tcastfigs -fig fig1 -metrics -            # dump metrics to stdout after the run
//	tcastfigs -fig all -metrics m.prom        # Prometheus text format (by extension)
//	tcastfigs -fig all -metrics-addr :9090    # scrapeable /metrics endpoint during the run
//	tcastfigs -fig all -pprof profiles/       # CPU/heap/goroutine/mutex/block profiles
//	tcastfigs -fig all -audit                 # grade every session against ground truth
//
// Live observability plane (see EXPERIMENTS.md):
//
//	tcastfigs -fig fig1 -log                          # stream events to stderr
//	tcastfigs -fig all -log-json -log-level debug     # per-poll JSON event stream
//	tcastfigs -fig tab-acc -audit -flight dumps/      # flight-recorder dumps on anomaly
//	tcastfigs -fig all -slo maxpolls=96,minacc=0.99   # SLO health rules
//	tcastfigs -fig all -metrics-addr :9090            # + /healthz /slo /events (SSE)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tcast/internal/audit"
	"tcast/internal/experiment"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/query"
	"tcast/internal/stats"
	"tcast/internal/trace"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment ID or 'all'")
		runs    = flag.Int("runs", 0, "trials per point (0 = paper defaults: 1000 sim, 100 mote)")
		workers = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS); results are worker-count-independent")
		seed    = flag.Uint64("seed", 2011, "root random seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = flag.Bool("json", false, "emit JSON instead of aligned text")
		plot    = flag.Bool("plot", false, "append an ASCII chart after each table")
		ci      = flag.Bool("ci", false, "include 95% confidence-interval columns in text output")
		out     = flag.String("out", "", "directory to write per-experiment files into (stdout if empty)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")

		doAudit     = flag.Bool("audit", false, "grade every session against ground truth and print the audit summary")
		faultsSpec  = flag.String("faults", "", "fault-injection spec stacked above every trial's substrate, e.g. burst=8,frac=0.2,churn=0.01 (figures tolerate the resulting wrong decisions)")
		retries     = flag.Int("retries", 0, "initiator retry budget per silent poll")
		backoff     = flag.Int("backoff", 0, "idle slots before each retry")
		traceOut    = flag.String("trace", "", "write a structured span trace (JSONL, virtual time) of the run to this file")
		traceSample = flag.Int("trace-sample", 1, "record 1-in-k poll leaf spans per session (k<=1 records all); virtual clock and session counters stay exact")
		metricsOut  = flag.String("metrics", "", "dump run metrics to this file after the run ('-' = stdout, .prom = Prometheus format)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /slo and /events (SSE) on this address during the run")
		pprofDir    = flag.String("pprof", "", "write cpu/heap/goroutine/mutex/block profiles for the run into this directory")
	)
	var obsCfg obs.Config
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var reg *metrics.Registry
	if *metricsOut != "" || *metricsAddr != "" || obsCfg.Enabled() {
		reg = metrics.New()
	}
	// The /events and /slo endpoints need a bus even when no local sink is
	// configured, so a live -metrics-addr forces the plane on.
	plane, err := obsCfg.Build(os.Stderr, reg, *metricsAddr != "")
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg, plane)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "tcastfigs: serving metrics on", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "tcastfigs: metrics server:", err)
			}
		}()
		// Runtime attribution (goroutines, heap, GC) is sampled only while
		// live-serving, so file-dumped registries stay wall-clock-free.
		stopSampler := obs.StartRuntimeSampler(reg, 0)
		defer stopSampler()
	}
	if *pprofDir != "" {
		stop, err := metrics.StartProfiles(*pprofDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "tcastfigs: pprof:", err)
			}
		}()
	}

	var exps []experiment.Experiment
	if *fig == "all" {
		exps = experiment.All()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			e, err := experiment.Get(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	}

	var builder *trace.Builder
	if *traceOut != "" {
		builder = trace.NewBuilder()
		builder.SetMeta(
			trace.StringAttr("cmd", "tcastfigs"),
			trace.StringAttr("fig", *fig),
			trace.IntAttr("runs", *runs),
			trace.Int64Attr("seed", int64(*seed)),
		)
	}

	var col *audit.Collector
	if *doAudit {
		col = &audit.Collector{}
	}

	opts := experiment.Options{
		Runs: *runs, Seed: *seed, Workers: *workers,
		Metrics: reg, Trace: builder, TraceSample: *traceSample,
		Audit: col, Obs: plane.Bus(),
		Retry: query.RetryPolicy{MaxRetries: *retries, Backoff: *backoff},
	}
	if *faultsSpec != "" {
		fcfg, err := faults.ParseSpec(*faultsSpec)
		if err != nil {
			fatal(err)
		}
		opts.Faults = &fcfg
	}
	for _, e := range exps {
		start := time.Now()
		if builder != nil {
			sp := builder.Begin(trace.KindExperiment, e.ID)
			sp.SetAttr(trace.StringAttr("title", e.Title))
		}
		var tab *stats.Table
		// Label the experiment's CPU samples (phase=<id>) so profiles
		// attribute time per experiment via -tag_focus.
		obs.WithPhase(e.ID, func() { tab, err = e.Run(opts) })
		if builder != nil {
			builder.End()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		var body string
		switch {
		case *jsonOut:
			body, err = experiment.JSON(tab)
			if err != nil {
				fatal(err)
			}
		case *csv:
			body = experiment.CSV(tab)
		case *ci:
			body = experiment.RenderCI(tab)
		default:
			body = experiment.Render(tab)
		}
		if *plot && !*jsonOut {
			body += "\n" + experiment.Plot(tab, 72, 20)
		}
		header := fmt.Sprintf("== %s: %s (%.1fs) ==\n", e.ID, e.Title, time.Since(start).Seconds())
		if *out == "" {
			fmt.Print(header, body, "\n")
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		ext := ".txt"
		if *csv {
			ext = ".csv"
		}
		if *jsonOut {
			ext = ".json"
		}
		path := filepath.Join(*out, e.ID+ext)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fatal(err)
		}
		fmt.Print(header, "wrote ", path, "\n")
	}
	if col != nil {
		fmt.Print(col.Summary())
	}
	if *metricsOut != "" {
		if err := metrics.DumpToPath(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if builder != nil {
		if err := trace.WriteFile(*traceOut, builder.Trace()); err != nil {
			fatal(err)
		}
	}
	if s := plane.Summary(); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	if err := plane.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcastfigs:", err)
	os.Exit(1)
}
