package main

import (
	"testing"

	"tcast/internal/obs"
)

// TestScaleTrialsRun: every population of the trio completes a batch of
// telemetered trials and the sketch sink sees every session.
func TestScaleTrialsRun(t *testing.T) {
	for _, n := range []int{1_000, 100_000} {
		states := newScaleStates(2)
		sink := obs.NewSketchSink(nil)
		if err := runScaleTrials(n, 32, states, sink); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rep := sink.Snapshot()
		if rep.Sessions != 32 {
			t.Fatalf("n=%d: sink saw %d sessions, want 32", n, rep.Sessions)
		}
		if rep.Polls.Max <= 0 || rep.Slots.Max <= 0 {
			t.Fatalf("n=%d: degenerate cost sketch %+v", n, rep)
		}
	}
}

// TestScaleTelemetryBytesFlat pins the trio's acceptance criterion: with
// sparse ledgers, sampled traces and sketch summaries, the allocated
// bytes per fully observed trial must stay within 2x across a 100-1000x
// population sweep. Dense per-node ledgers or unsampled traces would blow
// straight through the bound.
func TestScaleTelemetryBytesFlat(t *testing.T) {
	const iters = 512
	small, err := measureScaleBytes(1_000, iters)
	if err != nil {
		t.Fatal(err)
	}
	large, err := measureScaleBytes(100_000, iters)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 {
		t.Fatalf("degenerate measurement: %.0f B/op at n=1e3", small)
	}
	if large > 2*small {
		t.Fatalf("telemetry bytes grew with N: %.0f B/op at n=1e3 vs %.0f B/op at n=1e5 (>2x)", small, large)
	}
	if testing.Short() {
		return
	}
	huge, err := measureScaleBytes(1_000_000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if huge > 2*small {
		t.Fatalf("telemetry bytes grew with N: %.0f B/op at n=1e3 vs %.0f B/op at n=1e6 (>2x)", small, huge)
	}
}

// TestCompareMemGate: the -memgate comparison counts bytes/op growth on
// gated benchmarks as a regression and leaves ungated ones alone.
func TestCompareMemGate(t *testing.T) {
	base := File{Schema: benchSchema, Version: benchVersion, Benchmarks: []Result{
		{Name: "query-2tbins-scale-1e5", NsOp: 100, BytesOp: 1000},
		{Name: "query-probabns", NsOp: 100, BytesOp: 1000},
	}}
	current := File{Schema: benchSchema, Version: benchVersion, Benchmarks: []Result{
		{Name: "query-2tbins-scale-1e5", NsOp: 100, BytesOp: 2000},
		{Name: "query-probabns", NsOp: 100, BytesOp: 2000},
	}}
	if got := compare(base, current, 1.10, "", 1.10, "query-2tbins-scale", 1.25); got != 1 {
		t.Fatalf("memgate counted %d regressions, want 1 (scale bench only)", got)
	}
	if got := compare(base, current, 1.10, "", 1.10, "", 1.25); got != 0 {
		t.Fatalf("disabled memgate counted %d regressions, want 0", got)
	}
	within := File{Schema: benchSchema, Version: benchVersion, Benchmarks: []Result{
		{Name: "query-2tbins-scale-1e5", NsOp: 100, BytesOp: 1200},
	}}
	if got := compare(base, within, 1.10, "", 1.10, "query-2tbins-scale", 1.25); got != 0 {
		t.Fatalf("within-threshold bytes counted %d regressions, want 0", got)
	}
}
