package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// History mode: -history <dir> appends each run's File as a numbered,
// timestamped snapshot (BENCH_1.json, BENCH_2.json, ...), and -trend
// reads the whole directory back and prints how every benchmark's ns/op
// and allocs/op moved across snapshots — a longitudinal view next to the
// pairwise -baseline gate.

// historyPat matches snapshot filenames and captures their sequence
// number.
var historyPat = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// listHistory returns the directory's snapshot paths in sequence order
// along with the highest sequence number seen.
func listHistory(dir string) (paths []string, maxSeq int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	type numbered struct {
		seq  int
		path string
	}
	var found []numbered
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := historyPat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.Atoi(m[1])
		if err != nil || seq <= 0 {
			continue
		}
		found = append(found, numbered{seq, filepath.Join(dir, e.Name())})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })
	for _, n := range found {
		paths = append(paths, n.path)
	}
	return paths, maxSeq, nil
}

// appendHistory stamps f with the current UTC time and writes it as the
// directory's next BENCH_<n>.json snapshot, creating the directory if
// needed. It returns the snapshot path.
func appendHistory(dir string, f File) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	_, maxSeq, err := listHistory(dir)
	if err != nil {
		return "", err
	}
	f.Timestamp = time.Now().UTC().Format(time.RFC3339)
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", maxSeq+1))
	if err := writeBenchFile(path, f); err != nil {
		return "", err
	}
	return path, nil
}

// trendReport reads every snapshot in dir and renders, per benchmark, the
// ns/op and allocs/op trajectory: first and latest values, the overall
// delta, and the step-to-step delta of the newest snapshot. Benchmarks
// absent from the latest snapshot are skipped (they carry no live signal).
func trendReport(dir string) (string, error) {
	paths, _, err := listHistory(dir)
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("no BENCH_<n>.json snapshots in %s", dir)
	}
	files := make([]File, len(paths))
	for i, p := range paths {
		f, err := readBenchFile(p)
		if err != nil {
			return "", err
		}
		files[i] = f
	}
	latest := files[len(files)-1]

	// Per-benchmark series in snapshot order; a benchmark may be missing
	// from some snapshots (filters, new benchmarks).
	type sample struct {
		nsOp     float64
		allocsOp int64
	}
	series := make(map[string][]sample)
	for _, f := range files {
		for _, r := range f.Benchmarks {
			series[r.Name] = append(series[r.Name], sample{r.NsOp, r.AllocsOp})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "bench history: %d snapshot(s) in %s", len(files), dir)
	if first, last := files[0].Timestamp, latest.Timestamp; first != "" || last != "" {
		fmt.Fprintf(&b, " (%s .. %s)", first, last)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-24s %4s  %12s  %12s  %8s %8s  %10s %8s\n",
		"benchmark", "runs", "first ns/op", "last ns/op", "Δtotal", "Δlast", "allocs/op", "Δallocs")
	for _, r := range latest.Benchmarks {
		s := series[r.Name]
		if len(s) == 0 {
			continue
		}
		first, last := s[0], s[len(s)-1]
		total := pctDelta(first.nsOp, last.nsOp)
		step := "-"
		if len(s) >= 2 {
			step = pctDelta(s[len(s)-2].nsOp, last.nsOp)
		}
		dAllocs := last.allocsOp - first.allocsOp
		allocs := fmt.Sprintf("%d", last.allocsOp)
		dAllocsStr := "="
		if dAllocs != 0 {
			dAllocsStr = fmt.Sprintf("%+d", dAllocs)
		}
		fmt.Fprintf(&b, "%-24s %4d  %12.0f  %12.0f  %8s %8s  %10s %8s\n",
			r.Name, len(s), first.nsOp, last.nsOp, total, step, allocs, dAllocsStr)
	}
	return b.String(), nil
}

// pctDelta formats the relative change from a to b as a signed percent.
func pctDelta(a, b float64) string {
	if a <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b-a)/a)
}
