package main

import "testing"

// TestSparseBytesSublinear pins the sparse pair's acceptance criterion:
// steady-state allocator traffic per bare trial must not scale with the
// field. A 10x population jump (1e5 -> 1e6, both above the cutover) may
// at most double bytes/op plus a page of slack — the streamed rounds
// reuse one pooled bin buffer and one rank directory, so a linear O(N)
// term (a materialized partition, a fresh shuffle buffer) blows straight
// through the bound.
func TestSparseBytesSublinear(t *testing.T) {
	const iters = 24
	small, err := measureSparseBytes(100_000, iters)
	if err != nil {
		t.Fatal(err)
	}
	large, err := measureSparseBytes(1_000_000, iters)
	if err != nil {
		t.Fatal(err)
	}
	if large > 2*small+4096 {
		t.Fatalf("sparse trial bytes grew with N: %.0f B/op at n=1e5 vs %.0f B/op at n=1e6", small, large)
	}
}

// TestSparse1e7Completes: the 10^7-node benchmark population finishes a
// session on one pooled state — the resident set stays at one field's
// worth of buffers, so the point runs even under -short CI memory.
func TestSparse1e7Completes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second single trial")
	}
	var st trialState
	if err := runSparseTrials(10_000_000, 1, &st); err != nil {
		t.Fatal(err)
	}
}
