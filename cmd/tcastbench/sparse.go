package main

import (
	"fmt"
	"runtime"
	"testing"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// The sparse pair prices the streamed query path itself, with no
// observability layers: one op is one bare 2tBins trial on a field at or
// above idset.SparseCutover, so sessions draw bins one at a time from the
// keyed permutation against the ranked candidate snapshot, and positives
// come from Floyd's sparse sampler. The entries exist for their B/op
// column — the CI memgate holds the per-trial allocator traffic of a
// 10^6- and a 10^7-node session to the committed baseline, the same way
// the telemetry trio pins observability memory flat in N.
//
// Unlike the trio, the pair runs serially with ONE preallocated state:
// each worker's O(N) substrate (channel positive set, the session's rank
// directory) is tens of megabytes at 10^7, so one resident copy is the
// whole point — the measured loop reuses it and steady-state trials
// allocate nothing.

// sparseWarmup trials size every O(N) buffer before the timed loop.
const sparseWarmup = 2

// runSparseTrials executes total bare trials at population n against the
// one pooled state, in trial order. Shared by the benchmark body and the
// sublinear-bytes regression test.
func runSparseTrials(n, total int, st *trialState) error {
	cfg := fastsim.DefaultConfig()
	root := rng.New(1)
	var r rng.Source
	for i := 0; i < total; i++ {
		root.SplitInto(uint64(i), &r)
		r.SplitInto(1, &st.chr)
		st.ch.ResetRandom(n, scaleX, cfg, &st.chr)
		r.SplitInto(2, &st.algr)
		res, err := core.RunIn(&st.arena, core.TwoTBins{}, &st.ch, n, scaleT, &st.algr)
		if err != nil {
			return err
		}
		if !res.Decision {
			return fmt.Errorf("sparse trial %d at n=%d: wrong decision", i, n)
		}
	}
	return nil
}

// sparseBench is one entry of the pair.
func sparseBench(name string, n int) bench {
	return bench{
		name:     name,
		short:    true,
		perTrial: true,
		fn: func(b *testing.B) {
			var st trialState
			if err := runSparseTrials(n, sparseWarmup, &st); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := runSparseTrials(n, b.N, &st); err != nil {
				b.Fatal(err)
			}
		},
		traced: func() (int64, int64, error) {
			// Cost-model work of one trial: a single traced session. The
			// span layer materializes each streamed bin's members exactly
			// as the bare path hands them to the querier.
			r := rng.New(1).Split(0)
			ch, _ := fastsim.RandomPositives(n, scaleX, fastsim.DefaultConfig(), r.Split(1))
			tb := trace.NewBuilder()
			sq := trace.NewSpanQuerier(ch, tb)
			sq.SetSampling(scaleSampleRate, 0)
			sq.StartSession("2tBins")
			if _, err := (core.TwoTBins{}).Run(sq, n, scaleT, r.Split(2)); err != nil {
				return 0, 0, err
			}
			sq.EndSession()
			a := trace.Analyze(tb.Trace())
			return int64(a.Polls), a.Slots, nil
		},
	}
}

// sparseBenches returns the pair in sweep order.
func sparseBenches() []bench {
	return []bench{
		sparseBench("query-2tbins-sparse-1e6", 1_000_000),
		sparseBench("query-2tbins-sparse-1e7", 10_000_000),
	}
}

// measureSparseBytes is the test hook behind the sublinear-bytes
// acceptance check: allocated bytes per bare sparse trial at population
// n, measured after the warmup has sized the one state's buffers.
func measureSparseBytes(n, iters int) (float64, error) {
	var st trialState
	if err := runSparseTrials(n, sparseWarmup, &st); err != nil {
		return 0, fmt.Errorf("warmup: %w", err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := runSparseTrials(n, iters, &st); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(iters), nil
}
