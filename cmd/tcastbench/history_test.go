package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func snapshot(ns float64, allocs int64) File {
	return File{
		Schema:  benchSchema,
		Version: benchVersion,
		Benchmarks: []Result{
			{Name: "BenchmarkSweep", Iterations: 100, NsOp: ns, AllocsOp: allocs},
			{Name: "BenchmarkFaulted", Iterations: 50, NsOp: ns * 2, AllocsOp: 0},
		},
	}
}

func TestAppendHistorySequencesAndStamps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hist") // appendHistory must create it
	p1, err := appendHistory(dir, snapshot(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Fatalf("first snapshot at %s", p1)
	}
	p2, err := appendHistory(dir, snapshot(1100, 3))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2.json" {
		t.Fatalf("second snapshot at %s", p2)
	}
	// Sequence continues from the highest existing number, holes and all.
	if err := os.Remove(p1); err != nil {
		t.Fatal(err)
	}
	p3, err := appendHistory(dir, snapshot(1200, 3))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p3) != "BENCH_3.json" {
		t.Fatalf("snapshot after a hole at %s", p3)
	}
	f, err := readBenchFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Timestamp == "" {
		t.Fatal("snapshot not timestamped")
	}
	if _, err := time.Parse(time.RFC3339, f.Timestamp); err != nil {
		t.Fatalf("timestamp %q: %v", f.Timestamp, err)
	}
}

func TestListHistoryOrdersAndFilters(t *testing.T) {
	dir := t.TempDir()
	// Write out of order, with a double-digit sequence and decoys.
	for _, name := range []string{"BENCH_10.json", "BENCH_2.json", "BENCH_1.json",
		"BENCH.json", "BENCH_x.json", "notes.txt"} {
		if err := writeBenchFile(filepath.Join(dir, name), snapshot(1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	paths, maxSeq, err := listHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 10 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}
	var names []string
	for _, p := range paths {
		names = append(names, filepath.Base(p))
	}
	want := "BENCH_1.json BENCH_2.json BENCH_10.json"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("order: %s", got)
	}
}

func TestTrendReport(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []File{snapshot(1000, 3), snapshot(1500, 3), snapshot(1200, 5)} {
		if _, err := appendHistory(dir, f); err != nil {
			t.Fatal(err)
		}
	}
	out, err := trendReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 snapshot(s)") {
		t.Fatalf("report header:\n%s", out)
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "BenchmarkSweep") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("BenchmarkSweep row missing:\n%s", out)
	}
	// 1000 -> 1200 overall (+20%), 1500 -> 1200 last step (-20%), allocs 3 -> 5.
	for _, want := range []string{"+20.0%", "-20.0%", "+2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("row missing %q: %s", want, line)
		}
	}
	// The unchanged-allocs benchmark renders "=".
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "BenchmarkFaulted") && !strings.Contains(l, "=") {
			t.Fatalf("unchanged allocs not marked: %s", l)
		}
	}
}

func TestTrendReportEmpty(t *testing.T) {
	if _, err := trendReport(t.TempDir()); err == nil {
		t.Fatal("empty history accepted")
	}
}
