// Command tcastbench is the perf-regression harness: it runs every
// registered figure benchmark plus the primitive micro-benchmarks
// in-process via testing.Benchmark and writes a schema-versioned
// BENCH.json. Besides wall-clock rates (ns/op, allocs/op) each entry
// carries the cost-model rates pulled from the trace layer — polls/sec and
// virtual-slots/sec — so a slowdown in the simulator is distinguishable
// from a change in the algorithms' query counts.
//
// Usage:
//
//	tcastbench                                # run everything, write BENCH.json
//	tcastbench -short -out BENCH.json         # CI smoke subset
//	tcastbench -run fig1                      # substring-filtered subset
//	tcastbench -baseline old.json -threshold 1.10   # fail (exit 1) on >10% ns/op regression
//	tcastbench -input new.json -baseline old.json   # compare two files without running
//	tcastbench -list                          # benchmark names and exit
//
// Trace tooling (the structured spans the -trace flags of the other
// commands write):
//
//	tcastbench -diff a.jsonl b.jsonl          # first divergent span, exit 1 if any
//	tcastbench -analyze t.jsonl               # per-phase virtual-time breakdown
//
// History mode keeps per-run snapshots and reads the trend across them:
//
//	tcastbench -short -history bench-history/   # run, then append BENCH_<n>.json
//	tcastbench -trend -history bench-history/   # print ns/op + allocs/op deltas
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tcast/internal/audit"
	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/experiment"
	"tcast/internal/fastsim"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/serve"
	"tcast/internal/trace"
)

// BENCH.json schema identifiers; bump Version on breaking shape changes.
const (
	benchSchema  = "tcast-bench"
	benchVersion = 1
)

// defaultFaultSpec exercises every injector knob at once, so the faulted
// benchmark prices the full fault-layer hot path (burst chains, churn,
// skew, retry middleware) rather than one mechanism.
const defaultFaultSpec = "burst=8,frac=0.2,churn=0.002,recover=0.1,skew=0.01"

// Result is one benchmark's entry in BENCH.json.
type Result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	AllocsOp   int64   `json:"allocs_op"`
	BytesOp    int64   `json:"bytes_op"`
	// Polls and VirtualSlots are the cost-model work of ONE iteration,
	// measured on a separate traced pass (zero when the benchmark has no
	// group polls, e.g. the analytic figures).
	Polls        int64 `json:"polls"`
	VirtualSlots int64 `json:"virtual_slots"`
	// PollsPerSec and VirtualSlotsPerSec divide that work by ns/op: the
	// simulator's throughput in the paper's own cost units.
	PollsPerSec        float64 `json:"polls_per_sec"`
	VirtualSlotsPerSec float64 `json:"virtual_slots_per_sec"`
	// TrialsPerSec is set on the per-trial parallel benchmarks (one trial
	// per op through experiment.RunTrials at full worker parallelism):
	// 1e9/ns_op, the pool's aggregate trial throughput.
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
	// QueriesPerSec and P99LatencyNs are set on the serving benchmarks
	// (one op = one wave of c concurrent sessions through a serve.Pool):
	// aggregate query throughput derived from ns/op, and the
	// 99th-percentile session wall latency of a fixed measurement run.
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	P99LatencyNs  float64 `json:"p99_latency_ns,omitempty"`
}

// File is the whole BENCH.json document.
type File struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Timestamp (RFC 3339, UTC) is stamped on history snapshots so -trend
	// can order and label them; plain BENCH.json files omit it.
	Timestamp  string   `json:"timestamp,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// bench is one runnable benchmark: the timed body plus an optional traced
// pass that meters one iteration's polls and virtual slots.
type bench struct {
	name  string
	short bool // include in -short (CI smoke) runs
	fn    func(b *testing.B)
	// traced measures one iteration's cost-model work; nil when the
	// benchmark has nothing to trace.
	traced func() (polls, slots int64, err error)
	// perTrial marks benchmarks whose op is one trial of a parallel pool;
	// they report TrialsPerSec so bare/traced/audited throughput lines up
	// side by side (see `make bench-obs`).
	perTrial bool
	// extra, when set, runs after the timed and traced passes to fill
	// benchmark-specific Result fields (the serving trio's queries/sec
	// and p99 latency).
	extra func(r *Result) error
}

func main() {
	var (
		out         = flag.String("out", "BENCH.json", "write results to this file ('-' = stdout)")
		short       = flag.Bool("short", false, "run only the smoke subset (micro-benchmarks + analytic figures)")
		run         = flag.String("run", "", "run only benchmarks whose name contains this substring")
		baseFile    = flag.String("baseline", "", "compare against this BENCH.json; exit 1 on regression")
		threshold   = flag.Float64("threshold", 1.10, "ns/op ratio above which a benchmark counts as regressed")
		allocGate   = flag.String("allocgate", "query-2tbins", "also gate allocs/op for benchmarks whose name contains this substring (empty disables)")
		allocThresh = flag.Float64("allocthreshold", 1.10, "allocs/op ratio above which a gated benchmark counts as regressed")
		memGate     = flag.String("memgate", "query-2tbins-s", "also gate bytes/op for benchmarks whose name contains this substring (empty disables; the default covers the telemetry-scale trio and the bare sparse pair)")
		memThresh   = flag.Float64("memthreshold", 1.25, "bytes/op ratio above which a gated benchmark counts as regressed")
		input       = flag.String("input", "", "compare this BENCH.json against -baseline instead of running")
		list        = flag.Bool("list", false, "list benchmark names and exit")
		diffMode    = flag.Bool("diff", false, "diff two span-trace JSONL files (args: a.jsonl b.jsonl); exit 1 on divergence")
		analyze     = flag.String("analyze", "", "print the per-phase virtual-time breakdown of this span-trace JSONL file")
		faultSpec   = flag.String("faults", defaultFaultSpec, "fault-injection spec for the query-2tbins-faulted benchmark")
		historyDir  = flag.String("history", "", "append this run's results as a timestamped BENCH_<n>.json snapshot in this directory")
		trend       = flag.Bool("trend", false, "print per-benchmark ns/op and allocs/op deltas across the -history snapshots instead of running")
		pprofDir    = flag.String("pprof", "", "write cpu/heap/goroutine/mutex/block profiles of the benchmark run into this directory")
	)
	var obsCfg obs.Config
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	switch {
	case *diffMode:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two trace files, got %d args", flag.NArg()))
		}
		os.Exit(diffTraces(flag.Arg(0), flag.Arg(1)))
	case *analyze != "":
		t, err := trace.ReadFile(*analyze)
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.Analyze(t).Render())
		return
	case *list:
		for _, b := range benches(*faultSpec) {
			marker := ""
			if b.short {
				marker = "  (short)"
			}
			fmt.Printf("%s%s\n", b.name, marker)
		}
		return
	case *trend:
		if *historyDir == "" {
			fatal(fmt.Errorf("-trend needs -history <dir>"))
		}
		report, err := trendReport(*historyDir)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		return
	}

	plane, err := obsCfg.Build(os.Stderr, nil, false)
	if err != nil {
		fatal(err)
	}
	if *pprofDir != "" {
		stop, err := metrics.StartProfiles(*pprofDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "tcastbench: pprof:", err)
			}
		}()
	}

	var current File
	if *input != "" {
		f, err := readBenchFile(*input)
		if err != nil {
			fatal(err)
		}
		current = f
	} else {
		current = runBenches(*short, *run, *faultSpec, plane.Bus())
		if err := writeBenchFile(*out, current); err != nil {
			fatal(err)
		}
		if *historyDir != "" {
			path, err := appendHistory(*historyDir, current)
			if err != nil {
				fatal(err)
			}
			fmt.Println("appended history snapshot", path)
		}
	}

	if *baseFile != "" {
		base, err := readBenchFile(*baseFile)
		if err != nil {
			fatal(err)
		}
		if regressions := compare(base, current, *threshold, *allocGate, *allocThresh, *memGate, *memThresh); regressions > 0 {
			fmt.Fprintf(os.Stderr, "tcastbench: %d benchmark(s) regressed beyond %.2fx\n", regressions, *threshold)
			os.Exit(1)
		}
		fmt.Println("no regressions beyond threshold")
	}
	if err := plane.Close(); err != nil {
		fatal(err)
	}
}

// runBenches executes the selected benchmarks and collects results. Each
// result is also published on bus (when non-nil) as a KindBench event —
// the benchmark body itself always runs bare, so the published numbers
// are the same a silent run produces.
func runBenches(short bool, filter, faultSpec string, bus *obs.Bus) File {
	f := File{Schema: benchSchema, Version: benchVersion}
	for _, b := range benches(faultSpec) {
		if short && !b.short {
			continue
		}
		if filter != "" && !strings.Contains(b.name, filter) {
			continue
		}
		var res testing.BenchmarkResult
		obs.WithPhase(b.name, func() { res = testing.Benchmark(b.fn) })
		r := Result{
			Name:       b.name,
			Iterations: res.N,
			NsOp:       float64(res.NsPerOp()),
			AllocsOp:   res.AllocsPerOp(),
			BytesOp:    res.AllocedBytesPerOp(),
		}
		if b.traced != nil {
			polls, slots, err := b.traced()
			if err != nil {
				fatal(fmt.Errorf("%s: traced pass: %w", b.name, err))
			}
			r.Polls, r.VirtualSlots = polls, slots
			if r.NsOp > 0 {
				r.PollsPerSec = float64(polls) * 1e9 / r.NsOp
				r.VirtualSlotsPerSec = float64(slots) * 1e9 / r.NsOp
			}
		}
		if b.perTrial && r.NsOp > 0 {
			r.TrialsPerSec = 1e9 / r.NsOp
		}
		if b.extra != nil {
			if err := b.extra(&r); err != nil {
				fatal(fmt.Errorf("%s: extra pass: %w", b.name, err))
			}
		}
		f.Benchmarks = append(f.Benchmarks, r)
		line := fmt.Sprintf("%-24s %12.0f ns/op %8d allocs/op %12.0f polls/s %12.0f vslots/s",
			r.Name, r.NsOp, r.AllocsOp, r.PollsPerSec, r.VirtualSlotsPerSec)
		if r.TrialsPerSec > 0 {
			line += fmt.Sprintf(" %10.0f trials/s", r.TrialsPerSec)
		}
		if r.QueriesPerSec > 0 {
			line += fmt.Sprintf(" %10.0f queries/s p99=%.0fus", r.QueriesPerSec, r.P99LatencyNs/1e3)
		}
		if bus != nil {
			bus.Publish(obs.Event{
				Kind: obs.KindBench, Outcome: r.Name,
				Trial: -1, Poll: -1, CausalPoll: -1,
				Polls: int(r.NsOp), Slots: r.AllocsOp,
				Detail: fmt.Sprintf("%d iterations, %.0f ns/op, %d allocs/op, %.0f polls/s, %.0f vslots/s",
					r.Iterations, r.NsOp, r.AllocsOp, r.PollsPerSec, r.VirtualSlotsPerSec),
			})
		}
		fmt.Println(line)
	}
	return f
}

// compare reports (and counts) the benchmarks whose ns/op grew beyond
// threshold relative to base. Benchmarks whose name contains allocGate are
// additionally held to allocThresh on allocs/op — the hot-path benchmarks
// are allocation-free by design, so new allocations are a regression even
// when the wall clock hides them. Benchmarks whose name contains memGate
// are likewise held to memThresh on bytes/op — the telemetry-scale trio
// exists to pin per-trial observability memory flat in N, so byte growth
// there is a regression regardless of speed. Benchmarks present on only
// one side are reported but never counted as regressions.
func compare(base, current File, threshold float64, allocGate string, allocThresh float64, memGate string, memThresh float64) int {
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	regressions := 0
	for _, r := range current.Benchmarks {
		old, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("%-24s new benchmark (no baseline)\n", r.Name)
			continue
		}
		if old.NsOp <= 0 {
			continue
		}
		ratio := r.NsOp / old.NsOp
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			regressions++
		}
		if allocGate != "" && strings.Contains(r.Name, allocGate) &&
			float64(r.AllocsOp) > float64(old.AllocsOp)*allocThresh {
			status = fmt.Sprintf("ALLOCS REGRESSED (%d -> %d allocs/op)", old.AllocsOp, r.AllocsOp)
			regressions++
		}
		if memGate != "" && strings.Contains(r.Name, memGate) &&
			float64(r.BytesOp) > float64(old.BytesOp)*memThresh {
			status = fmt.Sprintf("BYTES REGRESSED (%d -> %d B/op)", old.BytesOp, r.BytesOp)
			regressions++
		}
		fmt.Printf("%-24s %12.0f -> %12.0f ns/op  (%.2fx)  %s\n", r.Name, old.NsOp, r.NsOp, ratio, status)
	}
	return regressions
}

func diffTraces(pathA, pathB string) int {
	a, err := trace.ReadFile(pathA)
	if err != nil {
		fatal(err)
	}
	b, err := trace.ReadFile(pathB)
	if err != nil {
		fatal(err)
	}
	d := trace.Diff(a, b)
	fmt.Println(d)
	if d.Identical {
		return 0
	}
	return 1
}

func readBenchFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return File{}, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	if f.Version != benchVersion {
		return File{}, fmt.Errorf("%s: version %d, want %d", path, f.Version, benchVersion)
	}
	return f, nil
}

func writeBenchFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// figureRuns mirrors the reduced per-figure trial counts of the repo's
// bench_test.go, so one iteration stays well under the benchtime budget.
func figureRuns(id string) int {
	switch id {
	case "fig4", "tab-err":
		return 4
	case "fig8", "fig10":
		return 1
	case "ext-multihop":
		return 2
	case "ext-scale":
		// The sweep's trial budget is already clamped internally by N; one
		// run keeps the 10^7 point to a single session per iteration.
		return 1
	}
	if strings.HasPrefix(id, "abl-") || strings.HasPrefix(id, "ext-") {
		return 10
	}
	return 20
}

// shortFigure marks the figures cheap enough for the CI smoke subset: the
// analytic ones that do no Monte-Carlo sweeps.
func shortFigure(id string) bool {
	return id == "fig8" || id == "fig10"
}

// benches assembles the full benchmark list: every registered experiment
// (so a newly registered figure is covered automatically) followed by the
// primitive micro-benchmarks.
func benches(faultSpec string) []bench {
	var out []bench
	for _, e := range experiment.All() {
		e := e
		runs := figureRuns(e.ID)
		out = append(out, bench{
			name:  e.ID,
			short: shortFigure(e.ID),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tab, err := e.Run(experiment.Options{Runs: runs, Seed: uint64(i + 1)})
					if err != nil {
						b.Fatal(err)
					}
					if len(tab.Series) == 0 {
						b.Fatal("empty table")
					}
				}
			},
			traced: func() (int64, int64, error) {
				tb := trace.NewBuilder()
				if _, err := e.Run(experiment.Options{Runs: runs, Seed: 1, Trace: tb}); err != nil {
					return 0, 0, err
				}
				a := trace.Analyze(tb.Trace())
				return int64(a.Polls), a.Slots, nil
			},
		})
	}
	out = append(out,
		trialsBench("query-2tbins", obsBare),
		trialsBench("query-2tbins-traced", obsTraced),
		trialsBench("query-2tbins-audited", obsAudited),
		faultedTrialsBench(faultSpec),
		algBench("query-2tbins-2plus", core.TwoTBins{}, 128, 16, 16, fastsim.TwoPlusConfig()),
		algBench("query-expincrease", core.ExpIncrease{}, 128, 16, 16, fastsim.DefaultConfig()),
		algBench("query-probabns", core.ProbABNS{}, 128, 16, 16, fastsim.DefaultConfig()),
		csmaBench(),
		packetBench(),
	)
	out = append(out, scaleBenches()...)
	out = append(out, sparseBenches()...)
	out = append(out, serveBenches()...)
	return out
}

// serveBenches is the serving trio: one op is one wave of c concurrent
// 2tBins sessions through a serve.Pool sharing a single field (so every
// session pays the deterministic virtual-slot contention price). The
// deltas across c=1/8/64 are the scheduler's real-time cost under
// contention; QueriesPerSec is the daemon-side throughput and
// P99LatencyNs the tail session latency of a fixed 256-session run.
func serveBenches() []bench {
	var out []bench
	for _, c := range []int{1, 8, 64} {
		out = append(out, serveBench(c))
	}
	return out
}

func serveBench(conc int) bench {
	const n, t, x = 128, 16, 16
	poolCfg := serve.Config{
		Fields: 1, MaxActive: conc,
		// Admission slots release after Done() fires, so the next wave can
		// briefly overlap the previous one's teardown: size the queue and
		// the per-client bound to absorb two full waves.
		MaxQueue: 2 * conc, MaxPerClient: 4 * conc,
		MaxHistory: 1,
	}
	wave := func(p *serve.Pool, seed uint64, lat []time.Duration) ([]time.Duration, error) {
		subs := make([]*serve.Session, conc)
		for j := range subs {
			s, err := p.Submit(serve.Spec{
				N: n, T: t, X: x, Alg: "2tbins",
				Seed: seed + uint64(j), Field: 0,
			}, "bench")
			if err != nil {
				return lat, err
			}
			subs[j] = s
		}
		for _, s := range subs {
			<-s.Done()
			if _, err := s.Result(); err != nil {
				return lat, err
			}
			if lat != nil {
				lat = append(lat, s.Wall())
			}
		}
		return lat, nil
	}
	return bench{
		name:  fmt.Sprintf("serve-2tbins-c%d", conc),
		short: true,
		fn: func(b *testing.B) {
			p := serve.NewPool(poolCfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wave(p, uint64(i*conc)+1, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := p.Drain(ctx); err != nil {
				b.Fatal(err)
			}
		},
		extra: func(r *Result) error {
			if r.NsOp > 0 {
				r.QueriesPerSec = float64(conc) * 1e9 / r.NsOp
			}
			// Dedicated tail-latency run: 256 sessions in waves of conc.
			p := serve.NewPool(poolCfg)
			waves := (256 + conc - 1) / conc
			lat := make([]time.Duration, 0, waves*conc)
			var err error
			for w := 0; w < waves; w++ {
				if lat, err = wave(p, uint64(w*conc)+1, lat); err != nil {
					return err
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := p.Drain(ctx); err != nil {
				return err
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			r.P99LatencyNs = float64(lat[(len(lat)*99+99)/100-1])
			return nil
		},
	}
}

// trialState is the pooled per-trial scratch of the trial benchmarks — the
// channel, the session arena, and the trial's derived RNG streams — mirroring
// the sweep driver's pool so the bare benchmark prices the same
// allocation-free hot path the figures run on.
type trialState struct {
	ch        fastsim.Channel
	arena     core.Arena
	chr, algr rng.Source
	// aud is recycled across audited trials, mirroring the sweep driver:
	// Reset re-grades in place and nothing reads the verdict's node
	// account after the trial, so the pooled store is never observed stale.
	aud *audit.Auditor
}

var trialPool = sync.Pool{New: func() any { return new(trialState) }}

// obsLayer selects the observability stack of a trialsBench entry.
type obsLayer int

const (
	obsBare obsLayer = iota
	obsTraced
	obsAudited
)

// trialsBench is the parallel-observability trio: one op is one 2tBins
// trial (n=128, t=16, x=16) run through experiment.RunTrials at full
// worker parallelism, with the chosen layer stacked exactly as the sweep
// driver stacks it. Trials are batched like sweep points — a fresh trace
// builder grafted (or the audit batch flushed) every 1000 trials — so the
// measured cost includes the fork/graft bookkeeping and memory stays
// bounded at any b.N. The deltas between the three entries are the traced
// and audited overheads per trial; against a serial baseline the
// trials/sec column shows the parallel speedup.
func trialsBench(name string, layer obsLayer) bench {
	const n, t, x, batch = 128, 16, 16, 1000
	cfg := fastsim.DefaultConfig()
	trial := func(builder *trace.Builder, col *audit.Collector) func(i int, r *rng.Source) (float64, error) {
		return func(i int, r *rng.Source) (float64, error) {
			st := trialPool.Get().(*trialState)
			defer trialPool.Put(st)
			r.SplitInto(1, &st.chr)
			st.ch.ResetRandom(n, x, cfg, &st.chr)
			var q query.Querier = &st.ch
			var aud *audit.Auditor
			if col != nil {
				acfg := audit.Config{N: n, T: t}
				var err error
				if st.aud == nil {
					st.aud, err = audit.New(q, acfg)
				} else {
					err = st.aud.Reset(q, acfg)
				}
				if err != nil {
					return 0, err
				}
				aud = st.aud
				q = aud
			}
			var fb *trace.Builder
			var sq *trace.SpanQuerier
			if builder != nil {
				fb = builder.Fork(i)
				fb.Begin(trace.KindTrial, "trial")
				sq = trace.NewSpanQuerier(q, fb)
				sq.StartSession("2tBins")
				q = sq
			}
			r.SplitInto(2, &st.algr)
			res, err := (core.TwoTBins{}).RunIn(&st.arena, q, n, t, &st.algr)
			if err != nil {
				return 0, err
			}
			if aud != nil {
				col.AddAt(i, "2tBins", aud.Finish(res.Decision))
			}
			if sq != nil {
				sq.EndSession()
				fb.End()
			}
			return float64(res.Queries), nil
		}
	}
	return bench{
		name:     name,
		short:    true,
		perTrial: true,
		fn: func(b *testing.B) {
			workers := runtime.GOMAXPROCS(0)
			var col *audit.Collector
			if layer == obsAudited {
				col = &audit.Collector{}
			}
			b.ReportAllocs()
			for done, seed := 0, uint64(1); done < b.N; seed++ {
				m := b.N - done
				if m > batch {
					m = batch
				}
				var builder *trace.Builder
				if layer == obsTraced {
					builder = trace.NewBuilder()
				}
				if _, err := experiment.RunTrials(m, workers, rng.New(seed), trial(builder, col)); err != nil {
					b.Fatal(err)
				}
				if builder != nil {
					builder.Graft()
				}
				if col != nil {
					col.Flush()
				}
				done += m
			}
		},
		traced: func() (int64, int64, error) {
			// Cost-model work of one trial: a single traced session.
			r := rng.New(1).Split(0)
			ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
			tb := trace.NewBuilder()
			sq := trace.NewSpanQuerier(ch, tb)
			sq.StartSession("2tBins")
			if _, err := (core.TwoTBins{}).Run(sq, n, t, r.Split(2)); err != nil {
				return 0, 0, err
			}
			sq.EndSession()
			a := trace.Analyze(tb.Trace())
			return int64(a.Polls), a.Slots, nil
		},
	}
}

// faultedTrialsBench is trialsBench's faulted sibling: the same parallel
// 2tBins trial pool with the fault injector and retry middleware stacked
// above the channel, exactly as `-faults`/`-retries` stack them in
// tcastsim. The delta against query-2tbins is the injection + retry
// overhead per trial. Decisions are not checked — under injected faults
// some are wrong by design; the trial only has to complete.
func faultedTrialsBench(spec string) bench {
	const n, t, x, batch = 128, 16, 16, 1000
	cfg := fastsim.DefaultConfig()
	fcfg, err := faults.ParseSpec(spec)
	if err != nil {
		fatal(fmt.Errorf("-faults: %w", err))
	}
	retry := query.RetryPolicy{MaxRetries: 2, Backoff: 1}
	trial := func(i int, r *rng.Source) (float64, error) {
		st := trialPool.Get().(*trialState)
		defer trialPool.Put(st)
		r.SplitInto(1, &st.chr)
		st.ch.ResetRandom(n, x, cfg, &st.chr)
		q := query.WithRetry(faults.New(&st.ch, fcfg, n, r.Split(9)), retry)
		r.SplitInto(2, &st.algr)
		res, err := (core.TwoTBins{}).RunIn(&st.arena, q, n, t, &st.algr)
		if err != nil {
			return 0, err
		}
		return float64(res.Queries), nil
	}
	return bench{
		name:     "query-2tbins-faulted",
		short:    true,
		perTrial: true,
		fn: func(b *testing.B) {
			workers := runtime.GOMAXPROCS(0)
			b.ReportAllocs()
			for done, seed := 0, uint64(1); done < b.N; seed++ {
				m := b.N - done
				if m > batch {
					m = batch
				}
				if _, err := experiment.RunTrials(m, workers, rng.New(seed), trial); err != nil {
					b.Fatal(err)
				}
				done += m
			}
		},
		traced: func() (int64, int64, error) {
			// One faulted traced session; the span recorder discovers the
			// retry middleware's slot meter, so backoff slots are priced in.
			r := rng.New(1).Split(0)
			ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
			tb := trace.NewBuilder()
			q := query.WithRetry(faults.New(ch, fcfg, n, r.Split(9)), retry)
			sq := trace.NewSpanQuerier(q, tb)
			sq.StartSession("2tBins")
			if _, err := (core.TwoTBins{}).Run(sq, n, t, r.Split(2)); err != nil {
				return 0, 0, err
			}
			sq.EndSession()
			a := trace.Analyze(tb.Trace())
			return int64(a.Polls), a.Slots, nil
		},
	}
}

// algBench times one tcast session per iteration on the abstract channel;
// its traced pass meters the same session through the span recorder.
func algBench(name string, alg core.Algorithm, n, t, x int, cfg fastsim.Config) bench {
	return bench{
		name:  name,
		short: true,
		fn: func(b *testing.B) {
			root := rng.New(1)
			var st trialState
			var r rng.Source
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				root.SplitInto(uint64(i), &r)
				r.SplitInto(1, &st.chr)
				st.ch.ResetRandom(n, x, cfg, &st.chr)
				r.SplitInto(2, &st.algr)
				if _, err := core.RunIn(&st.arena, alg, &st.ch, n, t, &st.algr); err != nil {
					b.Fatal(err)
				}
			}
		},
		traced: func() (int64, int64, error) {
			r := rng.New(1).Split(0)
			ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
			tb := trace.NewBuilder()
			sq := trace.NewSpanQuerier(ch, tb)
			sq.StartSession(alg.Name())
			if _, err := alg.Run(sq, n, t, r.Split(2)); err != nil {
				return 0, 0, err
			}
			sq.EndSession()
			a := trace.Analyze(tb.Trace())
			return int64(a.Polls), a.Slots, nil
		},
	}
}

// csmaBench times the abstract CSMA baseline; slots stand in for virtual
// time, and it has no group polls to trace.
func csmaBench() bench {
	return bench{
		name:  "baseline-csma",
		short: true,
		fn: func(b *testing.B) {
			root := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := root.Split(uint64(i))
				pos := bitset.New(128)
				for _, id := range r.Split(1).Sample(128, 32) {
					pos.Add(id)
				}
				baseline.CSMA{}.Run(128, 16, pos, r.Split(2))
			}
		},
		traced: func() (int64, int64, error) {
			r := rng.New(1).Split(0)
			pos := bitset.New(128)
			for _, id := range r.Split(1).Sample(128, 32) {
				pos.Add(id)
			}
			res := baseline.CSMA{}.Run(128, 16, pos, r.Split(2))
			return 0, int64(res.Slots), nil
		},
	}
}

// packetBench times 2tBins over the packet-level backcast radio; the
// traced pass rides the session's own slot meter (3 slots per query).
func packetBench() bench {
	session := func(r *rng.Source) (*pollcast.Session, error) {
		parts := make([]*pollcast.Participant, 64)
		for id := range parts {
			parts[id] = &pollcast.Participant{ID: id}
		}
		for _, id := range r.Split(1).Sample(64, 8) {
			parts[id].Positive = true
		}
		med := radio.NewMedium(radio.Config{}, r.Split(2))
		return pollcast.NewSession(med, 1<<16, parts, pollcast.Backcast, query.OnePlus)
	}
	return bench{
		name:  "packet-backcast-2tbins",
		short: true,
		fn: func(b *testing.B) {
			root := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := root.Split(uint64(i))
				sess, err := session(r)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := (core.TwoTBins{}).Run(sess, 64, 8, r.Split(3)); err != nil {
					b.Fatal(err)
				}
			}
		},
		traced: func() (int64, int64, error) {
			r := rng.New(1).Split(0)
			sess, err := session(r)
			if err != nil {
				return 0, 0, err
			}
			tb := trace.NewBuilder()
			sq := trace.NewSpanQuerier(sess, tb)
			sq.StartSession("2tBins")
			if _, err := (core.TwoTBins{}).Run(sq, 64, 8, r.Split(3)); err != nil {
				return 0, 0, err
			}
			sq.EndSession()
			a := trace.Analyze(tb.Trace())
			return int64(a.Polls), a.Slots, nil
		},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcastbench:", err)
	os.Exit(1)
}
