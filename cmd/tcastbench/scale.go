package main

import (
	"fmt"
	"runtime"
	"testing"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/experiment"
	"tcast/internal/fastsim"
	"tcast/internal/obs"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// The telemetry-scale trio: one op is one fully observed 2tBins trial —
// sparse-ledger audited, span-traced at 1-in-scaleSampleRate poll
// sampling, and folded into a constant-memory sketch sink — at population
// N = 10^3, 10^5, 10^6 with the same threshold. The point of the trio is
// the B/op column: with the sketch toolkit in place the telemetry cost
// per trial is flat in N (the CI memgate holds it there), where dense
// ledgers and unsampled traces used to grow linearly.
const (
	scaleT          = 16
	scaleX          = 16
	scaleBatch      = 256
	scaleSampleRate = 32
)

// scaleWorkers bounds the trio's parallelism: each worker keeps O(N)
// substrate state (channel bitsets, shadow knowledge), so the pool is
// capped to keep the resident set small even at N=10^6.
func scaleWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	return w
}

// scaleState is one worker's reusable trial state. Unlike the sync.Pool
// of the n=128 benchmarks, the trio preallocates one state per worker and
// indexes it by trial stripe: the O(N) buffers inside (channel bitsets,
// the auditor's shadow knowledge, the arena) must survive every
// iteration, and a pool may evict them under GC pressure mid-run, which
// would charge spurious O(N) reallocations to the measured loop.
type scaleState struct {
	ch        fastsim.Channel
	arena     core.Arena
	chr, algr rng.Source
	aud       *audit.Auditor
}

func newScaleStates(workers int) []*scaleState {
	states := make([]*scaleState, workers)
	for i := range states {
		states[i] = new(scaleState)
	}
	return states
}

// scaleTrial builds the per-trial function over the preallocated states.
// RunTrials stripes trial i onto worker i mod len(states), so the state
// index below is race-free for any batch size.
func scaleTrial(n int, states []*scaleState, builder *trace.Builder, sink *obs.SketchSink) func(i int, r *rng.Source) (float64, error) {
	cfg := fastsim.DefaultConfig()
	return func(i int, r *rng.Source) (float64, error) {
		st := states[i%len(states)]
		r.SplitInto(1, &st.chr)
		st.ch.ResetRandom(n, scaleX, cfg, &st.chr)
		acfg := audit.Config{N: n, T: scaleT}
		var err error
		if st.aud == nil {
			st.aud, err = audit.New(&st.ch, acfg)
		} else {
			err = st.aud.Reset(&st.ch, acfg)
		}
		if err != nil {
			return 0, err
		}
		fb := builder.Fork(i)
		fb.Begin(trace.KindTrial, "trial")
		sq := trace.NewSpanQuerier(st.aud, fb)
		sq.SetSampling(scaleSampleRate, uint64(i))
		sq.StartSession("2tBins")
		r.SplitInto(2, &st.algr)
		res, err := core.RunIn(&st.arena, core.TwoTBins{}, sq, n, scaleT, &st.algr)
		if err != nil {
			return 0, err
		}
		v := st.aud.Finish(res.Decision)
		sq.EndSession()
		fb.End()
		sink.OnEvent(obs.Event{
			Kind: obs.KindSessionVerdict, Session: "2tBins", Trial: i,
			Poll: -1, Polls: v.Polls, Slots: obs.ChainSlots(sq, v.Polls),
			Correct: res.Decision == (scaleX >= scaleT), CausalPoll: -1,
		})
		return float64(res.Queries), nil
	}
}

// runScaleTrials executes total telemetered trials at population n through
// the worker pool, batching the trace builder like the sweep driver so
// memory stays bounded at any total. Shared by the benchmark bodies and
// the flat-in-N regression test.
func runScaleTrials(n, total int, states []*scaleState, sink *obs.SketchSink) error {
	for done, seed := 0, uint64(1); done < total; seed++ {
		m := total - done
		if m > scaleBatch {
			m = scaleBatch
		}
		builder := trace.NewBuilder()
		if _, err := experiment.RunTrials(m, len(states), rng.New(seed), scaleTrial(n, states, builder, sink)); err != nil {
			return err
		}
		builder.Graft()
		done += m
	}
	return nil
}

// scaleBench is one entry of the trio.
func scaleBench(name string, n int) bench {
	return bench{
		name:     name,
		short:    true,
		perTrial: true,
		fn: func(b *testing.B) {
			states := newScaleStates(scaleWorkers())
			sink := obs.NewSketchSink(nil)
			// Prewarm a few trials per worker so every O(N) buffer (channel
			// bitsets, auditor slots, arena) is sized before the timed loop;
			// what remains per op is the flat telemetry cost.
			if err := runScaleTrials(n, 4*len(states), states, sink); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := runScaleTrials(n, b.N, states, sink); err != nil {
				b.Fatal(err)
			}
		},
		traced: func() (int64, int64, error) {
			// Cost-model work of one trial: a single unsampled session.
			r := rng.New(1).Split(0)
			ch, _ := fastsim.RandomPositives(n, scaleX, fastsim.DefaultConfig(), r.Split(1))
			tb := trace.NewBuilder()
			sq := trace.NewSpanQuerier(ch, tb)
			sq.StartSession("2tBins")
			if _, err := (core.TwoTBins{}).Run(sq, n, scaleT, r.Split(2)); err != nil {
				return 0, 0, err
			}
			sq.EndSession()
			a := trace.Analyze(tb.Trace())
			return int64(a.Polls), a.Slots, nil
		},
	}
}

// scaleBenches returns the trio in sweep order.
func scaleBenches() []bench {
	return []bench{
		scaleBench("query-2tbins-scale-1e3", 1_000),
		scaleBench("query-2tbins-scale-1e5", 100_000),
		scaleBench("query-2tbins-scale-1e6", 1_000_000),
	}
}

// measureScaleBytes is the test hook behind the flat-in-N acceptance
// check: allocated bytes per telemetered trial at population n, measured
// after a short warmup has sized every worker's buffers.
func measureScaleBytes(n, iters int) (float64, error) {
	states := newScaleStates(2)
	sink := obs.NewSketchSink(nil)
	if err := runScaleTrials(n, 4*len(states), states, sink); err != nil {
		return 0, fmt.Errorf("warmup: %w", err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := runScaleTrials(n, iters, states, sink); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(iters), nil
}
