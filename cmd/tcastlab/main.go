// Command tcastlab drives the emulated TelosB testbed of Section IV-D:
// an initiator plus participant motes as goroutines behind serial
// interfaces, querying over a lossy backcast radio. It reports the Figure
// 4 curves and the error statistics the paper summarizes (no false
// positives, ~1.4% false negatives dominated by single-HACK groups).
//
// Usage:
//
//	tcastlab                          # the paper's campaign: 12 motes, t in {2,4,6}, 100 runs each
//	tcastlab -participants 20 -repeats 50 -miss 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"tcast/internal/audit"
	"tcast/internal/metrics"
	"tcast/internal/motelab"
	"tcast/internal/obs"
	"tcast/internal/trace"
)

func main() {
	var (
		participants = flag.Int("participants", 12, "participant motes")
		repeats      = flag.Int("repeats", 100, "runs per (threshold, x) configuration")
		miss         = flag.Float64("miss", motelab.DefaultConfig().MissProb, "per-HACK-copy loss probability")
		badMote      = flag.Int("badmote", -1, "mote ID with a degraded link (-1: none)")
		badMiss      = flag.Float64("badmiss", 0.5, "the degraded mote's loss probability")
		seed         = flag.Uint64("seed", 2011, "random seed")

		doAudit    = flag.Bool("audit", false, "grade every emulated session by replay against the configured truth and print the audit summary")
		traceOut   = flag.String("trace", "", "write a structured span trace (JSONL, virtual time) of the campaign to this file")
		metricsOut = flag.String("metrics", "", "dump campaign metrics to this file after the run ('-' = stdout, .prom = Prometheus format)")
		pprofDir   = flag.String("pprof", "", "write cpu/heap/goroutine/mutex/block profiles for the campaign into this directory")
	)
	var obsCfg obs.Config
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	var reg *metrics.Registry
	if *metricsOut != "" || obsCfg.Enabled() {
		reg = metrics.New()
	}
	plane, err := obsCfg.Build(os.Stderr, reg, false)
	if err != nil {
		fatal(err)
	}
	if *pprofDir != "" {
		stop, err := metrics.StartProfiles(*pprofDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "tcastlab: pprof:", err)
			}
		}()
	}

	var builder *trace.Builder
	if *traceOut != "" {
		builder = trace.NewBuilder()
		builder.SetMeta(
			trace.StringAttr("cmd", "tcastlab"),
			trace.IntAttr("participants", *participants),
			trace.IntAttr("repeats", *repeats),
			trace.FloatAttr("miss", *miss),
			trace.Int64Attr("seed", int64(*seed)),
		)
		builder.Begin(trace.KindExperiment, "tcastlab")
	}

	var col *audit.Collector
	if *doAudit {
		col = &audit.Collector{}
	}

	cfg := motelab.Config{Participants: *participants, MissProb: *miss, Seed: *seed, Metrics: reg, Trace: builder, Audit: col, Obs: plane.Bus()}
	if *badMote >= 0 {
		if *badMote >= *participants {
			fatal(fmt.Errorf("badmote %d outside 0..%d", *badMote, *participants-1))
		}
		perMote := make([]float64, *participants)
		for i := range perMote {
			perMote[i] = *miss
		}
		perMote[*badMote] = *badMiss
		cfg.PerMoteMiss = perMote
	}
	lab, err := motelab.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer lab.Close()

	curves, agg, err := lab.RunPaperProtocol(*repeats)
	if err != nil {
		fatal(err)
	}
	if builder != nil {
		if err := trace.WriteFile(*traceOut, builder.Trace()); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("emulated testbed: %d participants, miss=%.3f, %d runs/config\n\n", *participants, *miss, *repeats)
	fmt.Printf("%4s  %8s  %8s  %8s\n", "x", "t=2", "t=4", "t=6")
	for x := 0; x <= *participants; x++ {
		fmt.Printf("%4d  %8.2f  %8.2f  %8.2f\n", x, curves[2][x], curves[4][x], curves[6][x])
	}
	fmt.Printf("\n%d TCast runs: %d false positives, %d false negatives (error rate %.2f%%)\n",
		agg.Trials, agg.FalsePositives, agg.FalseNegatives, 100*agg.ErrorRate())
	fmt.Println("\nmiss rate by superposing HACK count:")
	for k := 1; k <= 4; k++ {
		if agg.QueriesBySuperposition[k] > 0 {
			fmt.Printf("  k=%d: %5d queries, %4d missed (%.2f%%)\n",
				k, agg.QueriesBySuperposition[k], agg.MissedBySuperposition[k], 100*agg.MissRate(k))
		}
	}
	if *badMote >= 0 {
		fmt.Println("\nmiss events by mote:")
		for id := 0; id < *participants; id++ {
			if agg.MissedByMote[id] > 0 {
				marker := ""
				if id == *badMote {
					marker = "  <- degraded link"
				}
				fmt.Printf("  mote %2d: %4d%s\n", id, agg.MissedByMote[id], marker)
			}
		}
	}

	if col != nil {
		fmt.Println()
		fmt.Print(col.Summary())
	}

	if *metricsOut != "" {
		// Fold the campaign's graded aggregates in next to the per-poll
		// instruments the lab recorded during the runs.
		reg.Counter("motelab_trials_total").Add(int64(agg.Trials))
		reg.Counter("motelab_false_positives_total").Add(int64(agg.FalsePositives))
		reg.Counter("motelab_false_negatives_total").Add(int64(agg.FalseNegatives))
		for k, q := range agg.QueriesBySuperposition {
			reg.Counter("motelab_superposed_queries_total", "k", fmt.Sprint(k)).Add(int64(q))
		}
		for k, missed := range agg.MissedBySuperposition {
			reg.Counter("motelab_superposed_missed_total", "k", fmt.Sprint(k)).Add(int64(missed))
		}
		if err := metrics.DumpToPath(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if s := plane.Summary(); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	if err := plane.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcastlab:", err)
	os.Exit(1)
}
