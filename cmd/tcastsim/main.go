// Command tcastsim runs ad-hoc threshold-query simulations: pick a
// network size, ground truth and algorithm, and see the decision and cost.
//
// Usage:
//
//	tcastsim -n 128 -t 16 -x 20 -alg 2tbins -runs 1000
//	tcastsim -n 128 -t 16 -x 20 -alg probabns -model 2+
//	tcastsim -n 32  -t 8  -x 12 -alg csma
//
// Algorithms: 2tbins, exp, abns-t, abns-2t, probabns, oracle, csma, seq.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"tcast/internal/audit"
	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/experiment"
	"tcast/internal/fastsim"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/stats"
	"tcast/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 128, "participant nodes")
		t       = flag.Int("t", 16, "threshold")
		x       = flag.Int("x", 8, "ground-truth positive nodes")
		alg     = flag.String("alg", "2tbins", "algorithm: 2tbins | exp | abns-t | abns-2t | probabns | oracle | csma | seq")
		model   = flag.String("model", "1+", "collision model: 1+ | 2+")
		runs    = flag.Int("runs", 1000, "number of trials")
		workers = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS); results are worker-count-independent")
		seed    = flag.Uint64("seed", 2011, "root random seed")
		miss    = flag.Float64("miss", 0, "per-reply miss probability (radio irregularity)")
		dump    = flag.Bool("dump", false, "print a poll-by-poll trace of one session before the sweep")
		doAudit = flag.Bool("audit", false, "grade every session against ground truth and print the audit summary (tcast algorithms only)")

		faultsSpec = flag.String("faults", "", "fault-injection spec, e.g. burst=8,frac=0.2,churn=0.01,skew=0.01 (csma honors the burst process via its drop hook)")
		retries    = flag.Int("retries", 0, "initiator retry budget per silent poll (tcast algorithms)")
		backoff    = flag.Int("backoff", 0, "idle slots before each retry")

		traceOut    = flag.String("trace", "", "write a structured span trace (JSONL, virtual time) of the whole sweep to this file")
		traceSample = flag.Int("trace-sample", 1, "record 1-in-k poll leaf spans per session (k<=1 records all); virtual clock and session counters stay exact")
		metricsOut  = flag.String("metrics", "", "dump per-poll metrics to this file after the sweep ('-' = stdout, .prom = Prometheus format)")
		pprofDir    = flag.String("pprof", "", "write cpu/heap/goroutine/mutex/block profiles for the sweep into this directory")
	)
	var obsCfg obs.Config
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *x < 0 || *x > *n {
		fatal(fmt.Errorf("x=%d outside [0,%d]", *x, *n))
	}

	var reg *metrics.Registry
	if *metricsOut != "" || obsCfg.Enabled() {
		reg = metrics.New()
	}
	plane, err := obsCfg.Build(os.Stderr, reg, false)
	if err != nil {
		fatal(err)
	}
	if *pprofDir != "" {
		stop, err := metrics.StartProfiles(*pprofDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "tcastsim: pprof:", err)
			}
		}()
	}

	cfg := fastsim.DefaultConfig()
	if *model == "2+" {
		cfg = fastsim.TwoPlusConfig()
	} else if *model != "1+" {
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	cfg.MissProb = *miss

	var builder *trace.Builder
	if *traceOut != "" {
		builder = trace.NewBuilder()
		builder.SetMeta(
			trace.StringAttr("cmd", "tcastsim"),
			trace.StringAttr("alg", *alg),
			trace.IntAttr("n", *n), trace.IntAttr("t", *t), trace.IntAttr("x", *x),
			trace.StringAttr("model", *model),
			trace.Int64Attr("seed", int64(*seed)),
			trace.IntAttr("runs", *runs),
		)
	}

	var col *audit.Collector
	if *doAudit {
		col = &audit.Collector{}
	}
	fcfg, err := faults.ParseSpec(*faultsSpec)
	if err != nil {
		fatal(err)
	}
	retry := query.RetryPolicy{MaxRetries: *retries, Backoff: *backoff}
	trial, name, err := buildTrial(*alg, *n, *t, *x, cfg, fcfg, retry, reg, builder, *traceSample, col, plane.Bus())
	if err != nil {
		fatal(err)
	}
	if *dump {
		if err := printTrace(*alg, *n, *t, *x, cfg, *seed); err != nil {
			fatal(err)
		}
	}
	if builder != nil {
		sp := builder.Begin(trace.KindExperiment, "tcastsim")
		sp.SetAttr(trace.StringAttr("alg", name))
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Trials fan out over the pool; each records into its own trace fork
	// and audit slot keyed by trial index, so the outputs below are
	// bit-identical for any worker count.
	values, err := experiment.RunTrials(*runs, w, rng.New(*seed), trial)
	if err != nil {
		fatal(err)
	}
	if col != nil {
		col.Flush()
	}
	if builder != nil {
		builder.Graft()
		if err := trace.WriteFile(*traceOut, builder.Trace()); err != nil {
			fatal(err)
		}
	}
	var acc stats.Running
	for _, v := range values {
		acc.Observe(v)
	}
	fmt.Printf("%s  n=%d t=%d x=%d model=%s runs=%d\n", name, *n, *t, *x, *model, *runs)
	fmt.Printf("ground truth: x >= t is %v\n", *x >= *t)
	fmt.Printf("mean cost: %.2f queries/slots (95%% CI ±%.2f, min %.0f, max %.0f)\n",
		acc.Mean(), acc.CI95(), acc.Min(), acc.Max())
	qs := stats.Quantiles(values, 0.5, 0.9, 0.99)
	fmt.Printf("quantiles: p50=%.0f p90=%.0f p99=%.0f\n", qs[0], qs[1], qs[2])
	if col != nil {
		fmt.Print(col.Summary())
	}
	if *metricsOut != "" {
		if err := metrics.DumpToPath(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if s := plane.Summary(); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	if err := plane.Close(); err != nil {
		fatal(err)
	}
}

// buildTrial returns a per-trial cost function for the selected scheme.
// A non-nil registry instruments every group poll of the tcast schemes;
// the CSMA/sequential baselines have no group polls to instrument. A
// non-nil builder renders each trial as virtual-time spans: the trial
// records into its own fork keyed by trial index, so trials may run on
// every core and the caller grafts the fragments back in order. A
// non-nil collector grades every tcast session against the channel's
// ground truth, likewise keyed by trial index. An active fault config
// stacks the injector above the channel (CSMA honors the burst process
// through its drop hook; sequential polling has no contention to fault);
// an active retry policy re-polls silent bins within the priced budget.
func buildTrial(alg string, n, t, x int, cfg fastsim.Config, fcfg faults.Config, retry query.RetryPolicy, reg *metrics.Registry, b *trace.Builder, sample int, col *audit.Collector, bus *obs.Bus) (func(i int, r *rng.Source) (float64, error), string, error) {
	baselineTrial := func(scheme string, run func(n, t int, pos *bitset.Set, r *rng.Source) baseline.Result) func(i int, r *rng.Source) (float64, error) {
		return func(trialN int, r *rng.Source) (float64, error) {
			pos := bitset.New(n)
			for _, id := range r.Split(1).Sample(n, x) {
				pos.Add(id)
			}
			label := fmt.Sprintf("%s/trial=%d", scheme, trialN)
			obs.PublishSessionStart(bus, label, trialN)
			res := run(n, t, pos, r.Split(2))
			obs.PublishDecision(bus, label, trialN, res.Decision, x >= t, 0, int64(res.Slots))
			if b != nil {
				f := b.Fork(trialN)
				sp := f.Begin(trace.KindTrial, "trial "+strconv.Itoa(trialN))
				f.Advance(int64(res.Slots))
				sp.SetAttr(
					trace.StringAttr("substrate", "baseline"),
					trace.StringAttr("scheme", scheme),
					trace.IntAttr("slots", res.Slots),
					trace.IntAttr("delivered", res.Delivered),
					trace.IntAttr("collisions", res.Collisions),
					trace.BoolAttr("decision", res.Decision),
				)
				f.End()
			}
			return float64(res.Slots), nil
		}
	}
	var fac func(ch *fastsim.Channel) core.Algorithm
	var name string
	switch alg {
	case "2tbins":
		fac, name = plain(core.TwoTBins{}), "2tBins"
	case "exp":
		fac, name = plain(core.ExpIncrease{}), "ExpIncrease"
	case "abns-t":
		fac, name = plain(core.ABNS{P0: 1}), "ABNS(p0=t)"
	case "abns-2t":
		fac, name = plain(core.ABNS{P0: 2}), "ABNS(p0=2t)"
	case "probabns":
		fac, name = plain(core.ProbABNS{}), "ProbABNS"
	case "oracle":
		fac, name = func(ch *fastsim.Channel) core.Algorithm { return core.Oracle{Truth: ch} }, "Oracle"
	case "csma":
		if col != nil {
			return nil, "", fmt.Errorf("-audit grades group-poll sessions; csma has none")
		}
		return baselineTrial("csma", func(n, t int, pos *bitset.Set, r *rng.Source) baseline.Result {
			c := baseline.CSMA{}
			if fcfg.Burst.Active() {
				link := faults.NewLink(fcfg.Burst, r.Split(9))
				c.Drop = func(int) bool { return link.Lost() }
			}
			return c.Run(n, t, pos, r)
		}), "CSMA", nil
	case "seq":
		if col != nil {
			return nil, "", fmt.Errorf("-audit grades group-poll sessions; seq has none")
		}
		return baselineTrial("sequential", func(n, t int, pos *bitset.Set, r *rng.Source) baseline.Result {
			return baseline.Sequential{}.Run(n, t, pos, r)
		}), "Sequential", nil
	default:
		return nil, "", fmt.Errorf("unknown algorithm %q", alg)
	}
	return func(trialN int, r *rng.Source) (float64, error) {
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		a := fac(ch)
		var sub query.Querier = ch
		if fcfg.Active() {
			sub = faults.New(sub, fcfg, n, r.Split(9))
		}
		sub = query.WithRetry(sub, retry)
		q := metrics.Wrap(sub, reg)
		label := fmt.Sprintf("%s/trial=%d", name, trialN)
		var aud *audit.Auditor
		if col != nil {
			var err error
			aud, err = audit.New(q, audit.Config{N: n, T: t, Metrics: reg})
			if err != nil {
				return 0, err
			}
			q = aud
		}
		var fb *trace.Builder
		var sq *trace.SpanQuerier
		if b != nil {
			fb = b.Fork(trialN)
			fb.Begin(trace.KindTrial, "trial "+strconv.Itoa(trialN))
			sq = trace.NewSpanQuerier(q, fb)
			sq.SetSampling(sample, uint64(trialN))
			sq.StartSession(a.Name(),
				trace.IntAttr("n", n), trace.IntAttr("t", t), trace.IntAttr("x", x))
			q = sq
		}
		if bus != nil {
			q = obs.NewPublisher(q, bus, label, trialN)
			obs.PublishSessionStart(bus, label, trialN)
		}
		res, err := a.Run(q, n, t, r.Split(2))
		if aud != nil {
			if err == nil {
				// Finish before EndSession so the verdict annotates the span.
				v := aud.Finish(res.Decision)
				col.AddAt(trialN, label, v)
				if bus != nil {
					obs.PublishChainEvents(bus, label, trialN, q)
					obs.PublishVerdict(bus, label, trialN, v, obs.ChainSlots(q, v.Polls), q)
				}
			} else {
				col.Void(label)
			}
		}
		if sq != nil {
			if err == nil {
				sq.EndSession(
					trace.BoolAttr("decision", res.Decision),
					trace.IntAttr("queries", res.Queries),
					trace.IntAttr("rounds", res.Rounds))
			} else {
				sq.EndSession(trace.StringAttr("error", err.Error()))
			}
			fb.End() // trial span
		}
		if err != nil {
			return 0, err
		}
		metrics.FinishSession(q)
		if bus != nil && aud == nil {
			obs.PublishChainEvents(bus, label, trialN, q)
			obs.PublishDecision(bus, label, trialN, res.Decision, x >= t, res.Queries,
				obs.ChainSlots(q, res.Queries))
		}
		return float64(res.Queries), nil
	}, name, nil
}

func plain(a core.Algorithm) func(ch *fastsim.Channel) core.Algorithm {
	return func(*fastsim.Channel) core.Algorithm { return a }
}

// printTrace runs one session with a trace recorder and prints its
// poll-by-poll timeline. Baselines have no group polls to trace.
func printTrace(alg string, n, t, x int, cfg fastsim.Config, seed uint64) error {
	var a core.Algorithm
	switch alg {
	case "2tbins":
		a = core.TwoTBins{}
	case "exp":
		a = core.ExpIncrease{}
	case "abns-t":
		a = core.ABNS{P0: 1}
	case "abns-2t":
		a = core.ABNS{P0: 2}
	case "probabns":
		a = core.ProbABNS{}
	default:
		return fmt.Errorf("-dump supports the tcast algorithms, not %q", alg)
	}
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
	rec := trace.NewRecorder(ch)
	res, err := a.Run(rec, n, t, r.Split(2))
	if err != nil {
		return err
	}
	fmt.Printf("--- trace of one %s session (decision=%v, %d polls) ---\n", a.Name(), res.Decision, res.Queries)
	fmt.Print(rec.Render())
	fmt.Println("---")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcastsim:", err)
	os.Exit(1)
}
