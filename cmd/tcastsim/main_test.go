package main

import (
	"testing"

	"tcast/internal/audit"
	"tcast/internal/fastsim"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/query"
	"tcast/internal/rng"
)

func TestBuildTrialAllAlgorithms(t *testing.T) {
	cfg := fastsim.DefaultConfig()
	for alg, wantName := range map[string]string{
		"2tbins":   "2tBins",
		"exp":      "ExpIncrease",
		"abns-t":   "ABNS(p0=t)",
		"abns-2t":  "ABNS(p0=2t)",
		"probabns": "ProbABNS",
		"oracle":   "Oracle",
		"csma":     "CSMA",
		"seq":      "Sequential",
	} {
		trial, name, err := buildTrial(alg, 32, 8, 10, cfg, faults.Config{}, query.RetryPolicy{}, metrics.New(), nil, 1, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if name != wantName {
			t.Errorf("%s: name = %q, want %q", alg, name, wantName)
		}
		cost, err := trial(0, rng.New(1))
		if err != nil {
			t.Fatalf("%s trial: %v", alg, err)
		}
		if cost < 0 {
			t.Errorf("%s: negative cost %v", alg, cost)
		}
	}
}

func TestBuildTrialUnknownAlgorithm(t *testing.T) {
	if _, _, err := buildTrial("nope", 32, 8, 10, fastsim.DefaultConfig(), faults.Config{}, query.RetryPolicy{}, nil, nil, 1, nil, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBuildTrialAudited(t *testing.T) {
	col := &audit.Collector{}
	trial, _, err := buildTrial("2tbins", 32, 8, 10, fastsim.DefaultConfig(), faults.Config{}, query.RetryPolicy{}, nil, nil, 1, col, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := trial(i, rng.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	col.Flush()
	s := col.Stats()
	if s.Sessions != 5 {
		t.Fatalf("graded %d sessions, want 5", s.Sessions)
	}
	// Lossless fastsim: every session correct, zero violations.
	if s.Outcomes[audit.OutcomeCorrect] != 5 || s.Violations() != 0 {
		t.Fatalf("lossless audit stats: %+v", s)
	}
}

func TestBuildTrialAuditRejectsBaselines(t *testing.T) {
	col := &audit.Collector{}
	for _, alg := range []string{"csma", "seq"} {
		if _, _, err := buildTrial(alg, 32, 8, 10, fastsim.DefaultConfig(), faults.Config{}, query.RetryPolicy{}, nil, nil, 1, col, nil); err == nil {
			t.Fatalf("%s accepted -audit", alg)
		}
	}
}

func TestBuildTrialDeterministic(t *testing.T) {
	trial, _, err := buildTrial("2tbins", 64, 8, 12, fastsim.DefaultConfig(), faults.Config{}, query.RetryPolicy{}, nil, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := trial(0, rng.New(7))
	b, _ := trial(1, rng.New(7))
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

func TestPrintTraceRejectsBaselines(t *testing.T) {
	if err := printTrace("csma", 16, 4, 4, fastsim.DefaultConfig(), 1); err == nil {
		t.Fatal("baseline trace accepted")
	}
}

func TestPrintTraceRuns(t *testing.T) {
	if err := printTrace("probabns", 16, 4, 4, fastsim.DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTrialFaultedAndRetried(t *testing.T) {
	fcfg, err := faults.ParseSpec("burst=4,frac=0.3,churn=0.01")
	if err != nil {
		t.Fatal(err)
	}
	retry := query.RetryPolicy{MaxRetries: 2, Backoff: 1}
	trial, _, err := buildTrial("2tbins", 32, 8, 10, fastsim.DefaultConfig(), fcfg, retry, nil, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if cost, err := trial(i, rng.New(uint64(i))); err != nil {
			t.Fatal(err)
		} else if cost < 0 {
			t.Fatalf("trial %d: negative cost %v", i, cost)
		}
	}
}
