// Command tcastmote exposes an emulated testbed over TCP using the serial
// wire protocol — the shape a hardware-in-the-loop setup would take, with
// the emulator standing in for a TelosB behind a serial-forwarder.
//
// Serve an initiator (with its participant motes emulated in-process):
//
//	tcastmote -serve 127.0.0.1:7777 -participants 12 -miss 0.05
//
// Then drive it from another terminal as the controller:
//
//	tcastmote -connect 127.0.0.1:7777 -t 4 -x 6 -runs 20
//
// The controller configures x random positives, stimulates queries over
// the wire, and prints the graded results.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"tcast/internal/audit"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/mote"
	"tcast/internal/obs"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/serial"
	"tcast/internal/trace"
)

func main() {
	var (
		serve        = flag.String("serve", "", "listen address for the emulated initiator (serve mode)")
		connect      = flag.String("connect", "", "initiator address to drive (controller mode)")
		participants = flag.Int("participants", 12, "participant motes (serve mode)")
		miss         = flag.Float64("miss", 0.05, "per-HACK-copy loss probability (serve mode)")
		threshold    = flag.Int("t", 4, "threshold (controller mode)")
		x            = flag.Int("x", 6, "positives to configure; serve mode honors them via -autoconfig")
		runs         = flag.Int("runs", 20, "queries to run (controller mode)")
		seed         = flag.Uint64("seed", 2011, "random seed")
		timeout      = flag.Duration("timeout", 10*time.Second, "controller mode: per-command reply deadline; 0 waits forever")
		faultsSpec   = flag.String("faults", "", "serve mode: fault-injection spec for the emulated radio, e.g. burst=8,frac=0.2,churn=0.01")

		doAudit    = flag.Bool("audit", false, "controller mode: grade each decision against the configured -x truth (the wire protocol carries no polls, so wrong decisions stay unattributed)")
		traceOut   = flag.String("trace", "", "controller mode: write a structured span trace (JSONL, virtual time) of the runs to this file")
		metricsOut = flag.String("metrics", "", "controller mode: dump session metrics to this file at exit ('-' = stdout, .prom = Prometheus format)")
		pprofDir   = flag.String("pprof", "", "write cpu/heap/goroutine/mutex/block profiles into this directory")
	)
	var obsCfg obs.Config
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *pprofDir != "" {
		stop, err := metrics.StartProfiles(*pprofDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "tcastmote: pprof:", err)
			}
		}()
	}

	switch {
	case *serve != "" && *connect == "":
		fcfg, err := faults.ParseSpec(*faultsSpec)
		if err != nil {
			fatal(err)
		}
		if err := runServer(*serve, *participants, *miss, *x, *seed, fcfg); err != nil {
			fatal(err)
		}
	case *connect != "" && *serve == "":
		truth := (*bool)(nil)
		if *doAudit {
			v := *x >= *threshold
			truth = &v
		}
		if err := runController(*connect, *threshold, *runs, *timeout, *metricsOut, *traceOut, truth, obsCfg); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("pass exactly one of -serve or -connect"))
	}
}

// runServer boots the emulated testbed, configures x random positives
// locally (the remote protocol only reaches the initiator here), and
// serves its serial interface to one controller at a time. A non-empty
// fault config interposes the packet-level fault layer between the motes
// and the medium, so the served testbed exhibits bursty loss, churn and
// skew on top of the i.i.d. -miss model.
func runServer(addr string, participants int, miss float64, x int, seed uint64, fcfg faults.Config) error {
	if x < 0 || x > participants {
		return fmt.Errorf("x=%d outside [0,%d]", x, participants)
	}
	root := rng.New(seed)
	var med radio.Channel = radio.NewMedium(radio.Config{MissProb: miss}, root.Split(1))
	if fcfg.Active() {
		med = faults.NewMedium(med, fcfg, participants, root.Split(9))
	}
	parts := make([]*mote.Participant, participants)
	for i := range parts {
		parts[i] = mote.NewParticipant(i)
	}
	for _, id := range root.Split(3).Sample(participants, x) {
		parts[id].Configure(true)
	}
	ini := mote.NewInitiator(1<<16, med, parts, root.Split(2))
	defer func() {
		ini.Close()
		for _, p := range parts {
			p.Close()
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("emulated initiator on %s: %d participants (%d positive), miss=%.3f\n",
		ln.Addr(), participants, x, miss)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		fmt.Println("controller connected:", conn.RemoteAddr())
		if err := serial.ServeInitiator(conn, ini); err != nil {
			fmt.Fprintln(os.Stderr, "session error:", err)
		}
		conn.Close()
		fmt.Println("controller disconnected")
	}
}

// runController drives the remote initiator: configure, query repeatedly,
// summarize. With metricsOut set it additionally records per-run
// query/round totals into a registry and dumps it at the end — the
// controller cannot see individual polls over the wire protocol, only the
// session totals the initiator reports. With traceOut set it renders each
// run as a session span at backcast cost (3 RCD slots per group query).
// With truth non-nil it grades every decision against that expected
// answer; lacking polls, wrong decisions are counted but unattributed.
// A positive timeout bounds every wire round trip: a mote that stops
// replying fails the run (voided in the audit accounting) instead of
// hanging the controller forever.
func runController(addr string, threshold, runs int, timeout time.Duration, metricsOut, traceOut string, truth *bool, obsCfg obs.Config) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	c := serial.NewClient(conn)
	c.Timeout = timeout

	var reg *metrics.Registry
	if metricsOut != "" || obsCfg.Enabled() {
		reg = metrics.New()
	}
	plane, err := obsCfg.Build(os.Stderr, reg, false)
	if err != nil {
		return err
	}
	bus := plane.Bus()
	var builder *trace.Builder
	if traceOut != "" {
		builder = trace.NewBuilder()
		builder.SetMeta(
			trace.StringAttr("cmd", "tcastmote"),
			trace.IntAttr("t", threshold),
			trace.IntAttr("runs", runs),
		)
		builder.Begin(trace.KindExperiment, "tcastmote controller")
	}
	if err := c.ConfigureInitiator(threshold); err != nil {
		return err
	}
	var col *audit.Collector
	if truth != nil {
		col = &audit.Collector{}
	}
	trueCount, totalQueries := 0, 0
	for i := 0; i < runs; i++ {
		obs.PublishSessionStart(bus, fmt.Sprintf("run=%d", i+1), i)
		decision, queries, rounds, err := c.Query()
		if err != nil {
			if col != nil {
				// The session died mid-run: void it so the audit
				// accounting distinguishes "never decided" from wrong,
				// and still print the grades of the runs that finished.
				col.Void(fmt.Sprintf("run=%d", i+1))
				fmt.Print(col.Summary())
			}
			return fmt.Errorf("run %d: %w", i+1, err)
		}
		totalQueries += queries
		if decision {
			trueCount++
		}
		if reg != nil {
			reg.Counter(metrics.MetricSessions).Inc()
			reg.Counter("tcast_decisions_total", "decision", fmt.Sprint(decision)).Inc()
			reg.Histogram(metrics.MetricSessionPolls, metrics.SessionBuckets).Observe(float64(queries))
			reg.Histogram("tcast_session_rounds", metrics.SessionBuckets).Observe(float64(rounds))
		}
		if builder != nil {
			sp := builder.Begin(trace.KindSession, fmt.Sprintf("run %d", i))
			builder.Advance(3 * int64(queries))
			sp.SetAttr(
				trace.StringAttr("substrate", "serial"),
				trace.StringAttr("primitive", "backcast"),
				trace.IntAttr("t", threshold),
				trace.BoolAttr("decision", decision),
				trace.IntAttr("queries", queries),
				trace.IntAttr("rounds", rounds),
			)
			builder.End()
		}
		if col != nil {
			col.AddDecision(fmt.Sprintf("run=%d", i+1), decision, *truth)
		}
		if bus != nil {
			label := fmt.Sprintf("run=%d", i+1)
			if truth != nil {
				// The wire protocol carries no polls, so a wrong decision's
				// anomaly stays unattributed (no causal poll to name).
				obs.PublishDecision(bus, label, i, decision, *truth, queries, 3*int64(queries))
			} else {
				// No configured truth to grade against; publish the session
				// close ungraded (neutral for min-accuracy SLO rules).
				bus.Publish(obs.Event{
					Kind: obs.KindSessionVerdict, Session: label, Trial: i, Poll: -1,
					Outcome: "ungraded", Correct: true,
					Polls: queries, Slots: 3 * int64(queries), CausalPoll: -1,
				})
			}
		}
		fmt.Printf("run %2d: decision=%-5v queries=%-3d rounds=%d\n", i+1, decision, queries, rounds)
	}
	fmt.Printf("\n%d/%d runs answered true (t=%d); %.1f queries per run\n",
		trueCount, runs, threshold, float64(totalQueries)/float64(runs))
	if col != nil {
		fmt.Print(col.Summary())
	}
	if builder != nil {
		if err := trace.WriteFile(traceOut, builder.Trace()); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := metrics.DumpToPath(reg, metricsOut); err != nil {
			return err
		}
	}
	if s := plane.Summary(); s != "" {
		fmt.Fprint(os.Stderr, s)
	}
	return plane.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcastmote:", err)
	os.Exit(1)
}
