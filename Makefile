# Convenience targets for the tcast reproduction.

GO ?= go

.PHONY: all build test race bench figs lab cover fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at paper-scale trial counts.
figs:
	$(GO) run ./cmd/tcastfigs -fig all -out results

# The emulated 12-mote testbed campaign (Fig 4 + error statistics).
lab:
	$(GO) run ./cmd/tcastlab

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fuzz:
	$(GO) test -fuzz=FuzzThresholdDecision -fuzztime=30s ./internal/core/

clean:
	rm -f cover.out test_output.txt bench_output.txt
