# Convenience targets for the tcast reproduction.

GO ?= go

.PHONY: all build test race lint bench tcastbench bench-smoke bench-obs bench-faults bench-scale bench-serve serve-smoke baseline figs lab cover fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: vet always; staticcheck when installed (CI installs it,
# see .github/workflows/ci.yml).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

# The perf-regression harness: schema-versioned BENCH.json with ns/op plus
# the cost-model rates (polls/sec, virtual-slots/sec) from the trace layer.
# Compare against a committed baseline with:
#   go run ./cmd/tcastbench -input BENCH.json -baseline BENCH.baseline.json
tcastbench:
	$(GO) run ./cmd/tcastbench -out BENCH.json

# The CI smoke subset: micro-benchmarks plus the analytic figures.
bench-smoke:
	$(GO) run ./cmd/tcastbench -short -out BENCH.json

# The parallel-observability trio side by side: bare vs traced vs audited
# 2tBins trials/sec through the full-parallelism trial pool.
bench-obs:
	$(GO) run ./cmd/tcastbench -run query-2tbins -out /dev/null

# The fault-injection overhead: 2tBins trials/sec with the injector and
# retry middleware stacked above the channel, against the bare entry.
bench-faults:
	$(GO) run ./cmd/tcastbench -run query-2tbins-faulted -out /dev/null

# The telemetry-scale trio: fully observed 2tBins trials (sparse audit,
# sampled spans, sketch sink) at N = 10^3 / 10^5 / 10^6 — the B/op
# column is the flat-in-N claim the CI memory gate enforces.
bench-scale:
	$(GO) run ./cmd/tcastbench -run query-2tbins-scale -out /dev/null

# The serving trio: waves of 1/8/64 concurrent sessions through a
# serve.Pool sharing one field — queries/sec and p99 session latency of
# the tcastd scheduling core.
bench-serve:
	$(GO) run ./cmd/tcastbench -run serve-2tbins -out /dev/null

# Boot tcastd on an ephemeral port, fire concurrent queries at it, scrape
# the ops endpoints and drain it — the CI serving smoke, runnable locally.
serve-smoke:
	./scripts/serve-smoke.sh

# Regenerate the committed perf baseline. Run the full suite on a quiet
# machine, eyeball the diff against the previous baseline, and commit the
# result (see EXPERIMENTS.md, "Refreshing the perf baseline").
baseline:
	$(GO) run ./cmd/tcastbench -out BENCH.baseline.json

# Regenerate every table and figure at paper-scale trial counts.
figs:
	$(GO) run ./cmd/tcastfigs -fig all -out results

# The emulated 12-mote testbed campaign (Fig 4 + error statistics).
lab:
	$(GO) run ./cmd/tcastlab

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fuzz:
	$(GO) test -fuzz=FuzzThresholdDecision -fuzztime=30s ./internal/core/

clean:
	rm -f cover.out bench_output.txt BENCH.json
	rm -rf results
