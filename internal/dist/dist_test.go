package dist

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func TestFixed(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if got := Fixed(7).Sample(r); got != 7 {
			t.Fatalf("Fixed(7).Sample = %d", got)
		}
	}
}

func TestNormalClamped(t *testing.T) {
	r := rng.New(2)
	d := Normal{Mu: 5, Sigma: 100, Min: 0, Max: 10}
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 0 || v > 10 {
			t.Fatalf("sample %d out of clamp range", v)
		}
	}
}

func TestNormalMean(t *testing.T) {
	r := rng.New(3)
	d := Normal{Mu: 50, Sigma: 5, Min: 0, Max: 100}
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	if mean := float64(sum) / n; math.Abs(mean-50) > 0.2 {
		t.Fatalf("mean = %v, want ~50", mean)
	}
}

func TestBimodalModes(t *testing.T) {
	r := rng.New(4)
	d := SymmetricBimodal(128, 32, 0) // modes at 32 and 96
	h := NewHistogram(128)
	const n = 50000
	for i := 0; i < n; i++ {
		h.Observe(d.Sample(r))
	}
	// Most mass should be within 3σ of a mode; the valley at n/2 must be
	// nearly empty relative to the modes.
	valley := h.Density(64)
	peak1 := h.Density(32)
	peak2 := h.Density(96)
	if peak1 < 10*valley || peak2 < 10*valley {
		t.Fatalf("modes not separated: peak1=%v peak2=%v valley=%v", peak1, peak2, valley)
	}
}

func TestBimodalMixtureWeight(t *testing.T) {
	r := rng.New(5)
	d := SymmetricBimodal(128, 48, 0)
	quietCount := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if _, quiet := d.SampleLabeled(r); quiet {
			quietCount++
		}
	}
	if frac := float64(quietCount) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("quiet fraction = %v, want ~0.5", frac)
	}
}

func TestBimodalLabeledConsistency(t *testing.T) {
	// Labeled samples from the quiet mode should cluster near Mu1.
	r := rng.New(6)
	d := SymmetricBimodal(128, 40, 0) // modes 24 and 104, sigma 10
	var quietSum, activeSum float64
	var quietN, activeN int
	for i := 0; i < 20000; i++ {
		c, quiet := d.SampleLabeled(r)
		if quiet {
			quietSum += float64(c)
			quietN++
		} else {
			activeSum += float64(c)
			activeN++
		}
	}
	if m := quietSum / float64(quietN); math.Abs(m-24) > 1 {
		t.Errorf("quiet mean = %v, want ~24", m)
	}
	if m := activeSum / float64(activeN); math.Abs(m-104) > 1 {
		t.Errorf("active mean = %v, want ~104", m)
	}
}

func TestBoundaries(t *testing.T) {
	d := Bimodal{Mu1: 16, Sigma1: 2, Mu2: 96, Sigma2: 4, WQuiet: 0.5, N: 128}
	tl, tr := d.Boundaries()
	if tl != 20 || tr != 88 {
		t.Fatalf("Boundaries = (%v, %v), want (20, 88)", tl, tr)
	}
	if !d.Separated() {
		t.Fatal("clearly separated distribution reported unseparated")
	}
	overlap := Bimodal{Mu1: 60, Sigma1: 10, Mu2: 68, Sigma2: 10, WQuiet: 0.5, N: 128}
	if overlap.Separated() {
		t.Fatal("overlapping distribution reported separated")
	}
}

func TestSymmetricBimodalDefaults(t *testing.T) {
	d := SymmetricBimodal(128, 16, 0)
	if d.Mu1 != 48 || d.Mu2 != 80 {
		t.Fatalf("modes = (%v, %v), want (48, 80)", d.Mu1, d.Mu2)
	}
	if d.Sigma1 != 4 || d.Sigma2 != 4 {
		t.Fatalf("default sigma = (%v, %v), want d/4 = 4", d.Sigma1, d.Sigma2)
	}
	custom := SymmetricBimodal(128, 16, 2)
	if custom.Sigma1 != 2 {
		t.Fatalf("explicit sigma ignored: %v", custom.Sigma1)
	}
}

func TestQuickSamplesInRange(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		n := 128
		d := SymmetricBimodal(n, float64(dRaw%64)+1, 0)
		r := rng.New(seed)
		for i := 0; i < 100; i++ {
			v := d.Sample(r)
			if v < 0 || v > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{3, 3, 3, 7, -5, 99} {
		h.Observe(v)
	}
	if h.Total != 6 {
		t.Fatalf("Total = %d, want 6", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[10] != 1 {
		t.Fatal("clamping failed")
	}
	if h.Mode() != 3 {
		t.Fatalf("Mode = %d, want 3", h.Mode())
	}
	if got := h.Density(3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Density(3) = %v, want 0.5", got)
	}
	if h.Density(-1) != 0 || h.Density(11) != 0 {
		t.Fatal("out-of-range density not zero")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(5)
	if h.Density(2) != 0 {
		t.Fatal("empty histogram density not zero")
	}
}
