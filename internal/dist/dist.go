// Package dist provides the workload distributions used by the paper's
// evaluation, most importantly the bimodal positive-count distribution of
// Section VI: "if there is no activity in the network, there are only a few
// replies which are possibly false positives. If there is an activity, we
// expect a significant number of nodes to detect it."
package dist

import (
	"fmt"
	"math"

	"tcast/internal/rng"
)

// Sampler draws integer positive-node counts in [0, n].
type Sampler interface {
	// Sample returns a positive-node count using r for randomness.
	Sample(r *rng.Source) int
}

// Fixed always returns the same count. It models the paper's deterministic
// sweeps where x is the independent variable.
type Fixed int

// Sample implements Sampler.
func (f Fixed) Sample(*rng.Source) int { return int(f) }

// Normal is a normal distribution over counts, discretized by rounding and
// clamped to [Min, Max].
type Normal struct {
	Mu, Sigma float64
	Min, Max  int
}

// Sample implements Sampler.
func (d Normal) Sample(r *rng.Source) int {
	v := int(math.Round(r.Normal(d.Mu, d.Sigma)))
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	return v
}

// Bimodal is the Section VI mixture: with probability WQuiet the count is
// drawn from the "quiet" mode N(Mu1, Sigma1²) (false positives only), and
// otherwise from the "activity" mode N(Mu2, Sigma2²). Samples are clamped
// to [0, N].
type Bimodal struct {
	Mu1, Sigma1 float64 // quiet mode, Mu1 ≈ 0 in deployments
	Mu2, Sigma2 float64 // activity mode, k ≤ Mu2 ≤ n
	WQuiet      float64 // probability of the quiet mode
	N           int     // number of participant nodes
}

// SymmetricBimodal builds the Figure 9/11 workload: modes at n/2 − d and
// n/2 + d with equal weight. The paper does not print σ for these figures;
// we follow the visual in Fig 11 and use σ = d/4 so that 2σ boundaries
// (t_l, t_r) sit strictly between the modes, unless sigma > 0 is supplied.
func SymmetricBimodal(n int, d, sigma float64) Bimodal {
	if sigma <= 0 {
		sigma = d / 4
	}
	return Bimodal{
		Mu1: float64(n)/2 - d, Sigma1: sigma,
		Mu2: float64(n)/2 + d, Sigma2: sigma,
		WQuiet: 0.5,
		N:      n,
	}
}

// Sample implements Sampler.
func (d Bimodal) Sample(r *rng.Source) int {
	var v float64
	if r.Bernoulli(d.WQuiet) {
		v = r.Normal(d.Mu1, d.Sigma1)
	} else {
		v = r.Normal(d.Mu2, d.Sigma2)
	}
	c := int(math.Round(v))
	if c < 0 {
		c = 0
	}
	if c > d.N {
		c = d.N
	}
	return c
}

// SampleLabeled is like Sample but also reports which mode generated the
// draw (quiet=true for the Mu1 mode). Experiments use the label as ground
// truth when measuring detector accuracy.
func (d Bimodal) SampleLabeled(r *rng.Source) (count int, quiet bool) {
	quiet = r.Bernoulli(d.WQuiet)
	var v float64
	if quiet {
		v = r.Normal(d.Mu1, d.Sigma1)
	} else {
		v = r.Normal(d.Mu2, d.Sigma2)
	}
	count = int(math.Round(v))
	if count < 0 {
		count = 0
	}
	if count > d.N {
		count = d.N
	}
	return count, quiet
}

// Boundaries returns the Section VI-A decision boundaries
// t_l = μ1 + 2σ1 and t_r = μ2 − 2σ2.
func (d Bimodal) Boundaries() (tl, tr float64) {
	return d.Mu1 + 2*d.Sigma1, d.Mu2 - 2*d.Sigma2
}

// Separation reports whether the two modes are "totally separated" in the
// paper's sense, i.e. t_l < t_r.
func (d Bimodal) Separated() bool {
	tl, tr := d.Boundaries()
	return tl < tr
}

// Histogram counts integer samples into unit-width buckets over [0, n].
type Histogram struct {
	Counts []int
	Total  int
}

// NewHistogram returns a histogram with buckets 0..n.
func NewHistogram(n int) *Histogram {
	return &Histogram{Counts: make([]int, n+1)}
}

// Observe records one sample. Out-of-range samples are clamped.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
	h.Total++
}

// Density returns the fraction of samples in bucket v.
func (h *Histogram) Density(v int) float64 {
	if h.Total == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// Mode returns the bucket with the highest count (ties: lowest bucket).
func (h *Histogram) Mode() int {
	best, bestCount := 0, -1
	for v, c := range h.Counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	return best
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram{total=%d, mode=%d}", h.Total, h.Mode())
}
