// Package motelab is the central controlling unit of the Section IV-D
// experiments — the paper's laptop. It boots an initiator and a set of
// participant motes, connects to each over its serial interface, and runs
// batches of TCast trials: configure the motes with the run settings,
// stimulate the initiator to query, collect the result, reboot everything,
// repeat. Because the lab knows the ground truth it configured, it can
// grade every run for false positives/negatives and attribute errors to
// the number of superposing HACKs in the failing group — the analysis
// behind Figure 4 and the 1.4% error-rate report.
package motelab

import (
	"fmt"
	"strconv"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/metrics"
	"tcast/internal/mote"
	"tcast/internal/obs"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// Config describes the emulated testbed.
type Config struct {
	// Participants is the number of participant motes (the paper
	// deploys 12 plus the initiator).
	Participants int
	// MissProb is the per-HACK-copy reception-loss probability. The
	// default 0.05 is calibrated so the paper's campaign (thresholds
	// 2/4/6, 100 runs per configuration) lands near the reported 1.4%
	// aggregate false-negative rate (measured: 1.54% at seed 2011),
	// with errors concentrated in single-HACK groups and essentially
	// none in superposed groups.
	MissProb float64
	// Algorithm selects the initiator firmware; nil means 2tBins, the
	// algorithm the paper deployed.
	Algorithm core.Algorithm
	// PerMoteMiss, when non-nil, assigns each mote its own HACK-loss
	// probability (length Participants), overriding MissProb. Real
	// testbeds have bad links — a far or occluded mote loses more
	// frames — and per-mote loss lets the lab reproduce error
	// concentration on specific motes.
	PerMoteMiss []float64
	// Seed drives all lab randomness.
	Seed uint64
	// Metrics, when non-nil, receives every group poll of the campaign
	// (replayed from the initiator's trace) and per-session totals,
	// under the same instrument names as the simulation substrates.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives virtual-time spans for every run:
	// trial → session → poll, replayed from the initiator's poll record
	// at backcast cost (3 RCD slots per group query). The lab runs
	// trials sequentially, so span order depends only on the seed.
	Trace *trace.Builder
	// Audit, when non-nil, grades every run's poll record against the
	// ground truth the lab configured (audit.GradeReplay over the
	// initiator's trace), attributing each wrong decision to its first
	// causal poll.
	Audit *audit.Collector
	// Obs, when non-nil, streams each run onto the bus: session start,
	// one poll event per group query (replayed from the initiator's
	// trace), and a graded verdict — wrong decisions raise anomaly
	// events carrying the causal poll, which trip a subscribed flight
	// recorder. The lab runs sequentially, so the stream order depends
	// only on the seed.
	Obs *obs.Bus
}

// DefaultConfig returns the paper's testbed shape.
func DefaultConfig() Config {
	return Config{Participants: 12, MissProb: 0.05, Seed: 1}
}

// Stats aggregates a batch of graded TCast runs.
type Stats struct {
	// Trials is the number of TCast runs graded.
	Trials int
	// FalsePositives counts runs deciding true with ground truth x < t.
	FalsePositives int
	// FalseNegatives counts runs deciding false with ground truth
	// x >= t.
	FalseNegatives int
	// TotalQueries sums group polls across runs.
	TotalQueries int
	// MissedBySuperposition[k] counts group queries in which the polled
	// bin held k ground-truth positives but the initiator heard
	// silence — the radio-irregularity events behind false negatives.
	MissedBySuperposition map[int]int
	// QueriesBySuperposition[k] counts all group queries whose bin held
	// k ground-truth positives.
	QueriesBySuperposition map[int]int
	// MissedByMote counts, for each positive mote, the miss events it
	// was involved in — how error mass distributes over (possibly
	// heterogeneous) links.
	MissedByMote map[int]int
}

// ErrorRate returns the fraction of graded runs with a wrong decision.
func (s Stats) ErrorRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.FalsePositives+s.FalseNegatives) / float64(s.Trials)
}

// AvgQueries returns the mean group polls per run.
func (s Stats) AvgQueries() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.TotalQueries) / float64(s.Trials)
}

// MissRate returns the fraction of k-positive group queries that were
// wrongly heard as silence.
func (s Stats) MissRate(k int) float64 {
	if s.QueriesBySuperposition[k] == 0 {
		return 0
	}
	return float64(s.MissedBySuperposition[k]) / float64(s.QueriesBySuperposition[k])
}

// Merge folds other into s.
func (s *Stats) Merge(other Stats) {
	s.Trials += other.Trials
	s.FalsePositives += other.FalsePositives
	s.FalseNegatives += other.FalseNegatives
	s.TotalQueries += other.TotalQueries
	for k, v := range other.MissedBySuperposition {
		s.MissedBySuperposition[k] += v
	}
	for k, v := range other.QueriesBySuperposition {
		s.QueriesBySuperposition[k] += v
	}
	for id, v := range other.MissedByMote {
		s.MissedByMote[id] += v
	}
}

func newStats() Stats {
	return Stats{
		MissedBySuperposition:  make(map[int]int),
		QueriesBySuperposition: make(map[int]int),
		MissedByMote:           make(map[int]int),
	}
}

// Lab is a running emulated testbed.
type Lab struct {
	cfg       Config
	root      *rng.Source
	parts     []*mote.Participant
	initiator *mote.Initiator
}

// initiatorID keeps the querying mote's radio ID clear of the
// participants' 0..n-1 range.
const initiatorID = 1 << 16

// New boots the testbed: participant motes 0..Participants-1 plus the
// initiator, sharing one radio medium.
func New(cfg Config) (*Lab, error) {
	if cfg.Participants <= 0 {
		return nil, fmt.Errorf("motelab: need at least one participant, got %d", cfg.Participants)
	}
	if cfg.PerMoteMiss != nil && len(cfg.PerMoteMiss) != cfg.Participants {
		return nil, fmt.Errorf("motelab: %d per-mote loss rates for %d motes", len(cfg.PerMoteMiss), cfg.Participants)
	}
	root := rng.New(cfg.Seed)
	radioCfg := radio.Config{MissProb: cfg.MissProb}
	if cfg.PerMoteMiss != nil {
		perMote := append([]float64(nil), cfg.PerMoteMiss...)
		radioCfg.MissProbFor = func(src int) float64 {
			if src >= 0 && src < len(perMote) {
				return perMote[src]
			}
			return cfg.MissProb
		}
	}
	med := radio.NewMedium(radioCfg, root.Split(1))
	parts := make([]*mote.Participant, cfg.Participants)
	for i := range parts {
		parts[i] = mote.NewParticipant(i)
	}
	alg := cfg.Algorithm
	if alg == nil {
		alg = core.TwoTBins{}
	}
	ini := mote.NewInitiatorWithAlgorithm(initiatorID, alg, med, parts, root.Split(2))
	return &Lab{cfg: cfg, root: root, parts: parts, initiator: ini}, nil
}

// algName names the initiator firmware's algorithm for span labels.
func (l *Lab) algName() string {
	if l.cfg.Algorithm != nil {
		return l.cfg.Algorithm.Name()
	}
	return core.TwoTBins{}.Name()
}

// Close shuts all motes down.
func (l *Lab) Close() {
	l.initiator.Close()
	for _, p := range l.parts {
		p.Close()
	}
}

// RunBatch performs repeats TCast runs with exactly x positive motes and
// the given threshold, grading each against the configured ground truth.
func (l *Lab) RunBatch(threshold, x, repeats int) (Stats, error) {
	if x < 0 || x > len(l.parts) {
		return Stats{}, fmt.Errorf("motelab: x=%d out of range [0,%d]", x, len(l.parts))
	}
	stats := newStats()
	for rep := 0; rep < repeats; rep++ {
		r := l.root.Split(uint64(threshold)<<40 | uint64(x)<<20 | uint64(rep))

		// Reboot everything "to remove the effect of the previous run".
		l.initiator.Reboot()
		for _, p := range l.parts {
			p.Reboot()
		}

		// Configure the run: x random positives and the threshold.
		positive := make(map[int]bool, x)
		for _, id := range r.Sample(len(l.parts), x) {
			positive[id] = true
		}
		for _, p := range l.parts {
			p.Configure(positive[p.ID()])
		}
		l.initiator.Configure(threshold)

		// Stimulate the query and collect the result.
		outcome, err := l.initiator.Query()
		if err != nil {
			return Stats{}, err
		}

		if m := l.cfg.Metrics; m != nil {
			iq := metrics.NewInstrumentedQuerier(nil, m)
			for _, rec := range outcome.Trace {
				kind := query.Active
				if rec.Empty {
					kind = query.Empty
				}
				iq.Record(kind, len(rec.Bin))
			}
			iq.Finish()
		}
		if b := l.cfg.Trace; b != nil {
			// Replay the initiator's poll record as spans. Backcast
			// charges 3 RCD slots per group query (bind, poll, HACK).
			b.Begin(trace.KindTrial, "rep "+strconv.Itoa(rep))
			sess := b.Begin(trace.KindSession, l.algName())
			sess.SetAttr(
				trace.StringAttr("substrate", "motelab"),
				trace.StringAttr("primitive", "backcast"),
				trace.IntAttr("n", len(l.parts)),
				trace.IntAttr("t", threshold),
				trace.IntAttr("x", x),
			)
			nodes := 0
			for i, rec := range outcome.Trace {
				sp := b.Begin(trace.KindPoll, "poll "+strconv.Itoa(i))
				b.Advance(3)
				kind := query.Active
				if rec.Empty {
					kind = query.Empty
				}
				sp.SetAttr(
					trace.IntAttr("bin_size", len(rec.Bin)),
					trace.StringAttr("kind", kind.String()),
				)
				b.End()
				nodes += len(rec.Bin)
			}
			sess.SetAttr(
				trace.IntAttr("polls", len(outcome.Trace)),
				trace.IntAttr("nodes_polled", nodes),
				trace.BoolAttr("decision", outcome.Decision),
				trace.IntAttr("queries", outcome.Queries),
			)
			b.End() // session
			b.End() // trial
		}
		if l.cfg.Audit != nil || l.cfg.Obs != nil {
			// Grade the run from the initiator's poll record. Backcast
			// responses are binary (Empty/Active), so the 1+ traits apply
			// regardless of the firmware's radio.
			polls := make([]audit.ReplayPoll, len(outcome.Trace))
			for i, rec := range outcome.Trace {
				kind := query.Active
				if rec.Empty {
					kind = query.Empty
				}
				polls[i] = audit.ReplayPoll{Bin: rec.Bin, Resp: query.Response{Kind: kind}}
			}
			truth := audit.TruthFunc(func(id int) bool { return positive[id] })
			label := fmt.Sprintf("motelab/%s/t=%d/x=%d/rep=%d", l.algName(), threshold, x, rep)
			v := audit.GradeReplay(threshold, x, truth,
				query.Traits{Model: query.OnePlus}, polls, outcome.Decision)
			if c := l.cfg.Audit; c != nil {
				c.Add(label, v)
			}
			if bus := l.cfg.Obs; bus != nil {
				obs.PublishSessionStart(bus, label, rep)
				for i, p := range polls {
					bus.Publish(obs.Event{
						Kind: obs.KindPoll, Session: label, Trial: rep,
						Poll: i, Bin: len(p.Bin), Outcome: p.Resp.Kind.String(),
						CausalPoll: -1,
					})
				}
				// Backcast charges 3 RCD slots per group query; there is no
				// querier chain to walk on the replay path.
				obs.PublishVerdict(bus, label, rep, v, int64(3*len(polls)), nil)
			}
		}

		stats.Trials++
		stats.TotalQueries += outcome.Queries
		truth := x >= threshold
		if outcome.Decision && !truth {
			stats.FalsePositives++
		}
		if !outcome.Decision && truth {
			stats.FalseNegatives++
		}
		for _, rec := range outcome.Trace {
			k := 0
			for _, id := range rec.Bin {
				if positive[id] {
					k++
				}
			}
			if k == 0 {
				continue
			}
			stats.QueriesBySuperposition[k]++
			if rec.Empty {
				stats.MissedBySuperposition[k]++
				for _, id := range rec.Bin {
					if positive[id] {
						stats.MissedByMote[id]++
					}
				}
			}
		}
	}
	return stats, nil
}

// RunPaperProtocol reproduces the full Section IV-D campaign: thresholds
// 2, 4 and 6, every x from 0 to Participants, repeats runs each. It
// returns per-threshold-and-x mean query counts plus the aggregate error
// statistics.
func (l *Lab) RunPaperProtocol(repeats int) (map[int]map[int]float64, Stats, error) {
	curves := make(map[int]map[int]float64)
	agg := newStats()
	for _, th := range []int{2, 4, 6} {
		curves[th] = make(map[int]float64)
		if b := l.cfg.Trace; b != nil {
			b.Begin(trace.KindSeries, "t="+strconv.Itoa(th))
		}
		for x := 0; x <= len(l.parts); x++ {
			if b := l.cfg.Trace; b != nil {
				sp := b.Begin(trace.KindPoint, "x="+strconv.Itoa(x))
				sp.SetAttr(trace.IntAttr("x", x), trace.IntAttr("runs", repeats))
			}
			st, err := l.RunBatch(th, x, repeats)
			if b := l.cfg.Trace; b != nil {
				b.End() // point, closed before the error check
			}
			if err != nil {
				if b := l.cfg.Trace; b != nil {
					b.End() // series
				}
				return nil, Stats{}, err
			}
			curves[th][x] = st.AvgQueries()
			agg.Merge(st)
		}
		if b := l.cfg.Trace; b != nil {
			b.End() // series
		}
	}
	return curves, agg, nil
}
