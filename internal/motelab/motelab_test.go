package motelab

import (
	"math"
	"testing"

	"tcast/internal/core"
)

func newLab(t *testing.T, cfg Config) *Lab {
	t.Helper()
	lab, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	return lab
}

func TestNewRejectsEmptyTestbed(t *testing.T) {
	if _, err := New(Config{Participants: 0}); err == nil {
		t.Fatal("empty testbed accepted")
	}
}

func TestRunBatchPerfectRadio(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MissProb = 0
	lab := newLab(t, cfg)
	for _, tc := range []struct{ th, x int }{
		{2, 0}, {2, 2}, {2, 12}, {4, 3}, {4, 4}, {6, 6}, {6, 5},
	} {
		st, err := lab.RunBatch(tc.th, tc.x, 20)
		if err != nil {
			t.Fatal(err)
		}
		if st.Trials != 20 {
			t.Fatalf("trials = %d", st.Trials)
		}
		if st.FalsePositives != 0 || st.FalseNegatives != 0 {
			t.Fatalf("t=%d x=%d: errors on a perfect radio: %+v", tc.th, tc.x, st)
		}
	}
}

func TestRunBatchRejectsBadX(t *testing.T) {
	lab := newLab(t, DefaultConfig())
	if _, err := lab.RunBatch(2, -1, 1); err == nil {
		t.Fatal("x=-1 accepted")
	}
	if _, err := lab.RunBatch(2, 13, 1); err == nil {
		t.Fatal("x>n accepted")
	}
}

func TestPaperProtocolErrorProfile(t *testing.T) {
	// The emulated campaign must reproduce the Section IV-D error
	// profile: zero false positives, a small aggregate false-negative
	// rate (the paper reports 1.4%), errors dominated by single-HACK
	// groups, and a miss rate that "slashes down" as HACKs superpose.
	lab := newLab(t, DefaultConfig())
	curves, agg, err := lab.RunPaperProtocol(40)
	if err != nil {
		t.Fatal(err)
	}
	if agg.FalsePositives != 0 {
		t.Fatalf("false positives: %d", agg.FalsePositives)
	}
	rate := agg.ErrorRate()
	if rate <= 0 || rate > 0.06 {
		t.Fatalf("error rate = %v, want small but nonzero (~0.014)", rate)
	}
	if agg.MissedBySuperposition[1] == 0 {
		t.Fatal("no single-HACK misses recorded")
	}
	// Majority of misses at k=1.
	single := agg.MissedBySuperposition[1]
	rest := 0
	for k, v := range agg.MissedBySuperposition {
		if k > 1 {
			rest += v
		}
	}
	if single <= rest {
		t.Fatalf("misses not dominated by single-HACK groups: k=1:%d, k>1:%d", single, rest)
	}
	// Per-query miss rate decreases with superposition when sampled.
	if agg.QueriesBySuperposition[2] > 200 && agg.MissRate(2) >= agg.MissRate(1) {
		t.Fatalf("miss rate did not drop with superposition: k1=%v k2=%v",
			agg.MissRate(1), agg.MissRate(2))
	}

	// Fig 4 shape: for each threshold the mean query count peaks near
	// x = t rather than at the extremes.
	for _, th := range []int{2, 4, 6} {
		peak := curves[th][th]
		if peak <= curves[th][12] {
			t.Errorf("t=%d: cost at x=t (%v) not above x=12 (%v)", th, peak, curves[th][12])
		}
	}
}

func TestAlternativeFirmware(t *testing.T) {
	// The testbed runs any threshold algorithm over the same backcast
	// path: ExpIncrease firmware must stay exact on a perfect radio and
	// beat 2tBins' query count when few motes are positive.
	cfgClean := DefaultConfig()
	cfgClean.MissProb = 0
	cfgExp := cfgClean
	cfgExp.Algorithm = core.ExpIncrease{}

	twoT := newLab(t, cfgClean)
	exp := newLab(t, cfgExp)
	for _, tc := range []struct{ th, x int }{{6, 1}, {6, 6}, {6, 12}, {2, 0}} {
		stTwoT, err := twoT.RunBatch(tc.th, tc.x, 30)
		if err != nil {
			t.Fatal(err)
		}
		stExp, err := exp.RunBatch(tc.th, tc.x, 30)
		if err != nil {
			t.Fatal(err)
		}
		if stExp.FalsePositives != 0 || stExp.FalseNegatives != 0 {
			t.Fatalf("ExpIncrease firmware erred on a perfect radio: %+v", stExp)
		}
		if tc.x == 1 && stExp.AvgQueries() >= stTwoT.AvgQueries() {
			t.Fatalf("x<<t: ExpIncrease (%v) not cheaper than 2tBins (%v) on the testbed",
				stExp.AvgQueries(), stTwoT.AvgQueries())
		}
	}
}

func TestHeterogeneousLinks(t *testing.T) {
	// One bad mote (50% HACK loss) among eleven clean ones: the miss
	// events must concentrate on it.
	cfg := DefaultConfig()
	perMote := make([]float64, cfg.Participants)
	const badMote = 7
	perMote[badMote] = 0.5
	cfg.PerMoteMiss = perMote
	lab := newLab(t, cfg)
	st, err := lab.RunBatch(4, 6, 150)
	if err != nil {
		t.Fatal(err)
	}
	bad := st.MissedByMote[badMote]
	if bad == 0 {
		t.Fatal("bad mote recorded no misses")
	}
	others := 0
	for id, v := range st.MissedByMote {
		if id != badMote {
			others += v
		}
	}
	if bad <= others {
		t.Fatalf("misses not concentrated on the bad mote: bad=%d others=%d", bad, others)
	}
	// Clean motes (loss 0) never produce a lone-HACK miss; any "other"
	// misses must come from bins shared with the bad mote, so they are
	// bounded by its count (checked above).
}

func TestPerMoteMissValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerMoteMiss = []float64{0.1} // wrong length
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched PerMoteMiss length accepted")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := newStats()
	if s.ErrorRate() != 0 || s.AvgQueries() != 0 || s.MissRate(1) != 0 {
		t.Fatal("empty stats not zero")
	}
	s.Trials = 10
	s.FalseNegatives = 1
	s.TotalQueries = 55
	s.QueriesBySuperposition[1] = 20
	s.MissedBySuperposition[1] = 2
	if math.Abs(s.ErrorRate()-0.1) > 1e-12 {
		t.Fatalf("ErrorRate = %v", s.ErrorRate())
	}
	if math.Abs(s.AvgQueries()-5.5) > 1e-12 {
		t.Fatalf("AvgQueries = %v", s.AvgQueries())
	}
	if math.Abs(s.MissRate(1)-0.1) > 1e-12 {
		t.Fatalf("MissRate = %v", s.MissRate(1))
	}

	other := newStats()
	other.Trials = 5
	other.FalsePositives = 1
	other.QueriesBySuperposition[1] = 10
	other.MissedBySuperposition[2] = 3
	s.Merge(other)
	if s.Trials != 15 || s.FalsePositives != 1 || s.QueriesBySuperposition[1] != 30 || s.MissedBySuperposition[2] != 3 {
		t.Fatalf("Merge wrong: %+v", s)
	}
}

func TestDeterministicAcrossLabs(t *testing.T) {
	a := newLab(t, DefaultConfig())
	b := newLab(t, DefaultConfig())
	sa, err := a.RunBatch(4, 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.RunBatch(4, 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if sa.TotalQueries != sb.TotalQueries || sa.FalseNegatives != sb.FalseNegatives {
		t.Fatalf("same seed diverged: %+v vs %+v", sa, sb)
	}
}
