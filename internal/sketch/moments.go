package sketch

import (
	"fmt"
	"math"
	"strings"
)

// Moments is a streaming summary of count, sum, min, max, and centered
// second moment (M2), mergeable via the parallel Welford/Chan update. It
// is a fixed 48 bytes regardless of how many values it has seen.
//
// Count, Min, and Max merge exactly; Sum, mean, and M2 are floating-point
// accumulations, so merge order can perturb the last few ULPs (the
// experiment harness always merges in worker-index order, which keeps
// rendered output deterministic for a fixed worker count).
type Moments struct {
	N    uint64
	Sum  float64
	Min  float64
	Max  float64
	mean float64
	m2   float64
}

// Observe folds one value into the summary.
func (m *Moments) Observe(v float64) {
	if m.N == 0 {
		m.Min, m.Max = v, v
	} else {
		if v < m.Min {
			m.Min = v
		}
		if v > m.Max {
			m.Max = v
		}
	}
	m.N++
	m.Sum += v
	d := v - m.mean
	m.mean += d / float64(m.N)
	m.m2 += d * (v - m.mean)
}

// Merge folds other into m (Chan et al. parallel-variance combination).
func (m *Moments) Merge(other Moments) {
	if other.N == 0 {
		return
	}
	if m.N == 0 {
		*m = other
		return
	}
	if other.Min < m.Min {
		m.Min = other.Min
	}
	if other.Max > m.Max {
		m.Max = other.Max
	}
	n := float64(m.N)
	no := float64(other.N)
	d := other.mean - m.mean
	m.m2 += other.m2 + d*d*n*no/(n+no)
	m.mean = (n*m.mean + no*other.mean) / (n + no)
	m.N += other.N
	m.Sum += other.Sum
}

// Reset returns the summary to its empty state.
func (m *Moments) Reset() { *m = Moments{} }

// Mean returns the running mean, or 0 for an empty summary.
func (m *Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.mean
}

// M2 returns the centered second moment sum((v-mean)^2).
func (m *Moments) M2() float64 { return m.m2 }

// Variance returns the sample variance (n-1 denominator), or 0 when
// fewer than two values have been observed.
func (m *Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.m2 / float64(m.N-1)
}

// Stddev returns the sample standard deviation.
func (m *Moments) Stddev() float64 { return math.Sqrt(m.Variance()) }

// AppendTo renders the summary on one deterministic line.
func (m *Moments) AppendTo(b *strings.Builder) {
	fmt.Fprintf(b, "moments n=%d sum=%g min=%g max=%g mean=%g stddev=%g\n",
		m.N, m.Sum, m.Min, m.Max, m.Mean(), m.Stddev())
}

// String implements fmt.Stringer via AppendTo.
func (m *Moments) String() string {
	var b strings.Builder
	m.AppendTo(&b)
	return b.String()
}
