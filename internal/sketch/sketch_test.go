package sketch_test

import (
	"math"
	"sort"
	"sync"
	"testing"

	"tcast/internal/rng"
	"tcast/internal/sketch"
	"tcast/internal/stats"
)

// adversarialInputs builds the distributions the rank-error bound is
// checked against: constant (every value in one bucket), bimodal (a gap
// the sketch must not interpolate across), and heavy-tailed (Pareto-ish,
// exercising many decades of buckets).
func adversarialInputs(n int) map[string][]float64 {
	r := rng.New(0xa11ce)
	constant := make([]float64, n)
	bimodal := make([]float64, n)
	heavy := make([]float64, n)
	zeros := make([]float64, n)
	for i := 0; i < n; i++ {
		constant[i] = 42
		if i%3 == 0 {
			bimodal[i] = 2
		} else {
			bimodal[i] = 5000
		}
		// Pareto(alpha=1.2) via inverse CDF on a uniform in (0,1).
		u := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		heavy[i] = math.Pow(u, -1/1.2)
		if i%7 == 0 {
			zeros[i] = 0
		} else {
			zeros[i] = float64(i % 97)
		}
	}
	return map[string][]float64{
		"constant": constant,
		"bimodal":  bimodal,
		"heavy":    heavy,
		"zeroes":   zeros,
	}
}

// TestQuantileRankError checks the DDSketch guarantee: the estimate at p
// is within relative error alpha of the true order statistic at rank
// floor(p*(n-1)) (compared against both neighbors of the fractional
// rank, since stats.Quantiles interpolates).
func TestQuantileRankError(t *testing.T) {
	const n = 20000
	const alpha = 0.01
	for name, sample := range adversarialInputs(n) {
		t.Run(name, func(t *testing.T) {
			q := sketch.NewQuantile(alpha)
			for _, v := range sample {
				q.Observe(v)
			}
			sorted := append([]float64(nil), sample...)
			sort.Float64s(sorted)
			for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
				got := q.Value(p)
				pos := p * float64(n-1)
				lo := sorted[int(math.Floor(pos))]
				hi := sorted[int(math.Ceil(pos))]
				// Accept the estimate if it is within alpha of either
				// neighboring order statistic.
				const slack = 1e-12
				okAgainst := func(want float64) bool {
					return math.Abs(got-want) <= alpha*math.Abs(want)+slack
				}
				if !okAgainst(lo) && !okAgainst(hi) {
					t.Errorf("p=%v: got %v, want within %v%% of [%v, %v]", p, got, alpha*100, lo, hi)
				}
			}
			// Cross-check the exact path: stats.Quantiles at a p landing
			// exactly on an integer rank must agree within alpha.
			exact := stats.Quantiles(sample, 0.5)
			est := q.Value(0.5)
			pos := 0.5 * float64(n-1)
			if pos == math.Trunc(pos) {
				if math.Abs(est-exact[0]) > alpha*math.Abs(exact[0])+1e-12 {
					t.Errorf("median: sketch %v vs exact %v exceeds %v%%", est, exact[0], alpha*100)
				}
			}
		})
	}
}

// TestQuantileMergeAlgebra verifies Merge is exactly associative and
// commutative: any merge tree over the same parts yields byte-identical
// summaries.
func TestQuantileMergeAlgebra(t *testing.T) {
	inputs := adversarialInputs(3000)
	parts := make([]*sketch.Quantile, 0, len(inputs))
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		q := sketch.NewQuantile(0.01)
		for _, v := range inputs[name] {
			q.Observe(v)
		}
		parts = append(parts, q)
	}

	mergeAll := func(order []int, tree bool) string {
		if tree {
			// ((a+b)+(c+d)) shape.
			left := sketch.NewQuantile(0.01)
			left.Merge(parts[order[0]])
			left.Merge(parts[order[1]])
			right := sketch.NewQuantile(0.01)
			right.Merge(parts[order[2]])
			right.Merge(parts[order[3]])
			left.Merge(right)
			return left.String()
		}
		acc := sketch.NewQuantile(0.01)
		for _, i := range order {
			acc.Merge(parts[i])
		}
		return acc.String()
	}

	want := mergeAll([]int{0, 1, 2, 3}, false)
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := mergeAll(order, false); got != want {
			t.Errorf("commutativity: order %v summary differs\n got: %q\nwant: %q", order, got, want)
		}
	}
	if got := mergeAll([]int{0, 1, 2, 3}, true); got != want {
		t.Errorf("associativity: tree merge summary differs\n got: %q\nwant: %q", got, want)
	}
}

// TestQuantileWorkerIndependence mimics the experiment harness: trial i
// lands on worker i%W; each worker observes into a private sketch, and
// the per-worker sketches merge in worker order. The rendered summary
// must be byte-identical for every worker count.
func TestQuantileWorkerIndependence(t *testing.T) {
	sample := adversarialInputs(5000)["heavy"]
	render := func(workers int) string {
		shards := make([]*sketch.Quantile, workers)
		moms := make([]sketch.Moments, workers)
		for w := range shards {
			shards[w] = sketch.NewQuantile(0.01)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(sample); i += workers {
					shards[w].Observe(sample[i])
					moms[w].Observe(sample[i])
				}
			}(w)
		}
		wg.Wait()
		total := sketch.NewQuantile(0.01)
		for _, s := range shards {
			total.Merge(s)
		}
		return total.String()
	}
	want := render(1)
	for _, workers := range []int{2, 3, 4, 8} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d: summary differs from serial\n got: %q\nwant: %q", workers, got, want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	q := sketch.NewQuantile(0)
	if q.Alpha() != sketch.DefaultAlpha {
		t.Fatalf("default alpha = %v, want %v", q.Alpha(), sketch.DefaultAlpha)
	}
	q.Observe(math.NaN())
	if q.Count() != 0 {
		t.Fatalf("NaN observed: count %d", q.Count())
	}
	q.ObserveN(3, 0)
	if q.Count() != 0 {
		t.Fatalf("zero-weight observed: count %d", q.Count())
	}
	q.Observe(-5)
	q.Observe(0)
	q.Observe(5)
	if got := q.Value(0); math.Abs(got+5) > 0.06 {
		t.Errorf("min quantile %v, want ~-5", got)
	}
	if got := q.Value(0.5); got != 0 {
		t.Errorf("median %v, want 0", got)
	}
	if got := q.Value(1); math.Abs(got-5) > 0.06 {
		t.Errorf("max quantile %v, want ~5", got)
	}
	if got := q.Buckets(); got != 3 {
		t.Errorf("buckets %d, want 3", got)
	}
	q.Reset()
	if q.Count() != 0 || q.Buckets() != 0 {
		t.Fatalf("reset left count=%d buckets=%d", q.Count(), q.Buckets())
	}

	defer func() {
		if recover() == nil {
			t.Errorf("empty-sketch quantile did not panic")
		}
	}()
	q.Value(0.5)
}

// TestQuantileConstantFootprint pins the tentpole claim: bucket count is
// bounded by the value range's decades, not the observation count.
func TestQuantileConstantFootprint(t *testing.T) {
	q := sketch.NewQuantile(0.01)
	r := rng.New(7)
	for i := 0; i < 200000; i++ {
		q.ObserveN(float64(1+r.Intn(100000)), 1)
	}
	// log_gamma(1e5) ≈ ln(1e5)/ln(1.0202) ≈ 576 buckets max.
	if got := q.Buckets(); got > 600 {
		t.Errorf("buckets %d for 2e5 observations over [1,1e5]; footprint not constant", got)
	}
}

func TestMomentsMergeMatchesSerial(t *testing.T) {
	sample := adversarialInputs(4000)["heavy"]
	var serial sketch.Moments
	for _, v := range sample {
		serial.Observe(v)
	}
	var a, b, c sketch.Moments
	for i, v := range sample {
		switch i % 3 {
		case 0:
			a.Observe(v)
		case 1:
			b.Observe(v)
		default:
			c.Observe(v)
		}
	}
	merged := a
	merged.Merge(b)
	merged.Merge(c)
	if merged.N != serial.N || merged.Min != serial.Min || merged.Max != serial.Max {
		t.Fatalf("merge n/min/max mismatch: %+v vs %+v", merged, serial)
	}
	relClose := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Max(math.Abs(want), 1)
	}
	if !relClose(merged.Mean(), serial.Mean()) {
		t.Errorf("merged mean %v vs serial %v", merged.Mean(), serial.Mean())
	}
	if !relClose(merged.Variance(), serial.Variance()) {
		t.Errorf("merged variance %v vs serial %v", merged.Variance(), serial.Variance())
	}
	// Cross-check variance against stats.Running, the repo's exact path.
	var run stats.Running
	for _, v := range sample {
		run.Observe(v)
	}
	if !relClose(serial.Variance(), run.Variance()) {
		t.Errorf("moments variance %v vs stats.Running %v", serial.Variance(), run.Variance())
	}
}

func TestMomentsEmptyAndReset(t *testing.T) {
	var m sketch.Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.Stddev() != 0 {
		t.Fatalf("empty moments not zeroed: %+v", m)
	}
	var other sketch.Moments
	other.Observe(3)
	m.Merge(other)
	if m.N != 1 || m.Min != 3 || m.Max != 3 {
		t.Fatalf("merge into empty: %+v", m)
	}
	m.Reset()
	if m.N != 0 || m.Sum != 0 {
		t.Fatalf("reset: %+v", m)
	}
}

func TestReservoirDeterministicTopK(t *testing.T) {
	offers := make([]sketch.Exemplar, 100)
	for i := range offers {
		offers[i] = sketch.Exemplar{Key: uint64(i), Weight: float64(1 + i%10), Value: float64(i), Label: "t"}
	}
	fill := func(order []int) string {
		r := sketch.NewReservoir(8)
		for _, i := range order {
			r.Offer(offers[i])
		}
		return r.String()
	}
	asc := make([]int, len(offers))
	desc := make([]int, len(offers))
	for i := range asc {
		asc[i] = i
		desc[i] = len(offers) - 1 - i
	}
	if a, d := fill(asc), fill(desc); a != d {
		t.Errorf("offer order changed reservoir contents\n asc: %q\ndesc: %q", a, d)
	}

	// Merge of shards equals the single reservoir over the union.
	shardA := sketch.NewReservoir(8)
	shardB := sketch.NewReservoir(8)
	for i, ex := range offers {
		if i%2 == 0 {
			shardA.Offer(ex)
		} else {
			shardB.Offer(ex)
		}
	}
	shardA.Merge(shardB)
	if got, want := shardA.String(), fill(asc); got != want {
		t.Errorf("merged shards differ from union\n got: %q\nwant: %q", got, want)
	}

	// Re-offering a key updates in place without growing.
	r := sketch.NewReservoir(4)
	r.Offer(sketch.Exemplar{Key: 1, Weight: 2, Value: 10})
	r.Offer(sketch.Exemplar{Key: 1, Weight: 2, Value: 20})
	if r.Len() != 1 {
		t.Fatalf("duplicate key grew reservoir to %d", r.Len())
	}
	if got := r.Exemplars()[0].Value; got != 20 {
		t.Errorf("re-offer kept stale value %v", got)
	}
}

func TestReservoirWeightBias(t *testing.T) {
	// With many light items and a few very heavy ones, the heavy keys
	// should dominate the retained set.
	r := sketch.NewReservoir(10)
	heavy := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		w := 1.0
		if i%100 == 0 {
			w = 1e6
			heavy[i] = true
		}
		r.Offer(sketch.Exemplar{Key: i, Weight: w})
	}
	kept := 0
	for _, ex := range r.Exemplars() {
		if heavy[ex.Key] {
			kept++
		}
	}
	if kept < 9 {
		t.Errorf("only %d/10 heavy exemplars retained", kept)
	}
}

func TestHash64Avalanche(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 4096; i++ {
		h := sketch.Hash64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
	if sketch.HashString("a") == sketch.HashString("b") {
		t.Fatalf("string hash collision")
	}
	if sketch.HashString("") == sketch.HashString("a") {
		t.Fatalf("empty string hash equals non-empty")
	}
}
