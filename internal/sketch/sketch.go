// Package sketch provides deterministic, constant-memory, mergeable
// summaries for the observability stack: a relative-error quantile sketch
// (log-bucketed, DDSketch-style), streaming moments, and a deterministic
// weighted reservoir of exemplars.
//
// The design principle mirrors the approximate-counting literature the
// repo's related work draws on (Newport–Zheng (ε,δ)-approximate neighbor
// counting, the one-hop beeping counters): replace exact dense state with
// bounded-error summaries whose size is independent of the population.
// Telemetry follows the same rule — a million-node field must not cost a
// million-entry ledger per observation plane.
//
// Determinism is load-bearing everywhere:
//
//   - No randomness is consumed. The reservoir derives priorities from a
//     SplitMix64 hash of the exemplar's identity, so instrumented runs
//     stay byte-identical to bare ones and identical runs keep identical
//     exemplars.
//   - Quantile-sketch merges are integer bucket-count additions: exactly
//     associative and commutative, so any merge tree (serial, per-worker,
//     hierarchical) yields the same summary bytes.
//   - Snapshots render buckets in sorted key order, so a summary's
//     encoding is a pure function of the observed multiset.
package sketch

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultAlpha is the relative accuracy used when a caller passes a
// non-positive alpha: quantile estimates are within ±1% of the true value
// at the queried rank.
const DefaultAlpha = 0.01

// Quantile is a mergeable relative-error quantile sketch over float64
// observations. Values are assigned to logarithmic buckets chosen so that
// every value in bucket k is within a factor (1+alpha)/(1-alpha) of the
// bucket's representative value; reporting the log-midpoint keeps the
// estimate within ±alpha·|v| of the true order statistic.
//
// Memory is O(log(max/min)/log(gamma)) buckets regardless of how many
// values are observed — ~920 buckets span [1, 1e8] at alpha=0.01 — and
// the counts are plain integers, so Merge is exactly associative and
// commutative. The zero value is not usable; call NewQuantile. Not safe
// for concurrent use (callers merge per-worker sketches instead).
type Quantile struct {
	alpha    float64
	gamma    float64
	invLogG  float64 // 1 / ln(gamma), cached for the key computation
	pos, neg map[int32]uint64
	zero     uint64
	count    uint64
}

// NewQuantile returns an empty sketch with the given relative accuracy
// alpha in (0, 1); non-positive alpha selects DefaultAlpha. It panics on
// alpha >= 1.
func NewQuantile(alpha float64) *Quantile {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha >= 1 {
		panic(fmt.Sprintf("sketch: alpha %v outside (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Quantile{
		alpha:   alpha,
		gamma:   gamma,
		invLogG: 1 / math.Log(gamma),
		pos:     map[int32]uint64{},
		neg:     map[int32]uint64{},
	}
}

// Alpha returns the sketch's relative accuracy.
func (q *Quantile) Alpha() float64 { return q.alpha }

// Count returns the number of observations folded in.
func (q *Quantile) Count() uint64 { return q.count }

// Buckets returns the number of occupied buckets — the sketch's memory
// footprint in O(1)-sized cells (the zero bucket counts as one when used).
func (q *Quantile) Buckets() int {
	n := len(q.pos) + len(q.neg)
	if q.zero > 0 {
		n++
	}
	return n
}

// zeroEpsilon collapses values indistinguishable from zero into the zero
// bucket; the telemetry domain (polls, slots, bytes) is non-negative
// integers, so anything below it is a true zero.
const zeroEpsilon = 1e-9

// key returns the bucket index for a positive magnitude: the smallest k
// with gamma^k >= v. The float log gives a candidate; the correction loop
// pins the invariant gamma^(k-1) < v <= gamma^k exactly, so the key is a
// pure function of (v, gamma) and never depends on libm rounding slack.
func (q *Quantile) key(v float64) int32 {
	k := int32(math.Ceil(math.Log(v) * q.invLogG))
	for math.Pow(q.gamma, float64(k)) < v {
		k++
	}
	for k > math.MinInt32 && math.Pow(q.gamma, float64(k-1)) >= v {
		k--
	}
	return k
}

// value returns bucket k's representative: the log-space midpoint
// 2·gamma^k/(gamma+1), within ±alpha of every value the bucket admits.
func (q *Quantile) value(k int32) float64 {
	return 2 * math.Pow(q.gamma, float64(k)) / (q.gamma + 1)
}

// Observe folds one observation into the sketch. NaN is ignored (it has
// no rank); infinities panic, as they would silently absorb the tail.
func (q *Quantile) Observe(v float64) { q.ObserveN(v, 1) }

// ObserveN folds n identical observations — the weighted form backfilling
// pre-counted data (e.g. "N-touched nodes at zero slots") in O(1).
func (q *Quantile) ObserveN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 0) {
		panic("sketch: observing an infinite value")
	}
	switch {
	case v > zeroEpsilon:
		q.pos[q.key(v)] += n
	case v < -zeroEpsilon:
		q.neg[q.key(-v)] += n
	default:
		q.zero += n
	}
	q.count += n
}

// Merge folds other into q. Both sketches must share the same alpha;
// mismatched resolutions panic rather than silently degrade. Merging is
// an integer bucket-count addition, so it is exactly associative and
// commutative and never loses precision.
func (q *Quantile) Merge(other *Quantile) {
	if other == nil || other.count == 0 {
		return
	}
	if other.alpha != q.alpha {
		panic(fmt.Sprintf("sketch: merging alpha=%v into alpha=%v", other.alpha, q.alpha))
	}
	for k, n := range other.pos {
		q.pos[k] += n
	}
	for k, n := range other.neg {
		q.neg[k] += n
	}
	q.zero += other.zero
	q.count += other.count
}

// Reset empties the sketch, keeping its buckets' map capacity for reuse.
func (q *Quantile) Reset() {
	clear(q.pos)
	clear(q.neg)
	q.zero = 0
	q.count = 0
}

// Value returns the estimated p-quantile (0 <= p <= 1) of the observed
// multiset: the representative value of the bucket holding the order
// statistic at rank floor(p·(count-1)). The estimate is within relative
// error alpha of that order statistic. It panics on an empty sketch or a
// p outside [0, 1].
func (q *Quantile) Value(p float64) float64 {
	if q.count == 0 {
		panic("sketch: quantile of empty sketch")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sketch: quantile %v outside [0,1]", p))
	}
	rank := uint64(p * float64(q.count-1))
	// Walk negative buckets from the most negative value upward, then the
	// zero bucket, then positive buckets upward.
	cum := uint64(0)
	for _, k := range sortedKeysDesc(q.neg) {
		cum += q.neg[k]
		if cum > rank {
			return -q.value(k)
		}
	}
	cum += q.zero
	if cum > rank {
		return 0
	}
	for _, k := range sortedKeysAsc(q.pos) {
		cum += q.pos[k]
		if cum > rank {
			return q.value(k)
		}
	}
	// Unreachable: the cumulative count equals q.count > rank by the end.
	panic("sketch: rank walk overran the bucket counts")
}

// Values returns several quantiles in one bucket walk's worth of work.
func (q *Quantile) Values(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = q.Value(p)
	}
	return out
}

// AppendTo renders the sketch deterministically: alpha, count, and every
// occupied bucket in ascending key order. Two sketches over the same
// multiset — regardless of observation order, merge shape, or worker
// count — render byte-identically.
func (q *Quantile) AppendTo(b *strings.Builder) {
	fmt.Fprintf(b, "quantile alpha=%g count=%d buckets=%d\n", q.alpha, q.count, q.Buckets())
	for _, k := range sortedKeysDesc(q.neg) {
		fmt.Fprintf(b, "  bucket -%d %d\n", k, q.neg[k])
	}
	if q.zero > 0 {
		fmt.Fprintf(b, "  bucket zero %d\n", q.zero)
	}
	for _, k := range sortedKeysAsc(q.pos) {
		fmt.Fprintf(b, "  bucket %d %d\n", k, q.pos[k])
	}
}

// String implements fmt.Stringer via AppendTo.
func (q *Quantile) String() string {
	var b strings.Builder
	q.AppendTo(&b)
	return b.String()
}

func sortedKeysAsc(m map[int32]uint64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedKeysDesc(m map[int32]uint64) []int32 {
	keys := sortedKeysAsc(m)
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// Hash64 is the SplitMix64 finalizer over one 64-bit word — the
// deterministic hash the reservoir (and the trace sampler) key on. It is
// a bijection with full avalanche, so consecutive identities (poll 0, 1,
// 2, ...) spread uniformly over the 64-bit space.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString folds a string into a 64-bit key by iterating Hash64 over
// its bytes (FNV-style combine, SplitMix finalize per word).
func HashString(s string) uint64 {
	h := uint64(len(s))
	for i := 0; i < len(s); i++ {
		h = Hash64(h ^ uint64(s[i]))
	}
	return h
}
