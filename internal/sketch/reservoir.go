package sketch

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Exemplar is one retained sample in a Reservoir: an identity key, the
// weight it was offered with, a short label for humans, and the value it
// carries (e.g. the session's slot cost).
type Exemplar struct {
	Key    uint64  // stable identity (hash of the span path / session label)
	Weight float64 // sampling weight; heavier items are likelier to be kept
	Value  float64
	Label  string
}

// Reservoir keeps a bounded, weighted sample of exemplars without
// consuming any randomness: each offered item's priority is
// u^(1/weight) with u derived from Hash64(key) (the A-ExpJ weighted
// reservoir rule with the uniform draw replaced by a hash), and the K
// highest-priority items survive. Because the priority is a pure
// function of (key, weight), Merge — union then top-K — is exactly
// associative and commutative, and identical runs retain identical
// exemplars regardless of worker count or offer order. Ties (possible
// only for duplicate keys) break toward the smaller key, then label.
type Reservoir struct {
	k     int
	items []weightedExemplar
}

type weightedExemplar struct {
	prio float64
	ex   Exemplar
}

// NewReservoir returns a reservoir retaining at most k exemplars; k <= 0
// panics.
func NewReservoir(k int) *Reservoir {
	if k <= 0 {
		panic(fmt.Sprintf("sketch: reservoir capacity %d", k))
	}
	return &Reservoir{k: k, items: make([]weightedExemplar, 0, k+1)}
}

// Cap returns the reservoir's capacity.
func (r *Reservoir) Cap() int { return r.k }

// Len returns the number of exemplars currently retained.
func (r *Reservoir) Len() int { return len(r.items) }

// priority maps an exemplar to its deterministic sampling priority
// u^(1/w), u = (Hash64(key)+1)/2^64 in (0,1]. Non-positive weights get
// priority 0 (kept only if space remains over every weighted item).
func priority(ex Exemplar) float64 {
	if ex.Weight <= 0 {
		return 0
	}
	u := (float64(Hash64(ex.Key)) + 1) / math.Exp2(64)
	return math.Pow(u, 1/ex.Weight)
}

// Offer proposes an exemplar; it is retained iff its priority ranks in
// the top K of everything offered so far. Re-offering the same key
// replaces the previous entry (last value/label wins at equal priority).
func (r *Reservoir) Offer(ex Exemplar) {
	w := weightedExemplar{prio: priority(ex), ex: ex}
	for i := range r.items {
		if r.items[i].ex.Key == ex.Key && r.items[i].ex.Weight == ex.Weight {
			r.items[i] = w
			return
		}
	}
	r.items = append(r.items, w)
	r.sortItems()
	if len(r.items) > r.k {
		r.items = r.items[:r.k]
	}
}

// Merge folds other's exemplars into r, keeping the global top K.
func (r *Reservoir) Merge(other *Reservoir) {
	if other == nil {
		return
	}
	for _, it := range other.items {
		r.Offer(it.ex)
	}
}

// Reset empties the reservoir, keeping its backing array.
func (r *Reservoir) Reset() { r.items = r.items[:0] }

// Exemplars returns the retained exemplars in descending priority order.
// The slice is freshly allocated; callers may keep it.
func (r *Reservoir) Exemplars() []Exemplar {
	out := make([]Exemplar, len(r.items))
	for i, it := range r.items {
		out[i] = it.ex
	}
	return out
}

func (r *Reservoir) sortItems() {
	sort.Slice(r.items, func(i, j int) bool {
		a, b := r.items[i], r.items[j]
		if a.prio != b.prio {
			return a.prio > b.prio
		}
		if a.ex.Key != b.ex.Key {
			return a.ex.Key < b.ex.Key
		}
		return a.ex.Label < b.ex.Label
	})
}

// AppendTo renders the reservoir deterministically in priority order.
func (r *Reservoir) AppendTo(b *strings.Builder) {
	fmt.Fprintf(b, "reservoir k=%d len=%d\n", r.k, len(r.items))
	for _, it := range r.items {
		fmt.Fprintf(b, "  exemplar key=%016x w=%g v=%g %s\n", it.ex.Key, it.ex.Weight, it.ex.Value, it.ex.Label)
	}
}

// String implements fmt.Stringer via AppendTo.
func (r *Reservoir) String() string {
	var b strings.Builder
	r.AppendTo(&b)
	return b.String()
}
