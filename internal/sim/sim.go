// Package sim provides the discrete-event kernel under the packet-level
// simulations: a virtual clock and an ordered event queue. Events
// scheduled for the same instant fire in scheduling order, so simulations
// are fully deterministic.
package sim

import (
	"container/heap"
	"fmt"

	"tcast/internal/trace"
)

// Time is virtual time in ticks. The packet-level substrates interpret one
// tick as one 802.15.4 symbol period (16 µs on the CC2420's 2.4 GHz PHY),
// but the kernel itself is unit-agnostic.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	do  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// ready to use. Kernels are not safe for concurrent use; simulations that
// span goroutines (package motelab) serialize access externally.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events still queued.
func (k *Kernel) Pending() int { return len(k.events) }

// TraceAttrs implements trace.Annotator: the kernel annotates spans with
// its virtual clock and scheduling ledger, letting packet-level drivers
// tie span intervals back to discrete-event time.
func (k *Kernel) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.Int64Attr("sim_now_ticks", int64(k.now)),
		trace.Int64Attr("sim_events_scheduled", int64(k.seq)),
		trace.IntAttr("sim_events_pending", len(k.events)),
	}
}

// At schedules do to run at absolute virtual time t. Scheduling in the
// past panics: it would silently reorder causality.
func (k *Kernel) At(t Time, do func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, do: do})
}

// After schedules do to run d ticks from now. Negative d panics.
func (k *Kernel) After(d Time, do func()) { k.At(k.now+d, do) }

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 || k.stopped {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.at
	e.do()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped && k.events[0].at <= t {
		k.Step()
	}
	if !k.stopped && t > k.now {
		k.now = t
	}
}

// Stop aborts the current Run/RunUntil after the in-flight event returns.
// Pending events stay queued.
func (k *Kernel) Stop() { k.stopped = true }
