package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueKernel(t *testing.T) {
	var k Kernel
	if k.Now() != 0 || k.Pending() != 0 {
		t.Fatal("zero kernel not empty at time 0")
	}
	if k.Step() {
		t.Fatal("Step on empty kernel ran something")
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	var k Kernel
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("order = %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %d, want 30", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(7, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	var k Kernel
	var at Time
	k.At(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	k.Run()
	if at != 15 {
		t.Fatalf("After fired at %d, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var k Kernel
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	ran := 0
	for _, at := range []Time{5, 10, 15, 20} {
		k.At(at, func() { ran++ })
	}
	k.RunUntil(12)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if k.Now() != 12 {
		t.Fatalf("Now = %d, want 12", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.RunUntil(20)
	if ran != 4 || k.Now() != 20 {
		t.Fatalf("after second RunUntil: ran=%d now=%d", ran, k.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	var k Kernel
	ran := false
	k.At(10, func() { ran = true })
	k.RunUntil(10)
	if !ran {
		t.Fatal("event at boundary did not run")
	}
}

func TestStop(t *testing.T) {
	var k Kernel
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt Run: ran=%d", ran)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending events dropped: %d", k.Pending())
	}
	k.Run() // resume
	if ran != 2 {
		t.Fatal("resumed Run did not drain")
	}
}

func TestCascadedScheduling(t *testing.T) {
	// An event chain where each event schedules the next models a
	// periodic slot ticker.
	var k Kernel
	const slots = 100
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < slots {
			k.After(10, tick)
		}
	}
	k.At(0, tick)
	k.Run()
	if count != slots {
		t.Fatalf("ticks = %d, want %d", count, slots)
	}
	if k.Now() != Time((slots-1)*10) {
		t.Fatalf("Now = %d", k.Now())
	}
}

func TestQuickOrdering(t *testing.T) {
	// Arbitrary timestamp sets always execute in sorted order.
	f := func(timesRaw []uint16) bool {
		var k Kernel
		var got []Time
		for _, tr := range timesRaw {
			at := Time(tr)
			k.At(at, func() { got = append(got, at) })
		}
		k.Run()
		if len(got) != len(timesRaw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var k Kernel
		for j := 0; j < 100; j++ {
			k.At(Time(j%17), func() {})
		}
		k.Run()
	}
}
