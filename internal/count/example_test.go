package count_test

import (
	"fmt"

	"tcast/internal/count"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

// ExampleIdentify recovers the exact positive set with adaptive group
// testing — far fewer polls than one per node.
func ExampleIdentify() {
	r := rng.New(1)
	ch := fastsim.New(64, []int{5, 23, 42}, fastsim.DefaultConfig(), r)
	positives, queries, err := count.Identify(ch, 64)
	if err != nil {
		panic(err)
	}
	fmt.Println("positives:", positives)
	fmt.Println("sub-linear:", queries < 64)
	// Output:
	// positives: [5 23 42]
	// sub-linear: true
}

// ExampleEstimate approximates the positive count with a logarithmic
// number of sampling probes.
func ExampleEstimate() {
	r := rng.New(2)
	positives := make([]int, 100)
	for i := range positives {
		positives[i] = i * 10
	}
	ch := fastsim.New(1024, positives, fastsim.DefaultConfig(), r.Split(1))
	members := make([]int, 1024)
	for i := range members {
		members[i] = i
	}
	xHat, queries := count.Estimate(ch, members, count.EstimateOptions{Repeats: 16}, r.Split(2))
	fmt.Println("within factor two:", xHat > 50 && xHat < 200)
	fmt.Println("far below one poll per node:", queries < 256)
	// Output:
	// within factor two: true
	// far below one poll per node: true
}
