package count

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

func identifyOn(t *testing.T, n, x int, cfg fastsim.Config, seed uint64) ([]int, []int, int) {
	t.Helper()
	r := rng.New(seed)
	ch, truth := fastsim.RandomPositives(n, x, cfg, r.Split(1))
	got, queries, err := Identify(ch, n)
	if err != nil {
		t.Fatal(err)
	}
	return got, truth.Members(), queries
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIdentifyExactOnePlus(t *testing.T) {
	for _, tc := range []struct{ n, x int }{
		{1, 0}, {1, 1}, {16, 0}, {16, 1}, {16, 16}, {64, 5}, {128, 20}, {100, 99},
	} {
		for seed := uint64(0); seed < 3; seed++ {
			got, want, _ := identifyOn(t, tc.n, tc.x, fastsim.DefaultConfig(), seed)
			if !sameInts(got, want) {
				t.Fatalf("n=%d x=%d seed=%d: got %v, want %v", tc.n, tc.x, seed, got, want)
			}
		}
	}
}

func TestIdentifyExactTwoPlus(t *testing.T) {
	for _, cfg := range []fastsim.Config{
		fastsim.TwoPlusConfig(),
		{Model: query.TwoPlus, Capture: fastsim.NoCapture(), CaptureEffectPresent: false},
	} {
		for seed := uint64(0); seed < 3; seed++ {
			got, want, _ := identifyOn(t, 64, 10, cfg, seed)
			if !sameInts(got, want) {
				t.Fatalf("2+ seed=%d: got %v, want %v", seed, got, want)
			}
		}
	}
}

func TestIdentifyZeroPositivesOneQuery(t *testing.T) {
	_, _, queries := identifyOn(t, 128, 0, fastsim.DefaultConfig(), 1)
	if queries != 1 {
		t.Fatalf("x=0 used %d queries, want 1", queries)
	}
}

func TestIdentifyQueryBound(t *testing.T) {
	// Binary splitting costs at most ~2x·(log2 n + 1) + 1.
	const n = 128
	for _, x := range []int{1, 4, 16, 64} {
		_, _, queries := identifyOn(t, n, x, fastsim.DefaultConfig(), uint64(x))
		bound := 2*x*(8+1) + 1
		if queries > bound {
			t.Fatalf("x=%d: %d queries exceeds bound %d", x, queries, bound)
		}
	}
}

func TestIdentifyEdgeCases(t *testing.T) {
	r := rng.New(1)
	ch, _ := fastsim.RandomPositives(0, 0, fastsim.DefaultConfig(), r)
	got, queries, err := Identify(ch, 0)
	if err != nil || len(got) != 0 || queries != 0 {
		t.Fatalf("n=0: %v, %d, %v", got, queries, err)
	}
	if _, _, err := Identify(ch, -1); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestQuickIdentifyExact(t *testing.T) {
	f := func(seed uint64, nRaw, xRaw uint8, twoPlus bool) bool {
		n := int(nRaw%100) + 1
		x := int(xRaw) % (n + 1)
		cfg := fastsim.DefaultConfig()
		if twoPlus {
			cfg = fastsim.TwoPlusConfig()
		}
		r := rng.New(seed)
		ch, truth := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		got, _, err := Identify(ch, n)
		if err != nil {
			return false
		}
		return sameInts(got, truth.Members())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func members(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestEstimateZeroExact(t *testing.T) {
	r := rng.New(2)
	ch, _ := fastsim.RandomPositives(64, 0, fastsim.DefaultConfig(), r.Split(1))
	xHat, queries := Estimate(ch, members(64), EstimateOptions{Repeats: 8}, r.Split(2))
	if xHat != 0 {
		t.Fatalf("x=0 estimated as %v", xHat)
	}
	if queries != 8 {
		t.Fatalf("x=0 used %d queries, want 8 (one level)", queries)
	}
}

func TestEstimateEmptyMembers(t *testing.T) {
	r := rng.New(3)
	ch, _ := fastsim.RandomPositives(4, 2, fastsim.DefaultConfig(), r.Split(1))
	xHat, queries := Estimate(ch, nil, EstimateOptions{}, r.Split(2))
	if xHat != 0 || queries != 0 {
		t.Fatalf("empty members: %v, %d", xHat, queries)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// The geometric estimator should land within a factor of two of the
	// truth on average for a spread of cardinalities.
	const n, trials = 512, 60
	for _, x := range []int{4, 16, 64, 200} {
		var logErr float64
		root := rng.New(uint64(100 + x))
		for i := 0; i < trials; i++ {
			r := root.Split(uint64(i))
			ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(1))
			xHat, _ := Estimate(ch, members(n), EstimateOptions{Repeats: 32}, r.Split(2))
			if xHat <= 0 {
				t.Fatalf("x=%d estimated as %v", x, xHat)
			}
			logErr += math.Abs(math.Log2(xHat / float64(x)))
		}
		if mean := logErr / trials; mean > 1 {
			t.Errorf("x=%d: mean |log2 error| = %v, want <= 1 (factor 2)", x, mean)
		}
	}
}

func TestEstimateQueryBudget(t *testing.T) {
	// Cost is O(Repeats · log n), never O(n).
	const n = 4096
	r := rng.New(9)
	ch, _ := fastsim.RandomPositives(n, 100, fastsim.DefaultConfig(), r.Split(1))
	_, queries := Estimate(ch, members(n), EstimateOptions{Repeats: 16}, r.Split(2))
	maxLevels := 14 // log2(4096)=12, plus slack
	if queries > 16*maxLevels {
		t.Fatalf("%d queries exceeds budget %d", queries, 16*maxLevels)
	}
}

func TestEstimateMonotoneQueries(t *testing.T) {
	// More positives stop the cascade later, so queries grow (weakly)
	// with x on average.
	const n = 256
	avg := func(x int) float64 {
		total := 0
		root := rng.New(uint64(500 + x))
		for i := 0; i < 40; i++ {
			r := root.Split(uint64(i))
			ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(1))
			_, q := Estimate(ch, members(n), EstimateOptions{Repeats: 8}, r.Split(2))
			total += q
		}
		return float64(total) / 40
	}
	if avg(2) >= avg(128) {
		t.Fatalf("query cost did not grow with x: %v vs %v", avg(2), avg(128))
	}
}

func BenchmarkIdentify(b *testing.B) {
	root := rng.New(1)
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(128, 16, fastsim.DefaultConfig(), r)
		if _, _, err := Identify(ch, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	root := rng.New(1)
	m := members(512)
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(512, 64, fastsim.DefaultConfig(), r.Split(1))
		Estimate(ch, m, EstimateOptions{Repeats: 16}, r.Split(2))
	}
}
