// Package count extends the threshold primitive with the two neighboring
// questions the paper's framework supports:
//
//   - Identify: which nodes are positive? Classic adaptive group testing
//     (binary splitting) over the same RCD group polls, costing
//     O(x log(n/x)) queries — the regime where the companion theory [4]
//     places identification. Applications (Section II-C) such as intruder
//     classification need the identities once the threshold fires.
//   - Estimate: approximately how many nodes are positive? A
//     Flajolet-Martin-style geometric sampling cascade over probabilistic
//     bins, answering with O(log n) polls — the data-streams machinery
//     Section VI builds on, applied to cardinality.
package count

import (
	"fmt"
	"math"
	"sort"

	"tcast/internal/binning"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// Identify returns the exact set of positive nodes among {0..n-1} using
// adaptive binary splitting, plus the number of group polls spent. Under
// the 2+ model, decoded replies short-circuit part of the recursion.
// Results are sorted. The cost is at most 2x·(log2(n)+1)+1 polls for x
// positives.
func Identify(q query.Querier, n int) (positives []int, queries int, err error) {
	if n < 0 {
		return nil, 0, fmt.Errorf("count: negative population %d", n)
	}
	if n == 0 {
		return nil, 0, nil
	}
	traits := q.Traits()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	// Depth-first over sub-bins; each element is a candidate set known
	// to possibly contain positives.
	stack := [][]int{all}
	const maxPolls = 1 << 24 // livelock guard; legal sessions stay far below
	for len(stack) > 0 {
		bin := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(bin) == 0 {
			continue
		}
		resp := q.Query(bin)
		queries++
		if queries > maxPolls {
			return nil, queries, fmt.Errorf("count: poll budget exhausted")
		}
		switch resp.Kind {
		case query.Empty:
			// Whole sub-bin negative.
		case query.Decoded:
			positives = append(positives, resp.DecodedID)
			rest := without(bin, resp.DecodedID)
			if traits.CaptureEffect {
				// Others may still be positive: re-test the remainder.
				if len(rest) > 0 {
					stack = append(stack, rest)
				}
			}
			// Without capture effect a decode proves a singleton; the
			// remainder is negative and needs no further polls.
		default: // Active or Collision: at least one positive inside.
			if len(bin) == 1 {
				positives = append(positives, bin[0])
				continue
			}
			mid := len(bin) / 2
			stack = append(stack, bin[:mid], bin[mid:])
		}
	}
	sort.Ints(positives)
	return positives, queries, nil
}

func without(bin []int, id int) []int {
	out := make([]int, 0, len(bin)-1)
	for _, v := range bin {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// EstimateOptions tunes the cardinality estimator.
type EstimateOptions struct {
	// Repeats is the number of probes per sampling level; more repeats
	// tighten the estimate. Zero means 32.
	Repeats int
}

// Estimate approximates the number of positive nodes among members using
// geometric sampling: at level j each node joins a probe with probability
// 2^-j, so the expected empty-probe fraction is exp(-x/2^j). The
// estimator walks levels until most probes come up empty and inverts the
// empty fraction at that level. It returns the estimate and the number of
// polls spent (O(Repeats·log n)).
//
// A zero estimate is exact: level 0 probes include every member, so an
// all-empty level-0 round proves x = 0 on an ideal channel.
func Estimate(q query.Querier, members []int, opts EstimateOptions, r *rng.Source) (xHat float64, queries int) {
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 32
	}
	n := len(members)
	if n == 0 {
		return 0, 0
	}
	maxLevel := 1
	for (1 << maxLevel) < n {
		maxLevel++
	}
	for j := 0; j <= maxLevel; j++ {
		p := math.Pow(2, -float64(j))
		empty := 0
		for i := 0; i < repeats; i++ {
			var probe []int
			if j == 0 {
				probe = members
			} else {
				probe = binning.ProbabilisticBin(members, p, r)
			}
			queries++
			if q.Query(probe).Kind == query.Empty {
				empty++
			}
		}
		if j == 0 && empty == repeats {
			return 0, queries
		}
		// Invert exp(-x·p) = empty/repeats once at least half the
		// probes are empty (the regime where the inversion is stable),
		// or at the last level regardless.
		if empty*2 >= repeats || j == maxLevel {
			frac := float64(empty) / float64(repeats)
			// Clamp away from 0 and 1 to keep the logarithm finite.
			lo, hi := 0.5/float64(repeats), 1-0.5/float64(repeats)
			if frac < lo {
				frac = lo
			}
			if frac > hi {
				frac = hi
			}
			return -math.Log(frac) / p, queries
		}
	}
	return 0, queries // unreachable
}
