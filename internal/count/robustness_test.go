package count

// Robustness of identification and estimation under the radio faults the
// paper discusses: reply loss (false negatives) and interference false
// activity (pollcast's exposure).

import (
	"testing"

	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

func TestIdentifyUnderLossOnlyMisses(t *testing.T) {
	// Reply loss can hide positives but never invent them: the
	// identified set must always be a subset of the ground truth.
	cfg := fastsim.DefaultConfig()
	cfg.MissProb = 0.3
	root := rng.New(1)
	missedSomething := false
	for i := 0; i < 100; i++ {
		r := root.Split(uint64(i))
		ch, truth := fastsim.RandomPositives(64, 12, cfg, r.Split(1))
		got, _, err := Identify(ch, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got {
			if !truth.Contains(id) {
				t.Fatalf("trial %d: identified non-positive %d", i, id)
			}
		}
		if len(got) < 12 {
			missedSomething = true
		}
	}
	if !missedSomething {
		t.Fatal("30% loss never hid a positive — loss path not exercised")
	}
}

func TestIdentifyUnderFalseActivityOvercounts(t *testing.T) {
	// Interference false activity makes empty singletons look positive:
	// CCA-based identification overcounts, the dual failure mode. This
	// is why identification should ride backcast, not pollcast, in
	// noisy fields.
	cfg := fastsim.DefaultConfig()
	cfg.FalseActiveProb = 0.3
	root := rng.New(2)
	overcounted := false
	for i := 0; i < 50; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(64, 4, cfg, r.Split(1))
		got, _, err := Identify(ch, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 4 {
			overcounted = true
			break
		}
	}
	if !overcounted {
		t.Fatal("interference never inflated the identified set")
	}
}

func TestEstimateUnderModerateLossStaysInBand(t *testing.T) {
	// Per-reply loss thins probe responses; the estimate biases low but
	// must stay within a small factor for moderate loss.
	cfg := fastsim.DefaultConfig()
	cfg.MissProb = 0.1
	root := rng.New(3)
	const n, x, trials = 256, 64, 40
	var sum float64
	for i := 0; i < trials; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		xHat, _ := Estimate(ch, members(n), EstimateOptions{Repeats: 32}, r.Split(2))
		sum += xHat
	}
	mean := sum / trials
	if mean < float64(x)/3 || mean > float64(x)*3 {
		t.Fatalf("mean estimate %v under 10%% loss, truth %d", mean, x)
	}
}
