package obs

import (
	"context"
	"runtime"
	runtimemetrics "runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"

	"tcast/internal/metrics"
)

// WithPhase runs f under a pprof label phase=<name>, so CPU samples taken
// while an experiment (or a sub-phase of one) runs are attributable in
// `go tool pprof` with -tag_focus / tagroot. Labels cost nothing when no
// profile is active.
func WithPhase(name string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) { f() })
}

// Runtime metric names folded into the registry by the sampler, next to
// the cost-model instruments — so Go-runtime cost (heap, GC, scheduler)
// and paper-cost rates (polls/sec, slots/sec) read off one endpoint.
const (
	MetricGoroutines  = "go_goroutines"
	MetricHeapBytes   = "go_heap_inuse_bytes"
	MetricHeapObjects = "go_heap_objects_bytes"
	MetricGCCycles    = "go_gc_cycles_total"
	MetricGCPause     = "go_gc_pause_seconds_total"
)

// runtimeSamples are the runtime/metrics series the sampler reads; each
// maps onto one registry gauge.
var runtimeSamples = []struct {
	name   string // runtime/metrics name
	metric string // registry gauge name
}{
	{"/sched/goroutines:goroutines", MetricGoroutines},
	{"/memory/classes/heap/objects:bytes", MetricHeapObjects},
	{"/gc/cycles/total:gc-cycles", MetricGCCycles},
}

// SampleRuntime takes one sample of the Go runtime's own cost — live
// goroutines, heap bytes, GC cycles and cumulative GC pause — into reg.
// Heap-in-use and the pause total come from runtime.ReadMemStats (the
// runtime/metrics pause series is a histogram with no exact sum); the
// rest read through runtime/metrics. One call is cheap enough for a
// per-second ticker and deterministic tests alike.
func SampleRuntime(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	samples := make([]runtimemetrics.Sample, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples[i].Name = s.name
	}
	runtimemetrics.Read(samples)
	for i, s := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case runtimemetrics.KindUint64:
			reg.Gauge(s.metric).Set(float64(samples[i].Value.Uint64()))
		case runtimemetrics.KindFloat64:
			reg.Gauge(s.metric).Set(samples[i].Value.Float64())
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge(MetricHeapBytes).Set(float64(ms.HeapInuse))
	reg.Gauge(MetricGCPause).Set(float64(ms.PauseTotalNs) / 1e9)
}

// StartRuntimeSampler samples the runtime into reg every interval
// (defaulting to one second) until the returned stop function is called.
// Intended for live serving only (-metrics-addr): file-dumped registries
// should stay free of wall-clock-dependent series, so cmds start the
// sampler only when an endpoint is up.
func StartRuntimeSampler(reg *metrics.Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		SampleRuntime(reg)
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleRuntime(reg)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
