package obs

import (
	"fmt"

	"tcast/internal/audit"
	"tcast/internal/faults"
	"tcast/internal/query"
)

// Emit helpers: the vocabulary the experiment harness and cmds publish
// with. Every helper is a no-op on a nil bus, so call sites need no
// guards, and none of them consume randomness.

// PublishSessionStart announces one query session beginning.
func PublishSessionStart(b *Bus, session string, trial int) {
	if b == nil {
		return
	}
	b.Publish(Event{Kind: KindSessionStart, Session: session, Trial: trial, Poll: -1, CausalPoll: -1})
}

// PublishVerdict closes one audited session on the bus: the verdict event
// itself, one anomaly per Knowledge-invariant violation, and — for a
// wrong decision — a wrong-verdict anomaly carrying the causal poll,
// joined through q's middleware chain to the injected fault that explains
// it when one does. The anomaly events are what trip the flight recorder.
func PublishVerdict(b *Bus, session string, trial int, v audit.Verdict, slots int64, q query.Querier) {
	if b == nil {
		return
	}
	b.Publish(Event{
		Kind: KindSessionVerdict, Session: session, Trial: trial, Poll: -1,
		Outcome: v.Outcome.String(), Correct: v.Correct(),
		Polls: v.Polls, Slots: slots, CausalPoll: v.CausalPoll,
	})
	for _, viol := range v.Violations {
		b.Publish(Event{
			Kind: KindAnomaly, Session: session, Trial: trial, Poll: viol.Poll,
			Outcome: AnomalyInvariant,
			Detail:  viol.Invariant.String() + ": " + viol.Detail,

			CausalPoll: -1,
		})
	}
	if v.Correct() {
		return
	}
	detail := fmt.Sprintf("decision %v but truth %v (true x=%d), outcome %s",
		v.Decision, v.Truth, v.TrueX, v.Outcome)
	if v.CausalPoll >= 0 {
		detail += fmt.Sprintf("; causal poll %d (%s)", v.CausalPoll, v.CausalClass)
		if cause := describeCause(q, v.CausalPoll); cause != "" {
			detail += ", " + cause
		}
	}
	b.Publish(Event{
		Kind: KindAnomaly, Session: session, Trial: trial, Poll: -1,
		Outcome: AnomalyWrongVerdict, Detail: detail,
		CausalPoll: v.CausalPoll,
	})
}

// PublishDecision is PublishVerdict's unaudited sibling: the decision is
// graded against the configured truth only, so a wrong one has no causal
// poll to name (audit.OutcomeWrongUnattributed).
func PublishDecision(b *Bus, session string, trial int, decision, truth bool, polls int, slots int64) {
	if b == nil {
		return
	}
	outcome := audit.OutcomeCorrect
	if decision != truth {
		outcome = audit.OutcomeWrongUnattributed
	}
	b.Publish(Event{
		Kind: KindSessionVerdict, Session: session, Trial: trial, Poll: -1,
		Outcome: outcome.String(), Correct: decision == truth,
		Polls: polls, Slots: slots, CausalPoll: -1,
	})
	if decision == truth {
		return
	}
	b.Publish(Event{
		Kind: KindAnomaly, Session: session, Trial: trial, Poll: -1,
		Outcome: AnomalyWrongVerdict,
		Detail:  fmt.Sprintf("decision %v but configured truth %v", decision, truth),

		CausalPoll: -1,
	})
}

// PublishChainEvents drains a finished session's middleware chain onto
// the bus: one KindFault event per injected fault (Poll is the
// substrate-level attempt index of the injector's own log) and a
// KindRetryExhausted event when any poll spent its whole retry budget on
// silence.
func PublishChainEvents(b *Bus, session string, trial int, q query.Querier) {
	if b == nil {
		return
	}
	rq, inj := chainLayers(q)
	if inj != nil {
		for _, pf := range inj.Events() {
			b.Publish(Event{
				Kind: KindFault, Session: session, Trial: trial, Poll: pf.Poll,
				Detail: pf.String(),

				CausalPoll: -1,
			})
		}
	}
	if rq != nil {
		if n := rq.Exhausted(); n > 0 {
			b.Publish(Event{
				Kind: KindRetryExhausted, Session: session, Trial: trial, Poll: -1,
				Polls:  n,
				Detail: fmt.Sprintf("%d poll(s) silent after the full retry budget (%d retries total)", n, rq.Retries()),

				CausalPoll: -1,
			})
		}
	}
}

// ChainSlots walks q outermost-first for a virtual-time slot meter — the
// same discovery the trace span recorder does, so verdict events price
// sessions identically to spans. Substrates without a meter (the
// abstract fastsim channel) cost one slot per poll; fallbackPolls covers
// them.
func ChainSlots(q query.Querier, fallbackPolls int) int64 {
	for walk := q; walk != nil; {
		if sc, ok := walk.(interface{ Slots() int }); ok {
			return int64(sc.Slots())
		}
		w, ok := walk.(query.Wrapper)
		if !ok {
			break
		}
		walk = w.Unwrap()
	}
	return int64(fallbackPolls)
}

// chainLayers finds the outermost retry layer and fault injector in q's
// middleware chain (nil when absent).
func chainLayers(q query.Querier) (rq *query.Retry, inj *faults.Injector) {
	for walk := q; walk != nil; {
		if r, ok := walk.(*query.Retry); ok && rq == nil {
			rq = r
		}
		if j, ok := walk.(*faults.Injector); ok && inj == nil {
			inj = j
		}
		w, ok := walk.(query.Wrapper)
		if !ok {
			break
		}
		walk = w.Unwrap()
	}
	return rq, inj
}

// describeCause joins an audited causal poll to the injected fault that
// explains it: the retry layer renumbers polls (one audited poll spans
// several attempts), so the index maps through DownstreamPoll before the
// injector's event log is consulted. Empty when no injected fault
// touched the poll.
func describeCause(q query.Querier, causal int) string {
	if causal < 0 {
		return ""
	}
	rq, inj := chainLayers(q)
	if inj == nil {
		return ""
	}
	if rq != nil {
		causal = rq.DownstreamPoll(causal)
	}
	if cause := inj.Describe(causal); causal >= 0 && cause != "no injected fault" {
		return cause
	}
	return ""
}
