// Package obs is the unified streaming observability plane over the
// three post-hoc layers (metrics, trace, audit) and the fault injector:
// where those record for exit-time dumps, obs streams while the run is
// still going.
//
// Four pieces share one structured event vocabulary:
//
//   - Bus (bus.go): a lock-light publish/subscribe fan-out of Events —
//     session starts and verdicts, poll outcomes, fault injections, retry
//     exhaustion, anomalies. Publishing consumes no randomness and never
//     touches a trial's RNG streams, so obs-on runs stay byte-identical
//     to bare ones (the CI identity test pins this).
//   - LogSink (log.go): log/slog text and JSON sinks behind the cmds'
//     -log/-log-json flags.
//   - FlightRecorder (recorder.go): a bounded ring of recent events that
//     dumps itself to disk when an anomaly event arrives — wrong verdict,
//     invariant violation, slot-budget overrun — so a failure deep in a
//     million-trial sweep is diagnosable without tracing everything.
//   - SLO (slo.go): declarative health rules (max polls/decision, max
//     virtual slots, min accuracy over a sliding window) evaluated live,
//     exposed with the metrics registry on the -metrics-addr endpoint
//     (/healthz, /slo, and an SSE stream at /events — http.go).
//
// Runtime attribution (runtime.go) rounds the plane out: pprof labels
// per experiment/phase and a runtime/metrics sampler folding heap, GC
// pause and goroutine gauges into the same registry the cost-model
// instruments live in.
package obs

import (
	"fmt"
	"log/slog"
)

// Kind classifies one observability event.
type Kind int

const (
	// KindSessionStart marks one query session beginning.
	KindSessionStart Kind = iota
	// KindPoll is one group poll's outcome; Outcome carries the response
	// kind and Bin the polled group size.
	KindPoll
	// KindSessionVerdict closes one session: Correct/Outcome grade the
	// decision (against the auditor's ground truth when available, the
	// configured truth otherwise) and Polls/Slots are its cost totals.
	KindSessionVerdict
	// KindFault is one injected fault (burst loss, churn, skew, decode
	// corruption), joined to its poll index.
	KindFault
	// KindRetryExhausted reports polls that used their whole retry budget
	// and still read silence.
	KindRetryExhausted
	// KindAnomaly flags a condition worth a flight-recorder dump: a wrong
	// verdict, an invariant violation, or an SLO budget overrun. Outcome
	// carries the anomaly reason slug.
	KindAnomaly
	// KindSLO marks an SLO rule transitioning between pass and fail.
	KindSLO
	// KindBench is one benchmark result line (cmd/tcastbench).
	KindBench
)

// NumKinds is the number of event kinds; Kind values are contiguous in
// [0, NumKinds) so they can index fixed-size per-kind arrays.
const NumKinds = 8

// Anomaly reason slugs carried in an anomaly event's Outcome field.
const (
	AnomalyWrongVerdict = "wrong_verdict"
	AnomalyInvariant    = "invariant_violation"
	AnomalySLO          = "slo_violation"
)

var kindNames = [NumKinds]string{
	"session_start", "poll", "session_verdict", "fault",
	"retry_exhausted", "anomaly", "slo", "bench",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Level maps an event kind to its log severity: per-poll and per-fault
// chatter is debug-level (visible with -log-level debug, always in the
// flight recorder and on /events), session verdicts are info, retry
// exhaustion and SLO transitions warn, and anomalies are errors.
func (k Kind) Level() slog.Level {
	switch k {
	case KindPoll, KindFault, KindSessionStart:
		return slog.LevelDebug
	case KindSessionVerdict, KindBench:
		return slog.LevelInfo
	case KindRetryExhausted, KindSLO:
		return slog.LevelWarn
	case KindAnomaly:
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Event is one structured observability record. It is a flat value —
// publishing one allocates nothing beyond what sinks retain — with the
// unused fields of each kind left at their zero (or -1 sentinel) values.
type Event struct {
	// Seq is the bus-assigned publication number, strictly increasing per
	// bus.
	Seq uint64
	// Kind classifies the event.
	Kind Kind
	// Session labels the session the event belongs to (algorithm,
	// parameters, trial index), empty for non-session events.
	Session string
	// Trial is the trial index within its batch, -1 when not applicable.
	Trial int
	// Poll is the 0-based poll index within the session, -1 when the
	// event is not tied to one poll.
	Poll int
	// Bin is the polled group size on poll events.
	Bin int
	// Outcome is the kind-specific discriminator: the response kind of a
	// poll, the audit outcome of a verdict, the reason slug of an anomaly,
	// the rule name of an SLO transition, the benchmark name of a bench
	// result.
	Outcome string
	// Detail is the human-readable elaboration (fault description,
	// anomaly cause, rule state).
	Detail string
	// Polls and Slots are the session cost totals on verdict events (and
	// the benchmark's ns/op and allocs/op on bench events).
	Polls int
	Slots int64
	// Correct reports whether a verdict matched ground truth.
	Correct bool
	// CausalPoll is the first unsound poll explaining a wrong verdict,
	// -1 when none was identified.
	CausalPoll int
}

// attrs renders the event's populated fields as slog attributes.
func (e Event) attrs() []slog.Attr {
	out := make([]slog.Attr, 0, 10)
	out = append(out, slog.Uint64("seq", e.Seq))
	if e.Session != "" {
		out = append(out, slog.String("session", e.Session))
	}
	if e.Trial >= 0 {
		out = append(out, slog.Int("trial", e.Trial))
	}
	if e.Poll >= 0 {
		out = append(out, slog.Int("poll", e.Poll))
	}
	if e.Bin > 0 {
		out = append(out, slog.Int("bin", e.Bin))
	}
	if e.Outcome != "" {
		out = append(out, slog.String("outcome", e.Outcome))
	}
	if e.Detail != "" {
		out = append(out, slog.String("detail", e.Detail))
	}
	switch e.Kind {
	case KindSessionVerdict:
		out = append(out,
			slog.Int("polls", e.Polls),
			slog.Int64("slots", e.Slots),
			slog.Bool("correct", e.Correct))
		if e.CausalPoll >= 0 {
			out = append(out, slog.Int("causal_poll", e.CausalPoll))
		}
	case KindAnomaly:
		if e.CausalPoll >= 0 {
			out = append(out, slog.Int("causal_poll", e.CausalPoll))
		}
	case KindRetryExhausted:
		out = append(out, slog.Int("polls", e.Polls))
	}
	return out
}
