package obs

import (
	"fmt"
	"strings"
	"sync"

	"tcast/internal/metrics"
	"tcast/internal/sketch"
)

// Metric names for the sketch sink's registry summaries and the SSE drop
// counter.
const (
	// MetricEventsDropped counts events dropped toward slow /events
	// clients — silent loss made visible, summed over all clients.
	MetricEventsDropped = "obs_events_dropped_total"
	// MetricSessionPolls / MetricSessionSlots are the sketch-backed
	// session-cost summaries (quantiles on /metrics dumps).
	MetricSessionPolls = "obs_session_polls"
	MetricSessionSlots = "obs_session_slots"
)

// sketchExemplars is the exemplar reservoir capacity: enough to name the
// heaviest sessions without the /slo payload growing with the run.
const sketchExemplars = 8

// SketchSink folds the live verdict stream into constant-memory
// summaries: mergeable quantile sketches of per-session poll and slot
// costs, exact moments, and a deterministic slot-weighted reservoir of
// exemplar sessions. Where the SLO engine answers "is the run healthy",
// the sketch sink answers "what does the cost distribution look like" —
// at any N, for any run length, in a few kilobytes.
//
// The sink consumes no randomness (reservoir priorities are hashes of
// the session identity), so enabling it cannot perturb a run.
type SketchSink struct {
	mu        sync.Mutex
	sessions  uint64
	polls     *sketch.Quantile
	slots     *sketch.Quantile
	pollsMom  sketch.Moments
	slotsMom  sketch.Moments
	exemplars *sketch.Reservoir

	// Optional registry mirrors: the same observations surfaced as
	// summary metrics on /metrics text/Prometheus dumps.
	mPolls, mSlots *metrics.Summary
}

// NewSketchSink returns an empty sink; reg, when non-nil, additionally
// receives the obs_session_polls/obs_session_slots summaries.
func NewSketchSink(reg *metrics.Registry) *SketchSink {
	s := &SketchSink{
		polls:     sketch.NewQuantile(sketch.DefaultAlpha),
		slots:     sketch.NewQuantile(sketch.DefaultAlpha),
		exemplars: sketch.NewReservoir(sketchExemplars),
	}
	if reg != nil {
		s.mPolls = reg.Summary(MetricSessionPolls)
		s.mSlots = reg.Summary(MetricSessionSlots)
	}
	return s
}

// OnEvent implements Sink: only session verdicts are summarized.
func (s *SketchSink) OnEvent(e Event) {
	if e.Kind != KindSessionVerdict {
		return
	}
	polls := float64(e.Polls)
	slots := float64(e.Slots)
	s.mu.Lock()
	s.sessions++
	s.polls.Observe(polls)
	s.slots.Observe(slots)
	s.pollsMom.Observe(polls)
	s.slotsMom.Observe(slots)
	key := sketch.HashString(e.Session)
	if e.Trial >= 0 {
		key = sketch.Hash64(key ^ uint64(e.Trial))
	}
	s.exemplars.Offer(sketch.Exemplar{
		Key:    key,
		Weight: slots + 1, // +1 keeps zero-slot sessions sampleable
		Value:  slots,
		Label:  e.Session,
	})
	s.mu.Unlock()
	if s.mPolls != nil {
		s.mPolls.Observe(polls)
		s.mSlots.Observe(slots)
	}
}

// QuantileReport is one cost dimension's summary in a SketchReport.
type QuantileReport struct {
	Min float64 `json:"min"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
	Sum float64 `json:"sum"`
}

// ExemplarReport is one retained exemplar session in a SketchReport.
type ExemplarReport struct {
	Session string  `json:"session"`
	Slots   float64 `json:"slots"`
}

// SketchReport is the sink's snapshot on the /slo payload.
type SketchReport struct {
	Sessions  uint64           `json:"sessions"`
	Polls     QuantileReport   `json:"polls"`
	Slots     QuantileReport   `json:"slots"`
	Exemplars []ExemplarReport `json:"exemplars,omitempty"`
}

func quantileReport(q *sketch.Quantile, mom sketch.Moments) QuantileReport {
	if q.Count() == 0 {
		return QuantileReport{}
	}
	vs := q.Values(0.5, 0.9, 0.99)
	return QuantileReport{
		Min: mom.Min, P50: vs[0], P90: vs[1], P99: vs[2], Max: mom.Max, Sum: mom.Sum,
	}
}

// Snapshot captures the sink's current summaries.
func (s *SketchSink) Snapshot() SketchReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := SketchReport{
		Sessions: s.sessions,
		Polls:    quantileReport(s.polls, s.pollsMom),
		Slots:    quantileReport(s.slots, s.slotsMom),
	}
	for _, ex := range s.exemplars.Exemplars() {
		rep.Exemplars = append(rep.Exemplars, ExemplarReport{Session: ex.Label, Slots: ex.Value})
	}
	return rep
}

// Summary renders the snapshot for the plane's exit report.
func (s *SketchSink) Summary() string {
	rep := s.Snapshot()
	if rep.Sessions == 0 {
		return "sketch: no sessions observed\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sketch: %d sessions; polls p50=%.3g p90=%.3g p99=%.3g max=%.3g; slots p50=%.3g p90=%.3g p99=%.3g max=%.3g\n",
		rep.Sessions,
		rep.Polls.P50, rep.Polls.P90, rep.Polls.P99, rep.Polls.Max,
		rep.Slots.P50, rep.Slots.P90, rep.Slots.P99, rep.Slots.Max)
	for _, ex := range rep.Exemplars {
		fmt.Fprintf(&b, "  exemplar %s slots=%g\n", ex.Session, ex.Slots)
	}
	return b.String()
}
