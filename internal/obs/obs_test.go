package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tcast/internal/audit"
	"tcast/internal/metrics"
	"tcast/internal/query"
)

// collect is a test sink accumulating every event it sees.
type collect struct {
	mu     sync.Mutex
	events []Event
}

func (c *collect) OnEvent(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collect) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	// No subscribers: no sequence numbers claimed.
	b.Publish(Event{Kind: KindPoll})
	if got := b.Seq(); got != 0 {
		t.Fatalf("seq with no sinks = %d, want 0", got)
	}
	var c collect
	b.Subscribe(&c)
	b.Publish(Event{Kind: KindPoll, Poll: 3})
	b.Publish(Event{Kind: KindSessionVerdict})
	got := c.all()
	if len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers %d,%d, want 1,2", got[0].Seq, got[1].Seq)
	}
	b.Unsubscribe(&c)
	b.Publish(Event{Kind: KindPoll})
	if len(c.all()) != 2 {
		t.Fatal("unsubscribed sink still receiving")
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Publish(Event{Kind: KindPoll}) // must not panic
	b.Subscribe(SinkFunc(func(Event) {}))
	b.Unsubscribe(nil)
	if b.Seq() != 0 {
		t.Fatal("nil bus claims sequence numbers")
	}
	PublishSessionStart(nil, "s", 0)
	PublishDecision(nil, "s", 0, true, true, 1, 1)
	PublishChainEvents(nil, "s", 0, nil)
	PublishVerdict(nil, "s", 0, audit.Verdict{}, 0, nil)
}

func TestBusReentrantPublish(t *testing.T) {
	b := NewBus()
	var c collect
	b.Subscribe(SinkFunc(func(e Event) {
		if e.Kind == KindSessionVerdict {
			// A sink publishing back onto the same bus (the SLO engine's
			// transition pattern) must not deadlock.
			b.Publish(Event{Kind: KindSLO})
		}
	}))
	b.Subscribe(&c)
	b.Publish(Event{Kind: KindSessionVerdict})
	kinds := map[Kind]int{}
	for _, e := range c.all() {
		kinds[e.Kind]++
	}
	if kinds[KindSessionVerdict] != 1 || kinds[KindSLO] != 1 {
		t.Fatalf("re-entrant publish delivered %v", kinds)
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	var c collect
	b.Subscribe(&c)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Kind: KindPoll, Poll: i})
			}
		}()
	}
	wg.Wait()
	if got := len(c.all()); got != workers*per {
		t.Fatalf("delivered %d events, want %d", got, workers*per)
	}
	if b.Seq() != workers*per {
		t.Fatalf("seq = %d, want %d", b.Seq(), workers*per)
	}
}

func TestEncodeEventPreservesSentinels(t *testing.T) {
	line, err := EncodeEvent(Event{Kind: KindAnomaly, Trial: -1, Poll: -1, CausalPoll: -1, Outcome: AnomalyWrongVerdict})
	if err != nil {
		t.Fatal(err)
	}
	var w map[string]any
	if err := json.Unmarshal(line, &w); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"trial", "poll", "causal_poll"} {
		if w[k].(float64) != -1 {
			t.Fatalf("%s = %v, want -1", k, w[k])
		}
	}
	if w["kind"] != "anomaly" {
		t.Fatalf("kind = %v", w["kind"])
	}
}

func TestLogSinkLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	s := NewLogSink(&buf, false, slog.LevelInfo)
	s.OnEvent(Event{Kind: KindPoll, Poll: 0, Trial: -1, CausalPoll: -1}) // debug: filtered
	s.OnEvent(Event{Kind: KindSessionVerdict, Session: "sess", Trial: 2, Poll: -1, Outcome: "correct", Correct: true, Polls: 7, Slots: 21, CausalPoll: -1})
	out := buf.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly the verdict line, got:\n%s", out)
	}
	for _, want := range []string{"session_verdict", "session=sess", "polls=7", "slots=21", "correct=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text log missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	j := NewLogSink(&buf, true, slog.LevelDebug)
	j.OnEvent(Event{Kind: KindPoll, Session: "sess", Trial: 0, Poll: 4, Bin: 8, Outcome: "empty", CausalPoll: -1})
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "poll" || rec["bin"].(float64) != 8 || rec["outcome"] != "empty" {
		t.Fatalf("json log fields: %v", rec)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, ok := ParseLevel(in)
		if !ok || got != want {
			t.Fatalf("ParseLevel(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Fatal("unknown level accepted")
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(4, dir)
	for i := 0; i < 6; i++ {
		f.OnEvent(Event{Kind: KindPoll, Seq: uint64(i + 1), Poll: i, Trial: -1, CausalPoll: -1})
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	if snap[0].Poll != 2 || snap[3].Poll != 5 {
		t.Fatalf("ring order wrong: %v .. %v", snap[0].Poll, snap[3].Poll)
	}
	f.OnEvent(Event{Kind: KindAnomaly, Seq: 7, Outcome: AnomalyWrongVerdict, Trial: -1, Poll: -1, CausalPoll: 3})
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %v, want one", dumps)
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("dump has %d lines, want header + 4 events", len(lines))
	}
	var header struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
		Trigger string `json:"trigger"`
		Events  int    `json:"events"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Schema != FlightSchema || header.Version != FlightVersion ||
		header.Trigger != AnomalyWrongVerdict || header.Events != 4 {
		t.Fatalf("header = %+v", header)
	}
	// The triggering anomaly is the last ringed event.
	var last wireEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "anomaly" || last.CausalPoll != 3 {
		t.Fatalf("last dump line = %+v, want the anomaly with its causal poll", last)
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderDumpCap(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, dir)
	for i := 0; i < DefaultMaxDumps+5; i++ {
		f.OnEvent(Event{Kind: KindAnomaly, Outcome: AnomalySLO, Trial: -1, Poll: -1, CausalPoll: -1})
	}
	if got := len(f.Dumps()); got != DefaultMaxDumps {
		t.Fatalf("wrote %d dumps, want cap %d", got, DefaultMaxDumps)
	}
	// Recording continues past the cap.
	if len(f.Snapshot()) != 8 {
		t.Fatal("ring stopped recording after dump cap")
	}
}

func TestFlightRecorderDumpError(t *testing.T) {
	// Dump directory path collides with an existing file: every dump fails
	// but recording keeps going and Err surfaces the first failure.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFlightRecorder(4, blocked)
	f.OnEvent(Event{Kind: KindAnomaly, Trial: -1, Poll: -1, CausalPoll: -1})
	if f.Err() == nil {
		t.Fatal("dump into a file path reported no error")
	}
	if len(f.Dumps()) != 0 {
		t.Fatal("failed dump still listed")
	}
}

func TestParseRules(t *testing.T) {
	rules, window, err := ParseRules("maxpolls=96,maxslots=288,minacc=0.99,window=500")
	if err != nil {
		t.Fatal(err)
	}
	if window != 500 || len(rules) != 3 {
		t.Fatalf("window=%d rules=%d", window, len(rules))
	}
	if rules[0].Name != "max_polls" || rules[0].Threshold != 96 || rules[0].Budget != 0 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[2].Name != "min_accuracy" || math.Abs(rules[2].Budget-0.01) > 1e-9 {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	if _, _, err := ParseRules("maxpolls=96@0.01"); err != nil {
		t.Fatalf("budget suffix rejected: %v", err)
	}
	for _, bad := range []string{
		"", "bogus=1", "maxpolls", "maxpolls=0", "maxpolls=96@2",
		"minacc=0", "minacc=1.5", "minacc=0.9@0.1", "window=0", "window=10",
	} {
		if _, _, err := ParseRules(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestSLOWindowAndTransitions(t *testing.T) {
	rules, window, err := ParseRules("minacc=0.5,window=4")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBus()
	var c collect
	b.Subscribe(&c)
	s := NewSLO(rules, window, b)
	b.Subscribe(s)

	verdict := func(ok bool) {
		b.Publish(Event{Kind: KindSessionVerdict, Trial: -1, Poll: -1, Correct: ok, CausalPoll: -1})
	}
	verdict(true)
	verdict(false)
	if !s.Healthy() {
		t.Fatal("1/2 wrong within a 0.5 budget should pass")
	}
	verdict(false)
	if s.Healthy() {
		t.Fatal("2/3 wrong over a 0.5 budget should fail")
	}
	// The pass→fail transition publishes a KindSLO event and an anomaly.
	var slos, anomalies int
	for _, e := range c.all() {
		switch e.Kind {
		case KindSLO:
			slos++
		case KindAnomaly:
			if e.Outcome != AnomalySLO {
				t.Fatalf("anomaly outcome %q", e.Outcome)
			}
			anomalies++
		}
	}
	if slos != 1 || anomalies != 1 {
		t.Fatalf("transition published %d slo + %d anomaly events, want 1+1", slos, anomalies)
	}
	// Recovery: correct verdicts push the wrong ones out of the window.
	verdict(true)
	verdict(true)
	verdict(true) // window now holds f,t,t,t -> 1/4 violating
	if !s.Healthy() {
		t.Fatalf("window should have recovered: %+v", s.Report())
	}
	rep := s.Report()
	if rep.Verdicts != 6 || len(rep.Rules) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	r := rep.Rules[0]
	if r.TotalViolations != 2 || r.Violations != 1 || r.Seen != 4 {
		t.Fatalf("rule report = %+v", r)
	}
}

func TestSLOBurnRate(t *testing.T) {
	rules, _, err := ParseRules("maxpolls=10@0.5")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSLO(rules, 4, nil)
	s.OnEvent(Event{Kind: KindSessionVerdict, Polls: 20})
	s.OnEvent(Event{Kind: KindSessionVerdict, Polls: 5})
	r := s.Report().Rules[0]
	if r.ViolatingFrac != 0.5 || r.BurnRate != 1.0 {
		t.Fatalf("burn accounting: %+v", r)
	}
	// Zero-budget rule: violating means infinite burn, reported as -1.
	zr, _, _ := ParseRules("maxpolls=10")
	z := NewSLO(zr, 4, nil)
	z.OnEvent(Event{Kind: KindSessionVerdict, Polls: 20})
	if got := z.Report().Rules[0].BurnRate; got != -1 {
		t.Fatalf("zero-budget burn = %v, want -1", got)
	}
}

func TestPublisherStreamsPolls(t *testing.T) {
	b := NewBus()
	var c collect
	b.Subscribe(&c)
	q := NewPublisher(stubQuerier{}, b, "sess", 3)
	q.Query([]int{1, 2, 3})
	q.Query([]int{4})
	events := c.all()
	if len(events) != 2 {
		t.Fatalf("published %d events, want 2", len(events))
	}
	if events[0].Kind != KindPoll || events[0].Poll != 0 || events[0].Bin != 3 ||
		events[0].Session != "sess" || events[0].Trial != 3 || events[0].Outcome != "empty" {
		t.Fatalf("first poll event = %+v", events[0])
	}
	if events[1].Poll != 1 || events[1].Bin != 1 {
		t.Fatalf("second poll event = %+v", events[1])
	}
	if query.Root(q) == nil {
		t.Fatal("publisher breaks the chain walk")
	}
}

// stubQuerier answers Empty to everything.
type stubQuerier struct{}

func (stubQuerier) Query([]int) query.Response { return query.Response{Kind: query.Empty} }
func (stubQuerier) Traits() query.Traits       { return query.Traits{} }

func TestPublishChainEventsRetryExhaustion(t *testing.T) {
	b := NewBus()
	var c collect
	b.Subscribe(&c)
	rq := query.WithRetry(stubQuerier{}, query.RetryPolicy{MaxRetries: 2, Backoff: 1})
	rq.Query([]int{1}) // all attempts silent -> exhausted
	PublishChainEvents(b, "sess", 0, rq)
	var found bool
	for _, e := range c.all() {
		if e.Kind == KindRetryExhausted {
			found = true
			if e.Polls != 1 {
				t.Fatalf("exhausted polls = %d, want 1", e.Polls)
			}
		}
	}
	if !found {
		t.Fatal("no retry_exhausted event published")
	}
}

func TestPublishVerdictAnomalies(t *testing.T) {
	b := NewBus()
	var c collect
	b.Subscribe(&c)
	v := audit.Verdict{
		Decision: false, Truth: true, TrueX: 8,
		Outcome: audit.OutcomeWrongLoss, CausalPoll: 5, CausalClass: audit.ClassFalseNegative,
		Polls: 12,
		Violations: []audit.Violation{
			{Poll: 2, Invariant: audit.InvariantBinSubset, Detail: "bound broken"},
		},
	}
	PublishVerdict(b, "sess", 1, v, 36, nil)
	var verdicts, wrong, invariant int
	for _, e := range c.all() {
		switch {
		case e.Kind == KindSessionVerdict:
			verdicts++
			if e.Correct || e.Polls != 12 || e.Slots != 36 || e.CausalPoll != 5 {
				t.Fatalf("verdict event = %+v", e)
			}
		case e.Kind == KindAnomaly && e.Outcome == AnomalyWrongVerdict:
			wrong++
			if e.CausalPoll != 5 || !strings.Contains(e.Detail, "causal poll 5") {
				t.Fatalf("wrong-verdict anomaly = %+v", e)
			}
		case e.Kind == KindAnomaly && e.Outcome == AnomalyInvariant:
			invariant++
			if e.Poll != 2 {
				t.Fatalf("invariant anomaly = %+v", e)
			}
		}
	}
	if verdicts != 1 || wrong != 1 || invariant != 1 {
		t.Fatalf("published %d verdicts, %d wrong, %d invariant", verdicts, wrong, invariant)
	}
}

func TestPublishDecisionGrades(t *testing.T) {
	b := NewBus()
	var c collect
	b.Subscribe(&c)
	PublishDecision(b, "ok", 0, true, true, 3, 9)
	PublishDecision(b, "bad", 1, false, true, 4, 12)
	var correct, anomalies int
	for _, e := range c.all() {
		if e.Kind == KindSessionVerdict && e.Correct {
			correct++
		}
		if e.Kind == KindAnomaly {
			anomalies++
			if e.Session != "bad" {
				t.Fatalf("anomaly on session %q", e.Session)
			}
		}
	}
	if correct != 1 || anomalies != 1 {
		t.Fatalf("correct=%d anomalies=%d", correct, anomalies)
	}
}

func TestConfigBuild(t *testing.T) {
	var c Config
	if p, err := c.Build(nil, nil, false); err != nil || p != nil {
		t.Fatalf("disabled config built %v, %v", p, err)
	}
	if p, err := c.Build(nil, nil, true); err != nil || p == nil || p.Bus() == nil {
		t.Fatalf("forced build = %v, %v", p, err)
	}
	c = Config{Log: true, LogLevel: "loud"}
	if _, err := c.Build(&bytes.Buffer{}, nil, false); err == nil {
		t.Fatal("bad log level accepted")
	}
	c = Config{SLOSpec: "bogus"}
	if _, err := c.Build(nil, nil, false); err == nil {
		t.Fatal("bad slo spec accepted")
	}

	dir := t.TempDir()
	reg := metrics.New()
	c = Config{LogJSON: true, FlightDir: dir, SLOSpec: "minacc=0.5,window=4"}
	var buf bytes.Buffer
	p, err := c.Build(&buf, reg, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Recorder() == nil || p.SLO() == nil || p.Bus() == nil {
		t.Fatal("plane missing configured pieces")
	}
	p.Bus().Publish(Event{Kind: KindSessionVerdict, Trial: -1, Poll: -1, Correct: false, CausalPoll: -1})
	p.Bus().Publish(Event{Kind: KindSessionVerdict, Trial: -1, Poll: -1, Correct: false, CausalPoll: -1})
	if p.SLO().Healthy() {
		t.Fatal("slo should be failing")
	}
	if !p.Unhealthy() {
		t.Fatal("plane should report unhealthy")
	}
	// The registry sink counted the published events per kind.
	var counted int64
	for _, pt := range reg.Snapshot().Counters {
		if strings.HasPrefix(pt.Name, MetricEvents) && strings.Contains(pt.Name, "session_verdict") {
			counted = int64(pt.Value)
		}
	}
	if counted != 2 {
		t.Fatalf("registry counted %d verdict events, want 2", counted)
	}
	// The SLO failure raised an anomaly, which the recorder dumped.
	if len(p.Recorder().Dumps()) == 0 {
		t.Fatal("no flight dump after slo anomaly")
	}
	if s := p.Summary(); !strings.Contains(s, "flight recorder") || !strings.Contains(s, "min_accuracy") {
		t.Fatalf("summary missing sections:\n%s", s)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// JSON log sink wrote records.
	if !strings.Contains(buf.String(), "session_verdict") {
		t.Fatal("log sink silent")
	}

	var nilPlane *Plane
	if nilPlane.Bus() != nil || nilPlane.Summary() != "" || nilPlane.Close() != nil || nilPlane.Unhealthy() {
		t.Fatal("nil plane not inert")
	}
}

func TestRuntimeSampling(t *testing.T) {
	reg := metrics.New()
	SampleRuntime(reg)
	want := map[string]bool{
		MetricGoroutines: false, MetricHeapBytes: false,
		MetricHeapObjects: false, MetricGCCycles: false, MetricGCPause: false,
	}
	snap := reg.Snapshot()
	for _, pt := range append(snap.Counters, snap.Gauges...) {
		if _, ok := want[pt.Name]; ok {
			want[pt.Name] = true
			if pt.Name == MetricGoroutines && pt.Value < 1 {
				t.Fatalf("goroutines = %v", pt.Value)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("sampler missed %s", name)
		}
	}
	SampleRuntime(nil) // no-op

	stop := StartRuntimeSampler(reg, 0)
	stop()
	stop() // idempotent
	if noop := StartRuntimeSampler(nil, 0); noop == nil {
		t.Fatal("nil registry sampler")
	}
}

func TestWithPhase(t *testing.T) {
	ran := false
	WithPhase("test-phase", func() { ran = true })
	if !ran {
		t.Fatal("phase body not run")
	}
}
