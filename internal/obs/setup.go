package obs

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"tcast/internal/metrics"
)

// MetricEvents counts published events in the registry, partitioned by a
// kind="..." label — the obs plane's own meta-observability.
const MetricEvents = "obs_events_total"

// Config is the obs plane's shared flag surface; every cmd registers the
// same set so the plane reads identically across tools.
type Config struct {
	// Log / LogJSON enable the slog text / JSON sink on stderr; LogLevel
	// filters it (debug shows per-poll and per-fault chatter).
	Log      bool
	LogJSON  bool
	LogLevel string
	// FlightDir enables the flight recorder, dumping FLIGHT_<n>.jsonl
	// anomaly exhibits into the directory; FlightSize is the ring
	// capacity.
	FlightDir  string
	FlightSize int
	// SLOSpec declares the health rules (see ParseRules), e.g.
	// "maxpolls=96,maxslots=288,minacc=0.99,window=1000".
	SLOSpec string
	// Sketch enables the sketch sink: constant-memory quantile summaries
	// of per-session poll/slot costs plus exemplar sessions, published on
	// /slo and as obs_session_* summary metrics.
	Sketch bool
}

// RegisterFlags registers the plane's flags on fs (the cmds pass
// flag.CommandLine).
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Log, "log", false, "stream structured events (session verdicts, anomalies; polls at -log-level debug) to stderr as text")
	fs.BoolVar(&c.LogJSON, "log-json", false, "like -log but one JSON object per line")
	fs.StringVar(&c.LogLevel, "log-level", "info", "minimum event level for -log/-log-json: debug | info | warn | error")
	fs.StringVar(&c.FlightDir, "flight", "", "enable the flight recorder: dump FLIGHT_<n>.jsonl of recent events into this directory on every anomaly")
	fs.IntVar(&c.FlightSize, "flight-size", DefaultFlightSize, "flight-recorder ring capacity (events)")
	fs.StringVar(&c.SLOSpec, "slo", "", "SLO health rules evaluated on the live verdict stream, e.g. maxpolls=96,maxslots=288,minacc=0.99,window=1000")
	fs.BoolVar(&c.Sketch, "sketch", false, "summarize per-session poll/slot costs as constant-memory quantile sketches (on /slo, /metrics and the exit report)")
}

// Enabled reports whether any part of the plane was requested. Serving
// cmds should OR this with their -metrics-addr flag: the /events and
// /slo endpoints need a bus even when no local sink is on.
func (c Config) Enabled() bool {
	return c.Log || c.LogJSON || c.FlightDir != "" || c.SLOSpec != "" || c.Sketch
}

// Plane is one cmd's assembled observability plane. Nil is a valid
// disabled plane: every method no-ops and Bus() returns nil.
type Plane struct {
	bus      *Bus
	recorder *FlightRecorder
	slo      *SLO
	sketch   *SketchSink
	dropped  *metrics.Counter
}

// Build assembles the plane from the parsed flags: the bus, the
// configured sinks (log on w, flight recorder, SLO engine), and — when
// reg is non-nil — a sink folding per-kind event counts into the
// registry. A fully-disabled config returns (nil, nil) unless force is
// set (a cmd serving /events needs the bus regardless).
func (c Config) Build(w io.Writer, reg *metrics.Registry, force bool) (*Plane, error) {
	if !c.Enabled() && !force {
		return nil, nil
	}
	p := &Plane{bus: NewBus()}
	if c.Log || c.LogJSON {
		min, ok := ParseLevel(c.LogLevel)
		if !ok {
			return nil, fmt.Errorf("obs: unknown -log-level %q (want debug|info|warn|error)", c.LogLevel)
		}
		p.bus.Subscribe(NewLogSink(w, c.LogJSON, min))
	}
	if c.FlightDir != "" {
		p.recorder = NewFlightRecorder(c.FlightSize, c.FlightDir)
		p.bus.Subscribe(p.recorder)
	}
	if c.SLOSpec != "" {
		rules, window, err := ParseRules(c.SLOSpec)
		if err != nil {
			return nil, err
		}
		p.slo = NewSLO(rules, window, p.bus)
		p.bus.Subscribe(p.slo)
	}
	if c.Sketch {
		p.sketch = NewSketchSink(reg)
		p.bus.Subscribe(p.sketch)
	}
	if reg != nil {
		p.dropped = reg.Counter(MetricEventsDropped)
	} else {
		p.dropped = &metrics.Counter{}
	}
	if reg != nil {
		counters := countersFor(reg)
		p.bus.Subscribe(SinkFunc(func(e Event) {
			if e.Kind >= 0 && int(e.Kind) < NumKinds {
				counters[e.Kind].Inc()
			}
		}))
	}
	return p, nil
}

// countersFor resolves the per-kind event counters up front, so the sink
// path is a single atomic increment and the partition's zero-valued
// series still appear in dumps.
func countersFor(reg *metrics.Registry) [NumKinds]*metrics.Counter {
	var out [NumKinds]*metrics.Counter
	for k := Kind(0); int(k) < NumKinds; k++ {
		out[k] = reg.Counter(MetricEvents, "kind", k.String())
	}
	return out
}

// Bus returns the plane's bus; nil on a nil plane, which every publish
// helper accepts.
func (p *Plane) Bus() *Bus {
	if p == nil {
		return nil
	}
	return p.bus
}

// SLO returns the health engine, nil when no rules were declared.
func (p *Plane) SLO() *SLO {
	if p == nil {
		return nil
	}
	return p.slo
}

// Recorder returns the flight recorder, nil when disabled.
func (p *Plane) Recorder() *FlightRecorder {
	if p == nil {
		return nil
	}
	return p.recorder
}

// Sketches returns the sketch sink, nil when disabled.
func (p *Plane) Sketches() *SketchSink {
	if p == nil {
		return nil
	}
	return p.sketch
}

// EventsDropped returns the SSE drop counter, nil on a nil plane. Every
// event a slow /events client misses increments it.
func (p *Plane) EventsDropped() *metrics.Counter {
	if p == nil {
		return nil
	}
	return p.dropped
}

// Summary renders the plane's exit report: flight dumps written and SLO
// rule states. Empty when there is nothing to say.
func (p *Plane) Summary() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	if p.recorder != nil {
		if dumps := p.recorder.Dumps(); len(dumps) > 0 {
			fmt.Fprintf(&b, "flight recorder: %d anomaly dump(s)\n", len(dumps))
			for _, d := range dumps {
				fmt.Fprintf(&b, "  %s\n", d)
			}
		}
	}
	if p.sketch != nil {
		b.WriteString(p.sketch.Summary())
	}
	if p.slo != nil {
		rep := p.slo.Report()
		state := "PASS"
		if !rep.Healthy {
			state = "FAIL"
		}
		fmt.Fprintf(&b, "slo: %s over %d verdicts\n", state, rep.Verdicts)
		for _, r := range rep.Rules {
			mark := "pass"
			if !r.Healthy {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  %-14s threshold=%.4g budget=%.4g violations=%d/%d (lifetime %d) burn=%.3g  %s\n",
				r.Rule, r.Threshold, r.Budget, r.Violations, r.Seen, r.TotalViolations, r.BurnRate, mark)
		}
	}
	return b.String()
}

// Close finalizes the plane and returns its first deferred failure (a
// flight dump that could not be written). Event publishing stays safe
// after Close; there is nothing to tear down on the bus.
func (p *Plane) Close() error {
	if p == nil || p.recorder == nil {
		return nil
	}
	return p.recorder.Err()
}

// Unhealthy reports whether any SLO rule is currently failing — the
// cmds' exit-status hook.
func (p *Plane) Unhealthy() bool {
	return p != nil && p.slo != nil && !p.slo.Healthy()
}
