package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcast/internal/metrics"
)

// failingSLO returns an engine with a blown min-accuracy rule.
func failingSLO(t *testing.T) *SLO {
	t.Helper()
	rules, window, err := ParseRules("minacc=0.5,window=4")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSLO(rules, window, nil)
	s.OnEvent(Event{Kind: KindSessionVerdict, Correct: false})
	s.OnEvent(Event{Kind: KindSessionVerdict, Correct: false})
	if s.Healthy() {
		t.Fatal("fixture engine should be failing")
	}
	return s
}

func TestHealthzHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("no-engine probe: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	HealthzHandler(failingSLO(t)).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing probe status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, "failing\n") || !strings.Contains(body, "min_accuracy") {
		t.Fatalf("failing probe body = %q", body)
	}
}

func TestSLOHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	SLOHandler(nil, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy || len(rep.Rules) != 0 {
		t.Fatalf("no-engine report = %+v", rep)
	}

	rec = httptest.NewRecorder()
	SLOHandler(failingSLO(t), nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	rep = Report{}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || len(rep.Rules) != 1 || rep.Rules[0].Rule != "min_accuracy" {
		t.Fatalf("failing report = %+v", rep)
	}
	if rep.Rules[0].Violations != 2 || rep.Rules[0].Seen != 2 {
		t.Fatalf("failing rule counts = %+v", rep.Rules[0])
	}
}

func TestEventsHandlerSSE(t *testing.T) {
	bus := NewBus()
	srv := httptest.NewServer(EventsHandler(bus, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The subscription registers when the handler goroutine runs; keep
	// publishing until the stream delivers a record.
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				bus.Publish(Event{Kind: KindSessionVerdict, Session: "sse", Trial: 1, Poll: -1, Correct: true, CausalPoll: -1})
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	type lineResult struct {
		event string
		data  string
		err   error
	}
	lines := make(chan lineResult, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				lines <- lineResult{event, strings.TrimPrefix(line, "data: "), nil}
				return
			}
		}
		lines <- lineResult{err: sc.Err()}
	}()

	select {
	case got := <-lines:
		if got.err != nil {
			t.Fatal(got.err)
		}
		if got.event != "session_verdict" {
			t.Fatalf("sse event type %q", got.event)
		}
		var w wireEvent
		if err := json.Unmarshal([]byte(got.data), &w); err != nil {
			t.Fatalf("sse data %q: %v", got.data, err)
		}
		if w.Kind != "session_verdict" || w.Session != "sse" || !w.Correct {
			t.Fatalf("sse payload = %+v", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE record within 5s")
	}
}

func TestNewMuxRoutes(t *testing.T) {
	reg := metrics.New()
	reg.Counter("polls_total", "kind", "empty").Add(3)
	mux := NewMux(reg, &Plane{bus: NewBus(), slo: failingSLO(t), dropped: reg.Counter(MetricEventsDropped)})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `polls_total{kind="empty"} 3`) ||
		!strings.Contains(rec.Body.String(), "# TYPE polls_total counter") {
		t.Fatalf("/metrics: %d\n%s", rec.Code, rec.Body.String())
	}
	if rec := get("/metrics/text"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `polls_total{kind="empty"} 3`) {
		t.Fatalf("/metrics/text: %d\n%s", rec.Code, rec.Body.String())
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz: %d", rec.Code)
	}
	if rec := get("/slo"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "min_accuracy") {
		t.Fatalf("/slo: %d\n%s", rec.Code, rec.Body.String())
	}
}

// TestEventsTickerKeepAlive verifies an idle stream emits `: keep-alive`
// comments on the ticker, so buffering proxies don't reap quiet
// subscriptions.
func TestEventsTickerKeepAlive(t *testing.T) {
	bus := NewBus()
	srv := httptest.NewServer(eventsHandler(bus, nil, 10*time.Millisecond))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	got := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				got <- line
				return
			}
		}
	}()
	select {
	case line := <-got:
		if line != ": keep-alive" {
			t.Fatalf("first idle line = %q, want keep-alive comment", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no keep-alive on an idle stream")
	}
}

// TestEventsTickerGapReport verifies a client that fell behind on a bus
// that then went quiet still learns it lost events: the gap record is
// pushed on the ticker, not only after the next delivery.
func TestEventsTickerGapReport(t *testing.T) {
	bus := NewBus()
	sink := &sseSink{ch: make(chan Event, sseBuffer)}
	// The backlog overflowed before the stream started and the bus is now
	// quiet — the pre-ticker handler would never report these drops.
	sink.dropped.Store(7)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		streamSSE(w, r, bus, sink, 10*time.Millisecond)
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type record struct{ event, data string }
	got := make(chan record, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var event string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				got <- record{event, strings.TrimPrefix(line, "data: ")}
				return
			}
		}
	}()
	select {
	case rec := <-got:
		if rec.event != "dropped" || rec.data != `{"dropped":7}` {
			t.Fatalf("gap record = %+v", rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no gap report on a quiet bus")
	}
}
