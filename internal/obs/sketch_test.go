package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcast/internal/metrics"
)

// verdict builds a session-verdict event with the given costs.
func verdict(session string, trial, polls int, slots int64) Event {
	return Event{
		Kind: KindSessionVerdict, Session: session, Trial: trial,
		Poll: -1, Polls: polls, Slots: slots, Correct: true, CausalPoll: -1,
	}
}

func TestSketchSinkSnapshot(t *testing.T) {
	reg := metrics.New()
	s := NewSketchSink(reg)
	for i := 0; i < 100; i++ {
		s.OnEvent(verdict("2tbins", i, 10+i%3, int64(20+i%5)))
	}
	// Non-verdict events must be ignored.
	s.OnEvent(Event{Kind: KindPoll, Polls: 9999, Slots: 9999})

	rep := s.Snapshot()
	if rep.Sessions != 100 {
		t.Fatalf("sessions = %d, want 100", rep.Sessions)
	}
	if rep.Polls.Min != 10 || rep.Polls.Max != 12 {
		t.Errorf("polls min/max = %g/%g, want 10/12", rep.Polls.Min, rep.Polls.Max)
	}
	if rep.Slots.Min != 20 || rep.Slots.Max != 24 {
		t.Errorf("slots min/max = %g/%g, want 20/24", rep.Slots.Min, rep.Slots.Max)
	}
	if rep.Polls.P50 < 10*0.98 || rep.Polls.P50 > 12*1.02 {
		t.Errorf("polls p50 = %g out of range", rep.Polls.P50)
	}
	if len(rep.Exemplars) == 0 || len(rep.Exemplars) > sketchExemplars {
		t.Fatalf("exemplars = %d, want 1..%d", len(rep.Exemplars), sketchExemplars)
	}
	for _, ex := range rep.Exemplars {
		if ex.Session != "2tbins" {
			t.Errorf("exemplar session %q", ex.Session)
		}
	}

	// Registry mirrors see the same observations.
	snap := reg.Snapshot()
	found := 0
	for _, sm := range snap.Summaries {
		if sm.Name == MetricSessionPolls || sm.Name == MetricSessionSlots {
			found++
			if sm.Count != 100 {
				t.Errorf("%s count = %d, want 100", sm.Name, sm.Count)
			}
		}
	}
	if found != 2 {
		t.Fatalf("registry summaries found = %d, want 2", found)
	}
}

// TestSketchSinkDeterministic: two sinks fed the same stream snapshot
// identically, including exemplar selection.
func TestSketchSinkDeterministic(t *testing.T) {
	feed := func() SketchReport {
		s := NewSketchSink(nil)
		for i := 0; i < 500; i++ {
			s.OnEvent(verdict("q", i, i%17, int64(i%29)))
		}
		return s.Snapshot()
	}
	a, _ := json.Marshal(feed())
	b, _ := json.Marshal(feed())
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}

// TestSLOHandlerIncludesSketchesAndDrops: the /slo payload carries the
// sketch snapshot and the dropped-event total.
func TestSLOHandlerIncludesSketchesAndDrops(t *testing.T) {
	reg := metrics.New()
	sink := NewSketchSink(nil)
	sink.OnEvent(verdict("2tbins", 0, 12, 36))
	dropped := reg.Counter(MetricEventsDropped)
	dropped.Add(7)

	rec := httptest.NewRecorder()
	SLOHandler(nil, sink, dropped).ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.EventsDropped != 7 {
		t.Errorf("events_dropped = %d, want 7", rep.EventsDropped)
	}
	if rep.Sketches == nil || rep.Sketches.Sessions != 1 {
		t.Fatalf("sketches = %+v", rep.Sketches)
	}
	if rep.Sketches.Slots.Max != 36 {
		t.Errorf("sketch slots max = %g, want 36", rep.Sketches.Slots.Max)
	}
	if !strings.Contains(rec.Body.String(), `"events_dropped"`) ||
		!strings.Contains(rec.Body.String(), `"sketches"`) {
		t.Fatalf("payload missing keys:\n%s", rec.Body.String())
	}
}

// TestSSEDropFeedsCounter: a client that never reads overflows its buffer
// and every overflow lands on the shared counter.
func TestSSEDropFeedsCounter(t *testing.T) {
	reg := metrics.New()
	total := reg.Counter(MetricEventsDropped)
	sink := &sseSink{ch: make(chan Event, 2), total: total}
	for i := 0; i < 10; i++ {
		sink.OnEvent(verdict("slow", i, 1, 1))
	}
	if d := sink.dropped.Load(); d != 8 {
		t.Fatalf("per-client dropped = %d, want 8", d)
	}
	if v := total.Value(); v != 8 {
		t.Fatalf("%s = %d, want 8", MetricEventsDropped, v)
	}
}

// TestPlaneBuildsSketch: -sketch alone enables the plane, wires the sink
// to the bus, and the exit summary names the sessions it saw.
func TestPlaneBuildsSketch(t *testing.T) {
	cfg := Config{Sketch: true}
	if !cfg.Enabled() {
		t.Fatal("Sketch should enable the plane")
	}
	reg := metrics.New()
	p, err := cfg.Build(nil, reg, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sketches() == nil {
		t.Fatal("plane has no sketch sink")
	}
	if p.EventsDropped() == nil {
		t.Fatal("plane has no dropped counter")
	}
	p.Bus().Publish(verdict("2tbins", 3, 24, 72))
	if got := p.Sketches().Snapshot().Sessions; got != 1 {
		t.Fatalf("sink saw %d sessions, want 1", got)
	}
	sum := p.Summary()
	if !strings.Contains(sum, "sketch: 1 sessions") || !strings.Contains(sum, "2tbins") {
		t.Fatalf("summary = %q", sum)
	}

	// The mux serves the sink on /slo.
	mux := NewMux(reg, p)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"sessions": 1`) {
		t.Fatalf("/slo: %d\n%s", rec.Code, rec.Body.String())
	}
}
