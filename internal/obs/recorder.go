package obs

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FlightRecorder keeps the last Size events in a ring buffer and, when
// an anomaly event arrives, dumps the ring to disk — the black box that
// makes one wrong verdict in a million-trial sweep diagnosable without
// recording everything. Dumps are capped (MaxDumps) so a systematically
// failing run produces a handful of exhibits, not a disk full of them;
// the ring keeps recording after the cap so Snapshot stays live.
//
// Dump format (one file per anomaly, FLIGHT_<n>.jsonl in Dir): a header
// line {"schema":"tcast-flight","version":1,...} followed by one JSON
// event per line in arrival order, the triggering anomaly last.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	full  bool
	dir   string
	max   int
	dumps []string
	// dumpErr keeps the first dump failure; recording carries on.
	dumpErr error
}

// FlightSchema identifies the dump header; bump FlightVersion on
// breaking shape changes.
const (
	FlightSchema  = "tcast-flight"
	FlightVersion = 1
)

// DefaultFlightSize is the ring capacity when the caller passes none.
const DefaultFlightSize = 512

// DefaultMaxDumps bounds how many anomaly dumps one run writes.
const DefaultMaxDumps = 8

// NewFlightRecorder returns a recorder ringing the last size events
// (DefaultFlightSize when size <= 0) and dumping into dir. An empty dir
// disables dumping; the ring still records for Snapshot.
func NewFlightRecorder(size int, dir string) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{ring: make([]Event, size), dir: dir, max: DefaultMaxDumps}
}

// OnEvent implements Sink: record the event, and dump the ring when it
// is an anomaly.
func (f *FlightRecorder) OnEvent(e Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring[f.next] = e
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	if e.Kind == KindAnomaly && f.dir != "" && len(f.dumps) < f.max {
		if err := f.dump(e); err != nil && f.dumpErr == nil {
			f.dumpErr = err
		}
	}
}

// snapshotLocked returns the ring contents in arrival order; callers
// hold f.mu.
func (f *FlightRecorder) snapshotLocked() []Event {
	if !f.full {
		return append([]Event(nil), f.ring[:f.next]...)
	}
	out := make([]Event, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Snapshot returns the recorded events, oldest first.
func (f *FlightRecorder) Snapshot() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

// dump writes the ring to the next FLIGHT_<n>.jsonl; callers hold f.mu.
func (f *FlightRecorder) dump(trigger Event) error {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(f.dir, fmt.Sprintf("FLIGHT_%d.jsonl", len(f.dumps)+1))
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(file)
	fmt.Fprintf(w, `{"schema":%q,"version":%d,"trigger_seq":%d,"trigger":%q,"events":%d}`+"\n",
		FlightSchema, FlightVersion, trigger.Seq, trigger.Outcome, f.count())
	for _, e := range f.snapshotLocked() {
		line, err := EncodeEvent(e)
		if err != nil {
			file.Close()
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return err
	}
	f.dumps = append(f.dumps, path)
	return nil
}

// count returns the number of ringed events; callers hold f.mu.
func (f *FlightRecorder) count() int {
	if f.full {
		return len(f.ring)
	}
	return f.next
}

// Dumps lists the dump files written so far, in trigger order.
func (f *FlightRecorder) Dumps() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.dumps...)
}

// Err returns the first dump failure, if any — recording never stops on
// one, so surfacing it at exit is the caller's job.
func (f *FlightRecorder) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpErr
}
