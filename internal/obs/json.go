package obs

import "encoding/json"

// wireEvent is the JSON shape shared by the flight-recorder dump lines
// and the /events SSE stream. Kind travels as its string name; the -1
// sentinels of Trial/Poll/CausalPoll are preserved so consumers can tell
// "not applicable" from index zero.
type wireEvent struct {
	Seq        uint64 `json:"seq"`
	Kind       string `json:"kind"`
	Session    string `json:"session,omitempty"`
	Trial      int    `json:"trial"`
	Poll       int    `json:"poll"`
	Bin        int    `json:"bin,omitempty"`
	Outcome    string `json:"outcome,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Polls      int    `json:"polls,omitempty"`
	Slots      int64  `json:"slots,omitempty"`
	Correct    bool   `json:"correct"`
	CausalPoll int    `json:"causal_poll"`
}

// EncodeEvent renders one event as a single JSON object (no trailing
// newline).
func EncodeEvent(e Event) ([]byte, error) {
	return json.Marshal(wireEvent{
		Seq: e.Seq, Kind: e.Kind.String(), Session: e.Session,
		Trial: e.Trial, Poll: e.Poll, Bin: e.Bin,
		Outcome: e.Outcome, Detail: e.Detail,
		Polls: e.Polls, Slots: e.Slots,
		Correct: e.Correct, CausalPoll: e.CausalPoll,
	})
}
