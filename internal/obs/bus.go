package obs

import (
	"sync"
	"sync/atomic"
)

// Sink receives every event published on a Bus. OnEvent is called from
// whichever goroutine publishes — concurrently when trials run in
// parallel — so implementations must be safe for concurrent use and
// should return quickly (buffer or drop rather than block).
type Sink interface {
	OnEvent(Event)
}

// Bus is the streaming event fan-out at the center of the observability
// plane. The publish path is lock-free: the subscriber list is
// copy-on-write (an atomic pointer swap under a mutex held only by
// Subscribe/Unsubscribe), so publishing from many worker goroutines
// never contends on a lock, and a sink may itself publish (the SLO
// engine turns verdicts into anomalies) without deadlocking.
//
// A nil *Bus is a valid no-op publisher, so call sites need no guards.
type Bus struct {
	seq   atomic.Uint64
	mu    sync.Mutex // guards sink-list swaps only
	sinks atomic.Pointer[[]Sink]
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers s to receive every subsequently published event.
func (b *Bus) Subscribe(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var next []Sink
	if cur := b.sinks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	b.sinks.Store(&next)
}

// Unsubscribe removes s; events published afterwards no longer reach it.
// Unknown sinks are ignored.
func (b *Bus) Unsubscribe(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.sinks.Load()
	if cur == nil {
		return
	}
	next := make([]Sink, 0, len(*cur))
	for _, have := range *cur {
		if have != s {
			next = append(next, have)
		}
	}
	b.sinks.Store(&next)
}

// Publish assigns e its sequence number and delivers it to every
// subscribed sink, synchronously, on the caller's goroutine. With no
// subscribers (or a nil bus) it returns immediately without even
// claiming a sequence number.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	sinks := b.sinks.Load()
	if sinks == nil || len(*sinks) == 0 {
		return
	}
	e.Seq = b.seq.Add(1)
	for _, s := range *sinks {
		s.OnEvent(e)
	}
}

// Seq returns the number of events published so far.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	return b.seq.Load()
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// OnEvent implements Sink.
func (f SinkFunc) OnEvent(e Event) { f(e) }
