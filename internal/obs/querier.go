package obs

import "tcast/internal/query"

// Publisher is the query.Querier middleware that streams one KindPoll
// event per group poll onto the bus. It sits outermost in a trial's chain
// (above the trace span recorder), forwards everything untouched, and
// consumes no randomness, so published runs stay byte-identical to bare
// ones. Interpose it only when a bus is configured — the experiment
// harness and cmds skip it entirely otherwise, keeping the pooled hot
// path allocation-free.
type Publisher struct {
	q       query.Querier
	bus     *Bus
	session string
	trial   int
	poll    int
}

// NewPublisher wraps q, labeling every event with the session name and
// trial index. Like the other observability layers, one Publisher serves
// one session.
func NewPublisher(q query.Querier, bus *Bus, session string, trial int) *Publisher {
	return &Publisher{q: q, bus: bus, session: session, trial: trial}
}

// Query implements query.Querier: forward the poll, then publish its
// outcome.
func (p *Publisher) Query(bin []int) query.Response {
	resp := p.q.Query(bin)
	p.bus.Publish(Event{
		Kind:    KindPoll,
		Session: p.session,
		Trial:   p.trial,
		Poll:    p.poll,
		Bin:     len(bin),
		Outcome: resp.Kind.String(),

		CausalPoll: -1,
	})
	p.poll++
	return resp
}

// Traits implements query.Querier.
func (p *Publisher) Traits() query.Traits { return p.q.Traits() }

// Unwrap implements query.Wrapper, so chain-walking helpers (audit truth
// discovery, metrics.FinishSession, the emit helpers below) see through
// the publisher.
func (p *Publisher) Unwrap() query.Querier { return p.q }

// TraceRound forwards the algorithms' round-boundary hook down the chain.
func (p *Publisher) TraceRound(round int) {
	if rt, ok := p.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(round)
	}
}
