package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// SLO evaluates declarative health rules against the live verdict
// stream. Each rule classifies every session verdict as conforming or
// violating, over a sliding window of the last Window verdicts; a rule
// fails when its violating fraction exceeds its error budget. Rule
// transitions (pass→fail, fail→pass) are published back onto the bus as
// KindSLO events, and a pass→fail additionally raises a KindAnomaly
// (AnomalySLO) so the flight recorder dumps the surrounding context.
//
// Rules are parsed from a compact spec, comma-separated:
//
//	maxpolls=96,maxslots=288,minacc=0.99,window=1000
//
// maxpolls / maxslots bound one session's poll count and virtual-slot
// cost; their budget defaults to zero (a single overrun fails the rule)
// and can be relaxed with an @fraction suffix (maxpolls=96@0.01 allows
// 1% of sessions over). minacc=F is window-fractional by construction:
// its budget is 1-F. window=N sets the sliding-window size for all
// rules (default DefaultWindow).
type SLO struct {
	mu      sync.Mutex
	rules   []Rule
	window  int
	ring    []uint8 // per-verdict bitmask, bit i = rules[i] violated
	next    int
	full    bool
	seen    uint64   // lifetime verdicts
	viol    []int    // violations inside the current window, per rule
	total   []uint64 // lifetime violations, per rule
	failing []bool
	bus     *Bus // transition events go back onto the bus
}

// Rule is one parsed SLO clause.
type Rule struct {
	// Name is the canonical rule name: max_polls, max_slots, min_accuracy.
	Name string
	// Threshold is the clause's numeric bound.
	Threshold float64
	// Budget is the violating fraction of windowed verdicts the rule
	// tolerates before failing.
	Budget float64
	// violates reports whether one verdict event breaks the clause.
	violates func(Event) bool
}

// DefaultWindow is the sliding-window size when the spec sets none.
const DefaultWindow = 1000

// maxRules is fixed by the uint8 ring bitmask; ParseRules rejects specs
// beyond it.
const maxRules = 8

// ParseRules parses an SLO spec (see the SLO doc comment) into rules and
// a window size.
func ParseRules(spec string) ([]Rule, int, error) {
	window := DefaultWindow
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, 0, fmt.Errorf("slo: clause %q is not key=value", clause)
		}
		val, budgetStr, hasBudget := cutBudget(val)
		budget := 0.0
		if hasBudget {
			b, err := strconv.ParseFloat(budgetStr, 64)
			if err != nil || b < 0 || b >= 1 {
				return nil, 0, fmt.Errorf("slo: budget %q must be a fraction in [0,1)", budgetStr)
			}
			budget = b
		}
		switch key {
		case "window":
			if hasBudget {
				return nil, 0, fmt.Errorf("slo: window takes no @budget")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, 0, fmt.Errorf("slo: window %q must be a positive integer", val)
			}
			window = n
		case "maxpolls":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, 0, fmt.Errorf("slo: maxpolls %q must be a positive integer", val)
			}
			rules = append(rules, Rule{
				Name: "max_polls", Threshold: float64(n), Budget: budget,
				violates: func(e Event) bool { return e.Polls > n },
			})
		case "maxslots":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, 0, fmt.Errorf("slo: maxslots %q must be a positive integer", val)
			}
			rules = append(rules, Rule{
				Name: "max_slots", Threshold: float64(n), Budget: budget,
				violates: func(e Event) bool { return e.Slots > n },
			})
		case "minacc":
			if hasBudget {
				return nil, 0, fmt.Errorf("slo: minacc takes no @budget (its budget is 1-threshold)")
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, 0, fmt.Errorf("slo: minacc %q must be a fraction in (0,1]", val)
			}
			rules = append(rules, Rule{
				Name: "min_accuracy", Threshold: f, Budget: 1 - f,
				violates: func(e Event) bool { return !e.Correct },
			})
		default:
			return nil, 0, fmt.Errorf("slo: unknown clause key %q", key)
		}
	}
	if len(rules) == 0 {
		return nil, 0, fmt.Errorf("slo: spec %q declares no rules", spec)
	}
	if len(rules) > maxRules {
		return nil, 0, fmt.Errorf("slo: at most %d rules supported, got %d", maxRules, len(rules))
	}
	return rules, window, nil
}

// cutBudget splits "value@budget" into its halves.
func cutBudget(s string) (val, budget string, ok bool) {
	val, budget, ok = strings.Cut(s, "@")
	return val, budget, ok
}

// NewSLO builds an engine over rules with the given window. The bus, if
// non-nil, receives rule-transition events; callers then Subscribe the
// engine to the same bus so it sees verdicts.
func NewSLO(rules []Rule, window int, bus *Bus) *SLO {
	if window <= 0 {
		window = DefaultWindow
	}
	return &SLO{
		rules:   rules,
		window:  window,
		ring:    make([]uint8, window),
		viol:    make([]int, len(rules)),
		total:   make([]uint64, len(rules)),
		failing: make([]bool, len(rules)),
		bus:     bus,
	}
}

// OnEvent implements Sink: only session verdicts advance the window;
// everything else (including the engine's own transition events coming
// back around the bus) is ignored before any lock is taken.
func (s *SLO) OnEvent(e Event) {
	if e.Kind != KindSessionVerdict {
		return
	}
	s.mu.Lock()
	var transitions []Event
	// Retire the verdict falling out of the window.
	if s.full {
		old := s.ring[s.next]
		for i := range s.rules {
			if old&(1<<i) != 0 {
				s.viol[i]--
			}
		}
	}
	var mask uint8
	for i, r := range s.rules {
		if r.violates(e) {
			mask |= 1 << i
			s.viol[i]++
			s.total[i]++
		}
	}
	s.ring[s.next] = mask
	s.next++
	if s.next == s.window {
		s.next = 0
		s.full = true
	}
	s.seen++
	n := s.window
	if !s.full {
		n = s.next
	}
	for i, r := range s.rules {
		frac := float64(s.viol[i]) / float64(n)
		nowFailing := frac > r.Budget
		if nowFailing == s.failing[i] {
			continue
		}
		s.failing[i] = nowFailing
		detail := fmt.Sprintf("%d/%d windowed verdicts violate (budget %.4g)", s.viol[i], n, r.Budget)
		state := "recovered"
		if nowFailing {
			state = "failing"
		}
		transitions = append(transitions, Event{
			Kind: KindSLO, Outcome: r.Name, Detail: state + ": " + detail,
			Trial: e.Trial, Poll: -1, CausalPoll: -1,
		})
		if nowFailing {
			transitions = append(transitions, Event{
				Kind: KindAnomaly, Outcome: AnomalySLO,
				Detail:  r.Name + " " + detail,
				Session: e.Session, Trial: e.Trial, Poll: -1,
				CausalPoll: e.CausalPoll,
			})
		}
	}
	s.mu.Unlock()
	for _, t := range transitions {
		s.bus.Publish(t)
	}
}

// RuleReport is one rule's live state in a Report.
type RuleReport struct {
	Rule            string  `json:"rule"`
	Threshold       float64 `json:"threshold"`
	Budget          float64 `json:"budget"`
	Window          int     `json:"window"`
	Seen            int     `json:"seen"`
	Violations      int     `json:"violations"`
	TotalViolations uint64  `json:"total_violations"`
	ViolatingFrac   float64 `json:"violating_frac"`
	// BurnRate is the violating fraction over the budget — 1.0 means the
	// budget is exactly spent. For zero-budget rules it is -1 while
	// violating (infinite burn) and 0 otherwise.
	BurnRate float64 `json:"burn_rate"`
	Healthy  bool    `json:"healthy"`
}

// Report is the /slo endpoint's JSON body. EventsDropped and Sketches
// are filled by the serving handler, not the engine: dropped-event
// counts come from the SSE clients and sketches from the sketch sink.
type Report struct {
	Healthy  bool         `json:"healthy"`
	Verdicts uint64       `json:"verdicts"`
	Rules    []RuleReport `json:"rules"`
	// EventsDropped totals bus events dropped toward slow /events
	// clients since startup.
	EventsDropped uint64 `json:"events_dropped"`
	// Sketches is the sketch sink's cost-distribution snapshot, absent
	// when the sink is disabled.
	Sketches *SketchReport `json:"sketches,omitempty"`
}

// Report snapshots every rule's state.
func (s *SLO) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.window
	if !s.full {
		n = s.next
	}
	rep := Report{Healthy: true, Verdicts: s.seen}
	for i, r := range s.rules {
		frac := 0.0
		if n > 0 {
			frac = float64(s.viol[i]) / float64(n)
		}
		burn := 0.0
		switch {
		case r.Budget > 0:
			burn = frac / r.Budget
		case s.viol[i] > 0:
			burn = -1
		}
		rr := RuleReport{
			Rule: r.Name, Threshold: r.Threshold, Budget: r.Budget,
			Window: s.window, Seen: n,
			Violations: s.viol[i], TotalViolations: s.total[i],
			ViolatingFrac: frac, BurnRate: burn,
			Healthy: !s.failing[i],
		}
		if s.failing[i] {
			rep.Healthy = false
		}
		rep.Rules = append(rep.Rules, rr)
	}
	return rep
}

// Healthy reports whether every rule currently passes.
func (s *SLO) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.failing {
		if f {
			return false
		}
	}
	return true
}
