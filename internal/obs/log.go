package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// LogSink renders bus events through a log/slog handler — the sink
// behind the cmds' -log (text) and -log-json flags. Events below the
// handler's level are skipped before a record is built, so a sweep
// publishing millions of debug-level poll events pays almost nothing
// when the sink logs at info.
type LogSink struct {
	mu sync.Mutex // slog handlers are concurrency-safe; the mutex keeps whole records atomic on shared writers
	h  slog.Handler
}

// NewLogSink wraps w in a text or JSON slog handler filtering below
// min.
func NewLogSink(w io.Writer, json bool, min slog.Level) *LogSink {
	opts := &slog.HandlerOptions{Level: min}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &LogSink{h: h}
}

// NewHandlerSink adapts an existing slog.Handler (tests inject
// deterministic ones).
func NewHandlerSink(h slog.Handler) *LogSink { return &LogSink{h: h} }

// OnEvent implements Sink.
func (s *LogSink) OnEvent(e Event) {
	lvl := e.Kind.Level()
	ctx := context.Background()
	if !s.h.Enabled(ctx, lvl) {
		return
	}
	r := slog.NewRecord(time.Now(), lvl, e.Kind.String(), 0)
	r.AddAttrs(e.attrs()...)
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.h.Handle(ctx, r)
}

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "", "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	default:
		return 0, false
	}
}
