package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"tcast/internal/metrics"
)

// HealthzHandler answers load-balancer-style health probes: 200 "ok"
// while every SLO rule passes (or when no engine is configured), 503
// with the failing rule names otherwise. Status and the failing list are
// derived from one Report snapshot — separate Healthy()/Report() calls
// could interleave with a rule transition and yield a 503 naming zero
// failing rules.
func HealthzHandler(s *SLO) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s == nil {
			w.Write([]byte("ok\n"))
			return
		}
		rep := s.Report()
		if rep.Healthy {
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("failing\n"))
		for _, r := range rep.Rules {
			if !r.Healthy {
				w.Write([]byte(r.Rule + "\n"))
			}
		}
	})
}

// SLOHandler serves the engine's full Report as JSON, folding in the
// sketch sink's cost-distribution snapshot and the SSE drop counter when
// present. With no engine configured it reports vacuous health so the
// endpoint shape is stable.
func SLOHandler(s *SLO, sk *SketchSink, dropped *metrics.Counter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rep := Report{Healthy: true}
		if s != nil {
			rep = s.Report()
		}
		if sk != nil {
			snap := sk.Snapshot()
			rep.Sketches = &snap
		}
		if dropped != nil {
			rep.EventsDropped = uint64(dropped.Value())
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// sseSink buffers bus events toward one /events client. OnEvent never
// blocks the publisher: when the client cannot keep up the event is
// dropped and counted — per client for the in-stream gap reports, and
// on the shared obs_events_dropped_total counter so silent loss shows
// up in the metrics registry and the /slo payload.
type sseSink struct {
	ch      chan Event
	dropped atomic.Uint64
	total   *metrics.Counter // shared cross-client counter, may be nil
}

// sseBuffer is each /events client's event backlog capacity.
const sseBuffer = 256

// OnEvent implements Sink.
func (s *sseSink) OnEvent(e Event) {
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
		if s.total != nil {
			s.total.Inc()
		}
	}
}

// sseTickInterval paces the stream's liveness writes: pending gap
// reports flush and idle connections get a `: keep-alive` comment so
// buffering proxies don't reap them.
const sseTickInterval = 15 * time.Second

// EventsHandler streams bus events as server-sent events: one
// `event: <kind>` / `data: <json>` record per published event, plus
// `event: dropped` records when the client falls behind. Gap reports are
// written both after each delivered event and on a ticker — without the
// ticker, a client that falls behind on a bus that then goes quiet would
// never learn it lost events, because the gap record only rode along
// with the *next* delivery. Idle ticks with no pending gap write a
// `: keep-alive` comment instead. The subscription lasts until the
// client disconnects.
func EventsHandler(b *Bus, dropped *metrics.Counter) http.Handler {
	return eventsHandler(b, dropped, sseTickInterval)
}

// eventsHandler is EventsHandler with the tick interval injectable for
// tests.
func eventsHandler(b *Bus, dropped *metrics.Counter, tick time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sink := &sseSink{ch: make(chan Event, sseBuffer), total: dropped}
		streamSSE(w, r, b, sink, tick)
	})
}

// streamSSE runs one /events subscription over sink until the client
// disconnects. Split from eventsHandler so tests can inject a sink that
// already recorded drops.
func streamSSE(w http.ResponseWriter, r *http.Request, b *Bus, sink *sseSink, tick time.Duration) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	b.Subscribe(sink)
	defer b.Unsubscribe(sink)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var reported uint64
	// reportGap writes an `event: dropped` record covering every drop
	// not yet reported; it returns false when the client is gone.
	reportGap := func() bool {
		d := sink.dropped.Load()
		if d <= reported {
			return true
		}
		if _, err := w.Write([]byte("event: dropped\ndata: {\"dropped\":" +
			uintString(d-reported) + "}\n\n")); err != nil {
			return false
		}
		reported = d
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-sink.ch:
			line, err := EncodeEvent(e)
			if err != nil {
				continue
			}
			if _, err := w.Write([]byte("event: " + e.Kind.String() + "\ndata: ")); err != nil {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			if !reportGap() {
				return
			}
			flusher.Flush()
		case <-ticker.C:
			d := sink.dropped.Load()
			if d > reported {
				if !reportGap() {
					return
				}
			} else if _, err := w.Write([]byte(": keep-alive\n\n")); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// uintString formats without strconv import churn at call sites.
func uintString(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// NewMux builds the observability endpoint: the metrics registry's
// Prometheus and text dumps plus the plane's health, SLO and event
// streams.
//
//	/metrics       Prometheus exposition of reg
//	/metrics/text  human-readable dump of reg
//	/healthz       SLO pass/fail probe
//	/slo           full SLO report (JSON)
//	/events        live event stream (SSE)
func NewMux(reg *metrics.Registry, p *Plane) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/metrics/text", metrics.TextHandler(reg))
	mux.Handle("/healthz", HealthzHandler(p.SLO()))
	mux.Handle("/slo", SLOHandler(p.SLO(), p.Sketches(), p.EventsDropped()))
	mux.Handle("/events", EventsHandler(p.Bus(), p.EventsDropped()))
	return mux
}

// Serve exposes NewMux at addr on a managed background server — the
// obs-aware superset of metrics.Serve, behind the cmds' -metrics-addr
// flag. The returned server carries the bound address (so ":0" is
// testable) and a graceful Shutdown the cmds call on exit instead of
// leaking the listener goroutine.
func Serve(addr string, reg *metrics.Registry, p *Plane) (*metrics.Server, error) {
	return metrics.StartServer(addr, NewMux(reg, p))
}
