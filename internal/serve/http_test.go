package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postQuery submits a request body and decodes the status payload.
func postQuery(t *testing.T, ts *httptest.Server, path, body string) (int, Status, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

// TestHTTPQueryLifecycle drives the wire API end to end: submit, poll,
// stream, and the defaulting of absent request fields.
func TestHTTPQueryLifecycle(t *testing.T) {
	p := NewPool(Config{Defaults: Spec{N: 128, T: 16, X: 16, Alg: "2tbins", Model: "1+"}})
	defer drain(t, p)
	mux := http.NewServeMux()
	Register(mux, p)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Synchronous submit: ?wait=1 returns the final status.
	code, st, _ := postQuery(t, ts, "/query?wait=1", `{"n":128,"t":16,"x":20,"seed":7,"audit":true}`)
	if code != http.StatusOK {
		t.Fatalf("wait submit: status %d", code)
	}
	if st.State != "done" || st.Result == nil || !st.Result.Correct {
		t.Fatalf("wait submit: %+v", st)
	}

	// Async submit: 202 + Location, then GET until terminal.
	code, st, hdr := postQuery(t, ts, "/query", `{"x":20,"seed":8}`)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: status %d", code)
	}
	if hdr.Get("Location") != "/query/"+st.ID {
		t.Fatalf("Location = %q", hdr.Get("Location"))
	}
	if st.Spec.N != 128 || st.Spec.Alg != "2tbins" {
		t.Fatalf("defaults not applied on the wire: %+v", st.Spec)
	}
	s, ok := p.Session(st.ID)
	if !ok {
		t.Fatalf("submitted session %s not in directory", st.ID)
	}
	<-s.Done()
	resp, err := http.Get(ts.URL + "/query/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != "done" || got.Result == nil {
		t.Fatalf("GET after done: %+v", got)
	}

	// SSE: a terminal session streams status + verdict immediately.
	resp, err = http.Get(ts.URL + "/query/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	if !strings.Contains(string(stream), "event: status") || !strings.Contains(string(stream), "event: verdict") {
		t.Fatalf("events stream missing records:\n%s", stream)
	}

	// Fields stats reflect the served sessions.
	resp, err = http.Get(ts.URL + "/fields")
	if err != nil {
		t.Fatal(err)
	}
	var fieldsOut []FieldStatus
	json.NewDecoder(resp.Body).Decode(&fieldsOut)
	resp.Body.Close()
	if len(fieldsOut) != 1 || fieldsOut[0].Served < 2 {
		t.Fatalf("fields = %+v", fieldsOut)
	}
}

// TestHTTPErrors maps the failure modes onto wire codes: bad body and
// bad spec 400, unknown id 404, overload 429 + Retry-After, draining
// 503.
func TestHTTPErrors(t *testing.T) {
	p := NewPool(Config{Fields: 1, MaxActive: 1, MaxQueue: 1, Hold: true})
	mux := http.NewServeMux()
	Register(mux, p)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if code, _, _ := postQuery(t, ts, "/query", `{not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", code)
	}
	if code, _, _ := postQuery(t, ts, "/query", `{"alg":"magic"}`); code != http.StatusBadRequest {
		t.Fatalf("bad alg: status %d", code)
	}
	if code, _, _ := postQuery(t, ts, "/query", `{"unknown_knob":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/query/q999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}

	// Fill the held field (1 active + 1 queued), then overload.
	for i := 0; i < 2; i++ {
		if code, _, _ := postQuery(t, ts, "/query", `{"x":20}`); code != http.StatusAccepted {
			t.Fatalf("fill %d: status %d", i, code)
		}
	}
	code, _, hdr := postQuery(t, ts, "/query", `{"x":20}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	p.Open()
	drain(t, p)
	code, _, hdr = postQuery(t, ts, "/query", `{"x":20}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}
