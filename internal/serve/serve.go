// Package serve is the long-running threshold-query service behind the
// tcastd daemon: it multiplexes many concurrent initiators over a pool of
// shared simulated fields, each field a single RCD medium on which the
// sessions' polls contend.
//
// The paper runs one initiator at a time; the serving scenario — many
// initiators sharing one singlehop medium, every transmission serialized
// on the same virtual slot clock — is the contention setting the MAC
// conflict-resolution literature treats as fundamental. The scheduler
// here keeps that pricing honest and *deterministic*: grants are ordered
// by (virtual ready time, admission sequence) and a grant is only issued
// when every admitted session is parked at the medium, so the same seeds
// and arrival order produce byte-identical verdicts and slot ledgers at
// any GOMAXPROCS. A session's own algorithm behaviour is never perturbed
// by contention (the medium wrapper forwards polls unchanged and consumes
// no randomness), so a single admitted session's verdict and cost are
// byte-identical to the same seed run through tcastsim.
//
// The rest of the stack is reused wholesale: sessions run the core
// algorithms through query.Querier, optionally stacked with the faults
// injector, retry middleware and the audit grader, and every lifecycle
// event lands on the obs plane's bus, so /metrics, /healthz, /slo and
// /events are the service's ops story for free.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcast/internal/metrics"
	"tcast/internal/obs"
)

// Config sizes the pool and its admission control.
type Config struct {
	// Fields is the number of shared-medium fields; sessions land on one
	// field each (round-robin unless the request pins one) and contend
	// only with sessions of the same field.
	Fields int
	// MaxActive bounds the sessions concurrently scheduled on one field's
	// medium.
	MaxActive int
	// MaxQueue bounds the sessions waiting per field for a scheduler slot
	// beyond MaxActive; past it submissions are shed with an
	// OverloadError (HTTP 429 + Retry-After) instead of queueing without
	// bound.
	MaxQueue int
	// MaxPerClient bounds one client's in-flight (queued or running)
	// sessions across the pool.
	MaxPerClient int
	// MaxHistory bounds the completed sessions kept for GET /query/{id};
	// the oldest finished sessions are evicted past it.
	MaxHistory int
	// MaxN bounds a request's field size — admission-time protection
	// against a single query asking for an absurd simulation.
	MaxN int
	// Defaults fills unset request fields (N, T, X, Alg, Model).
	Defaults Spec
	// Hold starts every field gated: sessions are admitted and park at
	// the medium but no grants are issued until Open is called. Tests and
	// benchmarks use it to fix the arrival order before scheduling
	// starts.
	Hold bool
	// Registry (optional) receives the service's serve_* metrics.
	Registry *metrics.Registry
	// Bus (optional) receives session lifecycle events — the obs plane's
	// SLO engine, log sinks and /events stream hang off it.
	Bus *obs.Bus
}

// withDefaults fills the zero-valued knobs.
func (c Config) withDefaults() Config {
	if c.Fields <= 0 {
		c.Fields = 1
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 32
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 4096
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 20
	}
	d := &c.Defaults
	if d.N == 0 {
		d.N = 128
	}
	if d.T == 0 {
		d.T = 16
	}
	if d.X == 0 {
		d.X = 16
	}
	if d.Alg == "" {
		d.Alg = "2tbins"
	}
	if d.Model == "" {
		d.Model = "1+"
	}
	return c
}

// ErrDraining rejects submissions while the pool drains for shutdown.
var ErrDraining = errors.New("serve: draining, not admitting new sessions")

// OverloadError sheds a submission that found a bounded queue full. The
// HTTP layer renders it as 429 with a Retry-After header.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Pool is the serving core: fields, admission state and the session
// directory.
type Pool struct {
	cfg Config

	fields []*Field

	shed       map[string]*metrics.Counter
	activeG    *metrics.Gauge
	queuedG    *metrics.Gauge
	latencyH   *metrics.Histogram
	sessionCtr func(outcome string) // increments serve_sessions_total{outcome}

	draining atomic.Bool
	wg       sync.WaitGroup

	mu        sync.Mutex
	seq       uint64
	next      int // round-robin field cursor
	perClient map[string]int
	byID      map[string]*Session
	order     []*Session
}

// NewPool builds the pool and starts one scheduler goroutine per field.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:       cfg,
		perClient: make(map[string]int),
		byID:      make(map[string]*Session),
	}
	if reg := cfg.Registry; reg != nil {
		p.shed = map[string]*metrics.Counter{
			"queue":    reg.Counter("serve_shed_total", "reason", "queue"),
			"client":   reg.Counter("serve_shed_total", "reason", "client"),
			"draining": reg.Counter("serve_shed_total", "reason", "draining"),
		}
		p.activeG = reg.Gauge("serve_active_sessions")
		p.queuedG = reg.Gauge("serve_queued_sessions")
		p.latencyH = reg.Histogram("serve_session_wall_ns",
			metrics.ExponentialBuckets(1e3, 4, 12))
		p.sessionCtr = func(outcome string) {
			reg.Counter("serve_sessions_total", "outcome", outcome).Inc()
		}
	}
	for i := 0; i < cfg.Fields; i++ {
		f := newField(p, i, cfg.MaxActive, cfg.Hold)
		p.fields = append(p.fields, f)
		go f.loop()
	}
	return p
}

// Open releases every gated field (no-op when Hold was not set, or after
// the first call).
func (p *Pool) Open() {
	for _, f := range p.fields {
		f.open()
	}
}

// Fields returns the pool's fields, for stats rendering.
func (p *Pool) Fields() []*Field { return p.fields }

// Session looks up a submitted session by id.
func (p *Pool) Session(id string) (*Session, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.byID[id]
	return s, ok
}

// shedCount bumps the shed counter for reason when a registry is wired.
func (p *Pool) shedCount(reason string) {
	if c, ok := p.shed[reason]; ok {
		c.Inc()
	}
}

// Submit validates and admits one query session, starting it
// asynchronously. The returned session exposes Done() for completion and
// Status() for the wire shape. Shedding returns *OverloadError (bounded
// queue or per-client limit full) or ErrDraining.
func (p *Pool) Submit(spec Spec, client string) (*Session, error) {
	if p.draining.Load() {
		p.shedCount("draining")
		return nil, ErrDraining
	}
	spec, err := p.resolveSpec(spec)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if p.cfg.MaxPerClient > 0 && p.perClient[client] >= p.cfg.MaxPerClient {
		p.mu.Unlock()
		p.shedCount("client")
		return nil, &OverloadError{Reason: fmt.Sprintf("client %q at its %d-session limit", client, p.cfg.MaxPerClient), RetryAfter: time.Second}
	}
	var f *Field
	if spec.Field >= 0 {
		if spec.Field >= len(p.fields) {
			p.mu.Unlock()
			return nil, fmt.Errorf("serve: field %d outside pool of %d", spec.Field, len(p.fields))
		}
		f = p.fields[spec.Field]
	} else {
		f = p.fields[p.next%len(p.fields)]
		p.next++
		spec.Field = f.index
	}
	if int(f.inflight.Load()) >= p.cfg.MaxActive+p.cfg.MaxQueue {
		p.mu.Unlock()
		p.shedCount("queue")
		return nil, &OverloadError{Reason: fmt.Sprintf("field %d queue full (%d active + %d queued)", f.index, p.cfg.MaxActive, p.cfg.MaxQueue), RetryAfter: time.Second}
	}
	p.seq++
	s := &Session{
		ID:        fmt.Sprintf("q%06d", p.seq),
		Client:    client,
		Spec:      spec,
		seq:       p.seq,
		field:     f,
		grant:     make(chan int64, 1),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	s.state.Store(int32(StateQueued))
	p.perClient[client]++
	f.inflight.Add(1)
	p.byID[s.ID] = s
	p.order = append(p.order, s)
	p.evictLocked()
	p.mu.Unlock()

	p.wg.Add(1)
	go s.run()
	return s, nil
}

// evictLocked drops the oldest finished sessions beyond MaxHistory.
// In-flight sessions are never evicted; the in-flight population is
// bounded by the admission caps, so the directory stays bounded too.
func (p *Pool) evictLocked() {
	for len(p.order) > p.cfg.MaxHistory {
		evicted := false
		for i, s := range p.order {
			if s.State().Terminal() {
				delete(p.byID, s.ID)
				p.order = append(p.order[:i], p.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// release returns a finished session's admission slot.
func (p *Pool) release(s *Session) {
	p.mu.Lock()
	if p.perClient[s.Client] <= 1 {
		delete(p.perClient, s.Client)
	} else {
		p.perClient[s.Client]--
	}
	p.mu.Unlock()
	s.field.inflight.Add(-1)
}

// Drain stops admission, waits for every in-flight session to finish
// (bounded by ctx), then stops the field schedulers. After a successful
// Drain the pool accepts no further submissions.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	for _, f := range p.fields {
		f.close()
	}
	return nil
}

// InFlight reports the pool-wide queued+running session count.
func (p *Pool) InFlight() int {
	total := int64(0)
	for _, f := range p.fields {
		total += f.inflight.Load()
	}
	return int(total)
}

// updateGauges refreshes the queue-depth gauges after a state change.
func (p *Pool) updateGauges() {
	if p.activeG == nil {
		return
	}
	var active, queued int64
	for _, f := range p.fields {
		active += f.active.Load()
		queued += f.queued.Load()
	}
	p.activeG.Set(float64(active))
	p.queuedG.Set(float64(queued))
}
