package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// Spec is one query session's resolved parameters — the wire request
// after defaulting and validation. Seed and Trial fix the session's
// entire random draw: the daemon derives its RNG exactly the way
// tcastsim derives trial Trial of a -seed Seed sweep, so any served
// session can be replayed offline.
type Spec struct {
	N     int    `json:"n"`
	T     int    `json:"t"`
	X     int    `json:"x"`
	Alg   string `json:"alg"`
	Model string `json:"model"`
	Seed  uint64 `json:"seed"`
	Trial int    `json:"trial"`
	// Field pins the session to one field of the pool; -1 (the wire
	// default) lets the pool round-robin.
	Field int `json:"field"`
	// Faults is a fault-injection spec (faults.ParseSpec syntax), applied
	// below the medium like tcastsim's -faults.
	Faults string `json:"faults,omitempty"`
	// Retries/Backoff configure the initiator retry middleware.
	Retries int `json:"retries,omitempty"`
	Backoff int `json:"backoff,omitempty"`
	// Audit grades the session against ground truth (audit.Verdict
	// outcome on the result and the obs verdict stream).
	Audit bool `json:"audit,omitempty"`
}

// State is a session's lifecycle position.
type State int32

const (
	// StateQueued: admitted, waiting for a scheduler slot on its field.
	StateQueued State = iota
	// StateRunning: scheduled on the field's medium.
	StateRunning
	// StateDone: finished with a result.
	StateDone
	// StateFailed: finished with an error (round limit, bad stack).
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Terminal reports whether the session has finished either way.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Result is one finished session's verdict and slot ledger. The virtual
// prices split three ways: SessionSlots is the initiator's own cost in
// the paper's model — byte-identical to the same seed run through
// tcastsim, contention cannot change it. MediumSlots is the session's
// occupancy of the shared medium and WaitedSlots the slots it spent
// blocked behind other initiators' transmissions; Span = End - Start is
// the honest end-to-end price of running under contention.
type Result struct {
	Decision  bool   `json:"decision"`
	Truth     bool   `json:"truth"`
	Correct   bool   `json:"correct"`
	Outcome   string `json:"outcome"`
	Polls     int    `json:"polls"`
	Rounds    int    `json:"rounds"`
	Confirmed int    `json:"confirmed,omitempty"`

	SessionSlots int64 `json:"session_slots"`
	MediumSlots  int64 `json:"medium_slots"`
	WaitedSlots  int64 `json:"waited_slots"`
	StartSlot    int64 `json:"start_slot"`
	EndSlot      int64 `json:"end_slot"`
	SpanSlots    int64 `json:"span_slots"`
}

// Session is one admitted query: the scheduler's ledger fields, the
// goroutine's execution state, and the completion signal.
type Session struct {
	ID     string
	Client string
	Spec   Spec

	seq   uint64
	field *Field

	// grant delivers the scheduler's transmit permission; lastCost
	// carries the previous poll's slots into the next park event.
	grant    chan int64
	lastCost int64

	// Scheduler-owned virtual-time ledger (only the field loop writes
	// these after arrival).
	readyAt   int64
	startSlot int64
	waited    int64
	ownSlots  int64

	// Written by the session goroutine before evDone, read by finish.
	res        core.Result
	truth      bool
	chainSlots int64
	verdict    *audit.Verdict
	chain      query.Querier
	runErr     error

	state     atomic.Int32
	result    *Result
	wall      time.Duration
	submitted time.Time
	done      chan struct{}
}

// State returns the session's lifecycle position.
func (s *Session) State() State { return State(s.state.Load()) }

// Done is closed when the session reaches a terminal state.
func (s *Session) Done() <-chan struct{} { return s.done }

// Result returns the finished session's result, or the run error. It
// must only be consulted after Done() (or a Terminal state).
func (s *Session) Result() (*Result, error) {
	if !s.State().Terminal() {
		return nil, fmt.Errorf("serve: session %s still %s", s.ID, s.State())
	}
	return s.result, s.runErr
}

// Wall returns the submitted→finished wall-clock latency; valid once
// terminal.
func (s *Session) Wall() time.Duration { return s.wall }

// label names the session on the obs bus.
func (s *Session) label() string {
	return fmt.Sprintf("%s/%s/seed=%d", s.ID, s.Spec.Alg, s.Spec.Seed)
}

// Status is the session's wire shape for GET /query/{id}.
type Status struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Spec      Spec    `json:"spec"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
}

// Status snapshots the session for serving.
func (s *Session) Status() Status {
	st := Status{ID: s.ID, State: s.State().String(), Spec: s.Spec}
	if st.State == StateDone.String() {
		st.Result = s.result
		st.ElapsedMs = float64(s.wall) / 1e6
	}
	if st.State == StateFailed.String() {
		st.Error = s.runErr.Error()
		st.ElapsedMs = float64(s.wall) / 1e6
	}
	return st
}

// resolveSpec fills defaults and validates a submission.
func (p *Pool) resolveSpec(spec Spec) (Spec, error) {
	d := p.cfg.Defaults
	if spec.N == 0 {
		spec.N = d.N
	}
	if spec.T == 0 {
		spec.T = d.T
	}
	if spec.Alg == "" {
		spec.Alg = d.Alg
	}
	if spec.Model == "" {
		spec.Model = d.Model
	}
	if spec.N <= 0 || spec.N > p.cfg.MaxN {
		return spec, fmt.Errorf("serve: n=%d outside [1,%d]", spec.N, p.cfg.MaxN)
	}
	if spec.X < 0 || spec.X > spec.N {
		return spec, fmt.Errorf("serve: x=%d outside [0,%d]", spec.X, spec.N)
	}
	if spec.T < 1 || spec.T > spec.N {
		return spec, fmt.Errorf("serve: t=%d outside [1,%d]", spec.T, spec.N)
	}
	if spec.Trial < 0 {
		return spec, fmt.Errorf("serve: trial=%d negative", spec.Trial)
	}
	if spec.Retries < 0 || spec.Backoff < 0 {
		return spec, fmt.Errorf("serve: negative retry policy")
	}
	if spec.Model != "1+" && spec.Model != "2+" {
		return spec, fmt.Errorf("serve: unknown model %q", spec.Model)
	}
	if _, _, err := algorithmFor(spec.Alg); err != nil {
		return spec, err
	}
	if _, err := faults.ParseSpec(spec.Faults); err != nil {
		return spec, err
	}
	return spec, nil
}

// algorithmFor maps a wire algorithm name to its factory — the same
// families tcastsim's -alg accepts, minus the contention-free baselines
// (csma/seq poll no groups, so they have nothing to schedule on the
// medium).
func algorithmFor(name string) (func(*fastsim.Channel) core.Algorithm, string, error) {
	plain := func(a core.Algorithm) func(*fastsim.Channel) core.Algorithm {
		return func(*fastsim.Channel) core.Algorithm { return a }
	}
	switch name {
	case "2tbins":
		return plain(core.TwoTBins{}), "2tBins", nil
	case "exp":
		return plain(core.ExpIncrease{}), "ExpIncrease", nil
	case "abns-t":
		return plain(core.ABNS{P0: 1}), "ABNS(p0=t)", nil
	case "abns-2t":
		return plain(core.ABNS{P0: 2}), "ABNS(p0=2t)", nil
	case "probabns":
		return plain(core.ProbABNS{}), "ProbABNS", nil
	case "oracle":
		return func(ch *fastsim.Channel) core.Algorithm { return core.Oracle{Truth: ch} }, "Oracle", nil
	default:
		return nil, "", fmt.Errorf("serve: unknown algorithm %q (want 2tbins|exp|abns-t|abns-2t|probabns|oracle)", name)
	}
}

// run is the session goroutine: acquire a scheduler slot (queueing when
// the field is at MaxActive), announce arrival, execute the query, and
// report completion to the scheduler, which prices and finishes it.
func (s *Session) run() {
	f := s.field
	p := f.pool
	defer p.wg.Done()
	select {
	case <-f.tokens:
	default:
		f.queued.Add(1)
		p.updateGauges()
		<-f.tokens
		f.queued.Add(-1)
	}
	f.active.Add(1)
	p.updateGauges()
	s.state.Store(int32(StateRunning))
	obs.PublishSessionStart(p.cfg.Bus, s.label(), s.Spec.Trial)
	f.events <- schedEvent{kind: evArrive, s: s}
	s.runErr = s.execute()
	f.events <- schedEvent{kind: evDone, s: s, cost: s.lastCost}
	<-s.done
	f.active.Add(-1)
	p.updateGauges()
	f.tokens <- struct{}{}
	p.release(s)
}

// execute builds the session's querier stack and runs the algorithm.
// The derivation mirrors tcastsim's sweep driver exactly — root
// rng.New(Seed), per-trial SplitInto(Trial), channel from Split(1),
// faults from Split(9), algorithm from Split(2) — with the medium
// wrapper (randomness-free, response-preserving) spliced between the
// substrate and the retry layer. A served session's verdict and
// SessionSlots are therefore byte-identical to trial Trial of
// `tcastsim -seed Seed` with the same parameters.
func (s *Session) execute() error {
	sp := s.Spec
	p := s.field.pool
	cfg := fastsim.DefaultConfig()
	if sp.Model == "2+" {
		cfg = fastsim.TwoPlusConfig()
	}
	fac, _, err := algorithmFor(sp.Alg)
	if err != nil {
		return err
	}
	fcfg, err := faults.ParseSpec(sp.Faults)
	if err != nil {
		return err
	}
	root := rng.New(sp.Seed)
	var src rng.Source
	root.SplitInto(uint64(sp.Trial), &src)
	ch, _ := fastsim.RandomPositives(sp.N, sp.X, cfg, src.Split(1))
	alg := fac(ch)
	var sub query.Querier = ch
	if fcfg.Active() {
		sub = faults.New(sub, fcfg, sp.N, src.Split(9))
	}
	sub = newMediumQuerier(sub, s)
	sub = query.WithRetry(sub, query.RetryPolicy{MaxRetries: sp.Retries, Backoff: sp.Backoff})
	q := metrics.Wrap(sub, p.cfg.Registry)
	var aud *audit.Auditor
	if sp.Audit {
		aud, err = audit.New(q, audit.Config{N: sp.N, T: sp.T, Metrics: p.cfg.Registry})
		if err != nil {
			return err
		}
		q = aud
	}
	if p.cfg.Bus != nil {
		q = obs.NewPublisher(q, p.cfg.Bus, s.label(), sp.Trial)
	}
	s.chain = q
	res, err := alg.Run(q, sp.N, sp.T, src.Split(2))
	if err != nil {
		return err
	}
	s.res = res
	s.truth = sp.X >= sp.T
	s.chainSlots = obs.ChainSlots(q, res.Queries)
	if aud != nil {
		v := aud.Finish(res.Decision)
		s.verdict = &v
	}
	metrics.FinishSession(q)
	return nil
}

// finish runs on the field's scheduler goroutine once the session's
// evDone is processed: it assembles the result from the algorithm's
// outcome and the scheduler's ledger, publishes the verdict onto the obs
// bus (in scheduler order, so event streams are as deterministic as the
// schedule), records metrics, and releases waiters.
func (s *Session) finish(end int64) {
	p := s.field.pool
	s.wall = time.Since(s.submitted)
	bus := p.cfg.Bus
	if s.runErr == nil {
		r := &Result{
			Decision:  s.res.Decision,
			Truth:     s.truth,
			Polls:     s.res.Queries,
			Rounds:    s.res.Rounds,
			Confirmed: s.res.Confirmed,

			SessionSlots: s.chainSlots,
			MediumSlots:  s.ownSlots,
			WaitedSlots:  s.waited,
			StartSlot:    s.startSlot,
			EndSlot:      end,
			SpanSlots:    end - s.startSlot,
		}
		if s.verdict != nil {
			r.Correct = s.verdict.Correct()
			r.Outcome = s.verdict.Outcome.String()
		} else {
			r.Correct = s.res.Decision == s.truth
			r.Outcome = audit.OutcomeCorrect.String()
			if !r.Correct {
				r.Outcome = audit.OutcomeWrongUnattributed.String()
			}
		}
		s.result = r
		if p.sessionCtr != nil {
			if r.Correct {
				p.sessionCtr("correct")
			} else {
				p.sessionCtr("wrong")
			}
		}
		if p.latencyH != nil {
			p.latencyH.Observe(float64(s.wall))
		}
		s.state.Store(int32(StateDone))
	} else {
		if p.sessionCtr != nil {
			p.sessionCtr("error")
		}
		s.state.Store(int32(StateFailed))
	}
	if bus != nil {
		label := s.label()
		obs.PublishChainEvents(bus, label, s.Spec.Trial, s.chain)
		switch {
		case s.runErr != nil:
		case s.verdict != nil:
			obs.PublishVerdict(bus, label, s.Spec.Trial, *s.verdict, s.chainSlots, s.chain)
		default:
			obs.PublishDecision(bus, label, s.Spec.Trial, s.res.Decision, s.truth, s.res.Queries, s.chainSlots)
		}
	}
	close(s.done)
}
