package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// queryRequest is the POST /query body. Numeric knobs are pointers so an
// absent field takes the pool default while explicit zeroes (x=0: no
// positives) survive.
type queryRequest struct {
	Client  string  `json:"client,omitempty"`
	N       *int    `json:"n,omitempty"`
	T       *int    `json:"t,omitempty"`
	X       *int    `json:"x,omitempty"`
	Alg     string  `json:"alg,omitempty"`
	Model   string  `json:"model,omitempty"`
	Seed    *uint64 `json:"seed,omitempty"`
	Trial   *int    `json:"trial,omitempty"`
	Field   *int    `json:"field,omitempty"`
	Faults  string  `json:"faults,omitempty"`
	Retries int     `json:"retries,omitempty"`
	Backoff int     `json:"backoff,omitempty"`
	Audit   bool    `json:"audit,omitempty"`
}

// spec lowers the wire request onto a Spec, filling absent numerics from
// the pool defaults (string/bool defaults are resolveSpec's job).
func (r *queryRequest) spec(d Spec) Spec {
	sp := Spec{
		Alg:     r.Alg,
		Model:   r.Model,
		Field:   -1,
		Faults:  r.Faults,
		Retries: r.Retries,
		Backoff: r.Backoff,
		Audit:   r.Audit,
	}
	sp.N, sp.T, sp.X = d.N, d.T, d.X
	if r.N != nil {
		sp.N = *r.N
	}
	if r.T != nil {
		sp.T = *r.T
	}
	if r.X != nil {
		sp.X = *r.X
	}
	if r.Seed != nil {
		sp.Seed = *r.Seed
	}
	if r.Trial != nil {
		sp.Trial = *r.Trial
	}
	if r.Field != nil {
		sp.Field = *r.Field
	}
	return sp
}

// clientID names the submitting client for per-client admission: the
// request body's client field, else the X-Tcast-Client header, else the
// remote host.
func clientID(req *queryRequest, r *http.Request) string {
	if req.Client != "" {
		return req.Client
	}
	if h := r.Header.Get("X-Tcast-Client"); h != "" {
		return h
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeJSON renders v with the service's content type.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps service errors onto wire status codes: overload and
// draining become 429/503 with a Retry-After header (graceful
// degradation — the client knows to back off, not that the service
// broke), validation failures 400.
func writeError(w http.ResponseWriter, err error) {
	var over *OverloadError
	switch {
	case errors.As(err, &over):
		w.Header().Set("Retry-After", strconv.Itoa(int(over.RetryAfter/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": over.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

// FieldStatus is one field's row in GET /fields.
type FieldStatus struct {
	Index    int   `json:"index"`
	Clock    int64 `json:"clock"`
	Served   int64 `json:"served"`
	InFlight int64 `json:"in_flight"`
	Active   int64 `json:"active"`
	Queued   int64 `json:"queued"`
}

// Register mounts the serving routes onto mux (Go 1.22 method+wildcard
// patterns):
//
//	POST /query             submit; 202 + session status (or 200 final
//	                        status with ?wait=1); 429/503 when shed
//	GET  /query/{id}        session status snapshot
//	GET  /query/{id}/events SSE: status now, final status at completion
//	GET  /fields            per-field clock/occupancy stats
func Register(mux *http.ServeMux, p *Pool) {
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req queryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		s, err := p.Submit(req.spec(p.cfg.Defaults), clientID(&req, r))
		if err != nil {
			writeError(w, err)
			return
		}
		if r.URL.Query().Get("wait") != "" {
			select {
			case <-s.Done():
				writeJSON(w, http.StatusOK, s.Status())
			case <-r.Context().Done():
			}
			return
		}
		w.Header().Set("Location", "/query/"+s.ID)
		writeJSON(w, http.StatusAccepted, s.Status())
	})

	mux.HandleFunc("GET /query/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := p.Session(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session"})
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	})

	mux.HandleFunc("GET /query/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s, ok := p.Session(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session"})
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		writeSSEStatus(w, "status", s.Status())
		flusher.Flush()
		if !s.State().Terminal() {
			select {
			case <-s.Done():
			case <-r.Context().Done():
				return
			}
		}
		writeSSEStatus(w, "verdict", s.Status())
		flusher.Flush()
	})

	mux.HandleFunc("GET /fields", func(w http.ResponseWriter, _ *http.Request) {
		out := make([]FieldStatus, 0, len(p.fields))
		for _, f := range p.fields {
			out = append(out, FieldStatus{
				Index:    f.index,
				Clock:    f.Clock(),
				Served:   f.Served(),
				InFlight: f.inflight.Load(),
				Active:   f.active.Load(),
				Queued:   f.queued.Load(),
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// writeSSEStatus emits one named SSE record carrying a status payload.
func writeSSEStatus(w http.ResponseWriter, event string, st Status) {
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
