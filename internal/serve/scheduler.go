package serve

import (
	"container/heap"
	"sync/atomic"

	"tcast/internal/query"
)

// Field is one shared simulated medium: a virtual slot clock all its
// sessions' transmissions serialize on, owned by a single scheduler
// goroutine. Session goroutines interact with it only through the events
// channel and their grant channel, so the scheduler's decisions — and
// therefore every contention price — are a pure function of the admitted
// sessions' (virtual ready time, admission sequence) order.
type Field struct {
	pool  *Pool
	index int

	events chan schedEvent
	tokens chan struct{} // MaxActive scheduler slots; excess sessions queue here
	done   chan struct{} // closed when the scheduler loop exits

	// inflight counts queued+running sessions (admission bound); active
	// and queued split it for gauges; clock mirrors the scheduler's
	// virtual slot clock for stats snapshots.
	inflight atomic.Int64
	active   atomic.Int64
	queued   atomic.Int64
	clock    atomic.Int64
	served   atomic.Int64
	parked   atomic.Int64
	gated    atomic.Bool
}

// schedEventKind discriminates the scheduler's inbox.
type schedEventKind uint8

const (
	// evArrive: a session acquired a scheduler slot and its goroutine is
	// running toward its first poll.
	evArrive schedEventKind = iota
	// evPark: a session wants the medium for its next poll; cost carries
	// the virtual slots of the poll it just finished (0 before the
	// first).
	evPark
	// evDone: a session finished; cost carries its final poll's slots.
	evDone
	// evOpen releases a gated field.
	evOpen
	// evClose asks the loop to exit once no sessions remain.
	evClose
)

// schedEvent is one message from a session (or the pool) to a field's
// scheduler loop.
type schedEvent struct {
	kind schedEventKind
	s    *Session
	cost int64
}

func newField(p *Pool, index, maxActive int, hold bool) *Field {
	f := &Field{
		pool:   p,
		index:  index,
		events: make(chan schedEvent),
		tokens: make(chan struct{}, maxActive),
		done:   make(chan struct{}),
	}
	for i := 0; i < maxActive; i++ {
		f.tokens <- struct{}{}
	}
	if hold {
		f.gated.Store(true)
	}
	return f
}

// gated is only read by the scheduler loop; the atomic lets open() be
// called idempotently from outside without racing the loop's read of the
// initial value.
func (f *Field) open() {
	if f.gated.CompareAndSwap(true, false) {
		select {
		case f.events <- schedEvent{kind: evOpen}:
		case <-f.done:
		}
	}
}

func (f *Field) close() {
	select {
	case f.events <- schedEvent{kind: evClose}:
		<-f.done
	case <-f.done:
	}
}

// Clock returns the field's current virtual slot clock.
func (f *Field) Clock() int64 { return f.clock.Load() }

// Served returns the number of sessions the field has completed.
func (f *Field) Served() int64 { return f.served.Load() }

// Index returns the field's position in the pool.
func (f *Field) Index() int { return f.index }

// Parked returns the number of sessions currently waiting at the medium
// for a grant. Tests on a held field use it to fix the arrival order:
// once every submitted session is parked, Open starts scheduling from a
// known state.
func (f *Field) Parked() int64 { return f.parked.Load() }

// loop is the field's scheduler: a barrier-stepped virtual-time event
// loop. It collects events until every admitted session is parked at the
// medium (running == 0), then grants the transmission to the waiting
// session with the lowest (readyAt, seq) key, waits for that session to
// park again (carrying the poll's slot cost, which advances the clock)
// or finish, and repeats. The barrier is what makes contention pricing
// independent of goroutine scheduling: no grant decision is ever taken
// while a session that could still request the medium is running.
func (f *Field) loop() {
	defer close(f.done)
	var (
		clock   int64
		running int
		waiting waitQueue
		closing bool
	)
	gated := f.gated.Load()
	for {
		// Collect events until a grant is possible and allowed.
		for running > 0 || waiting.Len() == 0 || gated {
			if closing && running == 0 && waiting.Len() == 0 {
				return
			}
			ev := <-f.events
			switch ev.kind {
			case evArrive:
				ev.s.readyAt = clock
				ev.s.startSlot = clock
				running++
			case evPark:
				clock += ev.cost
				ev.s.ownSlots += ev.cost
				ev.s.readyAt = clock
				running--
				heap.Push(&waiting, ev.s)
				f.parked.Store(int64(waiting.Len()))
			case evDone:
				clock += ev.cost
				ev.s.ownSlots += ev.cost
				running--
				f.served.Add(1)
				f.clock.Store(clock)
				ev.s.finish(clock)
			case evOpen:
				gated = false
			case evClose:
				closing = true
			}
			f.clock.Store(clock)
		}
		s := heap.Pop(&waiting).(*Session)
		f.parked.Store(int64(waiting.Len()))
		s.waited += clock - s.readyAt
		running++
		s.grant <- clock
	}
}

// waitQueue orders parked sessions by (virtual ready time, admission
// sequence) — earliest ready transmits first, ties broken by arrival
// order so earlier admissions never starve behind later ones.
type waitQueue []*Session

func (q waitQueue) Len() int { return len(q) }
func (q waitQueue) Less(i, j int) bool {
	if q[i].readyAt != q[j].readyAt {
		return q[i].readyAt < q[j].readyAt
	}
	return q[i].seq < q[j].seq
}
func (q waitQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *waitQueue) Push(x any)   { *q = append(*q, x.(*Session)) }
func (q *waitQueue) Pop() any {
	old := *q
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return s
}

// mediumQuerier is the scheduler's query.Querier middleware: before each
// downstream poll the session parks at the field's medium and waits for
// its grant, so concurrent initiators' transmissions serialize on one
// virtual slot clock. It forwards bins and responses unchanged and
// consumes no randomness — a session's verdict is identical with or
// without contention; only its slot ledger (waiting time, span) differs.
type mediumQuerier struct {
	inner query.Querier
	s     *Session
	// meter is the outermost slot meter below this wrapper (nil on the
	// abstract fastsim channel); its per-poll delta prices the medium
	// occupancy, one slot per poll otherwise.
	meter interface{ Slots() int }
	last  int
}

// newMediumQuerier wraps inner, discovering its slot meter.
func newMediumQuerier(inner query.Querier, s *Session) *mediumQuerier {
	m := &mediumQuerier{inner: inner, s: s}
	for walk := inner; walk != nil; {
		if sc, ok := walk.(interface{ Slots() int }); ok {
			m.meter = sc
			m.last = sc.Slots()
			break
		}
		w, ok := walk.(query.Wrapper)
		if !ok {
			break
		}
		walk = w.Unwrap()
	}
	return m
}

// Query implements query.Querier: park, wait for the grant, transmit.
func (m *mediumQuerier) Query(bin []int) query.Response {
	s := m.s
	s.field.events <- schedEvent{kind: evPark, s: s, cost: s.lastCost}
	<-s.grant
	resp := m.inner.Query(bin)
	cost := int64(1)
	if m.meter != nil {
		now := m.meter.Slots()
		if d := int64(now - m.last); d > 0 {
			cost = d
		}
		m.last = now
	}
	s.lastCost = cost
	return resp
}

// Traits implements query.Querier.
func (m *mediumQuerier) Traits() query.Traits { return m.inner.Traits() }

// Unwrap implements query.Wrapper, so audit's ground-truth discovery and
// the slot-meter walks see through the medium.
func (m *mediumQuerier) Unwrap() query.Querier { return m.inner }
