package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tcast/internal/fastsim"
	"tcast/internal/metrics"
	"tcast/internal/rng"
)

// drain tears a test pool down with a bounded context.
func drain(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// waitParked blocks until want sessions are parked at f's medium — the
// fixed pre-Open state a held field's determinism depends on.
func waitParked(t *testing.T, f *Field, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.Parked() != want {
		if time.Now().After(deadline) {
			t.Fatalf("parked = %d, want %d", f.Parked(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSessionMatchesTcastsim is the acceptance bar for the medium
// wrapper: a single admitted session's verdict and slot cost must be
// byte-identical to the same (seed, trial) built the way tcastsim builds
// it — channel from Split(1), algorithm randomness from Split(2), no
// medium in the stack.
func TestSessionMatchesTcastsim(t *testing.T) {
	cases := []struct {
		alg   string
		n, tt int
		x     int
		seed  uint64
		trial int
	}{
		{"2tbins", 128, 16, 20, 7, 0},
		{"2tbins", 128, 16, 12, 2011, 3},
		{"exp", 256, 32, 40, 42, 1},
		{"abns-t", 128, 16, 16, 9, 0},
		{"abns-2t", 128, 16, 8, 11, 2},
		{"probabns", 128, 16, 24, 13, 0},
		{"oracle", 128, 16, 15, 17, 0},
	}
	p := NewPool(Config{})
	defer drain(t, p)
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/x=%d/seed=%d", c.alg, c.x, c.seed), func(t *testing.T) {
			// Reference: tcastsim's trial derivation, contention-free.
			fac, _, err := algorithmFor(c.alg)
			if err != nil {
				t.Fatal(err)
			}
			root := rng.New(c.seed)
			var src rng.Source
			root.SplitInto(uint64(c.trial), &src)
			ch, _ := fastsim.RandomPositives(c.n, c.x, fastsim.DefaultConfig(), src.Split(1))
			want, err := fac(ch).Run(ch, c.n, c.tt, src.Split(2))
			if err != nil {
				t.Fatal(err)
			}

			s, err := p.Submit(Spec{N: c.n, T: c.tt, X: c.x, Alg: c.alg,
				Seed: c.seed, Trial: c.trial, Field: -1}, "identity")
			if err != nil {
				t.Fatal(err)
			}
			<-s.Done()
			r, err := s.Result()
			if err != nil {
				t.Fatalf("session error: %v", err)
			}
			if r.Decision != want.Decision || r.Polls != want.Queries || r.Rounds != want.Rounds {
				t.Fatalf("served (decision=%v polls=%d rounds=%d) != tcastsim (decision=%v polls=%d rounds=%d)",
					r.Decision, r.Polls, r.Rounds, want.Decision, want.Queries, want.Rounds)
			}
			// fastsim has no slot meter below the medium: a poll is one
			// slot, so the session's own cost equals its poll count.
			if r.SessionSlots != int64(want.Queries) || r.MediumSlots != int64(want.Queries) {
				t.Fatalf("slots: session=%d medium=%d, want %d", r.SessionSlots, r.MediumSlots, want.Queries)
			}
			if r.WaitedSlots != 0 {
				t.Fatalf("uncontended session waited %d slots", r.WaitedSlots)
			}
			if r.SpanSlots != r.MediumSlots+r.WaitedSlots {
				t.Fatalf("span=%d != medium(%d)+waited(%d)", r.SpanSlots, r.MediumSlots, r.WaitedSlots)
			}
		})
	}
}

// contendedLedger runs a fixed fleet of sessions on one held field at
// the given GOMAXPROCS and returns the JSON of their results in
// admission order.
func contendedLedger(t *testing.T, procs, sessions int) []byte {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	p := NewPool(Config{Fields: 1, MaxActive: sessions, Hold: true})
	defer drain(t, p)
	algs := []string{"2tbins", "exp", "abns-t", "probabns"}
	subs := make([]*Session, 0, sessions)
	for i := 0; i < sessions; i++ {
		s, err := p.Submit(Spec{
			N: 128, T: 16, X: 8 + 2*i, Alg: algs[i%len(algs)],
			Seed: uint64(100 + i), Field: 0, Audit: true,
		}, fmt.Sprintf("client-%d", i%3))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	waitParked(t, p.fields[0], int64(sessions))
	p.Open()
	results := make([]Result, 0, sessions)
	for _, s := range subs {
		<-s.Done()
		r, err := s.Result()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		results = append(results, *r)
	}
	b, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSchedulerDeterministic pins the tentpole property: the same seeds
// and arrival order produce byte-identical verdicts and slot ledgers
// regardless of GOMAXPROCS. Run under -race in CI, this is also the
// scheduler's data-race canary.
func TestSchedulerDeterministic(t *testing.T) {
	const sessions = 12
	want := contendedLedger(t, 1, sessions)
	for _, procs := range []int{2, runtime.NumCPU()} {
		got := contendedLedger(t, procs, sessions)
		if string(got) != string(want) {
			t.Fatalf("ledger differs at GOMAXPROCS=%d:\n%s\nvs GOMAXPROCS=1:\n%s", procs, got, want)
		}
	}
	// The ledger must show real contention: total waiting is positive and
	// every session's span decomposes into its own occupancy + waiting.
	var results []Result
	if err := json.Unmarshal(want, &results); err != nil {
		t.Fatal(err)
	}
	var waited int64
	for i, r := range results {
		waited += r.WaitedSlots
		if r.SpanSlots != r.MediumSlots+r.WaitedSlots {
			t.Fatalf("session %d: span=%d != medium(%d)+waited(%d)", i, r.SpanSlots, r.MediumSlots, r.WaitedSlots)
		}
		if !r.Correct {
			t.Fatalf("session %d: outcome %s under contention", i, r.Outcome)
		}
	}
	if waited == 0 {
		t.Fatal("no session waited: the fleet did not contend")
	}
}

// TestContentionPreservesVerdict verifies contention only reprices —
// sessions sharing a medium return the same decision, polls and own
// slots as the same seeds served alone.
func TestContentionPreservesVerdict(t *testing.T) {
	specs := make([]Spec, 6)
	for i := range specs {
		specs[i] = Spec{N: 128, T: 16, X: 10 + 3*i, Alg: "2tbins", Seed: uint64(500 + i), Field: 0}
	}

	alone := make([]Result, len(specs))
	for i, sp := range specs {
		p := NewPool(Config{Fields: 1})
		s, err := p.Submit(sp, "alone")
		if err != nil {
			t.Fatal(err)
		}
		<-s.Done()
		r, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		alone[i] = *r
		drain(t, p)
	}

	p := NewPool(Config{Fields: 1, MaxActive: len(specs), Hold: true})
	defer drain(t, p)
	subs := make([]*Session, len(specs))
	for i, sp := range specs {
		s, err := p.Submit(sp, "crowd")
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	waitParked(t, p.fields[0], int64(len(specs)))
	p.Open()
	for i, s := range subs {
		<-s.Done()
		r, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if r.Decision != alone[i].Decision || r.Polls != alone[i].Polls ||
			r.SessionSlots != alone[i].SessionSlots || r.MediumSlots != alone[i].MediumSlots {
			t.Fatalf("session %d perturbed by contention: contended %+v, alone %+v", i, *r, alone[i])
		}
	}
}

// TestOverloadShedding verifies the bounded queue: past MaxActive +
// MaxQueue, submissions shed with an OverloadError carrying Retry-After,
// already-admitted sessions still finish, and capacity frees once they
// do.
func TestOverloadShedding(t *testing.T) {
	reg := metrics.New()
	p := NewPool(Config{Fields: 1, MaxActive: 1, MaxQueue: 2, Hold: true, Registry: reg})
	defer drain(t, p)

	admitted := make([]*Session, 0, 3)
	for i := 0; i < 3; i++ {
		s, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: uint64(i), Field: 0}, fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatalf("submission %d shed below the bound: %v", i, err)
		}
		admitted = append(admitted, s)
	}
	_, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: 99, Field: 0}, "c9")
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("4th submission: got %v, want OverloadError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("OverloadError.RetryAfter = %v", over.RetryAfter)
	}

	// Shedding must not starve the admitted: open the field and all three
	// finish.
	p.Open()
	for i, s := range admitted {
		select {
		case <-s.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("admitted session %d starved after shedding", i)
		}
		if _, err := s.Result(); err != nil {
			t.Fatalf("admitted session %d: %v", i, err)
		}
	}

	// Capacity freed: the next submission is admitted again.
	s, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: 100, Field: 0}, "c9")
	if err != nil {
		t.Fatalf("post-drain submission shed: %v", err)
	}
	<-s.Done()

	if v := reg.Counter("serve_shed_total", "reason", "queue").Value(); v != 1 {
		t.Fatalf("serve_shed_total{reason=queue} = %v, want 1", v)
	}
}

// TestPerClientLimit verifies one client cannot monopolize admission.
func TestPerClientLimit(t *testing.T) {
	p := NewPool(Config{Fields: 1, MaxActive: 1, MaxQueue: 8, MaxPerClient: 2, Hold: true})
	for i := 0; i < 2; i++ {
		if _, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: uint64(i)}, "greedy"); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: 9}, "greedy")
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("3rd session for one client: got %v, want OverloadError", err)
	}
	if _, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: 10}, "patient"); err != nil {
		t.Fatalf("other client shed by greedy one: %v", err)
	}
	p.Open()
	drain(t, p)
}

// TestDrainRejectsAndFinishes verifies Drain's contract: in-flight work
// completes, later submissions get ErrDraining.
func TestDrainRejectsAndFinishes(t *testing.T) {
	p := NewPool(Config{Fields: 2})
	subs := make([]*Session, 0, 8)
	for i := 0; i < 8; i++ {
		s, err := p.Submit(Spec{N: 128, T: 16, X: 20, Seed: uint64(i)}, "drainer")
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	drain(t, p)
	for i, s := range subs {
		if !s.State().Terminal() {
			t.Fatalf("session %d not finished after drain: %s", i, s.State())
		}
	}
	if _, err := p.Submit(Spec{N: 64, T: 8, X: 10}, "late"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submission: got %v, want ErrDraining", err)
	}
}

// TestResolveSpecValidation covers the admission-time request checks.
func TestResolveSpecValidation(t *testing.T) {
	p := NewPool(Config{MaxN: 1024})
	defer drain(t, p)
	bad := []Spec{
		{N: 2048, T: 16, X: 1},          // n over MaxN
		{N: 128, T: 0, X: 1, Trial: -1}, // negative trial (t defaults first)
		{N: 128, T: 200, X: 1},          // t > n
		{N: 128, T: 16, X: 200},         // x > n
		{N: 128, T: 16, X: 1, Alg: "magic"},
		{N: 128, T: 16, X: 1, Model: "3+"},
		{N: 128, T: 16, X: 1, Faults: "burst=nope"},
		{N: 128, T: 16, X: 1, Retries: -1},
		{N: 128, T: 16, X: 1, Field: 7}, // outside the pool
	}
	for i, sp := range bad {
		if _, err := p.Submit(sp, "bad"); err == nil {
			t.Fatalf("bad spec %d admitted: %+v", i, sp)
		}
	}
	// Defaults fill a zero spec (Field 0 means pinned field 0 — valid).
	s, err := p.Submit(Spec{Field: -1}, "good")
	if err != nil {
		t.Fatalf("zero spec rejected: %v", err)
	}
	<-s.Done()
	if s.Spec.N == 0 || s.Spec.Alg == "" || s.Spec.Model == "" {
		t.Fatalf("defaults not applied: %+v", s.Spec)
	}
}

// TestFaultedAuditedSession exercises the full stack — faults below the
// medium, retry middleware, audit grading — through the pool.
func TestFaultedAuditedSession(t *testing.T) {
	p := NewPool(Config{})
	defer drain(t, p)
	s, err := p.Submit(Spec{
		N: 128, T: 16, X: 24, Seed: 31, Field: -1,
		Faults: "frac=0.2,burst=4", Retries: 2, Backoff: 1, Audit: true,
	}, "faulty")
	if err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	r, err := s.Result()
	if err != nil {
		t.Fatalf("session failed: %v", err)
	}
	if r.Outcome == "" {
		t.Fatal("audited session has no outcome")
	}
	if r.SessionSlots < int64(r.Polls) {
		t.Fatalf("slots %d below polls %d despite retries", r.SessionSlots, r.Polls)
	}
}

// TestHistoryEviction verifies the session directory stays bounded.
func TestHistoryEviction(t *testing.T) {
	p := NewPool(Config{MaxHistory: 4})
	defer drain(t, p)
	ids := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		s, err := p.Submit(Spec{N: 64, T: 8, X: 10, Seed: uint64(i), Field: -1}, "hist")
		if err != nil {
			t.Fatal(err)
		}
		<-s.Done()
		ids = append(ids, s.ID)
	}
	p.mu.Lock()
	kept := len(p.byID)
	p.mu.Unlock()
	if kept > 4 {
		t.Fatalf("directory holds %d sessions, MaxHistory=4", kept)
	}
	if _, ok := p.Session(ids[0]); ok {
		t.Fatal("oldest session survived eviction")
	}
	if _, ok := p.Session(ids[len(ids)-1]); !ok {
		t.Fatal("newest session evicted")
	}
}
