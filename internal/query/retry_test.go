package query

import "testing"

// scriptedQ answers polls from a fixed script of response kinds and counts
// its own polls; it optionally exposes a substrate slot meter.
type scriptedQ struct {
	script []Kind
	polls  int
	slots  int // simulated substrate meter: slots per poll
}

func (s *scriptedQ) Query(bin []int) Response {
	k := Active
	if s.polls < len(s.script) {
		k = s.script[s.polls]
	}
	s.polls++
	return Response{Kind: k}
}

func (s *scriptedQ) Traits() Traits { return Traits{} }

// meteredQ adds a Slots method pricing every poll at a fixed slot cost.
type meteredQ struct{ scriptedQ }

func (m *meteredQ) Slots() int { return m.polls * 3 }

func TestWithRetryInactivePassthrough(t *testing.T) {
	inner := &scriptedQ{}
	if got := WithRetry(inner, RetryPolicy{}); got != Querier(inner) {
		t.Fatal("inactive policy must return the querier unchanged")
	}
	if got := WithRetry(inner, RetryPolicy{Backoff: 5}); got != Querier(inner) {
		t.Fatal("backoff without retries is inactive")
	}
}

func TestRetryRepollsOnSilence(t *testing.T) {
	inner := &scriptedQ{script: []Kind{Empty, Empty, Active}}
	r := WithRetry(inner, RetryPolicy{MaxRetries: 2, Backoff: 1}).(*Retry)

	resp := r.Query([]int{1, 2})
	if resp.Kind != Active {
		t.Fatalf("Kind = %v, want Active after two retries", resp.Kind)
	}
	if inner.polls != 3 {
		t.Fatalf("inner polled %d times, want 3", inner.polls)
	}
	if r.Attempts() != 3 || r.Retries() != 2 || r.BackoffSlots() != 2 {
		t.Fatalf("attempts/retries/backoff = %d/%d/%d, want 3/2/2",
			r.Attempts(), r.Retries(), r.BackoffSlots())
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	inner := &scriptedQ{script: []Kind{Empty, Empty, Empty, Empty}}
	r := WithRetry(inner, RetryPolicy{MaxRetries: 2}).(*Retry)
	resp := r.Query(nil)
	if resp.Kind != Empty {
		t.Fatalf("Kind = %v, want Empty after exhausting retries", resp.Kind)
	}
	if inner.polls != 3 {
		t.Fatalf("inner polled %d times, want 1 + 2 retries", inner.polls)
	}
}

func TestRetryStopsOnFirstAnswer(t *testing.T) {
	inner := &scriptedQ{script: []Kind{Active}}
	r := WithRetry(inner, RetryPolicy{MaxRetries: 5, Backoff: 2}).(*Retry)
	r.Query(nil)
	if inner.polls != 1 || r.BackoffSlots() != 0 {
		t.Fatalf("polls/backoff = %d/%d, want 1/0 (no silence, no retries)", inner.polls, r.BackoffSlots())
	}
}

func TestRetrySlotsWithoutMeter(t *testing.T) {
	inner := &scriptedQ{script: []Kind{Empty, Active, Empty, Empty, Empty}}
	r := WithRetry(inner, RetryPolicy{MaxRetries: 2, Backoff: 3}).(*Retry)
	r.Query(nil) // 2 attempts, 1 backoff wait
	r.Query(nil) // 3 attempts, 2 backoff waits
	// No substrate meter: one slot per attempt plus the backoff idles.
	want := 5 + 3*3
	if got := r.Slots(); got != want {
		t.Fatalf("Slots = %d, want %d (5 attempts + 9 backoff)", got, want)
	}
}

func TestRetrySlotsWithSubstrateMeter(t *testing.T) {
	inner := &meteredQ{scriptedQ{script: []Kind{Empty, Active}}}
	r := WithRetry(inner, RetryPolicy{MaxRetries: 1, Backoff: 2}).(*Retry)
	r.Query(nil) // 2 attempts at 3 slots each on the substrate, 1 backoff
	if got, want := r.Slots(), 2*3+2; got != want {
		t.Fatalf("Slots = %d, want %d (substrate meter + backoff)", got, want)
	}
}

func TestRetryFindsMeterThroughChain(t *testing.T) {
	inner := &meteredQ{scriptedQ{script: []Kind{Active}}}
	// A plain wrapper between the retry layer and the metered substrate.
	wrapped := &passthroughQ{q: inner}
	r := WithRetry(wrapped, RetryPolicy{MaxRetries: 1}).(*Retry)
	r.Query(nil)
	if got := r.Slots(); got != 3 {
		t.Fatalf("Slots = %d, want 3 (meter discovered through the chain)", got)
	}
}

// passthroughQ is an anonymous middleware implementing Wrapper.
type passthroughQ struct{ q Querier }

func (p *passthroughQ) Query(bin []int) Response { return p.q.Query(bin) }
func (p *passthroughQ) Traits() Traits           { return p.q.Traits() }
func (p *passthroughQ) Unwrap() Querier          { return p.q }

// meterForwardingQ is middleware that memoizes the substrate meter at
// construction and exposes it as its own Slots() — the pattern the trace
// layer's span recorder uses. Placed above a Retry layer it reports the
// substrate's slots but is blind to that retry's backoff, which is exactly
// the counter the old first-match walk would misbind.
type meterForwardingQ struct {
	q     Querier
	meter interface{ Slots() int }
}

func (f *meterForwardingQ) Query(bin []int) Response { return f.q.Query(bin) }
func (f *meterForwardingQ) Traits() Traits           { return f.q.Traits() }
func (f *meterForwardingQ) Unwrap() Querier          { return f.q }
func (f *meterForwardingQ) Slots() int               { return f.meter.Slots() }

// TestStackedRetrySlotsThroughForwardingMeter is the pricing regression
// test for the meter-discovery fix: with a meter-forwarding middleware
// between two retry layers, binding the first Slots() found (the old
// behaviour) prices the session off the forwarded substrate count and
// silently drops the inner retry's backoff. The fix binds the innermost
// (substrate) meter and adds every retry layer's backoff explicitly.
func TestStackedRetrySlotsThroughForwardingMeter(t *testing.T) {
	// Substrate poll sequence: inner retry (MaxRetries 1) sees
	// Empty,Empty and gives up; outer retry backs off and re-polls, inner
	// sees Empty then Active. Substrate: 4 polls at 3 slots each.
	sub := &meteredQ{scriptedQ{script: []Kind{Empty, Empty, Empty, Active}}}
	inner := WithRetry(sub, RetryPolicy{MaxRetries: 1, Backoff: 2}).(*Retry)
	fwd := &meterForwardingQ{q: inner, meter: sub}
	outer := WithRetry(fwd, RetryPolicy{MaxRetries: 2, Backoff: 5}).(*Retry)

	if resp := outer.Query(nil); resp.Kind != Active {
		t.Fatalf("Kind = %v, want Active", resp.Kind)
	}
	if sub.polls != 4 {
		t.Fatalf("substrate polled %d times, want 4", sub.polls)
	}
	// True virtual time: 4 polls x 3 slots + inner backoff 2x2 + outer
	// backoff 1x5 = 21. The pre-fix walk bound fwd (substrate slots only)
	// and reported 12 + 5 = 17, losing the inner layer's backoff.
	if got, want := outer.Slots(), 4*3+2*2+5; got != want {
		t.Fatalf("Slots = %d, want %d (substrate + both layers' backoff)", got, want)
	}
}

// TestStackedRetrySlotsMetered pins the plain stacked total: two retry
// layers directly over a metered substrate price every attempt and every
// backoff wait exactly once.
func TestStackedRetrySlotsMetered(t *testing.T) {
	sub := &meteredQ{scriptedQ{script: []Kind{Empty, Empty, Empty, Active}}}
	inner := WithRetry(sub, RetryPolicy{MaxRetries: 1, Backoff: 2}).(*Retry)
	outer := WithRetry(inner, RetryPolicy{MaxRetries: 2, Backoff: 5}).(*Retry)
	outer.Query(nil)
	if got, want := outer.Slots(), 4*3+2*2+5; got != want {
		t.Fatalf("Slots = %d, want %d", got, want)
	}
}

// TestStackedRetrySlotsUnmetered pins the unmetered stacked total: with no
// substrate meter, polls are priced off the deepest retry layer's attempt
// count (the true downstream poll count), not the outer layer's.
func TestStackedRetrySlotsUnmetered(t *testing.T) {
	sub := &scriptedQ{script: []Kind{Empty, Empty, Empty, Active}}
	inner := WithRetry(sub, RetryPolicy{MaxRetries: 1, Backoff: 2}).(*Retry)
	outer := WithRetry(inner, RetryPolicy{MaxRetries: 2, Backoff: 5}).(*Retry)
	outer.Query(nil)
	// 4 substrate polls + 2x2 inner backoff + 1x5 outer backoff.
	if got, want := outer.Slots(), 4+2*2+5; got != want {
		t.Fatalf("Slots = %d, want %d", got, want)
	}
}

func TestDownstreamPoll(t *testing.T) {
	// Poll 0 takes 1 attempt, poll 1 takes 3 (two silences), poll 2 takes
	// 2; final attempts land at downstream indices 0, 3, 5.
	inner := &scriptedQ{script: []Kind{Active, Empty, Empty, Active, Empty, Active}}
	r := WithRetry(inner, RetryPolicy{MaxRetries: 2}).(*Retry)
	for i := 0; i < 3; i++ {
		r.Query(nil)
	}
	for i, want := range []int{0, 3, 5} {
		if got := r.DownstreamPoll(i); got != want {
			t.Fatalf("DownstreamPoll(%d) = %d, want %d", i, got, want)
		}
	}
	if got := r.DownstreamPoll(3); got != -1 {
		t.Fatalf("DownstreamPoll(3) = %d, want -1 (out of range)", got)
	}
	if got := r.DownstreamPoll(-1); got != -1 {
		t.Fatalf("DownstreamPoll(-1) = %d, want -1", got)
	}
}
