package query

import (
	"testing"
	"testing/quick"
)

// A decode naming a node that is not (or is no longer) a candidate can only
// come from a corrupt frame. The ledger must count the activity like Active
// instead of crediting Confirmed: double-crediting an already-confirmed node
// lets UpperBound grow past ground truth.
func TestApplyCorruptDecodeDoesNotDoubleConfirm(t *testing.T) {
	k := NewKnowledge(8, 3)
	traits := Traits{Model: TwoPlus, CaptureEffect: true}

	k.StartRound()
	k.Apply([]int{5, 6}, Response{Kind: Decoded, DecodedID: 5}, traits)
	if k.Confirmed != 1 || k.Candidates.Contains(5) {
		t.Fatalf("after genuine decode: Confirmed=%d, Contains(5)=%v", k.Confirmed, k.Candidates.Contains(5))
	}
	ub := k.UpperBound()
	lb := k.LowerBound()

	// Corrupt frame: the same ID decoded again, though it is no longer a
	// candidate.
	k.Apply([]int{3, 4}, Response{Kind: Decoded, DecodedID: 5}, traits)
	if k.Confirmed != 1 {
		t.Errorf("corrupt decode re-credited Confirmed: got %d, want 1", k.Confirmed)
	}
	if got := k.UpperBound(); got > ub {
		t.Errorf("UpperBound grew across corrupt decode: %d -> %d", ub, got)
	}
	if got := k.LowerBound(); got != lb+1 {
		t.Errorf("corrupt decode should count like Active: LowerBound %d -> %d, want %d", lb, got, lb+1)
	}
}

func TestApplyCorruptDecodeOfEliminatedNode(t *testing.T) {
	k := NewKnowledge(8, 3)
	traits := Traits{Model: TwoPlus, CaptureEffect: true}

	k.StartRound()
	// Bin {0,1} is silent: both proven negative.
	k.Apply([]int{0, 1}, Response{Kind: Empty}, traits)
	ub := k.UpperBound()

	// Corrupt frame names the proven-negative node 0.
	k.Apply([]int{2, 3}, Response{Kind: Decoded, DecodedID: 0}, traits)
	if k.Confirmed != 0 {
		t.Errorf("corrupt decode confirmed a proven negative: Confirmed=%d", k.Confirmed)
	}
	if got := k.UpperBound(); got > ub {
		t.Errorf("UpperBound grew across corrupt decode: %d -> %d", ub, got)
	}
	if k.RoundLowerBound() != 1 {
		t.Errorf("RoundLowerBound = %d, want 1 (counted like Active)", k.RoundLowerBound())
	}
}

// Reset must be indistinguishable from NewKnowledge, whatever state the
// recycled ledger carried, including a shrunk or grown population.
func TestQuickResetMatchesNewKnowledge(t *testing.T) {
	f := func(n1Raw, n2Raw, tRaw uint8, confirm []uint8) bool {
		n1, n2 := int(n1Raw%200), int(n2Raw%200)
		thr := int(tRaw % 50)
		k := NewKnowledge(n1, thr)
		k.StartRound()
		for _, c := range confirm {
			if n1 == 0 {
				break
			}
			id := int(c) % n1
			k.Apply([]int{id}, Response{Kind: Decoded, DecodedID: id}, Traits{Model: TwoPlus, CaptureEffect: true})
		}
		k.Reset(n2, thr)
		fresh := NewKnowledge(n2, thr)
		if k.Confirmed != fresh.Confirmed || k.Threshold != fresh.Threshold ||
			k.RoundLowerBound() != fresh.RoundLowerBound() {
			return false
		}
		return k.Candidates.Equal(fresh.Candidates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
