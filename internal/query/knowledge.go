package query

import (
	"fmt"

	"tcast/internal/idset"
)

// Knowledge is the initiator's bookkeeping during a threshold-query
// session: which nodes might still be positive, how many positives have
// been identified outright, and the evidence gathered in the current round.
//
// Decision rules (generalizing Algorithm 1 lines 11 and 14):
//
//   - threshold REACHED when Confirmed + round lower bound ≥ t,
//   - threshold IMPOSSIBLE when Confirmed + |Candidates| < t.
//
// The round lower bound is the sum over this round's queried bins of the
// guaranteed positives each response implies (Active=1, Collision=2).
// Decoded responses instead increment Confirmed permanently, because the
// identified node is removed from the candidate set and keeps counting
// toward t in later rounds.
type Knowledge struct {
	// Candidates holds nodes whose predicate value is still unknown. The
	// hybrid set keeps the ledger representation-agnostic: dense bitset
	// words at paper scale, the sorted-slice form once a huge field has
	// been mostly eliminated (idset.Hybrid.Compact). Every operation the
	// ledger performs — membership, removal, cardinality, ascending
	// enumeration — costs the same or less in either form, so
	// UpperBound, Apply and Reset never branch on representation.
	Candidates *idset.Hybrid
	// Confirmed counts positives identified by 2+ decodes. Confirmed
	// nodes are no longer candidates.
	Confirmed int
	// Threshold is t, the query's threshold.
	Threshold int

	roundLB int
}

// NewKnowledge starts a session over participants {0..n-1} with
// threshold t. It panics if t < 0.
func NewKnowledge(n, t int) *Knowledge {
	k := &Knowledge{}
	k.Reset(n, t)
	return k
}

// Reset reinitializes the ledger for a fresh session over {0..n-1} with
// threshold t, recycling the candidate set's backing storage. Pooled trial
// state calls Reset between sessions instead of allocating a new ledger;
// the result is indistinguishable from NewKnowledge(n, t). It panics if
// t < 0.
func (k *Knowledge) Reset(n, t int) {
	if t < 0 {
		panic("query: negative threshold")
	}
	if k.Candidates == nil {
		k.Candidates = idset.FullHybrid(n)
	} else {
		// Reset re-targets whatever representation the last session left
		// behind — including a different field size in either direction —
		// and Fill lands it back in dense form.
		k.Candidates.Reset(n)
		k.Candidates.Fill()
	}
	k.Confirmed = 0
	k.Threshold = t
	k.roundLB = 0
}

// StartRound resets the per-round lower bound. Call at the top of each
// re-binning round.
func (k *Knowledge) StartRound() { k.roundLB = 0 }

// RoundLowerBound returns the guaranteed positive count among the bins
// queried so far in the current round, excluding Confirmed nodes.
func (k *Knowledge) RoundLowerBound() int { return k.roundLB }

// LowerBound returns the total guaranteed positive count: confirmed
// positives plus the current round's bin evidence.
func (k *Knowledge) LowerBound() int { return k.Confirmed + k.roundLB }

// UpperBound returns the largest x still possible: confirmed positives plus
// all remaining candidates.
func (k *Knowledge) UpperBound() int { return k.Confirmed + k.Candidates.Len() }

// Apply folds one bin's response into the ledger. traits tells Apply how
// much a Decoded response proves (see Traits.CaptureEffect).
func (k *Knowledge) Apply(bin []int, r Response, traits Traits) {
	switch r.Kind {
	case Empty:
		// Every node in a silent bin is negative (Alg 1 line 8).
		for _, id := range bin {
			k.Candidates.Remove(id)
		}
	case Active:
		k.roundLB++
	case Collision:
		k.roundLB += 2
	case Decoded:
		if !k.Candidates.Contains(r.DecodedID) {
			// A decode naming a node that is not (or is no longer) a
			// candidate can only come from a corrupt frame on a faulted
			// substrate (the audit layer's corrupt_decode class). The
			// activity is real — some positive replied — but the
			// identity is not trustworthy, so count the response like
			// Active instead of confirming. Crediting Confirmed here
			// would double-count an already-confirmed node (or count a
			// proven negative), letting UpperBound grow past ground
			// truth and corrupting the decision.
			k.roundLB++
			return
		}
		k.Confirmed++
		k.Candidates.Remove(r.DecodedID)
		if r.MaxPositives(bin, traits) == 1 {
			// Without capture, a decode proves the bin had exactly
			// one replier: everyone else in the bin is negative.
			for _, id := range bin {
				if id != r.DecodedID {
					k.Candidates.Remove(id)
				}
			}
		}
	default:
		panic(fmt.Sprintf("query: unknown response kind %v", r.Kind))
	}
}

// Decision reports whether the threshold question is resolved:
// (answer, true) once decided, (false, false) while still open.
func (k *Knowledge) Decision() (answer, decided bool) {
	if k.LowerBound() >= k.Threshold {
		return true, true
	}
	if k.UpperBound() < k.Threshold {
		return false, true
	}
	return false, false
}
