// Package query defines the group-query abstraction shared by every
// substrate in the repository.
//
// All tcast algorithms are written against the Querier interface: one call
// polls one group (bin) of nodes with the predicate and returns only the
// information an RCD initiator can observe. The same algorithm code
// therefore runs unchanged on the fast abstract channel (package fastsim),
// on the packet-level radio simulation (package pollcast), and on the
// emulated mote testbed (package motelab).
package query

import "fmt"

// CollisionModel selects what the initiator's radio can distinguish when a
// group replies, per Section III-A of the paper.
type CollisionModel int

const (
	// OnePlus ("1+"): the initiator senses only silence or channel
	// activity (RSSI/CCA/HACK energy). Activity means at least one
	// positive node.
	OnePlus CollisionModel = iota
	// TwoPlus ("2+"): the radio can additionally lock onto and decode a
	// single frame. Decoding yields the replier's identity; detected
	// activity without a decode implies at least two repliers.
	TwoPlus
)

// String implements fmt.Stringer.
func (m CollisionModel) String() string {
	switch m {
	case OnePlus:
		return "1+"
	case TwoPlus:
		return "2+"
	default:
		return fmt.Sprintf("CollisionModel(%d)", int(m))
	}
}

// Kind classifies the outcome of one group query.
type Kind int

const (
	// Empty: silence — no positive node in the queried bin (modulo radio
	// false negatives on lossy substrates).
	Empty Kind = iota
	// Active: channel activity under the 1+ model — at least one
	// positive node replied, count unknown.
	Active
	// Decoded: under the 2+ model one reply frame was received
	// correctly, identifying a single positive node. With the capture
	// effect present, the bin may contain further positives.
	Decoded
	// Collision: under the 2+ model activity was detected but no frame
	// could be decoded — at least two positive nodes replied.
	Collision
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Empty:
		return "empty"
	case Active:
		return "active"
	case Decoded:
		return "decoded"
	case Collision:
		return "collision"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NumKinds is the number of response kinds; Kind values are contiguous in
// [0, NumKinds), so they can index fixed-size per-kind arrays.
const NumKinds = 4

// KindCounts partitions a stream of poll outcomes by response Kind. It is
// the single definition of the kind partition shared by the trace recorder
// and the metrics layer, so the two can never disagree about how polls are
// classified.
type KindCounts struct {
	Empty      int
	Active     int
	Decoded    int
	Collisions int
}

// Observe tallies one response kind. Out-of-range kinds panic: a Kind
// outside [0, NumKinds) can only come from a substrate bug, and silently
// dropping it would let the per-kind counts drift away from the number of
// polls actually issued.
func (c *KindCounts) Observe(k Kind) {
	switch k {
	case Empty:
		c.Empty++
	case Active:
		c.Active++
	case Decoded:
		c.Decoded++
	case Collision:
		c.Collisions++
	default:
		panic(fmt.Sprintf("query: KindCounts.Observe of out-of-range kind %v", k))
	}
}

// Total returns the number of observed polls. Because Observe panics on
// out-of-range kinds, the per-kind counts always partition Total exactly:
// Total equals the number of Observe calls that returned.
func (c KindCounts) Total() int {
	return c.Empty + c.Active + c.Decoded + c.Collisions
}

// Response is what the initiator learns from one group query.
type Response struct {
	Kind Kind
	// DecodedID is the identified positive node; valid only when
	// Kind == Decoded.
	DecodedID int
}

// MinPositives returns the guaranteed lower bound on positive nodes in the
// queried bin implied by the response alone.
func (r Response) MinPositives() int {
	switch r.Kind {
	case Empty:
		return 0
	case Active, Decoded:
		return 1
	case Collision:
		return 2
	default:
		return 0
	}
}

// MaxPositives returns the guaranteed upper bound on positive nodes in the
// queried bin implied by the response: Empty proves zero, and a Decoded
// response without the capture effect proves exactly one (the decode would
// have been destroyed by any second replier). Every other outcome bounds
// the count only by the bin size. Knowledge.Apply and the audit layer's
// ground-truth checker both derive their exclusion logic from this helper
// so the two can never diverge.
func (r Response) MaxPositives(bin []int, traits Traits) int {
	switch r.Kind {
	case Empty:
		return 0
	case Decoded:
		if !traits.CaptureEffect {
			return 1
		}
		return len(bin)
	default:
		return len(bin)
	}
}

// Traits describes what a substrate's radio can do; algorithms consult it
// to decide how much they may infer from each response.
type Traits struct {
	Model CollisionModel
	// CaptureEffect reports whether a decoded frame may hide further
	// simultaneous repliers (CC2420-style capture). When false, a
	// Decoded response proves the bin held exactly one positive node,
	// so all other bin members may be excluded as negatives.
	CaptureEffect bool
}

// Querier is one predicate-query session against a fixed population. A
// single Query call polls the nodes listed in bin and reports what the
// initiator's radio observed. Implementations are not required to be safe
// for concurrent use.
type Querier interface {
	Query(bin []int) Response
	Traits() Traits
}

// Wrapper is implemented by querier middleware (trace recorders, metric
// instrumenters) that delegates to an underlying Querier. It lets
// stacked middleware be walked without knowing the stacking order, so
// layers compose in either order: helpers that need a specific layer
// (metrics.FinishSession, the trace span recorder's substrate annotation)
// search the chain instead of type-asserting the outermost querier.
type Wrapper interface {
	Unwrap() Querier
}

// Root follows Unwrap to the innermost Querier — the substrate below
// every middleware layer.
func Root(q Querier) Querier {
	for {
		w, ok := q.(Wrapper)
		if !ok {
			return q
		}
		inner := w.Unwrap()
		if inner == nil {
			return q
		}
		q = inner
	}
}

// Counting wraps a Querier and counts issued queries — the paper's cost
// metric.
type Counting struct {
	Q       Querier
	Queries int
}

// Query implements Querier, forwarding to the wrapped querier.
func (c *Counting) Query(bin []int) Response {
	c.Queries++
	return c.Q.Query(bin)
}

// Traits implements Querier.
func (c *Counting) Traits() Traits { return c.Q.Traits() }

// Unwrap implements Wrapper.
func (c *Counting) Unwrap() Querier { return c.Q }
