package query

import (
	"testing"

	"tcast/internal/idset"
)

// applySomeHistory dirties a ledger the way a real session does: decodes,
// eliminations, round evidence.
func applySomeHistory(t *testing.T, k *Knowledge) {
	t.Helper()
	n := k.Candidates.Cap()
	traits := Traits{Model: TwoPlus, CaptureEffect: true}
	k.StartRound()
	k.Apply([]int{0, 1 % n}, Response{Kind: Decoded, DecodedID: 0}, traits)
	if n > 3 {
		k.Apply([]int{2, 3}, Response{Kind: Empty}, traits)
	}
	k.Apply([]int{n - 1}, Response{Kind: Collision}, traits)
}

// equalKnowledge checks k against a freshly built ledger in every
// observable: bounds, decision state, and exact candidate membership.
func equalKnowledge(t *testing.T, k *Knowledge, n, threshold int) {
	t.Helper()
	fresh := NewKnowledge(n, threshold)
	if k.Confirmed != fresh.Confirmed || k.Threshold != fresh.Threshold ||
		k.RoundLowerBound() != fresh.RoundLowerBound() {
		t.Fatalf("reset ledger scalars diverge: %+v vs fresh %+v", k, fresh)
	}
	if k.UpperBound() != fresh.UpperBound() || k.LowerBound() != fresh.LowerBound() {
		t.Fatalf("reset bounds diverge: [%d,%d] vs fresh [%d,%d]",
			k.LowerBound(), k.UpperBound(), fresh.LowerBound(), fresh.UpperBound())
	}
	if !k.Candidates.Equal(fresh.Candidates) {
		t.Fatalf("reset candidates (cap %d, len %d) differ from fresh full set over %d",
			k.Candidates.Cap(), k.Candidates.Len(), n)
	}
}

// TestResetAcrossFieldSizes pins the pooled-session contract for
// populations that change between sessions: growing and shrinking n —
// including across the sparse cutover in both directions — must leave
// the ledger indistinguishable from NewKnowledge at the new size.
func TestResetAcrossFieldSizes(t *testing.T) {
	sizes := []int{64, 1024, 64, idset.SparseCutover + 100, 128, idset.SparseCutover * 2, idset.SparseCutover, 16}
	k := NewKnowledge(sizes[0], 3)
	for _, n := range sizes {
		k.Reset(n, 3)
		equalKnowledge(t, k, n, 3)
		applySomeHistory(t, k)
	}
}

// TestResetFromSparseForm: a pooled ledger whose previous session ended
// in the compacted sparse form must reset cleanly to any size, dense
// form, full membership.
func TestResetFromSparseForm(t *testing.T) {
	n := idset.SparseCutover
	k := NewKnowledge(n, 2)
	for id := 0; id < n; id++ {
		if id%2000 != 0 {
			k.Candidates.Remove(id)
		}
	}
	if !k.Candidates.Compact() {
		t.Fatal("setup: candidate set did not compact")
	}
	for _, next := range []int{n, 256, n * 4} {
		k.Reset(next, 5)
		if k.Candidates.IsSparse() {
			t.Fatalf("reset to n=%d left sparse form", next)
		}
		equalKnowledge(t, k, next, 5)
	}
}

// TestResetShrinkDropsStaleMembers: after shrinking, no id from the old
// larger field may survive, and out-of-range probes must simply report
// absent.
func TestResetShrinkDropsStaleMembers(t *testing.T) {
	k := NewKnowledge(1000, 3)
	k.Reset(10, 3)
	if k.Candidates.Len() != 10 || k.UpperBound() != 10 {
		t.Fatalf("shrunk ledger: len=%d ub=%d", k.Candidates.Len(), k.UpperBound())
	}
	if k.Candidates.Contains(500) {
		t.Fatal("stale member above the new capacity")
	}
	// The shrunk session must behave normally end to end.
	traits := Traits{Model: OnePlus}
	k.StartRound()
	k.Apply([]int{0, 1, 2, 3, 4, 5, 6, 7}, Response{Kind: Empty}, traits)
	if answer, decided := k.Decision(); !decided || answer {
		t.Fatalf("8 eliminations of 10 with t=3: decision=%v,%v", answer, decided)
	}
}
