package query

// RetryPolicy is the initiator-side recovery knob for lossy or faulted
// substrates: when a group poll reads as silence, re-poll the same bin up
// to MaxRetries times, idling Backoff slots before each retry. Silence is
// the only retryable outcome — it is the one a lost reply forges — and a
// single non-Empty answer ends the poll, so on a sound substrate the
// policy never changes a decision, only the cost.
type RetryPolicy struct {
	// MaxRetries bounds re-polls per group query; zero disables the
	// policy entirely.
	MaxRetries int
	// Backoff is the number of idle slots the initiator waits before
	// each retry, priced into the virtual-time ledger.
	Backoff int
}

// Active reports whether the policy retries at all.
func (p RetryPolicy) Active() bool { return p.MaxRetries > 0 }

// Retry is the middleware implementing RetryPolicy. It sits directly
// above the substrate (or the fault injector), below the observability
// layers, so metrics/audit/trace see one poll per algorithm query — the
// final response — while the virtual-time cost of every attempt and
// backoff wait stays honest through Slots. Retry consumes no randomness.
type Retry struct {
	q      Querier
	policy RetryPolicy
	// meter is the innermost (substrate) slot counter, discovered at
	// construction by walking the chain all the way down and keeping the
	// deepest non-Retry counter (nil when the substrate prices polls
	// implicitly at one slot each). Binding the first counter found would
	// grab an intermediate layer — another Retry, or any middleware
	// forwarding the substrate's Slots() — and misprice stacked policies:
	// a forwarded meter hides the backoff of retry layers beneath it.
	meter interface{ Slots() int }
	// below lists the Retry layers between this one and the substrate,
	// outermost first; their backoff waits (and, with no substrate meter,
	// the deepest layer's attempt count) complete the slot ledger.
	below []*Retry

	attempts  int // polls issued downstream, including first attempts
	retries   int // attempts beyond the first
	backoff   int // idle slots spent waiting before retries
	exhausted int // polls still silent after the full retry budget
	cum       []int
}

// WithRetry wraps q with the policy; an inactive policy returns q
// unchanged, so zero-policy stacks are byte-identical to bare ones.
func WithRetry(q Querier, p RetryPolicy) Querier {
	if !p.Active() {
		return q
	}
	r := &Retry{q: q, policy: p}
	for walk := q; ; {
		if rr, ok := walk.(*Retry); ok {
			r.below = append(r.below, rr)
		} else if sc, ok := walk.(interface{ Slots() int }); ok {
			// Keep walking: a deeper counter supersedes this one, so the
			// binding lands on the substrate's own meter.
			r.meter = sc
		}
		w, ok := walk.(Wrapper)
		if !ok {
			break
		}
		inner := w.Unwrap()
		if inner == nil {
			break
		}
		walk = inner
	}
	return r
}

// Query implements Querier: forward the poll, re-polling on silence up to
// the policy's budget.
func (r *Retry) Query(bin []int) Response {
	r.attempts++
	resp := r.q.Query(bin)
	for i := 0; i < r.policy.MaxRetries && resp.Kind == Empty; i++ {
		r.backoff += r.policy.Backoff
		r.attempts++
		r.retries++
		resp = r.q.Query(bin)
	}
	if resp.Kind == Empty {
		r.exhausted++
	}
	r.cum = append(r.cum, r.attempts)
	return resp
}

// DownstreamPoll maps a poll index as seen above this layer to the
// downstream index of that poll's final attempt. Layers below number
// polls per attempt (the fault injector's event log does), so a causal
// poll found by the audit layer joins to its substrate-level event
// through this mapping. Out-of-range indices return -1.
func (r *Retry) DownstreamPoll(i int) int {
	if i < 0 || i >= len(r.cum) {
		return -1
	}
	return r.cum[i] - 1
}

// Traits implements Querier.
func (r *Retry) Traits() Traits { return r.q.Traits() }

// Unwrap implements Wrapper.
func (r *Retry) Unwrap() Querier { return r.q }

// TraceRound forwards the algorithms' round-boundary hook down the chain.
func (r *Retry) TraceRound(round int) {
	if rt, ok := r.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(round)
	}
}

// Slots is the virtual-time ledger the trace layer meters sessions by:
// the substrate's own slot count (or one slot per attempt when it has no
// meter) plus every backoff wait of every retry layer in the chain. With
// no substrate meter the deepest retry layer's attempt count is the true
// downstream poll count — this layer's own attempts undercount when a
// layer beneath it re-polls. The span recorder finds the outermost retry
// first when walking the chain, so retried polls are priced at their full
// cost instead of the one-poll default.
func (r *Retry) Slots() int {
	slots := r.backoff
	for _, rr := range r.below {
		slots += rr.backoff
	}
	if r.meter != nil {
		return r.meter.Slots() + slots
	}
	if n := len(r.below); n > 0 {
		return r.below[n-1].attempts + slots
	}
	return r.attempts + slots
}

// Attempts returns the polls issued downstream, first attempts included.
func (r *Retry) Attempts() int { return r.attempts }

// Retries returns the attempts beyond each poll's first.
func (r *Retry) Retries() int { return r.retries }

// BackoffSlots returns the idle slots spent waiting before retries.
func (r *Retry) BackoffSlots() int { return r.backoff }

// Exhausted returns the polls that stayed silent after the full retry
// budget — the ones the policy could not recover.
func (r *Retry) Exhausted() int { return r.exhausted }
