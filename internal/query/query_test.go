package query

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Empty: "empty", Active: "active", Decoded: "decoded",
		Collision: "collision", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestCollisionModelString(t *testing.T) {
	if OnePlus.String() != "1+" || TwoPlus.String() != "2+" {
		t.Fatal("model names wrong")
	}
	if CollisionModel(5).String() != "CollisionModel(5)" {
		t.Fatal("unknown model name wrong")
	}
}

func TestMinPositives(t *testing.T) {
	cases := []struct {
		r    Response
		want int
	}{
		{Response{Kind: Empty}, 0},
		{Response{Kind: Active}, 1},
		{Response{Kind: Decoded, DecodedID: 3}, 1},
		{Response{Kind: Collision}, 2},
		{Response{Kind: Kind(42)}, 0},
	}
	for _, c := range cases {
		if got := c.r.MinPositives(); got != c.want {
			t.Errorf("MinPositives(%v) = %d, want %d", c.r.Kind, got, c.want)
		}
	}
}

// stubQuerier returns canned responses.
type stubQuerier struct {
	resp   Response
	traits Traits
	bins   [][]int
}

func (s *stubQuerier) Query(bin []int) Response {
	s.bins = append(s.bins, bin)
	return s.resp
}
func (s *stubQuerier) Traits() Traits { return s.traits }

func TestCounting(t *testing.T) {
	stub := &stubQuerier{resp: Response{Kind: Active}, traits: Traits{Model: TwoPlus}}
	c := &Counting{Q: stub}
	for i := 0; i < 5; i++ {
		if r := c.Query([]int{i}); r.Kind != Active {
			t.Fatal("response not forwarded")
		}
	}
	if c.Queries != 5 {
		t.Fatalf("Queries = %d, want 5", c.Queries)
	}
	if c.Traits().Model != TwoPlus {
		t.Fatal("traits not forwarded")
	}
	if len(stub.bins) != 5 {
		t.Fatal("bins not forwarded")
	}
}

func TestNewKnowledge(t *testing.T) {
	k := NewKnowledge(10, 3)
	if k.Candidates.Len() != 10 || k.Confirmed != 0 || k.Threshold != 3 {
		t.Fatal("initial knowledge wrong")
	}
	if k.UpperBound() != 10 || k.LowerBound() != 0 {
		t.Fatal("initial bounds wrong")
	}
	if _, decided := k.Decision(); decided {
		t.Fatal("fresh session already decided")
	}
}

func TestNewKnowledgePanicsOnNegativeThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKnowledge(5, -1)
}

func TestZeroThresholdImmediatelyTrue(t *testing.T) {
	k := NewKnowledge(5, 0)
	ans, decided := k.Decision()
	if !decided || !ans {
		t.Fatal("t=0 must be trivially true")
	}
}

func TestApplyEmptyRemovesBin(t *testing.T) {
	k := NewKnowledge(10, 2)
	k.StartRound()
	k.Apply([]int{1, 3, 5}, Response{Kind: Empty}, Traits{})
	if k.Candidates.Len() != 7 {
		t.Fatalf("candidates = %d, want 7", k.Candidates.Len())
	}
	for _, id := range []int{1, 3, 5} {
		if k.Candidates.Contains(id) {
			t.Fatalf("node %d not removed", id)
		}
	}
	if k.RoundLowerBound() != 0 {
		t.Fatal("empty bin raised the lower bound")
	}
}

func TestApplyActiveRaisesLowerBound(t *testing.T) {
	k := NewKnowledge(10, 2)
	k.StartRound()
	k.Apply([]int{0, 1}, Response{Kind: Active}, Traits{Model: OnePlus})
	if k.RoundLowerBound() != 1 || k.Candidates.Len() != 10 {
		t.Fatal("active bin handling wrong")
	}
	k.Apply([]int{2, 3}, Response{Kind: Active}, Traits{Model: OnePlus})
	ans, decided := k.Decision()
	if !decided || !ans {
		t.Fatal("two active bins with t=2 must decide true")
	}
}

func TestApplyCollisionCountsTwo(t *testing.T) {
	k := NewKnowledge(10, 2)
	k.StartRound()
	k.Apply([]int{0, 1, 2}, Response{Kind: Collision}, Traits{Model: TwoPlus, CaptureEffect: true})
	if k.RoundLowerBound() != 2 {
		t.Fatalf("lower bound = %d, want 2", k.RoundLowerBound())
	}
	ans, decided := k.Decision()
	if !decided || !ans {
		t.Fatal("collision with t=2 must decide true")
	}
}

func TestApplyDecodedWithCapture(t *testing.T) {
	k := NewKnowledge(10, 3)
	k.StartRound()
	k.Apply([]int{4, 5, 6}, Response{Kind: Decoded, DecodedID: 5},
		Traits{Model: TwoPlus, CaptureEffect: true})
	if k.Confirmed != 1 {
		t.Fatalf("Confirmed = %d, want 1", k.Confirmed)
	}
	if k.Candidates.Contains(5) {
		t.Fatal("decoded node still a candidate")
	}
	// With capture effect, nodes 4 and 6 may still be positive.
	if !k.Candidates.Contains(4) || !k.Candidates.Contains(6) {
		t.Fatal("capture-effect decode wrongly excluded bin mates")
	}
	if k.RoundLowerBound() != 0 {
		t.Fatal("decode must move evidence into Confirmed, not the round bound")
	}
	if k.LowerBound() != 1 {
		t.Fatalf("LowerBound = %d, want 1", k.LowerBound())
	}
}

func TestApplyDecodedWithoutCaptureExcludesBin(t *testing.T) {
	k := NewKnowledge(10, 3)
	k.StartRound()
	k.Apply([]int{4, 5, 6}, Response{Kind: Decoded, DecodedID: 5},
		Traits{Model: TwoPlus, CaptureEffect: false})
	if k.Candidates.Contains(4) || k.Candidates.Contains(6) {
		t.Fatal("no-capture decode must prove bin mates negative")
	}
	if k.Confirmed != 1 {
		t.Fatalf("Confirmed = %d", k.Confirmed)
	}
}

func TestConfirmedPersistsAcrossRounds(t *testing.T) {
	k := NewKnowledge(10, 2)
	k.StartRound()
	k.Apply([]int{0}, Response{Kind: Decoded, DecodedID: 0},
		Traits{Model: TwoPlus, CaptureEffect: true})
	k.Apply([]int{1, 2}, Response{Kind: Active}, Traits{Model: TwoPlus, CaptureEffect: true})
	if k.LowerBound() != 2 {
		t.Fatalf("LowerBound = %d, want 2", k.LowerBound())
	}
	k.StartRound() // new round: bin evidence resets, confirmed survives
	if k.LowerBound() != 1 {
		t.Fatalf("after StartRound LowerBound = %d, want 1", k.LowerBound())
	}
}

func TestDecisionImpossible(t *testing.T) {
	k := NewKnowledge(4, 3)
	k.StartRound()
	k.Apply([]int{0, 1}, Response{Kind: Empty}, Traits{})
	ans, decided := k.Decision()
	if !decided || ans {
		t.Fatal("2 candidates < t=3 must decide false")
	}
}

func TestApplyPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKnowledge(4, 2).Apply([]int{0}, Response{Kind: Kind(9)}, Traits{})
}

// TestQuickBoundsInvariant: under arbitrary response sequences the bounds
// stay ordered and within [0, n].
func TestQuickBoundsInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		const n = 32
		k := NewKnowledge(n, 5)
		k.StartRound()
		next := 0
		for _, op := range ops {
			if next >= n {
				break
			}
			bin := []int{next, (next + 1) % n}
			switch op % 5 {
			case 0:
				k.Apply(bin, Response{Kind: Empty}, Traits{})
			case 1:
				k.Apply(bin, Response{Kind: Active}, Traits{})
			case 2:
				k.Apply(bin, Response{Kind: Collision}, Traits{})
			case 3:
				if k.Candidates.Contains(next) {
					k.Apply(bin, Response{Kind: Decoded, DecodedID: next},
						Traits{CaptureEffect: true})
				}
			case 4:
				k.StartRound()
			}
			next++
			if k.Confirmed < 0 || k.Confirmed > n {
				return false
			}
			if k.UpperBound() < k.Confirmed || k.UpperBound() > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindCountsPartition(t *testing.T) {
	var c KindCounts
	seq := []Kind{Empty, Active, Active, Decoded, Collision, Collision, Collision, Empty}
	for _, k := range seq {
		c.Observe(k)
	}
	if c.Empty != 2 || c.Active != 2 || c.Decoded != 1 || c.Collisions != 3 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Total() != len(seq) {
		t.Fatalf("Total = %d, want %d", c.Total(), len(seq))
	}
}

// TestKindCountsObservePanicsOnBogusKind: an out-of-range kind is a
// substrate bug; Observe must refuse it loudly rather than let the
// partition drift away from the number of polls issued.
func TestKindCountsObservePanicsOnBogusKind(t *testing.T) {
	var c KindCounts
	defer func() {
		if recover() == nil {
			t.Fatal("Observe(Kind(99)) did not panic")
		}
		if c.Total() != 0 {
			t.Fatalf("Total = %d after rejected observation", c.Total())
		}
	}()
	c.Observe(Kind(99))
}

func TestMaxPositives(t *testing.T) {
	bin := []int{3, 7, 9}
	cases := []struct {
		r      Response
		traits Traits
		want   int
	}{
		{Response{Kind: Empty}, Traits{}, 0},
		{Response{Kind: Active}, Traits{}, 3},
		{Response{Kind: Collision}, Traits{Model: TwoPlus}, 3},
		// A capture-free decode proves exactly one replier...
		{Response{Kind: Decoded, DecodedID: 7}, Traits{Model: TwoPlus}, 1},
		// ...but with capture, further positives may hide behind it.
		{Response{Kind: Decoded, DecodedID: 7}, Traits{Model: TwoPlus, CaptureEffect: true}, 3},
	}
	for _, c := range cases {
		if got := c.r.MaxPositives(bin, c.traits); got != c.want {
			t.Errorf("MaxPositives(%v, %+v) = %d, want %d", c.r.Kind, c.traits, got, c.want)
		}
		if got := c.r.MaxPositives(bin, c.traits); got < c.r.MinPositives() && c.r.Kind != Collision {
			t.Errorf("%v: MaxPositives %d < MinPositives %d", c.r.Kind, got, c.r.MinPositives())
		}
	}
	// On a singleton bin every non-empty response pins the count to 1.
	one := []int{5}
	for _, k := range []Kind{Active, Decoded} {
		if got := (Response{Kind: k, DecodedID: 5}).MaxPositives(one, Traits{CaptureEffect: true}); got != 1 {
			t.Errorf("singleton %v: MaxPositives = %d, want 1", k, got)
		}
	}
}

func TestNumKindsCoversAllKinds(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s := k.String(); len(s) == 0 || s[0] == 'K' { // "Kind(n)" fallback
			t.Fatalf("kind %d has no name: %q", k, s)
		}
	}
}
