package fastsim

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/query"
	"tcast/internal/rng"
)

func TestEmptyBinIsSilent(t *testing.T) {
	c := New(10, []int{1, 2}, DefaultConfig(), rng.New(1))
	for i := 0; i < 100; i++ {
		if r := c.Query([]int{0, 3, 4}); r.Kind != query.Empty {
			t.Fatalf("all-negative bin answered %v", r.Kind)
		}
	}
}

func TestPositiveBinIsActiveOnePlus(t *testing.T) {
	c := New(10, []int{5}, DefaultConfig(), rng.New(2))
	for i := 0; i < 100; i++ {
		if r := c.Query([]int{4, 5, 6}); r.Kind != query.Active {
			t.Fatalf("positive bin answered %v", r.Kind)
		}
	}
}

func TestEmptyBinOfNodes(t *testing.T) {
	c := New(10, []int{5}, DefaultConfig(), rng.New(3))
	if r := c.Query(nil); r.Kind != query.Empty {
		t.Fatalf("nil bin answered %v", r.Kind)
	}
}

func TestTwoPlusSingleDecodes(t *testing.T) {
	c := New(10, []int{7}, TwoPlusConfig(), rng.New(4))
	for i := 0; i < 100; i++ {
		r := c.Query([]int{6, 7, 8})
		if r.Kind != query.Decoded || r.DecodedID != 7 {
			t.Fatalf("lone positive gave %v/%d", r.Kind, r.DecodedID)
		}
	}
}

func TestTwoPlusCollisionOrCapture(t *testing.T) {
	c := New(10, []int{1, 2, 3}, TwoPlusConfig(), rng.New(5))
	decoded, collided := 0, 0
	for i := 0; i < 2000; i++ {
		r := c.Query([]int{1, 2, 3})
		switch r.Kind {
		case query.Decoded:
			decoded++
			if r.DecodedID != 1 && r.DecodedID != 2 && r.DecodedID != 3 {
				t.Fatalf("decoded a non-replier: %d", r.DecodedID)
			}
		case query.Collision:
			collided++
		default:
			t.Fatalf("unexpected kind %v", r.Kind)
		}
	}
	// With beta = 0.5 and k = 3, capture probability is 0.25.
	rate := float64(decoded) / float64(decoded+collided)
	if math.Abs(rate-0.25) > 0.04 {
		t.Fatalf("capture rate = %v, want ~0.25", rate)
	}
}

func TestNoCaptureModel(t *testing.T) {
	cfg := Config{Model: query.TwoPlus, Capture: NoCapture(), CaptureEffectPresent: false}
	c := New(10, []int{1, 2}, cfg, rng.New(6))
	for i := 0; i < 100; i++ {
		if r := c.Query([]int{1, 2}); r.Kind != query.Collision {
			t.Fatalf("two repliers with NoCapture gave %v", r.Kind)
		}
	}
	if c.Traits().CaptureEffect {
		t.Fatal("traits claim capture effect")
	}
}

func TestGeometricCaptureValues(t *testing.T) {
	m := GeometricCapture(0.5)
	for k, want := range map[int]float64{1: 1, 2: 0.5, 3: 0.25, 4: 0.125} {
		if got := m(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("GeometricCapture(0.5)(%d) = %v, want %v", k, got, want)
		}
	}
	if m(0) != 1 {
		t.Error("k=0 should degenerate to 1")
	}
}

func TestInverseCaptureValues(t *testing.T) {
	m := InverseCapture()
	for k, want := range map[int]float64{1: 1, 2: 0.5, 4: 0.25} {
		if got := m(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("InverseCapture()(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestMissProbFalseNegativeRate(t *testing.T) {
	// One positive with miss probability 0.3: bin should look Empty ~30%
	// of the time.
	cfg := DefaultConfig()
	cfg.MissProb = 0.3
	c := New(4, []int{0}, cfg, rng.New(7))
	misses := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if c.Query([]int{0}).Kind == query.Empty {
			misses++
		}
	}
	if rate := float64(misses) / trials; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("false-negative rate = %v, want ~0.3", rate)
	}
}

func TestMissProbDropsWithSuperposition(t *testing.T) {
	// With k superposed replies the whole bin is missed only when all k
	// are missed — the testbed's "error rate slashes down" effect.
	cfg := DefaultConfig()
	cfg.MissProb = 0.3
	c := New(4, []int{0, 1, 2}, cfg, rng.New(8))
	misses := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if c.Query([]int{0, 1, 2}).Kind == query.Empty {
			misses++
		}
	}
	want := 0.3 * 0.3 * 0.3
	if rate := float64(misses) / trials; math.Abs(rate-want) > 0.01 {
		t.Fatalf("false-negative rate = %v, want ~%v", rate, want)
	}
}

func TestFalseActiveProb(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FalseActiveProb = 0.2
	c := New(4, nil, cfg, rng.New(9))
	active := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if c.Query([]int{0, 1}).Kind == query.Active {
			active++
		}
	}
	if rate := float64(active) / trials; math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("false-active rate = %v, want ~0.2", rate)
	}
}

func TestFalseActiveTwoPlusLooksLikeCollision(t *testing.T) {
	cfg := TwoPlusConfig()
	cfg.FalseActiveProb = 1
	c := New(4, nil, cfg, rng.New(10))
	if r := c.Query([]int{0}); r.Kind != query.Collision {
		t.Fatalf("interference under 2+ gave %v", r.Kind)
	}
}

func TestRandomPositives(t *testing.T) {
	r := rng.New(11)
	c, set := RandomPositives(50, 12, DefaultConfig(), r)
	if c.Positives() != 12 || set.Len() != 12 {
		t.Fatalf("Positives = %d, want 12", c.Positives())
	}
	count := 0
	for i := 0; i < 50; i++ {
		if c.IsPositive(i) {
			count++
		}
	}
	if count != 12 {
		t.Fatalf("ground truth count = %d", count)
	}
}

func TestTraits(t *testing.T) {
	one := New(4, nil, DefaultConfig(), rng.New(12))
	if tr := one.Traits(); tr.Model != query.OnePlus || tr.CaptureEffect {
		t.Fatalf("1+ traits = %+v", tr)
	}
	two := New(4, nil, TwoPlusConfig(), rng.New(13))
	if tr := two.Traits(); tr.Model != query.TwoPlus || !tr.CaptureEffect {
		t.Fatalf("2+ traits = %+v", tr)
	}
}

// TestQuickIdealChannelSound: on a perfect radio, Empty answers are always
// truthful and non-Empty answers always indicate a real positive.
func TestQuickIdealChannelSound(t *testing.T) {
	f := func(seed uint64, xRaw uint8, twoPlus bool) bool {
		const n = 40
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		cfg := DefaultConfig()
		if twoPlus {
			cfg = TwoPlusConfig()
		}
		c, set := RandomPositives(n, x, cfg, r)
		for trial := 0; trial < 20; trial++ {
			bin := r.Sample(n, r.Intn(n+1))
			hasPositive := false
			for _, id := range bin {
				if set.Contains(id) {
					hasPositive = true
					break
				}
			}
			resp := c.Query(bin)
			if (resp.Kind == query.Empty) == hasPositive {
				return false
			}
			if resp.Kind == query.Decoded && !set.Contains(resp.DecodedID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuery128(b *testing.B) {
	r := rng.New(1)
	c, _ := RandomPositives(128, 16, DefaultConfig(), r)
	bin := r.Sample(128, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Query(bin)
	}
}
