package fastsim

import (
	"testing"

	"tcast/internal/query"
	"tcast/internal/rng"
)

// referenceQuery is the pre-fast-path lossless query: walk the bin, collect
// the heard positives (Bernoulli(0) consumes no randomness under
// MissProb == 0), then resolve the response exactly as the slow path does.
// The fast path must match it response for response AND draw for draw.
func referenceQuery(c *Channel, bin []int, r *rng.Source) query.Response {
	var heard []int
	for _, id := range bin {
		if c.IsPositive(id) {
			heard = append(heard, id)
		}
	}
	if len(heard) == 0 {
		if c.cfg.FalseActiveProb > 0 && r.Bernoulli(c.cfg.FalseActiveProb) {
			if c.cfg.Model == query.OnePlus {
				return query.Response{Kind: query.Active}
			}
			return query.Response{Kind: query.Collision}
		}
		return query.Response{Kind: query.Empty}
	}
	if c.cfg.Model == query.OnePlus {
		return query.Response{Kind: query.Active}
	}
	if r.Bernoulli(c.cfg.Capture(len(heard))) {
		return query.Response{Kind: query.Decoded, DecodedID: heard[r.Intn(len(heard))]}
	}
	return query.Response{Kind: query.Collision}
}

func TestLosslessFastPathMatchesReference(t *testing.T) {
	const n = 130 // capacity straddles a word boundary
	configs := []Config{
		{Model: query.OnePlus},
		{Model: query.OnePlus, FalseActiveProb: 0.3},
		TwoPlusConfig(),
		{Model: query.TwoPlus, Capture: GeometricCapture(0.3), CaptureEffectPresent: true, FalseActiveProb: 0.2},
		{Model: query.TwoPlus, Capture: NoCapture()},
	}
	for ci, cfg := range configs {
		for seed := uint64(1); seed <= 20; seed++ {
			root := rng.New(seed)
			fast, _ := RandomPositives(n, int(seed%40), cfg, root.Split(1))
			refR := root.Split(1)
			refR.Sample(n, int(seed%40)) // advance past the positive draw
			binR := root.Split(5)
			for polls := 0; polls < 50; polls++ {
				// Bins of every size the algorithms produce, small and
				// word-scale, with duplicates impossible (Sample draws
				// distinct IDs, like real partitions).
				bin := binR.Sample(n, binR.Intn(n))
				want := referenceQuery(fast, bin, refR)
				got := fast.Query(bin)
				if got != want {
					t.Fatalf("config %d seed %d poll %d: fast path %+v, reference %+v", ci, seed, polls, got, want)
				}
			}
			// Same stream position afterwards: no extra or missing draws.
			if fast.r.Uint64() != refR.Uint64() {
				t.Fatalf("config %d seed %d: fast path left the RNG at a different position", ci, seed)
			}
		}
	}
}

func TestResetRandomMatchesRandomPositives(t *testing.T) {
	cfg := TwoPlusConfig()
	var pooled Channel
	for seed := uint64(1); seed <= 10; seed++ {
		n := 64 + int(seed%3)*40
		x := int(seed % 20)
		fresh, set := RandomPositives(n, x, cfg, rng.New(seed))
		pooled.ResetRandom(n, x, cfg, rng.New(seed))
		if !pooled.PositiveSet().Equal(set) {
			t.Fatalf("seed %d: pooled positives differ from fresh", seed)
		}
		if pooled.Stats() != (TxStats{}) {
			t.Fatalf("seed %d: stats not zeroed: %+v", seed, pooled.Stats())
		}
		binR := rng.New(seed + 100)
		for polls := 0; polls < 20; polls++ {
			bin := binR.Sample(n, binR.Intn(n))
			if got, want := pooled.Query(bin), fresh.Query(bin); got != want {
				t.Fatalf("seed %d poll %d: pooled %+v, fresh %+v", seed, polls, got, want)
			}
		}
		if pooled.Stats() != fresh.Stats() {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, pooled.Stats(), fresh.Stats())
		}
	}
}
