// Package fastsim is the paper's simulation substrate: an abstract
// single-hop RCD channel that answers group queries directly from the
// ground-truth positive set.
//
// It models exactly the information an RCD initiator can extract — silence,
// activity, or (in the 2+ model) a captured frame — plus the radio
// imperfections the paper discusses: the CC2420 capture effect,
// per-reply losses ("radio irregularities", the source of the testbed's
// false negatives), and interference-triggered false activity (which
// pollcast suffers and backcast does not).
package fastsim

import (
	"sort"
	"sync/atomic"

	"tcast/internal/bitset"
	"tcast/internal/idset"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// CaptureModel gives the probability that the initiator's radio locks onto
// and decodes one frame when k >= 1 frames are transmitted simultaneously.
type CaptureModel func(k int) float64

// GeometricCapture returns the default capture model
// P(capture | k) = beta^(k-1): a single frame always decodes, and each
// additional simultaneous frame multiplies the success probability by
// beta. The paper describes capture qualitatively ("decreasing probability
// as the number of messages increase"); beta makes the strength explicit.
//
// The powers are precomputed by the same successive multiplication an
// O(k) loop would perform — so the returned values are bit-identical to
// the loop's — and the model is evaluated on every group poll, so the
// table lookup keeps the query hot path O(1). Superpositions beyond the
// table (k > 64 simultaneous frames, the dense mega-bins of scaled-up
// fields) extend the product once and memoize the extension, so repeated
// oversized polls stay O(1) too. The extension is published through an
// atomic pointer because one model instance (defaultCapture) is shared
// by every parallel trial worker: growth is copy-on-write, values are
// deterministic products of beta, and a racing publish of a shorter
// table merely wastes a future re-extension — the returned values are
// identical either way. beta^63 already underflows any realistic capture
// probability, so the extension is precision-moot but keeps the model
// exact.
func GeometricCapture(beta float64) CaptureModel {
	var pow [64]float64
	pow[0] = 1
	for i := 1; i < len(pow); i++ {
		pow[i] = pow[i-1] * beta
	}
	// ext holds beta^64, beta^65, ... — the memoized continuation of pow.
	var ext atomic.Pointer[[]float64]
	return func(k int) float64 {
		if k <= 1 {
			return 1
		}
		if k-1 < len(pow) {
			return pow[k-1]
		}
		need := k - len(pow) // entries beyond the table: exponents 64..k-1
		cur := ext.Load()
		if cur != nil && len(*cur) >= need {
			return (*cur)[need-1]
		}
		// Extend by the same successive multiplication the fallback loop
		// performed, continuing from the last memoized value.
		var grown []float64
		p := pow[len(pow)-1]
		if cur != nil {
			grown = append(grown, *cur...)
			p = grown[len(grown)-1]
		}
		for len(grown) < need {
			p *= beta
			grown = append(grown, p)
		}
		if latest := ext.Load(); latest == nil || len(*latest) < len(grown) {
			ext.Store(&grown)
		}
		return grown[need-1]
	}
}

// defaultCapture is the shared GeometricCapture(0.5) instance Config
// defaulting binds, so constructing a channel per trial does not allocate
// a fresh closure and power table each time.
var defaultCapture = GeometricCapture(0.5)

// InverseCapture returns the alternative model P(capture | k) = 1/k.
func InverseCapture() CaptureModel {
	return func(k int) float64 {
		if k <= 1 {
			return 1
		}
		return 1 / float64(k)
	}
}

// NoCapture returns a model where simultaneous frames always collide
// destructively: only a lone reply can be decoded. Combined with
// Traits.CaptureEffect == false this gives the idealized 2+ radio in which
// a decode proves a singleton bin.
func NoCapture() CaptureModel {
	return func(k int) float64 {
		if k <= 1 {
			return 1
		}
		return 0
	}
}

// Config selects the radio behaviour of the abstract channel.
type Config struct {
	// Model is the collision model (1+ or 2+).
	Model query.CollisionModel
	// Capture is the capture-effect model for the 2+ radio. Nil means
	// GeometricCapture(0.5). Ignored under 1+.
	Capture CaptureModel
	// CaptureEffectPresent declares whether decodes may hide extra
	// repliers. Set false only together with NoCapture to model the
	// idealized radio.
	CaptureEffectPresent bool
	// MissProb is the probability that any individual reply goes
	// unheard (radio irregularity). A bin responds Empty when every
	// reply is missed — a false negative.
	MissProb float64
	// FalseActiveProb is the probability that interference makes an
	// all-negative bin look Active. Pollcast's CCA sensing is exposed
	// to this; backcast's HACK matching is not (Section III-B).
	FalseActiveProb float64
}

// DefaultConfig returns the ideal 1+ channel used for the paper's main
// simulations.
func DefaultConfig() Config {
	return Config{Model: query.OnePlus}
}

// TwoPlusConfig returns the default 2+ channel: capture effect present with
// the geometric model at beta = 0.5.
func TwoPlusConfig() Config {
	return Config{
		Model:                query.TwoPlus,
		Capture:              defaultCapture,
		CaptureEffectPresent: true,
	}
}

// Channel is one query session against a fixed ground truth. It implements
// query.Querier. Not safe for concurrent use.
type Channel struct {
	positives *bitset.Set
	cfg       Config
	r         *rng.Source
	stats     TxStats
	// heard is reused across queries to keep the per-poll hot path
	// allocation-free.
	heard []int
	// binSet is the reused bin bitset of the word-parallel query fast
	// path (see Query); sized to the population on first use.
	binSet *bitset.Set
	// sampleBuf and idxBuf are ResetRandom's reused sampling buffers.
	sampleBuf, idxBuf []int
	// posIDs mirrors positives as a sorted ID slice — the sparse side of
	// the poll fast path. With d = |positives| ≪ words(n), counting a
	// rendered bin against d ids beats the word-parallel sweep; see
	// queryLossless. It is snapshotted at construction/reset, which is
	// sound because the positive set is fixed for a session's lifetime.
	posIDs []int
}

// samplePositives draws x distinct positives over [0, n): the dense
// partial-Fisher-Yates sampler below idset.SparseCutover — bit-identical
// to the historical Sample call, so every committed figure is unchanged —
// and Floyd's sparse sampler at or above it, where the dense sampler's
// length-n scratch (80 MB at N=10^7) would dominate a trial's footprint.
// Both RandomPositives and ResetRandom route through here, so pooled and
// fresh channels always draw the same sequence.
func samplePositives(n, x int, r *rng.Source, dst, idx []int) (out, scratch []int) {
	if n >= idset.SparseCutover {
		return r.AppendSampleSparse(n, x, dst[:0]), idx
	}
	return r.SampleInto(n, x, dst, idx)
}

// TxStats counts the radio work a session caused — the energy side of the
// paper's motivation. Replies counts individual reply transmissions by
// positive nodes (each reply costs its sender one frame, collided or not);
// Polls counts initiator poll broadcasts.
type TxStats struct {
	Polls   int
	Replies int
}

// New creates a channel over participants {0..n-1} where exactly the
// listed nodes are positive. It panics on out-of-range IDs.
func New(n int, positives []int, cfg Config, r *rng.Source) *Channel {
	set := bitset.New(n)
	for _, id := range positives {
		set.Add(id)
	}
	return NewFromSet(set, cfg, r)
}

// NewFromSet is like New but takes ownership of an existing positive set.
// The membership is snapshotted; the caller must not mutate the set
// afterwards (PositiveSet documents the same).
func NewFromSet(positives *bitset.Set, cfg Config, r *rng.Source) *Channel {
	if cfg.Capture == nil {
		cfg.Capture = defaultCapture
	}
	return &Channel{positives: positives, cfg: cfg, r: r, posIDs: positives.Members()}
}

// RandomPositives draws x distinct positive nodes out of n uniformly at
// random and returns the channel plus the chosen set.
func RandomPositives(n, x int, cfg Config, r *rng.Source) (*Channel, *bitset.Set) {
	set := bitset.New(n)
	ids, _ := samplePositives(n, x, r, nil, nil)
	for _, id := range ids {
		set.Add(id)
	}
	return NewFromSet(set, cfg, r), set
}

// ResetRandom reinitializes the channel in place for a fresh trial: the
// positive set is redrawn exactly as RandomPositives draws it (the same
// samplePositives sequence on r, so pooled and fresh channels are
// bit-identical), the
// transmission ledger is zeroed, and every internal buffer is recycled.
// Pooled trial state calls ResetRandom between trials instead of
// allocating a new channel.
func (c *Channel) ResetRandom(n, x int, cfg Config, r *rng.Source) {
	if cfg.Capture == nil {
		cfg.Capture = defaultCapture
	}
	if c.positives == nil {
		c.positives = bitset.New(n)
	} else {
		c.positives.Reset(n)
	}
	c.sampleBuf, c.idxBuf = samplePositives(n, x, r, c.sampleBuf, c.idxBuf)
	for _, id := range c.sampleBuf {
		c.positives.Add(id)
	}
	c.posIDs = append(c.posIDs[:0], c.sampleBuf...)
	sort.Ints(c.posIDs)
	c.cfg = cfg
	c.r = r
	c.stats = TxStats{}
}

// PositiveSet returns the channel's ground-truth positive set. The set is
// owned by the channel; callers must not mutate it.
func (c *Channel) PositiveSet() *bitset.Set { return c.positives }

// Traits implements query.Querier.
func (c *Channel) Traits() query.Traits {
	return query.Traits{Model: c.cfg.Model, CaptureEffect: c.cfg.CaptureEffectPresent}
}

// Positives reports the ground-truth number of positive nodes.
func (c *Channel) Positives() int { return c.positives.Len() }

// IsPositive reports the ground truth for one node.
func (c *Channel) IsPositive(id int) bool { return c.positives.Contains(id) }

// Stats returns the transmission counts accumulated so far.
func (c *Channel) Stats() TxStats { return c.stats }

// Lossless reports whether every response is sound: no reply can be missed
// and no interference can fake activity, so each Response's Min/MaxPositives
// bounds hold against ground truth. The audit layer uses this to decide
// whether Knowledge-bound violations are substrate loss or algorithm bugs.
func (c *Channel) Lossless() bool {
	return c.cfg.MissProb == 0 && c.cfg.FalseActiveProb == 0
}

// TraceAttrs implements trace.Annotator: the abstract channel annotates
// session spans with its radio configuration and transmission ledger.
func (c *Channel) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.StringAttr("substrate", "fastsim"),
		trace.StringAttr("collision_model", c.cfg.Model.String()),
		trace.BoolAttr("capture_effect", c.cfg.CaptureEffectPresent),
		trace.FloatAttr("miss_prob", c.cfg.MissProb),
		trace.FloatAttr("false_active_prob", c.cfg.FalseActiveProb),
		trace.IntAttr("tx_polls", c.stats.Polls),
		trace.IntAttr("tx_replies", c.stats.Replies),
	}
}

// Query implements query.Querier: it polls the bin and reports what the
// initiator's radio observes.
//
// With no per-reply loss configured every bin positive is heard, so the
// response depends only on |bin ∩ positives|: the fast path renders the
// bin into a reused bitset and counts the intersection word-parallel
// instead of walking the positive set per node. Bernoulli(0) consumes no
// randomness, so skipping the per-reply draws leaves the RNG stream — and
// therefore every trace and figure — bit-identical to the slow path's.
func (c *Channel) Query(bin []int) query.Response {
	if c.cfg.MissProb == 0 {
		return c.queryLossless(bin)
	}
	c.stats.Polls++
	// heard collects the positive repliers whose frames reach the
	// initiator.
	heard := c.heard[:0]
	for _, id := range bin {
		if !c.positives.Contains(id) {
			continue
		}
		c.stats.Replies++
		if !c.r.Bernoulli(c.cfg.MissProb) {
			heard = append(heard, id)
		}
	}
	c.heard = heard
	if len(heard) == 0 {
		if c.cfg.FalseActiveProb > 0 && c.r.Bernoulli(c.cfg.FalseActiveProb) {
			// Interference: energy sensing reports activity. Even a
			// 2+ radio cannot decode interference, so it looks like
			// an undecodable burst; report Active under 1+ and
			// Collision under 2+ would over-claim (>=2), so the
			// conservative interference artifact is Active/Collision
			// per model. Backcast deployments set this to 0.
			if c.cfg.Model == query.OnePlus {
				return query.Response{Kind: query.Active}
			}
			return query.Response{Kind: query.Collision}
		}
		return query.Response{Kind: query.Empty}
	}
	if c.cfg.Model == query.OnePlus {
		return query.Response{Kind: query.Active}
	}
	// 2+ radio: try to capture one frame.
	if c.r.Bernoulli(c.cfg.Capture(len(heard))) {
		return query.Response{
			Kind:      query.Decoded,
			DecodedID: heard[c.r.Intn(len(heard))],
		}
	}
	return query.Response{Kind: query.Collision}
}

// queryLossless is the MissProb == 0 fast path: no reply can be missed, so
// heard would equal the bin's positives in bin order and the response
// depends only on k = |bin ∩ positives|. Counting picks the cheapest of
// three shapes:
//
//   - small bins (the common case once a session is past its opening
//     rounds) scan the bin against the positive bitset, collecting the
//     hits — O(|bin|), no render;
//   - large bins render into the reused bin bitset, then count by
//     whichever side is smaller: with d = |positives| below the word
//     count, probing the d sorted positive ids against the rendered bin
//     is O(d) where the word sweep is O(n/64) — the min(|bin|, d) side
//     selection that matters at sparse scale — and otherwise the
//     word-parallel IntersectionCount runs exactly as before.
//
// The decoded replier — uniform over heard in the slow path — comes from
// the same Intn(k) draw: directly as hits[j] when the small-bin scan
// collected the hits (they are in bin order, exactly heard), else by
// scanning the bin for its j-th positive, which is exactly heard[j].
// Either way k is exact and the selection order is the bin order, so
// responses and the RNG draw sequence match the slow path's bit for bit
// at every population — decode events are rare (at most one per decoded
// response), so the rendered paths never pay the scan in steady state.
func (c *Channel) queryLossless(bin []int) query.Response {
	c.stats.Polls++
	hits := c.heard[:0]
	collected := true
	var k int
	if words := (c.positives.Cap() + 63) / 64; len(bin) < 4*words {
		for _, id := range bin {
			if c.positives.Contains(id) {
				hits = append(hits, id)
			}
		}
		k = len(hits)
	} else {
		if c.binSet == nil || c.binSet.Cap() != c.positives.Cap() {
			c.binSet = bitset.New(c.positives.Cap())
		}
		c.binSet.AddAll(bin)
		if len(c.posIDs) < words {
			for _, id := range c.posIDs {
				if c.binSet.Contains(id) {
					k++
				}
			}
		} else {
			k = c.binSet.IntersectionCount(c.positives)
		}
		collected = false
		c.binSet.Clear()
	}
	c.heard = hits
	c.stats.Replies += k
	if k == 0 {
		if c.cfg.FalseActiveProb > 0 && c.r.Bernoulli(c.cfg.FalseActiveProb) {
			// Interference artifact, exactly as in the slow path.
			if c.cfg.Model == query.OnePlus {
				return query.Response{Kind: query.Active}
			}
			return query.Response{Kind: query.Collision}
		}
		return query.Response{Kind: query.Empty}
	}
	if c.cfg.Model == query.OnePlus {
		return query.Response{Kind: query.Active}
	}
	if c.r.Bernoulli(c.cfg.Capture(k)) {
		j := c.r.Intn(k)
		if collected {
			return query.Response{Kind: query.Decoded, DecodedID: hits[j]}
		}
		for _, id := range bin {
			if c.positives.Contains(id) {
				if j == 0 {
					return query.Response{Kind: query.Decoded, DecodedID: id}
				}
				j--
			}
		}
	}
	return query.Response{Kind: query.Collision}
}
