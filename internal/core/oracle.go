package core

import (
	"math"

	"tcast/internal/binning"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// GroundTruth exposes the true predicate value of each node. Only the
// Oracle algorithm consults it — real initiators cannot — which is exactly
// why the oracle is the lower bound the paper benchmarks ABNS against.
type GroundTruth interface {
	IsPositive(id int) bool
}

// OracleBins returns the Section V-C bin count for known x:
//
//	b = x+1                      if x <= t/2
//	b = 3x-t                     if t/2 < x <= t
//	b = t·(1 + (n-x)/(n-t+1))    if x > t
//
// interpolating the three optimal regimes (x small: eq 4; x ≈ t: 2t bins;
// x = n: t bins).
func OracleBins(n, t, x int) float64 {
	fn, ft, fx := float64(n), float64(t), float64(x)
	switch {
	case fx <= ft/2:
		return fx + 1
	case fx <= ft:
		return 3*fx - ft
	default:
		return ft * (1 + (fn-fx)/(fn-ft+1))
	}
}

// Oracle runs tcast rounds with the bin count computed from the true
// number of positives (re-evaluated every round over the surviving
// candidates). It gives the lower bound on query cost that Figures 5 and 6
// plot. Truth must describe the same ground truth the Querier answers
// from.
type Oracle struct {
	Truth    GroundTruth
	Strategy binning.Strategy
}

// Name implements Algorithm.
func (a Oracle) Name() string { return "Oracle" }

// Run implements Algorithm.
func (a Oracle) Run(q query.Querier, n, t int, r *rng.Source) (Result, error) {
	return a.RunIn(nil, q, n, t, r)
}

// RunIn implements ArenaRunner: Run with pooled session state.
func (a Oracle) RunIn(ar *Arena, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if err := validate(n, t); err != nil {
		return Result{}, err
	}
	s := newSession(ar, q, n, t, r, a.Strategy)
	return s.runWithPolicy(func(round int, prev roundOutcome) int {
		// Count the positives still hiding among the candidates and
		// the threshold still to be proven. The members land in the
		// session's scratch buffer so the count allocates nothing.
		x := 0
		s.scratch = s.k.Candidates.AppendMembers(s.scratch[:0])
		for _, id := range s.scratch {
			if a.Truth.IsPositive(id) {
				x++
			}
		}
		nRem := s.k.Candidates.Len()
		tRem := t - s.k.Confirmed
		if tRem < 1 {
			tRem = 1
		}
		return int(math.Round(OracleBins(nRem, tRem, x)))
	})
}
