package core

import (
	"tcast/internal/binning"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// TwoTBins is Algorithm 1: every round the remaining candidates are split
// into 2t equal-sized random bins and polled in order. Silent bins are
// discarded; the round guarantees either t non-empty bins (threshold
// reached) or at least t silent bins (candidate set at least halved), so
// the query cost is bounded by 2t·log(N/2t) in the worst case.
type TwoTBins struct {
	// Strategy selects the partition; nil means random equal-sized bins
	// as in the paper (the deterministic variant of [4] is available for
	// ablation).
	Strategy binning.Strategy
}

// Name implements Algorithm.
func (a TwoTBins) Name() string { return "2tBins" }

// Run implements Algorithm.
func (a TwoTBins) Run(q query.Querier, n, t int, r *rng.Source) (Result, error) {
	return a.RunIn(nil, q, n, t, r)
}

// RunIn implements ArenaRunner: Run with pooled session state.
func (a TwoTBins) RunIn(ar *Arena, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if err := validate(n, t); err != nil {
		return Result{}, err
	}
	s := newSession(ar, q, n, t, r, a.Strategy)
	return s.runWithPolicy(func(round int, prev roundOutcome) int {
		return 2 * t
	})
}

// ExpVariant selects the growth rule of the Exponential Increase
// algorithm.
type ExpVariant int

const (
	// ExpDouble is Algorithm 2 as published: binNum starts at 2 and
	// doubles every round.
	ExpDouble ExpVariant = iota
	// ExpPauseAndContinue is the paper's first ablation: the bin count
	// does not double in rounds that eliminated a significant fraction
	// of candidates ("pause"), and doubles otherwise.
	ExpPauseAndContinue
	// ExpFourfold is the paper's second ablation: grow four-fold instead
	// of two-fold after a round in which every polled bin was non-empty.
	ExpFourfold
)

// String implements fmt.Stringer.
func (v ExpVariant) String() string {
	switch v {
	case ExpDouble:
		return "double"
	case ExpPauseAndContinue:
		return "pause-and-continue"
	case ExpFourfold:
		return "fourfold"
	default:
		return "unknown"
	}
}

// ExpIncrease is Algorithm 2: start with two bins to discard large
// negative populations quickly (good when x << t) and double the bin count
// each round so the x >> t case is also handled. The paper's two
// experimental variants are selectable for ablation; Section IV-B reports
// "neither of them gave a consistent improvement".
type ExpIncrease struct {
	Variant  ExpVariant
	Strategy binning.Strategy
	// PauseFraction is the candidate-elimination fraction above which
	// the pause-and-continue variant keeps the current bin count.
	// Zero means 0.5 (at least half the candidates eliminated).
	PauseFraction float64
}

// Name implements Algorithm.
func (a ExpIncrease) Name() string {
	if a.Variant == ExpDouble {
		return "ExpIncrease"
	}
	return "ExpIncrease(" + a.Variant.String() + ")"
}

// Run implements Algorithm.
func (a ExpIncrease) Run(q query.Querier, n, t int, r *rng.Source) (Result, error) {
	return a.RunIn(nil, q, n, t, r)
}

// RunIn implements ArenaRunner: Run with pooled session state.
func (a ExpIncrease) RunIn(ar *Arena, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if err := validate(n, t); err != nil {
		return Result{}, err
	}
	pause := a.PauseFraction
	if pause == 0 {
		pause = 0.5
	}
	s := newSession(ar, q, n, t, r, a.Strategy)
	binNum := 2
	candidatesBefore := n
	return s.runWithPolicy(func(round int, prev roundOutcome) int {
		if round == 1 {
			return binNum
		}
		switch a.Variant {
		case ExpPauseAndContinue:
			now := s.k.Candidates.Len()
			eliminated := candidatesBefore - now
			if float64(eliminated) < pause*float64(candidatesBefore) {
				binNum *= 2
			}
			candidatesBefore = now
		case ExpFourfold:
			if prev.emptyBins == 0 {
				binNum *= 4
			} else {
				binNum *= 2
			}
		default:
			binNum *= 2
		}
		return binNum
	})
}
