package core

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func TestOptimalBins(t *testing.T) {
	for p, want := range map[float64]float64{0: 1, 1: 2, 5: 6, -3: 1} {
		if got := OptimalBins(p); got != want {
			t.Errorf("OptimalBins(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestEstimatePositivesInvertsExpectation(t *testing.T) {
	// If e equals the expected empty count for a given p, equation 6
	// must return (approximately) p back.
	for _, tc := range []struct {
		b int
		p float64
	}{
		{10, 5}, {20, 8}, {33, 16}, {8, 2},
	} {
		expEmpty := math.Pow(1-1/float64(tc.b), tc.p) * float64(tc.b)
		got := EstimatePositives(int(math.Round(expEmpty)), tc.b, 1e9)
		if math.Abs(got-tc.p) > 1.5 {
			t.Errorf("b=%d p=%v: estimate = %v", tc.b, tc.p, got)
		}
	}
}

func TestEstimatePositivesClamps(t *testing.T) {
	// e = 0 would be -inf: clamped to a finite, positive estimate.
	if got := EstimatePositives(0, 10, 100); math.IsInf(got, 0) || got < 0 {
		t.Fatalf("e=0 estimate = %v", got)
	}
	// e >= b is clamped to b-0.5, giving a small but nonzero estimate.
	if got := EstimatePositives(12, 10, 100); got < 0 || got > 1 {
		t.Fatalf("e>b estimate = %v, want within [0, 1]", got)
	}
	// Degenerate bin counts return maxP.
	if got := EstimatePositives(0, 1, 77); got != 77 {
		t.Fatalf("b=1 estimate = %v, want maxP", got)
	}
	if got := EstimatePositives(0, 0, 77); got != 77 {
		t.Fatalf("b=0 estimate = %v, want maxP", got)
	}
	// maxP cap applies.
	if got := EstimatePositives(1, 1000, 5); got != 5 {
		t.Fatalf("cap estimate = %v, want 5", got)
	}
}

func TestQuickEstimateMonotoneInEmptyBins(t *testing.T) {
	// More empty bins must never increase the positive-count estimate.
	f := func(bRaw, e1Raw, e2Raw uint8) bool {
		b := int(bRaw%50) + 2
		e1 := int(e1Raw) % (b + 1)
		e2 := int(e2Raw) % (b + 1)
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return EstimatePositives(e2, b, 1e9) <= EstimatePositives(e1, b, 1e9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestABNSNames(t *testing.T) {
	if (ABNS{P0: 1}).Name() != "ABNS(p0=t)" {
		t.Error("P0=1 name wrong")
	}
	if (ABNS{}).Name() != "ABNS(p0=2t)" || (ABNS{P0: 2}).Name() != "ABNS(p0=2t)" {
		t.Error("default name wrong")
	}
	if (ABNS{P0: 3}).Name() != "ABNS" {
		t.Error("generic name wrong")
	}
	if (ABNS{P0: 1, Label: "custom"}).Name() != "custom" {
		t.Error("label override ignored")
	}
}

func TestABNSSmallP0CheapForSmallX(t *testing.T) {
	// Fig 5: for x <= t/2, ABNS(p0=t) undercuts both 2tBins and
	// ABNS(p0=2t) at the left edge.
	const n, th, runs = 128, 16, 400
	small := avgQueries(t, plain(ABNS{P0: 1}), n, th, 2, runs, onePlus(), 90)
	twoT := avgQueries(t, plain(TwoTBins{}), n, th, 2, runs, onePlus(), 91)
	if small >= twoT {
		t.Fatalf("x<<t: ABNS(p0=t) %v not cheaper than 2tBins %v", small, twoT)
	}
}

func TestABNSOracleGapSmallForLargeX(t *testing.T) {
	// Fig 5: 2tBins performs almost as well as the Oracle when x > t/2.
	const n, th, runs = 128, 16, 400
	for _, x := range []int{16, 32, 64} {
		twoT := avgQueries(t, plain(TwoTBins{}), n, th, x, runs, onePlus(), 100+uint64(x))
		oracle := avgQueries(t, func(ch algChannel) Algorithm { return Oracle{Truth: ch} },
			n, th, x, runs, onePlus(), 200+uint64(x))
		if twoT > 2.2*oracle {
			t.Errorf("x=%d: 2tBins %v far above oracle %v", x, twoT, oracle)
		}
	}
}

func TestOracleBeatsTwoTBinsForSmallX(t *testing.T) {
	// Fig 5: for x <= t/2 "the gap between 2tBins and Oracle increases
	// as p decreases".
	const n, th, runs = 128, 16, 400
	twoT := avgQueries(t, plain(TwoTBins{}), n, th, 1, runs, onePlus(), 110)
	oracle := avgQueries(t, func(ch algChannel) Algorithm { return Oracle{Truth: ch} },
		n, th, 1, runs, onePlus(), 111)
	if oracle >= twoT*0.6 {
		t.Fatalf("oracle %v not clearly below 2tBins %v at x=1", oracle, twoT)
	}
}

func TestProbABNSNearOracle(t *testing.T) {
	// Fig 6: ProbABNS "performs almost as good as oracle" across
	// regimes.
	const n, th, runs = 128, 16, 400
	for _, x := range []int{2, 8, 16, 24, 64} {
		prob := avgQueries(t, plain(ProbABNS{}), n, th, x, runs, onePlus(), 300+uint64(x))
		oracle := avgQueries(t, func(ch algChannel) Algorithm { return Oracle{Truth: ch} },
			n, th, x, runs, onePlus(), 400+uint64(x))
		if prob > 2.5*oracle+3 {
			t.Errorf("x=%d: ProbABNS %v far above oracle %v", x, prob, oracle)
		}
	}
}

func TestProbABNSFixesBothABNSWeaknesses(t *testing.T) {
	// Fig 6: ProbABNS eliminates ABNS(p0=t)'s overhead for t < x < 2t
	// and ABNS(p0=2t)'s overhead for x < t/2.
	const n, th, runs = 128, 16, 400
	probSmall := avgQueries(t, plain(ProbABNS{}), n, th, 2, runs, onePlus(), 500)
	p2tSmall := avgQueries(t, plain(ABNS{P0: 2}), n, th, 2, runs, onePlus(), 501)
	if probSmall >= p2tSmall {
		t.Errorf("x<t/2: ProbABNS %v not cheaper than ABNS(p0=2t) %v", probSmall, p2tSmall)
	}
	probMid := avgQueries(t, plain(ProbABNS{}), n, th, 24, runs, onePlus(), 502)
	p1tMid := avgQueries(t, plain(ABNS{P0: 1}), n, th, 24, runs, onePlus(), 503)
	if probMid > p1tMid*1.15 {
		t.Errorf("t<x<2t: ProbABNS %v above ABNS(p0=t) %v", probMid, p1tMid)
	}
}

func TestOracleBinsFormula(t *testing.T) {
	cases := []struct {
		n, t, x int
		want    float64
	}{
		{128, 16, 0, 1},    // x+1
		{128, 16, 8, 9},    // boundary x = t/2 uses x+1
		{128, 16, 12, 20},  // 3x - t
		{128, 16, 16, 32},  // 3x - t = 2t at x = t
		{128, 16, 128, 16}, // x = n gives exactly t
	}
	for _, c := range cases {
		if got := OracleBins(c.n, c.t, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("OracleBins(%d,%d,%d) = %v, want %v", c.n, c.t, c.x, got, c.want)
		}
	}
	// x > t interpolation stays within (t, 2t].
	for x := 17; x < 128; x++ {
		b := OracleBins(128, 16, x)
		if b <= 16 || b > 32+1e-9 {
			t.Fatalf("OracleBins(128,16,%d) = %v outside (t, 2t]", x, b)
		}
	}
}

func TestOracleZeroPositivesOneQuery(t *testing.T) {
	// x = 0: the oracle uses a single bin spanning everyone; one silent
	// poll decides.
	res := checkCorrect(t, func(ch algChannel) Algorithm { return Oracle{Truth: ch} },
		128, 16, 0, onePlus(), 7)
	if res.Queries != 1 {
		t.Fatalf("queries = %d, want 1", res.Queries)
	}
}

func TestABNSRoundsBounded(t *testing.T) {
	// The adaptive estimate must not livelock even in the stubborn
	// region x ≈ t.
	const n, th = 256, 32
	root := rng.New(8)
	for i := 0; i < 50; i++ {
		r := root.Split(uint64(i))
		res := runOne(t, plain(ABNS{P0: 1}), n, th, th, onePlus(), r.Uint64())
		if res.Rounds > 200 {
			t.Fatalf("trial %d: %d rounds", i, res.Rounds)
		}
	}
}
