package core

import (
	"fmt"
	"math"

	"tcast/internal/binning"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// This file implements the Section VI probabilistic model: when the
// positive count x follows a bimodal distribution (quiet mode near μ1,
// activity mode near μ2), repeated probabilistic sampling bins answer the
// threshold question with high probability in O(1) queries, independent of
// n, x and t.

// BinNonEmptyProb returns 1 − (1 − 1/b)^x, the probability that a
// sampling bin (each node included with probability 1/b) is non-empty when
// x nodes are positive (Section V-A / equations 7a-7b).
func BinNonEmptyProb(b float64, x float64) float64 {
	if b <= 1 {
		return 1
	}
	if x <= 0 {
		return 0
	}
	return 1 - math.Pow(1-1/b, x)
}

// OptimalSamplingBins returns the b that maximizes the per-query gap
// p_r − p_l = (1−1/b)^tl − (1−1/b)^tr between the quiet and active
// hypotheses. Setting the derivative to zero gives the closed form
// u^(tr−tl) = tl/tr with u = 1 − 1/b. For tl <= 0 any non-empty bin
// already proves activity, so b = 1 (sample everyone).
func OptimalSamplingBins(tl, tr float64) float64 {
	if tr <= tl {
		panic(fmt.Sprintf("core: boundaries not separated: tl=%v tr=%v", tl, tr))
	}
	if tl <= 0 {
		return 1
	}
	u := math.Pow(tl/tr, 1/(tr-tl))
	return 1 / (1 - u)
}

// RequiredRepeatsPaper returns the repeat count r from equation 10 as
// printed, r ≥ 2·log(1/δ)/(ε·log 2e), where ε is the per-query decision
// tolerance (half the gap between the two hypotheses' non-empty
// probabilities). The ratio of logarithms is base-independent.
func RequiredRepeatsPaper(delta, eps float64) int {
	if delta <= 0 || delta >= 1 || eps <= 0 {
		panic(fmt.Sprintf("core: invalid delta=%v or eps=%v", delta, eps))
	}
	r := 2 * math.Log(1/delta) / (eps * math.Log(2*math.E))
	return int(math.Ceil(r))
}

// RequiredRepeatsHoeffding returns the textbook additive-Hoeffding repeat
// count r ≥ ln(2/δ)/(2ε²), kept alongside the paper's formula for
// comparison (DESIGN.md discusses the discrepancy).
func RequiredRepeatsHoeffding(delta, eps float64) int {
	if delta <= 0 || delta >= 1 || eps <= 0 {
		panic(fmt.Sprintf("core: invalid delta=%v or eps=%v", delta, eps))
	}
	r := math.Log(2/delta) / (2 * eps * eps)
	return int(math.Ceil(r))
}

// BimodalDetector answers "is there activity?" for workloads whose
// positive count is bimodal. It is configured from the two decision
// boundaries t_l and t_r (Section VI-A: t_l = μ1 + 2σ1, t_r = μ2 − 2σ2).
type BimodalDetector struct {
	// B is the sampling-bin parameter: each node joins a probe with
	// probability 1/B.
	B float64
	// R is the number of repeated probes.
	R int
	// CutOff is the decision threshold on the count of non-empty
	// probes, (m1+m2)/2.
	CutOff float64
	// PLow and PHigh are the per-probe non-empty probabilities under
	// the two hypotheses.
	PLow, PHigh float64
}

// NewBimodalDetector builds a detector for boundaries (tl, tr) using the
// gap-optimal sampling bin parameter and exactly r repeats. It panics if
// tl >= tr (no separation: the probabilistic model does not apply).
func NewBimodalDetector(tl, tr float64, r int) BimodalDetector {
	if r < 1 {
		panic("core: detector needs at least one repeat")
	}
	b := OptimalSamplingBins(tl, tr)
	pl := BinNonEmptyProb(b, tl)
	ph := BinNonEmptyProb(b, tr)
	return BimodalDetector{
		B:      b,
		R:      r,
		CutOff: float64(r) * (pl + ph) / 2,
		PLow:   pl,
		PHigh:  ph,
	}
}

// NewBimodalDetectorDelta builds a detector whose repeat count is chosen
// by equation 10 for failure probability delta.
func NewBimodalDetectorDelta(tl, tr float64, delta float64) BimodalDetector {
	b := OptimalSamplingBins(tl, tr)
	eps := (BinNonEmptyProb(b, tr) - BinNonEmptyProb(b, tl)) / 2
	return NewBimodalDetector(tl, tr, RequiredRepeatsPaper(delta, eps))
}

// Gap returns Δ/r = p_high − p_low, the per-query separation between the
// hypotheses.
func (d BimodalDetector) Gap() float64 { return d.PHigh - d.PLow }

// Detect runs the R probes over the given participants and reports whether
// activity (the high mode) is detected, plus the number of queries spent.
// Probes that sample no nodes still consume a query: the initiator cannot
// know the probe is empty of nodes, because membership is decided by each
// node hashing the probe nonce locally.
func (d BimodalDetector) Detect(q query.Querier, members []int, r *rng.Source) (activity bool, queries int) {
	nonEmpty := 0
	for i := 0; i < d.R; i++ {
		probe := binning.ProbabilisticBin(members, 1/d.B, r)
		queries++
		if q.Query(probe).Kind != query.Empty {
			nonEmpty++
		}
	}
	return float64(nonEmpty) > d.CutOff, queries
}

// DeltaGap returns (m1, m2, Δ) for r repeats — the quantities of Figure 8:
// the expected non-empty counts under the two hypotheses and the gap
// between them.
func (d BimodalDetector) DeltaGap() (m1, m2, delta float64) {
	m1 = float64(d.R) * d.PLow
	m2 = float64(d.R) * d.PHigh
	return m1, m2, m2 - m1
}
