// Package core implements the paper's threshold-querying algorithms — the
// tcast family — on top of the query.Querier abstraction:
//
//   - 2tBins (Algorithm 1),
//   - Exponential Increase (Algorithm 2) and its two ablation variants,
//   - ABNS, adaptive bin number selection (Algorithm 3, eqs 4 and 6),
//   - Probabilistic ABNS (Section V-D),
//   - the Oracle bin selector (Section V-C, the lower bound),
//   - the bimodal probabilistic detector (Section VI, eqs 7-10).
//
// All algorithms answer the same question: do at least t of the n
// participant nodes hold the poll predicate? They differ only in how they
// re-group the candidate nodes between query rounds.
package core

import (
	"errors"
	"fmt"

	"tcast/internal/binning"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// Result reports one completed threshold-query session.
type Result struct {
	// Decision is the algorithm's answer to "x >= t?".
	Decision bool
	// Queries is the number of group polls issued — the paper's cost
	// metric. Bins containing no nodes are never polled and cost
	// nothing (Section IV-C).
	Queries int
	// Rounds is the number of re-binning rounds started.
	Rounds int
	// Confirmed is the number of positives identified by 2+ decodes.
	Confirmed int
}

// Algorithm is a threshold-querying strategy. Run executes one session
// over participants {0..n-1} with threshold t, drawing randomness from r.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	Run(q query.Querier, n, t int, r *rng.Source) (Result, error)
}

// ErrRoundLimit is returned when an algorithm fails to converge within the
// safety cap on rounds; it indicates a logic error or an adversarial
// channel, never a legal input on an ideal radio.
var ErrRoundLimit = errors.New("core: round limit exceeded")

// maxRounds bounds any session. Every paper algorithm halves (or at worst
// keeps) the candidate set with high probability each round, so legitimate
// sessions finish in O(log n) rounds; the cap only exists to convert
// would-be livelocks into errors.
const maxRounds = 100000

// session carries the per-run state shared by the round-based algorithms.
type session struct {
	q query.Querier
	k *query.Knowledge
	r *rng.Source
	// custom is a caller-supplied partition strategy; nil selects the
	// default random equal-sized partition on a zero-allocation fast
	// path (scratch and binsBuf are reused across rounds).
	custom  binning.Strategy
	scratch []int
	binsBuf [][]int
	res     Result
}

func newSession(q query.Querier, n, t int, r *rng.Source, strategy binning.Strategy) *session {
	return &session{q: q, k: query.NewKnowledge(n, t), r: r, custom: strategy}
}

// partition splits the current candidates into b bins, returning only the
// bins that contain nodes. The default path shuffles a reused buffer in
// place and slices it, drawing exactly the same random sequence as
// binning.RandomPartition.
func (s *session) partition(b int) [][]int {
	s.scratch = s.k.Candidates.AppendMembers(s.scratch[:0])
	members := s.scratch
	if s.custom != nil {
		return binning.NonEmpty(s.custom(members, b, s.r))
	}
	s.r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	bins := s.binsBuf[:0]
	base, extra := len(members)/b, len(members)%b
	pos := 0
	for i := 0; i < b; i++ {
		size := base
		if i < extra {
			size++
		}
		if size == 0 {
			break // node-less bins are never polled (Section IV-C)
		}
		bins = append(bins, members[pos:pos+size])
		pos += size
	}
	s.binsBuf = bins
	return bins
}

// decision returns the session's current resolution state.
func (s *session) decision() (answer, decided bool) { return s.k.Decision() }

// queryBin issues one group poll and folds the response into the ledger.
// It returns the response and whether the session is now decided.
func (s *session) queryBin(bin []int) (query.Response, bool) {
	resp := s.q.Query(bin)
	s.res.Queries++
	s.k.Apply(bin, resp, s.q.Traits())
	_, decided := s.k.Decision()
	return resp, decided
}

// roundOutcome summarizes one completed (or cut-short) round.
type roundOutcome struct {
	queried   int // bins actually polled (non-empty of nodes)
	emptyBins int // polled bins that answered Empty
	decided   bool
}

// runRound partitions the current candidates into b bins with the
// session's strategy and polls them in order, stopping early the moment
// the threshold question resolves (Algorithm 1 lines 11 and 14).
func (s *session) runRound(b int) roundOutcome {
	s.res.Rounds++
	// Round boundary hook for structured tracing: queriers that implement
	// trace.SpanQuerier's TraceRound (asserted anonymously so core does
	// not depend on the trace package) learn where each re-binning round
	// starts. The hook receives no channel data and consumes no
	// randomness, so traced and bare runs are bit-identical.
	if rt, ok := s.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(s.res.Rounds)
	}
	if n := s.k.Candidates.Len(); b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	bins := s.partition(b)
	s.k.StartRound()
	var out roundOutcome
	for _, bin := range bins {
		resp, decided := s.queryBin(bin)
		out.queried++
		if resp.Kind == query.Empty {
			out.emptyBins++
		}
		if decided {
			out.decided = true
			return out
		}
	}
	return out
}

// finish packages the session into a Result once decided.
func (s *session) finish() Result {
	answer, decided := s.k.Decision()
	if !decided {
		panic("core: finish called on undecided session")
	}
	s.res.Decision = answer
	s.res.Confirmed = s.k.Confirmed
	return s.res
}

// runWithPolicy drives rounds until decided, asking nextBins for the bin
// count before each round. nextBins receives the outcome of the previous
// round (zero value before the first round) and the 1-based upcoming round
// number.
func (s *session) runWithPolicy(nextBins func(round int, prev roundOutcome) int) (Result, error) {
	if _, decided := s.decision(); decided {
		return s.finish(), nil
	}
	var prev roundOutcome
	for round := 1; round <= maxRounds; round++ {
		out := s.runRound(nextBins(round, prev))
		if out.decided {
			return s.finish(), nil
		}
		prev = out
	}
	return s.res, fmt.Errorf("%w after %d rounds", ErrRoundLimit, maxRounds)
}

func validate(n, t int) error {
	if n < 0 {
		return fmt.Errorf("core: negative participant count %d", n)
	}
	if t < 0 {
		return fmt.Errorf("core: negative threshold %d", t)
	}
	return nil
}
