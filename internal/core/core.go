// Package core implements the paper's threshold-querying algorithms — the
// tcast family — on top of the query.Querier abstraction:
//
//   - 2tBins (Algorithm 1),
//   - Exponential Increase (Algorithm 2) and its two ablation variants,
//   - ABNS, adaptive bin number selection (Algorithm 3, eqs 4 and 6),
//   - Probabilistic ABNS (Section V-D),
//   - the Oracle bin selector (Section V-C, the lower bound),
//   - the bimodal probabilistic detector (Section VI, eqs 7-10).
//
// All algorithms answer the same question: do at least t of the n
// participant nodes hold the poll predicate? They differ only in how they
// re-group the candidate nodes between query rounds.
package core

import (
	"errors"
	"fmt"

	"tcast/internal/binning"
	"tcast/internal/idset"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// Result reports one completed threshold-query session.
type Result struct {
	// Decision is the algorithm's answer to "x >= t?".
	Decision bool
	// Queries is the number of group polls issued — the paper's cost
	// metric. Bins containing no nodes are never polled and cost
	// nothing (Section IV-C).
	Queries int
	// Rounds is the number of re-binning rounds started.
	Rounds int
	// Confirmed is the number of positives identified by 2+ decodes.
	Confirmed int
}

// Algorithm is a threshold-querying strategy. Run executes one session
// over participants {0..n-1} with threshold t, drawing randomness from r.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	Run(q query.Querier, n, t int, r *rng.Source) (Result, error)
}

// ErrRoundLimit is returned when an algorithm fails to converge within the
// safety cap on rounds; it indicates a logic error or an adversarial
// channel, never a legal input on an ideal radio.
var ErrRoundLimit = errors.New("core: round limit exceeded")

// maxRounds bounds any session. Every paper algorithm halves (or at worst
// keeps) the candidate set with high probability each round, so legitimate
// sessions finish in O(log n) rounds; the cap only exists to convert
// would-be livelocks into errors.
const maxRounds = 100000

// Arena pools the per-session allocations — the knowledge ledger (with
// its candidate bitset), the session struct, and every partition and probe
// buffer — so a trial loop can run session after session without touching
// the allocator. The zero value is ready; pass it to an algorithm's RunIn
// (or the RunIn helper) and reuse it across runs. An Arena is not safe for
// concurrent use: pool one per worker or per trial slot.
type Arena struct {
	k    *query.Knowledge
	sess session
}

// newSession returns a session over participants {0..n-1} with threshold
// t, drawing its state from the arena when one is supplied (a nil arena
// allocates fresh state, preserving Run's historical behaviour).
func newSession(a *Arena, q query.Querier, n, t int, r *rng.Source, strategy binning.Strategy) *session {
	// Fields at or above the sparse cutover stream their rounds instead
	// of materializing partitions; a custom strategy keeps the classic
	// materialized path, since Strategy's contract is a [][]int.
	streamed := strategy == nil && n >= idset.SparseCutover
	if a == nil {
		return &session{q: q, k: query.NewKnowledge(n, t), r: r, custom: strategy, streamed: streamed}
	}
	if a.k == nil {
		a.k = query.NewKnowledge(n, t)
	} else {
		a.k.Reset(n, t)
	}
	s := &a.sess
	s.q, s.k, s.r, s.custom = q, a.k, r, strategy
	s.streamed = streamed
	s.res = Result{}
	return s
}

// session carries the per-run state shared by the round-based algorithms.
type session struct {
	q query.Querier
	k *query.Knowledge
	r *rng.Source
	// custom is a caller-supplied partition strategy; nil selects the
	// default random equal-sized partition on a zero-allocation fast
	// path (scratch and the partition arena are reused across rounds).
	custom  binning.Strategy
	scratch []int
	arena   binning.Arena
	// probeBuf is ProbABNS's reused probabilistic-bin buffer.
	probeBuf []int
	res      Result
	// streamed selects the sparse round path for fields at or above
	// idset.SparseCutover: rounds draw bins one at a time from a keyed
	// permutation (binning.Streamer) against a frozen rank directory of
	// the candidates (idset.Ranked), so per-round cost is O(candidates)
	// with no O(n) shuffle scratch. Below the cutover the classic
	// materialized path runs, keeping its draw sequence — and every
	// committed figure — byte-identical.
	streamed bool
	stream   binning.Streamer
	ranked   idset.Ranked
	binBuf   []int
}

// partition splits the current candidates into b bins, returning only the
// bins that contain nodes. The default path shuffles the members into the
// session's partition arena, drawing exactly the same random sequence as
// binning.RandomPartition; callers clamp b to the candidate count, so
// every returned bin is non-empty.
func (s *session) partition(b int) [][]int {
	s.scratch = s.k.Candidates.AppendMembers(s.scratch[:0])
	members := s.scratch
	if s.custom != nil {
		return binning.NonEmpty(s.custom(members, b, s.r))
	}
	bins := s.arena.RandomPartition(members, b, s.r)
	// Node-less bins are never polled (Section IV-C); RandomPartition
	// puts them last, so the non-empty bins are a prefix.
	if len(members) < len(bins) {
		bins = bins[:len(members)]
	}
	return bins
}

// decision returns the session's current resolution state.
func (s *session) decision() (answer, decided bool) { return s.k.Decision() }

// queryBin issues one group poll and folds the response into the ledger.
// It returns the response and whether the session is now decided.
func (s *session) queryBin(bin []int) (query.Response, bool) {
	resp := s.q.Query(bin)
	s.res.Queries++
	s.k.Apply(bin, resp, s.q.Traits())
	_, decided := s.k.Decision()
	return resp, decided
}

// roundOutcome summarizes one completed (or cut-short) round.
type roundOutcome struct {
	queried   int // bins actually polled (non-empty of nodes)
	emptyBins int // polled bins that answered Empty
	decided   bool
}

// runRound partitions the current candidates into b bins with the
// session's strategy and polls them in order, stopping early the moment
// the threshold question resolves (Algorithm 1 lines 11 and 14).
func (s *session) runRound(b int) roundOutcome {
	s.res.Rounds++
	// Round boundary hook for structured tracing: queriers that implement
	// trace.SpanQuerier's TraceRound (asserted anonymously so core does
	// not depend on the trace package) learn where each re-binning round
	// starts. The hook receives no channel data and consumes no
	// randomness, so traced and bare runs are bit-identical.
	if rt, ok := s.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(s.res.Rounds)
	}
	if n := s.k.Candidates.Len(); b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	if s.streamed {
		return s.runRoundStreamed(b)
	}
	bins := s.partition(b)
	s.k.StartRound()
	var out roundOutcome
	for _, bin := range bins {
		resp, decided := s.queryBin(bin)
		out.queried++
		if resp.Kind == query.Empty {
			out.emptyBins++
		}
		if decided {
			out.decided = true
			return out
		}
	}
	return out
}

// runRoundStreamed is runRound's sparse-field body: the candidates are
// frozen into a rank directory, one 64-bit key replaces the Fisher-Yates
// shuffle, and each bin is decoded rank-by-rank into one pooled buffer
// just-in-time for its poll. The querier still receives a materialized
// []int per poll — bins must stay concrete for the middleware stack
// (metrics, trace, audit, faults all account bin members) — but only one
// bin exists at a time, so a round's footprint is O(n/b), not O(n).
// Candidate eliminations during the round do not affect the partition:
// like the classic path, bins are drawn against the set as it stood at
// round start (the snapshot), while Apply shrinks the live set.
func (s *session) runRoundStreamed(b int) roundOutcome {
	// Late-session compaction: once a huge field is mostly eliminated
	// (idset's compaction rule), snapshots and membership sweeps drop to
	// O(|candidates|). No-op below the cutover or while still dense.
	s.k.Candidates.Compact()
	s.ranked.Snapshot(s.k.Candidates)
	s.stream.StartPermuted(s.ranked.Len(), b, s.r.Uint64())
	s.k.StartRound()
	var out roundOutcome
	if s.ranked.Len() == 0 {
		// Mirror the classic path: no members, nothing polled.
		return out
	}
	for i := 0; i < b; i++ {
		bin := s.stream.AppendBin(i, s.binBuf[:0])
		for j, rank := range bin {
			bin[j] = s.ranked.Select(rank)
		}
		s.binBuf = bin
		resp, decided := s.queryBin(bin)
		out.queried++
		if resp.Kind == query.Empty {
			out.emptyBins++
		}
		if decided {
			out.decided = true
			return out
		}
	}
	return out
}

// finish packages the session into a Result once decided.
func (s *session) finish() Result {
	answer, decided := s.k.Decision()
	if !decided {
		panic("core: finish called on undecided session")
	}
	s.res.Decision = answer
	s.res.Confirmed = s.k.Confirmed
	return s.res
}

// runWithPolicy drives rounds until decided, asking nextBins for the bin
// count before each round. nextBins receives the outcome of the previous
// round (zero value before the first round) and the 1-based upcoming round
// number.
func (s *session) runWithPolicy(nextBins func(round int, prev roundOutcome) int) (Result, error) {
	if _, decided := s.decision(); decided {
		return s.finish(), nil
	}
	var prev roundOutcome
	for round := 1; round <= maxRounds; round++ {
		out := s.runRound(nextBins(round, prev))
		if out.decided {
			return s.finish(), nil
		}
		prev = out
	}
	return s.res, fmt.Errorf("%w after %d rounds", ErrRoundLimit, maxRounds)
}

// ArenaRunner is implemented by every algorithm in this package: RunIn is
// Run with the session state drawn from (and recycled into) an arena. A
// nil arena is equivalent to Run.
type ArenaRunner interface {
	RunIn(a *Arena, q query.Querier, n, t int, r *rng.Source) (Result, error)
}

// RunIn executes one session of alg with pooled session state when the
// algorithm supports it, falling back to plain Run otherwise. Trial loops
// use it so every tcast algorithm threads the same arena.
func RunIn(a *Arena, alg Algorithm, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if ar, ok := alg.(ArenaRunner); ok {
		return ar.RunIn(a, q, n, t, r)
	}
	return alg.Run(q, n, t, r)
}

func validate(n, t int) error {
	if n < 0 {
		return fmt.Errorf("core: negative participant count %d", n)
	}
	if t < 0 {
		return fmt.Errorf("core: negative threshold %d", t)
	}
	return nil
}
