package core

import (
	"testing"

	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// Every algorithm's RunIn must be bit-identical to Run while the arena is
// recycled across sessions of varying shape — the contract the pooled trial
// loops depend on.
func TestRunInMatchesRunAcrossAlgorithms(t *testing.T) {
	algs := []func(ch *fastsim.Channel) Algorithm{
		func(*fastsim.Channel) Algorithm { return TwoTBins{} },
		func(*fastsim.Channel) Algorithm { return ExpIncrease{} },
		func(*fastsim.Channel) Algorithm { return ExpIncrease{Variant: ExpPauseAndContinue} },
		func(*fastsim.Channel) Algorithm { return ExpIncrease{Variant: ExpFourfold} },
		func(*fastsim.Channel) Algorithm { return ABNS{} },
		func(*fastsim.Channel) Algorithm { return ABNS{P0: 1} },
		func(*fastsim.Channel) Algorithm { return ProbABNS{} },
		func(ch *fastsim.Channel) Algorithm { return Oracle{Truth: ch} },
	}
	cfgs := []fastsim.Config{fastsim.DefaultConfig(), fastsim.TwoPlusConfig()}
	for ai, fac := range algs {
		var arena Arena // shared across every trial of this algorithm
		for _, cfg := range cfgs {
			for seed := uint64(1); seed <= 8; seed++ {
				n := 32 + int(seed%3)*48
				tt := 4 + int(seed%2)*8
				x := int(seed * 3 % 30)

				freshR := rng.New(seed)
				chF, _ := fastsim.RandomPositives(n, x, cfg, freshR.Split(1))
				want, errW := fac(chF).Run(chF, n, tt, freshR.Split(2))

				poolR := rng.New(seed)
				chP, _ := fastsim.RandomPositives(n, x, cfg, poolR.Split(1))
				got, errG := RunIn(&arena, fac(chP), chP, n, tt, poolR.Split(2))

				if (errW == nil) != (errG == nil) {
					t.Fatalf("alg %d seed %d: error mismatch: %v vs %v", ai, seed, errW, errG)
				}
				if got != want {
					t.Fatalf("alg %d seed %d n=%d t=%d x=%d: RunIn %+v, Run %+v", ai, seed, n, tt, x, got, want)
				}
			}
		}
	}
}

// wrapAlg hides the wrapped algorithm's RunIn, exercising the RunIn
// helper's fallback to plain Run.
type wrapAlg struct{ inner Algorithm }

func (a wrapAlg) Name() string { return a.inner.Name() }
func (a wrapAlg) Run(q query.Querier, n, t int, r *rng.Source) (Result, error) {
	return a.inner.Run(q, n, t, r)
}

func TestRunInFallsBackWithoutArenaRunner(t *testing.T) {
	var arena Arena
	r := rng.New(4)
	ch, _ := fastsim.RandomPositives(64, 10, fastsim.DefaultConfig(), r.Split(1))
	want, err := TwoTBins{}.Run(ch, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(4)
	ch2, _ := fastsim.RandomPositives(64, 10, fastsim.DefaultConfig(), r2.Split(1))
	got, err := RunIn(&arena, wrapAlg{TwoTBins{}}, ch2, 64, 8, r2.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fallback RunIn %+v, Run %+v", got, want)
	}
}

func TestRunInNilArena(t *testing.T) {
	r := rng.New(3)
	ch, _ := fastsim.RandomPositives(64, 10, fastsim.DefaultConfig(), r.Split(1))
	want, err := TwoTBins{}.Run(ch, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(3)
	ch2, _ := fastsim.RandomPositives(64, 10, fastsim.DefaultConfig(), r2.Split(1))
	got, err := TwoTBins{}.RunIn(nil, ch2, 64, 8, r2.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("RunIn(nil) %+v, Run %+v", got, want)
	}
}
