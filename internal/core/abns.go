package core

import (
	"math"

	"tcast/internal/binning"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// OptimalBins returns the bin count that maximizes the expected number of
// eliminated nodes per query given the estimate p of positive nodes:
// b = p + 1 (equation 4). The derivation maximizes
// g(b) = (1 - 1/b)^p · n/b, the empty-bin probability times the expected
// bin size.
func OptimalBins(p float64) float64 {
	if p < 0 {
		p = 0
	}
	return p + 1
}

// EstimatePositives inverts the expected empty-bin count to update the
// estimate of x (equation 6):
//
//	p = (log e − log b) / log(1 − 1/b)
//
// where e is the number of empty bins observed among b queried bins.
// The published formula is undefined at the boundaries, so (as documented
// in DESIGN.md) e is clamped to [0.5, b−0.5] before inversion and the
// result to [0, maxP]; for b <= 1 the formula is degenerate and the
// function returns maxP (no information, assume the worst).
func EstimatePositives(emptyBins, queriedBins int, maxP float64) float64 {
	if queriedBins <= 1 {
		return maxP
	}
	b := float64(queriedBins)
	e := float64(emptyBins)
	if e < 0.5 {
		e = 0.5
	}
	if e > b-0.5 {
		e = b - 0.5
	}
	p := (math.Log(e) - math.Log(b)) / math.Log(1-1/b)
	if p < 0 {
		p = 0
	}
	if p > maxP {
		p = maxP
	}
	return p
}

// ABNS is Algorithm 3, Adaptive Bin Number Selection: each round uses
// b = p + 1 bins where p is the running estimate of the number of positive
// nodes, initialized to P0 and re-estimated from the observed empty-bin
// count after every round (equation 6).
type ABNS struct {
	// P0 is the initial estimate p₀ as a multiple of t; the paper
	// evaluates P0 = 1 (p₀ = t) and P0 = 2 (p₀ = 2t). Zero means 2.
	P0 float64
	// Label overrides the algorithm name in experiment output.
	Label    string
	Strategy binning.Strategy
}

// Name implements Algorithm.
func (a ABNS) Name() string {
	if a.Label != "" {
		return a.Label
	}
	switch a.p0Mult() {
	case 1:
		return "ABNS(p0=t)"
	case 2:
		return "ABNS(p0=2t)"
	default:
		return "ABNS"
	}
}

func (a ABNS) p0Mult() float64 {
	if a.P0 == 0 {
		return 2
	}
	return a.P0
}

// Run implements Algorithm.
func (a ABNS) Run(q query.Querier, n, t int, r *rng.Source) (Result, error) {
	return a.RunIn(nil, q, n, t, r)
}

// RunIn implements ArenaRunner: Run with pooled session state.
func (a ABNS) RunIn(ar *Arena, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if err := validate(n, t); err != nil {
		return Result{}, err
	}
	s := newSession(ar, q, n, t, r, a.Strategy)
	return a.runSession(s, a.p0Mult()*float64(t))
}

// runSession drives Algorithm 3 over an existing session with the given
// initial estimate p0; Probabilistic ABNS reuses it after its probe query.
func (a ABNS) runSession(s *session, p0 float64) (Result, error) {
	p := p0
	return s.runWithPolicy(func(round int, prev roundOutcome) int {
		if round > 1 {
			maxP := float64(s.k.Candidates.Len())
			if prev.emptyBins == 0 {
				// No bin emptied: equation 6 blows up at e = 0, and
				// the true x is likely well above the estimate.
				// Grow the estimate geometrically (DESIGN.md).
				p = math.Min(math.Max(2*p, p+1), maxP)
			} else {
				p = EstimatePositives(prev.emptyBins, prev.queried, maxP)
			}
		}
		return int(math.Round(OptimalBins(p)))
	})
}

// ProbABNS is the probabilistic ABNS of Section V-D: a single sampling
// probe estimates which side of t/2 the unknown x falls on. Each candidate
// joins the probe bin independently with probability 2/t; a silent probe
// implies x < t/2 with high probability, so ABNS starts with the small
// estimate p₀ = t/4, while a non-empty probe hands the session to plain
// 2tBins, which is near-oracle for x > t/2.
type ProbABNS struct {
	Strategy binning.Strategy
}

// Name implements Algorithm.
func (a ProbABNS) Name() string { return "ProbABNS" }

// Run implements Algorithm.
func (a ProbABNS) Run(q query.Querier, n, t int, r *rng.Source) (Result, error) {
	return a.RunIn(nil, q, n, t, r)
}

// RunIn implements ArenaRunner: Run with pooled session state.
func (a ProbABNS) RunIn(ar *Arena, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if err := validate(n, t); err != nil {
		return Result{}, err
	}
	s := newSession(ar, q, n, t, r, a.Strategy)
	if _, decided := s.decision(); decided {
		return s.finish(), nil
	}
	// Probe: one probabilistic bin with q = 2/t. For t <= 2 the probe
	// would include (almost) everyone and teach us nothing; skip straight
	// to 2tBins in that case. Members and probe land in the session's
	// reused buffers; the Bernoulli draws match ProbabilisticBin's.
	if t > 2 {
		s.scratch = s.k.Candidates.AppendMembers(s.scratch[:0])
		probe := binning.AppendProbabilisticBin(s.probeBuf[:0], s.scratch, 2/float64(t), s.r)
		s.probeBuf = probe
		if len(probe) > 0 {
			resp, decided := s.queryBin(probe)
			if decided {
				return s.finish(), nil
			}
			if resp.Kind == query.Empty {
				// Likely x < t/2: run ABNS from p0 = t/4.
				return ABNS{Strategy: a.Strategy}.runSession(s, float64(t)/4)
			}
		}
	}
	// Likely x > t/2 (or no usable probe): 2tBins is consistently close
	// to the oracle in this regime.
	return s.runWithPolicy(func(round int, prev roundOutcome) int { return 2 * t })
}
