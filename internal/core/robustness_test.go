package core

// Failure-injection tests: how the algorithms degrade on imperfect radios.
// The structural claims mirror the testbed analysis (Section IV-D): reply
// loss can only produce false negatives, interference-style false activity
// can only produce false positives, and both error rates move
// monotonically with the corresponding fault probability.

import (
	"testing"

	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

// errorProfile runs trials and splits wrong decisions by direction.
func errorProfile(t *testing.T, alg Algorithm, n, th, x, runs int, cfg fastsim.Config, seed uint64) (falsePos, falseNeg int) {
	t.Helper()
	root := rng.New(seed)
	for i := 0; i < runs; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		res, err := alg.Run(ch, n, th, r.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		truth := x >= th
		if res.Decision && !truth {
			falsePos++
		}
		if !res.Decision && truth {
			falseNeg++
		}
	}
	return falsePos, falseNeg
}

func TestLossOnlyCausesFalseNegatives(t *testing.T) {
	// Silence can be fabricated by loss, activity cannot: every wrong
	// decision under pure reply loss must be a false negative.
	cfg := fastsim.DefaultConfig()
	cfg.MissProb = 0.2
	for _, alg := range []Algorithm{TwoTBins{}, ExpIncrease{}, ABNS{P0: 2}, ProbABNS{}} {
		for _, x := range []int{8, 9, 12} {
			fp, _ := errorProfile(t, alg, 32, 8, x, 100, cfg, uint64(x))
			if fp != 0 {
				t.Errorf("%s x=%d: %d false positives under loss-only faults", alg.Name(), x, fp)
			}
		}
	}
}

func TestFalseNegativeRateMonotoneInLoss(t *testing.T) {
	const n, th, x, runs = 32, 8, 9, 400
	rates := make([]int, 0, 3)
	for _, miss := range []float64{0.02, 0.1, 0.3} {
		cfg := fastsim.DefaultConfig()
		cfg.MissProb = miss
		_, fn := errorProfile(t, TwoTBins{}, n, th, x, runs, cfg, uint64(miss*1000))
		rates = append(rates, fn)
	}
	if !(rates[0] <= rates[1] && rates[1] <= rates[2]) {
		t.Fatalf("false-negative counts not monotone in loss: %v", rates)
	}
	if rates[2] == 0 {
		t.Fatal("30% loss produced no false negatives at x=t+1")
	}
}

func TestInterferenceOnlyCausesFalsePositives(t *testing.T) {
	// Pollcast-style false activity fabricates positives but never
	// hides them: with x >= t the decision stays correct.
	cfg := fastsim.DefaultConfig()
	cfg.FalseActiveProb = 0.3
	for _, x := range []int{8, 16, 32} {
		_, fn := errorProfile(t, TwoTBins{}, 32, 8, x, 100, cfg, uint64(300+x))
		if fn != 0 {
			t.Errorf("x=%d: %d false negatives under interference-only faults", x, fn)
		}
	}
}

func TestFalsePositiveRateMonotoneInInterference(t *testing.T) {
	const n, th, x, runs = 32, 8, 2, 400
	counts := make([]int, 0, 3)
	for _, p := range []float64{0.02, 0.1, 0.3} {
		cfg := fastsim.DefaultConfig()
		cfg.FalseActiveProb = p
		fp, _ := errorProfile(t, TwoTBins{}, n, th, x, runs, cfg, uint64(p*1000))
		counts = append(counts, fp)
	}
	if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
		t.Fatalf("false-positive counts not monotone in interference: %v", counts)
	}
	if counts[2] == 0 {
		t.Fatal("30% false activity produced no false positives at x=2")
	}
}

func TestFarFromThresholdIsRobust(t *testing.T) {
	// Losses mostly hurt near x ≈ t; far above threshold the redundancy
	// of superposed replies absorbs them (the testbed's observation).
	cfg := fastsim.DefaultConfig()
	cfg.MissProb = 0.1
	_, fnNear := errorProfile(t, TwoTBins{}, 32, 8, 8, 400, cfg, 1)
	_, fnFar := errorProfile(t, TwoTBins{}, 32, 8, 28, 400, cfg, 2)
	if fnFar >= fnNear {
		t.Fatalf("false negatives not concentrated near the threshold: near=%d far=%d", fnNear, fnFar)
	}
}

func TestTwoPlusLossyStillTerminates(t *testing.T) {
	// Sanity: the 2+ model with both loss and capture faults must never
	// hit the round cap.
	cfg := fastsim.TwoPlusConfig()
	cfg.MissProb = 0.3
	root := rng.New(9)
	for i := 0; i < 100; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(48, 12, cfg, r.Split(1))
		if _, err := (ABNS{P0: 1}).Run(ch, 48, 12, r.Split(2)); err != nil {
			t.Fatal(err)
		}
	}
}
