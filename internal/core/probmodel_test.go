package core

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/dist"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

func TestBinNonEmptyProb(t *testing.T) {
	if got := BinNonEmptyProb(2, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("b=2 x=1: %v, want 0.5", got)
	}
	if got := BinNonEmptyProb(2, 2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("b=2 x=2: %v, want 0.75", got)
	}
	if got := BinNonEmptyProb(10, 0); got != 0 {
		t.Errorf("x=0: %v, want 0", got)
	}
	if got := BinNonEmptyProb(1, 5); got != 1 {
		t.Errorf("b=1: %v, want 1", got)
	}
}

func TestQuickBinNonEmptyProbMonotone(t *testing.T) {
	// More positives can only make a sampling bin more likely non-empty.
	f := func(bRaw, x1Raw, x2Raw uint8) bool {
		b := float64(bRaw%60) + 2
		x1 := float64(x1Raw % 100)
		x2 := float64(x2Raw % 100)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return BinNonEmptyProb(b, x1) <= BinNonEmptyProb(b, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalSamplingBinsClosedForm(t *testing.T) {
	// The worked example of Section VI-A: n=128, μ1=16, μ2=96 (σ→0).
	b := OptimalSamplingBins(16, 96)
	// u = (16/96)^(1/80); b = 1/(1-u) ≈ 45.2.
	if math.Abs(b-45.2) > 0.5 {
		t.Fatalf("b = %v, want ≈45.2", b)
	}
	// The gap at the optimum should be ≈ 0.582 (making ε ≈ 0.291, which
	// is what reproduces the paper's r=19 at δ=1%).
	gap := BinNonEmptyProb(b, 96) - BinNonEmptyProb(b, 16)
	if math.Abs(gap-0.582) > 0.01 {
		t.Fatalf("gap = %v, want ≈0.582", gap)
	}
}

func TestOptimalSamplingBinsIsArgmax(t *testing.T) {
	// Scan confirms the closed form maximizes the gap.
	tl, tr := 20.0, 70.0
	best := OptimalSamplingBins(tl, tr)
	bestGap := BinNonEmptyProb(best, tr) - BinNonEmptyProb(best, tl)
	for b := 2.0; b < 200; b += 0.5 {
		gap := BinNonEmptyProb(b, tr) - BinNonEmptyProb(b, tl)
		if gap > bestGap+1e-9 {
			t.Fatalf("b=%v has gap %v > optimum %v at b=%v", b, gap, bestGap, best)
		}
	}
}

func TestOptimalSamplingBinsEdges(t *testing.T) {
	if got := OptimalSamplingBins(0, 10); got != 1 {
		t.Fatalf("tl=0: b = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unseparated boundaries did not panic")
		}
	}()
	OptimalSamplingBins(10, 10)
}

func TestRequiredRepeatsPaperWorkedExample(t *testing.T) {
	// Paper: n=128, μ1=16, μ2=96 — "when δ = 1% we need 19 repeats".
	b := OptimalSamplingBins(16, 96)
	eps := (BinNonEmptyProb(b, 96) - BinNonEmptyProb(b, 16)) / 2
	if got := RequiredRepeatsPaper(0.01, eps); got != 19 {
		t.Fatalf("r(δ=1%%) = %d, want 19", got)
	}
	// δ = 5%: paper reports 12; the printed formula with ceil gives 13
	// (12.16 before rounding) — accept either rounding convention.
	if got := RequiredRepeatsPaper(0.05, eps); got != 12 && got != 13 {
		t.Fatalf("r(δ=5%%) = %d, want 12 or 13", got)
	}
}

func TestRequiredRepeatsDecreaseWithDelta(t *testing.T) {
	if RequiredRepeatsPaper(0.05, 0.3) >= RequiredRepeatsPaper(0.01, 0.3) {
		t.Fatal("looser delta did not reduce repeats")
	}
	if RequiredRepeatsHoeffding(0.05, 0.3) >= RequiredRepeatsHoeffding(0.01, 0.3) {
		t.Fatal("looser delta did not reduce Hoeffding repeats")
	}
}

func TestRequiredRepeatsPanicOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { RequiredRepeatsPaper(0, 0.3) },
		func() { RequiredRepeatsPaper(1, 0.3) },
		func() { RequiredRepeatsPaper(0.05, 0) },
		func() { RequiredRepeatsHoeffding(0, 0.3) },
		func() { RequiredRepeatsHoeffding(0.05, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNewBimodalDetector(t *testing.T) {
	d := NewBimodalDetector(16, 96, 9)
	if d.R != 9 {
		t.Fatalf("R = %d", d.R)
	}
	if d.PLow >= d.PHigh {
		t.Fatal("hypothesis probabilities not ordered")
	}
	m1, m2, delta := d.DeltaGap()
	if math.Abs(m1-9*d.PLow) > 1e-9 || math.Abs(m2-9*d.PHigh) > 1e-9 {
		t.Fatal("DeltaGap inconsistent")
	}
	if math.Abs(delta-(m2-m1)) > 1e-9 {
		t.Fatal("delta inconsistent")
	}
	if d.CutOff <= m1 || d.CutOff >= m2 {
		t.Fatalf("cutoff %v not between m1=%v and m2=%v", d.CutOff, m1, m2)
	}
}

func TestNewBimodalDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("r=0 did not panic")
		}
	}()
	NewBimodalDetector(16, 96, 0)
}

// detectorAccuracy measures the fraction of correct activity decisions
// over trials draws from the bimodal workload.
func detectorAccuracy(t *testing.T, n int, bi dist.Bimodal, det BimodalDetector, trials int, seed uint64) float64 {
	t.Helper()
	root := rng.New(seed)
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	correct := 0
	for i := 0; i < trials; i++ {
		r := root.Split(uint64(i))
		x, quiet := bi.SampleLabeled(r.Split(1))
		ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(2))
		activity, queries := det.Detect(ch, members, r.Split(3))
		if queries != det.R {
			t.Fatalf("queries = %d, want %d", queries, det.R)
		}
		if activity == !quiet {
			correct++
		}
	}
	return float64(correct) / float64(trials)
}

func TestDetectorHighAccuracyWhenSeparated(t *testing.T) {
	// Fig 9: nine repeats give >90% accuracy once d > 32.
	const n = 128
	bi := dist.SymmetricBimodal(n, 48, 0)
	tl, tr := bi.Boundaries()
	det := NewBimodalDetector(tl, tr, 9)
	if acc := detectorAccuracy(t, n, bi, det, 400, 900); acc < 0.9 {
		t.Fatalf("accuracy = %v, want > 0.9", acc)
	}
}

func TestDetectorAccuracyGrowsWithRepeats(t *testing.T) {
	const n = 128
	bi := dist.SymmetricBimodal(n, 24, 0)
	tl, tr := bi.Boundaries()
	acc1 := detectorAccuracy(t, n, bi, NewBimodalDetector(tl, tr, 1), 600, 901)
	acc9 := detectorAccuracy(t, n, bi, NewBimodalDetector(tl, tr, 9), 600, 902)
	if acc9 <= acc1 {
		t.Fatalf("r=9 accuracy %v not above r=1 accuracy %v", acc9, acc1)
	}
}

func TestDetectorStrugglesWhenOverlapping(t *testing.T) {
	// Fig 9: d ≈ 8 yields accuracies as low as ~70%.
	const n = 128
	bi := dist.SymmetricBimodal(n, 8, 0)
	tl, tr := bi.Boundaries()
	det := NewBimodalDetector(tl, tr, 3)
	if acc := detectorAccuracy(t, n, bi, det, 600, 903); acc > 0.92 {
		t.Fatalf("accuracy = %v suspiciously high for overlapping modes", acc)
	}
}

func TestNewBimodalDetectorDelta(t *testing.T) {
	det := NewBimodalDetectorDelta(16, 96, 0.01)
	if det.R != 19 {
		t.Fatalf("R = %d, want 19 (worked example)", det.R)
	}
}
