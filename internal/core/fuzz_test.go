package core

import (
	"testing"

	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

// Native fuzz targets complement the testing/quick properties: the fuzzer
// explores the (seed, n, t, x) space for decision errors and estimator
// pathologies.

func FuzzThresholdDecision(f *testing.F) {
	f.Add(uint64(1), uint8(32), uint8(8), uint8(4), uint8(0))
	f.Add(uint64(2), uint8(64), uint8(16), uint8(16), uint8(1))
	f.Add(uint64(3), uint8(7), uint8(0), uint8(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, tRaw, xRaw, algRaw uint8) {
		n := int(nRaw%100) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		algs := []Algorithm{TwoTBins{}, ExpIncrease{}, ABNS{P0: 1}, ABNS{P0: 2}, ProbABNS{}}
		alg := algs[int(algRaw)%len(algs)]
		r := rng.New(seed)
		ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(1))
		res, err := alg.Run(ch, n, th, r.Split(2))
		if err != nil {
			t.Fatalf("%s(n=%d t=%d x=%d): %v", alg.Name(), n, th, x, err)
		}
		if res.Decision != (x >= th) {
			t.Fatalf("%s(n=%d t=%d x=%d): wrong decision %v", alg.Name(), n, th, x, res.Decision)
		}
		if res.Queries < 0 || res.Rounds < 0 || res.Confirmed < 0 {
			t.Fatalf("negative counters: %+v", res)
		}
	})
}

func FuzzEstimatePositives(f *testing.F) {
	f.Add(uint8(0), uint8(10), 100.0)
	f.Add(uint8(10), uint8(10), 1e9)
	f.Add(uint8(255), uint8(1), 0.0)
	f.Fuzz(func(t *testing.T, emptyRaw, binsRaw uint8, maxP float64) {
		bins := int(binsRaw)
		empty := int(emptyRaw)
		if maxP < 0 {
			maxP = -maxP
		}
		got := EstimatePositives(empty, bins, maxP)
		if got < 0 || got > maxP {
			t.Fatalf("EstimatePositives(%d, %d, %v) = %v out of [0, maxP]", empty, bins, maxP, got)
		}
		// Must be finite for every input.
		if got != got { // NaN
			t.Fatalf("EstimatePositives(%d, %d, %v) = NaN", empty, bins, maxP)
		}
	})
}
