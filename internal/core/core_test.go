package core

import (
	"testing"
	"testing/quick"

	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// algChannel abbreviates the trial substrate in test helpers.
type algChannel = *fastsim.Channel

// algFactory builds an algorithm for one trial; the Oracle needs the
// trial's ground truth, so construction happens per-channel.
type algFactory func(ch algChannel) Algorithm

func plain(a Algorithm) algFactory { return func(*fastsim.Channel) Algorithm { return a } }

// runOne executes one session on an ideal channel with exactly x positives
// and returns the result.
func runOne(t *testing.T, fac algFactory, n, th, x int, cfg fastsim.Config, seed uint64) Result {
	t.Helper()
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
	res, err := fac(ch).Run(ch, n, th, r.Split(2))
	if err != nil {
		t.Fatalf("Run(n=%d t=%d x=%d): %v", n, th, x, err)
	}
	return res
}

// checkCorrect asserts that the decision matches ground truth x >= th.
func checkCorrect(t *testing.T, fac algFactory, n, th, x int, cfg fastsim.Config, seed uint64) Result {
	t.Helper()
	res := runOne(t, fac, n, th, x, cfg, seed)
	if want := x >= th; res.Decision != want {
		t.Fatalf("decision = %v for n=%d t=%d x=%d (seed %d), want %v",
			res.Decision, n, th, x, seed, want)
	}
	return res
}

// avgQueries averages the query cost over runs trials.
func avgQueries(t *testing.T, fac algFactory, n, th, x, runs int, cfg fastsim.Config, seed uint64) float64 {
	t.Helper()
	root := rng.New(seed)
	total := 0
	for i := 0; i < runs; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		res, err := fac(ch).Run(ch, n, th, r.Split(2))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if want := x >= th; res.Decision != want {
			t.Fatalf("trial %d: wrong decision for x=%d t=%d", i, x, th)
		}
		total += res.Queries
	}
	return float64(total) / float64(runs)
}

func onePlus() fastsim.Config { return fastsim.DefaultConfig() }
func twoPlus() fastsim.Config { return fastsim.TwoPlusConfig() }
func idealTwoPlus() fastsim.Config {
	return fastsim.Config{
		Model:                query.TwoPlus,
		Capture:              fastsim.NoCapture(),
		CaptureEffectPresent: false,
	}
}

// everyAlgorithm lists all threshold algorithms for cross-cutting tests.
func everyAlgorithm() []algFactory {
	return []algFactory{
		plain(TwoTBins{}),
		plain(ExpIncrease{}),
		plain(ExpIncrease{Variant: ExpPauseAndContinue}),
		plain(ExpIncrease{Variant: ExpFourfold}),
		plain(ABNS{P0: 1}),
		plain(ABNS{P0: 2}),
		plain(ProbABNS{}),
		func(ch *fastsim.Channel) Algorithm { return Oracle{Truth: ch} },
	}
}

func algName(fac algFactory) string { return fac(nil).Name() }

func TestAllAlgorithmsCorrectOnIdealChannel(t *testing.T) {
	cases := []struct{ n, th, x int }{
		{16, 4, 0}, {16, 4, 3}, {16, 4, 4}, {16, 4, 5}, {16, 4, 16},
		{32, 8, 7}, {32, 8, 8}, {32, 1, 0}, {32, 1, 1}, {32, 32, 31}, {32, 32, 32},
		{128, 16, 2}, {128, 16, 15}, {128, 16, 16}, {128, 16, 17}, {128, 16, 100},
		{7, 3, 2}, {7, 3, 3}, {1, 1, 0}, {1, 1, 1},
	}
	for _, fac := range everyAlgorithm() {
		name := algName(fac)
		for _, cfg := range []fastsim.Config{onePlus(), twoPlus(), idealTwoPlus()} {
			for i, c := range cases {
				for seed := uint64(0); seed < 3; seed++ {
					res := checkCorrect(t, fac, c.n, c.th, c.x, cfg, seed+uint64(i)*100)
					if res.Queries < 0 || res.Rounds < 0 {
						t.Fatalf("%s: negative counters", name)
					}
				}
			}
		}
	}
}

func TestTrivialThresholds(t *testing.T) {
	for _, fac := range everyAlgorithm() {
		name := algName(fac)
		// t = 0 is trivially true with zero queries.
		res := runOne(t, fac, 16, 0, 5, onePlus(), 1)
		if !res.Decision || res.Queries != 0 {
			t.Errorf("%s: t=0 gave decision=%v queries=%d", name, res.Decision, res.Queries)
		}
		// t > n is trivially false with zero queries.
		res = runOne(t, fac, 16, 17, 5, onePlus(), 1)
		if res.Decision || res.Queries != 0 {
			t.Errorf("%s: t>n gave decision=%v queries=%d", name, res.Decision, res.Queries)
		}
	}
}

func TestZeroParticipants(t *testing.T) {
	for _, fac := range everyAlgorithm() {
		res := runOne(t, fac, 0, 1, 0, onePlus(), 1)
		if res.Decision {
			t.Errorf("%s: n=0 t=1 decided true", algName(fac))
		}
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	r := rng.New(1)
	ch, _ := fastsim.RandomPositives(4, 0, onePlus(), r)
	if _, err := (TwoTBins{}).Run(ch, -1, 2, r); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := (TwoTBins{}).Run(ch, 4, -2, r); err == nil {
		t.Error("negative t accepted")
	}
}

// TestQuickAllAlgorithmsCorrect is the central property test: on an ideal
// radio every algorithm must answer the threshold question exactly, for
// random (n, t, x) and both collision models.
func TestQuickAllAlgorithmsCorrect(t *testing.T) {
	algs := everyAlgorithm()
	f := func(seed uint64, nRaw, tRaw, xRaw, algRaw uint8, two bool) bool {
		n := int(nRaw%64) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		cfg := onePlus()
		if two {
			cfg = twoPlus()
		}
		r := rng.New(seed)
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		alg := algs[int(algRaw)%len(algs)](ch)
		res, err := alg.Run(ch, n, th, r.Split(2))
		if err != nil {
			return false
		}
		return res.Decision == (x >= th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueriesNeverExceedSequential: no algorithm should ever need
// more group queries than there are nodes plus the number of rounds — a
// loose sanity cap that catches runaway re-querying. (Each round polls at
// most |candidates| non-empty bins and strictly resolves or shrinks; the
// engine is also capped by maxRounds.)
func TestQuickCostSanity(t *testing.T) {
	f := func(seed uint64, xRaw uint8) bool {
		const n, th = 64, 8
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		ch, _ := fastsim.RandomPositives(n, x, onePlus(), r.Split(1))
		res, err := TwoTBins{}.Run(ch, n, th, r.Split(2))
		if err != nil {
			return false
		}
		// Worst-case bound from Section IV-A with slack for rounding:
		// 2t bins per round, log2(N/2t)+2 rounds.
		bound := 2 * th * (log2ceil(n/(2*th)) + 2)
		return res.Queries <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func log2ceil(v int) int {
	if v < 1 {
		return 0
	}
	k := 0
	for (1 << k) < v {
		k++
	}
	return k
}

func TestDeterministicGivenSeed(t *testing.T) {
	for _, fac := range everyAlgorithm() {
		a := runOne(t, fac, 64, 8, 10, onePlus(), 99)
		b := runOne(t, fac, 64, 8, 10, onePlus(), 99)
		if a != b {
			t.Errorf("%s: results differ for identical seeds: %+v vs %+v", algName(fac), a, b)
		}
	}
}
