package core

// Soak tests: broad randomized sweeps beyond what testing/quick covers.
// Skipped under -short.

import (
	"testing"

	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

func TestSoakAllAlgorithmsAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sweep skipped with -short")
	}
	algs := everyAlgorithm()
	cfgs := []fastsim.Config{onePlus(), twoPlus(), idealTwoPlus()}
	root := rng.New(0xC0FFEE)
	const trials = 3000
	for i := 0; i < trials; i++ {
		r := root.Split(uint64(i))
		pick := r.Split(1)
		n := pick.Intn(200) + 1
		th := pick.Intn(n + 2)
		x := pick.Intn(n + 1)
		cfg := cfgs[pick.Intn(len(cfgs))]
		fac := algs[pick.Intn(len(algs))]
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(2))
		res, err := fac(ch).Run(ch, n, th, r.Split(3))
		if err != nil {
			t.Fatalf("trial %d (n=%d t=%d x=%d %s): %v", i, n, th, x, fac(ch).Name(), err)
		}
		if res.Decision != (x >= th) {
			t.Fatalf("trial %d (n=%d t=%d x=%d %s): wrong decision", i, n, th, x, fac(ch).Name())
		}
	}
}

func TestLargeNetworkCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n sweep skipped with -short")
	}
	const n = 4096
	for _, tc := range []struct{ th, x int }{
		{64, 0}, {64, 63}, {64, 64}, {64, 65}, {64, 2048}, {64, 4096},
		{1, 1}, {4096, 4096}, {4096, 4095},
	} {
		for _, fac := range []algFactory{plain(TwoTBins{}), plain(ProbABNS{})} {
			res := checkCorrect(t, fac, n, tc.th, tc.x, onePlus(), uint64(tc.th*10000+tc.x))
			// Even at n=4096 the cost stays dramatically sublinear
			// except near the threshold.
			if tc.x == 0 && res.Queries > 300 {
				t.Errorf("%s: x=0 cost %d at n=%d", algName(fac), res.Queries, n)
			}
		}
	}
}
