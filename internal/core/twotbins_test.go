package core

import (
	"testing"

	"tcast/internal/binning"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

func TestTwoTBinsAllPositiveCostsT(t *testing.T) {
	// x = n: every bin is non-empty, so the t-th poll resolves the
	// session — exactly t queries (Section V intro).
	const n, th = 128, 16
	res := checkCorrect(t, plain(TwoTBins{}), n, th, n, onePlus(), 1)
	if res.Queries != th {
		t.Fatalf("queries = %d, want %d", res.Queries, th)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestTwoTBinsNoPositivesCost(t *testing.T) {
	// x = 0 with n divisible by 2t: bins of exactly n/2t nodes, every
	// poll silent, stop once fewer than t candidates remain. The paper
	// estimates (n−t)/(n/2t) = 28 polls for n=128, t=16; the strict
	// "< t" stop rule makes it 29.
	const n, th = 128, 16
	res := checkCorrect(t, plain(TwoTBins{}), n, th, 0, onePlus(), 2)
	if res.Queries != 29 {
		t.Fatalf("queries = %d, want 29", res.Queries)
	}
}

func TestTwoTBinsPeaksNearThreshold(t *testing.T) {
	// Fig 1 shape: cost at x ≈ t dominates cost at the extremes.
	const n, th, runs = 128, 16, 300
	peak := avgQueries(t, plain(TwoTBins{}), n, th, th, runs, onePlus(), 3)
	low := avgQueries(t, plain(TwoTBins{}), n, th, 1, runs, onePlus(), 4)
	high := avgQueries(t, plain(TwoTBins{}), n, th, 120, runs, onePlus(), 5)
	if peak <= low || peak <= high {
		t.Fatalf("cost not peaked at x≈t: low=%v peak=%v high=%v", low, peak, high)
	}
}

func TestTwoTBinsTwoPlusNoWorse(t *testing.T) {
	// Fig 2: the 2+ model never costs more on average; the gap is
	// biggest near x = t−1.
	const n, th, runs = 128, 16, 400
	for _, x := range []int{4, 12, 15, 16, 24, 64} {
		one := avgQueries(t, plain(TwoTBins{}), n, th, x, runs, onePlus(), 10+uint64(x))
		two := avgQueries(t, plain(TwoTBins{}), n, th, x, runs, twoPlus(), 20+uint64(x))
		if two > one*1.05 { // allow 5% sampling noise
			t.Errorf("x=%d: 2+ cost %v exceeds 1+ cost %v", x, two, one)
		}
	}
}

func TestTwoTBinsTwoPlusGainAtTMinus1(t *testing.T) {
	// Section IV-C2: "the superiority of 2+ is especially evident around
	// x = t−1 in the 2tBins method".
	const n, th, runs = 128, 16, 400
	one := avgQueries(t, plain(TwoTBins{}), n, th, th-1, runs, onePlus(), 30)
	two := avgQueries(t, plain(TwoTBins{}), n, th, th-1, runs, twoPlus(), 31)
	if two >= one*0.9 {
		t.Fatalf("2+ gain at x=t-1 too small: 1+=%v 2+=%v", one, two)
	}
}

func TestDefaultPathMatchesRandomPartition(t *testing.T) {
	// The allocation-free default partition draws exactly the same
	// random sequence as binning.RandomPartition, so both paths must
	// produce identical sessions for identical seeds.
	for _, x := range []int{0, 3, 16, 40, 128} {
		for seed := uint64(0); seed < 5; seed++ {
			fast := runOne(t, plain(TwoTBins{}), 128, 16, x, onePlus(), seed)
			slow := runOne(t, plain(TwoTBins{Strategy: binning.RandomPartition}), 128, 16, x, onePlus(), seed)
			if fast != slow {
				t.Fatalf("x=%d seed=%d: fast path %+v != strategy path %+v", x, seed, fast, slow)
			}
		}
	}
}

func TestTwoTBinsDeterministicStrategy(t *testing.T) {
	// The Aspnes-style deterministic partition must stay correct.
	alg := TwoTBins{Strategy: binning.DeterministicPartition}
	for _, x := range []int{0, 5, 16, 40} {
		checkCorrect(t, plain(alg), 64, 8, x, onePlus(), uint64(40+x))
	}
}

func TestExpIncreaseCheapForSmallX(t *testing.T) {
	// Section IV-B: ExpIncrease beats 2tBins when x << t ...
	const n, th, runs = 128, 16, 300
	exp := avgQueries(t, plain(ExpIncrease{}), n, th, 1, runs, onePlus(), 50)
	twoT := avgQueries(t, plain(TwoTBins{}), n, th, 1, runs, onePlus(), 51)
	if exp >= twoT {
		t.Fatalf("x<<t: ExpIncrease %v not cheaper than 2tBins %v", exp, twoT)
	}
}

func TestExpIncreaseWorseForLargeX(t *testing.T) {
	// ... and "performs consistently worse than 2tBins" when x >> t.
	const n, th, runs = 128, 16, 300
	exp := avgQueries(t, plain(ExpIncrease{}), n, th, 100, runs, onePlus(), 52)
	twoT := avgQueries(t, plain(TwoTBins{}), n, th, 100, runs, onePlus(), 53)
	if exp <= twoT {
		t.Fatalf("x>>t: ExpIncrease %v not worse than 2tBins %v", exp, twoT)
	}
}

func TestExpIncreaseZeroPositives(t *testing.T) {
	// x = 0: round one has two bins; both silent. After the first silent
	// bin 64 candidates remain (>= t); after the second, zero remain.
	res := checkCorrect(t, plain(ExpIncrease{}), 128, 16, 0, onePlus(), 54)
	if res.Queries != 2 {
		t.Fatalf("queries = %d, want 2", res.Queries)
	}
}

func TestExpVariantsRemainCorrect(t *testing.T) {
	for _, v := range []ExpVariant{ExpPauseAndContinue, ExpFourfold} {
		alg := ExpIncrease{Variant: v}
		for _, x := range []int{0, 3, 16, 17, 90} {
			checkCorrect(t, plain(alg), 128, 16, x, onePlus(), uint64(60+x))
		}
	}
}

func TestExpVariantNames(t *testing.T) {
	if (ExpIncrease{}).Name() != "ExpIncrease" {
		t.Error("default name wrong")
	}
	if (ExpIncrease{Variant: ExpPauseAndContinue}).Name() != "ExpIncrease(pause-and-continue)" {
		t.Error("pause variant name wrong")
	}
	if (ExpIncrease{Variant: ExpFourfold}).Name() != "ExpIncrease(fourfold)" {
		t.Error("fourfold variant name wrong")
	}
	if ExpVariant(9).String() != "unknown" {
		t.Error("unknown variant string wrong")
	}
}

func TestCostDeclinesAsThresholdLeavesX(t *testing.T) {
	// Fig 3 shape: with x fixed at 4, cost peaks near t ≈ x and declines
	// toward both edges. The adaptive ExpIncrease shows the full shape;
	// fixed 2tBins necessarily keeps paying ~2t(n−t)/n to prove "false"
	// for mid-range t, so only its t→0 edge is asserted.
	const n, x, runs = 128, 4, 300
	atX := avgQueries(t, plain(ExpIncrease{}), n, 4, x, runs, onePlus(), 70)
	farAbove := avgQueries(t, plain(ExpIncrease{}), n, 64, x, runs, onePlus(), 71)
	tiny := avgQueries(t, plain(ExpIncrease{}), n, 1, x, runs, onePlus(), 72)
	if atX <= tiny || atX <= farAbove {
		t.Fatalf("Fig 3 shape violated for ExpIncrease: t=1:%v t=4:%v t=64:%v", tiny, atX, farAbove)
	}
	twoTAtX := avgQueries(t, plain(TwoTBins{}), n, 4, x, runs, onePlus(), 73)
	twoTTiny := avgQueries(t, plain(TwoTBins{}), n, 1, x, runs, onePlus(), 74)
	if twoTAtX <= twoTTiny {
		t.Fatalf("2tBins cost at t=x (%v) not above t=1 (%v)", twoTAtX, twoTTiny)
	}
}

func TestTwoPlusBeatsOnePlusAcrossThresholds(t *testing.T) {
	// Fig 3: "the relationship between 1+ and 2+ is preserved for all t
	// values".
	const n, x, runs = 128, 4, 300
	for _, th := range []int{2, 4, 8, 16} {
		one := avgQueries(t, plain(TwoTBins{}), n, th, x, runs, onePlus(), 75+uint64(th))
		two := avgQueries(t, plain(TwoTBins{}), n, th, x, runs, twoPlus(), 85+uint64(th))
		if two > one*1.05 {
			t.Errorf("t=%d: 2+ cost %v exceeds 1+ cost %v", th, two, one)
		}
	}
}

func TestNoCaptureDecodeExcludesWholeBin(t *testing.T) {
	// With an idealized 2+ radio (no capture effect) a decode proves a
	// singleton bin, which can only help. Check correctness and that it
	// is not more expensive than the capture-effect radio on average.
	const n, th, runs = 128, 16, 300
	withCapture := avgQueries(t, plain(TwoTBins{}), n, th, th-1, runs, twoPlus(), 80)
	noCapture := avgQueries(t, plain(TwoTBins{}), n, th, th-1, runs, idealTwoPlus(), 81)
	if noCapture > withCapture*1.1 {
		t.Fatalf("no-capture radio more expensive: %v vs %v", noCapture, withCapture)
	}
}

func benchAlg(b *testing.B, fac algFactory, n, th, x int, cfg fastsim.Config) {
	root := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))
		if _, err := fac(ch).Run(ch, n, th, r.Split(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoTBins(b *testing.B)    { benchAlg(b, plain(TwoTBins{}), 128, 16, 16, onePlus()) }
func BenchmarkExpIncrease(b *testing.B) { benchAlg(b, plain(ExpIncrease{}), 128, 16, 16, onePlus()) }
