package core

import (
	"fmt"

	"tcast/internal/query"
	"tcast/internal/rng"
)

// This file generalizes the threshold primitive along the lines of the
// companion k+ decision-tree framework [4]: any monotone predicate over
// the unknown positive count x reduces to threshold queries, and any
// interval predicate reduces to two of them.

// AtMost answers "x <= t?" — the complement threshold. It runs the given
// algorithm (nil means ProbABNS) on the negated question x >= t+1.
func AtMost(alg Algorithm, q query.Querier, n, t int, r *rng.Source) (Result, error) {
	if alg == nil {
		alg = ProbABNS{}
	}
	res, err := alg.Run(q, n, t+1, r)
	if err != nil {
		return res, err
	}
	res.Decision = !res.Decision
	return res, nil
}

// Between answers "lo <= x <= hi?" with two threshold sessions (short-
// circuiting when the first already refutes the interval). It returns the
// combined decision and the total query cost.
func Between(alg Algorithm, q query.Querier, n, lo, hi int, r *rng.Source) (Result, error) {
	if lo > hi {
		return Result{}, fmt.Errorf("core: empty interval [%d,%d]", lo, hi)
	}
	if alg == nil {
		alg = ProbABNS{}
	}
	// First: x >= lo?
	first, err := alg.Run(q, n, lo, r.Split(1))
	if err != nil {
		return first, err
	}
	if !first.Decision {
		first.Decision = false
		return first, nil
	}
	// Then: x <= hi?
	second, err := AtMost(alg, q, n, hi, r.Split(2))
	if err != nil {
		return second, err
	}
	return Result{
		Decision:  second.Decision,
		Queries:   first.Queries + second.Queries,
		Rounds:    first.Rounds + second.Rounds,
		Confirmed: first.Confirmed + second.Confirmed,
	}, nil
}

// MonotonePredicate is a predicate over the positive count that flips at
// most once from false to true as the count grows (e.g. "enough detectors
// corroborate").
type MonotonePredicate func(count int) bool

// EvaluateMonotone answers an arbitrary monotone predicate of x with one
// threshold session: it binary-searches the predicate's flip point over
// [0, n] (no queries — the predicate is a pure function) and then asks
// the single threshold question that decides it. It returns an error if
// the predicate is found to be non-monotone at the probed points.
func EvaluateMonotone(alg Algorithm, q query.Querier, n int, f MonotonePredicate, r *rng.Source) (Result, error) {
	if alg == nil {
		alg = ProbABNS{}
	}
	if f(0) {
		// Monotone and true at zero: true everywhere.
		if !f(n) {
			return Result{}, fmt.Errorf("core: predicate not monotone (true at 0, false at %d)", n)
		}
		return Result{Decision: true}, nil
	}
	if !f(n) {
		// False at n: false everywhere.
		return Result{Decision: false}, nil
	}
	// Find the smallest t with f(t) true.
	lo, hi := 0, n // f(lo) false, f(hi) true
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if f(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return alg.Run(q, n, hi, r)
}
