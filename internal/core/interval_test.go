package core

import (
	"testing"
	"testing/quick"

	"tcast/internal/fastsim"
	"tcast/internal/rng"
)

func TestAtMost(t *testing.T) {
	for _, tc := range []struct {
		x, t int
		want bool
	}{
		{0, 0, true}, {1, 0, false}, {5, 5, true}, {6, 5, false}, {3, 10, true},
	} {
		r := rng.New(uint64(tc.x*100 + tc.t))
		ch, _ := fastsim.RandomPositives(32, tc.x, fastsim.DefaultConfig(), r.Split(1))
		res, err := AtMost(nil, ch, 32, tc.t, r.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision != tc.want {
			t.Fatalf("AtMost(x=%d, t=%d) = %v, want %v", tc.x, tc.t, res.Decision, tc.want)
		}
	}
}

func TestBetween(t *testing.T) {
	for _, tc := range []struct {
		x, lo, hi int
		want      bool
	}{
		{5, 4, 8, true}, {5, 5, 5, true}, {5, 6, 8, false}, {5, 0, 4, false},
		{0, 0, 0, true}, {0, 1, 3, false}, {32, 30, 32, true},
	} {
		r := rng.New(uint64(tc.x*1000 + tc.lo*10 + tc.hi))
		ch, _ := fastsim.RandomPositives(32, tc.x, fastsim.DefaultConfig(), r.Split(1))
		res, err := Between(TwoTBins{}, ch, 32, tc.lo, tc.hi, r.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision != tc.want {
			t.Fatalf("Between(x=%d, [%d,%d]) = %v, want %v", tc.x, tc.lo, tc.hi, res.Decision, tc.want)
		}
	}
}

func TestBetweenRejectsEmptyInterval(t *testing.T) {
	r := rng.New(1)
	ch, _ := fastsim.RandomPositives(8, 2, fastsim.DefaultConfig(), r)
	if _, err := Between(nil, ch, 8, 5, 4, r); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestBetweenShortCircuits(t *testing.T) {
	// x far below lo: the first threshold query refutes the interval
	// and the second never runs, so the cost stays that of one session.
	r := rng.New(2)
	ch, _ := fastsim.RandomPositives(128, 0, fastsim.DefaultConfig(), r.Split(1))
	res, err := Between(TwoTBins{}, ch, 128, 16, 32, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision {
		t.Fatal("wrong decision")
	}
	// One x=0 session costs 29 polls (see TestTwoTBinsNoPositivesCost);
	// a second session would roughly double it.
	if res.Queries > 35 {
		t.Fatalf("short-circuit failed: %d queries", res.Queries)
	}
}

func TestQuickBetweenCorrect(t *testing.T) {
	f := func(seed uint64, xRaw, loRaw, hiRaw uint8) bool {
		const n = 40
		x := int(xRaw) % (n + 1)
		lo := int(loRaw) % (n + 1)
		hi := lo + int(hiRaw)%(n+1-lo)
		r := rng.New(seed)
		ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(1))
		res, err := Between(TwoTBins{}, ch, n, lo, hi, r.Split(2))
		if err != nil {
			return false
		}
		return res.Decision == (x >= lo && x <= hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateMonotone(t *testing.T) {
	const n = 64
	for _, tc := range []struct {
		x    int
		flip int // predicate: count >= flip
		want bool
	}{
		{10, 5, true}, {10, 10, true}, {10, 11, false}, {0, 1, false}, {64, 64, true},
	} {
		r := rng.New(uint64(tc.x*100 + tc.flip))
		ch, _ := fastsim.RandomPositives(n, tc.x, fastsim.DefaultConfig(), r.Split(1))
		res, err := EvaluateMonotone(TwoTBins{}, ch, n, func(c int) bool { return c >= tc.flip }, r.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision != tc.want {
			t.Fatalf("x=%d flip=%d: %v, want %v", tc.x, tc.flip, res.Decision, tc.want)
		}
	}
}

func TestEvaluateMonotoneConstantPredicates(t *testing.T) {
	r := rng.New(3)
	ch, _ := fastsim.RandomPositives(16, 5, fastsim.DefaultConfig(), r.Split(1))
	res, err := EvaluateMonotone(nil, ch, 16, func(int) bool { return true }, r.Split(2))
	if err != nil || !res.Decision || res.Queries != 0 {
		t.Fatalf("always-true: %+v, %v", res, err)
	}
	res, err = EvaluateMonotone(nil, ch, 16, func(int) bool { return false }, r.Split(3))
	if err != nil || res.Decision || res.Queries != 0 {
		t.Fatalf("always-false: %+v, %v", res, err)
	}
}

func TestEvaluateMonotoneDetectsNonMonotone(t *testing.T) {
	r := rng.New(4)
	ch, _ := fastsim.RandomPositives(16, 5, fastsim.DefaultConfig(), r.Split(1))
	// True at 0 but false at n: provably non-monotone.
	if _, err := EvaluateMonotone(nil, ch, 16, func(c int) bool { return c == 0 }, r.Split(2)); err == nil {
		t.Fatal("non-monotone predicate accepted")
	}
}
