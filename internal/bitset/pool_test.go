package bitset

import (
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

// A recycled set after Reset must be indistinguishable from a fresh New,
// whatever was in it and whether the capacity shrinks or grows.
func TestQuickResetMatchesNew(t *testing.T) {
	f := func(seed uint64, n1Raw, n2Raw uint8) bool {
		n1, n2 := int(n1Raw), int(n2Raw)
		r := rng.New(seed)
		s := New(n1)
		for i := 0; i < n1; i++ {
			if r.Bernoulli(0.5) {
				s.Add(i)
			}
		}
		s.Reset(n2)
		return s.Equal(New(n2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResetThenFillMatchesFull(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
	}
	for _, n := range []int{130, 7, 200, 0, 64} {
		s.Reset(n)
		s.Fill()
		if !s.Equal(Full(n)) {
			t.Fatalf("Reset(%d)+Fill != Full(%d)", n, n)
		}
	}
}

func TestCopyFromMatchesClone(t *testing.T) {
	src := New(100)
	for _, i := range []int{1, 50, 63, 64, 99} {
		src.Add(i)
	}
	var dst Set
	for _, seedCap := range []int{0, 10, 300} {
		dst.Reset(seedCap)
		dst.CopyFrom(src)
		if !dst.Equal(src) {
			t.Fatalf("CopyFrom into cap-%d set differs from source", seedCap)
		}
		// The copy must be independent of the source.
		dst.Remove(50)
		if !src.Contains(50) {
			t.Fatal("CopyFrom aliased the source's words")
		}
		src.Add(50)
	}
}

func TestAppendMembersReusesBuffer(t *testing.T) {
	s := New(70)
	for _, i := range []int{3, 64, 69} {
		s.Add(i)
	}
	buf := make([]int, 0, 8)
	got := s.AppendMembers(buf)
	want := s.Members()
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %d vs %d", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendMembers reallocated despite sufficient capacity")
	}
}

func TestAddAllMatchesAdd(t *testing.T) {
	f := func(seed uint64, nRaw uint8, idsRaw []uint8) bool {
		n := int(nRaw) + 1
		_ = seed
		ids := make([]int, len(idsRaw))
		for i, v := range idsRaw {
			ids[i] = int(v) % n
		}
		bulk := New(n)
		bulk.AddAll(ids)
		one := New(n)
		for _, id := range ids {
			one.Add(id)
		}
		return bulk.Equal(one) && bulk.Len() == one.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAllPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddAll accepted an out-of-range element")
		}
	}()
	New(4).AddAll([]int{0, 4})
}
