package bitset

import (
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 0 || !s.Empty() {
		t.Fatal("new set is not empty")
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("empty set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Add(63) // duplicate add must not change cardinality
	if s.Len() != 8 {
		t.Fatalf("Len after duplicate Add = %d, want 8", s.Len())
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 7 {
		t.Fatal("Remove failed")
	}
	s.Remove(63) // duplicate remove is a no-op
	if s.Len() != 7 {
		t.Fatalf("Len after duplicate Remove = %d, want 7", s.Len())
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := Full(n)
		if s.Len() != n {
			t.Fatalf("Full(%d).Len() = %d", n, s.Len())
		}
		for i := 0; i < n; i++ {
			if !s.Contains(i) {
				t.Fatalf("Full(%d) missing %d", n, i)
			}
		}
		if s.Contains(n) || s.Contains(-1) {
			t.Fatal("Contains out-of-range returned true")
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Remove(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMembersSorted(t *testing.T) {
	s := New(300)
	for _, i := range []int{250, 3, 64, 9, 128} {
		s.Add(i)
	}
	got := s.Members()
	want := []int{3, 9, 64, 128, 250}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(64)
	s.Add(5)
	c := s.Clone()
	c.Add(6)
	if s.Contains(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Contains(5) {
		t.Fatal("Clone lost member")
	}
}

func TestRemoveAll(t *testing.T) {
	a := Full(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		b.Add(i)
	}
	a.RemoveAll(b)
	if a.Len() != 50 {
		t.Fatalf("Len = %d, want 50", a.Len())
	}
	for i := 0; i < 100; i++ {
		if a.Contains(i) != (i%2 == 1) {
			t.Fatalf("element %d membership wrong", i)
		}
	}
}

func TestUnionIntersect(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Add(1)
	a.Add(65)
	b.Add(65)
	b.Add(2)

	u := a.Clone()
	u.UnionWith(b)
	if u.Len() != 3 || !u.Contains(1) || !u.Contains(2) || !u.Contains(65) {
		t.Fatalf("union wrong: %v", u)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if i.Len() != 1 || !i.Contains(65) {
		t.Fatalf("intersection wrong: %v", i)
	}
	if got := a.IntersectionCount(b); got != 1 {
		t.Fatalf("IntersectionCount = %d, want 1", got)
	}
}

func TestEqual(t *testing.T) {
	a := New(64)
	b := New(64)
	if !a.Equal(b) {
		t.Fatal("two empty sets not equal")
	}
	a.Add(3)
	if a.Equal(b) {
		t.Fatal("sets with different members equal")
	}
	b.Add(3)
	if !a.Equal(b) {
		t.Fatal("identical sets not equal")
	}
	if a.Equal(New(65)) {
		t.Fatal("sets with different capacity equal")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).RemoveAll(New(20))
}

func TestClear(t *testing.T) {
	s := Full(100)
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left members behind")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1, 7}" {
		t.Fatalf("String = %q", got)
	}
}

// TestQuickModel checks Set against a map-based reference model under random
// operation sequences.
func TestQuickModel(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		const n = 90
		s := New(n)
		model := make(map[int]bool)
		r := rng.New(seed)
		for _, op := range opsRaw {
			i := r.Intn(n)
			switch op % 3 {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for _, m := range s.Members() {
			if !model[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeMorgan checks |A ∪ B| + |A ∩ B| == |A| + |B| on random sets.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 128
		r := rng.New(seed)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.3) {
				a.Add(i)
			}
			if r.Bernoulli(0.3) {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.UnionWith(b)
		return u.Len()+a.IntersectionCount(b) == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	s := New(4096)
	for i := 0; i < b.N; i++ {
		s.Add(i % 4096)
		s.Remove(i % 4096)
	}
}

func BenchmarkForEach(b *testing.B) {
	s := Full(4096)
	sum := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ForEach(func(v int) { sum += v })
	}
	_ = sum
}
