// Package bitset implements dense sets of small non-negative integers.
//
// The tcast algorithms track the set of candidate nodes round after round;
// a dense bitset keeps membership tests, removals and whole-set sweeps cheap
// even when experiments scale to thousands of simulated nodes.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a set of integers in [0, capacity). The zero value is an empty set
// with capacity 0; use New to create a set with room for n elements.
type Set struct {
	words []uint64
	n     int // capacity: valid members are [0, n)
	count int // cached cardinality
}

// New returns an empty set whose members may range over [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	s.count = n
	return s
}

// trim clears the bits beyond capacity in the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Cap returns the capacity n the set was created with.
func (s *Set) Cap() int { return s.n }

// Len returns the number of members.
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.count == 0 }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	w, b := i/wordBits, uint(i%wordBits)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	s.check(i)
	w, b := i/wordBits, uint(i%wordBits)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// AddAll inserts every listed element (duplicates are fine). The word
// stores skip Add's per-element membership branch and cardinality upkeep;
// one recount at the end restores the cached count. This is the bulk
// renderer of the query fast path.
func (s *Set) AddAll(ids []int) {
	for _, i := range ids {
		s.check(i)
		s.words[i/wordBits] |= 1 << uint(i%wordBits)
	}
	s.recount()
}

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Clear removes all members.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// Reset reinitializes s to an empty set of capacity n, reusing the backing
// array when it is large enough. Hot loops that recycle per-trial sets call
// Reset instead of New to stay allocation-free once warmed up.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	need := (n + wordBits - 1) / wordBits
	if cap(s.words) < need {
		s.words = make([]uint64, need)
	} else {
		s.words = s.words[:need]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
	s.count = 0
}

// Fill resets the membership to the full set {0, ..., n-1} without changing
// the capacity.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	s.count = s.n
}

// CopyFrom makes s an exact copy of o (members and capacity), reusing s's
// backing array when possible.
func (s *Set) CopyFrom(o *Set) {
	s.Reset(o.n)
	copy(s.words, o.words)
	s.count = o.count
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n, count: s.count}
	copy(c.words, s.words)
	return c
}

// Words exposes the backing word array (bit i of word w is element
// w*64+i). Callers must treat it as read-only; it is how the rank/select
// directory snapshots a set without re-deriving membership element by
// element.
func (s *Set) Words() []uint64 { return s.words }

// Members returns the elements in ascending order.
func (s *Set) Members() []int {
	return s.AppendMembers(make([]int, 0, s.count))
}

// AppendMembers appends the elements in ascending order to dst and
// returns the extended slice; hot loops pass a reused buffer to avoid
// per-round allocations. The word loop is open-coded rather than built on
// ForEach: a closure appending to dst captures the slice by reference and
// forces a heap allocation per call, which profiles showed dominating the
// query hot path.
func (s *Set) AppendMembers(dst []int) []int {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*wordBits+b)
			word &= word - 1
		}
	}
	return dst
}

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w*wordBits + b)
			word &= word - 1
		}
	}
}

// RemoveAll removes every member of other from s. The sets must have been
// created with the same capacity.
func (s *Set) RemoveAll(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
	s.recount()
}

// UnionWith adds every member of other to s.
func (s *Set) UnionWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
	s.recount()
}

// IntersectWith removes from s every element not in other.
func (s *Set) IntersectWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
	s.recount()
}

// IntersectionCount returns |s ∩ other| without allocating.
func (s *Set) IntersectionCount(other *Set) int {
	s.sameCap(other)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & other.words[i])
	}
	return c
}

// Equal reports whether s and other contain exactly the same members.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n || s.count != other.count {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

func (s *Set) sameCap(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, other.n))
	}
}

func (s *Set) recount() {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	s.count = c
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
