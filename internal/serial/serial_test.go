package serial

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripAllOps(t *testing.T) {
	cases := []Message{
		{Op: OpConfigure, Positive: true},
		{Op: OpConfigure, Positive: false},
		{Op: OpConfigureInitiator, Threshold: 0},
		{Op: OpConfigureInitiator, Threshold: 65535},
		{Op: OpQuery},
		{Op: OpReboot},
		{Op: OpAck},
		{Op: OpQueryResult, Decision: true, Queries: 1234, Rounds: 7},
		{Op: OpQueryResult, Decision: false, Queries: 0, Rounds: 0},
		{Op: OpError, Code: 42},
	}
	for _, m := range cases {
		if got := roundTrip(t, m); got != m {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestEncodeRejectsBadValues(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Op: Op(0x7F)}); !errors.Is(err, ErrUnknownOp) {
		t.Errorf("unknown op: %v", err)
	}
	if err := Encode(&buf, Message{Op: OpConfigureInitiator, Threshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if err := Encode(&buf, Message{Op: OpConfigureInitiator, Threshold: 70000}); err == nil {
		t.Error("oversized threshold accepted")
	}
	if err := Encode(&buf, Message{Op: OpQueryResult, Queries: -1}); err == nil {
		t.Error("negative queries accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Op: OpQuery}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	// Bad sync.
	bad := append([]byte(nil), frame...)
	bad[0] = 0x55
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadSync) {
		t.Errorf("bad sync: %v", err)
	}
	// Flipped body bit.
	bad = append([]byte(nil), frame...)
	bad[2] ^= 0x01
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("flipped body: %v", err)
	}
	// Flipped checksum.
	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("flipped checksum: %v", err)
	}
	// Truncated frame.
	if _, err := Decode(bytes.NewReader(frame[:2])); err == nil {
		t.Error("truncated frame accepted")
	}
	// Zero-length payload.
	if _, err := Decode(bytes.NewReader([]byte{Sync, 0, 0})); !errors.Is(err, ErrBadLength) {
		t.Error("zero payload accepted")
	}
}

func TestDecodeRejectsLengthMismatch(t *testing.T) {
	// A frame claiming OpQuery (no body) but carrying one extra byte:
	// craft payload [op, junk] with a valid checksum.
	payload := []byte{2, byte(OpQuery), 0xEE}
	frame := append([]byte{Sync}, payload...)
	frame = append(frame, checksum(payload))
	if _, err := Decode(bytes.NewReader(frame)); !errors.Is(err, ErrBadLength) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestStreamOfFrames(t *testing.T) {
	// Several frames back-to-back decode in order.
	var buf bytes.Buffer
	msgs := []Message{
		{Op: OpReboot},
		{Op: OpConfigure, Positive: true},
		{Op: OpConfigureInitiator, Threshold: 4},
		{Op: OpQuery},
	}
	for _, m := range msgs {
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("expected EOF after stream, got %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(opRaw uint8, positive, decision bool, tRaw, qRaw, rRaw uint16, code uint8) bool {
		ops := []Op{OpConfigure, OpConfigureInitiator, OpQuery, OpReboot, OpAck, OpQueryResult, OpError}
		m := Message{Op: ops[int(opRaw)%len(ops)]}
		switch m.Op {
		case OpConfigure:
			m.Positive = positive
		case OpConfigureInitiator:
			m.Threshold = int(tRaw)
		case OpQueryResult:
			m.Decision = decision
			m.Queries = int(qRaw)
			m.Rounds = int(rRaw)
		case OpError:
			m.Code = code
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return false
		}
		got, err := Decode(&buf)
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(bytes.NewReader(data)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
