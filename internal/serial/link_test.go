package serial

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"tcast/internal/mote"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

// bootWiredLab builds a 4-mote testbed whose initiator and first
// participant are reachable over real byte streams (net.Pipe).
func bootWiredLab(t *testing.T) (iniClient, partClient *Client, parts []*mote.Participant) {
	t.Helper()
	root := rng.New(7)
	med := radio.NewMedium(radio.Config{}, root.Split(1))
	parts = make([]*mote.Participant, 4)
	for i := range parts {
		parts[i] = mote.NewParticipant(i)
	}
	ini := mote.NewInitiator(1<<16, med, parts, root.Split(2))

	iniCtrl, iniMote := net.Pipe()
	partCtrl, partMote := net.Pipe()
	go func() { _ = ServeInitiator(iniMote, ini) }()
	go func() { _ = ServeParticipant(partMote, parts[0]) }()

	t.Cleanup(func() {
		iniCtrl.Close()
		partCtrl.Close()
		ini.Close()
		for _, p := range parts {
			p.Close()
		}
	})
	return NewClient(iniCtrl), NewClient(partCtrl), parts
}

func TestWiredQuerySession(t *testing.T) {
	iniClient, partClient, parts := bootWiredLab(t)

	// Unconfigured query must come back as a protocol-level error.
	if _, _, _, err := iniClient.Query(); err == nil {
		t.Fatal("unconfigured query succeeded over the wire")
	}

	// Configure over the wire: participant 0 positive (via serial),
	// participants 1 and 2 positive (direct), threshold 3.
	if err := partClient.Configure(true); err != nil {
		t.Fatal(err)
	}
	parts[1].Configure(true)
	parts[2].Configure(true)
	if err := iniClient.ConfigureInitiator(3); err != nil {
		t.Fatal(err)
	}

	decision, queries, rounds, err := iniClient.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !decision {
		t.Fatal("3 positives with t=3 decided false")
	}
	if queries <= 0 || rounds <= 0 {
		t.Fatalf("counters not reported: q=%d r=%d", queries, rounds)
	}

	// Reboot over the wire and re-query: the participant forgets its
	// predicate, so the threshold fails.
	if err := partClient.Reboot(); err != nil {
		t.Fatal(err)
	}
	decision, _, _, err = iniClient.Query()
	if err != nil {
		t.Fatal(err)
	}
	if decision {
		t.Fatal("rebooted participant still counted")
	}
}

// TestWiredMiniCampaign drives a small Section IV-D-style campaign
// entirely over serial links: every participant behind its own pipe, the
// controller configuring, querying and rebooting through the protocol.
func TestWiredMiniCampaign(t *testing.T) {
	const n = 6
	root := rng.New(99)
	med := radio.NewMedium(radio.Config{}, root.Split(1))
	parts := make([]*mote.Participant, n)
	partClients := make([]*Client, n)
	for i := range parts {
		parts[i] = mote.NewParticipant(i)
		ctrl, moteSide := net.Pipe()
		go func(p *mote.Participant, rw net.Conn) { _ = ServeParticipant(rw, p) }(parts[i], moteSide)
		partClients[i] = NewClient(ctrl)
	}
	ini := mote.NewInitiator(1<<16, med, parts, root.Split(2))
	iniCtrl, iniMote := net.Pipe()
	go func() { _ = ServeInitiator(iniMote, ini) }()
	iniClient := NewClient(iniCtrl)
	t.Cleanup(func() {
		iniCtrl.Close()
		ini.Close()
		for _, p := range parts {
			p.Close()
		}
	})

	const threshold = 2
	for x := 0; x <= n; x++ {
		// Reboot everything over the wire.
		if err := iniClient.Reboot(); err != nil {
			t.Fatal(err)
		}
		for _, pc := range partClients {
			if err := pc.Reboot(); err != nil {
				t.Fatal(err)
			}
		}
		// Configure x positives and the threshold.
		for i, pc := range partClients {
			if err := pc.Configure(i < x); err != nil {
				t.Fatal(err)
			}
		}
		if err := iniClient.ConfigureInitiator(threshold); err != nil {
			t.Fatal(err)
		}
		decision, queries, _, err := iniClient.Query()
		if err != nil {
			t.Fatal(err)
		}
		if decision != (x >= threshold) {
			t.Fatalf("x=%d: wired campaign decision %v", x, decision)
		}
		if queries <= 0 {
			t.Fatalf("x=%d: no queries reported", x)
		}
	}
}

func TestWiredRebootInitiator(t *testing.T) {
	iniClient, _, _ := bootWiredLab(t)
	if err := iniClient.ConfigureInitiator(1); err != nil {
		t.Fatal(err)
	}
	if err := iniClient.Reboot(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := iniClient.Query(); err == nil {
		t.Fatal("query after reboot succeeded")
	}
}

func TestServerRejectsWrongCommands(t *testing.T) {
	iniClient, partClient, _ := bootWiredLab(t)
	// Participant commands to the initiator and vice versa come back as
	// protocol errors, not hangs.
	if err := iniClient.Configure(true); err == nil {
		t.Fatal("initiator accepted a participant-only command")
	}
	if err := partClient.ConfigureInitiator(2); err == nil {
		t.Fatal("participant accepted an initiator-only command")
	}
}

func TestClientTimeoutOnSilentMote(t *testing.T) {
	ctrl, moteSide := net.Pipe()
	defer ctrl.Close()
	// The "mote" drains commands but never replies — a wedged firmware.
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := moteSide.Read(buf); err != nil {
				return
			}
		}
	}()
	c := NewClient(ctrl)
	c.Timeout = 20 * time.Millisecond
	start := time.Now()
	err := c.Reboot()
	if err == nil {
		t.Fatal("expected a timeout error from a silent mote")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("round trip blocked %v despite 20ms timeout", waited)
	}
	moteSide.Close()
}

func TestClientTimeoutClearsDeadline(t *testing.T) {
	ctrl, moteSide := net.Pipe()
	defer ctrl.Close()
	defer moteSide.Close()
	go func() {
		p := mote.NewParticipant(1)
		_ = ServeParticipant(moteSide, p)
	}()
	c := NewClient(ctrl)
	c.Timeout = time.Second
	// Two sequential round trips: if the deadline from the first were
	// left armed, a later slow reply would spuriously expire. Mostly this
	// pins that a served round trip under Timeout works at all.
	for i := 0; i < 2; i++ {
		if err := c.Configure(true); err != nil {
			t.Fatalf("round trip %d under timeout: %v", i, err)
		}
	}
}

func TestClientTimeoutRequiresDeadline(t *testing.T) {
	// A plain buffer has no SetReadDeadline: configuring Timeout must
	// fail loudly instead of silently waiting forever.
	var buf bytes.Buffer
	c := NewClient(&buf)
	c.Timeout = time.Millisecond
	err := c.Reboot()
	if err == nil || !strings.Contains(err.Error(), "read deadline") {
		t.Fatalf("err = %v, want a no-read-deadline error", err)
	}
}
