// Package serial implements the wire protocol between the central
// controlling unit (the paper's laptop) and the motes: the testbed
// "motes are directly connected to a central controlling unit via serial
// port interface", and the initiator "exposes configure, query and reboot
// functions via serial interface". Frames are length-prefixed with an
// additive checksum, in the spirit of the TinyOS serial stack.
//
// Frame layout:
//
//	0xAA  sync byte
//	len   uint8, payload length (op byte + body)
//	op    uint8, message type
//	body  op-specific fields, big endian
//	sum   uint8, additive checksum over len..body
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Sync opens every frame.
const Sync = 0xAA

// Op identifies a message type.
type Op uint8

// Message types. Commands flow controller→mote; results flow back.
const (
	// OpConfigure sets a participant's predicate value. Body: 1 byte
	// (0 or 1).
	OpConfigure Op = 0x01
	// OpConfigureInitiator sets the initiator's threshold. Body:
	// uint16 threshold.
	OpConfigureInitiator Op = 0x02
	// OpQuery stimulates one TCast run. No body.
	OpQuery Op = 0x03
	// OpReboot clears mote state. No body.
	OpReboot Op = 0x04
	// OpAck acknowledges a command. No body.
	OpAck Op = 0x10
	// OpQueryResult reports a TCast run. Body: 1 byte decision,
	// uint16 queries, uint16 rounds.
	OpQueryResult Op = 0x11
	// OpError reports a mote-side failure. Body: 1 byte error code.
	OpError Op = 0x12
)

// Message is one decoded frame.
type Message struct {
	Op Op
	// Positive is OpConfigure's body.
	Positive bool
	// Threshold is OpConfigureInitiator's body.
	Threshold int
	// Decision, Queries and Rounds are OpQueryResult's body.
	Decision bool
	Queries  int
	Rounds   int
	// Code is OpError's body.
	Code uint8
}

// Encoding errors.
var (
	ErrBadSync     = errors.New("serial: bad sync byte")
	ErrBadChecksum = errors.New("serial: checksum mismatch")
	ErrBadLength   = errors.New("serial: length does not match op")
	ErrUnknownOp   = errors.New("serial: unknown op")
)

// bodyLen returns the body size for an op, or -1 if unknown.
func bodyLen(op Op) int {
	switch op {
	case OpConfigure:
		return 1
	case OpConfigureInitiator:
		return 2
	case OpQuery, OpReboot, OpAck:
		return 0
	case OpQueryResult:
		return 5
	case OpError:
		return 1
	default:
		return -1
	}
}

// Encode writes one frame to w.
func Encode(w io.Writer, m Message) error {
	n := bodyLen(m.Op)
	if n < 0 {
		return fmt.Errorf("%w: 0x%02x", ErrUnknownOp, uint8(m.Op))
	}
	frame := make([]byte, 0, 4+n)
	frame = append(frame, Sync, byte(1+n), byte(m.Op))
	switch m.Op {
	case OpConfigure:
		frame = append(frame, boolByte(m.Positive))
	case OpConfigureInitiator:
		if m.Threshold < 0 || m.Threshold > 0xFFFF {
			return fmt.Errorf("serial: threshold %d out of range", m.Threshold)
		}
		frame = binary.BigEndian.AppendUint16(frame, uint16(m.Threshold))
	case OpQueryResult:
		if m.Queries < 0 || m.Queries > 0xFFFF || m.Rounds < 0 || m.Rounds > 0xFFFF {
			return fmt.Errorf("serial: counters out of range")
		}
		frame = append(frame, boolByte(m.Decision))
		frame = binary.BigEndian.AppendUint16(frame, uint16(m.Queries))
		frame = binary.BigEndian.AppendUint16(frame, uint16(m.Rounds))
	case OpError:
		frame = append(frame, m.Code)
	}
	frame = append(frame, checksum(frame[1:]))
	_, err := w.Write(frame)
	return err
}

// Decode reads one frame from r.
func Decode(r io.Reader) (Message, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if hdr[0] != Sync {
		return Message{}, fmt.Errorf("%w: 0x%02x", ErrBadSync, hdr[0])
	}
	plen := int(hdr[1])
	if plen < 1 {
		return Message{}, ErrBadLength
	}
	payload := make([]byte, plen+1) // + checksum
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	body, sum := payload[:plen], payload[plen]
	if got := checksum(append([]byte{hdr[1]}, body...)); got != sum {
		return Message{}, ErrBadChecksum
	}
	op := Op(body[0])
	want := bodyLen(op)
	if want < 0 {
		return Message{}, fmt.Errorf("%w: 0x%02x", ErrUnknownOp, body[0])
	}
	if plen-1 != want {
		return Message{}, ErrBadLength
	}
	m := Message{Op: op}
	rest := body[1:]
	switch op {
	case OpConfigure:
		m.Positive = rest[0] != 0
	case OpConfigureInitiator:
		m.Threshold = int(binary.BigEndian.Uint16(rest))
	case OpQueryResult:
		m.Decision = rest[0] != 0
		m.Queries = int(binary.BigEndian.Uint16(rest[1:3]))
		m.Rounds = int(binary.BigEndian.Uint16(rest[3:5]))
	case OpError:
		m.Code = rest[0]
	}
	return m, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// checksum is the additive checksum over len..body, inverted so an
// all-zero frame does not validate.
func checksum(data []byte) byte {
	var s byte
	for _, b := range data {
		s += b
	}
	return ^s
}
