package serial

import (
	"fmt"
	"io"
	"time"

	"tcast/internal/mote"
)

// This file wires the wire protocol to the mote emulation: ServeInitiator
// runs a decode-dispatch-encode loop that exposes an emulated initiator
// mote over any byte stream (net.Pipe in tests, a PTY or TCP socket in a
// hardware-in-the-loop setup), and Client is the controller-side stub.

// Error codes carried by OpError frames.
const (
	CodeNotConfigured = 1
	CodeQueryFailed   = 2
	CodeBadCommand    = 3
)

// ServeInitiator speaks the serial protocol over rw on behalf of an
// initiator mote until rw closes or an I/O error occurs. Configure and
// Reboot are acknowledged with OpAck; Query returns OpQueryResult or
// OpError.
func ServeInitiator(rw io.ReadWriter, ini *mote.Initiator) error {
	for {
		m, err := Decode(rw)
		if err != nil {
			if err == io.EOF || err == io.ErrClosedPipe {
				return nil
			}
			return err
		}
		var reply Message
		switch m.Op {
		case OpConfigureInitiator:
			ini.Configure(m.Threshold)
			reply = Message{Op: OpAck}
		case OpReboot:
			ini.Reboot()
			reply = Message{Op: OpAck}
		case OpQuery:
			outcome, err := ini.Query()
			if err == mote.ErrNotConfigured {
				reply = Message{Op: OpError, Code: CodeNotConfigured}
			} else if err != nil {
				reply = Message{Op: OpError, Code: CodeQueryFailed}
			} else {
				reply = Message{
					Op:       OpQueryResult,
					Decision: outcome.Decision,
					Queries:  outcome.Queries,
					Rounds:   outcome.Rounds,
				}
			}
		default:
			reply = Message{Op: OpError, Code: CodeBadCommand}
		}
		if err := Encode(rw, reply); err != nil {
			return err
		}
	}
}

// ServeParticipant speaks the serial protocol on behalf of a participant
// mote (configure and reboot only, per the paper).
func ServeParticipant(rw io.ReadWriter, p *mote.Participant) error {
	for {
		m, err := Decode(rw)
		if err != nil {
			if err == io.EOF || err == io.ErrClosedPipe {
				return nil
			}
			return err
		}
		var reply Message
		switch m.Op {
		case OpConfigure:
			p.Configure(m.Positive)
			reply = Message{Op: OpAck}
		case OpReboot:
			p.Reboot()
			reply = Message{Op: OpAck}
		default:
			reply = Message{Op: OpError, Code: CodeBadCommand}
		}
		if err := Encode(rw, reply); err != nil {
			return err
		}
	}
}

// Client is the controller-side stub for one serial link.
type Client struct {
	rw io.ReadWriter
	// Timeout bounds how long a round trip waits for the mote's reply.
	// Zero means wait forever — the historical behavior, under which a
	// wedged mote hangs the whole controller run. A positive Timeout
	// requires rw to support read deadlines (net.Conn does; a PTY file
	// usually does via os.File): the deadline is armed per round trip and
	// cleared afterwards, and an expired deadline surfaces as the stream's
	// timeout error so the caller can fail the session instead of hanging.
	Timeout time.Duration
}

// deadliner is the read-deadline capability Timeout needs from rw.
type deadliner interface {
	SetReadDeadline(t time.Time) error
}

// NewClient wraps a byte stream to a mote.
func NewClient(rw io.ReadWriter) *Client { return &Client{rw: rw} }

func (c *Client) roundTrip(m Message) (Message, error) {
	if err := Encode(c.rw, m); err != nil {
		return Message{}, err
	}
	if c.Timeout > 0 {
		d, ok := c.rw.(deadliner)
		if !ok {
			// Fail loudly rather than silently waiting forever on a
			// stream that cannot honor the configured bound.
			return Message{}, fmt.Errorf("serial: timeout configured but %T supports no read deadline", c.rw)
		}
		if err := d.SetReadDeadline(time.Now().Add(c.Timeout)); err != nil {
			return Message{}, fmt.Errorf("serial: arming read deadline: %w", err)
		}
		defer func() { _ = d.SetReadDeadline(time.Time{}) }()
	}
	return Decode(c.rw)
}

func (c *Client) expectAck(m Message) error {
	reply, err := c.roundTrip(m)
	if err != nil {
		return err
	}
	if reply.Op != OpAck {
		return fmt.Errorf("serial: expected ack, got op 0x%02x (code %d)", uint8(reply.Op), reply.Code)
	}
	return nil
}

// Configure sets a participant's predicate value.
func (c *Client) Configure(positive bool) error {
	return c.expectAck(Message{Op: OpConfigure, Positive: positive})
}

// ConfigureInitiator sets the initiator's threshold.
func (c *Client) ConfigureInitiator(threshold int) error {
	return c.expectAck(Message{Op: OpConfigureInitiator, Threshold: threshold})
}

// Reboot clears the mote's state.
func (c *Client) Reboot() error {
	return c.expectAck(Message{Op: OpReboot})
}

// Query stimulates one TCast run and returns its result.
func (c *Client) Query() (decision bool, queries, rounds int, err error) {
	reply, err := c.roundTrip(Message{Op: OpQuery})
	if err != nil {
		return false, 0, 0, err
	}
	switch reply.Op {
	case OpQueryResult:
		return reply.Decision, reply.Queries, reply.Rounds, nil
	case OpError:
		return false, 0, 0, fmt.Errorf("serial: mote error code %d", reply.Code)
	default:
		return false, 0, 0, fmt.Errorf("serial: unexpected op 0x%02x", uint8(reply.Op))
	}
}
