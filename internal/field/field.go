// Package field models the physical deployment around the singlehop
// primitive: node positions, unit-disk connectivity, event sensing, and
// tree convergecast to a basestation. The paper's motivating intrusion
// applications ("A Line in the Sand", ExScal) follow the pipeline
// detect → confirm with tcast in the singlehop neighborhood → report to
// the basestation; this package supplies the first and last stages so the
// examples can run the pipeline end to end.
package field

import (
	"fmt"
	"math"

	"tcast/internal/rng"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Deployment is a set of placed nodes with unit-disk radio connectivity.
type Deployment struct {
	// Pos holds each node's position.
	Pos []Point
	// Range is the radio range in meters.
	Range float64
	adj   [][]int
}

// Grid places cols×rows nodes on a regular grid with the given spacing.
func Grid(cols, rows int, spacing, radioRange float64) (*Deployment, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("field: non-positive grid %dx%d", cols, rows)
	}
	if spacing <= 0 || radioRange <= 0 {
		return nil, fmt.Errorf("field: non-positive spacing %v or range %v", spacing, radioRange)
	}
	pos := make([]Point, 0, cols*rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			pos = append(pos, Point{X: float64(x) * spacing, Y: float64(y) * spacing})
		}
	}
	return New(pos, radioRange)
}

// Random places n nodes uniformly at random on a w×h area.
func Random(n int, w, h, radioRange float64, r *rng.Source) (*Deployment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("field: non-positive node count %d", n)
	}
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: r.Float64() * w, Y: r.Float64() * h}
	}
	return New(pos, radioRange)
}

// New builds a deployment from explicit positions.
func New(pos []Point, radioRange float64) (*Deployment, error) {
	if radioRange <= 0 {
		return nil, fmt.Errorf("field: non-positive range %v", radioRange)
	}
	d := &Deployment{Pos: append([]Point(nil), pos...), Range: radioRange}
	d.adj = make([][]int, len(pos))
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist(pos[j]) <= radioRange {
				d.adj[i] = append(d.adj[i], j)
				d.adj[j] = append(d.adj[j], i)
			}
		}
	}
	return d, nil
}

// N returns the number of nodes.
func (d *Deployment) N() int { return len(d.Pos) }

// Neighbors returns the nodes within radio range of i (excluding i).
func (d *Deployment) Neighbors(i int) []int { return d.adj[i] }

// InRange reports whether i and j can hear each other.
func (d *Deployment) InRange(i, j int) bool {
	return i != j && d.Pos[i].Dist(d.Pos[j]) <= d.Range
}

// NodesWithin returns the nodes whose positions lie within radius of p —
// the sensing footprint of an event at p.
func (d *Deployment) NodesWithin(p Point, radius float64) []int {
	var out []int
	for i, q := range d.Pos {
		if p.Dist(q) <= radius {
			out = append(out, i)
		}
	}
	return out
}

// Nearest returns the node closest to p.
func (d *Deployment) Nearest(p Point) int {
	best, bestDist := 0, math.Inf(1)
	for i, q := range d.Pos {
		if dist := p.Dist(q); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// Tree is a convergecast routing tree rooted at a sink (the basestation).
type Tree struct {
	Sink   int
	Parent []int // Parent[sink] == -1
	Depth  []int
}

// BFSTree builds the hop-minimal routing tree toward sink. It fails if
// any node cannot reach the sink.
func (d *Deployment) BFSTree(sink int) (*Tree, error) {
	n := d.N()
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("field: sink %d out of range", sink)
	}
	t := &Tree{Sink: sink, Parent: make([]int, n), Depth: make([]int, n)}
	for i := range t.Parent {
		t.Parent[i] = -2 // unvisited
	}
	t.Parent[sink] = -1
	queue := []int{sink}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.adj[u] {
			if t.Parent[v] == -2 {
				t.Parent[v] = u
				t.Depth[v] = t.Depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for i, p := range t.Parent {
		if p == -2 {
			return nil, fmt.Errorf("field: node %d cannot reach sink %d", i, sink)
		}
	}
	return t, nil
}

// PathToSink returns the hop sequence from a node to the sink, inclusive
// of both endpoints.
func (t *Tree) PathToSink(from int) []int {
	path := []int{from}
	for from != t.Sink {
		from = t.Parent[from]
		path = append(path, from)
	}
	return path
}

// Convergecast delivers reports hop by hop up the tree with per-hop loss
// and bounded retransmissions.
type Convergecast struct {
	// LossProb is the per-transmission loss probability on each hop.
	LossProb float64
	// MaxRetries bounds retransmissions per hop (0 means 3).
	MaxRetries int
}

// Delivery reports one convergecast attempt.
type Delivery struct {
	// Delivered reports whether the report reached the sink.
	Delivered bool
	// Hops is the path length attempted.
	Hops int
	// Transmissions counts every frame sent, including retries.
	Transmissions int
	// Slots is the virtual-time cost of the delivery: one slot per
	// transmission, the final failed attempt of an exhausted hop
	// included exactly once — the same pricing the query-layer retry
	// middleware uses, so convergecast and singlehop costs share an axis.
	Slots int
}

// Deliver sends one report from node up the tree.
func (c Convergecast) Deliver(t *Tree, from int, r *rng.Source) Delivery {
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	var del Delivery
	for from != t.Sink {
		del.Hops++
		sent := false
		for attempt := 0; attempt <= retries; attempt++ {
			del.Transmissions++
			del.Slots++
			if !r.Bernoulli(c.LossProb) {
				sent = true
				break
			}
		}
		if !sent {
			return del
		}
		from = t.Parent[from]
	}
	del.Delivered = true
	return del
}
