package field

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func mustGrid(t *testing.T, cols, rows int, spacing, rr float64) *Deployment {
	t.Helper()
	d, err := Grid(cols, rows, spacing, rr)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGridValidation(t *testing.T) {
	for _, tc := range []struct {
		cols, rows  int
		spacing, rr float64
	}{
		{0, 3, 1, 1}, {3, 0, 1, 1}, {3, 3, 0, 1}, {3, 3, 1, 0},
	} {
		if _, err := Grid(tc.cols, tc.rows, tc.spacing, tc.rr); err == nil {
			t.Errorf("Grid(%+v) accepted", tc)
		}
	}
}

func TestGridAdjacency(t *testing.T) {
	// Spacing 10, range 10: 4-neighborhoods (diagonals are ~14.1m away).
	d := mustGrid(t, 3, 3, 10, 10)
	if d.N() != 9 {
		t.Fatalf("N = %d", d.N())
	}
	// Center node (index 4) has 4 neighbors.
	if got := len(d.Neighbors(4)); got != 4 {
		t.Fatalf("center neighbors = %d, want 4", got)
	}
	// Corner has 2.
	if got := len(d.Neighbors(0)); got != 2 {
		t.Fatalf("corner neighbors = %d, want 2", got)
	}
	// Range 15 adds diagonals: center gets 8.
	d = mustGrid(t, 3, 3, 10, 15)
	if got := len(d.Neighbors(4)); got != 8 {
		t.Fatalf("center neighbors with diagonals = %d, want 8", got)
	}
}

func TestInRangeSymmetric(t *testing.T) {
	d := mustGrid(t, 4, 4, 10, 12)
	for i := 0; i < d.N(); i++ {
		if d.InRange(i, i) {
			t.Fatal("node in range of itself")
		}
		for j := 0; j < d.N(); j++ {
			if d.InRange(i, j) != d.InRange(j, i) {
				t.Fatalf("asymmetric range between %d and %d", i, j)
			}
		}
	}
}

func TestNodesWithin(t *testing.T) {
	d := mustGrid(t, 3, 3, 10, 10)
	got := d.NodesWithin(Point{X: 10, Y: 10}, 10.5)
	// Center + its 4 axial neighbors.
	if len(got) != 5 {
		t.Fatalf("NodesWithin = %v", got)
	}
	if all := d.NodesWithin(Point{X: 10, Y: 10}, 1000); len(all) != 9 {
		t.Fatalf("big radius missed nodes: %v", all)
	}
	if none := d.NodesWithin(Point{X: -100, Y: -100}, 1); len(none) != 0 {
		t.Fatalf("far point sensed nodes: %v", none)
	}
}

func TestNearest(t *testing.T) {
	d := mustGrid(t, 3, 3, 10, 10)
	if got := d.Nearest(Point{X: 1, Y: 1}); got != 0 {
		t.Fatalf("Nearest = %d, want 0", got)
	}
	if got := d.Nearest(Point{X: 11, Y: 9}); got != 4 {
		t.Fatalf("Nearest = %d, want center", got)
	}
}

func TestBFSTreeProperties(t *testing.T) {
	d := mustGrid(t, 5, 4, 10, 10)
	tree, err := d.BFSTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent[0] != -1 || tree.Depth[0] != 0 {
		t.Fatal("sink not rooted")
	}
	for i := 1; i < d.N(); i++ {
		p := tree.Parent[i]
		if p < 0 {
			t.Fatalf("node %d unparented", i)
		}
		if !d.InRange(i, p) {
			t.Fatalf("node %d's parent %d out of radio range", i, p)
		}
		if tree.Depth[i] != tree.Depth[p]+1 {
			t.Fatalf("depth inconsistency at %d", i)
		}
		// BFS optimality on a grid: depth equals Manhattan hop distance.
		wantDepth := int(math.Abs(d.Pos[i].X-d.Pos[0].X)/10 + math.Abs(d.Pos[i].Y-d.Pos[0].Y)/10)
		if tree.Depth[i] != wantDepth {
			t.Fatalf("node %d depth %d, want %d", i, tree.Depth[i], wantDepth)
		}
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	d, err := New([]Point{{0, 0}, {100, 100}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BFSTree(0); err == nil {
		t.Fatal("disconnected deployment accepted")
	}
	if _, err := d.BFSTree(9); err == nil {
		t.Fatal("out-of-range sink accepted")
	}
}

func TestPathToSink(t *testing.T) {
	d := mustGrid(t, 4, 1, 10, 10) // a line
	tree, err := d.BFSTree(0)
	if err != nil {
		t.Fatal(err)
	}
	path := tree.PathToSink(3)
	want := []int{3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := tree.PathToSink(0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("sink path = %v", p)
	}
}

func TestDeliverLossless(t *testing.T) {
	d := mustGrid(t, 6, 1, 10, 10)
	tree, _ := d.BFSTree(0)
	del := Convergecast{}.Deliver(tree, 5, rng.New(1))
	if !del.Delivered || del.Hops != 5 || del.Transmissions != 5 {
		t.Fatalf("lossless delivery: %+v", del)
	}
}

func TestDeliverWithLossRetries(t *testing.T) {
	d := mustGrid(t, 6, 1, 10, 10)
	tree, _ := d.BFSTree(0)
	root := rng.New(2)
	delivered, totalTx := 0, 0
	const trials = 500
	for i := 0; i < trials; i++ {
		del := Convergecast{LossProb: 0.3, MaxRetries: 5}.Deliver(tree, 5, root.Split(uint64(i)))
		if del.Delivered {
			delivered++
		}
		totalTx += del.Transmissions
	}
	// P(hop fails) = 0.3^6 ≈ 0.07%; over 5 hops nearly all deliveries
	// succeed, with ~1/0.7 transmissions per hop.
	if delivered < trials*95/100 {
		t.Fatalf("only %d/%d delivered", delivered, trials)
	}
	meanTx := float64(totalTx) / trials
	if meanTx < 5.5 || meanTx > 9 {
		t.Fatalf("mean transmissions %v, want ≈ 5/0.7 ≈ 7.1", meanTx)
	}
}

func TestDeliverCanFail(t *testing.T) {
	d := mustGrid(t, 3, 1, 10, 10)
	tree, _ := d.BFSTree(0)
	root := rng.New(3)
	failed := false
	for i := 0; i < 200; i++ {
		del := Convergecast{LossProb: 0.9, MaxRetries: 1}.Deliver(tree, 2, root.Split(uint64(i)))
		if !del.Delivered {
			failed = true
			if del.Transmissions == 0 {
				t.Fatal("failure without transmissions")
			}
		}
	}
	if !failed {
		t.Fatal("90% loss with 1 retry never failed")
	}
}

func TestRandomDeployment(t *testing.T) {
	d, err := Random(50, 100, 100, 25, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 50 {
		t.Fatalf("N = %d", d.N())
	}
	for i, p := range d.Pos {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("node %d at %+v outside area", i, p)
		}
	}
	if _, err := Random(0, 10, 10, 5, rng.New(5)); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestQuickTreePaths: every node's path ends at the sink with length
// depth+1 and consecutive hops in radio range.
func TestQuickTreePaths(t *testing.T) {
	f := func(seed uint64, colsRaw, rowsRaw uint8) bool {
		cols := int(colsRaw%6) + 1
		rows := int(rowsRaw%6) + 1
		d, err := Grid(cols, rows, 10, 10)
		if err != nil {
			return false
		}
		sink := int(seed) % d.N()
		if sink < 0 {
			sink = -sink
		}
		tree, err := d.BFSTree(sink)
		if err != nil {
			return false
		}
		for i := 0; i < d.N(); i++ {
			path := tree.PathToSink(i)
			if len(path) != tree.Depth[i]+1 || path[len(path)-1] != sink {
				return false
			}
			for h := 1; h < len(path); h++ {
				if !d.InRange(path[h-1], path[h]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverSlotsMatchTransmissions(t *testing.T) {
	// Virtual time prices one slot per transmission, so the two ledgers
	// must agree on every path — delivered or not.
	d := mustGrid(t, 6, 1, 10, 10)
	tree, _ := d.BFSTree(0)
	root := rng.New(4)
	for i := 0; i < 200; i++ {
		del := Convergecast{LossProb: 0.4, MaxRetries: 2}.Deliver(tree, 5, root.Split(uint64(i)))
		if del.Slots != del.Transmissions {
			t.Fatalf("trial %d: Slots = %d, Transmissions = %d", i, del.Slots, del.Transmissions)
		}
	}
}

func TestDeliverExhaustedRetriesCountedOnce(t *testing.T) {
	// Regression: the final failed attempt of an exhausted hop must be
	// priced exactly once. LossProb=1 with MaxRetries=1 means the first
	// hop sends the initial attempt plus one retry and gives up:
	// exactly 2 transmissions and 2 slots, zero hops beyond the first.
	d := mustGrid(t, 3, 1, 10, 10)
	tree, _ := d.BFSTree(0)
	del := Convergecast{LossProb: 1, MaxRetries: 1}.Deliver(tree, 2, rng.New(5))
	if del.Delivered {
		t.Fatal("delivery over a fully lossy channel must fail")
	}
	if del.Hops != 1 || del.Transmissions != 2 || del.Slots != 2 {
		t.Fatalf("exhausted-retries delivery = %+v, want Hops=1 Transmissions=2 Slots=2", del)
	}
}
