package binning

import (
	"testing"

	"tcast/internal/rng"
)

// TestStreamerShuffledMatchesRandomPartition is the acceptance property:
// for every (n, b, seed) the shuffled streamer must yield bit-identical
// bins to RandomPartition, because both route through the one shared
// draw loop.
func TestStreamerShuffledMatchesRandomPartition(t *testing.T) {
	var st Streamer
	var buf []int
	for n := 0; n <= 40; n++ {
		members := make([]int, n)
		for i := range members {
			members[i] = 3*i + 1 // non-contiguous ids, so order bugs show
		}
		for b := 1; b <= n+2; b++ {
			for seed := uint64(0); seed < 5; seed++ {
				want := RandomPartition(members, b, rng.New(seed))
				st.StartShuffled(members, b, rng.New(seed))
				if st.Bins() != len(want) || st.Members() != n {
					t.Fatalf("n=%d b=%d: Bins=%d Members=%d", n, b, st.Bins(), st.Members())
				}
				for i, wbin := range want {
					if got := st.BinSize(i); got != len(wbin) {
						t.Fatalf("n=%d b=%d seed=%d bin %d: size %d want %d", n, b, seed, i, got, len(wbin))
					}
					buf = st.AppendBin(i, buf[:0])
					for j := range wbin {
						if buf[j] != wbin[j] {
							t.Fatalf("n=%d b=%d seed=%d bin %d: %v want %v", n, b, seed, i, buf, wbin)
						}
					}
				}
			}
		}
	}
}

// TestStreamerPermutedIsPartition: the permuted mode must yield a valid
// exact-size partition of the ranks [0, m) — every rank exactly once,
// bin sizes matching chunkBounds — deterministically in the key.
func TestStreamerPermutedIsPartition(t *testing.T) {
	var st Streamer
	var buf []int
	for _, m := range []int{0, 1, 2, 3, 7, 64, 100, 1000, 4097} {
		for _, b := range []int{1, 2, 3, 32, 100} {
			for key := uint64(0); key < 3; key++ {
				st.StartPermuted(m, b, key)
				seen := make([]bool, m)
				total := 0
				for i := 0; i < b; i++ {
					buf = st.AppendBin(i, buf[:0])
					if len(buf) != st.BinSize(i) {
						t.Fatalf("m=%d b=%d bin %d: len %d want %d", m, b, i, len(buf), st.BinSize(i))
					}
					for _, j := range buf {
						if j < 0 || j >= m || seen[j] {
							t.Fatalf("m=%d b=%d key=%d: rank %d invalid or repeated", m, b, key, j)
						}
						seen[j] = true
						if got := st.BinOf(j); got != i {
							t.Fatalf("m=%d b=%d key=%d: BinOf(%d)=%d want %d", m, b, key, j, got, i)
						}
					}
					total += len(buf)
				}
				if total != m {
					t.Fatalf("m=%d b=%d key=%d: %d ranks streamed", m, b, key, total)
				}
				// Replay: the partition is a pure function of Start state.
				again := st.AppendBin(0, nil)
				first := st.AppendBin(0, nil)
				for j := range first {
					if again[j] != first[j] {
						t.Fatalf("m=%d b=%d key=%d: replay diverged", m, b, key)
					}
				}
			}
		}
	}
}

// TestStreamerPermutedKeySensitivity: different keys should give
// different partitions (for any m large enough that collisions are
// vanishingly unlikely) — the key really is the round's randomness.
func TestStreamerPermutedKeySensitivity(t *testing.T) {
	var a, b Streamer
	a.StartPermuted(1000, 10, 1)
	b.StartPermuted(1000, 10, 2)
	x := a.AppendBin(0, nil)
	y := b.AppendBin(0, nil)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two keys produced an identical first bin")
	}
}

// TestFeistelBijective exercises the raw permutation: apply must be a
// bijection on [0, m) and invert its exact inverse.
func TestFeistelBijective(t *testing.T) {
	for _, m := range []int{1, 2, 5, 16, 17, 63, 64, 65, 1000, 1 << 14} {
		f := newFeistel(m, 0xdeadbeef)
		seen := make([]bool, m)
		for j := 0; j < m; j++ {
			p := f.apply(j)
			if p < 0 || p >= m || seen[p] {
				t.Fatalf("m=%d: apply(%d)=%d not a bijection", m, j, p)
			}
			seen[p] = true
			if back := f.invert(p); back != j {
				t.Fatalf("m=%d: invert(apply(%d))=%d", m, j, back)
			}
		}
	}
}
