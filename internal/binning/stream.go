package binning

import (
	"math/bits"

	"tcast/internal/rng"
)

// Streamer yields a random equal-sized partition one bin at a time, so a
// round over a million-candidate field never materializes the full
// [][]int partition. It has two modes sharing the chunkBounds size rule:
//
//   - Shuffled: the classic mode. The members are copied and shuffled
//     through shuffleMembers — the same shared draw loop as
//     RandomPartition — so for any (members, b, state of r) the streamed
//     bins are bit-identical to RandomPartition's, just delivered one at
//     a time from the arena-held buffer.
//
//   - Permuted: the sparse mode. No member buffer exists at all; bin i
//     is the preimage of shuffled positions [lo, hi) under a keyed
//     Feistel permutation of [0, m), decoded on demand into the caller's
//     buffer. One uniform 64-bit key replaces the m-1 Fisher-Yates
//     draws, so the cost per round is O(|bin|) time and O(1) space
//     regardless of m. The permutation is uniform over a family of
//     4-round Feistel networks rather than over all m! orderings — the
//     paper's analysis only needs exchangeable equal-sized bins, which
//     the keyed network provides — and it is invertible, so BinOf can
//     answer "where did rank j land" in O(1) for samplers that want to
//     skip empty bins.
//
// The zero value is ready; Start* reinitializes in place. Not safe for
// concurrent use.
type Streamer struct {
	m, b     int
	permuted bool
	buf      []int // shuffled mode: the shuffled members
	f        feistel
}

// StartShuffled begins streaming the partition RandomPartition(members,
// b, r) would return, consuming the identical draw sequence.
func (st *Streamer) StartShuffled(members []int, b int, r *rng.Source) {
	if b <= 0 {
		panic("binning: bin count must be positive")
	}
	st.m, st.b, st.permuted = len(members), b, false
	st.buf = shuffleMembers(st.buf, members, r)
}

// StartPermuted begins streaming a partition of the ranks [0, m) into b
// bins under the Feistel permutation keyed by key (one r.Uint64() at the
// call site). The bins contain member *ranks*; callers map rank to node
// id through their own directory (idset.Ranked in core).
func (st *Streamer) StartPermuted(m, b int, key uint64) {
	if b <= 0 {
		panic("binning: bin count must be positive")
	}
	if m < 0 {
		panic("binning: negative member count")
	}
	st.m, st.b, st.permuted = m, b, true
	st.f = newFeistel(m, key)
}

// Bins returns the bin count b of the current partition.
func (st *Streamer) Bins() int { return st.b }

// Members returns the member (or rank) count m of the current partition.
func (st *Streamer) Members() int { return st.m }

// BinSize returns |bin i| without materializing it.
func (st *Streamer) BinSize(i int) int {
	lo, hi := chunkBounds(st.m, st.b, i)
	return hi - lo
}

// AppendBin appends bin i's members (shuffled mode) or member ranks
// (permuted mode) to dst and returns the extended slice. Bins stream in
// any order, any number of times — the partition is a pure function of
// the Start state.
func (st *Streamer) AppendBin(i int, dst []int) []int {
	lo, hi := chunkBounds(st.m, st.b, i)
	if !st.permuted {
		return append(dst, st.buf[lo:hi]...)
	}
	for p := lo; p < hi; p++ {
		dst = append(dst, st.f.invert(p))
	}
	return dst
}

// BinOf returns the bin index that member rank j landed in (permuted
// mode only — the shuffled mode keeps no inverse).
func (st *Streamer) BinOf(j int) int {
	if !st.permuted {
		panic("binning: BinOf requires permuted mode")
	}
	p := st.f.apply(j)
	base, extra := st.m/st.b, st.m%st.b
	pivot := extra * (base + 1)
	if p < pivot {
		return p / (base + 1)
	}
	return extra + (p-pivot)/base
}

// feistel is a 4-round balanced Feistel network on 2h-bit values,
// restricted to [0, m) by cycle-walking: values that leave the range are
// re-encrypted until they return, which preserves bijectivity on [0, m)
// exactly (the walk stays inside the value's own permutation cycle, so
// it terminates — the cycle contains the in-range starting point). The
// domain 4^h is the smallest square of a power of two ≥ m, so a walk
// takes < 4 steps in expectation. Round keys derive from one 64-bit key
// through the same SplitMix64 finalizer the rng package seeds with.
type feistel struct {
	keys [4]uint64
	half uint  // h: bits per half
	mask uint64 // 2^h - 1
	m    uint64
}

func newFeistel(m int, key uint64) feistel {
	var f feistel
	f.m = uint64(m)
	// Smallest h with 4^h >= m (h >= 1 so both halves are non-empty).
	h := uint((bits.Len64(f.m-1|1) + 1) / 2)
	if h == 0 {
		h = 1
	}
	f.half = h
	f.mask = (1 << h) - 1
	x := key
	for i := range f.keys {
		f.keys[i] = splitMix64(&x)
	}
	return f
}

// splitMix64 mirrors rng's seeding finalizer; duplicated here (it is
// three lines) so binning does not reach into rng internals.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// round is the keyed mixing function F(r, i); only its low h bits are
// used, so any 64-bit mixer works.
func (f *feistel) round(r uint64, i int) uint64 {
	z := (r + f.keys[i]) * 0xbf58476d1ce4e5b9
	z ^= z >> 31
	return z
}

// enc applies the 4 Feistel rounds on the full 2h-bit domain.
func (f *feistel) enc(x uint64) uint64 {
	l, r := x>>f.half, x&f.mask
	for i := 0; i < 4; i++ {
		l, r = r, l^(f.round(r, i)&f.mask)
	}
	return l<<f.half | r
}

// dec inverts enc.
func (f *feistel) dec(x uint64) uint64 {
	l, r := x>>f.half, x&f.mask
	for i := 3; i >= 0; i-- {
		l, r = r^(f.round(l, i)&f.mask), l
	}
	return l<<f.half | r
}

// apply maps rank j to its shuffled position, cycle-walking into range.
func (f *feistel) apply(j int) int {
	p := f.enc(uint64(j))
	for p >= f.m {
		p = f.enc(p)
	}
	return int(p)
}

// invert maps a shuffled position back to its rank.
func (f *feistel) invert(p int) int {
	j := f.dec(uint64(p))
	for j >= f.m {
		j = f.dec(j)
	}
	return int(j)
}
