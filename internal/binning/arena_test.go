package binning

import (
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

// The arena partition must satisfy the partition invariants — every member
// in exactly one bin, sizes within one of each other, node-less bins last —
// and stay bit-identical to the package-level RandomPartition while its
// buffers are recycled across calls.
func TestQuickArenaPartitionInvariants(t *testing.T) {
	var a Arena
	f := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw % 100)
		b := int(bRaw%32) + 1
		members := seq(n)

		fresh := RandomPartition(members, b, rng.New(seed))
		pooled := a.RandomPartition(members, b, rng.New(seed))

		if len(pooled) != b || len(fresh) != b {
			return false
		}
		seen := make(map[int]bool)
		minSize, maxSize := n+1, -1
		sawEmpty := false
		for i, bin := range pooled {
			if len(bin) == 0 {
				sawEmpty = true
			} else if sawEmpty {
				t.Logf("non-empty bin %d after an empty one", i)
				return false
			}
			if len(bin) < minSize {
				minSize = len(bin)
			}
			if len(bin) > maxSize {
				maxSize = len(bin)
			}
			for _, id := range bin {
				if id < 0 || id >= n || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		if len(seen) != n {
			return false
		}
		if b <= n && maxSize-minSize > 1 {
			t.Logf("bin sizes %d..%d differ by more than one", minSize, maxSize)
			return false
		}
		// Bit-identical to the allocating form, same seed.
		for i := range fresh {
			if len(fresh[i]) != len(pooled[i]) {
				return false
			}
			for j := range fresh[i] {
				if fresh[i][j] != pooled[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaPartitionDoesNotMutateInput(t *testing.T) {
	var a Arena
	members := seq(10)
	a.RandomPartition(members, 3, rng.New(5))
	for i, id := range members {
		if id != i {
			t.Fatalf("members[%d] = %d after partition, want %d", i, id, i)
		}
	}
}

func TestAppendProbabilisticBinMatchesProbabilisticBin(t *testing.T) {
	members := seq(64)
	want := ProbabilisticBin(members, 0.3, rng.New(11))
	buf := make([]int, 0, 64)
	got := AppendProbabilisticBin(buf[:0], members, 0.3, rng.New(11))
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %d vs %d", i, got[i], want[i])
		}
	}
}
