package binning

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func checkPartition(t *testing.T, members []int, bins [][]int, b int) {
	t.Helper()
	if len(bins) != b {
		t.Fatalf("got %d bins, want %d", len(bins), b)
	}
	seen := make(map[int]bool)
	total := 0
	for _, bin := range bins {
		total += len(bin)
		for _, id := range bin {
			if seen[id] {
				t.Fatalf("node %d in two bins", id)
			}
			seen[id] = true
		}
	}
	if total != len(members) {
		t.Fatalf("partition covers %d nodes, want %d", total, len(members))
	}
	for _, id := range members {
		if !seen[id] {
			t.Fatalf("node %d missing from partition", id)
		}
	}
	// Sizes differ by at most one, larger bins first, empty bins last.
	for i := 1; i < len(bins); i++ {
		if len(bins[i]) > len(bins[i-1]) {
			t.Fatalf("bin sizes not non-increasing: %d then %d", len(bins[i-1]), len(bins[i]))
		}
	}
	if len(bins) > 0 {
		if len(bins[0])-len(bins[len(bins)-1]) > 1 && len(bins[len(bins)-1]) != 0 {
			t.Fatalf("bin sizes differ by more than one")
		}
	}
}

func TestRandomPartitionBasic(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct{ n, b int }{
		{10, 2}, {10, 3}, {10, 10}, {10, 16}, {1, 4}, {0, 3}, {128, 32},
	} {
		bins := RandomPartition(seq(tc.n), tc.b, r)
		checkPartition(t, seq(tc.n), bins, tc.b)
	}
}

func TestRandomPartitionPanicsOnZeroBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomPartition(seq(4), 0, rng.New(1))
}

func TestRandomPartitionDoesNotMutateInput(t *testing.T) {
	r := rng.New(2)
	members := seq(20)
	RandomPartition(members, 4, r)
	for i, v := range members {
		if v != i {
			t.Fatal("input slice mutated")
		}
	}
}

func TestRandomPartitionIsRandom(t *testing.T) {
	// Node 0 should land in each of 4 bins roughly uniformly.
	r := rng.New(3)
	const trials = 20000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		bins := RandomPartition(seq(8), 4, r)
		for bi, bin := range bins {
			for _, id := range bin {
				if id == 0 {
					counts[bi]++
				}
			}
		}
	}
	want := float64(trials) / 4
	for bi, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("node 0 in bin %d %d times, want ~%.0f", bi, c, want)
		}
	}
}

func TestDeterministicPartition(t *testing.T) {
	bins := DeterministicPartition(seq(10), 3, rng.New(1))
	checkPartition(t, seq(10), bins, 3)
	// Contiguity: each bin is a run of consecutive IDs.
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for i := range want {
		if len(bins[i]) != len(want[i]) {
			t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
		}
		for j := range want[i] {
			if bins[i][j] != want[i][j] {
				t.Fatalf("bin %d = %v, want %v", i, bins[i], want[i])
			}
		}
	}
}

func TestProbabilisticBinEdges(t *testing.T) {
	r := rng.New(4)
	if got := ProbabilisticBin(seq(10), 0, r); len(got) != 0 {
		t.Fatalf("q=0 produced %v", got)
	}
	if got := ProbabilisticBin(seq(10), 1, r); len(got) != 10 {
		t.Fatalf("q=1 produced %d members", len(got))
	}
}

func TestProbabilisticBinRate(t *testing.T) {
	r := rng.New(5)
	const q, trials, n = 0.25, 2000, 40
	total := 0
	for i := 0; i < trials; i++ {
		total += len(ProbabilisticBin(seq(n), q, r))
	}
	mean := float64(total) / trials
	if math.Abs(mean-q*n) > 0.3 {
		t.Fatalf("mean bin size = %v, want ~%v", mean, q*n)
	}
}

func TestProbabilisticBinMembersValid(t *testing.T) {
	r := rng.New(6)
	members := []int{3, 7, 11, 15}
	valid := map[int]bool{3: true, 7: true, 11: true, 15: true}
	for i := 0; i < 100; i++ {
		for _, id := range ProbabilisticBin(members, 0.5, r) {
			if !valid[id] {
				t.Fatalf("bin contains non-member %d", id)
			}
		}
	}
}

func TestNonEmpty(t *testing.T) {
	bins := [][]int{{1, 2}, {}, {3}, {}}
	got := NonEmpty(bins)
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 3 {
		t.Fatalf("NonEmpty = %v", got)
	}
	if len(NonEmpty([][]int{{}, {}})) != 0 {
		t.Fatal("all-empty input not filtered")
	}
}

// TestQuickPartitionProperty: for random (n, b, seed), both strategies
// produce exact partitions.
func TestQuickPartitionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw % 100)
		b := int(bRaw%32) + 1
		r := rng.New(seed)
		for _, strat := range []Strategy{RandomPartition, DeterministicPartition} {
			bins := strat(seq(n), b, r)
			if len(bins) != b {
				return false
			}
			seen := make(map[int]bool)
			for _, bin := range bins {
				for _, id := range bin {
					if id < 0 || id >= n || seen[id] {
						return false
					}
					seen[id] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
