// Package binning implements the group-formation strategies the paper's
// algorithms use: random equal-sized partitions (Algorithms 1-3),
// per-node probabilistic sampling bins (Sections V-D and VI), and a
// deterministic contiguous partition (the Aspnes et al. variant, kept for
// ablation).
package binning

import (
	"tcast/internal/rng"
)

// RandomPartition splits members into b bins of nearly equal size by
// shuffling the members uniformly and chunking the shuffled order into b
// consecutive bins. Bin sizes are therefore exact — they differ by at most
// one node — not binomially distributed as independent uniform assignment
// would make them; only the *membership* of each bin is random. This is
// the balls-into-bins scheme the paper's cost analysis assumes (every
// round polls bins of size ~n/b). When b > len(members), the trailing bins
// are empty of nodes; following Section IV-C they are placed last so early
// termination never pays for them. It panics if b <= 0.
func RandomPartition(members []int, b int, r *rng.Source) [][]int {
	var a Arena
	return a.RandomPartition(members, b, r)
}

// Arena owns the backing arrays of a partition — the shuffled member
// buffer and the bin-header slice — so hot loops can re-partition every
// round without allocating. The zero value is ready to use; each
// RandomPartition call invalidates the bins returned by the previous one.
// An Arena is not safe for concurrent use; pooled trial state holds one
// arena per trial slot.
type Arena struct {
	buf  []int
	bins [][]int
}

// RandomPartition is binning.RandomPartition drawing the identical random
// sequence, with the shuffle performed in the arena's reused buffer and
// the bin headers written into its reused slice.
func (a *Arena) RandomPartition(members []int, b int, r *rng.Source) [][]int {
	if b <= 0 {
		panic("binning: bin count must be positive")
	}
	n := len(members)
	a.buf = shuffleMembers(a.buf, members, r)
	if cap(a.bins) < b {
		a.bins = make([][]int, b)
	}
	bins := a.bins[:b]
	for i := 0; i < b; i++ {
		lo, hi := chunkBounds(n, b, i)
		bins[i] = a.buf[lo:hi]
	}
	return bins
}

// shuffleMembers is the one shared draw loop behind every random
// partition in this package — binning.RandomPartition, Arena pooling,
// and the Streamer's shuffled mode all route through it, which is the
// draw-order contract the pooled-vs-fresh and streamed-vs-materialized
// property tests pin:
//
//   - exactly max(0, len(members)-1) Intn draws are consumed — the
//     Fisher-Yates sequence of rng.ShuffleInts, swap index i descending
//     from len-1 — and nothing else;
//   - the shuffle acts on a copy, so the caller's member order is never
//     observed or disturbed.
//
// The shuffled members land in buf (grown as needed) and the resized
// buffer is returned for reuse.
func shuffleMembers(buf, members []int, r *rng.Source) []int {
	n := len(members)
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	copy(buf, members)
	r.ShuffleInts(buf)
	return buf
}

// chunkBounds returns the half-open range [lo, hi) of shuffled positions
// bin i covers when n members split into b bins: the first n%b bins get
// ceil(n/b) members, the rest floor(n/b), and bins beyond n are empty —
// which places them last, so early termination never pays for them
// (Section IV-C). Every partitioner in this package — materialized or
// streamed — derives its bin extents from this one rule.
func chunkBounds(n, b, i int) (lo, hi int) {
	base := n / b
	extra := n % b
	lo = i*base + min(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}

// DeterministicPartition splits members into b contiguous chunks without
// shuffling — the deterministic distribution used in the companion
// theoretical work. It panics if b <= 0.
func DeterministicPartition(members []int, b int, r *rng.Source) [][]int {
	if b <= 0 {
		panic("binning: bin count must be positive")
	}
	n := len(members)
	bins := make([][]int, b)
	base := n / b
	extra := n % b
	pos := 0
	for i := 0; i < b; i++ {
		size := base
		if i < extra {
			size++
		}
		bins[i] = members[pos : pos+size]
		pos += size
	}
	return bins
}

// ProbabilisticBin draws one sampling bin: each member joins independently
// with probability q. This is the probe of Section V-D (q = 2/t) and the
// repeated sample of Section VI (q = 1/b).
func ProbabilisticBin(members []int, q float64, r *rng.Source) []int {
	return AppendProbabilisticBin(nil, members, q, r)
}

// AppendProbabilisticBin is ProbabilisticBin appending into dst (pass a
// reused buffer sliced to length zero to draw the bin without allocating);
// the Bernoulli draws are identical to ProbabilisticBin's.
func AppendProbabilisticBin(dst, members []int, q float64, r *rng.Source) []int {
	for _, id := range members {
		if r.Bernoulli(q) {
			dst = append(dst, id)
		}
	}
	return dst
}

// Strategy names a partition function so algorithm configs can select one.
type Strategy func(members []int, b int, r *rng.Source) [][]int

// NonEmpty filters a partition down to the bins that contain at least one
// node, preserving order. Per Section IV-C, only these bins cost a query.
func NonEmpty(bins [][]int) [][]int {
	out := bins[:0:0]
	for _, bin := range bins {
		if len(bin) > 0 {
			out = append(out, bin)
		}
	}
	return out
}
