package trace

// Head-rate poll-span sampling. A full trace carries one leaf span per
// poll — O(polls) memory per session — which is exactly the telemetry
// term that grows without bound on large fields. Sampling records one
// poll leaf in every k, but deterministically: the keep/skip decision is
// a splitmix hash of (caller key, session name, poll index), not a drawn
// random number, so
//
//   - no RNG stream is consumed — a sampled run's algorithm decisions,
//     tables, and audit verdicts are byte-identical to an unsampled run;
//   - identical runs sample identical spans, so trace diffs stay
//     meaningful across re-runs and worker counts (the caller key is the
//     trial index, which does not depend on scheduling).
//
// Unsampled polls still advance the virtual clock and the session's
// poll/node counters: every non-leaf span width and session attribute
// remains exact; only the per-poll leaves are thinned. Each recorded
// leaf carries AttrSampleRate, and Analyze scales Polls/NodesPolled by
// that inverse rate so sampled analyses estimate the true totals.

// AttrSampleRate is the poll-span attribute carrying the sampling rate
// k ("this leaf stands for k polls"). Absent on unsampled traces.
const AttrSampleRate = "sample_rate"

// SetSampling configures head-rate sampling: record one poll span in
// every k, keyed so that the same (key, session, poll index) always
// makes the same decision. k <= 1 records every poll — the default, and
// byte-identical to the pre-sampling trace format. The key is typically
// the trial index; callers sharing a builder across sessions get
// per-session decorrelation from the session-name hash mixed in at
// StartSession.
func (s *SpanQuerier) SetSampling(k int, key uint64) {
	if k < 0 {
		k = 0
	}
	s.sampleEvery = k
	s.sampleKey = key
}

// sampled decides whether the current poll's leaf span is recorded.
func (s *SpanQuerier) sampled() bool {
	if s.sampleEvery <= 1 {
		return true
	}
	return hash64(s.sessionKey^uint64(s.polls))%uint64(s.sampleEvery) == 0
}

// hash64 is the SplitMix64 finalizer — the same deterministic mixer the
// rng package seeds streams with and internal/sketch keys reservoirs
// with, duplicated here to keep trace dependency-free.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string into a 64-bit key by iterating hash64 over
// its bytes.
func hashString(s string) uint64 {
	h := uint64(len(s))
	for i := 0; i < len(s); i++ {
		h = hash64(h ^ uint64(s[i]))
	}
	return h
}
