package trace

import (
	"fmt"
	"strings"
)

// The differ pinpoints the first divergent span between two traces — the
// structured successor of the Replayer's poll-by-poll divergence check:
// instead of learning only that poll i asked a different bin, the caller
// learns which experiment/trial/session/round the first difference sits
// in and which field moved.

// flatSpan is one span in preorder together with its ancestry path.
type flatSpan struct {
	path string
	span *Span
}

func flatten(t *Trace) []flatSpan {
	var out []flatSpan
	var stack []string
	var walk func(sp *Span)
	walk = func(sp *Span) {
		stack = append(stack, sp.Name)
		out = append(out, flatSpan{path: strings.Join(stack, " / "), span: sp})
		for _, c := range sp.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// spanDelta describes how two same-position spans differ; empty means
// they match.
func spanDelta(a, b *Span) string {
	switch {
	case a.Kind != b.Kind:
		return fmt.Sprintf("kind %s vs %s", a.Kind, b.Kind)
	case a.Name != b.Name:
		return fmt.Sprintf("name %q vs %q", a.Name, b.Name)
	case a.Start != b.Start:
		return fmt.Sprintf("start %d vs %d", a.Start, b.Start)
	case a.End != b.End:
		return fmt.Sprintf("end %d vs %d", a.End, b.End)
	}
	if len(a.Attrs) != len(b.Attrs) {
		return fmt.Sprintf("%d attrs vs %d", len(a.Attrs), len(b.Attrs))
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return fmt.Sprintf("attr %s=%q vs %s=%q",
				a.Attrs[i].Key, a.Attrs[i].Value, b.Attrs[i].Key, b.Attrs[i].Value)
		}
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("%d children vs %d", len(a.Children), len(b.Children))
	}
	return ""
}

// DiffResult reports the first divergence between two traces.
type DiffResult struct {
	// Identical is true when every span (and the metadata) matches.
	Identical bool
	// Index is the preorder position of the first divergent span, or the
	// length of the shorter trace when one is a prefix of the other.
	Index int
	// Path is the divergent span's ancestry (names joined by " / ").
	Path string
	// Detail says which field differs, or that a trace ended early.
	Detail string
}

// String renders the result for CLI output.
func (d DiffResult) String() string {
	if d.Identical {
		return "traces identical"
	}
	if d.Path == "" {
		return "traces differ: " + d.Detail
	}
	return fmt.Sprintf("first divergent span #%d at %q: %s", d.Index, d.Path, d.Detail)
}

// Diff compares two traces span by span in preorder and reports the first
// divergence.
func Diff(a, b *Trace) DiffResult {
	if d := attrsDelta(a.Meta, b.Meta); d != "" {
		return DiffResult{Detail: "metadata differs: " + d}
	}
	fa, fb := flatten(a), flatten(b)
	n := len(fa)
	if len(fb) < n {
		n = len(fb)
	}
	for i := 0; i < n; i++ {
		if fa[i].path != fb[i].path {
			return DiffResult{Index: i, Path: fa[i].path,
				Detail: fmt.Sprintf("position holds %q vs %q", fa[i].path, fb[i].path)}
		}
		if d := spanDelta(fa[i].span, fb[i].span); d != "" {
			return DiffResult{Index: i, Path: fa[i].path, Detail: d}
		}
	}
	if len(fa) != len(fb) {
		shorter, longer, which := fa, fb, "first"
		if len(fb) < len(fa) {
			shorter, longer, which = fb, fa, "second"
		}
		return DiffResult{Index: len(shorter), Path: longer[len(shorter)].path,
			Detail: fmt.Sprintf("%s trace ends after %d spans, other has %d", which, len(shorter), len(longer))}
	}
	return DiffResult{Identical: true, Index: len(fa)}
}

func attrsDelta(a, b []Attr) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d entries vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("%s=%q vs %s=%q", a[i].Key, a[i].Value, b[i].Key, b[i].Value)
		}
	}
	return ""
}
