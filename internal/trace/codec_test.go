package trace_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tcast/internal/rng"
	"tcast/internal/trace"
)

// randomTrace builds a pseudo-random but deterministic span forest, used
// by the round-trip property test below.
func randomTrace(r *rng.Source) *trace.Trace {
	b := trace.NewBuilder()
	b.SetMeta(trace.StringAttr("cmd", "prop"), trace.Int64Attr("seed", 42))
	roots := 1 + r.Intn(3)
	for i := 0; i < roots; i++ {
		b.Begin(trace.KindExperiment, "exp")
		depth := 1 + r.Intn(3)
		for d := 0; d < depth; d++ {
			sp := b.Begin(trace.SpanKind(1+r.Intn(trace.NumSpanKinds-1)), "span")
			b.Advance(int64(r.Intn(10)))
			if r.Intn(2) == 0 {
				sp.SetAttr(
					trace.IntAttr("x", r.Intn(100)),
					trace.FloatAttr("f", float64(r.Intn(1000))/7),
					trace.BoolAttr("b", r.Intn(2) == 0),
				)
			}
		}
		for d := 0; d < depth; d++ {
			b.End()
		}
		b.End()
	}
	return b.Trace()
}

// TestCodecRoundTripProperty is the encode→decode→encode property: for
// many pseudo-random traces the second encoding must be byte-identical to
// the first — the invariant behind same-seed trace files comparing equal.
func TestCodecRoundTripProperty(t *testing.T) {
	root := rng.New(2011)
	for i := 0; i < 50; i++ {
		tr := randomTrace(root.Split(uint64(i)))
		enc1, err := trace.EncodeBytes(tr)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		dec, err := trace.Decode(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		enc2, err := trace.EncodeBytes(dec)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("case %d: encode→decode→encode not byte-identical:\n%s\nvs\n%s", i, enc1, enc2)
		}
		if d := trace.Diff(tr, dec); !d.Identical {
			t.Fatalf("case %d: decoded trace differs: %s", i, d)
		}
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	tr := randomTrace(rng.New(5))
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(tr, got); !d.Identical {
		t.Fatalf("file round trip differs: %s", d)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	header := `{"schema":"tcast-trace","version":1,"unit":"slot"}`
	for name, input := range map[string]string{
		"empty":          "",
		"wrong schema":   `{"schema":"nope","version":1}`,
		"wrong version":  `{"schema":"tcast-trace","version":99}`,
		"bad json":       header + "\n{not json",
		"unknown kind":   header + "\n" + `{"id":0,"parent":-1,"kind":"warp","name":"x","start":0,"end":1}`,
		"unseen parent":  header + "\n" + `{"id":0,"parent":7,"kind":"poll","name":"x","start":0,"end":1}`,
		"id out of step": header + "\n" + `{"id":3,"parent":-1,"kind":"poll","name":"x","start":0,"end":1}`,
	} {
		if _, err := trace.Decode(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDiffReportsFirstDivergence(t *testing.T) {
	// Diverge only in the second poll's attrs so the enclosing spans stay
	// identical and the diff pinpoints the poll itself.
	mk := func(binSize int) *trace.Trace {
		b := trace.NewBuilder()
		b.Begin(trace.KindSession, "s")
		b.Begin(trace.KindPoll, "p0")
		b.Advance(1)
		b.End()
		sp := b.Begin(trace.KindPoll, "p1")
		b.Advance(1)
		sp.SetAttr(trace.IntAttr("bin_size", binSize))
		b.End()
		b.End()
		return b.Trace()
	}
	if d := trace.Diff(mk(4), mk(4)); !d.Identical {
		t.Fatalf("identical traces diff: %s", d)
	}
	d := trace.Diff(mk(4), mk(8))
	if d.Identical {
		t.Fatal("divergent traces reported identical")
	}
	if !strings.Contains(d.Path, "p1") {
		t.Errorf("divergence path %q does not name p1", d.Path)
	}
	if !strings.Contains(d.String(), "first divergent span") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDiffMetadata(t *testing.T) {
	a, b := trace.NewBuilder(), trace.NewBuilder()
	a.SetMeta(trace.Int64Attr("seed", 1))
	b.SetMeta(trace.Int64Attr("seed", 2))
	d := trace.Diff(a.Trace(), b.Trace())
	if d.Identical || !strings.Contains(d.Detail, "metadata") {
		t.Fatalf("metadata divergence missed: %+v", d)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	a, b := trace.NewBuilder(), trace.NewBuilder()
	a.Begin(trace.KindSession, "s")
	a.End()
	b.Begin(trace.KindSession, "s")
	b.End()
	b.Begin(trace.KindSession, "extra")
	b.End()
	d := trace.Diff(a.Trace(), b.Trace())
	if d.Identical || !strings.Contains(d.Detail, "ends after") {
		t.Fatalf("length mismatch missed: %+v", d)
	}
}
