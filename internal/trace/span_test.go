package trace_test

import (
	"strings"
	"testing"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

func TestBuilderHierarchy(t *testing.T) {
	b := trace.NewBuilder()
	b.SetMeta(trace.StringAttr("cmd", "test"))
	exp := b.Begin(trace.KindExperiment, "e")
	b.Begin(trace.KindTrial, "t0")
	b.Advance(5)
	b.End()
	b.Begin(trace.KindTrial, "t1")
	b.Advance(3)
	b.End()
	b.End()
	tr := b.Trace()

	if len(tr.Roots) != 1 || tr.Roots[0] != exp {
		t.Fatalf("roots = %v", tr.Roots)
	}
	if got := len(exp.Children); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	if exp.Start != 0 || exp.End != 8 {
		t.Errorf("experiment interval [%d,%d), want [0,8)", exp.Start, exp.End)
	}
	if c := exp.Children[1]; c.Start != 5 || c.End != 8 {
		t.Errorf("t1 interval [%d,%d), want [5,8)", c.Start, c.End)
	}
	if tr.NumSpans() != 3 {
		t.Errorf("NumSpans = %d, want 3", tr.NumSpans())
	}
}

func TestBuilderPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative advance")
		}
	}()
	trace.NewBuilder().Advance(-1)
}

func TestBuilderPanicsOnUnbalancedEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on End without Begin")
		}
	}()
	trace.NewBuilder().End()
}

func TestTraceClosesOpenSpans(t *testing.T) {
	b := trace.NewBuilder()
	b.Begin(trace.KindSession, "s")
	b.Advance(4)
	tr := b.Trace()
	if b.Open() != 0 {
		t.Fatalf("Open = %d after Trace", b.Open())
	}
	if tr.Roots[0].End != 4 {
		t.Fatalf("auto-closed span ends at %d, want 4", tr.Roots[0].End)
	}
}

// TestSpanQuerierSession drives a real 2tBins session through the span
// recorder and checks the span tree mirrors the session structure.
func TestSpanQuerierSession(t *testing.T) {
	r := rng.New(7)
	ch, _ := fastsim.RandomPositives(64, 10, fastsim.DefaultConfig(), r.Split(1))
	b := trace.NewBuilder()
	sq := trace.NewSpanQuerier(ch, b)
	sq.StartSession("2tBins", trace.IntAttr("n", 64))
	res, err := (core.TwoTBins{}).Run(sq, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	sq.EndSession(trace.IntAttr("queries", res.Queries))
	tr := b.Trace()

	if len(tr.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.Roots))
	}
	sess := tr.Roots[0]
	if sess.Kind != trace.KindSession || sess.Name != "2tBins" {
		t.Fatalf("root = %s %q", sess.Kind, sess.Name)
	}
	// One slot per poll on the abstract channel: the session's virtual
	// extent equals its query count.
	if sess.Slots() != int64(res.Queries) {
		t.Errorf("session slots = %d, want %d (queries)", sess.Slots(), res.Queries)
	}
	polls := 0
	rounds := 0
	sess.Walk(func(_ int, sp *trace.Span) {
		switch sp.Kind {
		case trace.KindPoll:
			polls++
			if sp.Slots() != 1 {
				t.Errorf("poll %q spans %d slots, want 1", sp.Name, sp.Slots())
			}
			if _, ok := sp.Attr("bin_size"); !ok {
				t.Errorf("poll %q missing bin_size", sp.Name)
			}
		case trace.KindRound:
			rounds++
		}
	})
	if polls != res.Queries {
		t.Errorf("poll spans = %d, want %d", polls, res.Queries)
	}
	if rounds != res.Rounds {
		t.Errorf("round spans = %d, want %d (res.Rounds)", rounds, res.Rounds)
	}
	if v, ok := sess.Attr("polls"); !ok || v != itoa(res.Queries) {
		t.Errorf("session polls attr = %q, want %d", v, res.Queries)
	}
	// The abstract channel annotates the session with its substrate.
	if v, ok := sess.Attr("substrate"); !ok || v != "fastsim" {
		t.Errorf("substrate attr = %q, want fastsim", v)
	}
}

// TestSpanQuerierPacketSlots checks virtual time rides the packet
// substrate's own slot meter: 2 slots per pollcast query, 3 per backcast.
func TestSpanQuerierPacketSlots(t *testing.T) {
	for _, tc := range []struct {
		prim  pollcast.Primitive
		model query.CollisionModel
		want  int64
	}{
		{pollcast.Pollcast, query.OnePlus, 2},
		{pollcast.Backcast, query.OnePlus, 3},
	} {
		r := rng.New(3)
		parts := make([]*pollcast.Participant, 16)
		for id := range parts {
			parts[id] = &pollcast.Participant{ID: id}
		}
		for _, id := range r.Split(1).Sample(16, 5) {
			parts[id].Positive = true
		}
		med := radio.NewMedium(radio.Config{}, r.Split(2))
		sess, err := pollcast.NewSession(med, 1<<16, parts, tc.prim, tc.model)
		if err != nil {
			t.Fatal(err)
		}
		b := trace.NewBuilder()
		sq := trace.NewSpanQuerier(sess, b)
		sq.StartSession("probe")
		res, err := (core.TwoTBins{}).Run(sq, 16, 4, r.Split(3))
		if err != nil {
			t.Fatal(err)
		}
		sq.EndSession()
		tr := b.Trace()
		root := tr.Roots[0]
		if got, want := root.Slots(), tc.want*int64(res.Queries); got != want {
			t.Errorf("%v: session slots = %d, want %d (%d slots x %d queries)",
				tc.prim, got, want, tc.want, res.Queries)
		}
		root.Walk(func(_ int, sp *trace.Span) {
			if sp.Kind == trace.KindPoll && sp.Slots() != tc.want {
				t.Errorf("%v: poll spans %d slots, want %d", tc.prim, sp.Slots(), tc.want)
			}
		})
		// The packet session contributes its Annotator attributes.
		if v, ok := root.Attr("primitive"); !ok || v != tc.prim.String() {
			t.Errorf("%v: primitive attr = %q", tc.prim, v)
		}
	}
}

func TestAnalyze(t *testing.T) {
	b := trace.NewBuilder()
	b.Begin(trace.KindSession, "s")
	for i := 0; i < 3; i++ {
		sp := b.Begin(trace.KindPoll, "p")
		b.Advance(2)
		sp.SetAttr(trace.IntAttr("bin_size", 4))
		b.End()
	}
	b.End()
	a := trace.Analyze(b.Trace())

	if a.Polls != 3 || a.NodesPolled != 12 {
		t.Errorf("polls=%d nodes=%d, want 3/12", a.Polls, a.NodesPolled)
	}
	if a.Slots != 6 || a.Spans != 4 {
		t.Errorf("slots=%d spans=%d, want 6/4", a.Slots, a.Spans)
	}
	sess := a.Phases[trace.KindSession]
	if sess.Slots != 6 || sess.SelfSlots != 0 {
		t.Errorf("session phase slots=%d self=%d, want 6/0", sess.Slots, sess.SelfSlots)
	}
	out := a.Render()
	if !strings.Contains(out, "poll") || !strings.Contains(out, "3 polls") {
		t.Errorf("render missing poll stats:\n%s", out)
	}
}

func TestParseSpanKindRoundTrip(t *testing.T) {
	for k := trace.SpanKind(0); int(k) < trace.NumSpanKinds; k++ {
		got, err := trace.ParseSpanKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseSpanKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := trace.ParseSpanKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func itoa(n int) string {
	return trace.IntAttr("", n).Value
}
