package trace_test

import (
	"strings"
	"testing"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

func TestRecorderCapturesSession(t *testing.T) {
	r := rng.New(1)
	ch, _ := fastsim.RandomPositives(32, 10, fastsim.DefaultConfig(), r.Split(1))
	rec := trace.NewRecorder(ch)
	res, err := (core.TwoTBins{}).Run(rec, 32, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != res.Queries {
		t.Fatalf("recorded %d polls, session reported %d", rec.Len(), res.Queries)
	}
	for i, e := range rec.Events() {
		if e.Index != i {
			t.Fatalf("event %d has index %d", i, e.Index)
		}
		if len(e.Bin) == 0 {
			t.Fatalf("event %d polled an empty bin", i)
		}
	}
}

func TestRecorderTraitsForwarded(t *testing.T) {
	r := rng.New(2)
	ch, _ := fastsim.RandomPositives(8, 2, fastsim.TwoPlusConfig(), r)
	rec := trace.NewRecorder(ch)
	if tr := rec.Traits(); tr.Model != query.TwoPlus || !tr.CaptureEffect {
		t.Fatalf("traits not forwarded: %+v", tr)
	}
}

func TestRecorderBinsAreCopies(t *testing.T) {
	r := rng.New(3)
	ch, _ := fastsim.RandomPositives(8, 1, fastsim.DefaultConfig(), r)
	rec := trace.NewRecorder(ch)
	bin := []int{0, 1, 2}
	rec.Query(bin)
	bin[0] = 99
	if rec.Events()[0].Bin[0] == 99 {
		t.Fatal("recorded bin aliases the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	r := rng.New(4)
	ch, _ := fastsim.RandomPositives(64, 20, fastsim.DefaultConfig(), r.Split(1))
	rec := trace.NewRecorder(ch)
	if _, err := (core.TwoTBins{}).Run(rec, 64, 8, r.Split(2)); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if s.Polls != rec.Len() {
		t.Fatalf("Polls = %d, want %d", s.Polls, rec.Len())
	}
	if s.Empty+s.Active+s.Decoded+s.Collisions != s.Polls {
		t.Fatalf("response kinds do not add up: %+v", s)
	}
	if s.Active == 0 {
		t.Fatal("x=20 >= t=8 session saw no active bins")
	}
	if s.NodesPolled < s.Polls {
		t.Fatalf("NodesPolled %d below poll count %d", s.NodesPolled, s.Polls)
	}
}

func TestRenderFormat(t *testing.T) {
	r := rng.New(5)
	ch := fastsim.New(12, []int{3}, fastsim.TwoPlusConfig(), r)
	rec := trace.NewRecorder(ch)
	rec.Query([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}) // decodes node 3
	rec.Query([]int{0, 1})                                 // empty
	out := rec.Render()
	if !strings.Contains(out, "decoded (node 3)") {
		t.Errorf("decode line missing: %s", out)
	}
	if !strings.Contains(out, "…+4") {
		t.Errorf("long-bin ellipsis missing: %s", out)
	}
	if !strings.Contains(out, "empty") {
		t.Errorf("empty line missing: %s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("want 2 lines, got %d", lines)
	}
}

func TestReset(t *testing.T) {
	r := rng.New(6)
	ch, _ := fastsim.RandomPositives(8, 2, fastsim.DefaultConfig(), r)
	rec := trace.NewRecorder(ch)
	rec.Query([]int{0})
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset kept events")
	}
}

// TestReplayRoundTrip: replaying a recorded session with the same RNG
// stream reproduces the identical decision and poll sequence — the
// determinism property the experiment harness relies on.
func TestReplayRoundTrip(t *testing.T) {
	for _, algSeed := range []uint64{7, 8, 9, 10} {
		root := rng.New(algSeed)
		ch, _ := fastsim.RandomPositives(64, 12, fastsim.DefaultConfig(), root.Split(1))
		rec := trace.NewRecorder(ch)
		want, err := (core.ABNS{P0: 1}).Run(rec, 64, 8, root.Split(2))
		if err != nil {
			t.Fatal(err)
		}

		rep := trace.NewReplayer(rec.Events(), rec.Traits())
		got, err := (core.ABNS{P0: 1}).Run(rep, 64, 8, rng.New(algSeed).Split(2))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Err() != nil {
			t.Fatal(rep.Err())
		}
		if !rep.Done() {
			t.Fatal("replay did not consume every recorded poll")
		}
		if got != want {
			t.Fatalf("replayed result %+v differs from recorded %+v", got, want)
		}
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	events := []trace.Event{{Index: 0, Bin: []int{1, 2}, Response: query.Response{Kind: query.Empty}}}
	rep := trace.NewReplayer(events, query.Traits{})
	rep.Query([]int{3, 4})
	if rep.Err() == nil {
		t.Fatal("divergent bin not detected")
	}
}

func TestReplayDetectsExhaustion(t *testing.T) {
	rep := trace.NewReplayer(nil, query.Traits{})
	rep.Query([]int{1})
	if rep.Err() == nil {
		t.Fatal("exhausted replay not detected")
	}
}

// TestMustDone covers the three verdicts: clean complete replay → nil,
// early stop → error, and diverged replay → the *first* error is kept even
// after further polls.
func TestMustDone(t *testing.T) {
	events := []trace.Event{
		{Index: 0, Bin: []int{1}, Response: query.Response{Kind: query.Empty}},
		{Index: 1, Bin: []int{2}, Response: query.Response{Kind: query.Active}},
	}

	rep := trace.NewReplayer(events, query.Traits{})
	rep.Query([]int{1})
	rep.Query([]int{2})
	if err := rep.MustDone(); err != nil {
		t.Errorf("clean replay: MustDone = %v", err)
	}

	rep = trace.NewReplayer(events, query.Traits{})
	rep.Query([]int{1})
	if err := rep.MustDone(); err == nil {
		t.Error("early stop: MustDone = nil, want error")
	}

	rep = trace.NewReplayer(events, query.Traits{})
	rep.Query([]int{9}) // diverges at poll 0
	first := rep.Err()
	rep.Query([]int{2}) // would match poll 1, but replay is already a sink
	rep.Query([]int{3})
	if rep.Err() != first {
		t.Errorf("later polls replaced the first error: %v -> %v", first, rep.Err())
	}
	if err := rep.MustDone(); err != first {
		t.Errorf("diverged: MustDone = %v, want first error %v", err, first)
	}
}
