package trace

import (
	"bytes"
	"strconv"
	"testing"

	"tcast/internal/query"
)

// fixedQuerier answers every poll Active at one slot per query.
type fixedQuerier struct{ polls int }

func (f *fixedQuerier) Query(bin []int) query.Response {
	f.polls++
	return query.Response{Kind: query.Active}
}
func (f *fixedQuerier) Traits() query.Traits { return query.Traits{Model: query.OnePlus} }

// runSampledSession drives one 100-poll session at the given rate and
// returns its encoded trace.
func runSampledSession(k int, key uint64) *Trace {
	b := NewBuilder()
	sq := NewSpanQuerier(&fixedQuerier{}, b)
	sq.SetSampling(k, key)
	sq.StartSession("2tbins", IntAttr("n", 128))
	sq.TraceRound(1)
	bin := []int{1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		sq.Query(bin)
	}
	sq.EndSession(BoolAttr("decision", true))
	return b.Trace()
}

// TestSamplingOffByteIdentical: k<=1 must produce exactly the
// pre-sampling trace — same spans, same attrs, same bytes.
func TestSamplingOffByteIdentical(t *testing.T) {
	enc := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := enc(runSampledSession(0, 0))
	for _, k := range []int{-3, 0, 1} {
		for _, key := range []uint64{0, 7, 1 << 40} {
			if got := enc(runSampledSession(k, key)); !bytes.Equal(got, base) {
				t.Fatalf("k=%d key=%d: trace differs from unsampled", k, key)
			}
		}
	}
}

// TestSamplingKeepsClockAndCountsExact: sampling thins poll leaves only;
// session width and poll/node counters must not change.
func TestSamplingKeepsClockAndCountsExact(t *testing.T) {
	full := runSampledSession(1, 0)
	sampled := runSampledSession(8, 42)

	fullSession := full.Roots[0]
	sampledSession := sampled.Roots[0]
	if fullSession.Slots() != sampledSession.Slots() {
		t.Errorf("session width changed: %d vs %d", sampledSession.Slots(), fullSession.Slots())
	}
	for _, key := range []string{"polls", "nodes_polled"} {
		fv, _ := fullSession.Attr(key)
		sv, _ := sampledSession.Attr(key)
		if fv != sv {
			t.Errorf("session attr %s changed: %q vs %q", key, sv, fv)
		}
	}

	fullA := Analyze(full)
	sampledA := Analyze(sampled)
	if fullA.SampledPolls != 100 || fullA.Polls != 100 {
		t.Fatalf("full analysis: %+v", fullA)
	}
	if sampledA.SampledPolls >= 100 || sampledA.SampledPolls == 0 {
		t.Fatalf("sampled trace recorded %d leaves, want 0 < n < 100", sampledA.SampledPolls)
	}
	if sampledA.Polls != sampledA.SampledPolls*8 {
		t.Errorf("scaled polls %d, want %d*8", sampledA.Polls, sampledA.SampledPolls)
	}
	if sampledA.NodesPolled != sampledA.SampledPolls*8*4 {
		t.Errorf("scaled node-polls %d", sampledA.NodesPolled)
	}
	// Every recorded leaf carries the rate attribute.
	for _, sp := range sampledSession.Children[0].Children {
		if sp.Kind != KindPoll {
			continue
		}
		if v, ok := sp.Attr(AttrSampleRate); !ok || v != "8" {
			t.Fatalf("poll leaf missing %s=8: %+v", AttrSampleRate, sp.Attrs)
		}
	}
}

// TestSamplingDeterministic: the same (key, session, index) always keeps
// the same spans; a different key keeps different ones.
func TestSamplingDeterministic(t *testing.T) {
	names := func(tr *Trace) []string {
		var out []string
		tr.Roots[0].Walk(func(_ int, sp *Span) {
			if sp.Kind == KindPoll {
				out = append(out, sp.Name)
			}
		})
		return out
	}
	a := names(runSampledSession(4, 7))
	b := names(runSampledSession(4, 7))
	if len(a) == 0 {
		t.Fatal("no polls sampled at k=4")
	}
	if strconv.Itoa(len(a)) != strconv.Itoa(len(b)) {
		t.Fatalf("re-run sampled %d vs %d spans", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-run sampled different spans: %v vs %v", a, b)
		}
	}
	c := names(runSampledSession(4, 8))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("keys 7 and 8 sampled identical span sets %v", a)
	}
	// Expected density: roughly 1/4 of 100 polls, loosely bounded.
	if len(a) < 10 || len(a) > 45 {
		t.Errorf("k=4 sampled %d/100 polls; want ~25", len(a))
	}
}
