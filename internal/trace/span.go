package trace

import (
	"fmt"
	"strconv"
	"sync"

	"tcast/internal/query"
)

// This file is the structured half of the package: a hierarchical span
// model over the flat Event list. A span is a named interval of *virtual*
// time — the paper's cost units (RCD slots), never the wall clock — so a
// trace of a seeded run is bit-identical across machines and re-runs.
// The hierarchy mirrors how the harness drives a session:
//
//	experiment → series → point → trial → session → round → poll
//
// Spans are produced by a Builder (the virtual clock plus an open-span
// stack) and the SpanQuerier middleware, which turns every group poll
// into a leaf span and listens for the algorithms' round boundaries.

// SpanKind classifies a span's level in the hierarchy.
type SpanKind int

const (
	// KindExperiment is one whole figure/table regeneration or CLI run.
	KindExperiment SpanKind = iota
	// KindSeries is one curve of a figure (one algorithm/configuration).
	KindSeries
	// KindPoint is one sweep point (one x value) of a series.
	KindPoint
	// KindTrial is one independent trial of a point.
	KindTrial
	// KindSession is one threshold-query session (one Algorithm.Run).
	KindSession
	// KindRound is one re-binning round within a session.
	KindRound
	// KindPoll is one group poll — the leaf that advances virtual time.
	KindPoll
)

var kindNames = [...]string{
	KindExperiment: "experiment",
	KindSeries:     "series",
	KindPoint:      "point",
	KindTrial:      "trial",
	KindSession:    "session",
	KindRound:      "round",
	KindPoll:       "poll",
}

// NumSpanKinds is the number of span kinds; SpanKind values are contiguous
// in [0, NumSpanKinds) so they can index fixed-size per-kind arrays.
const NumSpanKinds = len(kindNames)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("SpanKind(%d)", int(k))
}

// ParseSpanKind inverts String.
func ParseSpanKind(s string) (SpanKind, error) {
	for k, name := range kindNames {
		if name == s {
			return SpanKind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown span kind %q", s)
}

// Attr is one key/value annotation on a span. Values are kept as strings
// so encoding is trivially deterministic; the helpers format numbers with
// strconv, never floating-point defaults that could vary.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// StringAttr builds a string-valued attribute.
func StringAttr(key, value string) Attr { return Attr{Key: key, Value: value} }

// IntAttr builds an integer-valued attribute.
func IntAttr(key string, value int) Attr {
	return Attr{Key: key, Value: strconv.Itoa(value)}
}

// Int64Attr builds a 64-bit integer-valued attribute.
func Int64Attr(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// BoolAttr builds a boolean-valued attribute.
func BoolAttr(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// FloatAttr builds a float-valued attribute, formatted shortest-roundtrip
// so encode→decode→encode is byte-stable.
func FloatAttr(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Span is one named virtual-time interval. Start and End are measured in
// the session's cost units (RCD slots): polls advance the clock by the
// slots the substrate charges per group query (1 on the abstract channel,
// 2 for pollcast, 3 for backcast), so [Start, End) is exactly the span's
// share of the paper's time cost.
type Span struct {
	Kind  SpanKind
	Name  string
	Start int64
	End   int64
	// Attrs carries cost-model and substrate annotations (polls, nodes
	// polled, collision model, backoff counts, ...), in emission order.
	Attrs    []Attr
	Children []*Span
}

// SetAttr appends one annotation.
func (s *Span) SetAttr(a ...Attr) { s.Attrs = append(s.Attrs, a...) }

// Attr returns the value of the first attribute with the given key.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Slots returns the span's virtual-time width.
func (s *Span) Slots() int64 { return s.End - s.Start }

// Walk visits the span and every descendant in preorder.
func (s *Span) Walk(visit func(depth int, sp *Span)) { s.walk(0, visit) }

func (s *Span) walk(depth int, visit func(int, *Span)) {
	visit(depth, s)
	for _, c := range s.Children {
		c.walk(depth+1, visit)
	}
}

// Trace is a complete recording: a forest of root spans plus run metadata.
type Trace struct {
	// Meta annotates the whole recording (command, seed, substrate...).
	Meta []Attr
	// Roots are the top-level spans in emission order.
	Roots []*Span
}

// NumSpans counts every span in the trace.
func (t *Trace) NumSpans() int {
	n := 0
	for _, r := range t.Roots {
		r.Walk(func(int, *Span) { n++ })
	}
	return n
}

// Builder assembles a span tree against a virtual clock. Span order
// defines the encoded bytes, so a single builder is not safe for
// concurrent emission — with one exception: Fork may be called from
// concurrent trial goroutines. Each fork is an independent builder; the
// parent splices the fragments back in trial-index order with Graft, so a
// parallel run's trace depends only on the seed (see fork.go).
type Builder struct {
	now   int64
	roots []*Span
	stack []*Span
	meta  []Attr

	forkMu sync.Mutex
	forks  map[int]*Builder
}

// NewBuilder returns a builder with the virtual clock at zero.
func NewBuilder() *Builder { return &Builder{} }

// Now returns the current virtual time in slots.
func (b *Builder) Now() int64 { return b.now }

// Advance moves the virtual clock forward by d slots. Negative d panics:
// virtual time, like the sim kernel's, never rewinds.
func (b *Builder) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("trace: advancing clock by %d", d))
	}
	b.now += d
}

// SetMeta appends trace-level metadata.
func (b *Builder) SetMeta(a ...Attr) { b.meta = append(b.meta, a...) }

// Begin opens a span starting now, nested under the innermost open span,
// and returns it for annotation. The returned span is owned by the
// builder; callers must not retain it past the matching End.
func (b *Builder) Begin(kind SpanKind, name string) *Span {
	sp := &Span{Kind: kind, Name: name, Start: b.now}
	if len(b.stack) == 0 {
		b.roots = append(b.roots, sp)
	} else {
		parent := b.stack[len(b.stack)-1]
		parent.Children = append(parent.Children, sp)
	}
	b.stack = append(b.stack, sp)
	return sp
}

// End closes the innermost open span at the current virtual time. Ending
// with no span open panics: it means Begin/End calls are unbalanced.
func (b *Builder) End() {
	if len(b.stack) == 0 {
		panic("trace: End without open span")
	}
	sp := b.stack[len(b.stack)-1]
	sp.End = b.now
	b.stack = b.stack[:len(b.stack)-1]
}

// Open reports how many spans are still open.
func (b *Builder) Open() int { return len(b.stack) }

// Trace closes any still-open spans at the current clock and returns the
// finished recording. The builder can keep emitting afterwards, but the
// returned trace is a snapshot of this moment's forest.
func (b *Builder) Trace() *Trace {
	for len(b.stack) > 0 {
		b.End()
	}
	return &Trace{Meta: b.meta, Roots: b.roots}
}

// Annotator lets a layer contribute span attributes it alone knows —
// the collision model and capture configuration on the abstract channel,
// the primitive and slot ledger at packet level, backoff counts under the
// MAC baselines, poll grades and verdicts from the audit middleware.
// SpanQuerier collects attributes from every Annotator in the querier
// middleware chain when a session span closes (so an auditor stacked
// below the span layer annotates the session with its verdict).
type Annotator interface {
	TraceAttrs() []Attr
}

// roundTracer is the hook the core algorithms call (via an anonymous
// interface assertion, so core does not import trace) at every re-binning
// round boundary.
type roundTracer interface {
	TraceRound(round int)
}

// slotCounter is implemented by substrates that meter their own slot cost
// (pollcast.Session charges 2 slots per pollcast query, 3 per backcast
// query); SpanQuerier advances virtual time by the metered delta instead
// of the default one slot per poll.
type slotCounter interface {
	Slots() int
}

// SpanQuerier is middleware over query.Querier that renders a session as
// spans: StartSession opens the session span, every Query emits a poll
// leaf and advances the virtual clock by the poll's slot cost, the
// algorithms' round boundaries (TraceRound) open round spans, and
// EndSession closes everything, folding in the result and every
// substrate Annotator in the chain below.
//
// Like Recorder it consumes no randomness and never alters bins or
// responses, so a traced run is bit-identical to a bare one. Not safe for
// concurrent use.
type SpanQuerier struct {
	q query.Querier
	b *Builder

	session *Span
	round   *Span
	polls   int
	nodes   int

	slots     slotCounter
	lastSlots int

	// Head-rate poll sampling (see SetSampling): record one poll leaf in
	// sampleEvery, chosen by a splitmix hash of (sampleKey, session name,
	// poll index). 0 and 1 record every poll.
	sampleEvery int
	sampleKey   uint64
	sessionKey  uint64
}

// NewSpanQuerier wraps q, emitting spans into b.
func NewSpanQuerier(q query.Querier, b *Builder) *SpanQuerier {
	sq := &SpanQuerier{q: q, b: b}
	// Find the innermost slot meter so virtual time tracks the substrate's
	// own cost accounting when it has one.
	for walk := q; walk != nil; {
		if sc, ok := walk.(slotCounter); ok {
			sq.slots = sc
			sq.lastSlots = sc.Slots()
			break
		}
		w, ok := walk.(query.Wrapper)
		if !ok {
			break
		}
		walk = w.Unwrap()
	}
	return sq
}

// StartSession opens the session span. name is typically the algorithm
// name; extra attributes (n, t, x...) may be attached immediately.
func (s *SpanQuerier) StartSession(name string, attrs ...Attr) {
	s.session = s.b.Begin(KindSession, name)
	s.session.SetAttr(attrs...)
	s.polls, s.nodes = 0, 0
	if s.sampleEvery > 1 {
		s.sessionKey = hash64(s.sampleKey ^ hashString(name))
	}
}

// TraceRound implements the algorithms' round hook: it closes the open
// round span, if any, and opens the next one.
func (s *SpanQuerier) TraceRound(round int) {
	if s.round != nil {
		s.b.End()
	}
	s.round = s.b.Begin(KindRound, "round "+strconv.Itoa(round))
	// Forward to any further tracer below (a stacked middleware chain may
	// carry its own hook).
	if rt, ok := s.q.(roundTracer); ok {
		rt.TraceRound(round)
	}
}

// Query implements query.Querier: forward the poll, then emit its leaf
// span and advance the virtual clock by its slot cost. Under sampling
// (SetSampling) unsampled polls still advance the clock and the session
// counters — only the leaf span is elided — so round/session widths and
// the session's polls/nodes_polled attributes stay exact.
func (s *SpanQuerier) Query(bin []int) query.Response {
	resp := s.q.Query(bin)
	adv := int64(1)
	if s.slots != nil {
		now := s.slots.Slots()
		adv = int64(now - s.lastSlots)
		s.lastSlots = now
	}
	if s.sampled() {
		sp := s.b.Begin(KindPoll, "poll "+strconv.Itoa(s.polls))
		s.b.Advance(adv)
		sp.SetAttr(
			IntAttr("bin_size", len(bin)),
			StringAttr("kind", resp.Kind.String()),
		)
		if resp.Kind == query.Decoded {
			sp.SetAttr(IntAttr("decoded_id", resp.DecodedID))
		}
		if s.sampleEvery > 1 {
			sp.SetAttr(IntAttr(AttrSampleRate, s.sampleEvery))
		}
		s.b.End()
	} else {
		s.b.Advance(adv)
	}
	s.polls++
	s.nodes += len(bin)
	return resp
}

// Traits implements query.Querier.
func (s *SpanQuerier) Traits() query.Traits { return s.q.Traits() }

// Unwrap implements query.Wrapper.
func (s *SpanQuerier) Unwrap() query.Querier { return s.q }

// EndSession closes the open round and session spans, annotating the
// session with the poll/energy totals, the given result attributes, and
// every substrate Annotator found below in the middleware chain.
func (s *SpanQuerier) EndSession(attrs ...Attr) {
	if s.session == nil {
		return
	}
	if s.round != nil {
		s.b.End()
		s.round = nil
	}
	s.session.SetAttr(
		IntAttr("polls", s.polls),
		IntAttr("nodes_polled", s.nodes),
	)
	s.session.SetAttr(attrs...)
	for walk := query.Querier(s); walk != nil; {
		if walk != query.Querier(s) {
			if an, ok := walk.(Annotator); ok {
				s.session.SetAttr(an.TraceAttrs()...)
			}
		}
		w, ok := walk.(query.Wrapper)
		if !ok {
			break
		}
		walk = w.Unwrap()
	}
	s.b.End()
	s.session = nil
}
