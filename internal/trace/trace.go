// Package trace instruments threshold-query sessions: a Recorder wraps
// any query.Querier, logs every group poll and its response, and can
// render the session as a human-readable timeline or replay it against a
// decision procedure. Because it is middleware over the Querier interface,
// it works identically on the abstract channel, the packet radio and the
// mote testbed.
package trace

import (
	"fmt"
	"strings"

	"tcast/internal/query"
)

// Event is one recorded group poll.
type Event struct {
	// Index is the poll's 0-based position in the session.
	Index int
	// Bin is the polled group (copied; safe to retain).
	Bin []int
	// Response is what the initiator observed.
	Response query.Response
}

// Recorder wraps a Querier and records every poll. It implements
// query.Querier. Not safe for concurrent use.
type Recorder struct {
	q      query.Querier
	events []Event
}

// NewRecorder wraps q.
func NewRecorder(q query.Querier) *Recorder { return &Recorder{q: q} }

// Query implements query.Querier.
func (r *Recorder) Query(bin []int) query.Response {
	resp := r.q.Query(bin)
	r.events = append(r.events, Event{
		Index:    len(r.events),
		Bin:      append([]int(nil), bin...),
		Response: resp,
	})
	return resp
}

// Traits implements query.Querier.
func (r *Recorder) Traits() query.Traits { return r.q.Traits() }

// Unwrap implements query.Wrapper.
func (r *Recorder) Unwrap() query.Querier { return r.q }

// TraceRound forwards the algorithms' round hook to the wrapped querier,
// so a Recorder stacked over a SpanQuerier does not swallow round spans.
func (r *Recorder) TraceRound(round int) {
	if rt, ok := r.q.(roundTracer); ok {
		rt.TraceRound(round)
	}
}

// Events returns the recorded polls in order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded polls.
func (r *Recorder) Len() int { return len(r.events) }

// Reset clears the recording, keeping the wrapped querier.
func (r *Recorder) Reset() { r.events = nil }

// Summary aggregates a recording. The per-kind counts come from the shared
// query.KindCounts partition (promoted fields Empty, Active, Decoded,
// Collisions), so trace and metrics classify polls identically.
type Summary struct {
	Polls int
	query.KindCounts
	// NodesPolled is the total of bin sizes — the number of node-poll
	// pairs, a proxy for listener energy.
	NodesPolled int
}

// Summarize computes aggregate counts for the recording.
func (r *Recorder) Summarize() Summary {
	var s Summary
	s.Polls = len(r.events)
	for _, e := range r.events {
		s.NodesPolled += len(e.Bin)
		s.KindCounts.Observe(e.Response.Kind)
	}
	return s
}

// Render formats the session as one line per poll:
//
//	#3  |bin|=8  {1, 5, ...}  -> active
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.events {
		fmt.Fprintf(&b, "#%-3d |bin|=%-3d %s -> %s", e.Index, len(e.Bin), renderBin(e.Bin), e.Response.Kind)
		if e.Response.Kind == query.Decoded {
			fmt.Fprintf(&b, " (node %d)", e.Response.DecodedID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderBin(bin []int) string {
	const maxShown = 8
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range bin {
		if i == maxShown {
			fmt.Fprintf(&b, ", …+%d", len(bin)-maxShown)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}

// Replayer replays a recorded session as a query.Querier: poll i must ask
// exactly the bin recorded at position i, and receives the recorded
// response. It verifies determinism claims — re-running an algorithm with
// the same RNG stream against the replay must reproduce the session.
//
// Error handling: once a replay diverges or runs past the recording, the
// *first* error is kept and every subsequent Query keeps returning Empty
// responses (a replay has no honest answer after divergence, and Empty at
// least drives well-behaved algorithms to terminate). Callers must
// therefore never treat a completed session as proof of a clean replay on
// its own — check MustDone (or Err plus Done) afterwards.
type Replayer struct {
	events []Event
	pos    int
	traits query.Traits
	err    error
}

// NewReplayer builds a Replayer over a recording with the given traits.
func NewReplayer(events []Event, traits query.Traits) *Replayer {
	return &Replayer{events: events, traits: traits}
}

// Query implements query.Querier. After the first divergence or
// exhaustion it is a sink: the original error is retained and Empty is
// returned for every further poll.
func (p *Replayer) Query(bin []int) query.Response {
	if p.err != nil {
		return query.Response{Kind: query.Empty}
	}
	if p.pos >= len(p.events) {
		p.err = fmt.Errorf("trace: replay exhausted after %d polls", len(p.events))
		return query.Response{Kind: query.Empty}
	}
	want := p.events[p.pos]
	if !sameBin(bin, want.Bin) {
		p.err = fmt.Errorf("trace: replay diverged at poll %d: got bin %v, recorded %v", p.pos, bin, want.Bin)
		return query.Response{Kind: query.Empty}
	}
	p.pos++
	return want.Response
}

// Traits implements query.Querier.
func (p *Replayer) Traits() query.Traits { return p.traits }

// Err returns the first divergence/exhaustion error, or nil.
func (p *Replayer) Err() error { return p.err }

// Done reports whether every recorded poll was replayed.
func (p *Replayer) Done() bool { return p.pos == len(p.events) }

// MustDone returns nil only for a clean, complete replay: no divergence
// or exhaustion occurred and every recorded poll was consumed. It is the
// check that keeps a diverged replay from masquerading as a successful
// session.
func (p *Replayer) MustDone() error {
	if p.err != nil {
		return p.err
	}
	if p.pos != len(p.events) {
		return fmt.Errorf("trace: replay stopped after %d of %d recorded polls", p.pos, len(p.events))
	}
	return nil
}

func sameBin(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
