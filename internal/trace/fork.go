package trace

import (
	"fmt"
	"sort"
)

// This file is the concurrency story of the span model. A Builder is
// single-threaded by design — span order defines the encoded bytes — yet
// the experiment harness runs trials on every core. Fork/Graft reconcile
// the two: each trial records into its own independent sub-builder
// (obtained with Fork, concurrency-safe), and once the worker pool drains
// the parent grafts the fragments back in trial-index order, re-basing
// their virtual-time offsets onto its own clock. The merged trace is
// byte-identical to what serial emission in index order would have
// produced, so worker count changes wall-clock speed and nothing else.

// Fork returns an independent sub-builder for the trial at index i: a
// fresh Builder with its virtual clock at zero, registered with b under i
// for a later Graft. Fork is safe to call from concurrent trial
// goroutines (everything else on Builder is not). Forking the same index
// twice in one batch panics — it means two trials claimed the same slot
// and the graft order would be ambiguous.
func (b *Builder) Fork(i int) *Builder {
	f := NewBuilder()
	b.forkMu.Lock()
	defer b.forkMu.Unlock()
	if b.forks == nil {
		b.forks = make(map[int]*Builder)
	}
	if _, dup := b.forks[i]; dup {
		panic(fmt.Sprintf("trace: Fork(%d) called twice in one batch", i))
	}
	b.forks[i] = f
	return f
}

// Graft splices every pending fork into b in ascending index order: each
// fork's roots become children of b's innermost open span (or roots of b
// when none is open), with Start/End shifted by b's clock, and b's clock
// advances by the fork's total elapsed virtual time before the next fork
// is spliced. The result is byte-identical to emitting the same spans
// serially in index order. Grafting a fork with open spans panics (its
// Begin/End calls are unbalanced). Call Graft only after the trial pool
// has drained — it is not safe concurrently with Fork on the same batch.
func (b *Builder) Graft() {
	b.forkMu.Lock()
	forks := b.forks
	b.forks = nil
	b.forkMu.Unlock()
	idxs := make([]int, 0, len(forks))
	for i := range forks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		f := forks[i]
		if open := f.Open(); open != 0 {
			panic(fmt.Sprintf("trace: grafting fork %d with %d open spans", i, open))
		}
		for _, r := range f.roots {
			rebase(r, b.now)
			if len(b.stack) == 0 {
				b.roots = append(b.roots, r)
			} else {
				parent := b.stack[len(b.stack)-1]
				parent.Children = append(parent.Children, r)
			}
		}
		b.now += f.now
	}
}

// DropForks discards every pending fork without splicing — the error
// path: when a trial batch fails, the surviving fragments are an
// arbitrary scheduling-dependent subset, so keeping them would make the
// trace nondeterministic.
func (b *Builder) DropForks() {
	b.forkMu.Lock()
	b.forks = nil
	b.forkMu.Unlock()
}

// PendingForks reports how many forks await grafting.
func (b *Builder) PendingForks() int {
	b.forkMu.Lock()
	defer b.forkMu.Unlock()
	return len(b.forks)
}

// rebase shifts a span tree's virtual-time intervals by d slots.
func rebase(sp *Span, d int64) {
	sp.Start += d
	sp.End += d
	for _, c := range sp.Children {
		rebase(c, d)
	}
}
