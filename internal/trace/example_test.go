package trace_test

import (
	"fmt"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// ExampleRecorder instruments a session and summarizes what went over the
// air.
func ExampleRecorder() {
	r := rng.New(1)
	ch := fastsim.New(32, []int{3, 9, 17, 21, 30}, fastsim.DefaultConfig(), r.Split(1))
	rec := trace.NewRecorder(ch)
	res, err := (core.TwoTBins{}).Run(rec, 32, 4, r.Split(2))
	if err != nil {
		panic(err)
	}
	s := rec.Summarize()
	fmt.Println("decision:", res.Decision)
	fmt.Println("polls recorded:", s.Polls == res.Queries)
	fmt.Println("kinds partition the polls:", s.Empty+s.Active+s.Decoded+s.Collisions == s.Polls)
	// Output:
	// decision: true
	// polls recorded: true
	// kinds partition the polls: true
}
