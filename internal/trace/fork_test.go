package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// emitTrial writes one synthetic trial span tree (trial → session → two
// polls) into b, advancing the clock by 3 slots total.
func emitTrial(b *Builder, i int) {
	tr := b.Begin(KindTrial, fmt.Sprintf("trial %d", i))
	tr.SetAttr(IntAttr("i", i))
	b.Begin(KindSession, "alg")
	b.Begin(KindPoll, "poll 0")
	b.Advance(1)
	b.End()
	b.Begin(KindPoll, "poll 1")
	b.Advance(2)
	b.End()
	b.End()
	b.End()
}

// TestGraftMatchesSerialEmission is the fork/graft acceptance test: a
// batch of trials recorded into forks (registered in any order) and
// grafted must encode to the same bytes as serial emission in index order.
func TestGraftMatchesSerialEmission(t *testing.T) {
	const trials = 7
	serial := NewBuilder()
	serial.Begin(KindPoint, "x=1")
	for i := 0; i < trials; i++ {
		emitTrial(serial, i)
	}
	serial.End()
	want, err := EncodeBytes(serial.Trace())
	if err != nil {
		t.Fatal(err)
	}

	forked := NewBuilder()
	forked.Begin(KindPoint, "x=1")
	// Register and emit in scrambled order, as a racing pool would.
	for _, i := range []int{3, 0, 6, 1, 5, 2, 4} {
		emitTrial(forked.Fork(i), i)
	}
	forked.Graft()
	forked.End()
	got, err := EncodeBytes(forked.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("grafted trace differs from serial emission:\n--- serial ---\n%s--- grafted ---\n%s", want, got)
	}
}

// TestGraftRebasesClock: after grafting, the parent clock must have
// advanced by the sum of the forks' elapsed time, so later serial spans
// start where the batch ended.
func TestGraftRebasesClock(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		emitTrial(b.Fork(i), i) // each trial spans 3 slots
	}
	b.Graft()
	if b.Now() != 12 {
		t.Fatalf("clock after graft = %d, want 12", b.Now())
	}
	tr := b.Trace()
	if len(tr.Roots) != 4 {
		t.Fatalf("roots = %d, want 4", len(tr.Roots))
	}
	if tr.Roots[3].Start != 9 || tr.Roots[3].End != 12 {
		t.Fatalf("last trial spans [%d,%d), want [9,12)", tr.Roots[3].Start, tr.Roots[3].End)
	}
}

// TestForkConcurrent registers forks from many goroutines (run under
// -race) and checks the graft still lands in index order.
func TestForkConcurrent(t *testing.T) {
	const trials = 64
	b := NewBuilder()
	b.Begin(KindPoint, "x=0")
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			emitTrial(b.Fork(i), i)
		}(i)
	}
	wg.Wait()
	b.Graft()
	b.End()
	point := b.Trace().Roots[0]
	if len(point.Children) != trials {
		t.Fatalf("grafted %d trials, want %d", len(point.Children), trials)
	}
	for i, c := range point.Children {
		if want := fmt.Sprintf("trial %d", i); c.Name != want {
			t.Fatalf("child %d is %q, want %q", i, c.Name, want)
		}
	}
}

func TestForkDuplicateIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Fork index did not panic")
		}
	}()
	b := NewBuilder()
	b.Fork(2)
	b.Fork(2)
}

func TestGraftUnbalancedForkPanics(t *testing.T) {
	b := NewBuilder()
	f := b.Fork(0)
	f.Begin(KindTrial, "trial 0") // never ended
	defer func() {
		if recover() == nil {
			t.Fatal("grafting an unbalanced fork did not panic")
		}
	}()
	b.Graft()
}

func TestDropForks(t *testing.T) {
	b := NewBuilder()
	emitTrial(b.Fork(0), 0)
	emitTrial(b.Fork(1), 1)
	if n := b.PendingForks(); n != 2 {
		t.Fatalf("pending = %d, want 2", n)
	}
	b.DropForks()
	if n := b.PendingForks(); n != 0 {
		t.Fatalf("pending after drop = %d, want 0", n)
	}
	if b.Now() != 0 || len(b.Trace().Roots) != 0 {
		t.Fatal("dropped forks leaked into the trace")
	}
}
