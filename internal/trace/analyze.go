package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// PhaseStat aggregates every span of one kind in a trace.
type PhaseStat struct {
	Kind  SpanKind
	Spans int
	// Slots is the total virtual time covered by spans of this kind.
	Slots int64
	// SelfSlots is Slots minus the time covered by child spans — the
	// virtual time attributable to this level alone. For polls (leaves)
	// Self equals Slots; for a session whose rounds tile it exactly,
	// Self is zero.
	SelfSlots int64
}

// Analysis is the per-phase virtual-time breakdown of a trace.
type Analysis struct {
	Phases [NumSpanKinds]PhaseStat
	// Polls and NodesPolled total the poll leaves: the paper's query
	// cost and listener-energy proxy. On a sampled trace (leaves carry
	// AttrSampleRate) each recorded leaf stands for its rate's worth of
	// polls, so these are inverse-rate-scaled estimates of the true
	// totals; SampledPolls counts the leaves actually present.
	Polls       int
	NodesPolled int
	// SampledPolls is the number of poll leaves recorded in the trace;
	// equal to Polls on an unsampled trace.
	SampledPolls int
	// Span totals and the virtual extent of the whole trace.
	Spans int
	Slots int64
}

// Analyze computes the per-phase breakdown.
func Analyze(t *Trace) Analysis {
	var a Analysis
	for k := range a.Phases {
		a.Phases[k].Kind = SpanKind(k)
	}
	for _, root := range t.Roots {
		root.Walk(func(_ int, sp *Span) {
			a.Spans++
			ph := &a.Phases[sp.Kind]
			ph.Spans++
			ph.Slots += sp.Slots()
			self := sp.Slots()
			for _, c := range sp.Children {
				self -= c.Slots()
			}
			ph.SelfSlots += self
			if sp.Kind == KindPoll {
				a.SampledPolls++
				scale := 1
				if v, ok := sp.Attr(AttrSampleRate); ok {
					if k, err := strconv.Atoi(v); err == nil && k > 1 {
						scale = k
					}
				}
				a.Polls += scale
				if v, ok := sp.Attr("bin_size"); ok {
					if n, err := strconv.Atoi(v); err == nil {
						a.NodesPolled += scale * n
					}
				}
			}
		})
		if end := root.End; end > a.Slots {
			a.Slots = end
		}
	}
	return a
}

// Render formats the analysis as an aligned text table.
func (a Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s\n", "phase", "spans", "slots", "self-slots")
	for _, ph := range a.Phases {
		if ph.Spans == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %12d %12d\n", ph.Kind, ph.Spans, ph.Slots, ph.SelfSlots)
	}
	if a.SampledPolls != a.Polls {
		fmt.Fprintf(&b, "total: %d spans over %d virtual slots; ~%d polls (est. from %d sampled), ~%d node-polls (energy proxy)\n",
			a.Spans, a.Slots, a.Polls, a.SampledPolls, a.NodesPolled)
	} else {
		fmt.Fprintf(&b, "total: %d spans over %d virtual slots; %d polls, %d node-polls (energy proxy)\n",
			a.Spans, a.Slots, a.Polls, a.NodesPolled)
	}
	return b.String()
}
