package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSONL codec for traces: line one is a header carrying the schema
// version and the trace metadata, then one line per span in preorder.
// Every field is written through ordered struct marshalling and every
// number through strconv-backed attr formatting, so encoding the same
// trace always produces the same bytes — the property the acceptance
// check "same seed ⇒ byte-identical trace files" rests on.

// Version is the trace schema version written into the header line.
// Decode rejects files whose version it does not know.
const Version = 1

// header is the first JSONL line.
type header struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Unit    string `json:"unit"`
	Meta    []Attr `json:"meta,omitempty"`
}

const schemaName = "tcast-trace"

// spanRecord is one encoded span. Parent is the preorder ID of the parent
// span, -1 for roots; preorder guarantees parent < id, which Decode
// enforces.
type spanRecord struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Encode writes the trace as JSONL.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: schemaName, Version: Version, Unit: "slot", Meta: t.Meta}); err != nil {
		return err
	}
	id := 0
	var walk func(parent int, sp *Span) error
	walk = func(parent int, sp *Span) error {
		rec := spanRecord{
			ID:     id,
			Parent: parent,
			Kind:   sp.Kind.String(),
			Name:   sp.Name,
			Start:  sp.Start,
			End:    sp.End,
			Attrs:  sp.Attrs,
		}
		self := id
		id++
		if err := enc.Encode(rec); err != nil {
			return err
		}
		for _, c := range sp.Children {
			if err := walk(self, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(-1, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeBytes renders the trace to a byte slice.
func EncodeBytes(t *Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile encodes the trace into path.
func WriteFile(path string, t *Trace) error {
	data, err := EncodeBytes(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Decode parses a JSONL trace, validating the schema version and the
// preorder parent links.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty trace file")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.Schema != schemaName {
		return nil, fmt.Errorf("trace: schema %q is not %q", h.Schema, schemaName)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: version %d not supported (want %d)", h.Version, Version)
	}
	t := &Trace{Meta: h.Meta}
	var spans []*Span
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.ID != len(spans) {
			return nil, fmt.Errorf("trace: line %d: span id %d out of preorder (want %d)", line, rec.ID, len(spans))
		}
		kind, err := ParseSpanKind(rec.Kind)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		sp := &Span{Kind: kind, Name: rec.Name, Start: rec.Start, End: rec.End, Attrs: rec.Attrs}
		switch {
		case rec.Parent == -1:
			t.Roots = append(t.Roots, sp)
		case rec.Parent >= 0 && rec.Parent < len(spans):
			parent := spans[rec.Parent]
			parent.Children = append(parent.Children, sp)
		default:
			return nil, fmt.Errorf("trace: line %d: parent %d of span %d not yet seen", line, rec.Parent, rec.ID)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
