package trace_test

import (
	"testing"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/metrics"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// stackOrder builds a middleware chain over ch in one of the two stacking
// orders and runs a 2tBins session through it, returning the core result,
// the metrics registry, and the finished span trace.
func stackOrder(t *testing.T, spanOutside bool, seed uint64) (core.Result, *metrics.Registry, *trace.Trace) {
	t.Helper()
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(64, 12, fastsim.DefaultConfig(), r.Split(1))
	reg := metrics.New()
	b := trace.NewBuilder()

	var q query.Querier
	var sq *trace.SpanQuerier
	if spanOutside {
		q = metrics.Wrap(ch, reg)
		sq = trace.NewSpanQuerier(q, b)
		q = sq
	} else {
		sq = trace.NewSpanQuerier(ch, b)
		q = metrics.Wrap(sq, reg)
	}
	sq.StartSession("2tBins")

	res, err := (core.TwoTBins{}).Run(q, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	sq.EndSession(trace.IntAttr("queries", res.Queries))
	metrics.FinishSession(q)
	return res, reg, b.Trace()
}

// TestStackedMiddlewareOrderIndependent is the regression test for the
// composition contract: the metrics layer and the span recorder must
// produce identical numbers — and never double-count — regardless of which
// one wraps the other, and FinishSession must find the metrics layer
// through the span recorder.
func TestStackedMiddlewareOrderIndependent(t *testing.T) {
	const seed = 41

	// Reference run with no middleware at all.
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(64, 12, fastsim.DefaultConfig(), r.Split(1))
	bare, err := (core.TwoTBins{}).Run(ch, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}

	resOut, regOut, trOut := stackOrder(t, true, seed)
	resIn, regIn, trIn := stackOrder(t, false, seed)

	// Neither stacking order perturbs the algorithm.
	if resOut != bare || resIn != bare {
		t.Fatalf("results diverge: bare=%+v spanOutside=%+v spanInside=%+v", bare, resOut, resIn)
	}

	// Metrics agree with the session and with each other: exactly one
	// session, exactly res.Queries polls — counted once, not once per layer.
	for name, reg := range map[string]*metrics.Registry{"span outside": regOut, "span inside": regIn} {
		var polls int64
		for k := query.Kind(0); int(k) < query.NumKinds; k++ {
			polls += reg.Counter(metrics.MetricPolls, "kind", k.String()).Value()
		}
		if polls != int64(bare.Queries) {
			t.Errorf("%s: metrics polls = %d, want %d", name, polls, bare.Queries)
		}
		if got := reg.Counter(metrics.MetricSessions).Value(); got != 1 {
			t.Errorf("%s: sessions = %d, want 1 (FinishSession must reach the metrics layer)", name, got)
		}
		h := reg.Histogram(metrics.MetricSessionPolls, metrics.SessionBuckets)
		if h.Count() != 1 || h.Sum() != float64(bare.Queries) {
			t.Errorf("%s: session polls histogram count=%d sum=%v, want 1/%d", name, h.Count(), h.Sum(), bare.Queries)
		}
	}

	// The span layer likewise records each poll exactly once in both orders,
	// and the two traces are bit-identical.
	for name, tr := range map[string]*trace.Trace{"span outside": trOut, "span inside": trIn} {
		a := trace.Analyze(tr)
		if a.Polls != bare.Queries {
			t.Errorf("%s: trace polls = %d, want %d", name, a.Polls, bare.Queries)
		}
	}
	if d := trace.Diff(trOut, trIn); !d.Identical {
		t.Errorf("traces differ between stacking orders: %s", d)
	}
}
