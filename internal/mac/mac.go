// Package mac implements the packet-level versions of the traditional
// feedback-collection baselines on the radio medium: slotted CSMA/CA with
// binary exponential backoff, and a TDMA schedule. They mirror the
// abstract models in internal/baseline but exchange real frames, so radio
// imperfections (reply loss, interference) manifest as retries and wrong
// decisions — the effects Section I attributes to CSMA.
package mac

import (
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/sim"
	"tcast/internal/trace"
)

// Result reports one packet-level collection session.
type Result struct {
	// Decision is the initiator's answer to "x >= t?".
	Decision bool
	// Slots is the number of radio slots consumed.
	Slots int
	// Delivered counts distinct reply frames received.
	Delivered int
	// Collisions counts slots lost to colliding replies.
	Collisions int
}

// TraceAttrs implements trace.Annotator: a MAC-level result annotates its
// trial span with the contention outcome — slots burned, replies
// delivered, and the backoff collisions the paper blames CSMA for.
func (r Result) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.StringAttr("substrate", "mac"),
		trace.BoolAttr("decision", r.Decision),
		trace.IntAttr("slots", r.Slots),
		trace.IntAttr("delivered", r.Delivered),
		trace.IntAttr("collisions", r.Collisions),
	}
}

// CSMA is the packet-level contention collector. Positive nodes contend
// with slotted carrier sensing and binary exponential backoff until their
// reply is acknowledged; the initiator stops once the threshold question
// is answered.
type CSMA struct {
	// CWMin and CWMax bound the contention window (defaults 4 and 128).
	CWMin, CWMax int
	// GuardSlots > 0 terminates the "false" side after that many
	// consecutive idle slots; zero selects idealized termination (the
	// initiator knows x replies are outstanding), matching
	// baseline.CSMA.
	GuardSlots int
	// InitiatorID is the receiving node's ID on the medium.
	InitiatorID int
}

func (c CSMA) bounds() (int, int) {
	cwMin, cwMax := c.CWMin, c.CWMax
	if cwMin <= 0 {
		cwMin = 4
	}
	if cwMax < cwMin {
		cwMax = 128
	}
	return cwMin, cwMax
}

// Run collects replies from the positive nodes over med, driving slots
// through the kernel (one event per slot), and returns the initiator's
// decision for threshold t among n participants.
func (c CSMA) Run(med *radio.Medium, kern *sim.Kernel, n, t int, positives []int, r *rng.Source) Result {
	cwMin, cwMax := c.bounds()
	if t <= 0 {
		return Result{Decision: true}
	}
	if t > n {
		return Result{Decision: false}
	}

	type station struct {
		id      int
		cw      int
		counter int
	}
	backlog := make([]*station, 0, len(positives))
	for _, id := range positives {
		backlog = append(backlog, &station{id: id, cw: cwMin, counter: r.Intn(cwMin)})
	}
	delivered := make(map[int]bool, len(positives))

	var res Result
	idleRun := 0
	const slotTicks = sim.Time(20) // one backoff slot in symbol periods

	var tick func()
	tick = func() {
		if res.Delivered >= t {
			res.Decision = true
			return
		}
		if c.GuardSlots == 0 {
			if res.Delivered == len(positives) {
				res.Decision = false
				return
			}
		} else if idleRun >= c.GuardSlots {
			res.Decision = false
			return
		}

		res.Slots++
		med.BeginSlot()
		var transmitting []*station
		for _, s := range backlog {
			if s.counter == 0 {
				transmitting = append(transmitting, s)
				med.Transmit(radio.Frame{Kind: radio.FrameVote, Src: s.id, Dst: c.InitiatorID, Bytes: 2})
			}
		}
		obs := med.Observe(c.InitiatorID)
		med.EndSlot()

		switch {
		case len(transmitting) == 0:
			idleRun++
			for _, s := range backlog {
				s.counter--
			}
		default:
			idleRun = 0
			var acked *station
			if obs.Frame != nil && obs.Frame.Kind == radio.FrameVote && !delivered[obs.Frame.Src] {
				for _, s := range transmitting {
					if s.id == obs.Frame.Src {
						acked = s
						break
					}
				}
			}
			if acked != nil {
				delivered[acked.id] = true
				res.Delivered++
				kept := backlog[:0]
				for _, s := range backlog {
					if s != acked {
						kept = append(kept, s)
					}
				}
				backlog = kept
			}
			if len(transmitting) > 1 {
				res.Collisions++
			}
			// Unacked transmitters back off.
			for _, s := range transmitting {
				if s == acked {
					continue
				}
				s.cw *= 2
				if s.cw > cwMax {
					s.cw = cwMax
				}
				s.counter = r.Intn(s.cw)
			}
		}
		kern.After(slotTicks, tick)
	}
	kern.After(0, tick)
	kern.Run()
	return res
}

// TDMA is the packet-level sequential baseline: the initiator broadcasts a
// reply schedule (one slot), then each participant answers in its own slot
// in a random order. Unlike baseline.Sequential, the schedule broadcast is
// counted, so costs run one slot higher.
type TDMA struct {
	InitiatorID int
}

// Run executes the schedule until the threshold question resolves.
func (s TDMA) Run(med *radio.Medium, kern *sim.Kernel, n, t int, positives []int, r *rng.Source) Result {
	if t <= 0 {
		return Result{Decision: true}
	}
	if t > n {
		return Result{Decision: false}
	}
	isPositive := make(map[int]bool, len(positives))
	for _, id := range positives {
		isPositive[id] = true
	}
	order := r.Perm(n)

	var res Result
	// Slot 0: schedule broadcast.
	med.BeginSlot()
	med.Transmit(radio.Frame{Kind: radio.FrameSchedule, Src: s.InitiatorID, Dst: radio.Broadcast, Bytes: 2 * n / 8, Payload: order})
	med.EndSlot()
	res.Slots++

	heard := 0
	const slotTicks = sim.Time(20)
	i := 0
	var tick func()
	tick = func() {
		if i >= n {
			return
		}
		id := order[i]
		res.Slots++
		med.BeginSlot()
		if isPositive[id] {
			med.Transmit(radio.Frame{Kind: radio.FrameVote, Src: id, Dst: s.InitiatorID, Bytes: 2})
		}
		obs := med.Observe(s.InitiatorID)
		med.EndSlot()
		if obs.Frame != nil && obs.Frame.Kind == radio.FrameVote {
			heard++
			res.Delivered++
		}
		i++
		if heard >= t {
			res.Decision = true
			return
		}
		if heard+(n-i) < t {
			res.Decision = false
			return
		}
		kern.After(slotTicks, tick)
	}
	kern.After(0, tick)
	kern.Run()
	return res
}
