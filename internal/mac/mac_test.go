package mac

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/sim"
)

const initiatorID = 1000

func run(t *testing.T, n, th, x int, cfg radio.Config, seed uint64, collector func(*radio.Medium, *sim.Kernel, []int, *rng.Source) Result) Result {
	t.Helper()
	r := rng.New(seed)
	positives := r.Split(1).Sample(n, x)
	med := radio.NewMedium(cfg, r.Split(2))
	var kern sim.Kernel
	return collector(med, &kern, positives, r.Split(3))
}

func runCSMA(t *testing.T, n, th, x int, cfg radio.Config, seed uint64) Result {
	return run(t, n, th, x, cfg, seed, func(m *radio.Medium, k *sim.Kernel, pos []int, r *rng.Source) Result {
		return CSMA{InitiatorID: initiatorID}.Run(m, k, n, th, pos, r)
	})
}

func runTDMA(t *testing.T, n, th, x int, cfg radio.Config, seed uint64) Result {
	return run(t, n, th, x, cfg, seed, func(m *radio.Medium, k *sim.Kernel, pos []int, r *rng.Source) Result {
		return TDMA{InitiatorID: initiatorID}.Run(m, k, n, th, pos, r)
	})
}

func TestCSMACorrectOnPerfectRadio(t *testing.T) {
	for _, tc := range []struct{ n, th, x int }{
		{32, 8, 0}, {32, 8, 7}, {32, 8, 8}, {32, 8, 32}, {16, 1, 1}, {16, 16, 15},
	} {
		for seed := uint64(0); seed < 5; seed++ {
			res := runCSMA(t, tc.n, tc.th, tc.x, radio.Config{}, seed)
			if want := tc.x >= tc.th; res.Decision != want {
				t.Fatalf("n=%d t=%d x=%d: decision %v", tc.n, tc.th, tc.x, res.Decision)
			}
		}
	}
}

func TestCSMATrivial(t *testing.T) {
	res := runCSMA(t, 8, 0, 4, radio.Config{}, 1)
	if !res.Decision || res.Slots != 0 {
		t.Fatalf("t=0: %+v", res)
	}
	res = runCSMA(t, 8, 9, 4, radio.Config{}, 1)
	if res.Decision || res.Slots != 0 {
		t.Fatalf("t>n: %+v", res)
	}
}

func TestCSMADeliversAllDespiteLoss(t *testing.T) {
	// Lossy votes force retries, but idealized termination still waits
	// for every reply, so all must eventually arrive.
	cfg := radio.Config{MissProb: 0.3}
	res := runCSMA(t, 32, 32, 20, cfg, 2)
	if res.Delivered != 20 {
		t.Fatalf("Delivered = %d, want 20", res.Delivered)
	}
}

func TestCSMALossIncreasesCost(t *testing.T) {
	const n, th, x, runs = 64, 64, 30, 100
	var clean, lossy int
	for i := 0; i < runs; i++ {
		clean += runCSMA(t, n, th, x, radio.Config{}, uint64(i)).Slots
		lossy += runCSMA(t, n, th, x, radio.Config{MissProb: 0.4}, uint64(1000+i)).Slots
	}
	if lossy <= clean {
		t.Fatalf("loss did not increase cost: clean=%d lossy=%d", clean, lossy)
	}
}

func TestCSMAMatchesAbstractBaseline(t *testing.T) {
	// On a perfect radio the packet-level collector and the abstract
	// baseline implement the same protocol; mean slot counts must agree.
	const n, th, x, runs = 64, 64, 24, 300
	var packet, abstract int
	for i := 0; i < runs; i++ {
		packet += runCSMA(t, n, th, x, radio.Config{}, uint64(i)).Slots

		r := rng.New(uint64(50000 + i))
		pos := bitset.New(n)
		for _, id := range r.Split(1).Sample(n, x) {
			pos.Add(id)
		}
		abstract += baseline.CSMA{}.Run(n, th, pos, r.Split(3)).Slots
	}
	pm, am := float64(packet)/runs, float64(abstract)/runs
	if math.Abs(pm-am) > 0.15*am+1 {
		t.Fatalf("packet mean %v vs abstract mean %v", pm, am)
	}
}

func TestTDMACorrect(t *testing.T) {
	for _, tc := range []struct{ n, th, x int }{
		{32, 8, 0}, {32, 8, 7}, {32, 8, 8}, {32, 8, 32}, {16, 1, 1},
	} {
		for seed := uint64(0); seed < 5; seed++ {
			res := runTDMA(t, tc.n, tc.th, tc.x, radio.Config{}, seed)
			if want := tc.x >= tc.th; res.Decision != want {
				t.Fatalf("n=%d t=%d x=%d: decision %v", tc.n, tc.th, tc.x, res.Decision)
			}
		}
	}
}

func TestTDMACountsScheduleSlot(t *testing.T) {
	// x = n: schedule slot + t reply slots.
	res := runTDMA(t, 32, 8, 32, radio.Config{}, 3)
	if !res.Decision || res.Slots != 1+8 {
		t.Fatalf("x=n: %+v, want slots=9", res)
	}
}

func TestTDMAZeroPositives(t *testing.T) {
	// x = 0: schedule + (n-t+1) silent slots.
	res := runTDMA(t, 32, 8, 0, radio.Config{}, 4)
	if res.Decision || res.Slots != 1+32-8+1 {
		t.Fatalf("x=0: %+v, want slots=%d", res, 1+32-8+1)
	}
}

func TestQuickCSMAAndTDMACorrect(t *testing.T) {
	f := func(seed uint64, nRaw, tRaw, xRaw uint8, useTDMA bool) bool {
		n := int(nRaw%32) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		positives := r.Split(1).Sample(n, x)
		med := radio.NewMedium(radio.Config{}, r.Split(2))
		var kern sim.Kernel
		var res Result
		if useTDMA {
			res = TDMA{InitiatorID: initiatorID}.Run(med, &kern, n, th, positives, r.Split(3))
		} else {
			res = CSMA{InitiatorID: initiatorID}.Run(med, &kern, n, th, positives, r.Split(3))
		}
		return res.Decision == (x >= th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSMAGuardCanBeFooled(t *testing.T) {
	// A tiny guard demonstrates the paper's point: CSMA cannot certify
	// x < t. With guard 1, a single idle slot aborts collection even
	// though stations are still backed off, so with many positives the
	// initiator sometimes under-counts.
	wrong := 0
	for i := 0; i < 200; i++ {
		r := rng.New(uint64(i))
		positives := r.Split(1).Sample(32, 10)
		med := radio.NewMedium(radio.Config{}, r.Split(2))
		var kern sim.Kernel
		res := CSMA{GuardSlots: 1, InitiatorID: initiatorID}.Run(med, &kern, 32, 10, positives, r.Split(3))
		if !res.Decision {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("guard=1 never produced a premature false decision")
	}
}

func BenchmarkPacketCSMA(b *testing.B) {
	root := rng.New(1)
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		positives := r.Split(1).Sample(64, 16)
		med := radio.NewMedium(radio.Config{}, r.Split(2))
		var kern sim.Kernel
		CSMA{InitiatorID: initiatorID}.Run(med, &kern, 64, 16, positives, r.Split(3))
	}
}
