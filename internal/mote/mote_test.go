package mote

import (
	"testing"

	"tcast/internal/radio"
	"tcast/internal/rng"
)

func bootLab(t *testing.T, n int, missProb float64, seed uint64) (*Initiator, []*Participant) {
	t.Helper()
	root := rng.New(seed)
	med := radio.NewMedium(radio.Config{MissProb: missProb}, root.Split(1))
	parts := make([]*Participant, n)
	for i := range parts {
		parts[i] = NewParticipant(i)
	}
	ini := NewInitiator(1<<16, med, parts, root.Split(2))
	t.Cleanup(func() {
		ini.Close()
		for _, p := range parts {
			p.Close()
		}
	})
	return ini, parts
}

func configure(parts []*Participant, positives ...int) {
	pos := make(map[int]bool)
	for _, p := range positives {
		pos[p] = true
	}
	for _, p := range parts {
		p.Configure(pos[p.ID()])
	}
}

func TestQueryBeforeConfigureFails(t *testing.T) {
	ini, _ := bootLab(t, 4, 0, 1)
	if _, err := ini.Query(); err == nil {
		t.Fatal("unconfigured query succeeded")
	}
}

func TestQueryDecisions(t *testing.T) {
	ini, parts := bootLab(t, 12, 0, 2)
	for _, tc := range []struct {
		threshold int
		positives []int
		want      bool
	}{
		{2, []int{3, 7}, true},
		{2, []int{3}, false},
		{4, []int{0, 1, 2, 3, 4, 5}, true},
		{6, []int{0, 1, 2}, false},
		{1, nil, false},
		{12, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, true},
	} {
		configure(parts, tc.positives...)
		ini.Configure(tc.threshold)
		out, err := ini.Query()
		if err != nil {
			t.Fatal(err)
		}
		if out.Decision != tc.want {
			t.Fatalf("t=%d x=%d: decision %v, want %v", tc.threshold, len(tc.positives), out.Decision, tc.want)
		}
		if out.Queries <= 0 || out.Slots != 3*out.Queries {
			t.Fatalf("accounting wrong: %+v", out)
		}
		if len(out.Trace) != out.Queries {
			t.Fatalf("trace length %d != queries %d", len(out.Trace), out.Queries)
		}
	}
}

func TestRebootClearsState(t *testing.T) {
	ini, parts := bootLab(t, 4, 0, 3)
	configure(parts, 0, 1)
	ini.Configure(1)
	if out, err := ini.Query(); err != nil || !out.Decision {
		t.Fatalf("pre-reboot query: %+v, %v", out, err)
	}
	// Reboot the initiator: it must demand reconfiguration.
	ini.Reboot()
	if _, err := ini.Query(); err == nil {
		t.Fatal("query after initiator reboot succeeded")
	}
	// Reboot participants: predicate state resets to negative.
	for _, p := range parts {
		p.Reboot()
	}
	ini.Configure(1)
	out, err := ini.Query()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decision {
		t.Fatal("rebooted participants still answered positive")
	}
}

func TestRepeatedQueriesIndependent(t *testing.T) {
	ini, parts := bootLab(t, 12, 0, 4)
	configure(parts, 1, 5, 9)
	ini.Configure(3)
	for i := 0; i < 20; i++ {
		out, err := ini.Query()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Decision {
			t.Fatalf("query %d flipped to false on a perfect radio", i)
		}
	}
}

func TestLossyRadioCanFalseNegative(t *testing.T) {
	// With an absurdly lossy radio, single-HACK groups vanish and the
	// initiator under-counts; no false positives are possible.
	ini, parts := bootLab(t, 12, 0.9, 5)
	configure(parts, 2, 6)
	ini.Configure(2)
	falseNeg := 0
	for i := 0; i < 50; i++ {
		out, err := ini.Query()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Decision {
			falseNeg++
		}
	}
	if falseNeg == 0 {
		t.Fatal("90% HACK loss never produced a false negative")
	}
}

func TestNoFalsePositivesEver(t *testing.T) {
	// Backcast concludes non-empty only on a decoded HACK, so an
	// all-negative network can never look positive, whatever the loss.
	ini, parts := bootLab(t, 12, 0.5, 6)
	configure(parts) // nobody positive
	ini.Configure(1)
	for i := 0; i < 50; i++ {
		out, err := ini.Query()
		if err != nil {
			t.Fatal(err)
		}
		if out.Decision {
			t.Fatal("false positive from an all-negative network")
		}
	}
}

func TestTraceRecordsEmptiness(t *testing.T) {
	ini, parts := bootLab(t, 8, 0, 7)
	configure(parts, 0)
	ini.Configure(1)
	out, err := ini.Query()
	if err != nil {
		t.Fatal(err)
	}
	sawNonEmpty := false
	for _, rec := range out.Trace {
		if len(rec.Bin) == 0 {
			t.Fatal("trace contains node-less bin (should never be polled)")
		}
		if !rec.Empty {
			sawNonEmpty = true
		}
	}
	if !sawNonEmpty {
		t.Fatal("decision true but no non-empty group in trace")
	}
}

func TestParticipantArmedFor(t *testing.T) {
	p := NewParticipant(3)
	defer p.Close()
	p.Configure(true)
	if !p.armedFor([]int{1, 3}) {
		t.Fatal("positive member not armed")
	}
	if p.armedFor([]int{1, 2}) {
		t.Fatal("non-member armed")
	}
	p.Configure(false)
	if p.armedFor([]int{3}) {
		t.Fatal("negative mote armed")
	}
}

func TestBadRosterRejected(t *testing.T) {
	root := rng.New(8)
	med := radio.NewMedium(radio.Config{}, root.Split(1))
	// IDs 5 and 6 instead of 0 and 1: firmware must refuse.
	parts := []*Participant{NewParticipant(5), NewParticipant(6)}
	ini := NewInitiator(1<<16, med, parts, root.Split(2))
	defer func() {
		ini.Close()
		for _, p := range parts {
			p.Close()
		}
	}()
	ini.Configure(1)
	if _, err := ini.Query(); err == nil {
		t.Fatal("mismatched roster accepted")
	}
}
