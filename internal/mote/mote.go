// Package mote emulates the Section IV-D testbed hardware: TelosB-class
// motes running a TinyOS-style TCast firmware. Every mote is a goroutine
// reachable over an in-memory serial link that mirrors the paper's control
// surface — participants expose configure and reboot, the initiator
// additionally exposes query. The initiator's firmware runs the 2tBins
// algorithm over backcast exactly as the deployed nesC implementation did,
// with superposed hardware acknowledgements on the shared radio medium.
package mote

import (
	"errors"
	"fmt"

	"tcast/internal/core"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

// ErrNotConfigured is returned by Query before Configure set a threshold.
var ErrNotConfigured = errors.New("mote: initiator not configured")

// opKind enumerates serial and radio-side operations on a mote.
type opKind int

const (
	opConfigure opKind = iota
	opReboot
	opArmQuery // radio side: does the mote answer a poll of this bin?
)

type request struct {
	op        opKind
	positive  bool
	threshold int
	bin       []int
	resp      chan response
}

type response struct {
	armed bool
	err   error
}

// Participant is one non-initiator mote. Its state lives in its own
// goroutine; all access goes through the serial methods.
type Participant struct {
	id    int
	inbox chan request
	done  chan struct{}
}

// NewParticipant boots a participant mote with the given radio ID.
func NewParticipant(id int) *Participant {
	p := &Participant{id: id, inbox: make(chan request), done: make(chan struct{})}
	go p.loop()
	return p
}

// ID returns the mote's radio identifier.
func (p *Participant) ID() int { return p.id }

func (p *Participant) loop() {
	defer close(p.done)
	positive := false
	for req := range p.inbox {
		switch req.op {
		case opConfigure:
			positive = req.positive
			req.resp <- response{}
		case opReboot:
			positive = false
			req.resp <- response{}
		case opArmQuery:
			armed := positive && contains(req.bin, p.id)
			req.resp <- response{armed: armed}
		}
	}
}

func (p *Participant) call(req request) response {
	req.resp = make(chan response, 1)
	p.inbox <- req
	return <-req.resp
}

// Configure sets the mote's predicate value for the next run (serial
// command).
func (p *Participant) Configure(positive bool) {
	p.call(request{op: opConfigure, positive: positive})
}

// Reboot clears the mote's state, as the lab does between runs (serial
// command).
func (p *Participant) Reboot() {
	p.call(request{op: opReboot})
}

// armedFor asks the mote firmware whether it answers a poll of bin — the
// hardware-address-recognition step that triggers an automatic HACK.
func (p *Participant) armedFor(bin []int) bool {
	return p.call(request{op: opArmQuery, bin: bin}).armed
}

// Close shuts the mote goroutine down.
func (p *Participant) Close() {
	close(p.inbox)
	<-p.done
}

func contains(bin []int, id int) bool {
	for _, b := range bin {
		if b == id {
			return true
		}
	}
	return false
}

// QueryRecord traces one backcast group query as seen by the initiator.
type QueryRecord struct {
	// Bin is the polled group.
	Bin []int
	// Empty reports whether the initiator heard no HACK.
	Empty bool
}

// QueryOutcome is the initiator's serial report for one TCast run.
type QueryOutcome struct {
	// Decision answers "at least threshold positives?".
	Decision bool
	// Queries is the number of backcast group polls.
	Queries int
	// Slots is the radio time consumed (3 slots per backcast query).
	Slots int
	// Rounds is the number of 2tBins rounds.
	Rounds int
	// Trace lists every group query in order, for offline analysis by
	// the lab controller.
	Trace []QueryRecord
}

// Initiator is the querying mote. Its firmware (the goroutine) owns the
// radio medium and runs a threshold algorithm over backcast on demand —
// 2tBins by default, matching the deployed nesC implementation.
type Initiator struct {
	id    int
	alg   core.Algorithm
	inbox chan initReq
	done  chan struct{}
}

type initReq struct {
	op        opKind
	threshold int
	resp      chan initResp
}

type initResp struct {
	outcome QueryOutcome
	err     error
}

// NewInitiator boots the initiator mote with the default 2tBins firmware.
// It owns med and r; participants are consulted over their radio-side
// interface during queries.
func NewInitiator(id int, med radio.Channel, participants []*Participant, r *rng.Source) *Initiator {
	return NewInitiatorWithAlgorithm(id, core.TwoTBins{}, med, participants, r)
}

// NewInitiatorWithAlgorithm boots the initiator with alternative firmware
// — any threshold algorithm runs over the same backcast radio path.
func NewInitiatorWithAlgorithm(id int, alg core.Algorithm, med radio.Channel, participants []*Participant, r *rng.Source) *Initiator {
	ini := &Initiator{id: id, alg: alg, inbox: make(chan initReq), done: make(chan struct{})}
	go ini.loop(med, participants, r)
	return ini
}

// opQuery is a distinct op for the initiator's serial interface.
const opQuery opKind = 100

func (ini *Initiator) loop(med radio.Channel, participants []*Participant, r *rng.Source) {
	defer close(ini.done)
	threshold := -1
	for req := range ini.inbox {
		switch req.op {
		case opConfigure:
			threshold = req.threshold
			req.resp <- initResp{}
		case opReboot:
			threshold = -1
			req.resp <- initResp{}
		case opQuery:
			if threshold < 0 {
				req.resp <- initResp{err: ErrNotConfigured}
				continue
			}
			outcome, err := ini.runTCast(med, participants, threshold, r)
			req.resp <- initResp{outcome: outcome, err: err}
		}
	}
}

// backcastQuerier implements query.Querier over the medium with live
// participant firmware, recording a trace of every group query.
type backcastQuerier struct {
	med          radio.Channel
	initiatorID  int
	participants map[int]*Participant
	seq          uint8
	addr         uint16
	slots        int
	trace        []QueryRecord
}

// Traits implements query.Querier. Backcast is a 1+ primitive.
func (b *backcastQuerier) Traits() query.Traits {
	return query.Traits{Model: query.OnePlus}
}

// Query implements query.Querier: one 3-slot backcast over the air.
func (b *backcastQuerier) Query(bin []int) query.Response {
	b.seq++
	b.addr++

	// Slot 1: predicate message binds the ephemeral address. Armed
	// participants program their radio's short-address register.
	b.med.BeginSlot()
	b.med.Transmit(radio.Frame{Kind: radio.FrameData, Src: b.initiatorID, Dst: radio.Broadcast, Addr: b.addr, Bytes: len(bin) + 2})
	var armed []int
	for _, id := range bin {
		if p, ok := b.participants[id]; ok && p.armedFor(bin) {
			armed = append(armed, id)
		}
	}
	b.med.EndSlot()

	// Slot 2: poll frame to the ephemeral address, ACK-request set.
	b.med.BeginSlot()
	b.med.Transmit(radio.Frame{Kind: radio.FramePoll, Src: b.initiatorID, Dst: radio.Broadcast, Addr: b.addr, Seq: b.seq, Bytes: 3})
	b.med.EndSlot()

	// Slot 3: identical HACKs superpose nondestructively.
	b.med.BeginSlot()
	for _, id := range armed {
		b.med.Transmit(radio.Frame{Kind: radio.FrameHACK, Src: id, Addr: b.addr, Seq: b.seq})
	}
	obs := b.med.Observe(b.initiatorID)
	b.med.EndSlot()
	b.slots += 3

	resp := query.Response{Kind: query.Empty}
	if obs.Frame != nil && obs.Frame.Kind == radio.FrameHACK && obs.Frame.Addr == b.addr {
		resp.Kind = query.Active
	}
	b.trace = append(b.trace, QueryRecord{Bin: append([]int(nil), bin...), Empty: resp.Kind == query.Empty})
	return resp
}

func (ini *Initiator) runTCast(med radio.Channel, participants []*Participant, threshold int, r *rng.Source) (QueryOutcome, error) {
	parts := make(map[int]*Participant, len(participants))
	for _, p := range participants {
		parts[p.id] = p
	}
	// The TCast firmware addresses participants 0..n-1 in its group
	// assignments; verify the roster matches.
	for i := range participants {
		if _, ok := parts[i]; !ok {
			return QueryOutcome{}, fmt.Errorf("mote: participant IDs must be 0..%d, missing %d", len(participants)-1, i)
		}
	}
	q := &backcastQuerier{med: med, initiatorID: ini.id, participants: parts, addr: 0x8000}
	res, err := ini.alg.Run(q, len(participants), threshold, r)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("mote: tcast failed: %w", err)
	}
	return QueryOutcome{
		Decision: res.Decision,
		Queries:  res.Queries,
		Slots:    q.slots,
		Rounds:   res.Rounds,
		Trace:    q.trace,
	}, nil
}

func (ini *Initiator) call(req initReq) initResp {
	req.resp = make(chan initResp, 1)
	ini.inbox <- req
	return <-req.resp
}

// Configure sets the run's threshold (serial command).
func (ini *Initiator) Configure(threshold int) {
	ini.call(initReq{op: opConfigure, threshold: threshold})
}

// Reboot clears the initiator's configuration (serial command).
func (ini *Initiator) Reboot() {
	ini.call(initReq{op: opReboot})
}

// Query stimulates one TCast run over the radio and returns the result
// (serial command).
func (ini *Initiator) Query() (QueryOutcome, error) {
	r := ini.call(initReq{op: opQuery})
	return r.outcome, r.err
}

// Close shuts the initiator goroutine down.
func (ini *Initiator) Close() {
	close(ini.inbox)
	<-ini.done
}
