// Package radio models the single-hop 802.15.4 medium the packet-level
// simulations run on: a slot-synchronous broadcast channel with
// CCA-style energy sensing, per-copy reception loss (the CC2420 "radio
// irregularities" behind the testbed's false negatives), the capture
// effect for colliding distinct frames, and the nondestructive
// superposition of identical hardware acknowledgements that backcast
// exploits ("Wireless ACK collisions not considered harmful").
package radio

import (
	"fmt"
	"time"

	"tcast/internal/rng"
	"tcast/internal/timing"
	"tcast/internal/trace"
)

// FrameKind classifies frames on the medium.
type FrameKind int

const (
	// FrameData is a generic payload frame.
	FrameData FrameKind = iota
	// FramePoll is an initiator's group poll (pollcast phase 1 /
	// backcast phase 2).
	FramePoll
	// FrameVote is a participant's predicate reply (pollcast phase 2).
	FrameVote
	// FrameHACK is an 802.15.4 hardware acknowledgement. HACKs with the
	// same (Addr, Seq) are bit-identical and superpose nondestructively.
	FrameHACK
	// FrameSchedule carries a TDMA reply schedule.
	FrameSchedule
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "data"
	case FramePoll:
		return "poll"
	case FrameVote:
		return "vote"
	case FrameHACK:
		return "hack"
	case FrameSchedule:
		return "schedule"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// Broadcast is the Dst value addressing every node in range.
const Broadcast = -1

// Frame is one transmission.
type Frame struct {
	Kind FrameKind
	// Src is the transmitting node, Dst the addressed node or
	// Broadcast.
	Src, Dst int
	// Addr is the 16-bit hardware address the frame is directed at —
	// backcast's ephemeral group identifier.
	Addr uint16
	// Seq is the 802.15.4 sequence number; HACKs for the same Seq are
	// identical.
	Seq uint8
	// Bytes is the payload length on air; the medium's clock charges
	// SHR+PHR+MAC overhead plus this many payload bytes (HACKs are
	// fixed-size ACK frames regardless).
	Bytes int
	// Payload carries protocol data (e.g. the polled bin).
	Payload any
}

// Airtime returns the frame's on-air duration under the 802.15.4 timing
// model.
func (f Frame) Airtime() time.Duration {
	if f.Kind == FrameHACK {
		return timing.AckAirtime()
	}
	return timing.FrameAirtime(f.Bytes)
}

// Lossy reports whether the per-copy reception loss applies to this frame
// kind. Control traffic (polls, schedules, data) is modeled as reliable by
// default — initiators transmit it at full power and the testbed reports
// no errors on it — while simultaneous votes/HACKs ride on superposition
// and suffer MissProb per copy. Exported so medium middleware (the faults
// layer) applies the same kind partition.
func (f Frame) Lossy() bool { return f.Kind == FrameVote || f.Kind == FrameHACK }

// Observation is what one receiver's radio reports for one slot.
type Observation struct {
	// Energy is the CCA result: true if any transmission or external
	// interference put energy on the channel during the slot.
	Energy bool
	// Frame is the decoded frame, if the radio locked onto one.
	Frame *Frame
	// Superposed is the number of identical HACK copies that combined
	// into Frame (1 for an ordinary decode, 0 when Frame is nil).
	Superposed int
}

// Config sets the channel imperfections.
type Config struct {
	// MissProb is the per-copy reception-loss probability for votes and
	// HACKs.
	MissProb float64
	// MissProbFor, when non-nil, supplies a per-transmitter loss
	// probability for votes and HACKs, overriding MissProb. Real
	// deployments have per-link irregularity — far or occluded motes
	// lose more frames — and the testbed analysis benefits from
	// modeling it.
	MissProbFor func(src int) float64
	// ControlMissProb is the per-copy loss for control frames (polls,
	// schedules, data). Usually 0.
	ControlMissProb float64
	// CaptureBeta is the capture-effect strength for colliding distinct
	// frames: P(capture | k arrivals) = CaptureBeta^(k-1). Zero means
	// no capture (distinct collisions never decode).
	CaptureBeta float64
	// InterferenceProb is the per-slot probability that traffic from a
	// neighboring region puts energy on the channel.
	InterferenceProb float64
	// InterferenceJams controls whether interference also destroys
	// frame decoding in its slot (it always raises Energy). Backcast's
	// false negatives in multihop settings come from jammed HACKs.
	InterferenceJams bool
}

// Channel is the slot-synchronous medium interface the packet-level
// substrates drive (pollcast sessions, mote firmware): BeginSlot /
// Transmit / Observe / EndSlot cycles plus the slot, losslessness and
// air-time probes the observability layers read. *Medium implements it;
// middleware such as the faults layer's degraded medium wraps any
// Channel, so a session runs unchanged over a faulted link.
type Channel interface {
	BeginSlot()
	Transmit(f Frame)
	Observe(receiver int) Observation
	EndSlot()
	Slot() int
	Lossless() bool
	Elapsed() time.Duration
	TraceAttrs() []trace.Attr
}

// Medium is the shared slot-synchronous channel. Callers drive it in
// BeginSlot / Transmit* / Observe* / EndSlot cycles. Not safe for
// concurrent use.
type Medium struct {
	cfg         Config
	r           *rng.Source
	slot        int
	open        bool
	cur         []Frame
	interfering bool
	elapsed     time.Duration
}

// NewMedium creates a channel with the given imperfections.
func NewMedium(cfg Config, r *rng.Source) *Medium {
	return &Medium{cfg: cfg, r: r}
}

// Slot returns the index of the current (or last completed) slot.
func (m *Medium) Slot() int { return m.slot }

// Lossless reports whether the medium can neither drop a reply nor fake
// channel activity: no per-copy loss on votes/HACKs or control frames and
// no external interference. The capture effect alone does not break
// soundness — a captured frame still names a real transmitter — so
// CaptureBeta is irrelevant here.
func (m *Medium) Lossless() bool {
	return m.cfg.MissProb == 0 && m.cfg.MissProbFor == nil &&
		m.cfg.ControlMissProb == 0 && m.cfg.InterferenceProb == 0
}

// TraceAttrs implements trace.Annotator: the medium annotates spans with
// its imperfection model and the air-time ledger so far.
func (m *Medium) TraceAttrs() []trace.Attr {
	return []trace.Attr{
		trace.FloatAttr("radio_miss_prob", m.cfg.MissProb),
		trace.FloatAttr("radio_interference_prob", m.cfg.InterferenceProb),
		trace.BoolAttr("radio_interference_jams", m.cfg.InterferenceJams),
		trace.IntAttr("radio_slots", m.slot),
		trace.Int64Attr("radio_airtime_us", m.elapsed.Microseconds()),
	}
}

// BeginSlot opens the next slot. External interference for the slot is
// drawn here.
func (m *Medium) BeginSlot() {
	if m.open {
		panic("radio: BeginSlot inside an open slot")
	}
	m.open = true
	m.slot++
	m.cur = m.cur[:0]
	m.interfering = m.r.Bernoulli(m.cfg.InterferenceProb)
}

// Transmit puts a frame on the channel for the current slot.
func (m *Medium) Transmit(f Frame) {
	if !m.open {
		panic("radio: Transmit outside a slot")
	}
	m.cur = append(m.cur, f)
}

// Observe resolves the current slot for one receiver. Each call draws
// fresh reception randomness, modeling independent radios. The receiver
// never hears its own transmissions.
func (m *Medium) Observe(receiver int) Observation {
	if !m.open {
		panic("radio: Observe outside a slot")
	}
	var incoming []Frame
	for _, f := range m.cur {
		if f.Src != receiver {
			incoming = append(incoming, f)
		}
	}
	obs := Observation{Energy: len(incoming) > 0 || m.interfering}
	if len(incoming) == 0 {
		return obs
	}
	if m.interfering && m.cfg.InterferenceJams {
		// Energy detected but nothing decodable under the jam.
		return obs
	}

	// Identical-HACK superposition: if every incoming frame is a HACK
	// with the same identity, the copies reinforce one another and the
	// radio decodes their superposition if at least one copy survives.
	if allIdenticalHACKs(incoming) {
		survived := 0
		for _, f := range incoming {
			if !m.r.Bernoulli(m.lossFor(f)) {
				survived++
			}
		}
		if survived > 0 {
			f := incoming[0]
			obs.Frame = &f
			obs.Superposed = survived
		}
		return obs
	}

	// Distinct frames: apply per-copy loss, then the capture effect.
	var arrived []Frame
	for _, f := range incoming {
		loss := m.cfg.ControlMissProb
		if f.Lossy() {
			loss = m.lossFor(f)
		}
		if !m.r.Bernoulli(loss) {
			arrived = append(arrived, f)
		}
	}
	switch len(arrived) {
	case 0:
		return obs
	case 1:
		f := arrived[0]
		obs.Frame = &f
		obs.Superposed = 1
		return obs
	default:
		p := 0.0
		if m.cfg.CaptureBeta > 0 {
			p = 1.0
			for i := 1; i < len(arrived); i++ {
				p *= m.cfg.CaptureBeta
			}
		}
		if m.r.Bernoulli(p) {
			f := arrived[m.r.Intn(len(arrived))]
			obs.Frame = &f
			obs.Superposed = 1
		}
		return obs
	}
}

// EndSlot closes the current slot and advances the medium's clock: a busy
// slot lasts its longest frame plus the RX/TX turnaround; an idle slot is
// one unit backoff period.
func (m *Medium) EndSlot() {
	if !m.open {
		panic("radio: EndSlot outside a slot")
	}
	m.open = false
	slotAir := timing.BackoffSlot
	for _, f := range m.cur {
		if d := f.Airtime() + timing.Turnaround; d > slotAir {
			slotAir = d
		}
	}
	m.elapsed += slotAir
}

// Elapsed returns the medium's accumulated air time: the wall-clock cost
// of everything transmitted (and every idle slot waited) so far.
func (m *Medium) Elapsed() time.Duration { return m.elapsed }

// lossFor returns the per-copy loss probability for a lossy frame from
// its transmitter.
func (m *Medium) lossFor(f Frame) float64 {
	if m.cfg.MissProbFor != nil {
		return m.cfg.MissProbFor(f.Src)
	}
	return m.cfg.MissProb
}

func allIdenticalHACKs(frames []Frame) bool {
	first := frames[0]
	if first.Kind != FrameHACK {
		return false
	}
	for _, f := range frames[1:] {
		if f.Kind != FrameHACK || f.Addr != first.Addr || f.Seq != first.Seq {
			return false
		}
	}
	return true
}
