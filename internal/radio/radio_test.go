package radio

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/rng"
	"tcast/internal/timing"
)

func perfect() Config { return Config{} }

func slot(m *Medium, frames ...Frame) {
	m.BeginSlot()
	for _, f := range frames {
		m.Transmit(f)
	}
}

func TestSilentSlot(t *testing.T) {
	m := NewMedium(perfect(), rng.New(1))
	slot(m)
	obs := m.Observe(0)
	m.EndSlot()
	if obs.Energy || obs.Frame != nil || obs.Superposed != 0 {
		t.Fatalf("silent slot observed %+v", obs)
	}
}

func TestSingleFrameDecodes(t *testing.T) {
	m := NewMedium(perfect(), rng.New(2))
	slot(m, Frame{Kind: FrameVote, Src: 3, Dst: Broadcast})
	obs := m.Observe(0)
	m.EndSlot()
	if !obs.Energy || obs.Frame == nil || obs.Frame.Src != 3 || obs.Superposed != 1 {
		t.Fatalf("single frame observed %+v", obs)
	}
}

func TestOwnTransmissionNotHeard(t *testing.T) {
	m := NewMedium(perfect(), rng.New(3))
	slot(m, Frame{Kind: FrameVote, Src: 5})
	obs := m.Observe(5)
	m.EndSlot()
	if obs.Energy || obs.Frame != nil {
		t.Fatalf("transmitter heard itself: %+v", obs)
	}
}

func TestDistinctCollisionNoCapture(t *testing.T) {
	m := NewMedium(perfect(), rng.New(4)) // CaptureBeta = 0
	for i := 0; i < 50; i++ {
		slot(m, Frame{Kind: FrameVote, Src: 1}, Frame{Kind: FrameVote, Src: 2})
		obs := m.Observe(0)
		m.EndSlot()
		if !obs.Energy {
			t.Fatal("collision slot shows no energy")
		}
		if obs.Frame != nil {
			t.Fatal("collision decoded without capture")
		}
	}
}

func TestCaptureEffectRate(t *testing.T) {
	m := NewMedium(Config{CaptureBeta: 0.5}, rng.New(5))
	captured := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		slot(m,
			Frame{Kind: FrameVote, Src: 1},
			Frame{Kind: FrameVote, Src: 2},
			Frame{Kind: FrameVote, Src: 3})
		obs := m.Observe(0)
		m.EndSlot()
		if obs.Frame != nil {
			captured++
			if s := obs.Frame.Src; s != 1 && s != 2 && s != 3 {
				t.Fatalf("captured phantom frame from %d", s)
			}
		}
	}
	if rate := float64(captured) / trials; math.Abs(rate-0.25) > 0.03 {
		t.Fatalf("capture rate = %v, want ~0.25", rate)
	}
}

func TestIdenticalHACKsSuperpose(t *testing.T) {
	m := NewMedium(perfect(), rng.New(6))
	slot(m,
		Frame{Kind: FrameHACK, Src: 1, Addr: 0xBEEF, Seq: 7},
		Frame{Kind: FrameHACK, Src: 2, Addr: 0xBEEF, Seq: 7},
		Frame{Kind: FrameHACK, Src: 3, Addr: 0xBEEF, Seq: 7})
	obs := m.Observe(0)
	m.EndSlot()
	if obs.Frame == nil || obs.Frame.Kind != FrameHACK {
		t.Fatalf("superposed HACKs not decoded: %+v", obs)
	}
	if obs.Superposed != 3 {
		t.Fatalf("Superposed = %d, want 3", obs.Superposed)
	}
}

func TestMismatchedHACKsCollide(t *testing.T) {
	m := NewMedium(perfect(), rng.New(7))
	slot(m,
		Frame{Kind: FrameHACK, Src: 1, Addr: 0xBEEF, Seq: 7},
		Frame{Kind: FrameHACK, Src: 2, Addr: 0xBEEF, Seq: 8}) // different Seq
	obs := m.Observe(0)
	m.EndSlot()
	if obs.Frame != nil {
		t.Fatal("non-identical HACKs decoded")
	}
	if !obs.Energy {
		t.Fatal("no energy from colliding HACKs")
	}
}

func TestHACKLossPerCopy(t *testing.T) {
	// P(all k copies missed) = MissProb^k: the testbed's error-rate
	// behaviour.
	cfg := Config{MissProb: 0.3}
	m := NewMedium(cfg, rng.New(8))
	missed := func(k int) float64 {
		misses := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			m.BeginSlot()
			for s := 0; s < k; s++ {
				m.Transmit(Frame{Kind: FrameHACK, Src: s + 1, Addr: 1, Seq: 1})
			}
			obs := m.Observe(0)
			m.EndSlot()
			if obs.Frame == nil {
				misses++
			}
		}
		return float64(misses) / trials
	}
	if r1 := missed(1); math.Abs(r1-0.3) > 0.02 {
		t.Fatalf("k=1 miss rate %v, want ~0.3", r1)
	}
	if r3 := missed(3); math.Abs(r3-0.027) > 0.01 {
		t.Fatalf("k=3 miss rate %v, want ~0.027", r3)
	}
}

func TestPerLinkLoss(t *testing.T) {
	// Node 1 has a clean link, node 2 a terrible one: their miss rates
	// must reflect it.
	cfg := Config{MissProbFor: func(src int) float64 {
		if src == 2 {
			return 0.6
		}
		return 0
	}}
	m := NewMedium(cfg, rng.New(20))
	missed := func(src int) float64 {
		misses := 0
		const trials = 5000
		for i := 0; i < trials; i++ {
			slot(m, Frame{Kind: FrameHACK, Src: src, Addr: 1, Seq: 1})
			if m.Observe(0).Frame == nil {
				misses++
			}
			m.EndSlot()
		}
		return float64(misses) / trials
	}
	if r := missed(1); r != 0 {
		t.Fatalf("clean link missed %v", r)
	}
	if r := missed(2); math.Abs(r-0.6) > 0.03 {
		t.Fatalf("bad link miss rate %v, want ~0.6", r)
	}
}

func TestPerLinkLossOverridesUniform(t *testing.T) {
	cfg := Config{MissProb: 0.9, MissProbFor: func(int) float64 { return 0 }}
	m := NewMedium(cfg, rng.New(21))
	for i := 0; i < 100; i++ {
		slot(m, Frame{Kind: FrameVote, Src: 1})
		obs := m.Observe(0)
		m.EndSlot()
		if obs.Frame == nil {
			t.Fatal("MissProbFor did not override MissProb")
		}
	}
}

func TestControlFramesReliableByDefault(t *testing.T) {
	cfg := Config{MissProb: 0.9}
	m := NewMedium(cfg, rng.New(9))
	for i := 0; i < 100; i++ {
		slot(m, Frame{Kind: FramePoll, Src: 0, Dst: Broadcast})
		obs := m.Observe(1)
		m.EndSlot()
		if obs.Frame == nil {
			t.Fatal("control frame lost despite ControlMissProb=0")
		}
	}
}

func TestControlMissProb(t *testing.T) {
	cfg := Config{ControlMissProb: 0.5}
	m := NewMedium(cfg, rng.New(10))
	lost := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		slot(m, Frame{Kind: FramePoll, Src: 0})
		if m.Observe(1).Frame == nil {
			lost++
		}
		m.EndSlot()
	}
	if rate := float64(lost) / trials; math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("control loss rate %v, want ~0.5", rate)
	}
}

func TestInterferenceEnergyOnly(t *testing.T) {
	cfg := Config{InterferenceProb: 1}
	m := NewMedium(cfg, rng.New(11))
	slot(m)
	obs := m.Observe(0)
	m.EndSlot()
	if !obs.Energy || obs.Frame != nil {
		t.Fatalf("interference-only slot: %+v", obs)
	}
}

func TestInterferenceJamsDecoding(t *testing.T) {
	cfg := Config{InterferenceProb: 1, InterferenceJams: true}
	m := NewMedium(cfg, rng.New(12))
	slot(m, Frame{Kind: FrameHACK, Src: 1, Addr: 1, Seq: 1})
	obs := m.Observe(0)
	m.EndSlot()
	if obs.Frame != nil {
		t.Fatal("jammed slot still decoded")
	}
	if !obs.Energy {
		t.Fatal("jammed slot shows no energy")
	}
}

func TestInterferenceWithoutJamStillDecodes(t *testing.T) {
	cfg := Config{InterferenceProb: 1, InterferenceJams: false}
	m := NewMedium(cfg, rng.New(13))
	slot(m, Frame{Kind: FrameHACK, Src: 1, Addr: 1, Seq: 1})
	obs := m.Observe(0)
	m.EndSlot()
	if obs.Frame == nil {
		t.Fatal("non-jamming interference destroyed the HACK")
	}
}

func TestSlotProtocolPanics(t *testing.T) {
	m := NewMedium(perfect(), rng.New(14))
	for name, f := range map[string]func(){
		"transmit-outside": func() { m.Transmit(Frame{}) },
		"observe-outside":  func() { m.Observe(0) },
		"end-outside":      func() { m.EndSlot() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	m.BeginSlot()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginSlot did not panic")
			}
		}()
		m.BeginSlot()
	}()
}

func TestSlotCounter(t *testing.T) {
	m := NewMedium(perfect(), rng.New(15))
	if m.Slot() != 0 {
		t.Fatal("initial slot not 0")
	}
	for i := 1; i <= 5; i++ {
		m.BeginSlot()
		if m.Slot() != i {
			t.Fatalf("slot = %d, want %d", m.Slot(), i)
		}
		m.EndSlot()
	}
}

func TestElapsedClock(t *testing.T) {
	m := NewMedium(perfect(), rng.New(30))
	if m.Elapsed() != 0 {
		t.Fatal("fresh medium has elapsed time")
	}
	// Idle slot: one backoff period.
	slot(m)
	m.EndSlot()
	if got := m.Elapsed(); got != timing.BackoffSlot {
		t.Fatalf("idle slot elapsed %v, want %v", got, timing.BackoffSlot)
	}
	// HACK slot: 352µs ack + turnaround.
	slot(m, Frame{Kind: FrameHACK, Src: 1, Addr: 1, Seq: 1})
	m.EndSlot()
	want := timing.BackoffSlot + timing.AckAirtime() + timing.Turnaround
	if got := m.Elapsed(); got != want {
		t.Fatalf("after HACK slot elapsed %v, want %v", got, want)
	}
	// Busy slot lasts its LONGEST frame.
	slot(m,
		Frame{Kind: FrameVote, Src: 1, Bytes: 2},
		Frame{Kind: FramePoll, Src: 2, Bytes: 40})
	m.EndSlot()
	want += timing.FrameAirtime(40) + timing.Turnaround
	if got := m.Elapsed(); got != want {
		t.Fatalf("mixed slot elapsed %v, want %v", got, want)
	}
}

func TestFrameAirtimeByKind(t *testing.T) {
	if got := (Frame{Kind: FrameHACK, Bytes: 99}).Airtime(); got != timing.AckAirtime() {
		t.Fatalf("HACK airtime %v ignores fixed ACK size", got)
	}
	if got := (Frame{Kind: FrameVote, Bytes: 2}).Airtime(); got != timing.FrameAirtime(2) {
		t.Fatalf("vote airtime %v", got)
	}
}

func TestFrameKindString(t *testing.T) {
	want := map[FrameKind]string{
		FrameData: "data", FramePoll: "poll", FrameVote: "vote",
		FrameHACK: "hack", FrameSchedule: "schedule", FrameKind(9): "FrameKind(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestQuickObservationConsistency: decoded frames always carry energy, and
// Superposed is positive exactly when a frame decodes.
func TestQuickObservationConsistency(t *testing.T) {
	f := func(seed uint64, kRaw uint8, miss bool) bool {
		cfg := Config{CaptureBeta: 0.5}
		if miss {
			cfg.MissProb = 0.4
		}
		m := NewMedium(cfg, rng.New(seed))
		k := int(kRaw % 6)
		m.BeginSlot()
		for i := 0; i < k; i++ {
			m.Transmit(Frame{Kind: FrameVote, Src: i + 1})
		}
		obs := m.Observe(0)
		m.EndSlot()
		if obs.Frame != nil && (!obs.Energy || obs.Superposed < 1) {
			return false
		}
		if obs.Frame == nil && obs.Superposed != 0 {
			return false
		}
		if k == 0 && obs.Energy {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
