package multihop

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/pollcast"
)

func mustField(t *testing.T, w, h, nodes int, load float64) *Field {
	t.Helper()
	f, err := NewField(w, h, nodes, load)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFieldValidation(t *testing.T) {
	for _, tc := range []struct {
		w, h, nodes int
		load        float64
	}{
		{0, 3, 8, 0.1}, {3, 0, 8, 0.1}, {3, 3, 0, 0.1}, {3, 3, 8, -0.1}, {3, 3, 8, 1.1},
	} {
		if _, err := NewField(tc.w, tc.h, tc.nodes, tc.load); err == nil {
			t.Errorf("NewField(%+v) accepted", tc)
		}
	}
}

func TestNeighbors(t *testing.T) {
	f := mustField(t, 3, 3, 8, 0.1)
	cases := map[int][]int{
		0: {1, 3},       // corner
		4: {1, 3, 5, 7}, // center
		1: {0, 2, 4},    // top edge
		8: {5, 7},       // corner
	}
	for region, want := range cases {
		got := f.Neighbors(region)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", region, got, want)
		}
		seen := map[int]bool{}
		for _, v := range got {
			seen[v] = true
		}
		for _, w := range want {
			if !seen[w] {
				t.Fatalf("Neighbors(%d) = %v, want %v", region, got, want)
			}
		}
	}
}

func TestInterferenceAt(t *testing.T) {
	f := mustField(t, 3, 3, 8, 0.5)
	// Center region: 4 neighbors at load 0.5, coupling 0.4 →
	// 1 - (1-0.2)^4 = 0.5904.
	if got := f.InterferenceAt(4, 0.4); math.Abs(got-0.5904) > 1e-9 {
		t.Fatalf("center interference = %v, want 0.5904", got)
	}
	// Corner: 2 neighbors → 1 - 0.8^2 = 0.36.
	if got := f.InterferenceAt(0, 0.4); math.Abs(got-0.36) > 1e-9 {
		t.Fatalf("corner interference = %v, want 0.36", got)
	}
	// Zero coupling isolates regions.
	if got := f.InterferenceAt(4, 0); got != 0 {
		t.Fatalf("coupling=0 interference = %v", got)
	}
}

func uniformPositives(f *Field, x int) []int {
	out := make([]int, f.Regions())
	for i := range out {
		out[i] = x
	}
	return out
}

func TestCampaignCleanFieldCorrect(t *testing.T) {
	f := mustField(t, 3, 3, 24, 0)
	for _, prim := range []pollcast.Primitive{pollcast.Pollcast, pollcast.Backcast} {
		for _, x := range []int{0, 5, 6, 24} {
			c := Campaign{Field: f, Primitive: prim, Threshold: 6, Positives: uniformPositives(f, x)}
			results, sum, err := c.Run(uint64(x))
			if err != nil {
				t.Fatal(err)
			}
			if sum.FalsePositives != 0 || sum.FalseNegatives != 0 {
				t.Fatalf("%v x=%d: errors on a quiet field: %+v", prim, x, sum)
			}
			for _, r := range results {
				if r.Decision != (x >= 6) {
					t.Fatalf("region %d wrong", r.Region)
				}
			}
		}
	}
}

func TestCampaignPollcastFalsePositives(t *testing.T) {
	// Heavy neighbor traffic: CCA-based pollcast must produce
	// false-positive threshold decisions; backcast must not.
	f := mustField(t, 4, 4, 24, 0.9)
	positives := uniformPositives(f, 2) // truth: below t=6 everywhere
	pc := Campaign{Field: f, Primitive: pollcast.Pollcast, Coupling: 0.6, Threshold: 6, Positives: positives}
	_, pcSum, err := pc.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if pcSum.FalsePositives == 0 {
		t.Fatal("pollcast produced no false positives under heavy interference")
	}
	bc := Campaign{Field: f, Primitive: pollcast.Backcast, Coupling: 0.6, Threshold: 6, Positives: positives}
	_, bcSum, err := bc.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if bcSum.FalsePositives != 0 {
		t.Fatalf("backcast produced %d false positives", bcSum.FalsePositives)
	}
}

func TestCampaignBackcastFalseNegativesUnderJam(t *testing.T) {
	// Jamming interference hides HACKs: backcast's residual error mode.
	f := mustField(t, 4, 4, 24, 0.9)
	positives := uniformPositives(f, 8) // truth: above t=6 everywhere
	bc := Campaign{Field: f, Primitive: pollcast.Backcast, Coupling: 0.9, Jam: true, Threshold: 6, Positives: positives}
	_, sum, err := bc.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FalseNegatives == 0 {
		t.Fatal("jamming interference produced no backcast false negatives")
	}
	if sum.FalsePositives != 0 {
		t.Fatal("backcast produced false positives")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	f := mustField(t, 3, 3, 16, 0.5)
	c := Campaign{Field: f, Primitive: pollcast.Backcast, Coupling: 0.3, Threshold: 4, Positives: uniformPositives(f, 4)}
	a, sumA, err := c.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	b, sumB, err := c.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if sumA != sumB {
		t.Fatalf("summaries diverged: %+v vs %+v", sumA, sumB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("region %d diverged", i)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	f := mustField(t, 2, 2, 8, 0)
	c := Campaign{Field: f, Threshold: 2, Positives: []int{1}}
	if _, _, err := c.Run(1); err == nil {
		t.Fatal("wrong positives length accepted")
	}
	c = Campaign{Field: f, Threshold: 2, Positives: []int{1, 2, 3, 99}}
	if _, _, err := c.Run(1); err == nil {
		t.Fatal("x > nodes accepted")
	}
}

func TestQuickNeighborsSymmetric(t *testing.T) {
	// i is j's neighbor iff j is i's neighbor, and nobody neighbors
	// themselves.
	f := func(wRaw, hRaw, iRaw uint8) bool {
		w := int(wRaw%6) + 1
		h := int(hRaw%6) + 1
		field, err := NewField(w, h, 4, 0)
		if err != nil {
			return false
		}
		i := int(iRaw) % field.Regions()
		for _, j := range field.Neighbors(i) {
			if j == i {
				return false
			}
			back := false
			for _, k := range field.Neighbors(j) {
				if k == i {
					back = true
				}
			}
			if !back {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
