// Package multihop implements the paper's stated future work (Section
// VII): evaluating tcast "in a multihop network environment with
// interfering traffic". A Field is a grid of single-hop regions, each
// running its own threshold-query session; traffic offered by neighboring
// regions appears at a region's initiator as external interference, with
// the coupling attenuated by distance-one propagation.
//
// The experiment the package supports is exactly the Section III-B
// argument: pollcast's CCA sensing converts neighbor traffic into
// false-positive "non-empty" bins, while backcast's HACK gating is immune
// to false positives but can suffer false negatives when interference
// jams HACK reception.
package multihop

import (
	"fmt"
	"sync"

	"tcast/internal/core"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
)

// Field is a Width×Height grid of single-hop regions.
type Field struct {
	Width, Height int
	// NodesPerRegion is the participant count of each region's
	// neighborhood.
	NodesPerRegion int
	// Load is the per-region offered load: the probability that the
	// region occupies a given slot with its own traffic. Length must be
	// Width*Height.
	Load []float64
}

// NewField builds a grid with uniform offered load.
func NewField(width, height, nodesPerRegion int, load float64) (*Field, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("multihop: non-positive grid %dx%d", width, height)
	}
	if nodesPerRegion <= 0 {
		return nil, fmt.Errorf("multihop: need nodes per region, got %d", nodesPerRegion)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("multihop: load %v outside [0,1]", load)
	}
	loads := make([]float64, width*height)
	for i := range loads {
		loads[i] = load
	}
	return &Field{Width: width, Height: height, NodesPerRegion: nodesPerRegion, Load: loads}, nil
}

// Regions returns the number of regions in the field.
func (f *Field) Regions() int { return f.Width * f.Height }

// Neighbors returns the 4-neighborhood of region i in row-major order.
func (f *Field) Neighbors(i int) []int {
	x, y := i%f.Width, i/f.Width
	var out []int
	if y > 0 {
		out = append(out, i-f.Width)
	}
	if x > 0 {
		out = append(out, i-1)
	}
	if x < f.Width-1 {
		out = append(out, i+1)
	}
	if y < f.Height-1 {
		out = append(out, i+f.Width)
	}
	return out
}

// InterferenceAt returns the per-slot probability that region i's
// initiator senses energy from neighboring regions: each neighbor with
// offered load L contributes an independent busy probability L·coupling.
func (f *Field) InterferenceAt(i int, coupling float64) float64 {
	quiet := 1.0
	for _, nb := range f.Neighbors(i) {
		quiet *= 1 - f.Load[nb]*coupling
	}
	return 1 - quiet
}

// Campaign runs one threshold query per region, all regions concurrently,
// and grades each decision against the region's configured ground truth.
type Campaign struct {
	Field *Field
	// Primitive selects pollcast (interference-exposed) or backcast
	// (false-positive-immune).
	Primitive pollcast.Primitive
	// Coupling attenuates neighbor load into interference probability.
	Coupling float64
	// Jam makes interference destroy in-region frame decoding too — the
	// mechanism behind backcast false negatives.
	Jam bool
	// Threshold is each region's t.
	Threshold int
	// Positives is each region's ground-truth positive count; length
	// must equal Field.Regions().
	Positives []int
}

// RegionResult grades one region's session.
type RegionResult struct {
	Region   int
	Truth    bool
	Decision bool
	Queries  int
}

// Summary aggregates a campaign.
type Summary struct {
	Regions        int
	FalsePositives int
	FalseNegatives int
	TotalQueries   int
}

// Run executes the campaign with one goroutine per region. Region i's
// randomness derives from (seed, i), so results are deterministic and
// independent of scheduling.
func (c Campaign) Run(seed uint64) ([]RegionResult, Summary, error) {
	f := c.Field
	if len(c.Positives) != f.Regions() {
		return nil, Summary{}, fmt.Errorf("multihop: %d positive counts for %d regions", len(c.Positives), f.Regions())
	}
	root := rng.New(seed)
	results := make([]RegionResult, f.Regions())
	errs := make([]error, f.Regions())
	var wg sync.WaitGroup
	for i := 0; i < f.Regions(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.runRegion(i, root.Split(uint64(i)))
		}(i)
	}
	wg.Wait()
	var sum Summary
	sum.Regions = f.Regions()
	for i, err := range errs {
		if err != nil {
			return nil, Summary{}, fmt.Errorf("multihop: region %d: %w", i, err)
		}
		r := results[i]
		sum.TotalQueries += r.Queries
		if r.Decision && !r.Truth {
			sum.FalsePositives++
		}
		if !r.Decision && r.Truth {
			sum.FalseNegatives++
		}
	}
	return results, sum, nil
}

func (c Campaign) runRegion(i int, r *rng.Source) (RegionResult, error) {
	f := c.Field
	n := f.NodesPerRegion
	x := c.Positives[i]
	if x < 0 || x > n {
		return RegionResult{}, fmt.Errorf("x=%d outside [0,%d]", x, n)
	}
	parts := make([]*pollcast.Participant, n)
	for id := range parts {
		parts[id] = &pollcast.Participant{ID: id}
	}
	for _, id := range r.Split(1).Sample(n, x) {
		parts[id].Positive = true
	}
	med := radio.NewMedium(radio.Config{
		InterferenceProb: f.InterferenceAt(i, c.Coupling),
		InterferenceJams: c.Jam,
	}, r.Split(2))
	const initiatorID = 1 << 16
	sess, err := pollcast.NewSession(med, initiatorID, parts, c.Primitive, query.OnePlus)
	if err != nil {
		return RegionResult{}, err
	}
	res, err := (core.TwoTBins{}).Run(sess, n, c.Threshold, r.Split(3))
	if err != nil {
		return RegionResult{}, err
	}
	return RegionResult{
		Region:   i,
		Truth:    x >= c.Threshold,
		Decision: res.Decision,
		Queries:  res.Queries,
	}, nil
}
