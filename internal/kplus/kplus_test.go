package kplus

import (
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func TestChannelExactBelowK(t *testing.T) {
	ch := NewChannel(4, []int{1, 2, 3})
	resp := ch.Query([]int{0, 1, 2, 3, 4})
	if resp.Saturated || resp.Count != 3 {
		t.Fatalf("3 positives under k=4: %+v", resp)
	}
	resp = ch.Query([]int{0, 4, 5})
	if resp.Saturated || resp.Count != 0 {
		t.Fatalf("empty bin: %+v", resp)
	}
	if ch.Queries() != 2 {
		t.Fatalf("queries = %d", ch.Queries())
	}
}

func TestChannelSaturates(t *testing.T) {
	ch := NewChannel(2, []int{1, 2, 3})
	resp := ch.Query([]int{1, 2, 3})
	if !resp.Saturated || resp.Count != 2 {
		t.Fatalf("3 positives under k=2: %+v", resp)
	}
}

func TestChannelKOneIsRCD(t *testing.T) {
	// k=1 degenerates to the paper's 1+ model: silence vs activity.
	ch := NewChannel(1, []int{5})
	if resp := ch.Query([]int{5, 6}); !resp.Saturated {
		t.Fatal("activity not saturated under k=1")
	}
	if resp := ch.Query([]int{6, 7}); resp.Saturated || resp.Count != 0 {
		t.Fatal("silence wrong under k=1")
	}
}

func TestNewChannelPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	NewChannel(0, nil)
}

func TestThresholdCorrect(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		for _, tc := range []struct{ n, th, x int }{
			{32, 8, 0}, {32, 8, 7}, {32, 8, 8}, {32, 8, 9}, {32, 8, 32},
			{64, 1, 0}, {64, 1, 1}, {64, 64, 64}, {64, 64, 63}, {1, 1, 1},
		} {
			for seed := uint64(0); seed < 3; seed++ {
				r := rng.New(seed)
				ch := RandomChannel(k, tc.n, tc.x, r.Split(1))
				res, err := Threshold(ch, tc.n, tc.th, r.Split(2))
				if err != nil {
					t.Fatal(err)
				}
				if res.Decision != (tc.x >= tc.th) {
					t.Fatalf("k=%d n=%d t=%d x=%d: decision %v", k, tc.n, tc.th, tc.x, res.Decision)
				}
			}
		}
	}
}

func TestThresholdTrivial(t *testing.T) {
	r := rng.New(1)
	ch := RandomChannel(2, 8, 3, r)
	res, err := Threshold(ch, 8, 0, r)
	if err != nil || !res.Decision || res.Queries != 0 {
		t.Fatalf("t=0: %+v, %v", res, err)
	}
	res, err = Threshold(ch, 8, 9, r)
	if err != nil || res.Decision || res.Queries != 0 {
		t.Fatalf("t>n: %+v, %v", res, err)
	}
	if _, err := Threshold(ch, -1, 2, r); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestCountExactCorrect(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		for _, x := range []int{0, 1, 7, 16, 60, 64} {
			r := rng.New(uint64(k*1000 + x))
			ch := RandomChannel(k, 64, x, r.Split(1))
			res, err := CountExact(ch, 64, r.Split(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != x {
				t.Fatalf("k=%d x=%d: counted %d", k, x, res.Count)
			}
		}
	}
	r := rng.New(9)
	ch := RandomChannel(2, 4, 2, r)
	if res, err := CountExact(ch, 0, r); err != nil || res.Count != 0 || res.Queries != 0 {
		t.Fatalf("n=0: %+v, %v", res, err)
	}
	if _, err := CountExact(ch, -1, r); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestLargerKCountsCheaper(t *testing.T) {
	// The companion framework's point: stronger radios resolve more per
	// query. Exact counting cost must fall (weakly) as k grows.
	const n, x, runs = 128, 32, 100
	avg := func(k int) float64 {
		total := 0
		root := rng.New(uint64(100 + k))
		for i := 0; i < runs; i++ {
			r := root.Split(uint64(i))
			ch := RandomChannel(k, n, x, r.Split(1))
			res, err := CountExact(ch, n, r.Split(2))
			if err != nil {
				t.Fatal(err)
			}
			total += res.Queries
		}
		return float64(total) / runs
	}
	c1, c4, c16 := avg(1), avg(4), avg(16)
	if !(c16 < c4 && c4 < c1) {
		t.Fatalf("counting cost not decreasing in k: k=1:%v k=4:%v k=16:%v", c1, c4, c16)
	}
}

func TestLargerKThresholdCheaperNearT(t *testing.T) {
	// Near x ≈ t — the 1+ model's hard case — k+ radios with k near t
	// decide far faster.
	const n, th, x, runs = 128, 16, 16, 200
	avg := func(k int) float64 {
		total := 0
		root := rng.New(uint64(200 + k))
		for i := 0; i < runs; i++ {
			r := root.Split(uint64(i))
			ch := RandomChannel(k, n, x, r.Split(1))
			res, err := Threshold(ch, n, th, r.Split(2))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Decision {
				t.Fatal("wrong decision")
			}
			total += res.Queries
		}
		return float64(total) / runs
	}
	if c16, c1 := avg(16), avg(1); c16 >= c1 {
		t.Fatalf("k=16 (%v) not cheaper than k=1 (%v) at x=t", c16, c1)
	}
}

func TestQuickThresholdAndCount(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw, tRaw, xRaw uint8) bool {
		k := int(kRaw%8) + 1
		n := int(nRaw%64) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		ch := RandomChannel(k, n, x, r.Split(1))
		res, err := Threshold(ch, n, th, r.Split(2))
		if err != nil || res.Decision != (x >= th) {
			return false
		}
		ch2 := RandomChannel(k, n, x, r.Split(3))
		cnt, err := CountExact(ch2, n, r.Split(4))
		return err == nil && cnt.Count == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountExactK4(b *testing.B) {
	root := rng.New(1)
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		ch := RandomChannel(4, 128, 32, r.Split(1))
		if _, err := CountExact(ch, 128, r.Split(2)); err != nil {
			b.Fatal(err)
		}
	}
}
