// Package kplus implements the generalized collision model of the
// companion theoretical work (Aspnes, Blais, Demirbas, O'Donnell, Rudra,
// Uurtamo — "k+ decision trees", Algosensors 2010), of which the paper's
// 1+ and 2+ radios are the first two instances: a k+ query of a bin
// returns the exact number of positive repliers when it is below k, and
// only "at least k" otherwise.
//
// The key algorithmic consequence: a bin answering c < k is *resolved* —
// it contributes exactly c to the count forever and its nodes need never
// be polled again — while saturated bins (≥ k) are split and re-queried.
// Threshold querying and exact counting both fall out of the same
// split-until-resolved loop, and stronger radios (larger k) resolve more
// per query.
package kplus

import (
	"fmt"

	"tcast/internal/rng"
)

// Response is what a k+ query reveals about a bin.
type Response struct {
	// Count is the number of positive repliers if Saturated is false;
	// otherwise the radio only knows the count is at least K.
	Count int
	// Saturated reports that the bin held K or more positives.
	Saturated bool
}

// Querier answers k+ group queries.
type Querier interface {
	// Query polls a bin.
	Query(bin []int) Response
	// K returns the model's resolution: the largest count the radio
	// distinguishes exactly is K-1.
	K() int
}

// Channel is the abstract k+ substrate over a known ground truth. It
// implements Querier.
type Channel struct {
	positive map[int]bool
	k        int
	queries  int
}

// NewChannel builds a channel where the listed nodes are positive and the
// radio resolves counts below k. It panics if k < 1.
func NewChannel(k int, positives []int) *Channel {
	if k < 1 {
		panic("kplus: k must be at least 1")
	}
	pos := make(map[int]bool, len(positives))
	for _, id := range positives {
		pos[id] = true
	}
	return &Channel{positive: pos, k: k}
}

// RandomChannel draws x positives out of {0..n-1}.
func RandomChannel(k, n, x int, r *rng.Source) *Channel {
	return NewChannel(k, r.Sample(n, x))
}

// K implements Querier.
func (c *Channel) K() int { return c.k }

// Queries returns the number of queries issued.
func (c *Channel) Queries() int { return c.queries }

// Query implements Querier.
func (c *Channel) Query(bin []int) Response {
	c.queries++
	count := 0
	for _, id := range bin {
		if c.positive[id] {
			count++
			if count >= c.k {
				return Response{Count: c.k, Saturated: true}
			}
		}
	}
	return Response{Count: count}
}

// Result reports a k+ session.
type Result struct {
	// Decision answers the threshold question (Threshold only).
	Decision bool
	// Count is the exact positive count (CountExact only).
	Count int
	// Queries is the number of k+ group queries issued.
	Queries int
}

// Threshold answers "x >= t?" by splitting saturated bins: resolved bins
// (count < k) retire their nodes and bank their exact counts; saturated
// bins split in half. The session decides as soon as the banked count
// reaches t, or when even k-saturating every outstanding bin cannot reach
// it.
func Threshold(q Querier, n, t int, r *rng.Source) (Result, error) {
	if n < 0 || t < 0 {
		return Result{}, fmt.Errorf("kplus: negative n=%d or t=%d", n, t)
	}
	if t == 0 {
		return Result{Decision: true}, nil
	}
	if t > n {
		return Result{}, nil
	}
	k := q.K()
	members := r.Perm(n) // random split order, matching the paper's random binning
	confirmed := 0
	var res Result
	// pending holds bins that may still contain unknown positives.
	pending := [][]int{members}
	pendingNodes := n
	for len(pending) > 0 {
		// Upper bound: banked + everything pending being positive.
		if confirmed+pendingNodes < t {
			return Result{Queries: res.Queries}, nil
		}
		bin := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		pendingNodes -= len(bin)
		resp := q.Query(bin)
		res.Queries++
		if !resp.Saturated {
			confirmed += resp.Count
			if confirmed >= t {
				res.Decision = true
				return res, nil
			}
			continue
		}
		// Saturated: at least k positives inside.
		if confirmed+k >= t && len(bin) >= k {
			// A saturated bin alone proves the remainder.
			confirmed += k
			res.Decision = true
			return res, nil
		}
		if len(bin) <= k {
			// Cannot saturate with fewer repliers than k... defensive:
			// a bin of size <= k that saturates is exactly all-positive.
			confirmed += len(bin)
			if confirmed >= t {
				res.Decision = true
				return res, nil
			}
			continue
		}
		mid := len(bin) / 2
		pending = append(pending, bin[:mid], bin[mid:])
		pendingNodes += len(bin)
	}
	res.Decision = confirmed >= t
	return res, nil
}

// CountExact determines x exactly by splitting every saturated bin down
// to resolution. Cost grows with x/k: stronger radios count faster.
func CountExact(q Querier, n int, r *rng.Source) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("kplus: negative n=%d", n)
	}
	if n == 0 {
		return Result{}, nil
	}
	k := q.K()
	members := r.Perm(n)
	var res Result
	pending := [][]int{members}
	for len(pending) > 0 {
		bin := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		resp := q.Query(bin)
		res.Queries++
		if !resp.Saturated {
			res.Count += resp.Count
			continue
		}
		if len(bin) <= k {
			res.Count += len(bin)
			continue
		}
		mid := len(bin) / 2
		pending = append(pending, bin[:mid], bin[mid:])
	}
	return res, nil
}
