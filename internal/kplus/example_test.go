package kplus_test

import (
	"fmt"

	"tcast/internal/kplus"
	"tcast/internal/rng"
)

// ExampleThreshold answers a threshold query under the generalized k+
// radio: bins with fewer than k positive repliers are counted exactly and
// retired, so a k=4 radio needs only a handful of polls.
func ExampleThreshold() {
	r := rng.New(1)
	ch := kplus.RandomChannel(4, 128, 20, r.Split(1)) // k=4, 20 of 128 positive
	res, err := kplus.Threshold(ch, 128, 16, r.Split(2))
	if err != nil {
		panic(err)
	}
	fmt.Println("at least 16 positives:", res.Decision)
	fmt.Println("cheap:", res.Queries < 30)
	// Output:
	// at least 16 positives: true
	// cheap: true
}
