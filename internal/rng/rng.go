// Package rng provides a deterministic, splittable pseudo-random number
// generator and the samplers the simulators need.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every simulated trial derives its own independent stream from a root seed
// plus a trial label, so trials can run on any number of goroutines in any
// order and still produce bit-identical results. The generator is
// xoshiro256** seeded through SplitMix64, both implemented here so the
// module has no dependency on math/rand's global state or version-dependent
// stream definitions.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64
	// key identifies this stream for Split derivation. It is fixed at
	// construction so Split results do not depend on how many values the
	// parent has emitted.
	key uint64
	// spare holds a cached second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// splitMix64 advances *x and returns the next SplitMix64 output.
// It is used only for seeding and stream derivation.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var s Source
	x := seed
	s.key = splitMix64(&x)
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// xoshiro256** must not start from the all-zero state; SplitMix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Split derives an independent Source identified by label. Splitting the
// same Source with the same label always yields the same stream, and
// distinct labels yield streams that are independent for all practical
// purposes. Split does not advance the parent stream, so the derivation
// tree is stable no matter how many values the parent has emitted.
func (r *Source) Split(label uint64) *Source {
	var s Source
	r.SplitInto(label, &s)
	return &s
}

// SplitInto derives the same stream Split(label) would return, writing it
// into *dst instead of allocating. dst may be a previously used Source; its
// entire state (including any cached Box-Muller spare) is overwritten, so
// SplitInto(label, dst) leaves dst bit-identical to Split(label). Deriving
// reads only the parent's immutable key, so concurrent SplitInto calls on a
// shared parent are safe.
func (r *Source) SplitInto(label uint64, dst *Source) {
	x := r.key ^ (label * 0xd1342543de82ef95)
	dst.key = splitMix64(&x)
	for i := range dst.s {
		dst.s[i] = splitMix64(&x)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 1
	}
	dst.spare = 0
	dst.hasSpare = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless method keeps the distribution exactly
// uniform without modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// compiles to the single widening-multiply instruction on 64-bit targets,
// which matters because every Intn draw multiplies here.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar Box-Muller
// method with a cached spare.
func (r *Source) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place using the Fisher-Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ShuffleInts shuffles s in place, drawing exactly the sequence
// Shuffle(len(s), swap) draws. The direct swaps replace the per-swap
// closure call, which the partition hot path repeats every round.
func (r *Source) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	out, _ := r.SampleInto(n, k, nil, nil)
	return out
}

// AppendSampleSparse draws k distinct values uniformly from [0, n) with
// Floyd's algorithm — k Intn draws and O(k) space, no length-n scratch —
// and appends them to dst. This is the sampler for huge sparse fields
// (populations at or above idset.SparseCutover), where SampleInto's
// dense index array would dominate a trial's footprint. The appended
// values are a uniformly random k-subset, but in Floyd's insertion order
// rather than Sample's uniformly random order; callers that consume the
// values as a set (the positive-set draw) are unaffected. Duplicate
// checks scan the appended prefix, so cost is O(k^2) worst case — the
// k ≪ n regime this serves keeps that trivial. It panics if k is out of
// [0, n].
func (r *Source) AppendSampleSparse(n, k int, dst []int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range")
	}
	start := len(dst)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		dup := false
		for _, v := range dst[start:] {
			if v == t {
				dup = true
				break
			}
		}
		if dup {
			// t was already drawn; Floyd's invariant says j itself is
			// still free, and choosing it keeps the subset uniform.
			dst = append(dst, j)
		} else {
			dst = append(dst, t)
		}
	}
	return dst
}

// SampleInto is Sample with caller-owned buffers: the k results land in
// dst (grown as needed) and idx is the length-n scratch for the partial
// Fisher-Yates pass. It returns the result slice and the scratch for
// reuse; the draws are bit-identical to Sample's.
func (r *Source) SampleInto(n, k int, dst, idx []int) (out, scratch []int) {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range")
	}
	// Partial Fisher-Yates over a dense index array: O(n) setup, exact.
	if cap(idx) < n {
		idx = make([]int, n)
	} else {
		idx = idx[:n]
	}
	for i := range idx {
		idx[i] = i
	}
	if cap(dst) < k {
		dst = make([]int, k)
	} else {
		dst = dst[:k]
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		dst[i] = idx[i]
	}
	return dst, idx
}
