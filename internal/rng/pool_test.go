package rng

import (
	"sync"
	"testing"
	"testing/quick"
)

// SplitInto must reseed the destination to exactly the state Split
// allocates, including clearing a stale normal spare.
func TestSplitIntoMatchesSplit(t *testing.T) {
	f := func(seed, label uint64) bool {
		parent := New(seed)
		want := parent.Split(label)
		got := *New(seed + 1)
		got.NormFloat64() // leave a spare behind to prove SplitInto clears it
		parent.SplitInto(label, &got)
		for i := 0; i < 20; i++ {
			if got.Uint64() != want.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Split derivation is read-only on the parent, so concurrent SplitInto
// calls from a shared root are safe; run under -race to enforce it.
func TestSplitIntoConcurrent(t *testing.T) {
	root := New(99)
	want := make([]uint64, 64)
	for i := range want {
		want[i] = root.Split(uint64(i)).Uint64()
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var src Source
			for i := w; i < 64; i += 4 {
				root.SplitInto(uint64(i), &src)
				if got := src.Uint64(); got != want[i] {
					t.Errorf("label %d: got %d, want %d", i, got, want[i])
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSampleIntoMatchesSample(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw) + 1
		k := int(kRaw) % (n + 1)
		want := New(seed).Sample(n, k)
		var out, idx []int
		src := New(seed)
		out, idx = src.SampleInto(n, k, out, idx)
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		// Reuse the returned buffers: the second draw must match a fresh
		// source's and not reallocate for same-size requests.
		want2 := New(seed+1).Sample(n, k)
		src2 := New(seed + 1)
		out2, _ := src2.SampleInto(n, k, out, idx)
		for i := range want2 {
			if out2[i] != want2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIntsMatchesShuffle(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = i, i
		}
		ra, rb := New(seed), New(seed)
		ra.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		rb.ShuffleInts(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Both sources must end at the same stream position.
		return ra.Uint64() == rb.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
