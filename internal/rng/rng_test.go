package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	root := New(7)
	a := root.Split(3)
	b := root.Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependentOfParentPosition(t *testing.T) {
	r1 := New(7)
	r2 := New(7)
	r2.Uint64() // advance parent; derivation must not change
	a := r1.Split(5)
	b := r2.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split depends on parent stream position")
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("distinct labels produced identical prefixes")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for n := 1; n < 40; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(19)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(29)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-p) > 0.01 {
		t.Fatalf("rate = %v, want ~%v", rate, p)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(41)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d first with count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := New(seed)
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		r.Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
		seen := make([]bool, n)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 1
		k := int(kRaw) % (n + 1)
		r := New(seed)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
