package rng

import "testing"

// TestSampleSparseProperty: every draw is a k-subset of [0, n) with no
// repeats, deterministic in the stream, and appended after dst's
// existing contents.
func TestSampleSparseProperty(t *testing.T) {
	r := New(42)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(50) + 1
		k := r.Intn(n + 1)
		prefix := []int{-7}
		got := r.AppendSampleSparse(n, k, prefix)
		if len(got) != 1+k || got[0] != -7 {
			t.Fatalf("n=%d k=%d: result %v clobbered dst", n, k, got)
		}
		seen := map[int]bool{}
		for _, v := range got[1:] {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d k=%d: bad or repeated value %d in %v", n, k, v, got)
			}
			seen[v] = true
		}
	}

	a := New(9).AppendSampleSparse(1000, 20, nil)
	b := New(9).AppendSampleSparse(1000, 20, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same stream drew different sparse samples")
		}
	}
}

// TestSampleSparseUniform: over many draws every element of [0, n) is
// selected at close to the expected k/n rate.
func TestSampleSparseUniform(t *testing.T) {
	const n, k, trials = 20, 5, 20000
	r := New(3)
	counts := make([]int, n)
	var buf []int
	for i := 0; i < trials; i++ {
		buf = r.AppendSampleSparse(n, k, buf[:0])
		for _, v := range buf {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for v, c := range counts {
		if diff := float64(c) - want; diff > want*0.06 || diff < -want*0.06 {
			t.Fatalf("element %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestSampleSparsePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	New(1).AppendSampleSparse(3, 4, nil)
}
