package timing

import (
	"testing"
	"time"
)

func TestAckAirtimeMatchesDatasheet(t *testing.T) {
	// 11 bytes on air at 32 µs/byte = 352 µs, the standard 802.15.4
	// ACK duration.
	if got := AckAirtime(); got != 352*time.Microsecond {
		t.Fatalf("AckAirtime = %v, want 352µs", got)
	}
}

func TestTurnaroundAndBackoff(t *testing.T) {
	if Turnaround != 192*time.Microsecond {
		t.Fatalf("Turnaround = %v, want 192µs", Turnaround)
	}
	if BackoffSlot != 320*time.Microsecond {
		t.Fatalf("BackoffSlot = %v, want 320µs", BackoffSlot)
	}
}

func TestFrameAirtime(t *testing.T) {
	// Empty payload: 17 bytes on air = 544 µs.
	if got := FrameAirtime(0); got != 544*time.Microsecond {
		t.Fatalf("FrameAirtime(0) = %v", got)
	}
	// Each payload byte adds 32 µs.
	if FrameAirtime(10)-FrameAirtime(0) != 320*time.Microsecond {
		t.Fatal("payload bytes not 32µs each")
	}
	// Negative payloads clamp.
	if FrameAirtime(-5) != FrameAirtime(0) {
		t.Fatal("negative payload not clamped")
	}
}

func TestDefaultCostsOrdering(t *testing.T) {
	c := DefaultCosts(128)
	// The superposed HACK (352µs) is shorter than a full vote frame, so
	// a backcast query beats a pollcast query once bound.
	if c.BackcastQuery >= c.PollcastQuery {
		t.Fatal("HACK-based backcast query should be shorter than a vote frame")
	}
	if c.CSMASlot >= c.SequentialSlot {
		t.Fatal("a backoff slot must be shorter than a reply slot")
	}
	if c.PollcastQuery <= 0 || c.SequentialSlot <= 0 || c.RoundBind <= 0 {
		t.Fatal("non-positive costs")
	}
}

func TestDefaultCostsScaleWithN(t *testing.T) {
	// Bigger populations need bigger group maps in the round bind.
	small := DefaultCosts(16)
	large := DefaultCosts(1024)
	if large.RoundBind <= small.RoundBind {
		t.Fatal("bind cost did not grow with n")
	}
	// Per-query polls stay constant-size.
	if large.BackcastQuery != small.BackcastQuery {
		t.Fatal("per-query poll should not depend on n")
	}
	if DefaultCosts(0).RoundBind <= 0 {
		t.Fatal("n=0 not clamped")
	}
}

func TestTcastLatencyLinear(t *testing.T) {
	c := DefaultCosts(128)
	if c.TcastLatency(10, 2) != 2*c.RoundBind+10*c.BackcastQuery {
		t.Fatal("TcastLatency not linear in queries and rounds")
	}
	if c.TcastLatency(0, 0) != 0 {
		t.Fatal("zero session not free")
	}
}

func TestCSMALatency(t *testing.T) {
	c := DefaultCosts(128)
	// 10 slots, 4 deliveries: 6 idle backoffs + 4 reply frames.
	want := 6*c.CSMASlot + 4*(FrameAirtime(2)+Turnaround)
	if got := c.CSMALatency(10, 4); got != want {
		t.Fatalf("CSMALatency = %v, want %v", got, want)
	}
	// Delivered > slots clamps instead of going negative.
	if c.CSMALatency(2, 5) < 0 {
		t.Fatal("negative latency")
	}
}

func TestSequentialLatencyIncludesSchedule(t *testing.T) {
	c := DefaultCosts(128)
	if c.SequentialLatency(100) <= 100*c.SequentialSlot {
		t.Fatal("schedule broadcast not charged")
	}
}

// TestEndToEndComparison sanity-checks the headline claims in wall-clock
// time, in the regimes where the paper makes them (Fig 1 counts, N=128,
// t=16). For x << t, tcast beats sequential ordering (whose cost starts
// near n−x); for x >> t, tcast beats CSMA (whose cost grows with x).
func TestEndToEndComparison(t *testing.T) {
	c := DefaultCosts(128)

	// x = 2 (measured: 2tBins 30.8 queries / 1 round; sequential 114.8
	// slots; CSMA 6.0 slots with 2 deliveries).
	tcastSmall := c.TcastLatency(31, 1)
	seqSmall := c.SequentialLatency(115)
	if tcastSmall >= seqSmall {
		t.Fatalf("x<<t: tcast %v not faster than sequential %v", tcastSmall, seqSmall)
	}
	// CSMA legitimately wins at x << t — the paper says so.
	if csmaSmall := c.CSMALatency(6, 2); csmaSmall >= tcastSmall {
		t.Fatalf("x<<t: CSMA %v should beat tcast %v here", csmaSmall, tcastSmall)
	}

	// x = 96 (measured: 2tBins 16.1 queries / 1 round; CSMA 146.9 slots
	// with 16 deliveries).
	tcastLarge := c.TcastLatency(17, 1)
	csmaLarge := c.CSMALatency(147, 16)
	if tcastLarge >= csmaLarge {
		t.Fatalf("x>>t: tcast %v not faster than CSMA %v", tcastLarge, csmaLarge)
	}
}
