// Package timing models IEEE 802.15.4 / CC2420 air times so that query
// and slot counts translate into wall-clock latency — the paper's bottom
// line is "significant time improvements", and this package makes the
// conversion explicit and auditable.
//
// Numbers follow the 2.4 GHz O-QPSK PHY used by the TelosB's CC2420: 250
// kbit/s (32 µs per byte, 16 µs per symbol), 12-symbol turnarounds, and
// the standard unit backoff period of 20 symbols.
package timing

import "time"

// PHY constants for the 2.4 GHz O-QPSK 802.15.4 PHY.
const (
	// SymbolTime is one PHY symbol (4 bits).
	SymbolTime = 16 * time.Microsecond
	// ByteTime is the air time of one byte at 250 kbit/s.
	ByteTime = 32 * time.Microsecond
	// SHRBytes is the synchronization header: 4 preamble bytes + SFD.
	SHRBytes = 5
	// PHRBytes is the PHY header (frame length).
	PHRBytes = 1
	// MPDUOverheadBytes is a data frame's MAC overhead: frame control
	// (2) + sequence (1) + short addressing (2+2+2 with PAN id) + FCS
	// (2).
	MPDUOverheadBytes = 11
	// AckMPDUBytes is an (H)ACK frame's MPDU: frame control + sequence
	// + FCS.
	AckMPDUBytes = 5
	// TurnaroundSymbols is aTurnaroundTime, the RX/TX switch.
	TurnaroundSymbols = 12
	// BackoffSymbols is aUnitBackoffPeriod.
	BackoffSymbols = 20
	// CCASymbols is the CCA detection window (8 symbols).
	CCASymbols = 8
)

// Turnaround is the RX/TX (or TX/RX) switching time.
const Turnaround = TurnaroundSymbols * SymbolTime // 192 µs

// BackoffSlot is one unit backoff period — the slot the CSMA baseline
// counts.
const BackoffSlot = BackoffSymbols * SymbolTime // 320 µs

// FrameAirtime returns the air time of a data frame carrying payload
// bytes: SHR + PHR + MAC overhead + payload.
func FrameAirtime(payloadBytes int) time.Duration {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	return time.Duration(SHRBytes+PHRBytes+MPDUOverheadBytes+payloadBytes) * ByteTime
}

// AckAirtime returns the air time of an (H)ACK frame: 352 µs, the figure
// the backcast work quotes.
func AckAirtime() time.Duration {
	return time.Duration(SHRBytes+PHRBytes+AckMPDUBytes) * ByteTime
}

// Costs bundles the per-operation latencies of every scheme in the
// repository, for one deployment's frame sizing.
//
// Per Section IV-D, the initiator broadcasts the predicate and the
// node-to-group map once per re-binning round ("broadcasts a predicate P
// along with a group identifier that maps each participant node to a
// group, and then query each group separately"); each group query is then
// a short poll to the group's ephemeral address plus its simultaneous
// reply.
type Costs struct {
	// RoundBind is the per-round broadcast carrying the predicate and
	// the full group assignment (one group id per node).
	RoundBind time.Duration
	// PollcastQuery is one group poll over pollcast: short poll frame,
	// turnaround, simultaneous vote frame.
	PollcastQuery time.Duration
	// BackcastQuery is one group poll over backcast: short poll frame
	// to the ephemeral address, turnaround, superposed HACK.
	BackcastQuery time.Duration
	// CSMASlot is one contention backoff slot, including CCA.
	CSMASlot time.Duration
	// SequentialSlot is one TDMA reply slot: a reply frame plus a
	// turnaround guard.
	SequentialSlot time.Duration
}

// DefaultCosts sizes frames for a deployment of n nodes: the round bind
// carries one group id byte per node; per-query polls carry a 3-byte
// header (ephemeral address + sequence); votes and replies carry a 2-byte
// answer.
func DefaultCosts(n int) Costs {
	if n < 1 {
		n = 1
	}
	bind := FrameAirtime(n + 2)
	poll := FrameAirtime(3)
	vote := FrameAirtime(2)
	return Costs{
		RoundBind:      bind,
		PollcastQuery:  poll + Turnaround + vote,
		BackcastQuery:  poll + Turnaround + AckAirtime(),
		CSMASlot:       BackoffSlot,
		SequentialSlot: vote + Turnaround,
	}
}

// TcastLatency converts a tcast session's query and round counts into
// latency over backcast, the primitive the paper's implementation uses.
func (c Costs) TcastLatency(queries, rounds int) time.Duration {
	return time.Duration(rounds)*c.RoundBind + time.Duration(queries)*c.BackcastQuery
}

// CSMALatency converts a CSMA session's slot count into latency. A slot
// that carried a successful reply lasts a frame, not a backoff period;
// the caller passes both counts.
func (c Costs) CSMALatency(slots, delivered int) time.Duration {
	idle := slots - delivered
	if idle < 0 {
		idle = 0
	}
	return time.Duration(idle)*c.CSMASlot + time.Duration(delivered)*(FrameAirtime(2)+Turnaround)
}

// SequentialLatency converts a sequential session's slot count into
// latency, charging the schedule broadcast up front.
func (c Costs) SequentialLatency(slots int) time.Duration {
	schedule := FrameAirtime(2 * slots / 8) // rough: 2 bits per scheduled node
	return schedule + time.Duration(slots)*c.SequentialSlot
}
