// Package baseline implements the two traditional feedback-collection
// schemes the paper compares tcast against (Section IV-C): CSMA with
// binary exponential backoff, and sequential (TDMA-style) ordering.
//
// Both baselines measure cost in time slots. One slot carries one reply
// frame, which is commensurate with one RCD group query: a pollcast poll
// plus its simultaneous answer occupies a constant number of slots, so
// the paper plots both costs on a single axis.
package baseline

import (
	"tcast/internal/bitset"
	"tcast/internal/rng"
)

// Result reports one baseline feedback-collection session.
type Result struct {
	// Decision is the initiator's answer to "x >= t?". Under CSMA with
	// guard-based termination the decision can be wrong — the paper's
	// point that "it is impossible to tell whether x > t or x < t holds
	// with certainty using CSMA".
	Decision bool
	// Slots is the number of time slots until the initiator decided.
	Slots int
	// Delivered counts reply frames successfully received.
	Delivered int
	// Collisions counts slots wasted on colliding transmissions.
	Collisions int
	// Dropped counts collision-free replies the channel lost on the way
	// to the initiator (CSMA's Drop hook); the transmitting station
	// still believes it delivered.
	Dropped int
	// Order is the reply schedule used by Sequential (nil for CSMA);
	// energy accounting needs to know who was scheduled before the
	// early-termination point.
	Order []int
}

// CSMA is the contention baseline: every positive node tries to deliver
// one reply using slotted carrier sensing with binary exponential backoff.
// The initiator stops as soon as it can answer the threshold question.
type CSMA struct {
	// CWMin and CWMax bound the contention window. Zero values default
	// to 4 and 128.
	CWMin, CWMax int
	// GuardSlots selects the termination rule for the "x < t" side.
	// Zero means idealized termination — the initiator magically knows
	// when the last reply has arrived, the assumption most favorable to
	// CSMA (mirroring how the paper favored the baselines). A positive
	// value means realistic termination: the initiator declares
	// "threshold unreachable" after that many consecutive idle slots,
	// which can be wrong if a node is still backed off.
	GuardSlots int
	// Drop, when non-nil, is consulted once per successful (collision-
	// free) reply slot: true means the reply frame was lost on the way to
	// the initiator — the station sensed no collision, believes it
	// delivered, and leaves the backlog, but the initiator heard nothing.
	// The faults layer supplies this hook (faults.Link) to subject CSMA
	// to the same bursty-channel process as the RCD substrates; pair it
	// with a positive GuardSlots so lost replies cannot stall idealized
	// termination.
	Drop func(slot int) bool
}

func (c CSMA) bounds() (cwMin, cwMax int) {
	cwMin, cwMax = c.CWMin, c.CWMax
	if cwMin <= 0 {
		cwMin = 4
	}
	if cwMax < cwMin {
		cwMax = 128
	}
	return cwMin, cwMax
}

// Name identifies the baseline in experiment output.
func (c CSMA) Name() string { return "CSMA" }

// Run simulates one session: n participants of which the members of
// positives reply, threshold t.
func (c CSMA) Run(n, t int, positives *bitset.Set, r *rng.Source) Result {
	cwMin, cwMax := c.bounds()
	x := positives.Len()

	if t <= 0 {
		return Result{Decision: true}
	}
	if t > n {
		return Result{Decision: false}
	}

	// Per-backlogged-node contention state.
	type station struct {
		cw      int
		counter int
	}
	backlog := make([]*station, 0, x)
	for i := 0; i < x; i++ {
		backlog = append(backlog, &station{cw: cwMin, counter: r.Intn(cwMin)})
	}

	var res Result
	idleRun := 0
	for {
		if res.Delivered >= t {
			res.Decision = true
			return res
		}
		if c.GuardSlots == 0 {
			// Idealized termination: every station has delivered (or,
			// under Drop, believes it has), threshold not met. The
			// backlog empties exactly when Delivered reaches x on a
			// loss-free channel, so this is the same rule — but it also
			// terminates when dropped replies make Delivered fall short
			// of x forever.
			if len(backlog) == 0 {
				res.Decision = false
				return res
			}
		} else if idleRun >= c.GuardSlots {
			// Realistic termination: prolonged silence. May be wrong
			// if stations are still backed off.
			res.Decision = false
			return res
		}

		res.Slots++
		// Stations whose counter expired transmit this slot.
		transmit := backlog[:0:0]
		for _, s := range backlog {
			if s.counter == 0 {
				transmit = append(transmit, s)
			}
		}
		switch len(transmit) {
		case 0:
			idleRun++
			for _, s := range backlog {
				s.counter--
			}
		case 1:
			idleRun = 0
			if c.Drop == nil || !c.Drop(res.Slots) {
				res.Delivered++
			} else {
				res.Dropped++
			}
			// Remove the successful station from the backlog: with no
			// collision sensed it believes it delivered, even when Drop
			// lost the frame.
			kept := backlog[:0]
			for _, s := range backlog {
				if s != transmit[0] {
					kept = append(kept, s)
				}
			}
			backlog = kept
		default:
			idleRun = 0
			res.Collisions++
			for _, s := range transmit {
				s.cw *= 2
				if s.cw > cwMax {
					s.cw = cwMax
				}
				s.counter = r.Intn(s.cw)
			}
		}
	}
}

// Sequential is the collision-free baseline: the initiator broadcasts a
// schedule assigning every participant its own reply slot (the paper's
// synchronized variant, which it notes "favors the sequential ordering
// results"). Positive nodes reply in their slot; the initiator stops as
// soon as the threshold question resolves.
type Sequential struct {
	// ContactNext selects the alternative implementation the paper
	// sketches — the initiator polls each node and waits for its answer
	// before contacting the next — which doubles the per-node cost but
	// needs no time synchronization.
	ContactNext bool
}

// Name identifies the baseline in experiment output.
func (s Sequential) Name() string {
	if s.ContactNext {
		return "Sequential(contact-next)"
	}
	return "Sequential"
}

// Run simulates one session over a uniformly random reply order.
func (s Sequential) Run(n, t int, positives *bitset.Set, r *rng.Source) Result {
	if t <= 0 {
		return Result{Decision: true}
	}
	if t > n {
		return Result{Decision: false}
	}
	perSlot := 1
	if s.ContactNext {
		perSlot = 2
	}
	order := r.Perm(n)
	res := Result{Order: order}
	heard := 0
	for i, id := range order {
		res.Slots += perSlot
		if positives.Contains(id) {
			heard++
			res.Delivered++
		}
		remaining := n - (i + 1)
		if heard >= t {
			res.Decision = true
			return res
		}
		if heard+remaining < t {
			res.Decision = false
			return res
		}
	}
	// Unreachable: one of the two conditions resolves by the last slot.
	res.Decision = heard >= t
	return res
}
