package baseline

import (
	"testing"
	"testing/quick"

	"tcast/internal/bitset"
	"tcast/internal/rng"
)

func randomPositives(n, x int, r *rng.Source) *bitset.Set {
	s := bitset.New(n)
	for _, id := range r.Sample(n, x) {
		s.Add(id)
	}
	return s
}

func TestCSMAIdealCorrect(t *testing.T) {
	root := rng.New(1)
	for _, tc := range []struct{ n, th, x int }{
		{32, 8, 0}, {32, 8, 7}, {32, 8, 8}, {32, 8, 32},
		{128, 16, 15}, {128, 16, 17}, {1, 1, 1}, {1, 1, 0},
	} {
		for i := 0; i < 10; i++ {
			r := root.Split(uint64(tc.n*1000 + tc.x*10 + i))
			res := CSMA{}.Run(tc.n, tc.th, randomPositives(tc.n, tc.x, r), r)
			if want := tc.x >= tc.th; res.Decision != want {
				t.Fatalf("n=%d t=%d x=%d: decision %v, want %v", tc.n, tc.th, tc.x, res.Decision, want)
			}
		}
	}
}

func TestCSMAZeroPositivesIdealFree(t *testing.T) {
	r := rng.New(2)
	res := CSMA{}.Run(64, 8, bitset.New(64), r)
	if res.Decision || res.Slots != 0 {
		t.Fatalf("x=0 ideal: %+v", res)
	}
}

func TestCSMATrivialThresholds(t *testing.T) {
	r := rng.New(3)
	if res := (CSMA{}).Run(8, 0, randomPositives(8, 3, r), r); !res.Decision || res.Slots != 0 {
		t.Fatalf("t=0: %+v", res)
	}
	if res := (CSMA{}).Run(8, 9, randomPositives(8, 3, r), r); res.Decision || res.Slots != 0 {
		t.Fatalf("t>n: %+v", res)
	}
}

func TestCSMACostGrowsWithX(t *testing.T) {
	// Fig 1: "CSMA cost increases proportional to x".
	root := rng.New(4)
	avg := func(x int) float64 {
		total := 0
		const runs = 300
		for i := 0; i < runs; i++ {
			r := root.Split(uint64(x*1000 + i))
			// High threshold so every reply must be collected.
			res := CSMA{}.Run(128, 128, randomPositives(128, x, r), r)
			total += res.Slots
		}
		return float64(total) / runs
	}
	c8, c32, c96 := avg(8), avg(32), avg(96)
	if !(c8 < c32 && c32 < c96) {
		t.Fatalf("CSMA cost not increasing: %v, %v, %v", c8, c32, c96)
	}
	// Superlinearity head-room: at least linear growth.
	if c96 < 2.5*c32/(32.0/96.0)/10 { // sanity floor, avoids flakiness
		t.Fatalf("implausible CSMA costs: %v %v %v", c8, c32, c96)
	}
}

func TestCSMAEarlyStopAtThreshold(t *testing.T) {
	// With x >> t the initiator stops at the t-th delivery: cost must be
	// far below the full-collection cost.
	root := rng.New(5)
	const runs = 200
	var early, full int
	for i := 0; i < runs; i++ {
		r := root.Split(uint64(i))
		pos := randomPositives(128, 100, r)
		early += CSMA{}.Run(128, 8, pos.Clone(), r.Split(1)).Slots
		full += CSMA{}.Run(128, 100, pos.Clone(), r.Split(2)).Slots
	}
	if early >= full/2 {
		t.Fatalf("early stop not effective: early=%d full=%d", early, full)
	}
}

func TestCSMADeliveredAndCollisions(t *testing.T) {
	r := rng.New(6)
	res := CSMA{}.Run(64, 64, randomPositives(64, 20, r), r)
	if res.Delivered != 20 {
		t.Fatalf("Delivered = %d, want 20", res.Delivered)
	}
	if res.Slots < 20 {
		t.Fatalf("Slots = %d < deliveries", res.Slots)
	}
}

func TestCSMAGuardTermination(t *testing.T) {
	// A generous guard gives correct decisions and costs at least the
	// guard on the "false" side.
	root := rng.New(7)
	for i := 0; i < 30; i++ {
		r := root.Split(uint64(i))
		res := CSMA{GuardSlots: 256}.Run(64, 8, randomPositives(64, 3, r), r)
		if res.Decision {
			t.Fatalf("trial %d: guard termination decided true with x=3 < t=8", i)
		}
		if res.Slots < 256 {
			t.Fatalf("trial %d: guard fired after %d slots", i, res.Slots)
		}
	}
}

func TestCSMAGuardZeroPositivesCostsGuard(t *testing.T) {
	r := rng.New(8)
	res := CSMA{GuardSlots: 32}.Run(64, 8, bitset.New(64), r)
	if res.Decision || res.Slots != 32 {
		t.Fatalf("guard idle cost: %+v", res)
	}
}

func TestCSMACustomWindows(t *testing.T) {
	r := rng.New(9)
	res := CSMA{CWMin: 2, CWMax: 8}.Run(32, 32, randomPositives(32, 16, r), r)
	if res.Delivered != 16 {
		t.Fatalf("custom windows broke delivery: %+v", res)
	}
}

func TestQuickCSMAIdealAlwaysCorrect(t *testing.T) {
	f := func(seed uint64, nRaw, tRaw, xRaw uint8) bool {
		n := int(nRaw%64) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		res := CSMA{}.Run(n, th, randomPositives(n, x, r), r)
		return res.Decision == (x >= th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialCorrect(t *testing.T) {
	root := rng.New(10)
	for _, tc := range []struct{ n, th, x int }{
		{32, 8, 0}, {32, 8, 7}, {32, 8, 8}, {32, 8, 32},
		{128, 16, 15}, {128, 16, 17}, {1, 1, 1}, {1, 1, 0},
	} {
		for i := 0; i < 10; i++ {
			r := root.Split(uint64(tc.n*1000 + tc.x*10 + i))
			res := Sequential{}.Run(tc.n, tc.th, randomPositives(tc.n, tc.x, r), r)
			if want := tc.x >= tc.th; res.Decision != want {
				t.Fatalf("n=%d t=%d x=%d: decision %v", tc.n, tc.th, tc.x, res.Decision)
			}
		}
	}
}

func TestSequentialZeroPositivesCost(t *testing.T) {
	// x=0: "false" resolves once the remaining slots cannot reach t:
	// exactly n-t+1 slots.
	r := rng.New(11)
	res := Sequential{}.Run(128, 16, bitset.New(128), r)
	if res.Decision || res.Slots != 128-16+1 {
		t.Fatalf("x=0: %+v, want slots=%d", res, 128-16+1)
	}
}

func TestSequentialAllPositiveCost(t *testing.T) {
	// x=n: the t-th slot delivers the t-th positive.
	r := rng.New(12)
	res := Sequential{}.Run(128, 16, bitset.Full(128), r)
	if !res.Decision || res.Slots != 16 {
		t.Fatalf("x=n: %+v, want slots=16", res)
	}
}

func TestSequentialLargeCostForSmallX(t *testing.T) {
	// Fig 1: sequential "starts with a large cost overhead
	// (approximately n−x) for x << t".
	root := rng.New(13)
	const n, th, x, runs = 128, 16, 2, 200
	total := 0
	for i := 0; i < runs; i++ {
		r := root.Split(uint64(i))
		total += Sequential{}.Run(n, th, randomPositives(n, x, r), r).Slots
	}
	avg := float64(total) / runs
	if avg < float64(n)-float64(th)-float64(x)-5 {
		t.Fatalf("sequential avg %v implausibly cheap for x<<t", avg)
	}
}

func TestSequentialContactNextDoubles(t *testing.T) {
	r1 := rng.New(14)
	r2 := rng.New(14)
	pos := bitset.Full(64)
	plain := Sequential{}.Run(64, 8, pos, r1)
	contact := Sequential{ContactNext: true}.Run(64, 8, pos, r2)
	if contact.Slots != 2*plain.Slots {
		t.Fatalf("contact-next slots %d, want %d", contact.Slots, 2*plain.Slots)
	}
	if (Sequential{ContactNext: true}).Name() != "Sequential(contact-next)" ||
		(Sequential{}).Name() != "Sequential" || (CSMA{}).Name() != "CSMA" {
		t.Fatal("names wrong")
	}
}

func TestSequentialTrivialThresholds(t *testing.T) {
	r := rng.New(15)
	if res := (Sequential{}).Run(8, 0, bitset.New(8), r); !res.Decision || res.Slots != 0 {
		t.Fatalf("t=0: %+v", res)
	}
	if res := (Sequential{}).Run(8, 9, bitset.Full(8), r); res.Decision || res.Slots != 0 {
		t.Fatalf("t>n: %+v", res)
	}
}

func TestQuickSequentialAlwaysCorrect(t *testing.T) {
	f := func(seed uint64, nRaw, tRaw, xRaw uint8, contact bool) bool {
		n := int(nRaw%64) + 1
		th := int(tRaw) % (n + 2)
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		res := Sequential{ContactNext: contact}.Run(n, th, randomPositives(n, x, r), r)
		return res.Decision == (x >= th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSequentialSlotsBounded(t *testing.T) {
	f := func(seed uint64, xRaw uint8) bool {
		const n, th = 64, 8
		x := int(xRaw) % (n + 1)
		r := rng.New(seed)
		res := Sequential{}.Run(n, th, randomPositives(n, x, r), r)
		return res.Slots >= 1 && res.Slots <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCSMA(b *testing.B) {
	root := rng.New(1)
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		CSMA{}.Run(128, 16, randomPositives(128, 32, r), r)
	}
}

func BenchmarkSequential(b *testing.B) {
	root := rng.New(1)
	for i := 0; i < b.N; i++ {
		r := root.Split(uint64(i))
		Sequential{}.Run(128, 16, randomPositives(128, 32, r), r)
	}
}
