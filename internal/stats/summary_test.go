package stats

import (
	"math"
	"testing"

	"tcast/internal/rng"
)

// TestQuantilesSingleSort is the regression test for the quantile cost
// model: Quantiles must sort exactly once regardless of how many
// quantiles it returns, while three Quantile calls pay three sorts.
func TestQuantilesSingleSort(t *testing.T) {
	sample := make([]float64, 1000)
	r := rng.New(11)
	for i := range sample {
		sample[i] = float64(r.Intn(1 << 20))
	}

	before := sampleSorts.Load()
	multi := Quantiles(sample, 0.5, 0.9, 0.99)
	if got := sampleSorts.Load() - before; got != 1 {
		t.Fatalf("Quantiles(3 qs) performed %d sorts, want 1", got)
	}

	before = sampleSorts.Load()
	single := []float64{Quantile(sample, 0.5), Quantile(sample, 0.9), Quantile(sample, 0.99)}
	if got := sampleSorts.Load() - before; got != 3 {
		t.Fatalf("3×Quantile performed %d sorts, want 3", got)
	}
	for i := range multi {
		if multi[i] != single[i] {
			t.Fatalf("Quantiles[%d]=%v != Quantile=%v", i, multi[i], single[i])
		}
	}
}

// TestQuantilesAllocations pins the allocation budget: one sorted copy
// plus one result slice for Quantiles, versus a fresh copy per Quantile
// call.
func TestQuantilesAllocations(t *testing.T) {
	sample := make([]float64, 512)
	for i := range sample {
		sample[i] = float64((i * 7919) % 997)
	}
	multi := testing.AllocsPerRun(50, func() {
		Quantiles(sample, 0.5, 0.9, 0.99)
	})
	if multi > 2 {
		t.Errorf("Quantiles allocates %v per run, want <= 2 (copy + result)", multi)
	}
	per := testing.AllocsPerRun(50, func() {
		Quantile(sample, 0.5)
		Quantile(sample, 0.9)
		Quantile(sample, 0.99)
	})
	if per < 3 {
		t.Errorf("3×Quantile allocates %v per run; the copy-per-call cost model changed, update the docs", per)
	}
}

func TestSeriesSummaryMatchesExact(t *testing.T) {
	const n = 10000
	sample := make([]float64, n)
	r := rng.New(23)
	for i := range sample {
		sample[i] = float64(1 + r.Intn(5000))
	}
	s := NewSeriesSummary(0.01)
	var run Running
	for _, v := range sample {
		s.Observe(v)
		run.Observe(v)
	}
	if s.N() != run.N() {
		t.Fatalf("n: %d vs %d", s.N(), run.N())
	}
	if math.Abs(s.Mean()-run.Mean()) > 1e-9*run.Mean() {
		t.Errorf("mean: %v vs %v", s.Mean(), run.Mean())
	}
	if math.Abs(s.CI95()-run.CI95()) > 1e-9*run.CI95() {
		t.Errorf("ci95: %v vs %v", s.CI95(), run.CI95())
	}
	if s.Moments.Min != run.Min() || s.Moments.Max != run.Max() {
		t.Errorf("min/max: %v/%v vs %v/%v", s.Moments.Min, s.Moments.Max, run.Min(), run.Max())
	}
	exact := Quantiles(sample, 0.5, 0.9, 0.99)
	est := s.Quantiles(0.5, 0.9, 0.99)
	for i := range exact {
		if rel := math.Abs(est[i]-exact[i]) / exact[i]; rel > 0.011 {
			t.Errorf("q[%d]: sketch %v vs exact %v (rel %v)", i, est[i], exact[i], rel)
		}
	}
	p := s.Point(3)
	if p.X != 3 || p.Y != s.Mean() || p.Err != s.CI95() || p.N != n {
		t.Errorf("point: %+v", p)
	}
}

func TestSeriesSummaryMergeWorkerIndependent(t *testing.T) {
	sample := make([]float64, 4000)
	r := rng.New(5)
	for i := range sample {
		sample[i] = float64(r.Intn(1000))
	}
	serial := NewSeriesSummary(0.01)
	for _, v := range sample {
		serial.Observe(v)
	}
	for _, workers := range []int{2, 4, 7} {
		shards := make([]*SeriesSummary, workers)
		for w := range shards {
			shards[w] = NewSeriesSummary(0.01)
			for i := w; i < len(sample); i += workers {
				shards[w].Observe(sample[i])
			}
		}
		merged := NewSeriesSummary(0.01)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.Q.String() != serial.Q.String() {
			t.Errorf("workers=%d: sketch bytes differ from serial", workers)
		}
		if merged.N() != serial.N() {
			t.Errorf("workers=%d: n %d vs %d", workers, merged.N(), serial.N())
		}
		if math.Abs(merged.Mean()-serial.Mean()) > 1e-9 {
			t.Errorf("workers=%d: mean %v vs %v", workers, merged.Mean(), serial.Mean())
		}
	}
	empty := NewSeriesSummary(0.01)
	if empty.String() != "n=0" {
		t.Errorf("empty string: %q", empty.String())
	}
	empty.Merge(nil)
	empty.Merge(serial)
	if empty.N() != serial.N() {
		t.Errorf("merge into empty: n %d", empty.N())
	}
	empty.Reset()
	if empty.N() != 0 || empty.Q.Count() != 0 {
		t.Errorf("reset left n=%d", empty.N())
	}
}
