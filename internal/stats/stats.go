// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate trial results: streaming moments, confidence
// intervals, and labeled series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Running accumulates streaming mean and variance using Welford's
// algorithm, which is numerically stable over the millions of observations
// a parameter sweep produces.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance, or 0 for n < 2.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 with no observations.
func (r *Running) Max() float64 { return r.max }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// tCrit95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom df = 1..29 (tCrit95[df-1]). Beyond df = 29 the
// normal approximation z = 1.96 is within 1.5% and takes over.
var tCrit95 = [29]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// CI95 returns the half-width of a 95% confidence interval on the mean,
// using Student-t critical values for small samples (n < 30, where the
// z = 1.96 normal approximation understates the interval — at n = 5 by
// over 40%) and the normal approximation above. It returns 0 for n < 2,
// where no variance estimate exists.
func (r *Running) CI95() float64 {
	df := r.n - 1
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1] * r.StdErr()
	default:
		return 1.96 * r.StdErr()
	}
}

// Merge folds other into r, as if r had observed all of other's samples.
// Min/Max are merged exactly; moments use the parallel-variance formula.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	n1, n2 := float64(r.n), float64(other.n)
	delta := other.mean - r.mean
	total := n1 + n2
	r.m2 += other.m2 + delta*delta*n1*n2/total
	r.mean += delta * n2 / total
	r.n += other.n
}

// String summarizes the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f sd=%.3f min=%.3f max=%.3f",
		r.n, r.Mean(), r.CI95(), r.StdDev(), r.min, r.max)
}

// sampleSorts counts copy-and-sort passes made by the quantile helpers.
// It exists so a regression test can pin the cost model: Quantile pays
// one sort per call, Quantiles one sort total — callers needing several
// quantiles of one sample must not pay per-quantile sorts.
var sampleSorts atomic.Uint64

// sortedCopy is the single choke point for quantile sorting: one copy,
// one sort, one counter tick.
func sortedCopy(sample []float64) []float64 {
	sampleSorts.Add(1)
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	return sorted
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using
// linear interpolation between order statistics. The input need not be
// sorted; a sorted copy is made. It panics on an empty sample or a q
// outside [0, 1].
//
// Each call copies and sorts the sample: O(n log n) per quantile. For
// several quantiles of one sample use Quantiles (one sort), and for
// large or streaming samples use SeriesSummary (no sort at all).
func Quantile(sample []float64, q float64) float64 {
	return quantileSorted(sortedCopy(sample), q)
}

// Quantiles returns several quantiles of one sample, sorting a single
// copy once — the input is never mutated, matching Quantile.
func Quantiles(sample []float64, qs ...float64) []float64 {
	sorted := sortedCopy(sample)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// quantileSorted reads the q-th linearly interpolated quantile from an
// already-sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Point is one (x, y) measurement with an uncertainty half-width.
type Point struct {
	X   float64
	Y   float64
	Err float64 // 95% CI half-width, 0 if unknown
	N   int     // number of trials aggregated into this point
}

// Series is a named sequence of points, e.g. one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point keeping points in insertion order.
func (s *Series) Append(p Point) { s.Points = append(s.Points, p) }

// YAt returns the Y value at the point with the given X, or an error if no
// such point exists.
func (s *Series) YAt(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("stats: series %q has no point at x=%v", s.Name, x)
}

// MaxY returns the point with the largest Y (first on ties). It returns an
// error for an empty series.
func (s *Series) MaxY() (Point, error) {
	if len(s.Points) == 0 {
		return Point{}, fmt.Errorf("stats: series %q is empty", s.Name)
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Y > best.Y {
			best = p
		}
	}
	return best, nil
}

// Sorted returns a copy of the series with points ordered by X.
func (s *Series) Sorted() *Series {
	out := &Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].X < out.Points[j].X })
	return out
}

// Table is a collection of series sharing an X axis: the data behind one
// paper figure.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// Get returns the series with the given name, or nil.
func (t *Table) Get(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Add appends a series to the table.
func (t *Table) Add(s *Series) { t.Series = append(t.Series, s) }
