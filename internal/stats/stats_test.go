package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tcast/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Fatal("zero-value accumulator not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic data set is 4; sample variance is
	// 32/7.
	if !almostEqual(r.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Observe(3.5)
	if r.Mean() != 3.5 || r.Variance() != 0 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Fatal("single-observation stats wrong")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := rng.New(1)
	var small, large Running
	for i := 0; i < 100; i++ {
		small.Observe(src.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Observe(src.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	src := rng.New(2)
	var all, a, b Running
	for i := 0; i < 1000; i++ {
		x := src.Normal(10, 3)
		all.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Observe(1)
	a.Observe(3)
	before := a
	a.Merge(&b) // merging empty changes nothing
	if a != before {
		t.Fatal("merging empty accumulator changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatal("merge into empty accumulator wrong")
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var seq Running
		parts := make([]*Running, 4)
		for i := range parts {
			parts[i] = &Running{}
		}
		for i := 0; i < 400; i++ {
			x := src.Float64()*100 - 50
			seq.Observe(x)
			parts[i%4].Observe(x)
		}
		var merged Running
		for _, p := range parts {
			merged.Merge(p)
		}
		return almostEqual(merged.Mean(), seq.Mean(), 1e-8) &&
			almostEqual(merged.Variance(), seq.Variance(), 1e-8) &&
			merged.N() == seq.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	sample := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(sample, q); !almostEqual(got, want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.25); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
	// Single element.
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	// Input not mutated.
	if sample[0] != 5 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSeriesYAt(t *testing.T) {
	s := &Series{Name: "curve"}
	s.Append(Point{X: 1, Y: 10})
	s.Append(Point{X: 2, Y: 20})
	if y, err := s.YAt(2); err != nil || y != 20 {
		t.Fatalf("YAt(2) = %v, %v", y, err)
	}
	if _, err := s.YAt(3); err == nil {
		t.Fatal("YAt(3) succeeded on missing point")
	}
}

func TestSeriesMaxY(t *testing.T) {
	s := &Series{Name: "curve"}
	if _, err := s.MaxY(); err == nil {
		t.Fatal("MaxY on empty series did not error")
	}
	s.Append(Point{X: 1, Y: 10})
	s.Append(Point{X: 5, Y: 42})
	s.Append(Point{X: 9, Y: 7})
	p, err := s.MaxY()
	if err != nil || p.X != 5 || p.Y != 42 {
		t.Fatalf("MaxY = %+v, %v", p, err)
	}
}

func TestSeriesSorted(t *testing.T) {
	s := &Series{Name: "c"}
	s.Append(Point{X: 3})
	s.Append(Point{X: 1})
	s.Append(Point{X: 2})
	sorted := s.Sorted()
	for i, want := range []float64{1, 2, 3} {
		if sorted.Points[i].X != want {
			t.Fatalf("Sorted[%d].X = %v, want %v", i, sorted.Points[i].X, want)
		}
	}
	if s.Points[0].X != 3 {
		t.Fatal("Sorted mutated the original")
	}
}

func TestTableGet(t *testing.T) {
	tab := &Table{Title: "fig"}
	tab.Add(&Series{Name: "a"})
	tab.Add(&Series{Name: "b"})
	if tab.Get("b") == nil || tab.Get("b").Name != "b" {
		t.Fatal("Get(b) failed")
	}
	if tab.Get("zzz") != nil {
		t.Fatal("Get on missing series returned non-nil")
	}
}

func TestCI95SmallSampleUsesStudentT(t *testing.T) {
	// Five observations with known sd: the 95% CI must use t(df=4)=2.776,
	// not the normal 1.96 — the normal approximation understates the
	// interval by over 40% at this n.
	var r Running
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Observe(x)
	}
	want := 2.776 * r.StdErr()
	if !almostEqual(r.CI95(), want, 1e-12) {
		t.Fatalf("CI95 = %v, want %v (Student-t)", r.CI95(), want)
	}
	if normal := 1.96 * r.StdErr(); r.CI95() <= normal {
		t.Fatalf("small-sample CI %v not wider than normal %v", r.CI95(), normal)
	}
}

func TestCI95LargeSampleFallsBackToNormal(t *testing.T) {
	src := rng.New(4)
	var r Running
	for i := 0; i < 100; i++ {
		r.Observe(src.NormFloat64())
	}
	if !almostEqual(r.CI95(), 1.96*r.StdErr(), 1e-12) {
		t.Fatalf("large-sample CI95 = %v, want 1.96*SE = %v", r.CI95(), 1.96*r.StdErr())
	}
}

func TestCI95DegenerateSamples(t *testing.T) {
	var r Running
	if r.CI95() != 0 {
		t.Fatal("empty accumulator CI not 0")
	}
	r.Observe(7)
	if r.CI95() != 0 {
		t.Fatal("single observation CI not 0")
	}
}

func TestCI95MonotonicAcrossTableBoundary(t *testing.T) {
	// Adding an identical spread of samples around the df=29 -> normal
	// crossover must shrink the CI smoothly: the critical value decreases
	// monotonically in n, so the half-width (same sd) cannot grow.
	mkRunning := func(n int) Running {
		var r Running
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				r.Observe(0)
			} else {
				r.Observe(1)
			}
		}
		return r
	}
	first := mkRunning(4)
	prev := first.CI95()
	for n := 6; n <= 40; n += 2 {
		r := mkRunning(n)
		cur := r.CI95()
		if cur >= prev {
			t.Fatalf("CI did not shrink from n=%d (%v) to n=%d (%v)", n-2, prev, n, cur)
		}
		prev = cur
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	sample := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	got := Quantiles(sample, qs...)
	for i, q := range qs {
		if want := Quantile(sample, q); got[i] != want {
			t.Errorf("Quantiles[%v] = %v, want %v", q, got[i], want)
		}
	}
}

func TestQuantilesDoNotMutateInput(t *testing.T) {
	sample := []float64{5, 3, 1, 4, 2}
	orig := append([]float64(nil), sample...)
	Quantiles(sample, 0.5, 0.9)
	Quantile(sample, 0.5)
	for i := range sample {
		if sample[i] != orig[i] {
			t.Fatalf("input mutated: %v, want %v", sample, orig)
		}
	}
}

func TestQuantilesPanicOnBadInput(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("empty sample", func() { Quantiles(nil, 0.5) })
	assertPanics("q out of range", func() { Quantiles([]float64{1}, 1.5) })
}
