package stats

import (
	"fmt"
	"math"
	"strings"

	"tcast/internal/sketch"
)

// SeriesSummary is the constant-memory alternative to collecting a full
// sample slice and calling Quantiles on it: streaming moments plus a
// mergeable relative-error quantile sketch. Memory is bounded by the
// sketch's bucket span regardless of how many values are observed, so a
// million-trial sweep summarizes in a few kilobytes instead of 8 MB of
// float64s, and per-worker summaries merge exactly (worker-count
// independent bucket counts).
//
// Quantile estimates carry the sketch's relative-error bound (alpha,
// default 1%) instead of the exact interpolated order statistics the
// slice path produces; mean/CI/min/max remain exact.
type SeriesSummary struct {
	Moments sketch.Moments
	Q       *sketch.Quantile
}

// NewSeriesSummary returns an empty summary with the given sketch
// accuracy; non-positive alpha selects sketch.DefaultAlpha.
func NewSeriesSummary(alpha float64) *SeriesSummary {
	return &SeriesSummary{Q: sketch.NewQuantile(alpha)}
}

// Observe folds one value into the summary.
func (s *SeriesSummary) Observe(v float64) {
	s.Moments.Observe(v)
	s.Q.Observe(v)
}

// N returns the number of observations.
func (s *SeriesSummary) N() int { return int(s.Moments.N) }

// Mean returns the exact running mean.
func (s *SeriesSummary) Mean() float64 { return s.Moments.Mean() }

// CI95 returns the 95% confidence half-width on the mean, using the
// same Student-t small-sample correction as Running.
func (s *SeriesSummary) CI95() float64 {
	n := s.Moments.N
	df := int(n) - 1
	if df < 1 {
		return 0
	}
	se := s.Moments.Stddev() / math.Sqrt(float64(n))
	if df <= len(tCrit95) {
		return tCrit95[df-1] * se
	}
	return 1.96 * se
}

// Quantile returns the sketch's p-quantile estimate (relative error
// bounded by the sketch alpha). It panics on an empty summary.
func (s *SeriesSummary) Quantile(p float64) float64 { return s.Q.Value(p) }

// Quantiles returns several quantile estimates.
func (s *SeriesSummary) Quantiles(ps ...float64) []float64 { return s.Q.Values(ps...) }

// Merge folds other into s as if s had observed other's values.
func (s *SeriesSummary) Merge(other *SeriesSummary) {
	if other == nil {
		return
	}
	s.Moments.Merge(other.Moments)
	s.Q.Merge(other.Q)
}

// Reset empties the summary, keeping the sketch's bucket capacity.
func (s *SeriesSummary) Reset() {
	s.Moments.Reset()
	s.Q.Reset()
}

// Point renders the summary as a series point at the given X: exact
// mean, exact CI95, exact trial count.
func (s *SeriesSummary) Point(x float64) Point {
	return Point{X: x, Y: s.Mean(), Err: s.CI95(), N: s.N()}
}

// String summarizes mean, CI, and the p50/p90/p99 sketch estimates.
func (s *SeriesSummary) String() string {
	if s.N() == 0 {
		return "n=0"
	}
	qs := s.Quantiles(0.5, 0.9, 0.99)
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3f ±%.3f min=%.3f max=%.3f p50=%.3f p90=%.3f p99=%.3f",
		s.N(), s.Mean(), s.CI95(), s.Moments.Min, s.Moments.Max, qs[0], qs[1], qs[2])
	return b.String()
}
