package experiment

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"tcast/internal/rng"
	"tcast/internal/stats"
)

func TestMeanParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	trial := func(_ int, r *rng.Source) (float64, error) { return r.Float64(), nil }
	means := make([]float64, 0, 4)
	for _, workers := range []int{1, 2, 4, 16} {
		acc, err := MeanParallel(100, workers, rng.New(7), trial)
		if err != nil {
			t.Fatal(err)
		}
		means = append(means, acc.Mean())
	}
	for _, m := range means[1:] {
		if m != means[0] {
			t.Fatalf("worker count changed the mean: %v", means)
		}
	}
}

func TestMeanParallelPropagatesErrors(t *testing.T) {
	calls := 0
	trial := func(_ int, r *rng.Source) (float64, error) {
		calls++
		return 0, fmt.Errorf("boom")
	}
	if _, err := MeanParallel(10, 2, rng.New(1), trial); err == nil {
		t.Fatal("error swallowed")
	}
	_ = calls
}

func TestMeanParallelRejectsZeroRuns(t *testing.T) {
	if _, err := MeanParallel(0, 2, rng.New(1), nil); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestMeanParallelCountsAllRuns(t *testing.T) {
	acc, err := MeanParallel(137, 8, rng.New(1), func(_ int, r *rng.Source) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if acc.N() != 137 || acc.Mean() != 1 {
		t.Fatalf("N=%d mean=%v", acc.N(), acc.Mean())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-capture", "abl-variants", "ext-battery", "ext-count",
		"ext-energy", "ext-faults", "ext-kplus", "ext-multihop", "ext-scale",
		"ext-time",
		"fig1",
		"fig10", "fig11", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "tab-acc", "tab-err",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	e, err := Get("fig1")
	if err != nil || e.ID != "fig1" {
		t.Fatalf("Get(fig1) = %+v, %v", e, err)
	}
}

func makeTable() *stats.Table {
	tab := &stats.Table{Title: "demo", XLabel: "x", YLabel: "y"}
	a := &stats.Series{Name: "alpha"}
	a.Append(stats.Point{X: 1, Y: 2})
	a.Append(stats.Point{X: 2, Y: 4.5})
	b := &stats.Series{Name: "beta"}
	b.Append(stats.Point{X: 2, Y: 8})
	tab.Add(a)
	tab.Add(b)
	return tab
}

func TestRender(t *testing.T) {
	out := Render(makeTable())
	for _, want := range []string{"demo", "alpha", "beta", "4.500", "8", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Missing point (alpha has x=1, beta does not) renders as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two data rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestRenderCI(t *testing.T) {
	tab := &stats.Table{Title: "ci", XLabel: "x"}
	s := &stats.Series{Name: "a"}
	s.Append(stats.Point{X: 1, Y: 2, Err: 0.25, N: 10})
	tab.Add(s)
	out := RenderCI(tab)
	for _, want := range []string{"±95%", "0.250", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderCI missing %q:\n%s", want, out)
		}
	}
	// Missing points render as dashes in both columns.
	b := &stats.Series{Name: "b"}
	b.Append(stats.Point{X: 9, Y: 9})
	tab.Add(b)
	out = RenderCI(tab)
	if strings.Count(out, "-") < 4 {
		t.Errorf("missing-point dashes absent:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(makeTable())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,alpha,beta" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2," {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,4.500,8" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &stats.Table{XLabel: `x,"label"`}
	s := &stats.Series{Name: "a,b"}
	s.Append(stats.Point{X: 1, Y: 1})
	tab.Add(s)
	out := CSV(tab)
	if !strings.HasPrefix(out, `"x,""label""","a,b"`) {
		t.Fatalf("escaping wrong: %q", out)
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.500",
		0:      "0",
		-2:     "-2",
		1.2345: "1.234",
	}
	for v, want := range cases {
		if got := formatNum(v); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestXSweepShape(t *testing.T) {
	xs := xSweep(128, 16)
	if xs[0] != 0 || xs[len(xs)-1] != 128 {
		t.Fatalf("sweep endpoints wrong: %v", xs)
	}
	seen := map[int]bool{}
	last := -1
	for _, x := range xs {
		if x < 0 || x > 128 || seen[x] || x <= last {
			t.Fatalf("sweep not strictly increasing and unique: %v", xs)
		}
		seen[x] = true
		last = x
	}
	// The hard region must be densely covered.
	for _, must := range []int{15, 16, 17} {
		if !seen[must] {
			t.Fatalf("sweep missing x=%d: %v", must, xs)
		}
	}
}

// TestExperimentDeterminism: a full figure run is bit-identical for the
// same options — the property that makes EXPERIMENTS.md reproducible.
func TestExperimentDeterminism(t *testing.T) {
	e, err := Get("fig7")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Runs: 60, Seed: 5}
	a, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if Render(a) != Render(b) {
		t.Fatal("identical options produced different tables")
	}
	// A different worker count must not change anything either.
	opts.Workers = 1
	c, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if Render(a) != Render(c) {
		t.Fatal("worker count changed the table")
	}
}

func TestSweepProducesCIs(t *testing.T) {
	root := rng.New(3)
	s, err := sweep("s", []int{1, 2}, Options{Runs: 50, Workers: 4}, root, func(x int) pointCost {
		return func(_ int, r *rng.Source) (float64, error) { return float64(x) + r.Float64(), nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.N != 50 || p.Err <= 0 {
			t.Fatalf("point %+v lacks CI", p)
		}
		if math.Abs(p.Y-(p.X+0.5)) > 0.2 {
			t.Fatalf("point mean off: %+v", p)
		}
	}
}
