package experiment

import (
	"fmt"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/stats"
)

// tab-acc is the accuracy-breakdown campaign: 2tBins over the packet-level
// backcast substrate with increasing per-HACK-copy reply loss, every
// session graded by the ground-truth auditor. Backcast is the right
// primitive for loss analysis: a bin answers Empty exactly when every
// superposed HACK copy is dropped — the radio false negative behind the
// paper's Section IV-D error report — whereas pollcast's CCA energy
// sensing is loss-immune. Unlike the figure experiments — which run on
// effectively lossless substrates and treat a wrong decision as a harness
// error — this campaign *wants* wrong decisions, so it can attribute each
// one to the first causal unsound poll.
const (
	accN = 24 // participants
	accT = 6  // threshold
	accX = 8  // true positives: x > t, so loss-induced errors decide "no"
)

// accMissPcts are the swept per-reply loss probabilities, in percent.
var accMissPcts = []int{0, 2, 5, 10, 15, 20}

// accuracyPoint runs one miss-rate point's trials (at full worker
// parallelism; verdicts are inserted under their trial index so the
// dumps are order-deterministic) and returns the graded collector
// alongside the per-trial correctness values.
func accuracyPoint(missPct int, o Options, root *rng.Source) (*audit.Collector, []float64, error) {
	col := &audit.Collector{}
	miss := float64(missPct) / 100
	values, err := RunTrials(o.runs(200), o.workers(), root, func(trial int, r *rng.Source) (float64, error) {
		med := radio.NewMedium(radio.Config{MissProb: miss}, r.Split(1))
		parts := make([]*pollcast.Participant, accN)
		positive := make(map[int]bool, accX)
		for _, id := range r.Split(2).Sample(accN, accX) {
			positive[id] = true
		}
		for i := range parts {
			parts[i] = &pollcast.Participant{ID: i, Positive: positive[i]}
		}
		sess, err := pollcast.NewSession(med, accN, parts, pollcast.Backcast, query.OnePlus)
		if err != nil {
			return 0, err
		}
		var q query.Querier = metrics.Wrap(o.wrapFaults(sess, accN, r), o.Metrics)
		aud, err := audit.New(q, audit.Config{N: accN, T: accT, Metrics: o.Metrics})
		if err != nil {
			return 0, err
		}
		q = aud
		label := fmt.Sprintf("2tBins/backcast/miss=%d%%/trial=%d", missPct, trial)
		if o.Obs != nil {
			q = obs.NewPublisher(q, o.Obs, label, trial)
			obs.PublishSessionStart(o.Obs, label, trial)
		}
		res, err := (core.TwoTBins{}).Run(q, accN, accT, r.Split(3))
		if err != nil {
			// Polls were graded live but the session never reached a
			// decision; void it so session accounting stays consistent.
			col.Void(label)
			if o.Audit != nil {
				o.Audit.Void(label)
			}
			return 0, err
		}
		metrics.FinishSession(q)
		v := aud.Finish(res.Decision)
		col.AddAt(trial, label, v)
		if o.Audit != nil {
			o.Audit.AddAt(trial, label, v)
		}
		if o.Obs != nil {
			obs.PublishChainEvents(o.Obs, label, trial, q)
			obs.PublishVerdict(o.Obs, label, trial, v, obs.ChainSlots(q, v.Polls), q)
		}
		if v.Correct() {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		if o.Audit != nil {
			o.Audit.Discard()
		}
		return nil, nil, err
	}
	col.Flush()
	if o.Audit != nil {
		o.Audit.Flush()
	}
	return col, values, nil
}

func init() {
	register(Experiment{
		ID:    "tab-acc",
		Title: "Auditing accuracy: 2tBins over lossy backcast, wrong decisions attributed to causal polls",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			tab := &stats.Table{
				Title: fmt.Sprintf("audited backcast campaign: N=%d, t=%d, x=%d (truth: yes)",
					accN, accT, accX),
				XLabel: "reply loss %", YLabel: "rate / count",
			}
			accuracy := &stats.Series{Name: "decision accuracy"}
			wrongLoss := &stats.Series{Name: "wrong decisions (attributed to loss)"}
			wrongAlg := &stats.Series{Name: "wrong decisions (algorithm)"}
			fnPolls := &stats.Series{Name: "false-negative polls per session"}
			violations := &stats.Series{Name: "invariant violations"}
			for _, missPct := range accMissPcts {
				col, values, err := accuracyPoint(missPct, o, root.Split(uint64(missPct)))
				if err != nil {
					return nil, fmt.Errorf("experiment: tab-acc at miss=%d%%: %w", missPct, err)
				}
				var acc stats.Running
				for _, v := range values {
					acc.Observe(v)
				}
				st := col.Stats()
				x := float64(missPct)
				accuracy.Append(stats.Point{X: x, Y: acc.Mean(), Err: acc.CI95(), N: acc.N()})
				wrongLoss.Append(stats.Point{X: x, Y: float64(st.Outcomes[audit.OutcomeWrongLoss]), N: st.Sessions})
				wrongAlg.Append(stats.Point{X: x, Y: float64(st.Outcomes[audit.OutcomeWrongAlgorithm]), N: st.Sessions})
				fnPolls.Append(stats.Point{X: x, Y: float64(st.Classes[audit.ClassFalseNegative]) / float64(st.Sessions), N: st.Sessions})
				violations.Append(stats.Point{X: x, Y: float64(st.Violations()), N: st.Sessions})
			}
			tab.Add(accuracy)
			tab.Add(wrongLoss)
			tab.Add(wrongAlg)
			tab.Add(fnPolls)
			tab.Add(violations)
			return tab, nil
		},
	})
}
