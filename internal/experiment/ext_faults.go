package experiment

import (
	"fmt"

	"tcast/internal/audit"
	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/pollcast"
	"tcast/internal/query"
	"tcast/internal/radio"
	"tcast/internal/rng"
	"tcast/internal/stats"
)

// ext-faults is the robustness campaign the testbed section motivates:
// 2tBins over a *lossless* packet-level backcast medium degraded only by
// the injected fault processes, swept over burst length with and without
// churn and with the initiator retry policy, against CSMA under the same
// bursty channel. Because the medium itself is perfect, every reply loss
// is an injected fault — so every wrong decision's causal poll (found by
// the auditor) joins an entry in the injector's fault-event log, and the
// audit dump names the fault that caused each error.
const (
	extN     = 24 // participants
	extT     = 6  // threshold
	extX     = 8  // true positives: x > t, so fault-induced errors decide "no"
	extGuard = 48 // CSMA guard slots (realistic termination; Drop needs it)
)

// extBurstLens sweeps the mean bad-state dwell in polls (0 = no bursts);
// extBadFrac holds the stationary bad fraction constant, so longer bursts
// at equal average loss isolate the effect of loss clustering.
var extBurstLens = []int{0, 2, 4, 8, 16, 32}

const extBadFrac = 0.2

// extBurst builds the Gilbert–Elliott config for one swept burst length.
func extBurst(burstLen int) faults.BurstConfig {
	if burstLen <= 0 {
		return faults.BurstConfig{}
	}
	pbg := 1 / float64(burstLen)
	return faults.BurstConfig{
		PGoodBad: extBadFrac / (1 - extBadFrac) * pbg,
		PBadGood: pbg,
		MissBad:  1,
	}
}

// extChurn is the churn process of the churn series: 1% crash per poll,
// 10% recovery.
var extChurn = faults.ChurnConfig{CrashProb: 0.01, RecoverProb: 0.1}

// extRetry is the initiator policy of the retry series.
var extRetry = query.RetryPolicy{MaxRetries: 2, Backoff: 1}

// faultedPoint runs one audited backcast variant at one sweep point and
// returns the per-trial correctness values plus how many of the point's
// wrong decisions were attributed to a concrete injected fault event
// (their collector labels name it). Verdicts fold into col and, when set,
// o.Audit — both keyed by trial index, so dumps stay order-deterministic
// at full parallelism.
func faultedPoint(prefix string, cfg faults.Config, retry query.RetryPolicy, col *audit.Collector, o Options, root *rng.Source) ([]float64, int, error) {
	runs := o.runs(200)
	attributed := make([]bool, runs)
	values, err := RunTrials(runs, o.workers(), root, func(trial int, r *rng.Source) (float64, error) {
		med := radio.NewMedium(radio.Config{}, r.Split(1))
		parts := make([]*pollcast.Participant, extN)
		positive := make(map[int]bool, extX)
		for _, id := range r.Split(2).Sample(extN, extX) {
			positive[id] = true
		}
		for i := range parts {
			parts[i] = &pollcast.Participant{ID: i, Positive: positive[i]}
		}
		sess, err := pollcast.NewSession(med, extN, parts, pollcast.Backcast, query.OnePlus)
		if err != nil {
			return 0, err
		}
		inj := faults.New(sess, cfg, extN, r.Split(faultStream))
		wrapped := query.WithRetry(inj, retry)
		rq, _ := wrapped.(*query.Retry)
		var q query.Querier = metrics.Wrap(wrapped, o.Metrics)
		aud, err := audit.New(q, audit.Config{N: extN, T: extT, Metrics: o.Metrics})
		if err != nil {
			return 0, err
		}
		q = aud
		label := fmt.Sprintf("%s/trial=%d", prefix, trial)
		if o.Obs != nil {
			q = obs.NewPublisher(q, o.Obs, label, trial)
			obs.PublishSessionStart(o.Obs, label, trial)
		}
		res, err := (core.TwoTBins{}).Run(q, extN, extT, r.Split(3))
		if err != nil {
			col.Void(label)
			if o.Audit != nil {
				o.Audit.Void(label)
			}
			return 0, err
		}
		metrics.FinishSession(q)
		v := aud.Finish(res.Decision)
		if !v.Correct() {
			// Join the causal poll to the injector's event log. The
			// retry layer renumbers polls (one audited poll spans
			// several attempts), so map to the final attempt first.
			causal := v.CausalPoll
			if rq != nil {
				causal = rq.DownstreamPoll(causal)
			}
			if cause := inj.Describe(causal); causal >= 0 && cause != "no injected fault" {
				label += " [" + cause + "]"
				attributed[trial] = true
			}
		}
		col.AddAt(trial, label, v)
		if o.Audit != nil {
			o.Audit.AddAt(trial, label, v)
		}
		if o.Obs != nil {
			obs.PublishChainEvents(o.Obs, label, trial, q)
			obs.PublishVerdict(o.Obs, label, trial, v, obs.ChainSlots(q, v.Polls), q)
		}
		if v.Correct() {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		col.Discard()
		if o.Audit != nil {
			o.Audit.Discard()
		}
		return nil, 0, err
	}
	col.Flush()
	if o.Audit != nil {
		o.Audit.Flush()
	}
	n := 0
	for _, a := range attributed {
		if a {
			n++
		}
	}
	return values, n, nil
}

// csmaFaultedPoint runs the CSMA comparison under the same bursty channel
// via the baseline's Drop hook (one Gilbert–Elliott link clocked per
// reply slot, the same clock the injector steps per poll).
func csmaFaultedPoint(burst faults.BurstConfig, o Options, root *rng.Source) ([]float64, error) {
	return RunTrials(o.runs(200), o.workers(), root, func(trial int, r *rng.Source) (float64, error) {
		pos := bitset.New(extN)
		for _, id := range r.Split(1).Sample(extN, extX) {
			pos.Add(id)
		}
		link := faults.NewLink(burst, r.Split(3))
		c := baseline.CSMA{GuardSlots: extGuard}
		if burst.Active() {
			c.Drop = func(int) bool { return link.Lost() }
		}
		res := c.Run(extN, extT, pos, r.Split(2))
		if res.Decision == (extX >= extT) {
			return 1, nil
		}
		return 0, nil
	})
}

func init() {
	register(Experiment{
		ID:    "ext-faults",
		Title: "Fault injection: 2tBins/backcast vs CSMA under bursty loss, churn and retries, errors fault-attributed",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			tab := &stats.Table{
				Title: fmt.Sprintf("faulted backcast campaign: N=%d, t=%d, x=%d (truth: yes), bad fraction %.0f%%",
					extN, extT, extX, 100*extBadFrac),
				XLabel: "mean burst length (polls)", YLabel: "rate / count",
			}
			plain := &stats.Series{Name: "backcast accuracy"}
			churned := &stats.Series{Name: fmt.Sprintf("backcast accuracy (churn %g)", extChurn.CrashProb)}
			retried := &stats.Series{Name: fmt.Sprintf("backcast accuracy (retry x%d)", extRetry.MaxRetries)}
			csma := &stats.Series{Name: fmt.Sprintf("CSMA accuracy (guard %d)", extGuard)}
			attr := &stats.Series{Name: "wrong decisions attributed to faults"}
			for _, burstLen := range extBurstLens {
				ptRoot := root.Split(uint64(burstLen))
				burst := extBurst(burstLen)
				x := float64(burstLen)
				attributed := 0
				for vi, variant := range []struct {
					s     *stats.Series
					cfg   faults.Config
					retry query.RetryPolicy
					tag   string
				}{
					{plain, faults.Config{Burst: burst}, query.RetryPolicy{}, "plain"},
					{churned, faults.Config{Burst: burst, Churn: extChurn}, query.RetryPolicy{}, "churn"},
					{retried, faults.Config{Burst: burst}, extRetry, "retry"},
				} {
					col := &audit.Collector{}
					prefix := fmt.Sprintf("2tBins/backcast/%s/burst=%d", variant.tag, burstLen)
					values, n, err := faultedPoint(prefix, variant.cfg, variant.retry, col, o, ptRoot.Split(uint64(vi+1)))
					if err != nil {
						return nil, fmt.Errorf("experiment: ext-faults %s at burst=%d: %w", variant.tag, burstLen, err)
					}
					attributed += n
					var acc stats.Running
					for _, v := range values {
						acc.Observe(v)
					}
					variant.s.Append(stats.Point{X: x, Y: acc.Mean(), Err: acc.CI95(), N: acc.N()})
				}
				values, err := csmaFaultedPoint(burst, o, ptRoot.Split(99))
				if err != nil {
					return nil, fmt.Errorf("experiment: ext-faults csma at burst=%d: %w", burstLen, err)
				}
				var acc stats.Running
				for _, v := range values {
					acc.Observe(v)
				}
				csma.Append(stats.Point{X: x, Y: acc.Mean(), Err: acc.CI95(), N: acc.N()})
				attr.Append(stats.Point{X: x, Y: float64(attributed), N: 3 * o.runs(200)})
			}
			tab.Add(plain)
			tab.Add(churned)
			tab.Add(retried)
			tab.Add(csma)
			tab.Add(attr)
			return tab, nil
		},
	})
}
