package experiment

import (
	"fmt"
	"sort"
	"strings"

	"tcast/internal/stats"
)

// Render formats a table as aligned text: one row per X value, one column
// per series. Points missing from a series render as "-".
func Render(t *stats.Table) string {
	xs := collectXs(t)
	headers := append([]string{t.XLabel}, seriesNames(t)...)
	rows := make([][]string, 0, len(xs)+1)
	rows = append(rows, headers)
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			if y, err := s.YAt(x); err == nil {
				row = append(row, formatNum(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return renderRows(t.Title, rows)
}

// renderRows lays out a header row plus data rows as aligned columns
// under a title, with a rule after the header.
func renderRows(title string, rows [][]string) string {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderCI is like Render but appends a ±err column (the 95% confidence
// half-width) after each series column.
func RenderCI(t *stats.Table) string {
	xs := collectXs(t)
	headers := []string{t.XLabel}
	for _, name := range seriesNames(t) {
		headers = append(headers, name, "±95%")
	}
	rows := [][]string{headers}
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			y, errY := "-", "-"
			for _, p := range s.Points {
				if p.X == x {
					y = formatNum(p.Y)
					errY = formatNum(p.Err)
					break
				}
			}
			row = append(row, y, errY)
		}
		rows = append(rows, row)
	}
	return renderRows(t.Title, rows)
}

// CSV formats a table as comma-separated values with a header row.
func CSV(t *stats.Table) string {
	xs := collectXs(t)
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, name := range seriesNames(t) {
		b.WriteByte(',')
		b.WriteString(csvEscape(name))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		b.WriteString(formatNum(x))
		for _, s := range t.Series {
			b.WriteByte(',')
			if y, err := s.YAt(x); err == nil {
				b.WriteString(formatNum(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func collectXs(t *stats.Table) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func seriesNames(t *stats.Table) []string {
	names := make([]string, len(t.Series))
	for i, s := range t.Series {
		names[i] = s.Name
	}
	return names
}

func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
