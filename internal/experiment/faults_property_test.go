package experiment

import (
	"strings"
	"testing"

	"tcast/internal/audit"
	"tcast/internal/faults"
	"tcast/internal/query"
	"tcast/internal/trace"
)

// runObserved executes one experiment with the full observability stack
// and returns the three byte-level artifacts a run produces: the rendered
// result table, the encoded span trace, and the audit summary.
func runObserved(t *testing.T, id string, o Options) (table, traceBytes, auditDump string) {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	builder := trace.NewBuilder()
	col := &audit.Collector{}
	o.Trace = builder
	o.Audit = col
	tab, err := e.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	enc, err := trace.EncodeBytes(builder.Trace())
	if err != nil {
		t.Fatalf("%s: encoding trace: %v", id, err)
	}
	return Render(tab), string(enc), col.Summary()
}

// TestFaultedZeroRateByteIdentical pins the fault layer's reproducibility
// contract: a run with the injector interposed but every rate zero is
// byte-identical to a bare run — same rendered tables, same encoded
// traces, same audit dumps — across a figure experiment, a threshold
// sweep, and the audited accuracy campaign. This is what lets faulted
// configurations share baselines with bare ones, and it is the test CI
// runs under the race detector.
func TestFaultedZeroRateByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep")
	}
	for _, id := range []string{"fig1", "fig3", "tab-acc"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			o := Options{Runs: 6, Seed: 42, Workers: 3}
			bareTab, bareTrace, bareAudit := runObserved(t, id, o)

			o.Faults = &faults.Config{} // interposed but inert
			fTab, fTrace, fAudit := runObserved(t, id, o)

			if bareTab != fTab {
				t.Errorf("tables differ:\nbare:\n%s\nfaulted:\n%s", bareTab, fTab)
			}
			if bareTrace != fTrace {
				t.Error("encoded traces differ between bare and zero-rate faulted runs")
			}
			if bareAudit != fAudit {
				t.Errorf("audit dumps differ:\nbare:\n%s\nfaulted:\n%s", bareAudit, fAudit)
			}
		})
	}
}

// TestFaultedRunDegradesAndAttributes drives tab-acc's lossless zero-miss
// point under heavy injected faults and checks the other side of the
// contract: decisions actually degrade, and every wrong decision's audit
// label stays joined to a session the collector graded.
func TestFaultedRunDegradesAndAttributes(t *testing.T) {
	e, err := Get("ext-faults")
	if err != nil {
		t.Fatal(err)
	}
	col := &audit.Collector{}
	tab, err := e.Run(Options{Runs: 30, Seed: 11, Workers: 4, Audit: col})
	if err != nil {
		t.Fatal(err)
	}
	// Some burst point must show degradation for the plain series.
	plain := tab.Get("backcast accuracy")
	if plain == nil {
		t.Fatal("missing plain accuracy series")
	}
	degraded := false
	for _, p := range plain.Points {
		if p.X > 0 && p.Y < 1 {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("no degradation at any nonzero burst length")
	}
	// Every wrong decision's session label must name its causal fault —
	// the lossless-medium design guarantees all loss is injected, so an
	// unattributed wrong decision would be an attribution bug.
	st := col.Stats()
	wrong := st.Outcomes[audit.OutcomeWrongLoss] + st.Outcomes[audit.OutcomeWrongAlgorithm]
	if wrong == 0 {
		t.Fatal("expected wrong decisions under heavy faults")
	}
	if len(st.Wrong) != wrong {
		t.Fatalf("Stats.Wrong lists %d rows, outcomes count %d", len(st.Wrong), wrong)
	}
	for _, w := range st.Wrong {
		if !strings.Contains(w.Session, "[poll ") {
			t.Errorf("wrong decision without a fault attribution: %s", w.Session)
		}
	}
}

// TestRetryPolicyReducesFaultErrors checks the retry knob end to end
// through Options: with bursty silence-forging faults, retrying silent
// polls must not lower accuracy, and the zero policy remains inert.
func TestRetryPolicyReducesFaultErrors(t *testing.T) {
	e, err := Get("tab-acc")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := faults.ParseSpec("burst=4,frac=0.3")
	if err != nil {
		t.Fatal(err)
	}
	run := func(retry query.RetryPolicy) float64 {
		tab, err := e.Run(Options{Runs: 60, Seed: 9, Workers: 4, Faults: &cfg, Retry: retry})
		if err != nil {
			t.Fatal(err)
		}
		acc := tab.Get("decision accuracy")
		if acc == nil {
			t.Fatal("missing accuracy series")
		}
		// The miss=0% point isolates injected faults from the medium's
		// own i.i.d. loss.
		y, err := acc.YAt(0)
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	bare := run(query.RetryPolicy{})
	retried := run(query.RetryPolicy{MaxRetries: 2, Backoff: 1})
	if retried < bare {
		t.Fatalf("retry policy lowered accuracy: %.3f -> %.3f", bare, retried)
	}
	if bare >= 1 {
		t.Fatalf("burst faults should degrade the unretried run, got accuracy %.3f", bare)
	}
}
