package experiment

import (
	"strings"
	"testing"

	"tcast/internal/stats"
)

func TestPlotBasics(t *testing.T) {
	tab := makeTable()
	out := Plot(tab, 40, 10)
	for _, want := range []string{"demo", "alpha", "beta", "x (", "y ("} {
		if !strings.Contains(out, want) {
			t.Errorf("Plot output missing %q:\n%s", want, out)
		}
	}
	// Legend glyphs present in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("series glyphs missing:\n%s", out)
	}
	// Axis frame.
	if !strings.Contains(out, "+----") {
		t.Errorf("x axis missing:\n%s", out)
	}
}

func TestPlotEmptyTable(t *testing.T) {
	tab := &stats.Table{Title: "void"}
	out := Plot(tab, 40, 10)
	if !strings.Contains(out, "(empty table)") {
		t.Fatalf("empty table not flagged: %s", out)
	}
}

func TestPlotSinglePoint(t *testing.T) {
	tab := &stats.Table{Title: "dot", XLabel: "x", YLabel: "y"}
	s := &stats.Series{Name: "solo"}
	s.Append(stats.Point{X: 5, Y: 5})
	tab.Add(s)
	out := Plot(tab, 30, 8)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestPlotMinimumDimensions(t *testing.T) {
	// Degenerate dimensions are clamped, not crashed on.
	out := Plot(makeTable(), 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestPlotMonotoneSeriesOrientation(t *testing.T) {
	// An increasing series must plot its maximum above its minimum
	// (higher Y → earlier row).
	tab := &stats.Table{Title: "ramp", XLabel: "x", YLabel: "y"}
	s := &stats.Series{Name: "up"}
	for i := 0; i <= 10; i++ {
		s.Append(stats.Point{X: float64(i), Y: float64(i)})
	}
	tab.Add(s)
	out := Plot(tab, 22, 12)
	lines := strings.Split(out, "\n")
	var firstRow, lastRow int = -1, -1
	for i, line := range lines {
		if strings.HasPrefix(line, "|") && strings.Contains(line, "*") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("ramp did not span rows:\n%s", out)
	}
	// The top-most starred row must correspond to the right-most column.
	top := lines[firstRow]
	bottom := lines[lastRow]
	if strings.LastIndex(top, "*") <= strings.LastIndex(bottom, "*") {
		t.Fatalf("orientation wrong:\n%s", out)
	}
}

func TestPlotCollisionMarker(t *testing.T) {
	tab := &stats.Table{Title: "overlap", XLabel: "x", YLabel: "y"}
	a := &stats.Series{Name: "a"}
	a.Append(stats.Point{X: 0, Y: 0})
	a.Append(stats.Point{X: 10, Y: 10})
	b := &stats.Series{Name: "b"}
	b.Append(stats.Point{X: 0, Y: 0}) // same spot as a's first point
	tab.Add(a)
	tab.Add(b)
	out := Plot(tab, 30, 10)
	if !strings.Contains(out, "?") {
		t.Fatalf("overlapping points not marked:\n%s", out)
	}
}
