package experiment

import (
	"testing"
)

func TestScaleSweepTrialsClamp(t *testing.T) {
	cases := []struct{ runs, n, want int }{
		{1000, 100, 1000},      // capped at runs
		{1000, 1_000, 200},     // budget / n
		{1000, 10_000_000, 1},  // floor of one trial
		{3, 100, 3},
		{3, 1_000_000, 1},
	}
	for _, c := range cases {
		if got := scaleSweepTrials(c.runs, c.n); got != c.want {
			t.Errorf("scaleSweepTrials(%d, %d) = %d, want %d", c.runs, c.n, got, c.want)
		}
	}
}

// TestExtScaleSweep runs the full decade sweep once (small trial budget)
// and checks its structural properties: every decade present in every
// series, all decisions right (Run errors otherwise), and the queries
// series — the only machine-independent one — reproducible.
func TestExtScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("10^7-node sweep")
	}
	e, err := Get("ext-scale")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(Options{Runs: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Points) != len(scaleSweepNs) {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), len(scaleSweepNs))
		}
		for i, p := range s.Points {
			if p.X != float64(scaleSweepNs[i]) {
				t.Fatalf("series %s point %d at X=%v", s.Name, i, p.X)
			}
		}
	}
	queries := tab.Series[2]
	if queries.Name != "queries" {
		t.Fatalf("third series is %q", queries.Name)
	}
	for _, p := range queries.Points {
		if p.Y < 1 {
			t.Fatalf("queries series has impossible point %+v", p)
		}
	}
	tab2, err := e.Run(Options{Runs: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tab2.Series[2].Points {
		if p.Y != queries.Points[i].Y {
			t.Fatalf("queries series not reproducible at N=%v: %v vs %v",
				p.X, p.Y, queries.Points[i].Y)
		}
	}
}
