package experiment

import (
	"encoding/json"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"tcast/internal/audit"
	"tcast/internal/faults"
	"tcast/internal/obs"
	"tcast/internal/query"
)

// TestObsPlaneByteIdentical pins the observability plane's determinism
// contract: a run publishing every session, poll and verdict onto a live
// event bus produces byte-identical artifacts — rendered tables, encoded
// traces, audit dumps — to a bare run. The plane consumes no randomness
// and interposes nothing on the pooled hot path, so watching a run must
// never change it. CI runs this under the race detector.
func TestObsPlaneByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep")
	}
	for _, id := range []string{"fig1", "fig3", "tab-acc"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			o := Options{Runs: 6, Seed: 42, Workers: 3}
			bareTab, bareTrace, bareAudit := runObserved(t, id, o)

			bus := obs.NewBus()
			// Sinks run on the publishing trial goroutines, so the counter
			// must be atomic — this test exists to run under -race.
			var events atomic.Int64
			bus.Subscribe(obs.SinkFunc(func(obs.Event) { events.Add(1) }))
			o.Obs = bus
			oTab, oTrace, oAudit := runObserved(t, id, o)

			if bareTab != oTab {
				t.Errorf("tables differ:\nbare:\n%s\nobserved:\n%s", bareTab, oTab)
			}
			if bareTrace != oTrace {
				t.Error("encoded traces differ between bare and observed runs")
			}
			if bareAudit != oAudit {
				t.Errorf("audit dumps differ:\nbare:\n%s\nobserved:\n%s", bareAudit, oAudit)
			}
			if events.Load() == 0 {
				t.Error("bus saw no events — plane not wired into the run")
			}
		})
	}
}

// TestObsEventStreamShape checks what a sweep actually publishes: every
// audited session opens with session_start, streams its polls, and closes
// with exactly one session_verdict whose poll count matches the streamed
// polls.
func TestObsEventStreamShape(t *testing.T) {
	e, err := Get("tab-acc")
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	perSession := map[string]*struct {
		starts, polls, verdicts int
		verdictPolls            int
	}{}
	bus.Subscribe(obs.SinkFunc(func(ev obs.Event) {
		<-mu
		defer func() { mu <- struct{}{} }()
		key := ev.Session
		s, ok := perSession[key]
		if !ok {
			s = &struct {
				starts, polls, verdicts int
				verdictPolls            int
			}{}
			perSession[key] = s
		}
		switch ev.Kind {
		case obs.KindSessionStart:
			s.starts++
		case obs.KindPoll:
			s.polls++
		case obs.KindSessionVerdict:
			s.verdicts++
			s.verdictPolls = ev.Polls
		}
	}))
	col := &audit.Collector{}
	if _, err := e.Run(Options{Runs: 4, Seed: 7, Workers: 2, Audit: col, Obs: bus}); err != nil {
		t.Fatal(err)
	}
	if len(perSession) == 0 {
		t.Fatal("no sessions observed")
	}
	for key, s := range perSession {
		if key == "" {
			continue // kind-less global events
		}
		if s.starts != 1 || s.verdicts != 1 {
			t.Fatalf("session %q: %d starts, %d verdicts", key, s.starts, s.verdicts)
		}
		if s.polls != s.verdictPolls {
			t.Fatalf("session %q: streamed %d polls, verdict says %d", key, s.polls, s.verdictPolls)
		}
	}
}

// TestObsAnomalyFlightDump drives the acceptance flow end to end inside
// the harness: heavy injected faults force wrong verdicts; each wrong
// verdict publishes an anomaly event carrying the causal poll the audit
// layer attributed; the flight recorder dumps the ring around it. The
// dump's trigger and its final event must both name the cause.
func TestObsAnomalyFlightDump(t *testing.T) {
	e, err := Get("tab-acc")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bus := obs.NewBus()
	rec := obs.NewFlightRecorder(128, dir)
	bus.Subscribe(rec)
	cfg, err := faults.ParseSpec("burst=6,frac=0.4")
	if err != nil {
		t.Fatal(err)
	}
	col := &audit.Collector{}
	if _, err := e.Run(Options{Runs: 40, Seed: 11, Workers: 4, Audit: col, Obs: bus, Faults: &cfg}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	dumps := rec.Dumps()
	if len(dumps) == 0 {
		t.Fatal("heavy faults produced no flight dump")
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var header struct {
		Schema  string `json:"schema"`
		Trigger string `json:"trigger"`
		Events  int    `json:"events"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Schema != obs.FlightSchema || header.Trigger != obs.AnomalyWrongVerdict {
		t.Fatalf("dump header = %+v", header)
	}
	if header.Events != len(lines)-1 {
		t.Fatalf("header says %d events, dump has %d lines", header.Events, len(lines)-1)
	}
	// The triggering anomaly closes the dump and names the causal poll.
	var last struct {
		Kind       string `json:"kind"`
		Detail     string `json:"detail"`
		CausalPoll int    `json:"causal_poll"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "anomaly" {
		t.Fatalf("dump closes with %q, want the anomaly", last.Kind)
	}
	if last.CausalPoll < 0 {
		t.Fatalf("anomaly has no causal poll: %+v", last)
	}
	if !strings.Contains(last.Detail, "causal poll") {
		t.Fatalf("anomaly detail does not name the causal poll: %q", last.Detail)
	}
}

// TestRetryExhaustedCounter pins query.Retry's exhaustion accounting,
// which the plane turns into retry_exhausted events.
func TestRetryExhaustedCounter(t *testing.T) {
	silent := queryFunc(func([]int) query.Response { return query.Response{Kind: query.Empty} })
	rq := query.WithRetry(silent, query.RetryPolicy{MaxRetries: 3, Backoff: 1}).(*query.Retry)
	for i := 0; i < 4; i++ {
		rq.Query([]int{1, 2})
	}
	if got := rq.Exhausted(); got != 4 {
		t.Fatalf("Exhausted() = %d, want 4", got)
	}
	loud := queryFunc(func([]int) query.Response { return query.Response{Kind: query.Active} })
	lq := query.WithRetry(loud, query.RetryPolicy{MaxRetries: 3, Backoff: 1}).(*query.Retry)
	lq.Query([]int{1})
	if got := lq.Exhausted(); got != 0 {
		t.Fatalf("non-silent query counted as exhausted: %d", got)
	}
}

// queryFunc adapts a function to query.Querier for test doubles.
type queryFunc func([]int) query.Response

func (f queryFunc) Query(bin []int) query.Response { return f(bin) }
func (f queryFunc) Traits() query.Traits           { return query.Traits{} }
