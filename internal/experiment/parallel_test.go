package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"tcast/internal/audit"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// These are the acceptance tests for parallel observability: with
// per-trial observation contexts, the worker count may change only
// wall-clock speed — the encoded trace bytes, the audit dump, and the
// result tables must be bit-identical for Workers=1 and Workers=N.

// tracedRun executes the experiment with a fresh builder and returns the
// rendered table plus the encoded trace bytes.
func tracedRun(t *testing.T, e Experiment, workers int) (string, []byte) {
	t.Helper()
	b := trace.NewBuilder()
	b.Begin(trace.KindExperiment, e.ID)
	tab, err := e.Run(Options{Runs: 20, Seed: 2011, Workers: workers, Trace: b})
	if err != nil {
		t.Fatal(err)
	}
	b.End()
	enc, err := trace.EncodeBytes(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	return Render(tab), enc
}

// TestTraceBytesWorkerIndependent covers the three traced trial shapes:
// tcast sessions (fig1 also includes the CSMA/Sequential baseline spans),
// every algorithm/model combination (fig3), and the k+ substrate's inline
// trial spans (ext-kplus).
func TestTraceBytesWorkerIndependent(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 8 // still exercises the fork path, just with more stripes than cores
	}
	for _, id := range []string{"fig1", "fig3", "ext-kplus"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		serialTab, serialEnc := tracedRun(t, e, 1)
		parallelTab, parallelEnc := tracedRun(t, e, workers)
		if serialTab != parallelTab {
			t.Fatalf("%s: worker count changed the table:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				id, serialTab, workers, parallelTab)
		}
		if !bytes.Equal(serialEnc, parallelEnc) {
			t.Fatalf("%s: trace bytes differ between workers=1 and workers=%d", id, workers)
		}
		// The trace must actually contain the per-trial structure.
		tr, err := trace.Decode(bytes.NewReader(parallelEnc))
		if err != nil {
			t.Fatal(err)
		}
		if a := trace.Analyze(tr); a.Phases[trace.KindTrial].Spans == 0 {
			t.Fatalf("%s: no trial spans in parallel trace", id)
		}
	}
}

// auditedRun executes the experiment with a fresh collector and returns
// the rendered table plus the collector dump.
func auditedRun(t *testing.T, e Experiment, workers int) (string, string) {
	t.Helper()
	col := &audit.Collector{}
	tab, err := e.Run(Options{Runs: 20, Seed: 2011, Workers: workers, Audit: col})
	if err != nil {
		t.Fatal(err)
	}
	return Render(tab), col.Summary()
}

// TestAuditDumpWorkerIndependent: fig1 exercises the lossless grading
// path; tab-acc is the one that produces wrong-decision rows, so it pins
// down the collector's row ordering under parallel insertion.
func TestAuditDumpWorkerIndependent(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 8
	}
	for _, id := range []string{"fig1", "tab-acc"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		serialTab, serialDump := auditedRun(t, e, 1)
		parallelTab, parallelDump := auditedRun(t, e, workers)
		if serialTab != parallelTab {
			t.Fatalf("%s: worker count changed the audited table", id)
		}
		if serialDump != parallelDump {
			t.Fatalf("%s: audit dump differs between workers=1 and workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				id, workers, serialDump, workers, parallelDump)
		}
	}
}

// TestTabAccWrongRowsOrdered: the lossy campaign's wrong decisions must
// come out labeled in ascending trial order within each miss-rate point,
// whatever the parallelism.
func TestTabAccWrongRowsOrdered(t *testing.T) {
	e, err := Get("tab-acc")
	if err != nil {
		t.Fatal(err)
	}
	col := &audit.Collector{}
	if _, err := e.Run(Options{Runs: 40, Seed: 2011, Audit: col}); err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if len(s.Wrong) == 0 {
		t.Skip("no wrong decisions at this seed; ordering vacuous")
	}
	lastMiss, lastTrial := -1, -1
	for _, w := range s.Wrong {
		var miss, trial int
		if _, err := fmt.Sscanf(w.Session, "2tBins/backcast/miss=%d%%/trial=%d", &miss, &trial); err != nil {
			t.Fatalf("unparseable session label %q: %v", w.Session, err)
		}
		if miss < lastMiss || (miss == lastMiss && trial <= lastTrial) {
			t.Fatalf("rows out of trial order: %q after miss=%d trial=%d", w.Session, lastMiss, lastTrial)
		}
		lastMiss, lastTrial = miss, trial
	}
}

// TestRunTrialsIndexedLowestErrorWins re-checks the lowest-index-error
// guarantee now that trial functions receive their index directly, with
// far more workers than cores (run under -race in CI).
func TestRunTrialsIndexedLowestErrorWins(t *testing.T) {
	const runs = 500
	failAt := map[int]bool{17: true, 250: true, 251: true, 499: true}
	for _, workers := range []int{1, 7, 64, runs} {
		for rep := 0; rep < 3; rep++ {
			values, err := RunTrials(runs, workers, rng.New(9), func(i int, r *rng.Source) (float64, error) {
				if failAt[i] {
					return 0, fmt.Errorf("trial %d failed", i)
				}
				return float64(i), nil
			})
			if values != nil {
				t.Fatalf("workers=%d: partial values exposed on error", workers)
			}
			if err == nil || err.Error() != "trial 17 failed" {
				t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure (trial 17)", workers, err)
			}
		}
	}
}

// TestSweepErrorDropsObservationBatch: a failing point must not leak a
// scheduling-dependent subset of trace forks or audit rows.
func TestSweepErrorDropsObservationBatch(t *testing.T) {
	b := trace.NewBuilder()
	col := &audit.Collector{}
	o := Options{Runs: 10, Workers: 4, Trace: b, Audit: col}
	_, err := sweep("s", []int{1}, o, rng.New(1), func(x int) pointCost {
		return func(i int, r *rng.Source) (float64, error) {
			f := b.Fork(i)
			f.Begin(trace.KindTrial, "trial")
			f.End()
			if i >= 2 {
				return 0, fmt.Errorf("trial %d failed", i)
			}
			return 1, nil
		}
	})
	if err == nil {
		t.Fatal("sweep error swallowed")
	}
	if n := b.PendingForks(); n != 0 {
		t.Fatalf("%d forks left pending after failed sweep", n)
	}
	if tr := b.Trace(); tr.NumSpans() != 2 {
		// Only the series and point spans survive; no trial fragments.
		t.Fatalf("failed sweep leaked trial spans: %d spans", tr.NumSpans())
	}
}

// sampledRun executes fig1 with 1-in-k trace sampling and returns the
// rendered table plus the encoded trace bytes.
func sampledRun(t *testing.T, e Experiment, workers, sample int) (string, []byte) {
	t.Helper()
	b := trace.NewBuilder()
	b.Begin(trace.KindExperiment, e.ID)
	tab, err := e.Run(Options{Runs: 20, Seed: 2011, Workers: workers, Trace: b, TraceSample: sample})
	if err != nil {
		t.Fatal(err)
	}
	b.End()
	enc, err := trace.EncodeBytes(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	return Render(tab), enc
}

// TestSampledTraceWorkerIndependent: head-rate sampling keys off the trial
// index, so a sampled sweep must stay byte-identical across worker counts,
// its table must match the unsampled run exactly, its trace must be
// smaller, and Analyze must recover the exact poll count from the session
// attributes with leaves scaled by the inverse rate.
func TestSampledTraceWorkerIndependent(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 8
	}
	e, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	fullTab, fullEnc := sampledRun(t, e, 1, 1)
	serialTab, serialEnc := sampledRun(t, e, 1, 8)
	parallelTab, parallelEnc := sampledRun(t, e, workers, 8)
	if serialTab != parallelTab || serialTab != fullTab {
		t.Fatalf("sampling or worker count changed the table:\n--- full ---\n%s--- sampled serial ---\n%s--- sampled workers=%d ---\n%s",
			fullTab, serialTab, workers, parallelTab)
	}
	if !bytes.Equal(serialEnc, parallelEnc) {
		t.Fatalf("sampled trace bytes differ between workers=1 and workers=%d", workers)
	}
	if len(serialEnc) >= len(fullEnc) {
		t.Fatalf("sampled trace (%d bytes) not smaller than full trace (%d bytes)", len(serialEnc), len(fullEnc))
	}
	full, err := trace.Decode(bytes.NewReader(fullEnc))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := trace.Decode(bytes.NewReader(serialEnc))
	if err != nil {
		t.Fatal(err)
	}
	fa, sa := trace.Analyze(full), trace.Analyze(sampled)
	if fa.SampledPolls != fa.Polls {
		t.Fatalf("unsampled analysis disagrees with itself: %d recorded vs %d polls", fa.SampledPolls, fa.Polls)
	}
	if sa.SampledPolls >= fa.Polls || sa.SampledPolls == 0 {
		t.Fatalf("sampled trace recorded %d poll leaves, want 0 < n < %d", sa.SampledPolls, fa.Polls)
	}
	if sa.Polls != sa.SampledPolls*8 {
		t.Fatalf("scaled poll estimate %d, want %d*8", sa.Polls, sa.SampledPolls)
	}
}
