package experiment

import (
	"fmt"
	"runtime"
	"time"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
	"tcast/internal/stats"
)

// ext-scale is the sparse-core scaling study: 2tBins on fields from 10^2
// to 10^7 nodes at fixed x = t = 16, reporting wall-clock and allocator
// traffic per trial alongside the (deterministic) query count. Above
// idset.SparseCutover the session streams its rounds — one keyed-
// permutation bin at a time against a ranked candidate snapshot — so the
// curves are the direct evidence for EXPERIMENTS.md's "Scaling to 10^7
// nodes" section: bytes per trial must grow sublinearly in N once the
// streamed path engages (the tcastbench sparse gate pins the same
// property in CI).
//
// Unlike the figure experiments this one measures the harness itself, so
// two of its three series (µs/trial, KB/trial) are machine-dependent;
// only the queries series is reproducible bit for bit. Trials run
// serially — runtime.MemStats is process-global, so worker parallelism
// would corrupt the bytes measurement — and the per-point trial count is
// clamped by N (smaller fields run more trials) to keep the sweep's
// total node-work bounded regardless of Options.Runs.

// scaleSweepNs are the swept field sizes, one decade apart.
var scaleSweepNs = []int{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

const (
	scaleSweepX = 16 // positives per trial (x >= t: every decision is "yes")
	scaleSweepT = 16 // threshold
)

// scaleSweepTrials clamps the per-point trial count so the sweep costs
// O(runs) small-field sessions of work at every decade: a budget of
// runs*200 node-touches per point, at least one trial, never more than
// runs. Deterministic in (runs, n) — the queries series stays exact.
func scaleSweepTrials(runs, n int) int {
	trials := runs * 200 / n
	if trials > runs {
		trials = runs
	}
	if trials < 1 {
		trials = 1
	}
	return trials
}

func init() {
	register(Experiment{
		ID:    "ext-scale",
		Title: "Extension: scaling 2tBins from 10^2 to 10^7 nodes (x=t=16) — sparse-core cost curves",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			runs := o.runs(defaultRuns)
			tab := &stats.Table{
				Title:  "per-trial cost of one 2tBins session vs field size (x=t=16)",
				XLabel: "field size N", YLabel: "per-trial cost (see series)",
			}
			micros := &stats.Series{Name: "µs/trial"}
			kilos := &stats.Series{Name: "KB/trial"}
			queries := &stats.Series{Name: "queries"}
			alg := core.TwoTBins{}
			cfg := fastsim.DefaultConfig()
			var st trialState
			var tr rng.Source
			var m0, m1 runtime.MemStats
			for _, n := range scaleSweepNs {
				trials := scaleSweepTrials(runs, n)
				point := root.Split(uint64(n))
				var qacc stats.Running
				runtime.GC()
				runtime.ReadMemStats(&m0)
				start := time.Now()
				for i := 0; i < trials; i++ {
					point.SplitInto(uint64(i), &tr)
					tr.SplitInto(1, &st.chr)
					st.ch.ResetRandom(n, scaleSweepX, cfg, &st.chr)
					tr.SplitInto(2, &st.algr)
					res, err := core.RunIn(&st.arena, alg, &st.ch, n, scaleSweepT, &st.algr)
					if err != nil {
						return nil, fmt.Errorf("experiment: ext-scale n=%d trial %d: %w", n, i, err)
					}
					if !res.Decision {
						return nil, fmt.Errorf("experiment: ext-scale n=%d trial %d: wrong decision", n, i)
					}
					qacc.Observe(float64(res.Queries))
				}
				elapsed := time.Since(start)
				runtime.ReadMemStats(&m1)
				micros.Append(stats.Point{
					X: float64(n), N: trials,
					Y: elapsed.Seconds() * 1e6 / float64(trials),
				})
				kilos.Append(stats.Point{
					X: float64(n), N: trials,
					Y: float64(m1.TotalAlloc-m0.TotalAlloc) / 1024 / float64(trials),
				})
				queries.Append(stats.Point{
					X: float64(n), Y: qacc.Mean(), Err: qacc.CI95(), N: qacc.N(),
				})
			}
			tab.Add(micros)
			tab.Add(kilos)
			tab.Add(queries)
			return tab, nil
		},
	})
}
