package experiment

import (
	"testing"

	"tcast/internal/stats"
)

// quick returns options sized for test speed: enough trials for the shape
// assertions, far fewer than the paper's 1000.
func quickOpts(runs int) Options { return Options{Runs: runs, Seed: 42} }

func runFig(t *testing.T, id string, runs int) *stats.Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(quickOpts(runs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	return tab
}

func yAt(t *testing.T, tab *stats.Table, series string, x float64) float64 {
	t.Helper()
	s := tab.Get(series)
	if s == nil {
		t.Fatalf("series %q missing", series)
	}
	y, err := s.YAt(x)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestFig1Shapes(t *testing.T) {
	tab := runFig(t, "fig1", 200)
	// tcast peaks near x = t and is cheap at the extremes.
	peak := yAt(t, tab, "2tBins", 16)
	if low := yAt(t, tab, "2tBins", 1); low >= peak {
		t.Errorf("2tBins not peaked: x=1 %v vs x=16 %v", low, peak)
	}
	if high := yAt(t, tab, "2tBins", 128); high >= peak {
		t.Errorf("2tBins not peaked: x=128 %v vs x=16 %v", high, peak)
	}
	// CSMA grows with x.
	if yAt(t, tab, "CSMA", 8) >= yAt(t, tab, "CSMA", 64) {
		t.Error("CSMA cost not increasing in x")
	}
	// Sequential starts near n - t for x << t.
	if seq0 := yAt(t, tab, "Sequential", 0); seq0 < 100 {
		t.Errorf("Sequential at x=0 = %v, want ≈113", seq0)
	}
	// ExpIncrease beats 2tBins for x << t and loses for x >> t.
	if yAt(t, tab, "ExpIncrease", 1) >= yAt(t, tab, "2tBins", 1) {
		t.Error("ExpIncrease not cheaper at x=1")
	}
	if yAt(t, tab, "ExpIncrease", 96) <= yAt(t, tab, "2tBins", 96) {
		t.Error("ExpIncrease not costlier at x=96")
	}
}

// TestHeadlineShapesAcrossSeeds re-checks the central Fig 1 claims at
// several seeds: the shapes must be properties of the algorithms, not of
// one lucky random stream.
func TestHeadlineShapesAcrossSeeds(t *testing.T) {
	e, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 77, 20110525} {
		tab, err := e.Run(Options{Runs: 120, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		peak := yAt(t, tab, "2tBins", 16)
		if low := yAt(t, tab, "2tBins", 1); low >= peak {
			t.Errorf("seed %d: 2tBins not peaked (x=1: %v vs x=16: %v)", seed, low, peak)
		}
		if yAt(t, tab, "ExpIncrease", 1) >= yAt(t, tab, "2tBins", 1) {
			t.Errorf("seed %d: ExpIncrease not cheaper at x=1", seed)
		}
		if yAt(t, tab, "CSMA", 8) >= yAt(t, tab, "CSMA", 64) {
			t.Errorf("seed %d: CSMA not increasing", seed)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	tab := runFig(t, "fig2", 200)
	// 2+ never worse on average; clear gain at x = t-1.
	for _, x := range []float64{4, 15, 16, 32} {
		one := yAt(t, tab, "2tBins 1+", x)
		two := yAt(t, tab, "2tBins 2+", x)
		if two > one*1.1+0.5 {
			t.Errorf("x=%v: 2+ (%v) above 1+ (%v)", x, two, one)
		}
	}
	if two, one := yAt(t, tab, "2tBins 2+", 15), yAt(t, tab, "2tBins 1+", 15); two >= one {
		t.Errorf("no 2+ gain at x=t-1: %v vs %v", two, one)
	}
}

func TestFig3Shapes(t *testing.T) {
	tab := runFig(t, "fig3", 150)
	// 1+/2+ ordering preserved across thresholds (2tBins curves).
	for _, th := range []float64{2, 4, 8, 16} {
		one := yAt(t, tab, "2tBins 1+", th)
		two := yAt(t, tab, "2tBins 2+", th)
		if two > one*1.1+0.5 {
			t.Errorf("t=%v: 2+ (%v) above 1+ (%v)", th, two, one)
		}
	}
	// ExpIncrease peaks near t = x = 4 and declines toward both edges.
	peak := yAt(t, tab, "ExpIncrease 1+", 4)
	if edge := yAt(t, tab, "ExpIncrease 1+", 1); edge >= peak {
		t.Errorf("ExpIncrease t=1 (%v) not below t=4 (%v)", edge, peak)
	}
	if edge := yAt(t, tab, "ExpIncrease 1+", 127); edge >= peak {
		t.Errorf("ExpIncrease t=127 (%v) not below t=4 (%v)", edge, peak)
	}
}

func TestFig4Shapes(t *testing.T) {
	tab := runFig(t, "fig4", 15)
	for _, name := range []string{"t=2", "t=4", "t=6"} {
		s := tab.Get(name)
		if s == nil || len(s.Points) != 13 {
			t.Fatalf("series %s missing or wrong length", name)
		}
	}
	// Cost peaks near x = t, not at the extremes.
	for _, th := range []float64{2, 4, 6} {
		name := "t=" + formatNum(th)
		if yAt(t, tab, name, th) <= yAt(t, tab, name, 12) {
			t.Errorf("%s: cost at x=t not above x=12", name)
		}
	}
}

func TestTabErrShapes(t *testing.T) {
	tab := runFig(t, "tab-err", 25)
	misses := tab.Get("missed (heard silent)")
	queries := tab.Get("k-positive group queries")
	if misses == nil || queries == nil {
		t.Fatal("series missing")
	}
	// Misses concentrated at k=1.
	m1, err := misses.YAt(1)
	if err != nil {
		t.Fatal(err)
	}
	var rest float64
	for _, p := range misses.Points {
		if p.X > 1 {
			rest += p.Y
		}
	}
	if m1 == 0 {
		t.Fatal("no single-HACK misses observed")
	}
	if m1 <= rest {
		t.Errorf("misses not dominated by k=1: m1=%v rest=%v", m1, rest)
	}
}

func TestFig5Shapes(t *testing.T) {
	tab := runFig(t, "fig5", 200)
	// Oracle tracks the lower envelope. It is a heuristic (the paper's
	// piecewise interpolation), so allow small inversions where 2tBins
	// and ABNS already sit at the optimum (x > t/2).
	for _, x := range []float64{1, 8, 16, 64} {
		oracle := yAt(t, tab, "Oracle", x)
		for _, name := range []string{"2tBins", "ABNS(p0=t)", "ABNS(p0=2t)"} {
			if y := yAt(t, tab, name, x); y < 0.8*oracle-2 {
				t.Errorf("%s at x=%v (%v) far below oracle (%v)", name, x, y, oracle)
			}
		}
	}
	// The gap between 2tBins and Oracle opens for small x ...
	if gap := yAt(t, tab, "2tBins", 1) - yAt(t, tab, "Oracle", 1); gap < 5 {
		t.Errorf("no oracle gap at x=1: %v", gap)
	}
	// ... and ABNS(p0=t) narrows it.
	if yAt(t, tab, "ABNS(p0=t)", 1) >= yAt(t, tab, "2tBins", 1) {
		t.Error("ABNS(p0=t) not cheaper than 2tBins at x=1")
	}
}

func TestFig6Shapes(t *testing.T) {
	tab := runFig(t, "fig6", 200)
	// ProbABNS eliminates ABNS(p0=2t)'s small-x cost ...
	if yAt(t, tab, "ProbABNS", 2) >= yAt(t, tab, "ABNS(p0=2t)", 2) {
		t.Error("ProbABNS not cheaper than ABNS(p0=2t) at x=2")
	}
	// ... and stays near the oracle across regimes.
	for _, x := range []float64{2, 16, 64} {
		if yAt(t, tab, "ProbABNS", x) > 2.5*yAt(t, tab, "Oracle", x)+4 {
			t.Errorf("ProbABNS far from oracle at x=%v", x)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	tab := runFig(t, "fig7", 250)
	// ProbABNS ≈ CSMA for x < t; clearly better for x > t.
	if p, c := yAt(t, tab, "ProbABNS", 32), yAt(t, tab, "CSMA", 32); p >= c {
		t.Errorf("x=32: ProbABNS %v not below CSMA %v", p, c)
	}
	if p, c := yAt(t, tab, "ProbABNS", 2), yAt(t, tab, "CSMA", 2); p > 4*c+8 {
		t.Errorf("x=2: ProbABNS %v too far above CSMA %v", p, c)
	}
}

func TestFig8Shapes(t *testing.T) {
	tab := runFig(t, "fig8", 1)
	delta := tab.Get("delta")
	if delta == nil {
		t.Fatal("delta series missing")
	}
	// Δ increases as the modes separate.
	for i := 1; i < len(delta.Points); i++ {
		if delta.Points[i].Y < delta.Points[i-1].Y-1e-9 {
			t.Fatalf("delta not monotone: %+v", delta.Points)
		}
	}
	// m1 below m2 everywhere.
	m1 := tab.Get("m1 (quiet)")
	m2 := tab.Get("m2 (activity)")
	for i := range m1.Points {
		if m1.Points[i].Y >= m2.Points[i].Y {
			t.Fatal("m1 not below m2")
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	tab := runFig(t, "fig9", 250)
	// Accuracy grows with repeats at every separation.
	if yAt(t, tab, "r=9", 48) <= yAt(t, tab, "r=1", 48)-0.02 {
		t.Error("r=9 not above r=1 at d=48")
	}
	// Nine repeats exceed 90% accuracy once d > 32.
	if acc := yAt(t, tab, "r=9", 40); acc < 0.9 {
		t.Errorf("r=9 accuracy at d=40 = %v, want > 0.9", acc)
	}
	// Overlapping modes are hard.
	if acc := yAt(t, tab, "r=3", 8); acc > 0.95 {
		t.Errorf("r=3 accuracy at d=8 = %v suspiciously high", acc)
	}
	// The eq (10) sizing achieves ≥ 90% when separated.
	if acc := yAt(t, tab, "r=f(d=5%)", 48); acc < 0.9 {
		t.Errorf("sized detector accuracy at d=48 = %v", acc)
	}
}

func TestFig10Shapes(t *testing.T) {
	tab := runFig(t, "fig10", 1)
	paper := tab.Get("eq (10)")
	if paper == nil {
		t.Fatal("eq (10) series missing")
	}
	// Required repeats fall as the modes separate.
	first := paper.Points[0].Y
	last := paper.Points[len(paper.Points)-1].Y
	if last >= first {
		t.Fatalf("repeats not decreasing: %v -> %v", first, last)
	}
	for i := 1; i < len(paper.Points); i++ {
		if paper.Points[i].Y > paper.Points[i-1].Y+1e-9 {
			t.Fatalf("repeats not monotone: %+v", paper.Points)
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	tab := runFig(t, "fig11", 100)
	for _, name := range []string{"d=8", "d=16"} {
		s := tab.Get(name)
		if s == nil {
			t.Fatalf("series %s missing", name)
		}
		total := 0.0
		for _, p := range s.Points {
			total += p.Y
		}
		if total < 0.98 || total > 1.02 {
			t.Errorf("%s density sums to %v", name, total)
		}
	}
	// d=16 must be visibly bimodal: peaks near 48 and 80, valley at 64.
	d16 := tab.Get("d=16")
	peak1, _ := d16.YAt(48)
	peak2, _ := d16.YAt(80)
	valley, _ := d16.YAt(64)
	if peak1 <= valley || peak2 <= valley {
		t.Errorf("d=16 not bimodal: peaks %v/%v valley %v", peak1, peak2, valley)
	}
}

func TestAblationCapture(t *testing.T) {
	tab := runFig(t, "abl-capture", 120)
	if len(tab.Series) != 4 {
		t.Fatalf("series count = %d", len(tab.Series))
	}
	// Stronger capture (higher beta) decodes more often, so it can only
	// help near x = t-1.
	weak := yAt(t, tab, "beta=0.25", 15)
	strong := yAt(t, tab, "beta=0.75", 15)
	if strong > weak*1.15+1 {
		t.Errorf("stronger capture more expensive: %v vs %v", strong, weak)
	}
}

func TestAblationVariants(t *testing.T) {
	tab := runFig(t, "abl-variants", 120)
	if len(tab.Series) != 3 {
		t.Fatalf("series count = %d", len(tab.Series))
	}
	// Section IV-B: no variant wins consistently — verify each one wins
	// or ties somewhere and loses somewhere (within noise), i.e. no
	// strict dominance over the plain doubling scheme.
	base := tab.Get("ExpIncrease")
	for _, name := range []string{"ExpIncrease(pause-and-continue)", "ExpIncrease(fourfold)"} {
		v := tab.Get(name)
		dominates := true
		for i := range base.Points {
			if v.Points[i].Y > base.Points[i].Y-0.5 {
				dominates = false
				break
			}
		}
		if dominates {
			t.Errorf("%s strictly dominates the published variant — inconsistent with the paper", name)
		}
	}
}
