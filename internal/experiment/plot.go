package experiment

import (
	"fmt"
	"math"
	"strings"

	"tcast/internal/stats"
)

// Plot renders a table as an ASCII chart: one glyph per series, points
// mapped onto a width×height character grid with linear axes. It is how
// `tcastfigs -plot` lets a terminal user eyeball the figure shapes the
// paper plots.
func Plot(t *stats.Table, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // anchor Y at zero: all our metrics are counts/rates
	for _, s := range t.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
			minY = math.Min(minY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return t.Title + "\n(empty table)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((p.Y-minY)/(maxY-minY)*float64(height-1)))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			if grid[row][col] != ' ' && grid[row][col] != g {
				grid[row][col] = '?'
			} else {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	yLab := fmt.Sprintf("%s (%.4g..%.4g)", t.YLabel, minY, maxY)
	fmt.Fprintf(&b, "%s\n", yLab)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s (%.4g..%.4g)\n", t.XLabel, minX, maxX)
	for si, s := range t.Series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
