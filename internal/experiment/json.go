package experiment

import (
	"encoding/json"

	"tcast/internal/stats"
)

// jsonTable is the stable on-disk schema for exported experiment data;
// downstream plotting scripts consume it.
type jsonTable struct {
	Title  string       `json:"title"`
	XLabel string       `json:"xLabel"`
	YLabel string       `json:"yLabel"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Err float64 `json:"err,omitempty"`
	N   int     `json:"n,omitempty"`
}

// JSON serializes a table with a stable schema (indented, trailing
// newline).
func JSON(t *stats.Table) (string, error) {
	out := jsonTable{Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel}
	for _, s := range t.Series {
		js := jsonSeries{Name: s.Name, Points: make([]jsonPoint, 0, len(s.Points))}
		for _, p := range s.Points {
			js.Points = append(js.Points, jsonPoint{X: p.X, Y: p.Y, Err: p.Err, N: p.N})
		}
		out.Series = append(out.Series, js)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// ParseJSON loads a table previously serialized with JSON — used by tests
// and by tools that post-process stored results.
func ParseJSON(data []byte) (*stats.Table, error) {
	var in jsonTable
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	t := &stats.Table{Title: in.Title, XLabel: in.XLabel, YLabel: in.YLabel}
	for _, js := range in.Series {
		s := &stats.Series{Name: js.Name}
		for _, p := range js.Points {
			s.Append(stats.Point{X: p.X, Y: p.Y, Err: p.Err, N: p.N})
		}
		t.Add(s)
	}
	return t, nil
}
