package experiment

import (
	"testing"
)

func TestExtEnergyShapes(t *testing.T) {
	tab := runFig(t, "ext-energy", 150)
	// Sequential transmits at most the positives it schedules —
	// for x <= t that is about x, the cheapest possible.
	if y := yAt(t, tab, "Sequential", 4); y > 4.5 {
		t.Errorf("sequential sent %v replies at x=4, want <= ~4", y)
	}
	// tcast re-polls positives across rounds, so its reply count
	// exceeds sequential's for mid-range x ...
	if yAt(t, tab, "2tBins", 16) <= yAt(t, tab, "Sequential", 16) {
		t.Error("2tBins reply count at x=t not above sequential")
	}
	// ... but stays bounded for x >> t, where a single round of t
	// non-empty bins suffices (each positive replies at most once per
	// round).
	if y := yAt(t, tab, "2tBins", 128); y > 128+1 {
		t.Errorf("2tBins sent %v replies at x=n, want <= n", y)
	}
	// CSMA retransmissions grow with x.
	if yAt(t, tab, "CSMA", 8) >= yAt(t, tab, "CSMA", 96) {
		t.Error("CSMA replies not increasing in x")
	}
}

func TestExtTimeShapes(t *testing.T) {
	tab := runFig(t, "ext-time", 150)
	// x << t: tcast beats sequential on the clock; CSMA is allowed to
	// win here (the paper says it does).
	if yAt(t, tab, "2tBins", 2) >= yAt(t, tab, "Sequential", 2) {
		t.Error("x<<t: tcast not faster than sequential")
	}
	// x >> t: tcast beats CSMA on the clock.
	if yAt(t, tab, "2tBins", 96) >= yAt(t, tab, "CSMA", 96) {
		t.Error("x>>t: tcast not faster than CSMA")
	}
	// Everything positive.
	for _, s := range tab.Series {
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("negative latency in %s", s.Name)
			}
		}
	}
}

func TestExtBatteryShapes(t *testing.T) {
	tab := runFig(t, "ext-battery", 100)
	// Sequential participants sleep until their slot: the energy floor
	// at every x.
	for _, x := range []float64{16, 32, 96} {
		seq := yAt(t, tab, "Sequential", x)
		tc := yAt(t, tab, "tcast (2tBins/backcast)", x)
		if !(seq < tc) {
			t.Errorf("x=%v: sequential (%v) not below tcast (%v)", x, seq, tc)
		}
	}
	// CSMA contenders carrier-sense throughout, so its mean grows with
	// x and overtakes tcast once contention is heavy. Near x ≈ t tcast's
	// long session legitimately costs more.
	if yAt(t, tab, "CSMA", 8) >= yAt(t, tab, "CSMA", 96) {
		t.Error("CSMA energy not growing with x")
	}
	for _, x := range []float64{48, 96} {
		tc := yAt(t, tab, "tcast (2tBins/backcast)", x)
		csma := yAt(t, tab, "CSMA", x)
		if !(tc < csma) {
			t.Errorf("x=%v: tcast (%v) not below CSMA (%v)", x, tc, csma)
		}
	}
	// All energies positive.
	for _, s := range tab.Series {
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("negative energy in %s", s.Name)
			}
		}
	}
}

func TestExtMultihopShapes(t *testing.T) {
	tab := runFig(t, "ext-multihop", 6)
	pc := tab.Get("pollcast false-positive rate")
	bc := tab.Get("backcast false-positive rate")
	fn := tab.Get("backcast false-negative rate (jam)")
	if pc == nil || bc == nil || fn == nil {
		t.Fatal("series missing")
	}
	// No interference, no errors.
	if y, _ := pc.YAt(0); y != 0 {
		t.Errorf("pollcast FP at coupling 0 = %v", y)
	}
	if y, _ := fn.YAt(0); y != 0 {
		t.Errorf("backcast FN at coupling 0 = %v", y)
	}
	// Pollcast FP rate grows with coupling; backcast stays at zero.
	lo, _ := pc.YAt(0.1)
	hi, _ := pc.YAt(0.8)
	if hi <= lo {
		t.Errorf("pollcast FP rate not increasing: %v -> %v", lo, hi)
	}
	for _, p := range bc.Points {
		if p.Y != 0 {
			t.Fatalf("backcast false positive at coupling %v", p.X)
		}
	}
	// Jam-induced FN appears at high coupling.
	if y, _ := fn.YAt(0.8); y == 0 {
		t.Error("no backcast false negatives under heavy jamming")
	}
	// Interference makes pollcast cheaper AND wrong: false-active bins
	// short-circuit the session into a premature (false-positive)
	// "threshold reached". Backcast's cost stays flat because it never
	// sees phantom activity.
	pcCost := tab.Get("pollcast queries/region")
	bcCost := tab.Get("backcast queries/region")
	if pcCost == nil || bcCost == nil {
		t.Fatal("cost series missing")
	}
	pcLo, _ := pcCost.YAt(0)
	pcHi, _ := pcCost.YAt(0.6)
	if pcHi >= pcLo {
		t.Errorf("pollcast did not short-circuit under interference: %v -> %v", pcLo, pcHi)
	}
	bcLo, _ := bcCost.YAt(0)
	bcHi, _ := bcCost.YAt(0.8)
	if bcHi > bcLo*1.1+0.5 || bcHi < bcLo*0.9-0.5 {
		t.Errorf("backcast cost not flat under interference: %v -> %v", bcLo, bcHi)
	}
}

func TestExtKPlusShapes(t *testing.T) {
	tab := runFig(t, "ext-kplus", 120)
	if len(tab.Series) != 4 {
		t.Fatalf("series count = %d", len(tab.Series))
	}
	// At the hard point x = t, stronger radios are strictly cheaper.
	k1 := yAt(t, tab, "k=1", 16)
	k8 := yAt(t, tab, "k=8", 16)
	if !(k8 < k1) {
		t.Fatalf("k=8 (%v) not cheaper than k=1 (%v) at x=t", k8, k1)
	}
	// And never meaningfully worse anywhere.
	s1, s8 := tab.Get("k=1"), tab.Get("k=8")
	for i := range s1.Points {
		if s8.Points[i].Y > s1.Points[i].Y*1.2+1 {
			t.Fatalf("k=8 worse than k=1 at x=%v: %v vs %v",
				s1.Points[i].X, s8.Points[i].Y, s1.Points[i].Y)
		}
	}
}

func TestExtCountShapes(t *testing.T) {
	tab := runFig(t, "ext-count", 120)
	// Identification costs grow with x; threshold querying does not
	// (past the peak), so identification is strictly more expensive for
	// large x.
	if yAt(t, tab, "Identify (exact set)", 8) >= yAt(t, tab, "Identify (exact set)", 64) {
		t.Error("identification cost not increasing in x")
	}
	if yAt(t, tab, "Identify (exact set)", 64) <= yAt(t, tab, "Threshold (2tBins, t=16)", 64) {
		t.Error("identification not more expensive than threshold at x=64")
	}
	// Estimation cost is bounded by Repeats × levels regardless of x.
	est := tab.Get("Estimate (±2x)")
	for _, p := range est.Points {
		if p.Y > 16*9 {
			t.Fatalf("estimation cost %v at x=%v exceeds budget", p.Y, p.X)
		}
	}
}
