package experiment

import (
	"strings"
	"testing"
)

// The analytic experiments (no simulation randomness) must render
// byte-identically forever: they anchor the refactoring safety net.

func TestFig10Golden(t *testing.T) {
	e, err := Get("fig10")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(Options{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := Render(tab)
	const golden = `required repeats r by eq (10) and by Hoeffding, delta = 5%
mode separation d  eq (10)  Hoeffding
-----------------  -------  ---------
                4      308      13952
                8      154       3485
               12      103       1547
               16       77        868
               20       62        554
               24       51        384
               28       44        281
               32       39        214
               36       34        168
               40       31        135
               44       28        111
               48       26         93
               52       24         78
               56       22         67
               60       20         58
`
	if got != golden {
		t.Fatalf("fig10 output changed:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestFig8GoldenShape(t *testing.T) {
	e, err := Get("fig8")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(Options{Runs: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 8 is analytic too: same output for any seed.
	tab2, err := e.Run(Options{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if Render(tab) != Render(tab2) {
		t.Fatal("analytic fig8 depends on the seed")
	}
	if !strings.Contains(Render(tab), "delta") {
		t.Fatal("delta column missing")
	}
}
