package experiment

import (
	"strings"
	"testing"

	"tcast/internal/audit"
)

// TestAuditingDoesNotPerturbTrials extends the determinism acceptance test
// to the audit layer: the auditor consumes zero randomness and never
// mutates bins or responses, so an audited run must produce the identical
// figure table as a bare run with the same seed.
func TestAuditingDoesNotPerturbTrials(t *testing.T) {
	for _, id := range []string{"fig1", "fig2"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.Run(Options{Runs: 20, Seed: 2011})
		if err != nil {
			t.Fatal(err)
		}
		col := &audit.Collector{}
		audited, err := e.Run(Options{Runs: 20, Seed: 2011, Audit: col})
		if err != nil {
			t.Fatal(err)
		}
		if Render(plain) != Render(audited) {
			t.Fatalf("%s: auditing changed the table:\n--- plain ---\n%s--- audited ---\n%s",
				id, Render(plain), Render(audited))
		}
		s := col.Stats()
		if s.Sessions == 0 {
			t.Fatalf("%s: collector empty after audited run", id)
		}
		// fig1/fig2 run on lossless fastsim, so every session must be
		// correct with zero invariant violations.
		if s.Outcomes[audit.OutcomeCorrect] != s.Sessions {
			t.Fatalf("%s: outcomes %v over %d sessions", id, s.Outcomes, s.Sessions)
		}
		if s.Violations() != 0 {
			t.Fatalf("%s: %d invariant violations on a lossless substrate", id, s.Violations())
		}
	}
}

// TestAuditFullSuiteZeroViolations is the soundness acceptance criterion:
// auditing the entire experiment registry must observe zero Knowledge
// invariant violations — the lossless substrates prove the bounds hold at
// every poll, and the lossy ones (motelab, tab-acc's pollcast) must still
// keep Confirmed/candidate monotonicity and bin discipline.
func TestAuditFullSuiteZeroViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	col := &audit.Collector{}
	for _, e := range All() {
		if _, err := e.Run(Options{Runs: 3, Seed: 5, Audit: col}); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	s := col.Stats()
	if s.Sessions == 0 || s.Polls == 0 {
		t.Fatalf("registry sweep graded nothing: %+v", s)
	}
	if s.Violations() != 0 {
		t.Fatalf("%d invariant violations across the suite:\n%s", s.Violations(), col.Summary())
	}
}

// TestTabAccAttributesWrongDecisions is the provenance acceptance
// criterion: on the lossy pollcast campaign every wrong decision must be
// attributed to a named causal poll (the loss direction is forced — x > t,
// and pollcast under the configured medium can only hide replies).
func TestTabAccAttributesWrongDecisions(t *testing.T) {
	e, err := Get("tab-acc")
	if err != nil {
		t.Fatal(err)
	}
	col := &audit.Collector{}
	if _, err := e.Run(Options{Runs: 40, Seed: 2011, Audit: col}); err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if want := 40 * len(accMissPcts); s.Sessions != want {
		t.Fatalf("sessions = %d, want %d", s.Sessions, want)
	}
	if len(s.Wrong) == 0 {
		t.Fatal("no wrong decisions at up to 20% reply loss — campaign not exercising the grader")
	}
	for _, w := range s.Wrong {
		if w.Outcome != audit.OutcomeWrongLoss || w.CausalPoll < 0 || w.CausalClass != audit.ClassFalseNegative {
			t.Errorf("wrong decision %q not attributed: %+v", w.Session, w)
		}
		if !strings.Contains(w.Session, "miss=") {
			t.Errorf("session label %q missing the campaign parameters", w.Session)
		}
	}
	if s.Violations() != 0 {
		t.Fatalf("lossy campaign tripped %d invariant violations:\n%s", s.Violations(), col.Summary())
	}
	// The summary is the accuracy-breakdown table: it must name the causal
	// polls.
	if sum := col.Summary(); !strings.Contains(sum, "causal poll") {
		t.Fatalf("summary has no causal poll rows:\n%s", sum)
	}
}

// TestTabErrAuditAttribution: the motelab campaign's wrong decisions are
// graded by replay and must likewise be attributed (backcast loss can only
// produce false negatives).
func TestTabErrAuditAttribution(t *testing.T) {
	e, err := Get("tab-err")
	if err != nil {
		t.Fatal(err)
	}
	col := &audit.Collector{}
	if _, err := e.Run(Options{Runs: 30, Seed: 2011, Audit: col}); err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if s.Sessions == 0 {
		t.Fatal("motelab campaign graded no sessions")
	}
	if len(s.Wrong) == 0 {
		t.Fatal("no wrong decisions in the calibrated motelab campaign")
	}
	for _, w := range s.Wrong {
		if w.Outcome != audit.OutcomeWrongLoss || w.CausalPoll < 0 {
			t.Errorf("wrong decision %q not attributed: %+v", w.Session, w)
		}
		if !strings.HasPrefix(w.Session, "motelab/") {
			t.Errorf("unexpected session label %q", w.Session)
		}
	}
}
