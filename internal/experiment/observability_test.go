package experiment

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tcast/internal/metrics"
	"tcast/internal/rng"
	"tcast/internal/stats"
	"tcast/internal/trace"
)

// failingTrial builds a trial function that fails at exactly the given
// indices, using the index RunTrials now passes directly.
func failingTrial(failAt map[int]bool) (func(i int, r *rng.Source) (float64, error), *int32) {
	var executed int32
	return func(i int, r *rng.Source) (float64, error) {
		atomic.AddInt32(&executed, 1)
		if failAt[i] {
			return 0, fmt.Errorf("trial %d failed", i)
		}
		return float64(i), nil
	}, &executed
}

// TestRunTrialsErrorDeterministic: whatever the worker count or goroutine
// scheduling, the error reported must be the one from the lowest-indexed
// failing trial, and no partial values may escape.
func TestRunTrialsErrorDeterministic(t *testing.T) {
	const runs = 400
	failAt := map[int]bool{399: true, 123: true, 124: true, 350: true}
	for _, workers := range []int{1, 2, 3, 8, 32} {
		for rep := 0; rep < 5; rep++ {
			trial, _ := failingTrial(failAt)
			values, err := RunTrials(runs, workers, rng.New(42), trial)
			if values != nil {
				t.Fatalf("workers=%d: partial values exposed on error", workers)
			}
			if err == nil || err.Error() != "trial 123 failed" {
				t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure (trial 123)", workers, err)
			}
		}
	}
}

// TestRunTrialsCancelsAfterFailure: with two workers, an immediate failure
// on one stripe must stop the other (slow) stripe long before it finishes.
func TestRunTrialsCancelsAfterFailure(t *testing.T) {
	const runs = 200
	var executed int32
	_, err := RunTrials(runs, 2, rng.New(1), func(i int, r *rng.Source) (float64, error) {
		atomic.AddInt32(&executed, 1)
		if i == 1 {
			return 0, fmt.Errorf("trial 1 failed")
		}
		// Surviving trials are slow, so by the time the even-stripe
		// worker reaches its next skip check the failure from trial 1
		// has long been recorded.
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if err == nil || err.Error() != "trial 1 failed" {
		t.Fatalf("err = %v", err)
	}
	// Exact counts depend on scheduling; what must never happen is the
	// old behavior of running the entire stripe after a failure (~100ms
	// of sleeps here against a failure recorded within microseconds).
	if n := atomic.LoadInt32(&executed); int(n) == runs {
		t.Fatalf("all %d trials executed despite early failure", n)
	}
}

func TestRunTrialsSingleFailureAtEnd(t *testing.T) {
	const runs = 50
	trial, executed := failingTrial(map[int]bool{49: true})
	_, err := RunTrials(runs, 4, rng.New(7), trial)
	if err == nil || err.Error() != "trial 49 failed" {
		t.Fatalf("err = %v", err)
	}
	// Every trial below the failure must have executed (that is what makes
	// the lowest-failure guarantee deterministic).
	if n := atomic.LoadInt32(executed); n != runs {
		t.Fatalf("executed %d of %d trials; trials below the failure were skipped", n, runs)
	}
}

// TestInstrumentationDoesNotPerturbTrials is the determinism acceptance
// test: the same seed must produce bit-identical figure tables with and
// without the metrics layer interposed (run under -race in CI, which also
// exercises concurrent metric updates from the worker pool).
func TestInstrumentationDoesNotPerturbTrials(t *testing.T) {
	for _, id := range []string{"fig1", "fig2"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.Run(Options{Runs: 30, Seed: 2011})
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		instrumented, err := e.Run(Options{Runs: 30, Seed: 2011, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		if Render(plain) != Render(instrumented) {
			t.Fatalf("%s: instrumentation changed the table:\n--- plain ---\n%s--- instrumented ---\n%s",
				id, Render(plain), Render(instrumented))
		}
		// And the run must actually have recorded something.
		s := reg.Snapshot()
		if len(s.Counters) == 0 || len(s.Histograms) == 0 {
			t.Fatalf("%s: registry empty after instrumented run", id)
		}
	}
}

// TestMetricsPartitionPollTotals: the per-kind poll counters must sum to
// the session histogram's poll total — the acceptance criterion for the
// fig1 metrics dump.
func TestMetricsPartitionPollTotals(t *testing.T) {
	e, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	if _, err := e.Run(Options{Runs: 20, Seed: 3, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	var perKind, totalPolls float64
	for _, c := range s.Counters {
		switch c.Name {
		case metrics.Name(metrics.MetricPolls, "kind", "empty"),
			metrics.Name(metrics.MetricPolls, "kind", "active"),
			metrics.Name(metrics.MetricPolls, "kind", "decoded"),
			metrics.Name(metrics.MetricPolls, "kind", "collision"):
			perKind += c.Value
		}
	}
	for _, h := range s.Histograms {
		if h.Name == metrics.MetricSessionPolls {
			totalPolls = h.Sum
		}
	}
	if perKind == 0 || perKind != totalPolls {
		t.Fatalf("per-kind polls %v != session poll total %v", perKind, totalPolls)
	}
}

// TestTracingDoesNotPerturbTrials extends the determinism acceptance test
// to the span layer: the span recorder consumes zero randomness, so a
// traced run must produce the identical figure table as a bare run with
// the same seed, and two traced runs with the same seed must serialize to
// byte-identical trace files.
func TestTracingDoesNotPerturbTrials(t *testing.T) {
	for _, id := range []string{"fig1", "fig2"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.Run(Options{Runs: 20, Seed: 2011})
		if err != nil {
			t.Fatal(err)
		}

		run := func() (*stats.Table, []byte) {
			b := trace.NewBuilder()
			res, err := e.Run(Options{Runs: 20, Seed: 2011, Trace: b})
			if err != nil {
				t.Fatal(err)
			}
			enc, err := trace.EncodeBytes(b.Trace())
			if err != nil {
				t.Fatal(err)
			}
			return res, enc
		}
		traced, enc1 := run()
		_, enc2 := run()

		if Render(plain) != Render(traced) {
			t.Fatalf("%s: tracing changed the table:\n--- plain ---\n%s--- traced ---\n%s",
				id, Render(plain), Render(traced))
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%s: same-seed traced runs are not byte-identical", id)
		}
		// The trace must actually contain the trial structure.
		tr, err := trace.Decode(bytes.NewReader(enc1))
		if err != nil {
			t.Fatal(err)
		}
		a := trace.Analyze(tr)
		if a.Phases[trace.KindTrial].Spans == 0 || a.Polls == 0 {
			t.Fatalf("%s: trace missing trials/polls: %+v", id, a)
		}
	}
}

// TestTracingAndMetricsStack: both observability layers enabled at once
// still reproduce the bare table — the experiment-level counterpart of the
// middleware-ordering test in internal/trace.
func TestTracingAndMetricsStack(t *testing.T) {
	e, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Run(Options{Runs: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	b := trace.NewBuilder()
	both, err := e.Run(Options{Runs: 20, Seed: 7, Metrics: reg, Trace: b})
	if err != nil {
		t.Fatal(err)
	}
	if Render(plain) != Render(both) {
		t.Fatalf("stacked observability changed the table:\n--- plain ---\n%s--- stacked ---\n%s",
			Render(plain), Render(both))
	}
	if a := trace.Analyze(b.Trace()); a.Polls == 0 {
		t.Fatal("no polls traced")
	}
	if len(reg.Snapshot().Counters) == 0 {
		t.Fatal("registry empty")
	}
}
