package experiment

import (
	"fmt"

	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/count"
	"tcast/internal/energy"
	"tcast/internal/fastsim"
	"tcast/internal/kplus"
	"tcast/internal/multihop"
	"tcast/internal/pollcast"
	"tcast/internal/rng"
	"tcast/internal/stats"
	"tcast/internal/timing"
	"tcast/internal/trace"
)

// This file registers the extension experiments that go beyond the
// paper's printed figures: energy (reply transmissions), wall-clock
// latency via the 802.15.4 timing model, the multihop interference study
// the paper lists as future work, and the identification/estimation
// primitives from the companion group-testing framework.

func init() {
	register(Experiment{
		ID:    "ext-energy",
		Title: "Extension: reply transmissions per scheme (N=128, t=16) — the energy cost",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "positive-node transmissions until the threshold decision",
				XLabel: "positive nodes x", YLabel: "reply frames sent",
			}
			// tcast: every positive in a polled bin transmits once per
			// poll of that bin.
			algReplies := func(alg core.Algorithm) func(x int) pointCost {
				return func(x int) pointCost {
					return func(_ int, r *rng.Source) (float64, error) {
						ch, _ := fastsim.RandomPositives(defaultN, x, fastsim.DefaultConfig(), r.Split(1))
						if _, err := alg.Run(ch, defaultN, defaultT, r.Split(2)); err != nil {
							return 0, err
						}
						return float64(ch.Stats().Replies), nil
					}
				}
			}
			for i, alg := range []core.Algorithm{core.TwoTBins{}, core.ProbABNS{}} {
				s, err := sweep(alg.Name(), xs, o, root.Split(uint64(i)), algReplies(alg))
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			// CSMA: one frame per delivery plus one per collision
			// participant; the simulator counts collision slots, and at
			// least two stations transmit in each.
			csma, err := sweep("CSMA", xs, o, root.Split(10), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					pos := bitset.New(defaultN)
					for _, id := range r.Split(1).Sample(defaultN, x) {
						pos.Add(id)
					}
					res := baseline.CSMA{}.Run(defaultN, defaultT, pos, r.Split(2))
					return float64(res.Delivered + 2*res.Collisions), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(csma)
			// Sequential: exactly the positives scheduled before the
			// decision transmit.
			seq, err := sweep("Sequential", xs, o, root.Split(11), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					pos := bitset.New(defaultN)
					for _, id := range r.Split(1).Sample(defaultN, x) {
						pos.Add(id)
					}
					res := baseline.Sequential{}.Run(defaultN, defaultT, pos, r.Split(2))
					return float64(res.Delivered), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(seq)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "ext-time",
		Title: "Extension: Fig 1 in wall-clock milliseconds (802.15.4 timing model)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			costs := timing.DefaultCosts(defaultN)
			tab := &stats.Table{
				Title:  "latency to the threshold decision (ms), CC2420 timing",
				XLabel: "positive nodes x", YLabel: "milliseconds",
			}
			tcastMS := func(alg core.Algorithm) func(x int) pointCost {
				return func(x int) pointCost {
					return func(_ int, r *rng.Source) (float64, error) {
						ch, _ := fastsim.RandomPositives(defaultN, x, fastsim.DefaultConfig(), r.Split(1))
						res, err := alg.Run(ch, defaultN, defaultT, r.Split(2))
						if err != nil {
							return 0, err
						}
						return costs.TcastLatency(res.Queries, res.Rounds).Seconds() * 1000, nil
					}
				}
			}
			for i, alg := range []core.Algorithm{core.TwoTBins{}, core.ProbABNS{}} {
				s, err := sweep(alg.Name(), xs, o, root.Split(uint64(i)), tcastMS(alg))
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			csma, err := sweep("CSMA", xs, o, root.Split(10), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					pos := bitset.New(defaultN)
					for _, id := range r.Split(1).Sample(defaultN, x) {
						pos.Add(id)
					}
					res := baseline.CSMA{}.Run(defaultN, defaultT, pos, r.Split(2))
					return costs.CSMALatency(res.Slots, res.Delivered).Seconds() * 1000, nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(csma)
			seq, err := sweep("Sequential", xs, o, root.Split(11), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					pos := bitset.New(defaultN)
					for _, id := range r.Split(1).Sample(defaultN, x) {
						pos.Add(id)
					}
					res := baseline.Sequential{}.Run(defaultN, defaultT, pos, r.Split(2))
					return costs.SequentialLatency(res.Slots).Seconds() * 1000, nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(seq)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "ext-battery",
		Title: "Extension: per-participant radio energy (mJ, CC2420 model, N=128, t=16)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			model := energy.CC2420()
			costs := timing.DefaultCosts(defaultN)
			tab := &stats.Table{
				Title:  "mean participant energy until the threshold decision",
				XLabel: "positive nodes x", YLabel: "millijoules per participant",
			}
			tcastEnergy, err := sweep("tcast (2tBins/backcast)", xs, o, root.Split(1), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					ch, _ := fastsim.RandomPositives(defaultN, x, fastsim.DefaultConfig(), r.Split(1))
					rec := trace.NewRecorder(ch)
					res, err := (core.TwoTBins{}).Run(rec, defaultN, defaultT, r.Split(2))
					if err != nil {
						return 0, err
					}
					rep := energy.TcastSession(model, costs, res.Rounds, rec.Events(), defaultN, ch.IsPositive)
					return rep.MeanNode(), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(tcastEnergy)
			csmaEnergy, err := sweep("CSMA", xs, o, root.Split(2), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					pos := bitset.New(defaultN)
					ids := r.Split(1).Sample(defaultN, x)
					for _, id := range ids {
						pos.Add(id)
					}
					res := baseline.CSMA{}.Run(defaultN, defaultT, pos, r.Split(2))
					rep := energy.CSMASession(model, costs, res.Slots, res.Delivered, defaultN, ids)
					return rep.MeanNode(), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(csmaEnergy)
			seqEnergy, err := sweep("Sequential", xs, o, root.Split(3), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					pos := bitset.New(defaultN)
					for _, id := range r.Split(1).Sample(defaultN, x) {
						pos.Add(id)
					}
					res := baseline.Sequential{}.Run(defaultN, defaultT, pos, r.Split(2))
					rep := energy.SequentialSession(model, costs, res.Slots, defaultN, pos.Contains, res.Order)
					return rep.MeanNode(), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(seqEnergy)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "ext-multihop",
		Title: "Extension (paper §VII future work): decision errors vs interference coupling",
		Run: func(o Options) (*stats.Table, error) {
			runs := o.runs(100)
			field, err := multihop.NewField(4, 4, 24, 0.8)
			if err != nil {
				return nil, err
			}
			tab := &stats.Table{
				Title:  "4x4 field, 24 nodes/region, t=6, x=2 (FP side) and x=8 (FN side)",
				XLabel: "coupling", YLabel: "error rate",
			}
			pcFP := &stats.Series{Name: "pollcast false-positive rate"}
			bcFP := &stats.Series{Name: "backcast false-positive rate"}
			bcFN := &stats.Series{Name: "backcast false-negative rate (jam)"}
			pcCost := &stats.Series{Name: "pollcast queries/region"}
			bcCost := &stats.Series{Name: "backcast queries/region"}
			positivesLow := make([]int, field.Regions())
			positivesHigh := make([]int, field.Regions())
			for i := range positivesLow {
				positivesLow[i] = 2
				positivesHigh[i] = 8
			}
			for _, coupling := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8} {
				var pcErr, bcErr, jamErr int
				var pcQueries, bcQueries int
				total := 0
				for rep := 0; rep < runs; rep++ {
					seed := uint64(rep)*1000 + uint64(coupling*100)
					pc := multihop.Campaign{Field: field, Primitive: pollcast.Pollcast,
						Coupling: coupling, Threshold: 6, Positives: positivesLow}
					_, s, err := pc.Run(seed)
					if err != nil {
						return nil, err
					}
					pcErr += s.FalsePositives
					pcQueries += s.TotalQueries
					bc := multihop.Campaign{Field: field, Primitive: pollcast.Backcast,
						Coupling: coupling, Threshold: 6, Positives: positivesLow}
					_, s, err = bc.Run(seed)
					if err != nil {
						return nil, err
					}
					bcErr += s.FalsePositives
					bcQueries += s.TotalQueries
					jam := multihop.Campaign{Field: field, Primitive: pollcast.Backcast,
						Coupling: coupling, Jam: true, Threshold: 6, Positives: positivesHigh}
					_, s, err = jam.Run(seed)
					if err != nil {
						return nil, err
					}
					jamErr += s.FalseNegatives
					total += field.Regions()
				}
				pcFP.Append(stats.Point{X: coupling, Y: float64(pcErr) / float64(total), N: total})
				bcFP.Append(stats.Point{X: coupling, Y: float64(bcErr) / float64(total), N: total})
				bcFN.Append(stats.Point{X: coupling, Y: float64(jamErr) / float64(total), N: total})
				pcCost.Append(stats.Point{X: coupling, Y: float64(pcQueries) / float64(total), N: total})
				bcCost.Append(stats.Point{X: coupling, Y: float64(bcQueries) / float64(total), N: total})
			}
			tab.Add(pcFP)
			tab.Add(bcFP)
			tab.Add(bcFN)
			tab.Add(pcCost)
			tab.Add(bcCost)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "ext-kplus",
		Title: "Extension: the companion k+ model — query cost vs radio strength k (N=128)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "k+ threshold querying (t=16): stronger radios resolve bins exactly",
				XLabel: "positive nodes x", YLabel: "queries",
			}
			for i, k := range []int{1, 2, 4, 8} {
				k := k
				s, err := sweep(fmt.Sprintf("k=%d", k), xs, o, root.Split(uint64(i)), func(x int) pointCost {
					return func(trial int, r *rng.Source) (float64, error) {
						ch := kplus.RandomChannel(k, defaultN, x, r.Split(1))
						res, err := kplus.Threshold(ch, defaultN, defaultT, r.Split(2))
						if err != nil {
							return 0, err
						}
						if b := o.Trace; b != nil {
							// One RCD slot per k+ group query, like fastsim.
							f := b.Fork(trial)
							sp := f.Begin(trace.KindTrial, fmt.Sprintf("trial %d", trial))
							f.Advance(int64(res.Queries))
							sp.SetAttr(
								trace.StringAttr("substrate", "kplus"),
								trace.IntAttr("k", k),
								trace.IntAttr("n", defaultN), trace.IntAttr("t", defaultT), trace.IntAttr("x", x),
								trace.IntAttr("queries", res.Queries),
								trace.BoolAttr("decision", res.Decision),
							)
							f.End()
						}
						if res.Decision != (x >= defaultT) {
							return 0, fmt.Errorf("k=%d wrong decision at x=%d", k, x)
						}
						return float64(res.Queries), nil
					}
				})
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "ext-count",
		Title: "Extension: identification and cardinality estimation cost (N=128)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "polls to identify every positive vs. to estimate their count",
				XLabel: "positive nodes x", YLabel: "queries",
			}
			ident, err := sweep("Identify (exact set)", xs, o, root.Split(1), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					ch, truth := fastsim.RandomPositives(defaultN, x, fastsim.DefaultConfig(), r.Split(1))
					got, queries, err := count.Identify(ch, defaultN)
					if err != nil {
						return 0, err
					}
					if len(got) != truth.Len() {
						return 0, fmt.Errorf("identification missed positives at x=%d", x)
					}
					return float64(queries), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(ident)
			est, err := sweep("Estimate (±2x)", xs, o, root.Split(2), func(x int) pointCost {
				return func(_ int, r *rng.Source) (float64, error) {
					ch, _ := fastsim.RandomPositives(defaultN, x, fastsim.DefaultConfig(), r.Split(1))
					members := make([]int, defaultN)
					for i := range members {
						members[i] = i
					}
					_, queries := count.Estimate(ch, members, count.EstimateOptions{Repeats: 16}, r.Split(2))
					return float64(queries), nil
				}
			})
			if err != nil {
				return nil, err
			}
			tab.Add(est)
			thresh, err := sweep("Threshold (2tBins, t=16)", xs, o, root.Split(3), func(x int) pointCost {
				return tcastCost(plainAlg(core.TwoTBins{}), defaultN, defaultT, x, fastsim.DefaultConfig(), o)
			})
			if err != nil {
				return nil, err
			}
			tab.Add(thresh)
			return tab, nil
		},
	})
}
