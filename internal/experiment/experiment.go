// Package experiment is the harness that regenerates every table and
// figure of the paper's evaluation. Each figure is a named experiment that
// sweeps a parameter, runs many independent trials per point (in parallel,
// deterministically), and returns a stats.Table whose series correspond to
// the curves of the original figure.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/obs"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/stats"
	"tcast/internal/trace"
)

// faultStream is the Split label reserved for a trial's fault-injection
// stream; trial cost functions use labels 1..3 for their own draws, and
// Split never advances the parent, so reserving the label costs bare runs
// nothing.
const faultStream = 9

// Options tunes an experiment run.
type Options struct {
	// Runs is the number of trials per point. The paper uses 1000 for
	// simulations and 100 per mote configuration; zero selects those
	// defaults.
	Runs int
	// Seed is the root seed; every (point, trial) derives its own
	// stream, so results are independent of scheduling.
	Seed uint64
	// Workers bounds trial parallelism; zero means GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives the run's observability data:
	// per-poll instruments from the instrumented querier and per-point
	// trial throughput and wall-clock timings from the sweep driver.
	// Instrumentation never touches the trial RNG streams, so results
	// are bit-identical with and without it.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives a structured span recording of the
	// run: series → point → trial → session → round → poll, with
	// virtual-time intervals from the cost model. Trials run at full
	// worker parallelism: each trial records into its own fork of the
	// builder (trace.Builder.Fork) and the sweep grafts the fragments
	// back in trial-index order after the point's pool drains, so the
	// encoded trace depends only on the seed, never the worker count.
	// Like Metrics, tracing consumes no randomness, so the computed
	// tables are bit-identical with and without it.
	Trace *trace.Builder
	// TraceSample, when > 1, records only 1-in-k poll leaf spans per
	// session (trace.SpanQuerier.SetSampling, keyed by the trial index so
	// identical runs sample identical spans for any worker count). Round
	// and session spans, the virtual clock, and the session poll/node
	// counters stay exact; sampled traces Analyze with counts scaled by
	// the inverse rate. Values <= 1 record everything and are
	// byte-identical to the pre-sampling format.
	TraceSample int
	// Audit, when non-nil, grades every session against the substrate's
	// ground truth: each trial's querier chain gains an audit.Auditor and
	// its verdict (decision outcome, poll soundness classes, invariant
	// violations, causal poll for wrong decisions) is folded into the
	// collector. Trials run at full worker parallelism: verdicts are
	// inserted under their trial index (Collector.AddAt) and the sweep
	// flushes each point's batch in index order, so session labels and
	// wrong-decision rows are in deterministic trial order for any worker
	// count. Like the other two layers it consumes no randomness, so the
	// computed tables are bit-identical with and without it.
	Audit *audit.Collector
	// Faults, when non-nil, stacks the deterministic fault injector
	// (internal/faults) directly above every trial's querier substrate,
	// drawing from a dedicated per-trial stream. A non-nil config with
	// all rates zero still interposes the injector; such runs are
	// byte-identical to bare ones (the CI property test pins this).
	// With faults active the figure experiments tolerate wrong decisions
	// instead of failing the trial — degradation is the point — and the
	// abstract CSMA/Sequential baselines, which have no querier to wrap,
	// run bare. The audit layer keeps working: the injector reports
	// itself lossy, so the bound invariants stand down.
	Faults *faults.Config
	// Retry stacks the initiator retry policy (query.WithRetry) above
	// the substrate and injector in every trial; the zero policy adds no
	// wrapper. Retries and backoff waits are priced in virtual slots.
	Retry query.RetryPolicy
	// Obs, when non-nil, streams structured events onto the bus: one
	// session-start and one verdict event per trial, one poll event per
	// group poll (obs.Publisher, stacked outermost so every layer below
	// is already applied), injected-fault and retry-exhaustion events
	// drained from the chain, and anomaly events for invariant
	// violations and wrong verdicts. Trials publish from worker
	// goroutines, so the live stream is scheduling-ordered — sinks that
	// need determinism key on the session label and trial index carried
	// by every event. Publishing consumes no randomness and the wrapper
	// is interposed only when the bus is non-nil, so published runs stay
	// byte-identical to bare ones and the bare hot path allocation-free.
	Obs *obs.Bus
}

// faulted reports whether fault injection is configured AND can fire.
func (o Options) faulted() bool { return o.Faults != nil && o.Faults.Active() }

// wrapFaults stacks the injector (when configured) and the retry policy
// above a trial's substrate, returning the querier the observability
// layers should wrap. r must be the trial's root stream: the injector
// draws from its reserved split, never from the substrate's.
func (o Options) wrapFaults(q query.Querier, n int, r *rng.Source) query.Querier {
	if o.Faults != nil {
		q = faults.New(q, *o.Faults, n, r.Split(faultStream))
	}
	return query.WithRetry(q, o.Retry)
}

func (o Options) runs(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunTrials evaluates trial runs times on independent derived streams,
// fanned out over the worker pool, returning the per-trial values in
// trial-index order. Trial i always receives its own index and the stream
// root.Split(i), so the output is bit-identical regardless of worker
// count; the index also keys each trial's observation context (trace
// forks, audit rows), which is how traced and audited sweeps stay
// deterministic at full parallelism.
//
// On failure RunTrials returns (nil, err): any partially computed values
// are discarded, never exposed. The first recorded failure cancels the
// remaining work — every worker stops before starting a trial whose index
// exceeds the lowest failing index seen so far — and the error returned is
// deterministically the one from the lowest-indexed failing trial. (All
// trials below the lowest failure still run, so the winner cannot depend
// on goroutine scheduling.)
func RunTrials(runs, workers int, root *rng.Source, trial func(i int, r *rng.Source) (float64, error)) ([]float64, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("experiment: runs must be positive, got %d", runs)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > runs {
		workers = runs
	}
	values := make([]float64, runs)
	var (
		failIdx atomic.Int64 // lowest failing trial index so far
		mu      sync.Mutex   // guards failErr together with failIdx writes
		failErr error
	)
	failIdx.Store(int64(runs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker reuses one derived stream: SplitInto reseeds it
			// per trial with the same state Split(i) would allocate, and
			// Split never advances the parent, so concurrent derivation
			// from the shared root is safe and the values stay
			// bit-identical to the allocating form.
			var src rng.Source
			for i := w; i < runs; i += workers {
				// A worker's indices only grow, so once one passes the
				// lowest failure it can stop: no later trial of this
				// worker can produce a lower-indexed error.
				if int64(i) > failIdx.Load() {
					return
				}
				root.SplitInto(uint64(i), &src)
				v, err := trial(i, &src)
				if err != nil {
					mu.Lock()
					if int64(i) < failIdx.Load() {
						failIdx.Store(int64(i))
						failErr = err
					}
					mu.Unlock()
					return
				}
				values[i] = v
			}
		}(w)
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	return values, nil
}

// MeanParallel runs RunTrials and folds the values (in index order, so
// floating-point accumulation is deterministic) into a stats.Running.
func MeanParallel(runs, workers int, root *rng.Source, trial func(i int, r *rng.Source) (float64, error)) (stats.Running, error) {
	values, err := RunTrials(runs, workers, root, trial)
	if err != nil {
		return stats.Running{}, err
	}
	var total stats.Running
	for _, v := range values {
		total.Observe(v)
	}
	return total, nil
}

// pointCost is the per-trial measurement for one sweep point; i is the
// trial index, which keys the trial's observation context.
type pointCost func(i int, r *rng.Source) (float64, error)

// sweep builds one series by evaluating cost at every x. When o.Metrics is
// set, each point additionally reports its wall-clock duration and trial
// throughput — the timings are observability only and never feed back into
// the table. When o.Trace is set, the series and every sweep point become
// spans (the per-trial spans underneath come from the cost functions).
func sweep(name string, xs []int, o Options, root *rng.Source, cost func(x int) pointCost) (*stats.Series, error) {
	runs, workers := o.runs(defaultRuns), o.workers()
	s := &stats.Series{Name: name}
	if b := o.Trace; b != nil {
		b.Begin(trace.KindSeries, name)
		defer b.End()
	}
	for _, x := range xs {
		if b := o.Trace; b != nil {
			sp := b.Begin(trace.KindPoint, "x="+strconv.Itoa(x))
			sp.SetAttr(trace.IntAttr("x", x), trace.IntAttr("runs", runs))
		}
		start := time.Now()
		acc, err := MeanParallel(runs, workers, root.Split(uint64(x)), cost(x))
		if b := o.Trace; b != nil {
			// Splice the per-trial forks under the point span in trial-index
			// order; a failed point drops its fragments instead (the surviving
			// subset is scheduling-dependent). Close the point span before the
			// error check so the builder's stack stays balanced on every
			// return path.
			if err == nil {
				b.Graft()
			} else {
				b.DropForks()
			}
			b.End()
		}
		if c := o.Audit; c != nil {
			// Same batching for the collector's order-sensitive rows.
			if err == nil {
				c.Flush()
			} else {
				c.Discard()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("experiment: series %s at x=%d: %w", name, x, err)
		}
		if m := o.Metrics; m != nil {
			elapsed := time.Since(start)
			m.Counter("experiment_points_total").Inc()
			m.Counter("experiment_trials_total").Add(int64(acc.N()))
			m.Histogram("experiment_point_seconds", metrics.TimeBuckets).Observe(elapsed.Seconds())
			if secs := elapsed.Seconds(); secs > 0 {
				m.Gauge("experiment_trials_per_second").Set(float64(acc.N()) / secs)
			}
		}
		s.Append(stats.Point{X: float64(x), Y: acc.Mean(), Err: acc.CI95(), N: acc.N()})
	}
	return s, nil
}

// algChannelFactory builds the algorithm for one trial's channel (the
// Oracle needs the trial's ground truth).
type algChannelFactory func(ch *fastsim.Channel) core.Algorithm

func plainAlg(a core.Algorithm) algChannelFactory {
	return func(*fastsim.Channel) core.Algorithm { return a }
}

// trialState is the pooled per-trial scratch of tcastCost: the simulated
// channel, the session arena, and the two derived RNG streams every trial
// draws. Pooling it takes the bare trial path (no observability layers
// configured) down to zero allocations per trial; the reseeding calls
// (ResetRandom, SplitInto, RunIn) draw exactly the sequences their
// allocating equivalents do, so pooled trials are bit-identical.
type trialState struct {
	ch        fastsim.Channel
	arena     core.Arena
	chr, algr rng.Source
	// aud is the recycled auditor of audited sweeps: Reset re-grades a
	// new session in place (generation-bumped ledgers, recycled shadow
	// knowledge), and the collector extracts verdict scalars immediately,
	// so nothing observes the store after the trial returns it.
	aud *audit.Auditor
}

var trialPool = sync.Pool{New: func() any { return new(trialState) }}

// tcastCost measures one tcast session's query count on a fresh channel
// with exactly x positives. o.Metrics interposes the instrumented querier,
// recording every group poll; o.Audit stacks the ground-truth auditor over
// it; o.Trace additionally stacks the span recorder outside both,
// rendering the trial as trial → session → round → poll spans (with the
// auditor below the span layer, so its verdict annotates the session
// span). No wrapper consumes randomness, so the measured values are
// identical in every combination.
func tcastCost(fac algChannelFactory, n, t, x int, cfg fastsim.Config, o Options) pointCost {
	return func(trial int, r *rng.Source) (float64, error) {
		st := trialPool.Get().(*trialState)
		defer trialPool.Put(st)
		r.SplitInto(1, &st.chr)
		st.ch.ResetRandom(n, x, cfg, &st.chr)
		ch := &st.ch
		alg := fac(ch)
		q := metrics.Wrap(o.wrapFaults(ch, n, r), o.Metrics)
		var aud *audit.Auditor
		var label string
		if o.Audit != nil || o.Obs != nil {
			label = fmt.Sprintf("%s/n=%d/t=%d/x=%d/trial=%d", alg.Name(), n, t, x, trial)
		}
		if o.Audit != nil {
			acfg := audit.Config{N: n, T: t, Metrics: o.Metrics}
			var err error
			if st.aud == nil {
				st.aud, err = audit.New(q, acfg)
			} else {
				err = st.aud.Reset(q, acfg)
			}
			if err != nil {
				return 0, err
			}
			aud = st.aud
			q = aud
		}
		var fb *trace.Builder
		var sq *trace.SpanQuerier
		if b := o.Trace; b != nil {
			// Record into a private fork of the shared builder; the sweep
			// grafts it back under the point span once the pool drains.
			fb = b.Fork(trial)
			fb.Begin(trace.KindTrial, "trial "+strconv.Itoa(trial))
			sq = trace.NewSpanQuerier(q, fb)
			sq.SetSampling(o.TraceSample, uint64(trial))
			sq.StartSession(alg.Name(),
				trace.IntAttr("n", n), trace.IntAttr("t", t), trace.IntAttr("x", x))
			q = sq
		}
		if o.Obs != nil {
			// Outermost, so the published poll stream counts exactly the
			// algorithm-visible polls every layer below has already seen.
			q = obs.NewPublisher(q, o.Obs, label, trial)
			obs.PublishSessionStart(o.Obs, label, trial)
		}
		r.SplitInto(2, &st.algr)
		res, err := core.RunIn(&st.arena, alg, q, n, t, &st.algr)
		if aud != nil {
			if err == nil {
				// Finish before EndSession so the verdict annotates the
				// closing session span.
				v := aud.Finish(res.Decision)
				o.Audit.AddAt(trial, label, v)
				if o.Obs != nil {
					obs.PublishChainEvents(o.Obs, label, trial, q)
					obs.PublishVerdict(o.Obs, label, trial, v, obs.ChainSlots(q, v.Polls), q)
				}
			} else {
				// The session started (its polls were graded live) but never
				// reached a decision; void it so the collector's session
				// accounting stays consistent with sessions started.
				o.Audit.Void(label)
			}
		}
		if sq != nil {
			if err == nil {
				sq.EndSession(
					trace.BoolAttr("decision", res.Decision),
					trace.IntAttr("queries", res.Queries),
					trace.IntAttr("rounds", res.Rounds))
			} else {
				sq.EndSession(trace.StringAttr("error", err.Error()))
			}
			fb.End() // trial span
		}
		if err != nil {
			return 0, err
		}
		metrics.FinishSession(q)
		if o.Obs != nil && aud == nil {
			// Unaudited sessions still close on the bus, graded against the
			// configured truth x >= t (no causal attribution without audit).
			obs.PublishChainEvents(o.Obs, label, trial, q)
			obs.PublishDecision(o.Obs, label, trial, res.Decision, x >= t, res.Queries,
				obs.ChainSlots(q, res.Queries))
		}
		if res.Decision != (x >= t) && !o.faulted() {
			// A wrong decision on a well-behaved substrate is a harness
			// bug; under active fault injection it is the expected
			// degradation the audit layer attributes.
			return 0, fmt.Errorf("wrong decision for n=%d t=%d x=%d", n, t, x)
		}
		return float64(res.Queries), nil
	}
}

// Experiment is one reproducible figure or table.
type Experiment struct {
	// ID is the figure identifier from DESIGN.md (e.g. "fig1").
	ID string
	// Title describes the experiment.
	Title string
	// Run produces the figure's data.
	Run func(o Options) (*stats.Table, error)
}

// registry holds every experiment keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists all registered experiments in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	var out []Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
