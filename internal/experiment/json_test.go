package experiment

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tab := makeTable()
	out, err := JSON(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != tab.Title || back.XLabel != tab.XLabel || back.YLabel != tab.YLabel {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.Series) != len(tab.Series) {
		t.Fatalf("series count %d, want %d", len(back.Series), len(tab.Series))
	}
	for i, s := range tab.Series {
		bs := back.Series[i]
		if bs.Name != s.Name || len(bs.Points) != len(s.Points) {
			t.Fatalf("series %d mismatched", i)
		}
		for j, p := range s.Points {
			if bs.Points[j] != p {
				t.Fatalf("point %d/%d = %+v, want %+v", i, j, bs.Points[j], p)
			}
		}
	}
}

func TestJSONSchemaFields(t *testing.T) {
	out, err := JSON(makeTable())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"title"`, `"xLabel"`, `"yLabel"`, `"series"`, `"points"`, `"name"`, `"x"`, `"y"`} {
		if !strings.Contains(out, key) {
			t.Errorf("schema key %s missing:\n%s", key, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("no trailing newline")
	}
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
