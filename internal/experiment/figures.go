package experiment

import (
	"fmt"
	"sort"
	"strconv"

	"tcast/internal/baseline"
	"tcast/internal/bitset"
	"tcast/internal/core"
	"tcast/internal/dist"
	"tcast/internal/fastsim"
	"tcast/internal/motelab"
	"tcast/internal/rng"
	"tcast/internal/stats"
	"tcast/internal/trace"
)

// Default parameters for the simulation figures. The paper omits N and t
// for Figures 1-3, 5 and 6; we use N=128, t=16, matching the Section VI
// worked example's n=128 (see DESIGN.md).
const (
	defaultN    = 128
	defaultT    = 16
	defaultRuns = 1000
)

// xSweep returns the positive-count sweep for a population of n with
// threshold t: dense around the hard region x ≈ t, sparser toward x = n.
func xSweep(n, t int) []int {
	seen := map[int]bool{}
	var xs []int
	add := func(v int) {
		if v >= 0 && v <= n && !seen[v] {
			seen[v] = true
			xs = append(xs, v)
		}
	}
	for v := 0; v <= 2*t; v += max(1, t/8) {
		add(v)
	}
	add(1)
	add(t - 1)
	add(t)
	add(t + 1)
	for v := 2 * t; v <= n; v += max(1, n/16) {
		add(v)
	}
	add(n)
	sort.Ints(xs)
	return xs
}

// baselineTrialSpan renders one abstract-baseline trial as a leaf trial
// span, advancing the virtual clock by the slots the baseline consumed —
// the same cost unit the tcast sessions are metered in.
func baselineTrialSpan(b *trace.Builder, scheme string, trial, n, t, x int, res baseline.Result) {
	sp := b.Begin(trace.KindTrial, "trial "+strconv.Itoa(trial))
	b.Advance(int64(res.Slots))
	sp.SetAttr(
		trace.StringAttr("substrate", "baseline"),
		trace.StringAttr("scheme", scheme),
		trace.IntAttr("n", n), trace.IntAttr("t", t), trace.IntAttr("x", x),
		trace.IntAttr("slots", res.Slots),
		trace.IntAttr("delivered", res.Delivered),
		trace.IntAttr("collisions", res.Collisions),
		trace.BoolAttr("decision", res.Decision),
	)
	b.End()
}

// csmaCost measures the CSMA baseline's slot count.
func csmaCost(n, t, x int, o Options) pointCost {
	return func(trial int, r *rng.Source) (float64, error) {
		pos := bitset.New(n)
		for _, id := range r.Split(1).Sample(n, x) {
			pos.Add(id)
		}
		res := baseline.CSMA{}.Run(n, t, pos, r.Split(2))
		if b := o.Trace; b != nil {
			baselineTrialSpan(b.Fork(trial), "csma", trial, n, t, x, res)
		}
		if res.Decision != (x >= t) {
			return 0, fmt.Errorf("csma: wrong decision for x=%d t=%d", x, t)
		}
		return float64(res.Slots), nil
	}
}

// sequentialCost measures the sequential-ordering baseline's slot count.
func sequentialCost(n, t, x int, o Options) pointCost {
	return func(trial int, r *rng.Source) (float64, error) {
		pos := bitset.New(n)
		for _, id := range r.Split(1).Sample(n, x) {
			pos.Add(id)
		}
		res := baseline.Sequential{}.Run(n, t, pos, r.Split(2))
		if b := o.Trace; b != nil {
			baselineTrialSpan(b.Fork(trial), "sequential", trial, n, t, x, res)
		}
		if res.Decision != (x >= t) {
			return 0, fmt.Errorf("sequential: wrong decision for x=%d t=%d", x, t)
		}
		return float64(res.Slots), nil
	}
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Fig 1: performance of tcast in the 1+ scenario (N=128, t=16)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "tcast vs traditional schemes, 1+ model",
				XLabel: "positive nodes x", YLabel: "queries / slots",
			}
			curves := []struct {
				name string
				cost func(x int) pointCost
			}{
				{"2tBins", func(x int) pointCost {
					return tcastCost(plainAlg(core.TwoTBins{}), defaultN, defaultT, x, fastsim.DefaultConfig(), o)
				}},
				{"ExpIncrease", func(x int) pointCost {
					return tcastCost(plainAlg(core.ExpIncrease{}), defaultN, defaultT, x, fastsim.DefaultConfig(), o)
				}},
				{"CSMA", func(x int) pointCost { return csmaCost(defaultN, defaultT, x, o) }},
				{"Sequential", func(x int) pointCost { return sequentialCost(defaultN, defaultT, x, o) }},
			}
			for i, c := range curves {
				s, err := sweep(c.name, xs, o, root.Split(uint64(i)), c.cost)
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Fig 2: performance of tcast in the 2+ scenario vs 1+ (N=128, t=16)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "1+ vs 2+ collision models",
				XLabel: "positive nodes x", YLabel: "queries",
			}
			curves := []struct {
				name string
				alg  core.Algorithm
				cfg  fastsim.Config
			}{
				{"2tBins 1+", core.TwoTBins{}, fastsim.DefaultConfig()},
				{"2tBins 2+", core.TwoTBins{}, fastsim.TwoPlusConfig()},
				{"ExpIncrease 1+", core.ExpIncrease{}, fastsim.DefaultConfig()},
				{"ExpIncrease 2+", core.ExpIncrease{}, fastsim.TwoPlusConfig()},
			}
			for i, c := range curves {
				c := c
				s, err := sweep(c.name, xs, o, root.Split(uint64(i)), func(x int) pointCost {
					return tcastCost(plainAlg(c.alg), defaultN, defaultT, x, c.cfg, o)
				})
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig3",
		Title: "Fig 3: performance of tcast as the threshold changes (x=4, N=128)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			const x = 4
			ts := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 112, 120, 124, 127}
			tab := &stats.Table{
				Title:  "query cost vs threshold, x fixed at 4",
				XLabel: "threshold t", YLabel: "queries",
			}
			curves := []struct {
				name string
				alg  core.Algorithm
				cfg  fastsim.Config
			}{
				{"2tBins 1+", core.TwoTBins{}, fastsim.DefaultConfig()},
				{"2tBins 2+", core.TwoTBins{}, fastsim.TwoPlusConfig()},
				{"ExpIncrease 1+", core.ExpIncrease{}, fastsim.DefaultConfig()},
				{"ExpIncrease 2+", core.ExpIncrease{}, fastsim.TwoPlusConfig()},
			}
			for i, c := range curves {
				c := c
				s, err := sweep(c.name, ts, o, root.Split(uint64(i)), func(t int) pointCost {
					return tcastCost(plainAlg(c.alg), defaultN, t, x, c.cfg, o)
				})
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig4",
		Title: "Fig 4: TCast with 2tBins on the emulated mote testbed (N=12, t in {2,4,6})",
		Run: func(o Options) (*stats.Table, error) {
			cfg := motelab.DefaultConfig()
			cfg.Seed = o.Seed + 1
			cfg.Trace = o.Trace
			cfg.Audit = o.Audit
			lab, err := motelab.New(cfg)
			if err != nil {
				return nil, err
			}
			defer lab.Close()
			curves, agg, err := lab.RunPaperProtocol(o.runs(100))
			if err != nil {
				return nil, err
			}
			tab := &stats.Table{
				Title: fmt.Sprintf("mote testbed: %d runs, %d false pos, %d false neg (error rate %.2f%%)",
					agg.Trials, agg.FalsePositives, agg.FalseNegatives, 100*agg.ErrorRate()),
				XLabel: "positive nodes x", YLabel: "queries",
			}
			for _, th := range []int{2, 4, 6} {
				s := &stats.Series{Name: fmt.Sprintf("t=%d", th)}
				for x := 0; x <= cfg.Participants; x++ {
					s.Append(stats.Point{X: float64(x), Y: curves[th][x], N: o.runs(100)})
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "tab-err",
		Title: "Sec IV-D: testbed error statistics by HACK superposition count",
		Run: func(o Options) (*stats.Table, error) {
			cfg := motelab.DefaultConfig()
			cfg.Seed = o.Seed + 1
			cfg.Trace = o.Trace
			cfg.Audit = o.Audit
			lab, err := motelab.New(cfg)
			if err != nil {
				return nil, err
			}
			defer lab.Close()
			_, agg, err := lab.RunPaperProtocol(o.runs(100))
			if err != nil {
				return nil, err
			}
			tab := &stats.Table{
				Title: fmt.Sprintf("errors over %d runs: %d false pos, %d false neg (%.2f%%)",
					agg.Trials, agg.FalsePositives, agg.FalseNegatives, 100*agg.ErrorRate()),
				XLabel: "superposing HACKs k", YLabel: "count / rate",
			}
			queries := &stats.Series{Name: "k-positive group queries"}
			misses := &stats.Series{Name: "missed (heard silent)"}
			rate := &stats.Series{Name: "miss rate"}
			for k := 1; k <= 6; k++ {
				queries.Append(stats.Point{X: float64(k), Y: float64(agg.QueriesBySuperposition[k])})
				misses.Append(stats.Point{X: float64(k), Y: float64(agg.MissedBySuperposition[k])})
				rate.Append(stats.Point{X: float64(k), Y: agg.MissRate(k)})
			}
			tab.Add(queries)
			tab.Add(misses)
			tab.Add(rate)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig5",
		Title: "Fig 5: Adaptive Bin Number Selection (N=128, t=16)",
		Run:   abnsFigure(false),
	})

	register(Experiment{
		ID:    "fig6",
		Title: "Fig 6: probabilistic ABNS (N=128, t=16)",
		Run:   abnsFigure(true),
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Fig 7: probabilistic ABNS vs CSMA (N=32, t=8)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			const n, t = 32, 8
			xs := xSweep(n, t)
			tab := &stats.Table{
				Title:  "ProbABNS vs CSMA, N=32, t=8",
				XLabel: "positive nodes x", YLabel: "queries / slots",
			}
			prob, err := sweep("ProbABNS", xs, o, root.Split(1), func(x int) pointCost {
				return tcastCost(plainAlg(core.ProbABNS{}), n, t, x, fastsim.DefaultConfig(), o)
			})
			if err != nil {
				return nil, err
			}
			tab.Add(prob)
			csma, err := sweep("CSMA", xs, o, root.Split(2), func(x int) pointCost {
				return csmaCost(n, t, x, o)
			})
			if err != nil {
				return nil, err
			}
			tab.Add(csma)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Fig 8: hypothesis gap Δ as the modes separate (n=128, r=12)",
		Run: func(o Options) (*stats.Table, error) {
			const n, r = 128, 12
			tab := &stats.Table{
				Title:  "expected non-empty probe counts under the two hypotheses",
				XLabel: "mode separation d", YLabel: "probes (of 12)",
			}
			m1s := &stats.Series{Name: "m1 (quiet)"}
			m2s := &stats.Series{Name: "m2 (activity)"}
			ds := &stats.Series{Name: "delta"}
			for d := 4; d <= 60; d += 4 {
				bi := dist.SymmetricBimodal(n, float64(d), 0)
				tl, tr := bi.Boundaries()
				det := core.NewBimodalDetector(tl, tr, r)
				m1, m2, delta := det.DeltaGap()
				m1s.Append(stats.Point{X: float64(d), Y: m1})
				m2s.Append(stats.Point{X: float64(d), Y: m2})
				ds.Append(stats.Point{X: float64(d), Y: delta})
			}
			tab.Add(m1s)
			tab.Add(m2s)
			tab.Add(ds)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Fig 9: accuracy of the probabilistic model vs repeats (n=128)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			const n = 128
			tab := &stats.Table{
				Title:  "probabilistic detector accuracy as the modes separate",
				XLabel: "mode separation d", YLabel: "accuracy",
			}
			ds := []int{4, 8, 12, 16, 20, 24, 32, 40, 48, 56}
			repeats := []struct {
				name string
				r    func(tl, tr float64) int
			}{
				{"r=1", func(_, _ float64) int { return 1 }},
				{"r=3", func(_, _ float64) int { return 3 }},
				{"r=9", func(_, _ float64) int { return 9 }},
				{"r=f(d=5%)", func(tl, tr float64) int {
					b := core.OptimalSamplingBins(tl, tr)
					eps := (core.BinNonEmptyProb(b, tr) - core.BinNonEmptyProb(b, tl)) / 2
					return core.RequiredRepeatsPaper(0.05, eps)
				}},
			}
			for i, rc := range repeats {
				rc := rc
				s, err := sweep(rc.name, ds, o, root.Split(uint64(i)), func(d int) pointCost {
					return detectorAccuracyCost(n, float64(d), rc.r)
				})
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig10",
		Title: "Fig 10: estimated repeats for a 95% success rate",
		Run: func(o Options) (*stats.Table, error) {
			const n = 128
			tab := &stats.Table{
				Title:  "required repeats r by eq (10) and by Hoeffding, delta = 5%",
				XLabel: "mode separation d", YLabel: "repeats",
			}
			paper := &stats.Series{Name: "eq (10)"}
			hoeff := &stats.Series{Name: "Hoeffding"}
			for d := 4; d <= 60; d += 4 {
				bi := dist.SymmetricBimodal(n, float64(d), 0)
				tl, tr := bi.Boundaries()
				b := core.OptimalSamplingBins(tl, tr)
				eps := (core.BinNonEmptyProb(b, tr) - core.BinNonEmptyProb(b, tl)) / 2
				paper.Append(stats.Point{X: float64(d), Y: float64(core.RequiredRepeatsPaper(0.05, eps))})
				hoeff.Append(stats.Point{X: float64(d), Y: float64(core.RequiredRepeatsHoeffding(0.05, eps))})
			}
			tab.Add(paper)
			tab.Add(hoeff)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "Fig 11: bimodal distribution of x for d=8 and d=16 (n=128)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			const n = 128
			samples := o.runs(defaultRuns) * 50
			tab := &stats.Table{
				Title:  "combination of two normal distributions, separation 2d",
				XLabel: "positive nodes x", YLabel: "density",
			}
			for i, d := range []float64{8, 16} {
				bi := dist.SymmetricBimodal(n, d, 0)
				h := dist.NewHistogram(n)
				r := root.Split(uint64(i))
				for s := 0; s < samples; s++ {
					h.Observe(bi.Sample(r))
				}
				series := &stats.Series{Name: fmt.Sprintf("d=%.0f", d)}
				for x := 0; x <= n; x += 2 {
					series.Append(stats.Point{X: float64(x), Y: h.Density(x) + h.Density(x+1), N: samples})
				}
				tab.Add(series)
			}
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "abl-capture",
		Title: "Ablation: capture-effect strength in the 2+ model (N=128, t=16)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "2tBins 2+ query cost under different capture strengths",
				XLabel: "positive nodes x", YLabel: "queries",
			}
			for i, beta := range []float64{0.25, 0.5, 0.75} {
				beta := beta
				cfg := fastsim.Config{
					Model:                fastsim.TwoPlusConfig().Model,
					Capture:              fastsim.GeometricCapture(beta),
					CaptureEffectPresent: true,
				}
				s, err := sweep(fmt.Sprintf("beta=%.2f", beta), xs, o, root.Split(uint64(i)), func(x int) pointCost {
					return tcastCost(plainAlg(core.TwoTBins{}), defaultN, defaultT, x, cfg, o)
				})
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			s, err := sweep("1/k capture", xs, o, root.Split(99), func(x int) pointCost {
				cfg := fastsim.Config{
					Model:                fastsim.TwoPlusConfig().Model,
					Capture:              fastsim.InverseCapture(),
					CaptureEffectPresent: true,
				}
				return tcastCost(plainAlg(core.TwoTBins{}), defaultN, defaultT, x, cfg, o)
			})
			if err != nil {
				return nil, err
			}
			tab.Add(s)
			return tab, nil
		},
	})

	register(Experiment{
		ID:    "abl-variants",
		Title: "Ablation: Exponential Increase growth variants (N=128, t=16)",
		Run: func(o Options) (*stats.Table, error) {
			root := rng.New(o.Seed)
			xs := xSweep(defaultN, defaultT)
			tab := &stats.Table{
				Title:  "the two variants the paper tried and dropped (Section IV-B)",
				XLabel: "positive nodes x", YLabel: "queries",
			}
			for i, alg := range []core.Algorithm{
				core.ExpIncrease{},
				core.ExpIncrease{Variant: core.ExpPauseAndContinue},
				core.ExpIncrease{Variant: core.ExpFourfold},
			} {
				alg := alg
				s, err := sweep(alg.Name(), xs, o, root.Split(uint64(i)), func(x int) pointCost {
					return tcastCost(plainAlg(alg), defaultN, defaultT, x, fastsim.DefaultConfig(), o)
				})
				if err != nil {
					return nil, err
				}
				tab.Add(s)
			}
			return tab, nil
		},
	})
}

// abnsFigure builds the Fig 5 / Fig 6 sweeps, which differ only in
// whether ProbABNS replaces 2tBins in the line-up.
func abnsFigure(probabilistic bool) func(o Options) (*stats.Table, error) {
	return func(o Options) (*stats.Table, error) {
		root := rng.New(o.Seed)
		xs := xSweep(defaultN, defaultT)
		title := "ABNS vs 2tBins vs Oracle"
		if probabilistic {
			title = "probabilistic ABNS vs ABNS vs Oracle"
		}
		tab := &stats.Table{Title: title, XLabel: "positive nodes x", YLabel: "queries"}

		curves := []struct {
			name string
			fac  algChannelFactory
		}{
			{"ABNS(p0=t)", plainAlg(core.ABNS{P0: 1})},
			{"ABNS(p0=2t)", plainAlg(core.ABNS{P0: 2})},
			{"Oracle", func(ch *fastsim.Channel) core.Algorithm { return core.Oracle{Truth: ch} }},
		}
		if probabilistic {
			curves = append([]struct {
				name string
				fac  algChannelFactory
			}{{"ProbABNS", plainAlg(core.ProbABNS{})}}, curves...)
		} else {
			curves = append([]struct {
				name string
				fac  algChannelFactory
			}{{"2tBins", plainAlg(core.TwoTBins{})}}, curves...)
		}
		for i, c := range curves {
			c := c
			s, err := sweep(c.name, xs, o, root.Split(uint64(i)), func(x int) pointCost {
				return tcastCost(c.fac, defaultN, defaultT, x, fastsim.DefaultConfig(), o)
			})
			if err != nil {
				return nil, err
			}
			tab.Add(s)
		}
		return tab, nil
	}
}

// detectorAccuracyCost returns a trial measuring the bimodal detector's
// correctness (1 correct, 0 wrong) at mode separation d.
func detectorAccuracyCost(n int, d float64, repeats func(tl, tr float64) int) pointCost {
	return func(_ int, r *rng.Source) (float64, error) {
		bi := dist.SymmetricBimodal(n, d, 0)
		tl, tr := bi.Boundaries()
		if tl >= tr {
			return 0, fmt.Errorf("boundaries not separated for d=%v", d)
		}
		det := core.NewBimodalDetector(tl, tr, repeats(tl, tr))
		x, quiet := bi.SampleLabeled(r.Split(1))
		ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(2))
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		activity, _ := det.Detect(ch, members, r.Split(3))
		if activity == !quiet {
			return 1, nil
		}
		return 0, nil
	}
}
