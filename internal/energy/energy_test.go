package energy

import (
	"math"
	"testing"
	"time"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/rng"
	"tcast/internal/timing"
	"tcast/internal/trace"
)

func TestCC2420Model(t *testing.T) {
	m := CC2420()
	if m.RxmA <= m.TxmA {
		// On the CC2420, listening costs MORE than transmitting at
		// 0 dBm — the fact that makes idle listening the energy killer.
		t.Fatal("CC2420 RX draw must exceed TX draw")
	}
	// 1 second at 18.8 mA and 3 V is 56.4 mJ.
	if got := m.millijoules(time.Second, 18.8); math.Abs(got-56.4) > 1e-9 {
		t.Fatalf("millijoules = %v, want 56.4", got)
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{Initiator: 5, PerNode: []float64{1, 2, 3}}
	if r.MeanNode() != 2 {
		t.Fatalf("MeanNode = %v", r.MeanNode())
	}
	if r.MaxNode() != 3 {
		t.Fatalf("MaxNode = %v", r.MaxNode())
	}
	if r.Total() != 11 {
		t.Fatalf("Total = %v", r.Total())
	}
	empty := Report{}
	if empty.MeanNode() != 0 || empty.MaxNode() != 0 {
		t.Fatal("empty report helpers wrong")
	}
}

// tracedSession runs one tcast session and returns its trace and result.
func tracedSession(t *testing.T, n, th, x int, seed uint64) (*trace.Recorder, core.Result, *fastsim.Channel) {
	t.Helper()
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(n, x, fastsim.DefaultConfig(), r.Split(1))
	rec := trace.NewRecorder(ch)
	res, err := (core.TwoTBins{}).Run(rec, n, th, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	return rec, res, ch
}

func TestTcastSessionAccounting(t *testing.T) {
	const n, th, x = 32, 8, 12
	rec, res, ch := tracedSession(t, n, th, x, 1)
	m := CC2420()
	c := timing.DefaultCosts(n)
	rep := TcastSession(m, c, res.Rounds, rec.Events(), n, ch.IsPositive)
	if len(rep.PerNode) != n {
		t.Fatalf("PerNode length %d", len(rep.PerNode))
	}
	if rep.Initiator <= 0 {
		t.Fatal("initiator energy not positive")
	}
	for id, e := range rep.PerNode {
		if e <= 0 {
			t.Fatalf("node %d energy %v", id, e)
		}
	}
	// Positives transmit HACKs, so on average they outspend negatives.
	var posSum, negSum float64
	var posN, negN int
	for id, e := range rep.PerNode {
		if ch.IsPositive(id) {
			posSum += e
			posN++
		} else {
			negSum += e
			negN++
		}
	}
	if posSum/float64(posN) <= negSum/float64(negN) {
		t.Fatal("positives did not outspend negatives")
	}
	// The initiator transmits every poll: it must outspend any single
	// participant.
	if rep.Initiator <= rep.MaxNode() {
		t.Fatalf("initiator %v not above max node %v", rep.Initiator, rep.MaxNode())
	}
}

func TestCSMAListeningDominates(t *testing.T) {
	// A CSMA contender listens through the whole session; a tcast
	// participant naps between short polls. For equal-duration
	// deployments the contender pays close to RX-always.
	m := CC2420()
	c := timing.DefaultCosts(32)
	positives := []int{1, 2, 3, 4, 5, 6, 7, 8}
	rep := CSMASession(m, c, 60, 8, 32, positives)
	sessionTime := c.CSMALatency(60, 8)
	rxAlways := m.millijoules(sessionTime, m.RxmA)
	for _, id := range positives {
		if rep.PerNode[id] < 0.8*rxAlways {
			t.Fatalf("contender %d pays %v, want near rx-always %v", id, rep.PerNode[id], rxAlways)
		}
	}
	// Non-contenders sleep.
	if rep.PerNode[20] >= rep.PerNode[1] {
		t.Fatal("sleeper not cheaper than contender")
	}
}

func TestSequentialSleepersAreCheap(t *testing.T) {
	m := CC2420()
	c := timing.DefaultCosts(32)
	order := make([]int, 32)
	for i := range order {
		order[i] = i
	}
	rep := SequentialSession(m, c, 32, 32, func(id int) bool { return id < 4 }, order)
	// Every participant's bill is far below the initiator's rx-always.
	for id, e := range rep.PerNode {
		if e >= rep.Initiator/2 {
			t.Fatalf("node %d pays %v vs initiator %v", id, e, rep.Initiator)
		}
	}
	// Positives pay slightly more (they transmit).
	if rep.PerNode[0] <= rep.PerNode[30] {
		t.Fatal("transmitting node not above sleeping node")
	}
}

func TestSchemeComparisonAtModerateX(t *testing.T) {
	// The qualitative energy story: per-participant, sequential is the
	// floor, tcast is close, CSMA's mandatory listening is the ceiling.
	const n, th, x = 64, 16, 32
	rec, res, ch := tracedSession(t, n, th, x, 2)
	m := CC2420()
	c := timing.DefaultCosts(n)
	tcastRep := TcastSession(m, c, res.Rounds, rec.Events(), n, ch.IsPositive)

	positives := make([]int, 0, x)
	for id := 0; id < n; id++ {
		if ch.IsPositive(id) {
			positives = append(positives, id)
		}
	}
	// Plausible CSMA cost for x=32, t=16 (from the Fig 1 data: ~88
	// slots, 16 deliveries).
	csmaRep := CSMASession(m, c, 88, 16, n, positives)
	order := rng.New(3).Perm(n)
	seqRep := SequentialSession(m, c, 40, n, ch.IsPositive, order)

	if !(seqRep.MeanNode() < tcastRep.MeanNode() && tcastRep.MeanNode() < csmaRep.MeanNode()) {
		t.Fatalf("energy ordering violated: seq=%v tcast=%v csma=%v",
			seqRep.MeanNode(), tcastRep.MeanNode(), csmaRep.MeanNode())
	}
}

func TestObservedSession(t *testing.T) {
	m := CC2420()
	tx, rx, idle := 400*time.Microsecond, 800*time.Microsecond, 320*time.Microsecond
	init := SlotLedger{Tx: 10, Rx: 5}
	nodes := []SlotLedger{
		{Rx: 10, Tx: 5},   // positive node: hears polls, replies
		{Rx: 10, Idle: 5}, // negative node: hears polls, idles reply slots
		{},                // never polled: sleeps, zero bill
	}
	rep := ObservedSession(m, tx, rx, idle, init, nodes)
	wantInit := m.millijoules(10*tx, m.TxmA) + m.millijoules(5*rx, m.RxmA)
	if math.Abs(rep.Initiator-wantInit) > 1e-12 {
		t.Fatalf("Initiator = %v, want %v", rep.Initiator, wantInit)
	}
	want0 := m.millijoules(10*rx, m.RxmA) + m.millijoules(5*tx, m.TxmA)
	want1 := m.millijoules(10*rx, m.RxmA) + m.millijoules(5*idle, m.IdlemA)
	if math.Abs(rep.PerNode[0]-want0) > 1e-12 || math.Abs(rep.PerNode[1]-want1) > 1e-12 {
		t.Fatalf("PerNode = %v, want [%v %v 0]", rep.PerNode, want0, want1)
	}
	if rep.PerNode[2] != 0 {
		t.Fatalf("unpolled node billed %v", rep.PerNode[2])
	}
	// Replies are cheaper than listening on the CC2420, so the positive
	// node (tx slots) must spend less than a hypothetical node that
	// listened through the same 5 slots.
	if rep.PerNode[0] >= m.millijoules(10*rx, m.RxmA)+m.millijoules(5*rx, m.RxmA) {
		t.Fatal("tx slots priced at or above rx slots")
	}
	var sum SlotLedger
	for _, l := range nodes {
		sum.Add(l)
	}
	if sum.Slots() != 30 || init.Slots() != 15 {
		t.Fatalf("ledger totals = %d/%d", sum.Slots(), init.Slots())
	}
}
