// Package energy models per-node radio energy for the feedback schemes,
// using CC2420 current draws and the 802.15.4 air times from package
// timing. The paper motivates tcast with "bandwidth, energy and latency
// concerns"; this package quantifies the energy axis:
//
//   - tcast/backcast: everyone hears one bind per round; only polled bin
//     members wake for a short poll; only positives transmit a 352 µs
//     HACK; everyone else naps.
//   - CSMA: every contender must carrier-sense — receive — until its own
//     reply gets through, so listening dominates.
//   - sequential: nodes sleep until their scheduled slot, the cheapest
//     for participants, while the initiator listens through all of it.
package energy

import (
	"time"

	"tcast/internal/timing"
	"tcast/internal/trace"
)

// Model holds radio current draws (mA) and the supply voltage (V).
type Model struct {
	RxmA, TxmA, IdlemA float64
	Voltage            float64
}

// CC2420 returns the TelosB radio's datasheet draws: 18.8 mA RX, 17.4 mA
// TX at 0 dBm, 0.4 mA idle, 3 V supply.
func CC2420() Model {
	return Model{RxmA: 18.8, TxmA: 17.4, IdlemA: 0.4, Voltage: 3}
}

// millijoules converts a duration at a current draw into mJ.
func (m Model) millijoules(d time.Duration, mA float64) float64 {
	return m.Voltage * mA * d.Seconds() // V · mA · s = mW·s·10⁻³·10³ = mJ
}

// Report is the energy bill of one session, in millijoules.
type Report struct {
	// Initiator is the querying node's energy.
	Initiator float64
	// PerNode is each participant's energy, indexed by node ID.
	PerNode []float64
}

// MeanNode returns the average participant energy.
func (r Report) MeanNode() float64 {
	if len(r.PerNode) == 0 {
		return 0
	}
	total := 0.0
	for _, e := range r.PerNode {
		total += e
	}
	return total / float64(len(r.PerNode))
}

// MaxNode returns the largest participant energy.
func (r Report) MaxNode() float64 {
	max := 0.0
	for _, e := range r.PerNode {
		if e > max {
			max = e
		}
	}
	return max
}

// Total returns the whole network's energy including the initiator.
func (r Report) Total() float64 {
	total := r.Initiator
	for _, e := range r.PerNode {
		total += e
	}
	return total
}

// SlotLedger counts one node's radio states over a session, in slots. The
// audit layer fills one ledger per node from the polls it actually
// observed; ObservedSession then prices the slots, replacing the analytical
// session models below with measured occupancy.
type SlotLedger struct {
	// Tx counts slots spent transmitting (polls for the initiator,
	// replies for positive bin members).
	Rx, Tx int
	// Idle counts slots spent awake but neither sending nor receiving
	// anything useful (a negative node listening through its bin's reply
	// slot).
	Idle int
}

// Add accumulates another ledger into l.
func (l *SlotLedger) Add(o SlotLedger) {
	l.Rx += o.Rx
	l.Tx += o.Tx
	l.Idle += o.Idle
}

// Slots returns the total accounted slots.
func (l SlotLedger) Slots() int { return l.Rx + l.Tx + l.Idle }

// ObservedSession prices per-node slot ledgers into an energy Report. The
// caller supplies the per-slot durations for each radio state — typically
// timing.FrameAirtime for rx/tx and a backoff slot for idle listening — so
// the bill reflects what each node's radio actually did, not the analytical
// schedule the session models above assume.
func ObservedSession(m Model, txAir, rxAir, idleAir time.Duration, initiator SlotLedger, nodes []SlotLedger) Report {
	bill := func(l SlotLedger) float64 {
		return m.millijoules(time.Duration(l.Tx)*txAir, m.TxmA) +
			m.millijoules(time.Duration(l.Rx)*rxAir, m.RxmA) +
			m.millijoules(time.Duration(l.Idle)*idleAir, m.IdlemA)
	}
	rep := Report{Initiator: bill(initiator), PerNode: make([]float64, len(nodes))}
	for i, l := range nodes {
		rep.PerNode[i] = bill(l)
	}
	return rep
}

// TcastSession computes the energy of one traced tcast-over-backcast
// session with the given rounds, over n participants whose ground truth
// is isPositive.
func TcastSession(m Model, c timing.Costs, rounds int, events []trace.Event, n int, isPositive func(id int) bool) Report {
	pollAir := timing.FrameAirtime(3)
	ackAir := timing.AckAirtime()
	sessionTime := c.TcastLatency(len(events), rounds)

	rep := Report{PerNode: make([]float64, n)}
	// Initiator: transmits every bind and poll, listens for every ACK
	// window, idles through turnarounds.
	txTime := time.Duration(rounds)*c.RoundBind + time.Duration(len(events))*pollAir
	rxTime := time.Duration(len(events)) * ackAir
	idleTime := sessionTime - txTime - rxTime
	if idleTime < 0 {
		idleTime = 0
	}
	rep.Initiator = m.millijoules(txTime, m.TxmA) + m.millijoules(rxTime, m.RxmA) + m.millijoules(idleTime, m.IdlemA)

	// Participants: everyone receives each round's bind; polled bin
	// members receive the poll; polled positives transmit the HACK;
	// the rest of the session is idle/sleep.
	bindRx := time.Duration(rounds) * c.RoundBind
	rx := make([]time.Duration, n)
	tx := make([]time.Duration, n)
	for _, e := range events {
		for _, id := range e.Bin {
			if id < 0 || id >= n {
				continue
			}
			rx[id] += pollAir
			if isPositive(id) {
				tx[id] += ackAir
			}
		}
	}
	for id := 0; id < n; id++ {
		active := bindRx + rx[id] + tx[id]
		idle := sessionTime - active
		if idle < 0 {
			idle = 0
		}
		rep.PerNode[id] = m.millijoules(bindRx+rx[id], m.RxmA) +
			m.millijoules(tx[id], m.TxmA) +
			m.millijoules(idle, m.IdlemA)
	}
	return rep
}

// CSMASession computes the energy of one CSMA collection: the initiator
// and every contender listen for the whole session (carrier sensing is
// receiving); each delivered reply is one transmission. positives lists
// the contending node IDs; delivered of them got through.
func CSMASession(m Model, c timing.Costs, slots, delivered, n int, positives []int) Report {
	frameAir := timing.FrameAirtime(2)
	sessionTime := c.CSMALatency(slots, delivered)

	rep := Report{PerNode: make([]float64, n)}
	rep.Initiator = m.millijoules(sessionTime, m.RxmA)
	contender := make(map[int]bool, len(positives))
	for _, id := range positives {
		contender[id] = true
	}
	for id := 0; id < n; id++ {
		if !contender[id] {
			// Negative nodes have nothing to send and sleep through
			// the contention.
			rep.PerNode[id] = m.millijoules(sessionTime, m.IdlemA)
			continue
		}
		// Conservative: a contender carrier-senses for the whole
		// session and transmits once.
		listen := sessionTime - frameAir
		if listen < 0 {
			listen = 0
		}
		rep.PerNode[id] = m.millijoules(listen, m.RxmA) + m.millijoules(frameAir, m.TxmA)
	}
	return rep
}

// SequentialSession computes the energy of one TDMA collection over a
// random schedule: every node receives the schedule broadcast, sleeps
// until its own slot, and transmits only if positive and scheduled before
// the early-termination point (slots).
func SequentialSession(m Model, c timing.Costs, slots, n int, isPositive func(id int) bool, order []int) Report {
	frameAir := timing.FrameAirtime(2)
	scheduleAir := timing.FrameAirtime(2 * n / 8)
	sessionTime := c.SequentialLatency(slots)

	rep := Report{PerNode: make([]float64, n)}
	rep.Initiator = m.millijoules(sessionTime, m.RxmA)
	scheduledBeforeStop := make(map[int]bool, slots)
	for i := 0; i < slots && i < len(order); i++ {
		scheduledBeforeStop[order[i]] = true
	}
	for id := 0; id < n; id++ {
		active := scheduleAir
		var tx time.Duration
		if scheduledBeforeStop[id] && isPositive(id) {
			tx = frameAir
		}
		idle := sessionTime - active - tx
		if idle < 0 {
			idle = 0
		}
		rep.PerNode[id] = m.millijoules(active, m.RxmA) + m.millijoules(tx, m.TxmA) + m.millijoules(idle, m.IdlemA)
	}
	return rep
}
