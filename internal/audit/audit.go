// Package audit is the ground-truth half of the observability stack: an
// oracle-backed query.Querier middleware that grades every poll response
// against the substrate's true positive set and checks the initiator's
// Knowledge invariants as the session runs.
//
// The metrics layer (PR 1) counts what happened and the trace layer (PR 2)
// records when; neither can say whether a response was *sound*, because
// neither sees ground truth. The auditor does — it is handed (or discovers)
// the substrate's true positive set, exactly the vantage point the paper's
// Section VII testbed analysis takes when it grades decisions offline — so
// it can classify each response (radio false negative, phantom activity,
// corrupted decode), attribute every wrong decision to the first causal
// poll, and account each node's channel occupancy in tx/rx/idle-listen
// slots for observed-energy billing.
//
// Like the other two layers the auditor is a query.Wrapper: it composes
// with metrics.InstrumentedQuerier and trace.SpanQuerier in any stacking
// order, consumes no randomness, and never mutates bins or responses, so
// an audited run is bit-identical to a bare one.
package audit

import (
	"fmt"

	"tcast/internal/energy"
	"tcast/internal/metrics"
	"tcast/internal/query"
	"tcast/internal/trace"
)

// Truth exposes the substrate's ground-truth predicate values — the oracle
// the auditor grades against. fastsim.Channel and pollcast.Session
// implement it directly; replay-based substrates (motelab) supply a
// TruthFunc built from the positives they configured.
type Truth interface {
	IsPositive(id int) bool
}

// TruthFunc adapts a plain function to the Truth interface.
type TruthFunc func(id int) bool

// IsPositive implements Truth.
func (f TruthFunc) IsPositive(id int) bool { return f(id) }

// Class grades one poll response against ground truth.
type Class int

const (
	// ClassOK: the response is consistent with the bin's true positive
	// count.
	ClassOK Class = iota
	// ClassFalseNegative: true positives were hidden — the bin answered
	// Empty despite containing positives, or a capture-free decode
	// claimed a singleton bin that truly held more (radio irregularity,
	// the paper's Section VII error source).
	ClassFalseNegative
	// ClassPhantom: the channel showed more activity than the bin's
	// positives can produce — Active over an all-negative bin, or a
	// Collision over a bin with fewer than two positives (interference).
	ClassPhantom
	// ClassCorruptDecode: a Decoded response named a node that is not in
	// the polled bin or is not truly positive.
	ClassCorruptDecode
)

// NumClasses is the number of response classes; Class values are
// contiguous in [0, NumClasses) so they can index fixed-size arrays.
const NumClasses = 4

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassFalseNegative:
		return "false_negative"
	case ClassPhantom:
		return "phantom"
	case ClassCorruptDecode:
		return "corrupt_decode"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify grades one response against ground truth. The soundness bounds
// come from Response.MinPositives and Response.MaxPositives — the same
// helpers Knowledge.Apply infers from — so the auditor and the initiator's
// ledger can never disagree about what a response proves.
func Classify(bin []int, r query.Response, traits query.Traits, truth Truth) Class {
	k := 0
	for _, id := range bin {
		if truth.IsPositive(id) {
			k++
		}
	}
	return classify(bin, r, traits, truth, k)
}

// classify is Classify with the bin's true positive count precomputed.
func classify(bin []int, r query.Response, traits query.Traits, truth Truth, k int) Class {
	if r.Kind == query.Decoded {
		member := false
		for _, id := range bin {
			if id == r.DecodedID {
				member = true
				break
			}
		}
		if !member || !truth.IsPositive(r.DecodedID) {
			return ClassCorruptDecode
		}
	}
	if k < r.MinPositives() {
		return ClassPhantom
	}
	if k > r.MaxPositives(bin, traits) {
		return ClassFalseNegative
	}
	return ClassOK
}

// Invariant names a Knowledge invariant the auditor monitors.
type Invariant int

const (
	// InvariantBinSubset: every polled bin must be a subset of the
	// current candidate set — polling an already-resolved node wastes a
	// slot and signals a bookkeeping bug.
	InvariantBinSubset Invariant = iota
	// InvariantConfirmedMonotone: Confirmed never decreases.
	InvariantConfirmedMonotone
	// InvariantCandidatesMonotone: the candidate set never grows.
	InvariantCandidatesMonotone
	// InvariantLowerBound: on lossless substrates LowerBound ≤ true x.
	InvariantLowerBound
	// InvariantUpperBound: on lossless substrates UpperBound ≥ true x.
	InvariantUpperBound
)

// NumInvariants is the number of monitored invariants.
const NumInvariants = 5

// String implements fmt.Stringer.
func (i Invariant) String() string {
	switch i {
	case InvariantBinSubset:
		return "bin_subset"
	case InvariantConfirmedMonotone:
		return "confirmed_monotone"
	case InvariantCandidatesMonotone:
		return "candidates_monotone"
	case InvariantLowerBound:
		return "lower_bound"
	case InvariantUpperBound:
		return "upper_bound"
	default:
		return fmt.Sprintf("Invariant(%d)", int(i))
	}
}

// Violation records one invariant breach, anchored to the poll (index into
// the session's poll sequence) after which it was detected.
type Violation struct {
	Poll      int
	Invariant Invariant
	Detail    string
}

// Outcome grades one finished session's decision.
type Outcome int

const (
	// OutcomeCorrect: the decision matches ground truth.
	OutcomeCorrect Outcome = iota
	// OutcomeWrongLoss: the decision is wrong and a causal unsound poll
	// was identified — the substrate's loss or interference misled a
	// correctly-functioning algorithm.
	OutcomeWrongLoss
	// OutcomeWrongAlgorithm: the decision is wrong although every poll
	// response was sound — the algorithm itself mishandled the evidence.
	OutcomeWrongAlgorithm
	// OutcomeWrongUnattributed: the decision is wrong but the grader had
	// no poll record to attribute it with (decision-only grading over a
	// serial link, as in cmd/tcastmote's controller mode).
	OutcomeWrongUnattributed
)

// NumOutcomes is the number of session outcomes.
const NumOutcomes = 4

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCorrect:
		return "correct"
	case OutcomeWrongLoss:
		return "wrong_loss"
	case OutcomeWrongAlgorithm:
		return "wrong_algorithm"
	case OutcomeWrongUnattributed:
		return "wrong_unattributed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// PollRecord summarizes one graded poll.
type PollRecord struct {
	// BinSize is the polled group's size.
	BinSize int
	// Kind is the response the initiator observed.
	Kind query.Kind
	// TruePositives is the bin's ground-truth positive count.
	TruePositives int
	// Class is the soundness grade.
	Class Class
}

// Verdict is the auditor's judgement of one finished session.
type Verdict struct {
	// Decision is the algorithm's answer, Truth the ground-truth answer
	// to "x >= t?", and TrueX the true positive count.
	Decision bool
	Truth    bool
	TrueX    int
	// Outcome grades the decision; CausalPoll is the index of the first
	// unsound poll that can explain a wrong decision (-1 when none), and
	// CausalClass its grade (ClassOK when CausalPoll is -1).
	Outcome     Outcome
	CausalPoll  int
	CausalClass Class
	// Polls is the number of graded polls and Classes their partition.
	Polls   int
	Classes [NumClasses]int
	// Violations lists every Knowledge-invariant breach observed.
	Violations []Violation
	// Initiator and Nodes are the per-node channel-occupancy ledgers
	// (see Verdict.Energy). Nodes is sparse: only nodes that appeared in
	// a polled bin carry an entry, and Nodes.At reports the zero ledger
	// for the rest. It aliases the auditor's working account — read it
	// before the auditor is Reset for the next session.
	Initiator energy.SlotLedger
	Nodes     NodeLedgers
}

// Correct reports whether the decision matched ground truth.
func (v Verdict) Correct() bool { return v.Outcome == OutcomeCorrect }

// Metric names recorded by the auditor. Like the tcast_polls_total kind
// partition, each label set partitions its total exactly.
const (
	// MetricAuditPolls counts graded polls, partitioned by a class="..."
	// label.
	MetricAuditPolls = "tcast_audit_polls_total"
	// MetricAuditSessions counts graded sessions, partitioned by an
	// outcome="..." label.
	MetricAuditSessions = "tcast_audit_sessions_total"
	// MetricAuditViolations counts invariant breaches, partitioned by an
	// invariant="..." label.
	MetricAuditViolations = "tcast_audit_violations_total"
)

// Config configures an Auditor.
type Config struct {
	// Truth is the ground-truth oracle; nil discovers it from the
	// substrate at the root of the wrapped querier chain.
	Truth Truth
	// N is the participant population {0..N-1} and T the session's
	// threshold.
	N, T int
	// Metrics, when non-nil, receives the tcast_audit_* counters.
	Metrics *metrics.Registry
	// Lossless overrides substrate lossless detection: the Knowledge
	// bound invariants (LowerBound ≤ true x ≤ UpperBound) are only
	// checked on lossless substrates, where every response is sound by
	// construction. Nil asks the substrate (its Lossless method).
	Lossless *bool
}

// Auditor is the ground-truth grading middleware. Not safe for concurrent
// use; each session gets its own Auditor, like the other observability
// layers.
type Auditor struct {
	q        query.Querier
	truth    Truth
	n, t     int
	trueX    int
	lossless bool
	shadow   *query.Knowledge

	polls      []PollRecord
	classes    [NumClasses]int
	violations []Violation

	initiator energy.SlotLedger
	nodes     NodeLedgers

	verdict *Verdict

	mPolls      [NumClasses]*metrics.Counter
	mSessions   [NumOutcomes]*metrics.Counter
	mViolations [NumInvariants]*metrics.Counter
}

// New wraps q with a ground-truth auditor. When cfg.Truth is nil the
// substrate at the root of q's middleware chain must implement Truth;
// likewise cfg.Lossless defaults to the substrate's own Lossless report
// (false when it has none).
func New(q query.Querier, cfg Config) (*Auditor, error) {
	a := &Auditor{}
	if err := a.Reset(q, cfg); err != nil {
		return nil, err
	}
	return a, nil
}

// Reset re-targets an existing auditor at a fresh session, reusing its
// shadow Knowledge bitset, poll/violation slices, and the node account's
// map buckets. A pooled trial loop resets one auditor per worker instead
// of allocating O(N) state per session; after Reset the auditor is
// indistinguishable from a freshly New'd one, but any previously
// returned Verdict's Nodes account is invalidated.
func (a *Auditor) Reset(q query.Querier, cfg Config) error {
	if q == nil {
		return fmt.Errorf("audit: nil querier")
	}
	if cfg.N < 0 || cfg.T < 0 {
		return fmt.Errorf("audit: negative population n=%d or threshold t=%d", cfg.N, cfg.T)
	}
	root := query.Root(q)
	truth := cfg.Truth
	if truth == nil {
		var ok bool
		truth, ok = root.(Truth)
		if !ok {
			return fmt.Errorf("audit: substrate %T exposes no ground truth and none was supplied", root)
		}
	}
	lossless := false
	if cfg.Lossless != nil {
		lossless = *cfg.Lossless
	} else if _, ok := root.(interface{ Lossless() bool }); ok {
		// The bound invariants need every layer sound, not just the
		// substrate: a middleware that injects loss of its own (the
		// faults injector) sits above a lossless medium, and grading
		// LB <= x <= UB there would report spurious violations. Walk the
		// whole chain and let any layer that reports losslessness veto.
		lossless = true
		for walk := q; walk != nil; {
			if ll, ok := walk.(interface{ Lossless() bool }); ok && !ll.Lossless() {
				lossless = false
				break
			}
			w, ok := walk.(query.Wrapper)
			if !ok {
				break
			}
			walk = w.Unwrap()
		}
	}
	a.q = q
	a.truth = truth
	a.n, a.t = cfg.N, cfg.T
	a.lossless = lossless
	if a.shadow == nil {
		a.shadow = query.NewKnowledge(cfg.N, cfg.T)
	} else {
		a.shadow.Reset(cfg.N, cfg.T)
	}
	a.nodes.reset(cfg.N)
	a.polls = a.polls[:0]
	a.classes = [NumClasses]int{}
	a.violations = a.violations[:0]
	a.initiator = energy.SlotLedger{}
	a.verdict = nil
	// Counting true positives by scanning IsPositive over the population
	// is O(N) per session; substrates that already know their positive
	// count (fastsim.Channel, pollcast.Session expose Positives) answer
	// in O(1).
	a.trueX = 0
	if tc, ok := truth.(interface{ Positives() int }); ok {
		a.trueX = tc.Positives()
	} else {
		for id := 0; id < cfg.N; id++ {
			if truth.IsPositive(id) {
				a.trueX++
			}
		}
	}
	a.mPolls = [NumClasses]*metrics.Counter{}
	a.mSessions = [NumOutcomes]*metrics.Counter{}
	a.mViolations = [NumInvariants]*metrics.Counter{}
	if m := cfg.Metrics; m != nil {
		// Resolve every partition member up front so zero-valued series
		// still appear in dumps and the partitions visibly sum.
		for c := Class(0); int(c) < NumClasses; c++ {
			a.mPolls[c] = m.Counter(MetricAuditPolls, "class", c.String())
		}
		for o := Outcome(0); int(o) < NumOutcomes; o++ {
			a.mSessions[o] = m.Counter(MetricAuditSessions, "outcome", o.String())
		}
		for i := Invariant(0); int(i) < NumInvariants; i++ {
			a.mViolations[i] = m.Counter(MetricAuditViolations, "invariant", i.String())
		}
	}
	return nil
}

// TrueX returns the ground-truth positive count over {0..n-1}.
func (a *Auditor) TrueX() int { return a.trueX }

// Lossless reports whether the bound invariants are being checked.
func (a *Auditor) Lossless() bool { return a.lossless }

// Query implements query.Querier: forward the poll untouched, then grade
// the response against ground truth and fold it into the shadow ledger.
func (a *Auditor) Query(bin []int) query.Response {
	resp := a.q.Query(bin)
	a.grade(bin, resp)
	return resp
}

// Traits implements query.Querier.
func (a *Auditor) Traits() query.Traits { return a.q.Traits() }

// Unwrap implements query.Wrapper, so the auditor composes with the
// metrics and trace layers in any stacking order.
func (a *Auditor) Unwrap() query.Querier { return a.q }

// TraceRound forwards the algorithms' round-boundary hook and resets the
// shadow ledger's per-round lower bound, mirroring the session's own
// StartRound (core.runRound fires the hook before StartRound, with no
// polls in between, so the two ledgers stay in lockstep).
func (a *Auditor) TraceRound(round int) {
	a.shadow.StartRound()
	if rt, ok := a.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(round)
	}
}

// grade classifies one response, checks the Knowledge invariants around a
// shadow Apply, and accounts the poll's channel occupancy.
func (a *Auditor) grade(bin []int, resp query.Response) {
	idx := len(a.polls)
	traits := a.q.Traits()

	for _, id := range bin {
		if id < 0 || id >= a.n || !a.shadow.Candidates.Contains(id) {
			a.violate(idx, InvariantBinSubset,
				fmt.Sprintf("node %d polled outside the candidate set", id))
			break
		}
	}

	k := 0
	for _, id := range bin {
		if a.truth.IsPositive(id) {
			k++
		}
	}
	class := classify(bin, resp, traits, a.truth, k)

	prevConfirmed, prevCand := a.shadow.Confirmed, a.shadow.Candidates.Len()
	a.shadow.Apply(bin, resp, traits)
	if a.shadow.Confirmed < prevConfirmed {
		a.violate(idx, InvariantConfirmedMonotone,
			fmt.Sprintf("confirmed fell %d -> %d", prevConfirmed, a.shadow.Confirmed))
	}
	if now := a.shadow.Candidates.Len(); now > prevCand {
		a.violate(idx, InvariantCandidatesMonotone,
			fmt.Sprintf("candidates grew %d -> %d", prevCand, now))
	}
	if a.lossless {
		if lb := a.shadow.LowerBound(); lb > a.trueX {
			a.violate(idx, InvariantLowerBound,
				fmt.Sprintf("lower bound %d exceeds true x=%d", lb, a.trueX))
		}
		if ub := a.shadow.UpperBound(); ub < a.trueX {
			a.violate(idx, InvariantUpperBound,
				fmt.Sprintf("upper bound %d below true x=%d", ub, a.trueX))
		}
	}

	a.account(bin)
	a.classes[class]++
	if c := a.mPolls[class]; c != nil {
		c.Inc()
	}
	a.polls = append(a.polls, PollRecord{
		BinSize: len(bin), Kind: resp.Kind, TruePositives: k, Class: class,
	})
}

func (a *Auditor) violate(poll int, inv Invariant, detail string) {
	a.violations = append(a.violations, Violation{Poll: poll, Invariant: inv, Detail: detail})
	if c := a.mViolations[inv]; c != nil {
		c.Inc()
	}
}

// Finish grades the finished session's decision and returns the Verdict.
// Call it before trace.SpanQuerier.EndSession so the causal-poll
// attributes land on the closing session span.
func (a *Auditor) Finish(decision bool) Verdict {
	truth := a.trueX >= a.t
	outcome, causal := attribute(decision, truth, a.polls)
	v := Verdict{
		Decision:   decision,
		Truth:      truth,
		TrueX:      a.trueX,
		Outcome:    outcome,
		CausalPoll: causal,
		Polls:      len(a.polls),
		Classes:    a.classes,
		Violations: a.violations,
		Initiator:  a.initiator,
		Nodes:      a.nodes,
	}
	if causal >= 0 {
		v.CausalClass = a.polls[causal].Class
	}
	if c := a.mSessions[outcome]; c != nil {
		c.Inc()
	}
	a.verdict = &v
	return v
}

// attribute grades a decision against ground truth and identifies the
// first causal poll. The search is direction-aware: a wrong "x < t" needs
// hidden positives (false negatives, or a decode corrupted away from a
// real positive), while a wrong "x >= t" needs fabricated or corrupted
// activity. A wrong decision with no unsound poll in the right direction
// is the algorithm's own fault.
func attribute(decision, truth bool, polls []PollRecord) (Outcome, int) {
	if decision == truth {
		return OutcomeCorrect, -1
	}
	if !decision {
		for i, p := range polls {
			if p.Class == ClassFalseNegative {
				return OutcomeWrongLoss, i
			}
		}
		for i, p := range polls {
			if p.Class == ClassCorruptDecode {
				return OutcomeWrongLoss, i
			}
		}
	} else {
		for i, p := range polls {
			if p.Class == ClassPhantom || p.Class == ClassCorruptDecode {
				return OutcomeWrongLoss, i
			}
		}
	}
	return OutcomeWrongAlgorithm, -1
}

// TraceAttrs implements trace.Annotator: session spans closing above the
// auditor carry the grading summary, and — once Finish has run — the
// verdict with its causal poll.
func (a *Auditor) TraceAttrs() []trace.Attr {
	attrs := []trace.Attr{
		trace.IntAttr("audit_true_x", a.trueX),
		trace.BoolAttr("audit_lossless", a.lossless),
		trace.IntAttr("audit_false_negative_polls", a.classes[ClassFalseNegative]),
		trace.IntAttr("audit_phantom_polls", a.classes[ClassPhantom]),
		trace.IntAttr("audit_corrupt_polls", a.classes[ClassCorruptDecode]),
		trace.IntAttr("audit_violations", len(a.violations)),
	}
	if v := a.verdict; v != nil {
		attrs = append(attrs,
			trace.StringAttr("audit_outcome", v.Outcome.String()),
			trace.IntAttr("audit_causal_poll", v.CausalPoll),
		)
		if v.CausalPoll >= 0 {
			attrs = append(attrs, trace.StringAttr("audit_causal_class", v.CausalClass.String()))
		}
	}
	return attrs
}
