package audit

import (
	"strings"
	"testing"

	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/metrics"
	"tcast/internal/rng"
)

// counterSum adds up every series of one base counter name.
func counterSum(s metrics.Snapshot, base string) int64 {
	var sum int64
	for _, c := range s.Counters {
		if c.Name == base || strings.HasPrefix(c.Name, base+"{") {
			sum += int64(c.Value)
		}
	}
	return sum
}

// TestAuditMetricsInDumps runs audited sessions with the instrumented
// querier stacked underneath and checks the tcast_audit_* series appear in
// both dump formats with coherent partitions: every graded poll carries
// exactly one class and every instrumented poll exactly one kind, so the
// two partitions of the same poll stream must sum to the same total, and
// the outcome partition must sum to the session count.
func TestAuditMetricsInDumps(t *testing.T) {
	reg := metrics.New()
	root := rng.New(3)
	cfg := fastsim.DefaultConfig()
	cfg.MissProb = 0.15 // some sessions go wrong: populate non-ok classes
	const sessions = 16
	for i := 0; i < sessions; i++ {
		r := root.Split(uint64(i))
		ch, _ := fastsim.RandomPositives(24, 8, cfg, r.Split(1))
		aud, err := New(metrics.Wrap(ch, reg), Config{N: 24, T: 6, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := (core.TwoTBins{}).Run(aud, 24, 6, r.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		aud.Finish(res.Decision)
		metrics.FinishSession(aud)
	}

	s := reg.Snapshot()
	classSum := counterSum(s, MetricAuditPolls)
	kindSum := counterSum(s, metrics.MetricPolls)
	if classSum == 0 || classSum != kindSum {
		t.Fatalf("class partition sums to %d polls, kind partition to %d", classSum, kindSum)
	}
	if got := counterSum(s, MetricAuditSessions); got != sessions {
		t.Fatalf("outcome partition sums to %d sessions, want %d", got, sessions)
	}
	if got := counterSum(s, metrics.MetricSessions); got != sessions {
		t.Fatalf("instrumented sessions = %d, want %d", got, sessions)
	}

	var text, prom strings.Builder
	if err := metrics.WriteText(&text, s); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WritePrometheus(&prom, s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricAuditPolls + `{class="ok"}`,
		MetricAuditSessions + `{outcome="correct"}`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, text.String())
		}
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, prom.String())
		}
	}
	if want := "# TYPE " + MetricAuditPolls + " counter"; !strings.Contains(prom.String(), want) {
		t.Errorf("prometheus dump missing %q", want)
	}
}
