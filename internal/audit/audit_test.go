package audit

import (
	"strings"
	"testing"

	"tcast/internal/energy"
	"tcast/internal/faults"
	"tcast/internal/metrics"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// scripted is a querier that replays a fixed response sequence and carries
// its own ground truth, standing in for a (possibly lying) substrate.
type scripted struct {
	truth  map[int]bool
	traits query.Traits
	resps  []query.Response
	i      int
}

func (s *scripted) Query(bin []int) query.Response {
	r := s.resps[s.i]
	s.i++
	return r
}

func (s *scripted) Traits() query.Traits   { return s.traits }
func (s *scripted) IsPositive(id int) bool { return s.truth[id] }

func TestClassify(t *testing.T) {
	truth := TruthFunc(func(id int) bool { return id < 3 }) // 0,1,2 positive
	oneplus := query.Traits{Model: query.OnePlus}
	twoplus := query.Traits{Model: query.TwoPlus}
	twoplusCapture := query.Traits{Model: query.TwoPlus, CaptureEffect: true}
	cases := []struct {
		name   string
		bin    []int
		r      query.Response
		traits query.Traits
		want   Class
	}{
		{"empty over negatives", []int{3, 4}, query.Response{Kind: query.Empty}, oneplus, ClassOK},
		{"empty hides positives", []int{0, 4}, query.Response{Kind: query.Empty}, oneplus, ClassFalseNegative},
		{"active with positives", []int{0, 3}, query.Response{Kind: query.Active}, oneplus, ClassOK},
		{"active over negatives", []int{3, 4}, query.Response{Kind: query.Active}, oneplus, ClassPhantom},
		{"collision needs two", []int{0, 3}, query.Response{Kind: query.Collision}, twoplus, ClassPhantom},
		{"collision with two", []int{0, 1}, query.Response{Kind: query.Collision}, twoplus, ClassOK},
		{"decode of a positive", []int{0, 3}, query.Response{Kind: query.Decoded, DecodedID: 0}, twoplusCapture, ClassOK},
		{"decode of a negative", []int{0, 3}, query.Response{Kind: query.Decoded, DecodedID: 3}, twoplusCapture, ClassCorruptDecode},
		{"decode outside the bin", []int{0, 3}, query.Response{Kind: query.Decoded, DecodedID: 1}, twoplusCapture, ClassCorruptDecode},
		// A capture-free decode claims a singleton bin; two true
		// positives contradict it — positives were hidden.
		{"capture-free decode hides a positive", []int{0, 1}, query.Response{Kind: query.Decoded, DecodedID: 0}, twoplus, ClassFalseNegative},
		{"captured decode may hide positives", []int{0, 1}, query.Response{Kind: query.Decoded, DecodedID: 0}, twoplusCapture, ClassOK},
	}
	for _, c := range cases {
		if got := Classify(c.bin, c.r, c.traits, truth); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestAuditorGradesSession drives a scripted lossy session end to end:
// classification, causal attribution, and the per-node slot ledger.
func TestAuditorGradesSession(t *testing.T) {
	sub := &scripted{
		truth:  map[int]bool{0: true, 1: true, 2: true},
		traits: query.Traits{Model: query.OnePlus},
		resps: []query.Response{
			{Kind: query.Empty},  // [0 1]: both positive — radio false negative
			{Kind: query.Active}, // [2 3]: sound
			{Kind: query.Active}, // [4 5]: all-negative — phantom activity
		},
	}
	reg := metrics.New()
	aud, err := New(sub, Config{N: 6, T: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if aud.TrueX() != 3 {
		t.Fatalf("TrueX = %d, want 3", aud.TrueX())
	}
	if aud.Lossless() {
		t.Fatal("scripted substrate reported lossless")
	}
	aud.TraceRound(1)
	for _, bin := range [][]int{{0, 1}, {2, 3}, {4, 5}} {
		aud.Query(bin)
	}
	v := aud.Finish(false) // wrong: truth has x=3 >= t=2

	if v.Truth != true || v.Decision != false || v.Outcome != OutcomeWrongLoss {
		t.Fatalf("verdict = %+v", v)
	}
	if v.CausalPoll != 0 || v.CausalClass != ClassFalseNegative {
		t.Fatalf("causal poll = %d (%v), want 0 (false_negative)", v.CausalPoll, v.CausalClass)
	}
	want := [NumClasses]int{ClassOK: 1, ClassFalseNegative: 1, ClassPhantom: 1}
	if v.Classes != want {
		t.Fatalf("classes = %v, want %v", v.Classes, want)
	}
	if len(v.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", v.Violations)
	}

	// Ledger: initiator 3 polls tx + 3 reply windows rx; node 0 heard one
	// poll and replied once; node 3 heard one poll and idled one window.
	if v.Initiator != (energy.SlotLedger{Tx: 3, Rx: 3}) {
		t.Fatalf("initiator ledger = %+v", v.Initiator)
	}
	if v.Nodes.At(0) != (energy.SlotLedger{Rx: 1, Tx: 1}) || v.Nodes.At(3) != (energy.SlotLedger{Rx: 1, Idle: 1}) {
		t.Fatalf("node ledgers = %+v", v.Nodes)
	}
	rep := v.Energy(energy.CC2420())
	if rep.Initiator <= 0 || rep.PerNode[0] <= 0 {
		t.Fatalf("energy report not positive: %+v", rep)
	}

	// The audit metrics partition the graded polls and sessions.
	var classSum int64
	for c := Class(0); int(c) < NumClasses; c++ {
		classSum += reg.Counter(MetricAuditPolls, "class", c.String()).Value()
	}
	if classSum != 3 {
		t.Fatalf("audit poll counters sum to %d, want 3", classSum)
	}
	if got := reg.Counter(MetricAuditSessions, "outcome", OutcomeWrongLoss.String()).Value(); got != 1 {
		t.Fatalf("wrong_loss sessions = %d, want 1", got)
	}
}

// TestAuditorInvariantViolations: a lying lossless substrate must trip the
// Knowledge bound checks and the bin-subset check.
func TestAuditorInvariantViolations(t *testing.T) {
	yes := true
	sub := &scripted{
		truth:  map[int]bool{0: true},
		traits: query.Traits{Model: query.TwoPlus},
		resps: []query.Response{
			{Kind: query.Empty},     // [0]: hides the only positive
			{Kind: query.Empty},     // [1 2 3]: sound, but now UpperBound = 0 < x
			{Kind: query.Collision}, // [1 2]: excluded nodes re-polled; LowerBound = 2 > x
		},
	}
	aud, err := New(sub, Config{N: 4, T: 1, Lossless: &yes})
	if err != nil {
		t.Fatal(err)
	}
	if !aud.Lossless() {
		t.Fatal("lossless override ignored")
	}
	aud.Query([]int{0})
	aud.Query([]int{1, 2, 3})
	aud.Query([]int{1, 2})
	v := aud.Finish(true)

	got := map[Invariant]bool{}
	for _, viol := range v.Violations {
		got[viol.Invariant] = true
	}
	for _, want := range []Invariant{InvariantUpperBound, InvariantLowerBound, InvariantBinSubset} {
		if !got[want] {
			t.Errorf("missing violation %v in %v", want, v.Violations)
		}
	}
	if v.Violations[0].Poll != 1 || v.Violations[0].Invariant != InvariantUpperBound {
		t.Errorf("first violation = %+v, want upper_bound at poll 1", v.Violations[0])
	}
}

// TestAttributeDirections: causal search must respect the error direction —
// a false "x >= t" cannot be explained by a false negative, nor a false
// "x < t" by a phantom.
func TestAttributeDirections(t *testing.T) {
	fn := PollRecord{Class: ClassFalseNegative}
	ph := PollRecord{Class: ClassPhantom}
	ok := PollRecord{Class: ClassOK}
	cases := []struct {
		name     string
		decision bool
		truth    bool
		polls    []PollRecord
		outcome  Outcome
		causal   int
	}{
		{"correct", true, true, []PollRecord{fn, ph}, OutcomeCorrect, -1},
		{"undercount blamed on fn", false, true, []PollRecord{ok, ph, fn}, OutcomeWrongLoss, 2},
		{"undercount with only phantoms", false, true, []PollRecord{ph, ok}, OutcomeWrongAlgorithm, -1},
		{"overcount blamed on phantom", true, false, []PollRecord{fn, ph}, OutcomeWrongLoss, 1},
		{"overcount with only fns", true, false, []PollRecord{fn, ok}, OutcomeWrongAlgorithm, -1},
		{"wrong with clean polls", false, true, []PollRecord{ok, ok}, OutcomeWrongAlgorithm, -1},
	}
	for _, c := range cases {
		outcome, causal := attribute(c.decision, c.truth, c.polls)
		if outcome != c.outcome || causal != c.causal {
			t.Errorf("%s: attribute = (%v, %d), want (%v, %d)", c.name, outcome, causal, c.outcome, c.causal)
		}
	}
}

func TestGradeReplay(t *testing.T) {
	truth := TruthFunc(func(id int) bool { return id == 1 || id == 2 })
	traits := query.Traits{Model: query.OnePlus}
	polls := []ReplayPoll{
		{Bin: []int{0, 3}, Resp: query.Response{Kind: query.Empty}},  // sound
		{Bin: []int{1, 2}, Resp: query.Response{Kind: query.Empty}},  // missed both
		{Bin: []int{4, 5}, Resp: query.Response{Kind: query.Active}}, // phantom
	}
	v := GradeReplay(2, 2, truth, traits, polls, false)
	if v.Outcome != OutcomeWrongLoss || v.CausalPoll != 1 || v.CausalClass != ClassFalseNegative {
		t.Fatalf("verdict = %+v", v)
	}
	correct := GradeReplay(2, 2, truth, traits, polls[:1], true)
	if correct.Outcome != OutcomeCorrect || correct.CausalPoll != -1 {
		t.Fatalf("correct verdict = %+v", correct)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Add("a", Verdict{Outcome: OutcomeCorrect, Polls: 5, Classes: [NumClasses]int{ClassOK: 5}})
	c.Add("b", Verdict{
		Outcome: OutcomeWrongLoss, CausalPoll: 2, CausalClass: ClassFalseNegative, Polls: 3,
		Classes:    [NumClasses]int{ClassOK: 2, ClassFalseNegative: 1},
		Violations: []Violation{{Poll: 1, Invariant: InvariantBinSubset}},
	})
	c.AddDecision("mote-1", true, true)
	c.AddDecision("mote-2", true, false)

	s := c.Stats()
	if s.Sessions != 4 || s.Polls != 8 {
		t.Fatalf("sessions=%d polls=%d", s.Sessions, s.Polls)
	}
	if s.Outcomes[OutcomeCorrect] != 2 || s.Outcomes[OutcomeWrongLoss] != 1 || s.Outcomes[OutcomeWrongUnattributed] != 1 {
		t.Fatalf("outcomes = %v", s.Outcomes)
	}
	if s.Violations() != 1 || s.Accuracy() != 0.5 {
		t.Fatalf("violations=%d accuracy=%v", s.Violations(), s.Accuracy())
	}
	if len(s.Wrong) != 2 || s.Wrong[0].Session != "b" || s.Wrong[0].CausalPoll != 2 {
		t.Fatalf("wrong = %+v", s.Wrong)
	}

	sum := c.Summary()
	for _, want := range []string{"4 sessions", "wrong_loss=1", "false_negative=1", "causal poll 2", "mote-2"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	var empty Collector
	if empty.Stats().Accuracy() != 1 {
		t.Fatal("empty collector accuracy != 1")
	}
}

func TestNewDiscoversNothing(t *testing.T) {
	// A substrate with no ground truth must be rejected unless Truth is
	// supplied explicitly.
	q := &query.Counting{Q: &scripted{truth: map[int]bool{}, resps: []query.Response{{Kind: query.Empty}}}}
	if _, err := New(q, Config{N: 2, T: 1}); err != nil {
		t.Fatalf("discovery through Wrapper failed: %v", err)
	}
	type bare struct{ query.Querier }
	if _, err := New(bare{&query.Counting{}}, Config{N: 2, T: 1}); err == nil {
		t.Fatal("expected error for a substrate without ground truth")
	}
}

// losslessScripted is a scripted substrate that reports itself lossless,
// standing in for the packet-level medium with MissProb=0.
type losslessScripted struct{ scripted }

func (s *losslessScripted) Lossless() bool { return true }

func TestNewLosslessWalksWholeChain(t *testing.T) {
	mk := func() *losslessScripted {
		return &losslessScripted{scripted{
			truth: map[int]bool{0: true},
			resps: []query.Response{{Kind: query.Empty}},
		}}
	}

	// Bare lossless substrate: bound invariants on.
	a, err := New(mk(), Config{N: 2, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Lossless() {
		t.Fatal("lossless substrate must enable the bound invariants")
	}

	// An active fault injector above the same substrate can drop replies;
	// its Lossless()=false must veto even though the root is lossless.
	inj := faults.New(mk(), faults.Config{SkewProb: 0.5}, 2, rng.New(1))
	a, err = New(inj, Config{N: 2, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Lossless() {
		t.Fatal("active injector above a lossless substrate must stand the bound invariants down")
	}

	// A zero-config injector is transparent: losslessness survives.
	inj = faults.New(mk(), faults.Config{}, 2, rng.New(1))
	a, err = New(inj, Config{N: 2, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Lossless() {
		t.Fatal("inactive injector must preserve the substrate's losslessness")
	}
}
