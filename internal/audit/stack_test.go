package audit_test

import (
	"reflect"
	"strings"
	"testing"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/metrics"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/trace"
)

// buildOrder assembles the three observability layers over a fresh lossless
// fastsim channel in the given inner-to-outer order ('M' metrics, 'A' audit,
// 'S' span recorder) and runs one 2tBins session through the stack.
func buildOrder(t *testing.T, order string, seed uint64) (core.Result, *metrics.Registry, *trace.Trace, audit.Verdict) {
	t.Helper()
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(64, 12, fastsim.DefaultConfig(), r.Split(1))
	reg := metrics.New()
	b := trace.NewBuilder()

	var q query.Querier = ch
	var aud *audit.Auditor
	var sq *trace.SpanQuerier
	for _, layer := range order {
		switch layer {
		case 'M':
			q = metrics.Wrap(q, reg)
		case 'A':
			var err error
			aud, err = audit.New(q, audit.Config{N: 64, T: 8, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			q = aud
		case 'S':
			sq = trace.NewSpanQuerier(q, b)
			q = sq
		}
	}
	sq.StartSession("2tBins")
	res, err := (core.TwoTBins{}).Run(q, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	v := aud.Finish(res.Decision)
	sq.EndSession(trace.IntAttr("queries", res.Queries))
	metrics.FinishSession(q)
	return res, reg, b.Trace(), v
}

// TestThreeLayerStackOrderIndependent extends the two-layer composition
// contract to the full observability stack: metrics, audit, and span
// recording must each see every poll exactly once, agree on the session's
// numbers, and leave the algorithm's result bit-identical to a bare run —
// in all six stacking orders.
func TestThreeLayerStackOrderIndependent(t *testing.T) {
	const seed = 43

	// Reference run with no middleware at all.
	r := rng.New(seed)
	ch, _ := fastsim.RandomPositives(64, 12, fastsim.DefaultConfig(), r.Split(1))
	bare, err := (core.TwoTBins{}).Run(ch, 64, 8, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}

	orders := []string{"MAS", "MSA", "AMS", "ASM", "SMA", "SAM"}
	var firstVerdict audit.Verdict
	// Session-span attributes depend on which annotators sit below the
	// span layer, so traces are only bit-identical within the two groups.
	traces := map[bool]*trace.Trace{}
	for i, order := range orders {
		res, reg, tr, v := buildOrder(t, order, seed)

		if res != bare {
			t.Errorf("%s: result %+v diverges from bare %+v", order, res, bare)
		}

		// Metrics count each poll and session exactly once.
		var polls int64
		for k := query.Kind(0); int(k) < query.NumKinds; k++ {
			polls += reg.Counter(metrics.MetricPolls, "kind", k.String()).Value()
		}
		if polls != int64(bare.Queries) {
			t.Errorf("%s: metrics polls = %d, want %d", order, polls, bare.Queries)
		}
		if got := reg.Counter(metrics.MetricSessions).Value(); got != 1 {
			t.Errorf("%s: sessions = %d, want 1", order, got)
		}

		// The audit class partition covers the same polls exactly once.
		var classSum int64
		for c := audit.Class(0); int(c) < audit.NumClasses; c++ {
			classSum += reg.Counter(audit.MetricAuditPolls, "class", c.String()).Value()
		}
		if classSum != int64(bare.Queries) {
			t.Errorf("%s: audit class counters sum to %d, want %d", order, classSum, bare.Queries)
		}

		// The span layer records each poll exactly once.
		if a := trace.Analyze(tr); a.Polls != bare.Queries {
			t.Errorf("%s: trace polls = %d, want %d", order, a.Polls, bare.Queries)
		}

		// The verdict: lossless substrate, sound algorithm.
		if v.Outcome != audit.OutcomeCorrect || v.Polls != bare.Queries || len(v.Violations) != 0 {
			t.Errorf("%s: verdict = %+v, want correct/%d polls/no violations", order, v, bare.Queries)
		}
		if i == 0 {
			firstVerdict = v
		} else if v.TrueX != firstVerdict.TrueX || v.Classes != firstVerdict.Classes ||
			v.Initiator != firstVerdict.Initiator || !reflect.DeepEqual(v.Nodes, firstVerdict.Nodes) {
			t.Errorf("%s: verdict differs from %s's:\n%+v\nvs\n%+v", order, orders[0], v, firstVerdict)
		}

		// The session span carries the audit attributes exactly when the
		// auditor sits below the span layer (EndSession collects annotators
		// from the layers it wraps).
		audBelowSpan := strings.IndexByte(order, 'A') < strings.IndexByte(order, 'S')
		found := false
		for _, root := range tr.Roots {
			root.Walk(func(_ int, sp *trace.Span) {
				if _, ok := sp.Attr("audit_outcome"); ok {
					found = true
				}
			})
		}
		if found != audBelowSpan {
			t.Errorf("%s: audit span attrs present=%v, want %v", order, found, audBelowSpan)
		}
		if prev, ok := traces[audBelowSpan]; !ok {
			traces[audBelowSpan] = tr
		} else if d := trace.Diff(prev, tr); !d.Identical {
			t.Errorf("%s: trace differs within its group: %s", order, d)
		}
	}
}
