package audit

import (
	"sort"

	"tcast/internal/energy"
	"tcast/internal/sketch"
)

// NodeLedgers is the sparse per-node channel-occupancy account over a
// population of N nodes. The dense predecessor allocated N ledgers up
// front — 24 MB of zeroes per audited session at N=10^6 — even though a
// session only occupies the nodes its bins actually polled.
//
// The store is generation-stamped: node ids map to stable slots in an
// entry array through a persistent index that is never cleared, and each
// entry carries the generation that last touched it. Reset is a
// generation bump plus truncating the touched-slot list — no map clear,
// no bucket churn — so a recycled auditor accounts sessions with zero
// steady-state allocations even when a round polls the whole field
// (2tBins round 1 touches every candidate, which degenerates a
// clear-and-refill map into O(N) overflow-bucket traffic per trial).
//
// Untouched nodes implicitly hold the zero ledger; At reports them as
// such, so sparse and dense accounts are observationally identical.
type NodeLedgers struct {
	// N is the population size; ids outside [0, N) are never accounted.
	N int
	// gen is the current session's generation; entries stamped with an
	// older generation are logically absent.
	gen uint64
	// idx maps node id -> slot in entries. It persists across resets:
	// a node keeps its slot for the lifetime of the store.
	idx map[int]int32
	// entries holds one slot per node ever touched; a slot belongs to
	// the current session iff its gen matches.
	entries []nodeEntry
	// touched lists the slots stamped this generation, in touch order.
	touched []int32
}

type nodeEntry struct {
	gen    uint64
	id     int
	ledger energy.SlotLedger
}

// newNodeLedgers returns an empty account over n nodes.
func newNodeLedgers(n int) NodeLedgers {
	return NodeLedgers{N: n, gen: 1, idx: map[int]int32{}}
}

// reset re-targets the account at a population of n. It invalidates all
// current entries by bumping the generation; slots, index, and capacity
// are all kept.
func (nl *NodeLedgers) reset(n int) {
	nl.N = n
	nl.gen++
	if nl.idx == nil {
		nl.idx = map[int]int32{}
	}
	nl.touched = nl.touched[:0]
}

// ledgerFor returns a mutable ledger for node id, marking it touched in
// the current generation. Steady state (node seen in a prior session)
// allocates nothing; a node's first-ever touch claims a slot.
func (nl *NodeLedgers) ledgerFor(id int) *energy.SlotLedger {
	slot, ok := nl.idx[id]
	if !ok {
		slot = int32(len(nl.entries))
		nl.entries = append(nl.entries, nodeEntry{id: id})
		nl.idx[id] = slot
	}
	e := &nl.entries[slot]
	if e.gen != nl.gen {
		e.gen = nl.gen
		e.ledger = energy.SlotLedger{}
		nl.touched = append(nl.touched, slot)
	}
	return &e.ledger
}

// At returns node id's ledger; untouched nodes report the zero ledger.
func (nl NodeLedgers) At(id int) energy.SlotLedger {
	if slot, ok := nl.idx[id]; ok && nl.entries[slot].gen == nl.gen {
		return nl.entries[slot].ledger
	}
	return energy.SlotLedger{}
}

// Len returns the number of touched nodes.
func (nl NodeLedgers) Len() int { return len(nl.touched) }

// IDs returns the touched node ids in ascending order.
func (nl NodeLedgers) IDs() []int {
	return nl.AppendIDs(make([]int, 0, len(nl.touched)))
}

// AppendIDs appends the touched node ids to dst in ascending order and
// returns the extended slice — the allocation-free form for pooled
// report paths. The appended run matches the order every idset iterator
// (AppendMembers, ForEach, the ranked snapshot) yields ids in, so audit
// reports line up positionally with candidate-set walks at any scale.
// Only the appended portion is sorted; dst's existing contents are
// untouched.
func (nl NodeLedgers) AppendIDs(dst []int) []int {
	start := len(dst)
	for _, slot := range nl.touched {
		dst = append(dst, nl.entries[slot].id)
	}
	sort.Ints(dst[start:])
	return dst
}

// Dense materializes the account as one ledger per node — the dense
// shape energy.ObservedSession prices. It allocates O(N); call it only
// on report paths, never per-trial.
func (nl NodeLedgers) Dense() []energy.SlotLedger {
	out := make([]energy.SlotLedger, nl.N)
	for _, slot := range nl.touched {
		e := nl.entries[slot]
		if e.id >= 0 && e.id < nl.N {
			out[e.id] = e.ledger
		}
	}
	return out
}

// SlotSketch summarizes the population's per-node slot totals as a
// mergeable quantile sketch: every touched node contributes its
// rx+tx+idle slot count and the N-touched silent nodes contribute zeros,
// so quantiles are over the whole field, not just the polled part.
// Sketch bucket adds commute, so the summary is independent of touch
// order — the same population always renders the same bytes.
// Non-positive alpha selects sketch.DefaultAlpha.
func (nl NodeLedgers) SlotSketch(alpha float64) *sketch.Quantile {
	q := sketch.NewQuantile(alpha)
	nl.SlotSketchInto(q)
	return q
}

// SlotSketchInto folds the population's slot totals into an existing
// sketch — the allocation-free form for pooled callers.
func (nl NodeLedgers) SlotSketchInto(q *sketch.Quantile) {
	counted := 0
	for _, slot := range nl.touched {
		e := nl.entries[slot]
		if e.id < 0 || e.id >= nl.N {
			continue
		}
		counted++
		q.ObserveN(float64(e.ledger.Slots()), 1)
	}
	if silent := nl.N - counted; silent > 0 {
		q.ObserveN(0, uint64(silent))
	}
}
