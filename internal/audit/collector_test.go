package audit

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func wrongVerdict(causal int) Verdict {
	return Verdict{
		Decision: false, Truth: true, TrueX: 8,
		Outcome: OutcomeWrongLoss, CausalPoll: causal, CausalClass: ClassFalseNegative,
		Polls: 10,
	}
}

func correctVerdict() Verdict {
	return Verdict{Decision: true, Truth: true, TrueX: 8, Outcome: OutcomeCorrect, CausalPoll: -1, Polls: 10}
}

// TestAddAtFlushOrder: rows inserted out of order must come out of the
// dump in trial-index order, exactly as a serial Add loop would emit them.
func TestAddAtFlushOrder(t *testing.T) {
	serial := &Collector{}
	indexed := &Collector{}
	const trials = 9
	for i := 0; i < trials; i++ {
		v := correctVerdict()
		if i%2 == 0 {
			v = wrongVerdict(i)
		}
		serial.Add(fmt.Sprintf("trial=%d", i), v)
	}
	for _, i := range []int{4, 8, 0, 6, 2, 5, 1, 7, 3} {
		v := correctVerdict()
		if i%2 == 0 {
			v = wrongVerdict(i)
		}
		indexed.AddAt(i, fmt.Sprintf("trial=%d", i), v)
	}
	indexed.Flush()
	if got, want := indexed.Summary(), serial.Summary(); got != want {
		t.Fatalf("indexed dump differs from serial dump:\n--- serial ---\n%s--- indexed ---\n%s", want, got)
	}
}

// TestAddAtConcurrent folds verdicts from many goroutines (run under
// -race) and checks both the counters and the flushed row order.
func TestAddAtConcurrent(t *testing.T) {
	c := &Collector{}
	const trials = 100
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%10 == 0 {
				c.AddAt(i, fmt.Sprintf("trial=%d", i), wrongVerdict(i))
			} else {
				c.AddAt(i, fmt.Sprintf("trial=%d", i), correctVerdict())
			}
		}(i)
	}
	wg.Wait()
	c.Flush()
	s := c.Stats()
	if s.Sessions != trials || s.Polls != 10*trials {
		t.Fatalf("sessions=%d polls=%d", s.Sessions, s.Polls)
	}
	if len(s.Wrong) != trials/10 {
		t.Fatalf("wrong rows = %d, want %d", len(s.Wrong), trials/10)
	}
	for j, w := range s.Wrong {
		if want := fmt.Sprintf("trial=%d", j*10); w.Session != want {
			t.Fatalf("row %d is %q, want %q", j, w.Session, want)
		}
	}
}

// TestFlushBatches: indices restart every batch; per-batch flushing must
// keep rows grouped by batch, ordered within each.
func TestFlushBatches(t *testing.T) {
	c := &Collector{}
	for batch := 0; batch < 2; batch++ {
		for _, i := range []int{1, 0} {
			c.AddAt(i, fmt.Sprintf("batch=%d/trial=%d", batch, i), wrongVerdict(i))
		}
		c.Flush()
	}
	s := c.Stats()
	want := []string{"batch=0/trial=0", "batch=0/trial=1", "batch=1/trial=0", "batch=1/trial=1"}
	if len(s.Wrong) != len(want) {
		t.Fatalf("rows = %d, want %d", len(s.Wrong), len(want))
	}
	for j, w := range s.Wrong {
		if w.Session != want[j] {
			t.Fatalf("row %d is %q, want %q", j, w.Session, want[j])
		}
	}
}

func TestDiscardDropsPending(t *testing.T) {
	c := &Collector{}
	c.AddAt(0, "trial=0", wrongVerdict(0))
	c.Discard()
	c.Flush()
	if s := c.Stats(); len(s.Wrong) != 0 {
		t.Fatalf("discarded rows leaked: %+v", s.Wrong)
	}
}

func TestAddAtDuplicateIndexPanics(t *testing.T) {
	c := &Collector{}
	c.AddAt(3, "trial=3", wrongVerdict(0))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddAt index did not panic")
		}
	}()
	c.AddAt(3, "trial=3", wrongVerdict(0))
}

// TestVoidAccounting: voided sessions count separately from graded ones
// and show up in the summary, so sessions graded + voided always equals
// sessions started.
func TestVoidAccounting(t *testing.T) {
	c := &Collector{}
	c.Add("trial=0", correctVerdict())
	c.Void("trial=1")
	s := c.Stats()
	if s.Sessions != 1 || s.Voided != 1 {
		t.Fatalf("sessions=%d voided=%d, want 1/1", s.Sessions, s.Voided)
	}
	if s.Accuracy() != 1 {
		t.Fatalf("voided session polluted accuracy: %v", s.Accuracy())
	}
	if !strings.Contains(c.Summary(), "voided: 1") {
		t.Fatalf("summary missing voided line:\n%s", c.Summary())
	}
}
