package audit_test

import (
	"testing"

	"tcast/internal/audit"
	"tcast/internal/core"
	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
)

// TestLosslessBoundsProperty is the Knowledge soundness property test: on a
// lossless substrate every algorithm's Knowledge must satisfy
// LowerBound <= true x <= UpperBound after every poll, keep Confirmed and
// the candidate set monotone, poll only candidates — and decide correctly.
// The auditor checks all of that per poll, so the property reduces to "zero
// violations and a correct outcome" across randomized n/t/x grids, all
// three lossless channel configurations, and every tcast algorithm
// (BimodalDetector is estimation-only and carries no Knowledge).
func TestLosslessBoundsProperty(t *testing.T) {
	const trials = 45
	root := rng.New(0xA0D17)
	for trial := 0; trial < trials; trial++ {
		r := root.Split(uint64(trial))
		n := 2 + int(r.Intn(120))
		th := 1 + int(r.Intn(n))
		x := int(r.Intn(n + 1))

		var cfg fastsim.Config
		var cfgName string
		switch trial % 3 {
		case 0:
			cfg, cfgName = fastsim.DefaultConfig(), "1+"
		case 1:
			cfg, cfgName = fastsim.TwoPlusConfig(), "2+capture"
		case 2:
			// The idealized 2+ radio: a decode proves a singleton bin.
			cfg = fastsim.Config{Model: query.TwoPlus, Capture: fastsim.NoCapture()}
			cfgName = "2+ideal"
		}
		ch, _ := fastsim.RandomPositives(n, x, cfg, r.Split(1))

		algorithms := []core.Algorithm{
			core.TwoTBins{},
			core.ExpIncrease{},
			core.ExpIncrease{Variant: core.ExpPauseAndContinue},
			core.ABNS{P0: 1},
			core.ABNS{P0: 2},
			core.ProbABNS{},
			core.Oracle{Truth: ch},
		}
		for ai, alg := range algorithms {
			aud, err := audit.New(ch, audit.Config{N: n, T: th})
			if err != nil {
				t.Fatal(err)
			}
			if !aud.Lossless() {
				t.Fatalf("%s channel not detected as lossless", cfgName)
			}
			res, err := alg.Run(aud, n, th, r.Split(uint64(2+ai)))
			if err != nil {
				t.Fatalf("%s n=%d t=%d x=%d cfg=%s: %v", alg.Name(), n, th, x, cfgName, err)
			}
			v := aud.Finish(res.Decision)
			if len(v.Violations) != 0 {
				t.Errorf("%s n=%d t=%d x=%d cfg=%s: invariant violations %v",
					alg.Name(), n, th, x, cfgName, v.Violations)
			}
			if v.Outcome != audit.OutcomeCorrect {
				t.Errorf("%s n=%d t=%d x=%d cfg=%s: outcome %v (decision=%v truth=%v)",
					alg.Name(), n, th, x, cfgName, v.Outcome, v.Decision, v.Truth)
			}
		}
	}
}
