package audit

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tcast/internal/query"
)

// WrongDecision names one wrongly-decided session and its causal poll —
// the row format of the accuracy-breakdown table.
type WrongDecision struct {
	// Session labels the session (algorithm, parameters, trial index).
	Session string
	Outcome Outcome
	// CausalPoll is the index of the first unsound poll explaining the
	// error, -1 when unattributed.
	CausalPoll  int
	CausalClass Class
}

// Collector aggregates verdicts across a campaign. All methods are safe
// for concurrent use. The counters are commutative, so concurrent trials
// may fold verdicts in any arrival order; only the wrong-decision rows are
// order-sensitive. Serial callers append them directly with Add; parallel
// trial pools use AddAt with the trial index, then Flush once the batch
// drains, so the dump lists rows in trial order regardless of worker
// count.
type Collector struct {
	mu         sync.Mutex
	sessions   int
	polls      int
	voided     int
	outcomes   [NumOutcomes]int
	classes    [NumClasses]int
	invariants [NumInvariants]int
	wrong      []WrongDecision
	pending    map[int]WrongDecision
}

// Add folds one session's verdict into the collector.
func (c *Collector) Add(session string, v Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fold(v)
	if v.Outcome != OutcomeCorrect {
		c.wrong = append(c.wrong, WrongDecision{
			Session: session, Outcome: v.Outcome,
			CausalPoll: v.CausalPoll, CausalClass: v.CausalClass,
		})
	}
}

// AddAt folds the verdict of the trial at index i. Counters fold
// immediately; a wrong-decision row is buffered under i and only joins
// the dump when Flush splices the batch in index order. Indices must be
// unique within a batch (they are trial indices); reusing one panics.
func (c *Collector) AddAt(i int, session string, v Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fold(v)
	if v.Outcome != OutcomeCorrect {
		if _, dup := c.pending[i]; dup {
			panic(fmt.Sprintf("audit: AddAt(%d) called twice in one batch", i))
		}
		if c.pending == nil {
			c.pending = make(map[int]WrongDecision)
		}
		c.pending[i] = WrongDecision{
			Session: session, Outcome: v.Outcome,
			CausalPoll: v.CausalPoll, CausalClass: v.CausalClass,
		}
	}
}

// fold accumulates the commutative counters; callers hold c.mu.
func (c *Collector) fold(v Verdict) {
	c.sessions++
	c.polls += v.Polls
	c.outcomes[v.Outcome]++
	for class, n := range v.Classes {
		c.classes[class] += n
	}
	for _, viol := range v.Violations {
		c.invariants[viol.Invariant]++
	}
}

// Flush splices the rows buffered by AddAt into the dump in ascending
// trial-index order. Call it after each trial batch drains — indices
// restart at zero every batch, so flushing late would collide.
func (c *Collector) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	idxs := make([]int, 0, len(c.pending))
	for i := range c.pending {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		c.wrong = append(c.wrong, c.pending[i])
	}
	c.pending = nil
}

// Discard drops the rows buffered by AddAt without emitting them — the
// error path: when a batch fails, the buffered subset is
// scheduling-dependent, so keeping it would make the dump
// nondeterministic.
func (c *Collector) Discard() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = nil
}

// Void records a session that was started (its polls were graded live)
// but never reached a decision — the algorithm errored out — so there is
// no verdict to fold. Voided sessions keep the session accounting honest:
// sessions graded plus sessions voided equals sessions started.
func (c *Collector) Void(session string) {
	_ = session // voided sessions are counted, not listed
	c.mu.Lock()
	defer c.mu.Unlock()
	c.voided++
}

// AddDecision grades a session from its decision alone — the wire-only
// path (cmd/tcastmote's controller cannot see the remote initiator's
// polls). Wrong decisions are counted but necessarily unattributed.
func (c *Collector) AddDecision(session string, decision, truth bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions++
	if decision == truth {
		c.outcomes[OutcomeCorrect]++
		return
	}
	c.outcomes[OutcomeWrongUnattributed]++
	c.wrong = append(c.wrong, WrongDecision{
		Session: session, Outcome: OutcomeWrongUnattributed, CausalPoll: -1,
	})
}

// Stats is a consistent snapshot of a Collector.
type Stats struct {
	Sessions int
	Polls    int
	// Voided counts sessions started but never decided (the algorithm
	// errored before a decision); they are excluded from Sessions and the
	// outcome counts.
	Voided     int
	Outcomes   [NumOutcomes]int
	Classes    [NumClasses]int
	Invariants [NumInvariants]int
	// Wrong lists every wrongly-decided session in insertion order.
	Wrong []WrongDecision
}

// Stats returns a snapshot. Rows still buffered by AddAt are not
// included; Flush first to see a batch in progress.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Sessions:   c.sessions,
		Polls:      c.polls,
		Voided:     c.voided,
		Outcomes:   c.outcomes,
		Classes:    c.classes,
		Invariants: c.invariants,
		Wrong:      append([]WrongDecision(nil), c.wrong...),
	}
}

// Violations returns the total invariant breaches.
func (s Stats) Violations() int {
	total := 0
	for _, n := range s.Invariants {
		total += n
	}
	return total
}

// Accuracy returns the fraction of correctly-decided sessions (1 when no
// session was graded).
func (s Stats) Accuracy() float64 {
	if s.Sessions == 0 {
		return 1
	}
	return float64(s.Outcomes[OutcomeCorrect]) / float64(s.Sessions)
}

// maxWrongListed bounds the wrong-decision rows Summary prints; the full
// list stays available via Stats.
const maxWrongListed = 20

// Summary renders the campaign's accuracy breakdown as a text block — the
// audit counterpart of the metrics dump.
func (c *Collector) Summary() string {
	s := c.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d sessions, %d polls, accuracy %.2f%%\n",
		s.Sessions, s.Polls, 100*s.Accuracy())
	if s.Voided > 0 {
		fmt.Fprintf(&b, "  voided: %d sessions errored before a decision\n", s.Voided)
	}
	fmt.Fprintf(&b, "  outcomes:")
	for o := Outcome(0); int(o) < NumOutcomes; o++ {
		fmt.Fprintf(&b, " %s=%d", o, s.Outcomes[o])
	}
	fmt.Fprintf(&b, "\n  poll classes:")
	for cl := Class(0); int(cl) < NumClasses; cl++ {
		fmt.Fprintf(&b, " %s=%d", cl, s.Classes[cl])
	}
	fmt.Fprintf(&b, "\n  invariant violations: %d", s.Violations())
	if s.Violations() > 0 {
		for i := Invariant(0); int(i) < NumInvariants; i++ {
			if s.Invariants[i] > 0 {
				fmt.Fprintf(&b, " %s=%d", i, s.Invariants[i])
			}
		}
	}
	b.WriteByte('\n')
	if len(s.Wrong) > 0 {
		fmt.Fprintf(&b, "  wrong decisions:\n")
		for i, w := range s.Wrong {
			if i == maxWrongListed {
				fmt.Fprintf(&b, "    ... and %d more\n", len(s.Wrong)-maxWrongListed)
				break
			}
			if w.CausalPoll >= 0 {
				fmt.Fprintf(&b, "    %s: %s, causal poll %d (%s)\n",
					w.Session, w.Outcome, w.CausalPoll, w.CausalClass)
			} else {
				fmt.Fprintf(&b, "    %s: %s, no causal poll\n", w.Session, w.Outcome)
			}
		}
	}
	return b.String()
}

// ReplayPoll is one recorded poll of a session graded after the fact.
type ReplayPoll struct {
	Bin  []int
	Resp query.Response
}

// GradeReplay grades a finished session from its poll record — the path
// for substrates that cannot host the middleware (the emulated mote
// testbed replays the initiator's poll log). It applies exactly the same
// classification and attribution as the live Auditor; it does not check
// Knowledge invariants or fill slot ledgers, because the replay does not
// carry the initiator's internal state.
func GradeReplay(t, trueX int, truth Truth, traits query.Traits, polls []ReplayPoll, decision bool) Verdict {
	v := Verdict{
		Decision:   decision,
		Truth:      trueX >= t,
		TrueX:      trueX,
		CausalPoll: -1,
		Polls:      len(polls),
	}
	recs := make([]PollRecord, len(polls))
	for i, p := range polls {
		k := 0
		for _, id := range p.Bin {
			if truth.IsPositive(id) {
				k++
			}
		}
		class := classify(p.Bin, p.Resp, traits, truth, k)
		recs[i] = PollRecord{BinSize: len(p.Bin), Kind: p.Resp.Kind, TruePositives: k, Class: class}
		v.Classes[class]++
	}
	v.Outcome, v.CausalPoll = attribute(decision, v.Truth, recs)
	if v.CausalPoll >= 0 {
		v.CausalClass = recs[v.CausalPoll].Class
	}
	return v
}
