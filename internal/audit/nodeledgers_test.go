package audit

import (
	"reflect"
	"testing"

	"tcast/internal/energy"
	"tcast/internal/fastsim"
	"tcast/internal/query"
	"tcast/internal/rng"
	"tcast/internal/sketch"
)

func scriptedSession() *scripted {
	return &scripted{
		truth:  map[int]bool{0: true, 1: true, 2: true},
		traits: query.Traits{Model: query.OnePlus},
		resps: []query.Response{
			{Kind: query.Empty},
			{Kind: query.Active},
			{Kind: query.Active},
		},
	}
}

// TestSparseLedgerMatchesDense pins the sparse account to the dense
// semantics: At reports untouched nodes as zero ledgers, Dense
// reconstructs exactly the array the old dense auditor built, and the
// verdict's energy report is unchanged.
func TestSparseLedgerMatchesDense(t *testing.T) {
	aud, err := New(scriptedSession(), Config{N: 6, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range [][]int{{0, 1}, {2, 3}, {4, 5}} {
		aud.Query(bin)
	}
	v := aud.Finish(false)

	wantDense := []energy.SlotLedger{
		{Rx: 1, Tx: 1}, {Rx: 1, Tx: 1}, {Rx: 1, Tx: 1},
		{Rx: 1, Idle: 1}, {Rx: 1, Idle: 1}, {Rx: 1, Idle: 1},
	}
	if got := v.Nodes.Dense(); !reflect.DeepEqual(got, wantDense) {
		t.Fatalf("Dense() = %+v, want %+v", got, wantDense)
	}
	for id, want := range wantDense {
		if got := v.Nodes.At(id); got != want {
			t.Errorf("At(%d) = %+v, want %+v", id, got, want)
		}
	}
	if got := v.Nodes.At(99); got != (energy.SlotLedger{}) {
		t.Errorf("At(untouched) = %+v, want zero", got)
	}
	if ids := v.Nodes.IDs(); !reflect.DeepEqual(ids, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("IDs() = %v", ids)
	}
	rep := v.Energy(energy.CC2420())
	if len(rep.PerNode) != 6 || rep.PerNode[0] <= 0 {
		t.Fatalf("energy report: %+v", rep)
	}
}

// TestAuditorResetEquivalence: a Reset-recycled auditor must grade a
// session identically to a freshly constructed one — same verdict, same
// ledgers, same sketch bytes.
func TestAuditorResetEquivalence(t *testing.T) {
	run := func(a *Auditor) Verdict {
		for _, bin := range [][]int{{0, 1}, {2, 3}, {4, 5}} {
			a.Query(bin)
		}
		return a.Finish(false)
	}
	fresh, err := New(scriptedSession(), Config{N: 6, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh)
	wantSketch := want.Nodes.SlotSketch(0.01).String()

	pooled, err := New(scriptedSession(), Config{N: 9, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the pooled auditor with a different-shaped session first.
	pooled.Query([]int{7, 8})
	pooled.Finish(true)
	if err := pooled.Reset(scriptedSession(), Config{N: 6, T: 2}); err != nil {
		t.Fatal(err)
	}
	got := run(pooled)
	if got.Decision != want.Decision || got.Truth != want.Truth || got.TrueX != want.TrueX ||
		got.Outcome != want.Outcome || got.CausalPoll != want.CausalPoll ||
		got.Polls != want.Polls || got.Classes != want.Classes ||
		got.Initiator != want.Initiator {
		t.Fatalf("recycled verdict differs:\n got %+v\nwant %+v", got, want)
	}
	// The recycled store sits at a later generation and may hold stale
	// slots from the dirty session, so compare observationally.
	if !reflect.DeepEqual(got.Nodes.Dense(), want.Nodes.Dense()) {
		t.Fatalf("recycled node account differs:\n got %+v\nwant %+v", got.Nodes.Dense(), want.Nodes.Dense())
	}
	if !reflect.DeepEqual(got.Nodes.IDs(), want.Nodes.IDs()) {
		t.Fatalf("recycled touched set differs:\n got %v\nwant %v", got.Nodes.IDs(), want.Nodes.IDs())
	}
	if gotSketch := got.Nodes.SlotSketch(0.01).String(); gotSketch != wantSketch {
		t.Fatalf("recycled population sketch differs:\n got %q\nwant %q", gotSketch, wantSketch)
	}
}

// TestSlotSketchCoversPopulation: the population sketch summarizes all N
// nodes — the touched ones by their slot totals, the silent majority as
// zeros — in memory independent of N.
func TestSlotSketchCoversPopulation(t *testing.T) {
	nl := newNodeLedgers(1000)
	*nl.ledgerFor(3) = energy.SlotLedger{Rx: 2, Tx: 1}
	*nl.ledgerFor(700) = energy.SlotLedger{Rx: 4, Idle: 4}
	q := nl.SlotSketch(0.01)
	if q.Count() != 1000 {
		t.Fatalf("sketch count %d, want 1000", q.Count())
	}
	if got := q.Value(0.5); got != 0 {
		t.Errorf("median %v, want 0 (silent majority)", got)
	}
	if got := q.Value(1); got < 7.9 || got > 8.1 {
		t.Errorf("max quantile %v, want ~8", got)
	}
	if q.Buckets() > 3 {
		t.Errorf("buckets %d for 2 distinct totals + zeros", q.Buckets())
	}
	// SlotSketchInto folds into an existing sketch without allocating.
	q2 := sketch.NewQuantile(0.01)
	nl.SlotSketchInto(q2)
	nl.SlotSketchInto(q2)
	if q2.Count() != 2000 {
		t.Fatalf("into-count %d, want 2000", q2.Count())
	}
}

// TestTrueCountFastPath: a truth oracle exposing Positives() answers the
// true-x scan in O(1) — and is trusted over a per-id scan.
func TestTrueCountFastPath(t *testing.T) {
	r := rng.New(3)
	ch, _ := fastsim.RandomPositives(500, 42, fastsim.Config{Model: query.OnePlus}, r)
	aud, err := New(ch, Config{N: 500, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	if aud.TrueX() != 42 {
		t.Fatalf("TrueX = %d, want 42", aud.TrueX())
	}
	// The scripted substrate has no Positives method: the scan path.
	sc := scriptedSession()
	aud2, err := New(sc, Config{N: 6, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if aud2.TrueX() != 3 {
		t.Fatalf("scan TrueX = %d, want 3", aud2.TrueX())
	}
}
