package audit

import (
	"tcast/internal/energy"
	"tcast/internal/timing"
)

// This file is the channel-accounting half of the auditor: every poll is
// charged to the nodes it occupied, in slots, from the auditor's
// ground-truth vantage point. The analytical models in internal/energy
// assume a schedule; the ledger instead bills what each radio actually did
// in the audited session — which bins a node was polled in and whether it
// truly replied — and energy.ObservedSession prices the slots.

// account charges one poll: the initiator broadcasts the poll (tx) and
// listens through the reply window (rx); every bin member receives the
// poll (rx) and then either replies (tx, true positives) or idle-listens
// through the reply window (negatives). Nodes outside the bin sleep and
// are charged nothing.
func (a *Auditor) account(bin []int) {
	a.initiator.Tx++
	a.initiator.Rx++
	for _, id := range bin {
		if id < 0 || id >= a.nodes.N {
			continue
		}
		l := a.nodes.ledgerFor(id)
		l.Rx++
		if a.truth.IsPositive(id) {
			l.Tx++
		} else {
			l.Idle++
		}
	}
}

// Energy prices the verdict's slot ledgers with the 802.15.4 air times:
// poll frames on the downlink, ACK-length replies on the uplink, and the
// reply window for idle listening. The initiator's tx slots are poll
// broadcasts while a participant's are replies, so the two sides are
// priced separately.
func (v Verdict) Energy(m energy.Model) energy.Report {
	pollAir := timing.FrameAirtime(3)
	ackAir := timing.AckAirtime()
	rep := energy.ObservedSession(m, ackAir, pollAir, ackAir, energy.SlotLedger{}, v.Nodes.Dense())
	rep.Initiator = energy.ObservedSession(m, pollAir, ackAir, ackAir, v.Initiator, nil).Initiator
	return rep
}
