package audit

import (
	"reflect"
	"testing"
)

// TestAppendIDsPreservesPrefix: AppendIDs sorts only the appended run,
// matching the ascending order of the candidate-set iterators.
func TestAppendIDsPreservesPrefix(t *testing.T) {
	nl := newNodeLedgers(100)
	for _, id := range []int{42, 7, 99, 7, 0} {
		nl.ledgerFor(id)
	}
	got := nl.AppendIDs([]int{-5, -1})
	want := []int{-5, -1, 0, 7, 42, 99}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendIDs = %v, want %v", got, want)
	}
	if ids := nl.IDs(); !reflect.DeepEqual(ids, []int{0, 7, 42, 99}) {
		t.Fatalf("IDs = %v", ids)
	}
}
