package metrics

import (
	"tcast/internal/query"
)

// Default bucket shapes for the querier instruments. Poll counts and bin
// sizes are power-of-two up to well beyond the paper's n=128 scale;
// the 2t-bins worst case at n=128, t=16 stays under 128 polls.
var (
	// SessionBuckets bounds per-session totals (polls, slots, nodes).
	SessionBuckets = ExponentialBuckets(1, 2, 14) // 1 .. 8192
	// BinSizeBuckets bounds per-poll group sizes.
	BinSizeBuckets = ExponentialBuckets(1, 2, 11) // 1 .. 1024
	// TimeBuckets bounds wall-clock durations in seconds, 100 µs .. ~53 min.
	TimeBuckets = ExponentialBuckets(1e-4, 2, 25)
)

// Metric names recorded by InstrumentedQuerier, in the paper's cost-model
// vocabulary: a poll is one group query (the paper's query/slot cost unit),
// and a node-poll pair is one participant kept listening for one poll (the
// paper's listener-energy proxy).
const (
	// MetricPolls counts group polls, partitioned by response kind via a
	// kind="..." label. The per-kind counters always sum to the total
	// poll count because the kind partition is query.KindCounts.
	MetricPolls = "tcast_polls_total"
	// MetricNodesPolled counts node-poll pairs (sum of bin sizes).
	MetricNodesPolled = "tcast_nodes_polled_total"
	// MetricSessions counts completed query sessions (Finish calls).
	MetricSessions = "tcast_sessions_total"
	// MetricBinSize is the per-poll group size distribution.
	MetricBinSize = "tcast_bin_size"
	// MetricSessionPolls is the per-session poll/slot total distribution
	// (one RCD slot per group poll).
	MetricSessionPolls = "tcast_session_polls"
	// MetricSessionNodes is the per-session node-poll (energy) total
	// distribution.
	MetricSessionNodes = "tcast_session_nodes_polled"
)

// InstrumentedQuerier is middleware over query.Querier (mirroring
// trace.Recorder) that records every group poll into a Registry: per-poll
// response kinds and bin sizes as they happen, and per-session
// query/slot/energy totals when Finish is called. It works on any
// substrate — fastsim channel, packet radio, or emulated mote — because it
// only sees the Querier interface.
//
// The wrapper consumes no randomness and never alters bins or responses,
// so an instrumented run is bit-identical to an uninstrumented one.
// Metric handles are resolved at construction; the per-poll path is pure
// atomic updates and safe to use from concurrently running sessions (each
// session holds its own InstrumentedQuerier, like trace.Recorder).
type InstrumentedQuerier struct {
	q     query.Querier
	polls [query.NumKinds]*Counter
	nodes *Counter

	binSize      *Histogram
	sessionPolls *Histogram
	sessionNodes *Histogram
	sessions     *Counter

	kinds     query.KindCounts
	sessNodes int
}

// NewInstrumentedQuerier wraps q, recording into m (which must be
// non-nil; Wrap is the nil-safe path). A nil q is allowed for out-of-band
// recording via Record — e.g. replaying a mote trace — but such a wrapper
// must not be used as a Querier.
func NewInstrumentedQuerier(q query.Querier, m *Registry) *InstrumentedQuerier {
	iq := &InstrumentedQuerier{
		q:            q,
		nodes:        m.Counter(MetricNodesPolled),
		sessions:     m.Counter(MetricSessions),
		binSize:      m.Histogram(MetricBinSize, BinSizeBuckets),
		sessionPolls: m.Histogram(MetricSessionPolls, SessionBuckets),
		sessionNodes: m.Histogram(MetricSessionNodes, SessionBuckets),
	}
	for k := query.Kind(0); int(k) < query.NumKinds; k++ {
		iq.polls[k] = m.Counter(MetricPolls, "kind", k.String())
	}
	return iq
}

// Wrap returns q instrumented against m, or q unchanged when m is nil —
// the hook the experiment harness uses so uninstrumented runs pay nothing.
func Wrap(q query.Querier, m *Registry) query.Querier {
	if m == nil {
		return q
	}
	return NewInstrumentedQuerier(q, m)
}

// Query implements query.Querier.
func (iq *InstrumentedQuerier) Query(bin []int) query.Response {
	resp := iq.q.Query(bin)
	iq.Record(resp.Kind, len(bin))
	return resp
}

// Record tallies one poll outcome observed out-of-band — a trace replayed
// from a substrate that does not expose its querier, like the emulated
// mote testbed — using the exact same instruments as Query.
func (iq *InstrumentedQuerier) Record(kind query.Kind, binSize int) {
	iq.polls[kind].Inc()
	iq.nodes.Add(int64(binSize))
	iq.binSize.Observe(float64(binSize))
	iq.kinds.Observe(kind)
	iq.sessNodes += binSize
}

// Traits implements query.Querier.
func (iq *InstrumentedQuerier) Traits() query.Traits { return iq.q.Traits() }

// Unwrap implements query.Wrapper, so the instrumented querier composes
// with other middleware (the trace span recorder) in either stacking
// order: chain-walking helpers find each layer wherever it sits.
func (iq *InstrumentedQuerier) Unwrap() query.Querier { return iq.q }

// TraceRound forwards the algorithms' round-boundary hook to the wrapped
// querier. Without this, stacking the metrics layer outside a trace span
// recorder would swallow round spans.
func (iq *InstrumentedQuerier) TraceRound(round int) {
	if rt, ok := iq.q.(interface{ TraceRound(round int) }); ok {
		rt.TraceRound(round)
	}
}

// Session returns the kind partition and node-poll total of the polls seen
// since construction (or the last Finish).
func (iq *InstrumentedQuerier) Session() (query.KindCounts, int) {
	return iq.kinds, iq.sessNodes
}

// Finish records the session's totals — polls (= RCD slots) and node-poll
// pairs (the listener-energy proxy) — into the session histograms and
// resets the session tallies so the wrapper can be reused.
func (iq *InstrumentedQuerier) Finish() {
	iq.sessions.Inc()
	iq.sessionPolls.Observe(float64(iq.kinds.Total()))
	iq.sessionNodes.Observe(float64(iq.sessNodes))
	iq.kinds = query.KindCounts{}
	iq.sessNodes = 0
}

// FinishSession ends the session on the first InstrumentedQuerier found
// in q's middleware chain and is a no-op when there is none — the
// counterpart of Wrap. Walking the chain (rather than type-asserting q
// itself) means callers may stack further middleware, such as the trace
// span recorder, outside the instrumented querier without losing their
// session totals.
func FinishSession(q query.Querier) {
	for q != nil {
		if iq, ok := q.(*InstrumentedQuerier); ok {
			iq.Finish()
			return
		}
		w, ok := q.(query.Wrapper)
		if !ok {
			return
		}
		q = w.Unwrap()
	}
}
