package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
)

// WriteText writes an expvar-style human-readable dump of the registry:
// one "name value" line per counter and gauge, and a block per histogram
// with count, sum, mean and the cumulative bucket counts.
func WriteText(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, int64(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%g mean=%.3f\n", h.Name, h.Count, h.Sum, mean); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "  le=%s %d\n", le, b.Count); err != nil {
				return err
			}
		}
	}
	for _, sm := range s.Summaries {
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%g min=%g max=%g\n", sm.Name, sm.Count, sm.Sum, sm.Min, sm.Max); err != nil {
			return err
		}
		for _, qp := range sm.Quantiles {
			if _, err := fmt.Fprintf(w, "  q=%g %g\n", qp.Q, qp.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Label sets folded into names by Name are
// emitted as-is; histogram bucket labels are merged with any base labels.
// Series of one base name sort adjacently, so the format's one-TYPE-line-
// per-metric rule reduces to skipping repeats of the previous base.
func WritePrometheus(w io.Writer, s Snapshot) error {
	prevType := ""
	typeLine := func(base, kind string) error {
		if base == prevType {
			return nil
		}
		prevType = base
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, c := range s.Counters {
		if err := typeLine(baseName(c.Name), "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, int64(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := typeLine(baseName(g.Name), "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := typeLine(baseName(h.Name), "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(h.Name, "_bucket", "le", le), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", suffixed(h.Name, "_sum"), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixed(h.Name, "_count"), h.Count); err != nil {
			return err
		}
	}
	for _, sm := range s.Summaries {
		if err := typeLine(baseName(sm.Name), "summary"); err != nil {
			return err
		}
		for _, qp := range sm.Quantiles {
			if _, err := fmt.Fprintf(w, "%s %g\n", withLabel(sm.Name, "", "quantile", fmt.Sprintf("%g", qp.Q)), qp.Value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", suffixed(sm.Name, "_sum"), sm.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixed(sm.Name, "_count"), sm.Count); err != nil {
			return err
		}
	}
	return nil
}

// baseName strips a folded label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixed inserts suffix after the base name, before any label set:
// suffixed(`h{k="v"}`, "_sum") == `h_sum{k="v"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel appends suffix to the base name and merges one extra label
// into the (possibly empty) label set.
func withLabel(name, suffix, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:len(name)-1] + "," + extra + "}"
	}
	return name + suffix + "{" + extra + "}"
}

// DumpToPath writes the registry to path: "-" means stdout, and a path
// ending in ".prom" selects the Prometheus text format instead of the
// default text dump.
func DumpToPath(r *Registry, path string) error {
	s := r.Snapshot()
	if path == "-" {
		return WriteText(os.Stdout, s)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		if err := WritePrometheus(f, s); err != nil {
			return err
		}
	} else if err := WriteText(f, s); err != nil {
		return err
	}
	return f.Close()
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics to scrape a long-running run.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
}

// TextHandler serves the registry's human-readable text dump (the
// WriteText format) — the obs plane mounts it at /metrics/text next to
// the Prometheus endpoint.
func TextHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteText(w, r.Snapshot())
	})
}

// Serve exposes the registry's Prometheus endpoint at addr/metrics on a
// managed background server (explicit bind, header timeout, graceful
// Shutdown — see Server). Intended for the cmd tools' -metrics-addr flag.
func Serve(addr string, r *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	return StartServer(addr, mux)
}
