package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNameLabels(t *testing.T) {
	if got := Name("polls_total"); got != "polls_total" {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("polls_total", "kind", "empty"); got != `polls_total{kind="empty"}` {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("a", "k1", "v1", "k2", "v2"); got != `a{k1="v1",k2="v2"}` {
		t.Fatalf("Name = %q", got)
	}
}

func TestNamePanicsOnOddLabels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label count accepted")
		}
	}()
	Name("a", "key-without-value")
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := New()
	if r.Counter("c") != r.Counter("c") {
		t.Fatal("counter handle not stable")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge handle not stable")
	}
	if r.Histogram("h", []float64{1, 2}) != r.Histogram("h", []float64{1, 2}) {
		t.Fatal("histogram handle not stable")
	}
	if r.Counter("c", "k", "a") == r.Counter("c", "k", "b") {
		t.Fatal("different labels shared a handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 2, 4, 10, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-117.5) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Raw (non-cumulative) per-bucket counts: <=1: 2, (1,4]: 2, (4,16]: 1, +Inf: 1.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

// TestConcurrentUpdatesExact hammers one counter, gauge and histogram from
// many goroutines and requires totals to be exact — the lock-free hot path
// must not lose updates (run under -race in CI).
func TestConcurrentUpdatesExact(t *testing.T) {
	const goroutines = 16
	const perG = 5000
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h", ExponentialBuckets(1, 2, 8))
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(1) // constant value: float sum must be exact
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if h.Sum() != goroutines*perG {
		t.Fatalf("histogram sum = %v, want %d", h.Sum(), goroutines*perG)
	}
	if g.Value() < 0 || g.Value() >= goroutines {
		t.Fatalf("gauge = %v outside any written value", g.Value())
	}
}

// TestConcurrentRegistryLookups races handle creation with snapshots.
func TestConcurrentRegistryLookups(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for i := 0; i < 1000; i++ {
				r.Counter(names[i%len(names)]).Inc()
				r.Histogram("h", []float64{1, 2, 4}, "w", names[w%len(names)]).Observe(float64(i))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	total := int64(0)
	for _, c := range r.Snapshot().Counters {
		total += int64(c.Value)
	}
	if total != 8*1000 {
		t.Fatalf("counter total = %d, want %d", total, 8*1000)
	}
}

func TestSnapshotSortedAndCumulative(t *testing.T) {
	r := New()
	r.Counter("z").Inc()
	r.Counter("a").Add(2)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "z" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	b := s.Histograms[0].Buckets
	if len(b) != 3 || b[0].Count != 1 || b[1].Count != 2 || b[2].Count != 3 {
		t.Fatalf("cumulative buckets wrong: %+v", b)
	}
	if !math.IsInf(b[2].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", b[2].UpperBound)
	}
}

func TestWriteTextAndPrometheus(t *testing.T) {
	r := New()
	r.Counter("polls_total", "kind", "empty").Add(3)
	r.Gauge("speed").Set(1.5)
	r.Histogram("lat", []float64{1}).Observe(0.5)

	var text strings.Builder
	if err := WriteText(&text, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`polls_total{kind="empty"} 3`, "speed 1.5", "lat count=1", "le=1 1", "le=+Inf 1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, text.String())
		}
	}

	var prom strings.Builder
	if err := WritePrometheus(&prom, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE polls_total counter",
		`polls_total{kind="empty"} 3`,
		"# TYPE speed gauge",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 0.5",
		"lat_count 1",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, prom.String())
		}
	}
}

// TestPrometheusTypeLineOncePerMetric: the exposition format allows at
// most one TYPE line per metric name, so labeled series sharing a base
// must be grouped under a single header.
func TestPrometheusTypeLineOncePerMetric(t *testing.T) {
	r := New()
	r.Counter("polls_total", "kind", "empty").Inc()
	r.Counter("polls_total", "kind", "active").Inc()
	r.Histogram("lat", []float64{1}, "w", "a").Observe(0.5)
	r.Histogram("lat", []float64{1}, "w", "b").Observe(2)
	var prom strings.Builder
	if err := WritePrometheus(&prom, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, header := range []string{"# TYPE polls_total counter", "# TYPE lat histogram"} {
		if got := strings.Count(prom.String(), header); got != 1 {
			t.Errorf("%d copies of %q, want 1:\n%s", got, header, prom.String())
		}
	}
}

func TestSuffixedAndWithLabel(t *testing.T) {
	if got := suffixed(`h{k="v"}`, "_sum"); got != `h_sum{k="v"}` {
		t.Fatalf("suffixed = %q", got)
	}
	if got := withLabel(`h{k="v"}`, "_bucket", "le", "2"); got != `h_bucket{k="v",le="2"}` {
		t.Fatalf("withLabel = %q", got)
	}
	if got := withLabel("h", "_bucket", "le", "+Inf"); got != `h_bucket{le="+Inf"}` {
		t.Fatalf("withLabel = %q", got)
	}
}

// TestExpositionEscapesLabelValues: label values fold into names via %q,
// so quotes, backslashes and newlines must reach the exposition escaped —
// a raw newline inside a label would split one sample across two lines and
// corrupt the whole scrape.
func TestExpositionEscapesLabelValues(t *testing.T) {
	r := New()
	r.Counter("sessions_total", "session", "quote\"back\\slash\nnewline").Inc()

	want := `sessions_total{session="quote\"back\\slash\nnewline"} 1`
	var text strings.Builder
	if err := WriteText(&text, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), want) {
		t.Errorf("text dump missing escaped label:\n%s", text.String())
	}

	var prom strings.Builder
	if err := WritePrometheus(&prom, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), want) {
		t.Errorf("prometheus dump missing escaped label:\n%s", prom.String())
	}
	// One TYPE line plus one sample line: the hostile label value must not
	// have added physical lines.
	if got := strings.Count(prom.String(), "\n"); got != 2 {
		t.Errorf("prometheus dump has %d lines, want 2:\n%q", got, prom.String())
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v", got)
		}
	}
}
