// Package metrics is a dependency-free observability registry for the
// tcast stack: named atomic counters, gauges, and fixed-bucket histograms
// with a lock-free update hot path and snapshot-on-read exposition.
//
// The paper's entire evaluation is a cost model — queries issued, slots
// consumed, node-poll energy — so the serving stack's metrics are the same
// numbers the figures plot. Algorithms never talk to this package
// directly: the InstrumentedQuerier middleware (querier.go) observes every
// group poll through the query.Querier interface, and the experiment
// harness records per-point throughput and wall-clock timings. Exposition
// (text dump, Prometheus text format, HTTP handler) lives in expose.go;
// pprof helpers in profile.go.
//
// Hot-path design: metric handles are resolved once (a mutex-guarded map
// lookup) and then updated with plain atomic operations. Histogram sums
// are float64 bits in an atomic.Uint64 updated by CAS, so concurrent
// observers never lose updates and -race stays quiet.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed upper-bound buckets.
// Bucket i counts observations <= bounds[i]; one extra overflow bucket
// catches everything above the last bound. Observe is wait-free except for
// the CAS loop maintaining the float64 sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the running sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations <= UpperBound (Prometheus "le" semantics).
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64
}

// Registry is a named collection of metrics. The zero value is not usable;
// call New. All methods are safe for concurrent use; Counter/Gauge/
// Histogram return the same handle for the same name, creating it on first
// use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	summaries  map[string]*Summary
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		summaries:  map[string]*Summary{},
	}
}

// Name renders a metric name with label pairs in Prometheus form:
// Name("polls_total", "kind", "empty") == `polls_total{kind="empty"}`.
// Labels are folded into the registry key, keeping lookup a single map
// access and exposition trivially consistent.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic("metrics: Name labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter with the given name, creating it on first
// use. Optional labels are key/value pairs folded into the name.
func (r *Registry) Counter(base string, labels ...string) *Counter {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(base string, labels ...string) *Gauge {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds on first use. The bounds of an existing
// histogram are kept; callers must agree on them.
func (r *Registry) Histogram(base string, bounds []float64, labels ...string) *Histogram {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// MetricValue is one scalar metric in a snapshot.
type MetricValue struct {
	Name  string
	Value float64
}

// HistogramValue is one histogram in a snapshot. Buckets are cumulative.
type HistogramValue struct {
	Name    string
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Snapshot is a point-in-time view of a registry, with every section
// sorted by name so dumps are deterministic.
type Snapshot struct {
	Counters   []MetricValue
	Gauges     []MetricValue
	Histograms []HistogramValue
	Summaries  []SummaryValue
}

// Snapshot captures the registry. Individual metric reads are atomic;
// the snapshot as a whole is not a consistent cut across metrics, which is
// fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: h.Sum()}
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, Bucket{UpperBound: ub, Count: cum})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	for name, sm := range r.summaries {
		s.Summaries = append(s.Summaries, sm.snapshotValue(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Summaries, func(i, j int) bool { return s.Summaries[i].Name < s.Summaries[j].Name })
	return s
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor: the standard shape for poll counts, bin sizes and latencies.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
