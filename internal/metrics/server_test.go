package metrics

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStartServerBoundAddr binds ":0" and verifies the resolved address
// is reachable — the reason the managed server exists at all.
func TestStartServerBoundAddr(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "hello")
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if strings.HasSuffix(srv.Addr(), ":0") {
		t.Fatalf("Addr %q did not resolve the port", srv.Addr())
	}
	resp, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello\n" {
		t.Fatalf("body = %q", body)
	}
}

// TestServerShutdown verifies a clean Shutdown reaps the serve goroutine
// (Err yields nil) and frees the port for rebinding.
func TestServerShutdown(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The error channel already delivered its value to Shutdown; a second
	// bind on the same address must now succeed.
	srv2, err := StartServer(addr, http.NewServeMux())
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	srv2.Shutdown(context.Background())
}

// TestServerBindFailure verifies an unusable address fails synchronously.
func TestServerBindFailure(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if _, err := StartServer(srv.Addr(), http.NewServeMux()); err == nil {
		t.Fatal("double bind should fail at StartServer, not on the error channel")
	}
}

// TestServeEndpoint verifies the registry convenience wrapper mounts
// /metrics on the managed server.
func TestServeEndpoint(t *testing.T) {
	reg := New()
	reg.Counter("tcast_test_total").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tcast_test_total 1") {
		t.Fatalf("missing counter in exposition:\n%s", body)
	}
}
