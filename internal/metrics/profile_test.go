package metrics

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestStartProfilesWritesAll(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prof") // exercises MkdirAll
	stop, err := StartProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little contention so the mutex/block profiles are armed
	// against real events (content is best-effort; existence is the check).
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				mu.Unlock() //nolint:staticcheck
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu", "heap", "goroutine", "mutex", "block"} {
		fi, err := os.Stat(filepath.Join(dir, name+".pprof"))
		if err != nil {
			t.Fatalf("%s profile: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s profile is empty", name)
		}
	}
	// Rates restored: mutex fraction back to its pre-profiling value.
	if got := runtime.SetMutexProfileFraction(-1); got != 0 {
		t.Fatalf("mutex profile fraction left at %d after stop", got)
	}
}

func TestStartProfilesErrors(t *testing.T) {
	// Target directory path collides with an existing file.
	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StartProfiles(blocked); err == nil {
		t.Fatal("profiling into a file path accepted")
	}

	// A second concurrent CPU profile must fail cleanly and leave the
	// first running.
	dir := t.TempDir()
	stop, err := StartProfiles(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartProfiles(filepath.Join(dir, "b")); err == nil {
		t.Fatal("second concurrent cpu profile accepted")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLookupProfileUnknown(t *testing.T) {
	if err := writeLookupProfile(t.TempDir(), "nope"); err == nil {
		t.Fatal("unknown profile name accepted")
	}
}

func TestTextHandler(t *testing.T) {
	r := New()
	r.Counter("polls_total", "kind", "empty").Add(7)
	r.Gauge("x_hat").Set(3.5)
	rec := httptest.NewRecorder()
	TextHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/text", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{`polls_total{kind="empty"} 7`, "x_hat 3.5"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text dump missing %q:\n%s", want, body)
		}
	}
}

func TestPrometheusEscapingRoundTrip(t *testing.T) {
	// Label values with quotes, backslashes and newlines must survive
	// Name's folding and come back intact from the exposition line.
	raw := "weird \"value\" with \\ and \nnewline"
	r := New()
	r.Counter("escapes_total", "detail", raw).Add(1)

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var series string
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "escapes_total{") {
			series = line
		}
	}
	if series == "" {
		t.Fatalf("series missing:\n%s", rec.Body.String())
	}
	// One physical line: the newline in the value must be escaped, not raw.
	open := strings.Index(series, `detail=`)
	closeQ := strings.LastIndex(series, `"}`)
	if open < 0 || closeQ < open {
		t.Fatalf("cannot locate label in %q", series)
	}
	quoted := series[open+len("detail=") : closeQ+1]
	back, err := strconv.Unquote(quoted)
	if err != nil {
		t.Fatalf("unquote %q: %v", quoted, err)
	}
	if back != raw {
		t.Fatalf("round trip: %q != %q", back, raw)
	}
}
