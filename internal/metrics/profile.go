package metrics

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins a CPU profile and returns a stop function that
// finishes it and additionally writes a heap profile. Profiles land in dir
// (created if needed) as cpu.pprof and heap.pprof — the -pprof flag of the
// cmd tools. Inspect with `go tool pprof <binary> <dir>/cpu.pprof`.
func StartProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("metrics: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return err
		}
		defer heap.Close()
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return fmt.Errorf("metrics: write heap profile: %w", err)
		}
		return heap.Close()
	}, nil
}
