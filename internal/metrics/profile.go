package metrics

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Sampling rates the profiler runs at while active. Mutex and block
// profiling are off by default in the runtime; StartProfiles switches
// them on for the profiled window and restores the previous settings at
// stop, so profiling a run never leaks collection overhead past it.
const (
	// mutexProfileFraction samples 1/N of mutex contention events.
	mutexProfileFraction = 5
	// blockProfileRate records every blocking event at nanosecond
	// resolution (the rate is the threshold in ns).
	blockProfileRate = 1
)

// StartProfiles begins a CPU profile (with mutex and block collection
// armed) and returns a stop function that finishes it and writes the
// remaining profiles. Profiles land in dir (created if needed) — the
// -pprof flag of the cmd tools:
//
//	cpu.pprof        wall-clock CPU samples (with any pprof labels, e.g.
//	                 the obs plane's phase=<experiment> tags)
//	heap.pprof       live-heap allocations after a forced GC
//	goroutine.pprof  every goroutine's stack at stop
//	mutex.pprof      lock-contention delay (sampled 1/5)
//	block.pprof      blocking events (channels, selects, locks)
//
// Inspect with `go tool pprof <binary> <dir>/cpu.pprof`.
func StartProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("metrics: start cpu profile: %w", err)
	}
	prevMutex := runtime.SetMutexProfileFraction(mutexProfileFraction)
	runtime.SetBlockProfileRate(blockProfileRate)
	return func() error {
		pprof.StopCPUProfile()
		// Restore the runtime's previous sampling before writing, so the
		// written profiles cover exactly the profiled window.
		runtime.SetMutexProfileFraction(prevMutex)
		runtime.SetBlockProfileRate(0)
		if err := cpu.Close(); err != nil {
			return err
		}
		runtime.GC() // get up-to-date allocation statistics
		for _, p := range []string{"heap", "goroutine", "mutex", "block"} {
			if err := writeLookupProfile(dir, p); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// writeLookupProfile dumps one of the runtime's named profiles to
// dir/<name>.pprof.
func writeLookupProfile(dir, name string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("metrics: unknown profile %q", name)
	}
	f, err := os.Create(filepath.Join(dir, name+".pprof"))
	if err != nil {
		return err
	}
	if err := prof.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("metrics: write %s profile: %w", name, err)
	}
	return f.Close()
}
